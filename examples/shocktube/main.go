// Shocktube runs the 3D extension (the paper's future work) through the
// public scenario API: a piston — the 3D analogue of the paper's plunger
// — drives into quiescent gas and launches a normal shock. The shock's
// propagation speed and the density and temperature rises behind it are
// validated against the exact piston-shock / Rankine–Hugoniot solution,
// just as the oblique shock validates the 2D wedge flow. One sampling
// pass supplies density, velocity and temperature fields together.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"dsmc"
)

// shockFront locates the half-rise crossing of a density profile,
// scanning downstream from the piston; NaN if no front is found.
func shockFront(prof []float64, pistonX, ratio float64) float64 {
	level := (1 + ratio) / 2
	start := int(pistonX)
	if start < 0 {
		start = 0
	}
	for ix := start; ix+1 < len(prof); ix++ {
		if prof[ix] >= level && prof[ix+1] < level {
			t := (prof[ix] - level) / (prof[ix] - prof[ix+1])
			return float64(ix) + 0.5 + t
		}
	}
	return math.NaN()
}

func main() {
	sc := dsmc.ShockTube3D{
		GridNX: 160, GridNY: 4, GridNZ: 4,
		ThermalSpeed:     0.125,
		MeanFreePath:     0,     // near-continuum for the sharpest front
		PistonSpeed:      0.131, // shock Mach number ≈ 2
		ParticlesPerCell: 14,
		Seed:             3,
	}
	s, err := dsmc.NewSimulation(sc)
	if err != nil {
		log.Fatal(err)
	}
	th := s.Theory()
	fmt.Printf("3D shock tube: %d particles, piston speed %.3f cells/step\n",
		s.NFlow(), sc.PistonSpeed)
	fmt.Printf("theory: shock speed %.4f cells/step, density ratio %.3f, temperature ratio %.3f\n\n",
		th.ShockSpeed, th.DensityRatio, th.TemperatureRatio)

	// Warm up, then measure the front over short sampling windows (long
	// averages would smear the moving shock).
	s.Run(250)
	const window = 10
	smpProfile := func() ([]float64, []float64) {
		m := s.Sample(window)
		return m.MustField(dsmc.Density).ProfileX(), m.MustField(dsmc.Temperature).ProfileX()
	}
	prof0, _ := smpProfile()
	pistonX := func() float64 { return sc.PistonSpeed * float64(s.StepCount()) }
	x0, step0 := shockFront(prof0, pistonX(), th.DensityRatio), s.StepCount()

	var prof, temp []float64
	for k := 0; k < 5; k++ {
		s.Run(60)
		prof, temp = smpProfile()
		x := shockFront(prof, pistonX(), th.DensityRatio)
		fmt.Printf("step %4d: piston %6.1f, shock %6.1f\n", s.StepCount(), pistonX(), x)
	}
	speed := (shockFront(prof, pistonX(), th.DensityRatio) - x0) / float64(s.StepCount()-step0)
	fmt.Printf("\nmeasured shock speed %.4f cells/step (theory %.4f, error %.1f%%)\n",
		speed, th.ShockSpeed, 100*math.Abs(speed-th.ShockSpeed)/th.ShockSpeed)

	// Post-shock plateau: mean density and temperature between piston and
	// front, with two cells of cushion at each end.
	lo := int(pistonX()) + 2
	hi := int(shockFront(prof, pistonX(), th.DensityRatio)) - 2
	if hi > lo {
		var rho, tt float64
		for ix := lo; ix < hi; ix++ {
			rho += prof[ix]
			tt += temp[ix]
		}
		rho /= float64(hi - lo)
		tt /= float64(hi - lo)
		fmt.Printf("post-shock density     %.3f (theory %.3f)\n", rho, th.DensityRatio)
		fmt.Printf("post-shock temperature %.3f (theory %.3f)\n", tt, th.TemperatureRatio)
	}

	// Density profile along the tube.
	fmt.Println("\ndensity profile (piston at left, quiescent gas at right):")
	const rows = 8
	for row := rows; row >= 1; row-- {
		level := th.DensityRatio * float64(row) / rows
		var b strings.Builder
		for ix := 0; ix < len(prof); ix += 2 {
			if prof[ix] >= level {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		fmt.Printf("%5.2f |%s\n", level, b.String())
	}
}
