// Shocktube runs the 3D extension (the paper's future work): a piston —
// the 3D analogue of the paper's plunger — drives into quiescent gas and
// launches a normal shock. The shock's propagation speed and the density
// rise behind it are validated against the exact piston-shock /
// Rankine–Hugoniot solution, just as the oblique shock validates the 2D
// wedge flow.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"dsmc/internal/sim3"
)

func main() {
	cfg := sim3.Config{
		NX: 160, NY: 4, NZ: 4,
		Cm:          0.125,
		Lambda:      0,     // near-continuum for the sharpest front
		PistonSpeed: 0.131, // shock Mach number ≈ 2
		NPerCell:    14,
		Seed:        3,
	}
	s, err := sim3.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	wantSpeed, wantRatio := cfg.Theory()
	fmt.Printf("3D shock tube: %d particles, piston speed %.3f cells/step\n",
		s.N(), cfg.PistonSpeed)
	fmt.Printf("theory: shock speed %.4f cells/step, density ratio %.3f\n\n",
		wantSpeed, wantRatio)

	s.Run(250)
	x0 := s.ShockPosition()
	step0 := s.StepCount()
	for k := 0; k < 5; k++ {
		s.Run(70)
		x := s.ShockPosition()
		fmt.Printf("step %4d: piston %6.1f, shock %6.1f, post-shock density %.3f\n",
			s.StepCount(), s.PistonX(), x, s.PostShockDensity())
	}
	speed := (s.ShockPosition() - x0) / float64(s.StepCount()-step0)
	fmt.Printf("\nmeasured shock speed %.4f cells/step (theory %.4f, error %.1f%%)\n",
		speed, wantSpeed, 100*math.Abs(speed-wantSpeed)/wantSpeed)

	// Density profile along the tube.
	fmt.Println("\ndensity profile (piston at left, quiescent gas at right):")
	prof := s.DensityProfile()
	const rows = 8
	_, maxRho := cfg.Theory()
	for row := rows; row >= 1; row-- {
		level := maxRho * float64(row) / rows
		var b strings.Builder
		for ix := 0; ix < len(prof); ix += 2 {
			if prof[ix] >= level {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		fmt.Printf("%5.2f |%s\n", level, b.String())
	}
}
