// Wedge2d reproduces the paper's central comparison (figures 1–6): the
// same Mach 4 / 30° wedge flow in the near-continuum limit (zero mean
// free path — every collision candidate collides) and in the rarefied
// regime (λ∞ = 0.5 cells, Kn = 0.02), showing the three signatures the
// paper reads off the density figures:
//
//   - the shock is thicker when rarefied (≈5 cells vs ≈3);
//   - the wake shock behind the wedge is washed out when rarefied;
//   - both solutions keep the 45° shock angle and 3.7 density rise.
package main

import (
	"fmt"
	"log"

	"dsmc"
)

func runCase(name string, lambda float64) *dsmc.Field {
	sc := dsmc.PaperWedgeTunnel()
	sc.MeanFreePath = lambda
	sc.ParticlesPerCell = 8
	sc.Seed = 11

	s, err := dsmc.NewSimulation(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-15s running %d particles...\n", name, s.NFlow())
	s.Run(600)
	field := s.Sample(300).MustField(dsmc.Density)

	th := s.Theory()
	fmt.Printf("  shock angle    %5.1f°  (theory %.1f°)\n", field.ShockAngleDeg(), th.ShockAngleDeg)
	fmt.Printf("  density rise   %5.2f   (theory %.2f)\n", field.PostShockMean(), th.DensityRatio)
	fmt.Printf("  shock width    %5.1f cells\n", field.ShockThickness())
	fmt.Printf("  wake contrast  %5.2f\n", field.WakeContrast())
	return field
}

func main() {
	nc := runCase("near-continuum", 0)
	fmt.Println()
	rf := runCase("rarefied", 0.5)

	fmt.Println()
	fmt.Println("comparison (paper, figures 1 vs 4):")
	fmt.Printf("  shock width grows with rarefaction: %.1f -> %.1f cells (paper: 3 -> 5)\n",
		nc.ShockThickness(), rf.ShockThickness())
	fmt.Printf("  wake shock washes out:              %.2f -> %.2f contrast\n",
		nc.WakeContrast(), rf.WakeContrast())

	fmt.Println()
	fmt.Println("stagnation region, near-continuum (fig 3 view):")
	fmt.Print(nc.Window(30, 0, 50, 18).Surface(10))
	fmt.Println()
	fmt.Println("stagnation region, rarefied (fig 6 view):")
	fmt.Print(rf.Window(30, 0, 50, 18).Surface(10))
}
