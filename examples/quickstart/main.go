// Quickstart: run the paper's Mach 4 / 30° wedge experiment at laptop
// scale through the scenario API and check the validation numbers the
// paper quotes — a 45° shock and a 3.7 Rankine–Hugoniot density rise —
// plus the temperature rise, all derived from one sampling pass.
package main

import (
	"fmt"
	"log"

	"dsmc"
)

func main() {
	sc := dsmc.PaperWedgeTunnel()
	sc.ParticlesPerCell = 8 // the paper's 512k-particle run uses 75
	sc.Seed = 2024

	s, err := dsmc.NewSimulation(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulating %d particles in the flow (+%d in the reservoir)\n",
		s.NFlow(), s.NReservoir())

	s.Run(600) // reach steady state (the paper runs 1200)

	// One sampling pass accumulates every moment; each quantity is then
	// derived without re-running the simulation.
	smp := s.Sample(300)
	density := smp.MustField(dsmc.Density)
	temp := smp.MustField(dsmc.Temperature)
	mach := smp.MustField(dsmc.MachNumber)

	th := s.Theory()
	fmt.Printf("shock angle:       %5.1f° measured, %5.1f° theory\n",
		density.ShockAngleDeg(), th.ShockAngleDeg)
	fmt.Printf("density rise:      %5.2f  measured, %5.2f  theory\n",
		density.PostShockMean(), th.DensityRatio)
	fmt.Printf("temperature rise:  %5.2f  measured, %5.2f  theory\n",
		temp.PostShockMean(), th.TemperatureRatio)
	fmt.Printf("freestream:        %5.3f measured, 1.000 expected\n",
		density.FreestreamMean())
	fmt.Printf("freestream Mach:   %5.2f measured, %5.2f configured\n",
		mach.RegionMean(2, 2, 16, 22), sc.Mach)
	fmt.Printf("collisions:        %d over %d steps\n", s.Collisions(), s.StepCount())
	fmt.Println()
	fmt.Println("density field (flow left to right, wedge at the bottom):")
	fmt.Print(density.ASCII())
}
