// Quickstart: run the paper's Mach 4 / 30° wedge experiment at laptop
// scale and check the two validation numbers the paper quotes — a 45°
// shock and a 3.7 Rankine–Hugoniot density rise.
package main

import (
	"fmt"
	"log"

	"dsmc"
)

func main() {
	cfg := dsmc.PaperConfig()
	cfg.ParticlesPerCell = 8 // the paper's 512k-particle run uses 75
	cfg.Seed = 2024

	s, err := dsmc.NewSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulating %d particles in the flow (+%d in the reservoir)\n",
		s.NFlow(), s.NReservoir())

	s.Run(600) // reach steady state (the paper runs 1200)
	field := s.SampleDensity(300)

	th := s.Theory()
	fmt.Printf("shock angle:   %5.1f° measured, %5.1f° theory\n",
		field.ShockAngleDeg(), th.ShockAngleDeg)
	fmt.Printf("density rise:  %5.2f  measured, %5.2f  theory\n",
		field.PostShockMean(), th.DensityRatio)
	fmt.Printf("freestream:    %5.3f measured, 1.000 expected\n",
		field.FreestreamMean())
	fmt.Printf("collisions:    %d over %d steps\n", s.Collisions(), s.StepCount())
	fmt.Println()
	fmt.Println("density field (flow left to right, wedge at the bottom):")
	fmt.Print(field.ASCII())
}
