// Ensemble quickstart: DSMC answers are statistical, so production runs
// replicate them. This example runs several independent replicas of the
// paper's rarefied wedge flow as a job DAG over a bounded pool of
// concurrent simulations (dsmc.RunEnsemble), then reports the shock
// angle as mean ± 95% CI instead of a single-sample point estimate —
// with the mean density field still carrying the full analysis surface.
//
// The same spec can be submitted to the dsmcd job server (POST
// /v1/sweeps) or widened into a parameter sweep with dsmc.RunSweep; see
// the README's run-orchestration section.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dsmc"
)

func main() {
	cfg := dsmc.PaperConfig()
	cfg.ParticlesPerCell = 4 // laptop scale; the paper's run uses 75
	cfg.Seed = 2026          // base seed: every replica derives its own

	const (
		replicas    = 4
		warmSteps   = 300
		sampleSteps = 200
	)
	fmt.Printf("running %d replicas (%d+%d steps each) over the job pool...\n",
		replicas, warmSteps, sampleSteps)
	t0 := time.Now()
	res, err := dsmc.RunEnsemble(context.Background(), cfg, replicas, warmSteps, sampleSteps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %s\n\n", time.Since(t0).Round(time.Millisecond))

	fmt.Printf("shock angle:  %5.1f° ± %.1f° (95%% CI over %d replicas; theory 45°)\n",
		res.ShockAngleDeg.Mean, res.ShockAngleDeg.CI95, res.ShockAngleDeg.N)
	fmt.Printf("flow size:    %.0f ± %.0f particles\n",
		res.NFlow.Mean, res.NFlow.CI95)
	fmt.Printf("collisions:   %.3g ± %.2g per replica\n",
		res.Collisions.Mean, res.Collisions.CI95)

	field := res.Field() // cross-replica mean density
	fmt.Printf("freestream:   %5.3f (want 1.000)\n\n", field.FreestreamMean())
	fmt.Println("mean density field (flow left to right, wedge at the bottom):")
	fmt.Print(field.ASCII())
}
