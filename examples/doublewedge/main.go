// Doublewedge runs the double-wedge scenario: two successive compression
// corners on the lower wall, each launching its own oblique shock — the
// downstream wedge sits in the flow already processed by the first, so
// its shock is steeper than a freestream wedge of the same angle would
// produce. The density and Mach-number fields come from one sampling
// pass.
package main

import (
	"fmt"
	"log"

	"dsmc"
)

func main() {
	sc := dsmc.DoubleWedge2D{
		GridNX: 140, GridNY: 64,
		Wedge:            dsmc.WedgeSpec{LeadX: 15, Base: 20, AngleDeg: 20},
		Wedge2:           dsmc.WedgeSpec{LeadX: 70, Base: 20, AngleDeg: 25},
		Mach:             4,
		ThermalSpeed:     0.125,
		MeanFreePath:     0.5,
		ParticlesPerCell: 6,
		Seed:             7,
	}
	s, err := dsmc.NewSimulation(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("double wedge (%g° then %g°): %d particles\n",
		sc.Wedge.AngleDeg, sc.Wedge2.AngleDeg, s.NFlow())

	s.Run(600)
	smp := s.Sample(300)
	density := smp.MustField(dsmc.Density)
	mach := smp.MustField(dsmc.MachNumber)

	fmt.Printf("freestream density %5.3f (want 1.000)\n", density.FreestreamMean())
	// Mean Mach number over each wedge's ramp region: the second body
	// sees slower, hotter gas.
	m1 := mach.RegionMean(int(sc.Wedge.LeadX), 2, int(sc.Wedge.LeadX+sc.Wedge.Base), 16)
	m2 := mach.RegionMean(int(sc.Wedge2.LeadX), 2, int(sc.Wedge2.LeadX+sc.Wedge2.Base), 16)
	fmt.Printf("mean Mach above first wedge  %4.2f\n", m1)
	fmt.Printf("mean Mach above second wedge %4.2f (post-shock flow is slower)\n", m2)

	fmt.Println()
	fmt.Println("density field (flow left to right, both wedges at the bottom):")
	fmt.Print(density.ASCII())
}
