package dsmc

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"dsmc/internal/geom"
	"dsmc/internal/grid"
	"dsmc/internal/molec"
	"dsmc/internal/phys"
	"dsmc/internal/sim"
	"dsmc/internal/sim3"
)

// Scenario describes a complete simulation setup — geometry, freestream
// state, grid shape, and execution knobs — that NewSimulation can
// construct. The concrete scenarios are WedgeTunnel2D (the paper's wind
// tunnel), EmptyTunnel2D, DoubleWedge2D, and ShockTube3D; the legacy
// Config is a compatibility shim over the 2D tunnel scenarios, so every
// existing NewSimulation(cfg) call keeps working.
//
// The scenario set is closed to this package (the lowering method is
// unexported); new geometries are added here, over the internal boundary
// machinery, rather than by external implementations.
type Scenario interface {
	// Kind returns the scenario's stable kind slug (e.g.
	// KindWedgeTunnel2D) — the tag ScenarioSpec serialises.
	Kind() string
	// Validate reports configuration errors at the public layer, with
	// descriptive messages (geometry that does not fit the grid fails
	// here, before any internal lowering).
	Validate() error
	// lower resolves the scenario to the internal build plan.
	lower() (*plan, error)
}

// Scenario kind slugs.
const (
	// KindWedgeTunnel2D is the paper's wind tunnel with a single wedge.
	KindWedgeTunnel2D = "wedge-tunnel-2d"
	// KindEmptyTunnel2D is the wind tunnel with no body (freestream
	// diagnostics).
	KindEmptyTunnel2D = "empty-tunnel-2d"
	// KindDoubleWedge2D is a wind tunnel with two disjoint wedges on the
	// lower wall — successive compression corners.
	KindDoubleWedge2D = "double-wedge-2d"
	// KindShockTube3D is the 3D piston-driven shock tube.
	KindShockTube3D = "shock-tube-3d"
)

// plan is a lowered scenario: everything NewSimulation, the sampling
// layer, and the sweep lowering need to build and analyse a simulation.
// Exactly one of sim/sim3 is set for Reference-backend plans; sim plus
// physProcs for the ConnectionMachine backend.
type plan struct {
	kind       string
	nx, ny, nz int // field shape (nz = 1 for 2D)
	backend    Backend
	precision  Precision
	physProcs  int

	sim  *sim.Config
	sim3 *sim3.Config

	nInf        float64    // freestream particles per unit cell volume
	cm          float64    // freestream most-probable speed (normaliser)
	gamma       float64    // ratio of specific heats
	mach        float64    // freestream Mach number (0 for quiescent gas)
	lambda      float64    // freestream mean free path
	pistonSpeed float64    // 3D shock tube only
	wedge       *WedgeSpec // primary body, for the Field analysis
	vols        []float64  // per-cell gas volumes (nil = unit, 3D)
}

// cells returns the plan's total cell count.
func (p *plan) cells() int { return p.nx * p.ny * p.nz }

// norms returns the freestream normalisers of the derived quantities.
func (p *plan) norms() (cm, gamma float64) { return p.cm, p.gamma }

// modelOf lowers the public molecular-model enum.
func modelOf(m MolecularModel) (molec.Model, error) {
	switch m {
	case "", Maxwell:
		return molec.Maxwell(), nil
	case HardSphere:
		return molec.HardSphere(), nil
	}
	return molec.Model{}, fmt.Errorf("dsmc: unknown molecular model %q (want %q or %q)", m, Maxwell, HardSphere)
}

// validatePrecision rejects unknown precision tags.
func validatePrecision(p Precision) error {
	switch p {
	case "", Float64, Float32:
		return nil
	}
	return fmt.Errorf("dsmc: unknown precision %q (want %q or %q)", p, Float64, Float32)
}

// validateFlow rejects out-of-range freestream and execution knobs
// shared by every scenario.
func validateFlow(meanFreePath, particlesPerCell float64, model MolecularModel, prec Precision, workers, sortTile int) error {
	if err := validatePrecision(prec); err != nil {
		return err
	}
	if _, err := modelOf(model); err != nil {
		return err
	}
	if meanFreePath < 0 {
		return errors.New("dsmc: MeanFreePath must not be negative (0 selects the near-continuum collide-all mode)")
	}
	if particlesPerCell <= 0 {
		return errors.New("dsmc: ParticlesPerCell must be positive")
	}
	if workers < 0 {
		return errors.New("dsmc: Workers must not be negative (0 selects runtime.NumCPU())")
	}
	if sortTile < 0 {
		return errors.New("dsmc: SortTile must not be negative (0 selects the default tile)")
	}
	return nil
}

// validateWedgeFit rejects a wedge whose triangle does not fit the grid,
// with a descriptive public-layer error (the internal validator's
// lower-level message never surfaces).
func validateWedgeFit(w WedgeSpec, nx, ny int, label string) error {
	if w.Base <= 0 {
		return fmt.Errorf("dsmc: %s base must be positive (got %g)", label, w.Base)
	}
	if w.AngleDeg <= 0 || w.AngleDeg >= 90 {
		return fmt.Errorf("dsmc: %s angle %g° out of range (0°, 90°)", label, w.AngleDeg)
	}
	if w.LeadX < 0 {
		return fmt.Errorf("dsmc: %s leading edge at x=%g lies upstream of the inlet (x=0)", label, w.LeadX)
	}
	if trail := w.LeadX + w.Base; trail > float64(nx) {
		return fmt.Errorf("dsmc: %s does not fit the grid: trailing edge at x=%.4g exceeds NX=%d (leading edge %g + base %g)",
			label, trail, nx, w.LeadX, w.Base)
	}
	if h := w.Base * math.Tan(w.AngleDeg*math.Pi/180); h >= float64(ny) {
		return fmt.Errorf("dsmc: %s does not fit the grid: apex height %.4g (base %g at %g°) reaches the upper wall NY=%d",
			label, h, w.Base, w.AngleDeg, ny)
	}
	return nil
}

// lower2D builds the shared 2D wind-tunnel plan.
func lower2D(kind string, nx, ny int, wedge, wedge2 *WedgeSpec, mach, thermalSpeed, meanFreePath, nPerCell float64, model MolecularModel, prec Precision, workers int, seed uint64, sortTile int, regions bool) (*plan, error) {
	m, err := modelOf(model)
	if err != nil {
		return nil, err
	}
	var gw, gw2 *geom.Wedge
	if wedge != nil {
		gw = &geom.Wedge{LeadX: wedge.LeadX, Base: wedge.Base, Angle: wedge.AngleDeg * math.Pi / 180}
	}
	if wedge2 != nil {
		gw2 = &geom.Wedge{LeadX: wedge2.LeadX, Base: wedge2.Base, Angle: wedge2.AngleDeg * math.Pi / 180}
	}
	ic := sim.Config{
		NX: nx, NY: ny,
		Wedge:  gw,
		Wedge2: gw2,
		Free: phys.Freestream{
			Mach:   mach,
			Cm:     thermalSpeed,
			Lambda: meanFreePath,
			Gamma:  m.Gamma(),
		},
		Model:          m,
		NPerCell:       nPerCell,
		PlungerTrigger: 4,
		Seed:           seed,
		Workers:        workers,
		SortTile:       sortTile,
		Regions:        regions,
	}
	if err := ic.Validate(); err != nil {
		return nil, err
	}
	g := grid.New(nx, ny)
	return &plan{
		kind: kind,
		nx:   nx, ny: ny, nz: 1,
		precision: prec,
		sim:       &ic,
		nInf:      nPerCell,
		cm:        thermalSpeed,
		gamma:     m.Gamma(),
		mach:      mach,
		lambda:    meanFreePath,
		wedge:     wedge,
		vols:      g.Volumes(gw, gw2),
	}, nil
}

// WedgeTunnel2D is the paper's scenario as a first-class value: the
// Mach-M wind tunnel with a single wedge on the lower wall. Unlike the
// legacy Config, the wedge is required (use EmptyTunnel2D for no body)
// and the backend is always the Reference engine.
type WedgeTunnel2D struct {
	// GridNX, GridNY are the cell-grid dimensions (the paper: 98×64).
	GridNX, GridNY int
	// Wedge is the body.
	Wedge WedgeSpec
	// Mach is the freestream Mach number (> 1).
	Mach float64
	// ThermalSpeed is the freestream most-probable molecular speed,
	// cells per time step.
	ThermalSpeed float64
	// MeanFreePath is the freestream mean free path in cells
	// (0 = near-continuum collide-all mode).
	MeanFreePath float64
	// ParticlesPerCell is the freestream simulator-particle density.
	ParticlesPerCell float64
	// Model is the molecular model (default Maxwell).
	Model MolecularModel
	// Precision selects the storage precision (default Float64).
	Precision Precision
	// Workers is the CPU worker count (0 = runtime.NumCPU()); results
	// are bit-identical for any value.
	Workers int
	// Seed seeds all randomness.
	Seed uint64
	// SortTile is the sort's cell-block scatter window width in cells
	// (0 = default). A cache-tuning knob only — never changes results.
	SortTile int
	// SpatialRegions selects the spatially-blocked (owner-computes)
	// stepping mode: each worker owns a contiguous cell region
	// end-to-end, with migrant exchange at the sort. Bit-identical to
	// the default sharding.
	SpatialRegions bool
}

// PaperWedgeTunnel returns the paper's configuration as a first-class
// scenario — the scenario equivalent of PaperConfig.
func PaperWedgeTunnel() WedgeTunnel2D {
	return WedgeTunnel2D{
		GridNX: 98, GridNY: 64,
		Wedge:            WedgeSpec{LeadX: 20, Base: 25, AngleDeg: 30},
		Mach:             4,
		ThermalSpeed:     0.125,
		MeanFreePath:     0.5,
		ParticlesPerCell: 75,
		Seed:             1988,
	}
}

// Kind returns KindWedgeTunnel2D.
func (s WedgeTunnel2D) Kind() string { return KindWedgeTunnel2D }

// Validate reports configuration errors.
func (s WedgeTunnel2D) Validate() error {
	if s.GridNX <= 0 || s.GridNY <= 0 {
		return errors.New("dsmc: grid dimensions must be positive")
	}
	if err := validateFlow(s.MeanFreePath, s.ParticlesPerCell, s.Model, s.Precision, s.Workers, s.SortTile); err != nil {
		return err
	}
	return validateWedgeFit(s.Wedge, s.GridNX, s.GridNY, "wedge")
}

func (s WedgeTunnel2D) lower() (*plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	w := s.Wedge
	return lower2D(s.Kind(), s.GridNX, s.GridNY, &w, nil,
		s.Mach, s.ThermalSpeed, s.MeanFreePath, s.ParticlesPerCell,
		s.Model, s.Precision, s.Workers, s.Seed, s.SortTile, s.SpatialRegions)
}

// EmptyTunnel2D is the wind tunnel with no body: undisturbed freestream
// flow, the null scenario for calibration and statistics checks (every
// sampled density must read 1.0).
type EmptyTunnel2D struct {
	GridNX, GridNY   int
	Mach             float64
	ThermalSpeed     float64
	MeanFreePath     float64
	ParticlesPerCell float64
	Model            MolecularModel
	Precision        Precision
	Workers          int
	Seed             uint64
	SortTile         int
	SpatialRegions   bool
}

// Kind returns KindEmptyTunnel2D.
func (s EmptyTunnel2D) Kind() string { return KindEmptyTunnel2D }

// Validate reports configuration errors.
func (s EmptyTunnel2D) Validate() error {
	if s.GridNX <= 0 || s.GridNY <= 0 {
		return errors.New("dsmc: grid dimensions must be positive")
	}
	return validateFlow(s.MeanFreePath, s.ParticlesPerCell, s.Model, s.Precision, s.Workers, s.SortTile)
}

func (s EmptyTunnel2D) lower() (*plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return lower2D(s.Kind(), s.GridNX, s.GridNY, nil, nil,
		s.Mach, s.ThermalSpeed, s.MeanFreePath, s.ParticlesPerCell,
		s.Model, s.Precision, s.Workers, s.Seed, s.SortTile, s.SpatialRegions)
}

// DoubleWedge2D is a wind tunnel with two disjoint wedges on the lower
// wall — successive compression corners, each launching its own oblique
// shock (the downstream wedge sits in the processed flow of the first).
// Built entirely from the existing boundary machinery: both bodies use
// the same specular reflection and fractional cell volumes as the
// paper's single wedge.
type DoubleWedge2D struct {
	GridNX, GridNY int
	// Wedge is the upstream body; Wedge2 the downstream one. Their base
	// intervals on the lower wall must not overlap.
	Wedge, Wedge2    WedgeSpec
	Mach             float64
	ThermalSpeed     float64
	MeanFreePath     float64
	ParticlesPerCell float64
	Model            MolecularModel
	Precision        Precision
	Workers          int
	Seed             uint64
	SortTile         int
	SpatialRegions   bool
}

// Kind returns KindDoubleWedge2D.
func (s DoubleWedge2D) Kind() string { return KindDoubleWedge2D }

// Validate reports configuration errors, including overlapping bodies.
func (s DoubleWedge2D) Validate() error {
	if s.GridNX <= 0 || s.GridNY <= 0 {
		return errors.New("dsmc: grid dimensions must be positive")
	}
	if err := validateFlow(s.MeanFreePath, s.ParticlesPerCell, s.Model, s.Precision, s.Workers, s.SortTile); err != nil {
		return err
	}
	if err := validateWedgeFit(s.Wedge, s.GridNX, s.GridNY, "first wedge"); err != nil {
		return err
	}
	if err := validateWedgeFit(s.Wedge2, s.GridNX, s.GridNY, "second wedge"); err != nil {
		return err
	}
	if s.Wedge2.LeadX < s.Wedge.LeadX+s.Wedge.Base && s.Wedge.LeadX < s.Wedge2.LeadX+s.Wedge2.Base {
		return fmt.Errorf("dsmc: wedges overlap: first spans x=[%g, %g], second x=[%g, %g]",
			s.Wedge.LeadX, s.Wedge.LeadX+s.Wedge.Base, s.Wedge2.LeadX, s.Wedge2.LeadX+s.Wedge2.Base)
	}
	return nil
}

func (s DoubleWedge2D) lower() (*plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	w, w2 := s.Wedge, s.Wedge2
	return lower2D(s.Kind(), s.GridNX, s.GridNY, &w, &w2,
		s.Mach, s.ThermalSpeed, s.MeanFreePath, s.ParticlesPerCell,
		s.Model, s.Precision, s.Workers, s.Seed, s.SortTile, s.SpatialRegions)
}

// ShockTube3D is the 3D extension (the paper's future work): a closed
// box of quiescent gas with a piston driving in from the low-x end at
// constant speed, launching a normal shock whose speed and density rise
// follow the exact Rankine–Hugoniot piston solution.
type ShockTube3D struct {
	// GridNX, GridNY, GridNZ are the box dimensions in cells. GridNX
	// should be long (shock propagation direction); GridNY/GridNZ can be
	// slender.
	GridNX, GridNY, GridNZ int
	// ThermalSpeed is the quiescent gas's most probable molecular speed,
	// cells per time step.
	ThermalSpeed float64
	// MeanFreePath is the quiescent mean free path in cells
	// (0 = collide-all).
	MeanFreePath float64
	// PistonSpeed is the piston velocity in +x, cells per step.
	PistonSpeed float64
	// ParticlesPerCell is the initial particle density.
	ParticlesPerCell float64
	// Model is the molecular model (default Maxwell).
	Model MolecularModel
	// Precision selects the storage precision (default Float64).
	Precision Precision
	// Workers is the CPU worker count (0 = runtime.NumCPU()).
	Workers int
	// Seed seeds all randomness.
	Seed uint64
	// SortTile is the sort's cell-block scatter window width in cells
	// (0 = default). A cache-tuning knob only — never changes results.
	SortTile int
	// SpatialRegions selects the spatially-blocked (owner-computes)
	// stepping mode. Bit-identical to the default sharding.
	SpatialRegions bool
}

// Kind returns KindShockTube3D.
func (s ShockTube3D) Kind() string { return KindShockTube3D }

// Validate reports configuration errors.
func (s ShockTube3D) Validate() error {
	if s.GridNX <= 0 || s.GridNY <= 0 || s.GridNZ <= 0 {
		return errors.New("dsmc: grid dimensions must be positive")
	}
	if s.ThermalSpeed <= 0 {
		return errors.New("dsmc: ThermalSpeed must be positive")
	}
	if s.PistonSpeed < 0 {
		return errors.New("dsmc: PistonSpeed must not be negative")
	}
	return validateFlow(s.MeanFreePath, s.ParticlesPerCell, s.Model, s.Precision, s.Workers, s.SortTile)
}

func (s ShockTube3D) lower() (*plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	m, err := modelOf(s.Model)
	if err != nil {
		return nil, err
	}
	ic := sim3.Config{
		NX: s.GridNX, NY: s.GridNY, NZ: s.GridNZ,
		Cm:          s.ThermalSpeed,
		Lambda:      s.MeanFreePath,
		PistonSpeed: s.PistonSpeed,
		NPerCell:    s.ParticlesPerCell,
		Model:       m,
		Seed:        s.Seed,
		Workers:     s.Workers,
		SortTile:    s.SortTile,
		Regions:     s.SpatialRegions,
	}
	if err := ic.Validate(); err != nil {
		return nil, err
	}
	return &plan{
		kind: s.Kind(),
		nx:   s.GridNX, ny: s.GridNY, nz: s.GridNZ,
		precision:   s.Precision,
		sim3:        &ic,
		nInf:        s.ParticlesPerCell,
		cm:          s.ThermalSpeed,
		gamma:       m.Gamma(),
		lambda:      s.MeanFreePath,
		pistonSpeed: s.PistonSpeed,
	}, nil
}

// ScenarioSpec is the serialisable form of a Scenario: the kind slug
// plus the scenario struct's fields as raw JSON. It is what sweep specs
// and the dsmcd job server carry over the wire.
type ScenarioSpec struct {
	Kind   string          `json:"kind"`
	Params json.RawMessage `json:"params,omitempty"`
}

// NewScenarioSpec serialises a scenario. The legacy Config serialises as
// its first-class equivalent (wedge or empty tunnel), so a spec never
// carries the shim type; ConnectionMachine configs cannot round-trip
// through a spec and are rejected.
func NewScenarioSpec(sc Scenario) (*ScenarioSpec, error) {
	switch v := sc.(type) {
	case Config:
		fc, err := v.firstClass()
		if err != nil {
			return nil, err
		}
		return NewScenarioSpec(fc)
	case *Config:
		return NewScenarioSpec(*v)
	case WedgeTunnel2D, EmptyTunnel2D, DoubleWedge2D, ShockTube3D:
		raw, err := json.Marshal(v)
		if err != nil {
			return nil, err
		}
		return &ScenarioSpec{Kind: sc.Kind(), Params: raw}, nil
	}
	return nil, fmt.Errorf("dsmc: cannot serialise scenario kind %q", sc.Kind())
}

// Scenario deserialises the spec back into its concrete scenario value.
// Unknown kinds and unknown fields are rejected.
func (s ScenarioSpec) Scenario() (Scenario, error) {
	params := s.Params
	if len(params) == 0 {
		params = json.RawMessage("{}")
	}
	decode := func(dst any) error {
		dec := json.NewDecoder(bytes.NewReader(params))
		dec.DisallowUnknownFields()
		if err := dec.Decode(dst); err != nil {
			return fmt.Errorf("dsmc: scenario %q params: %w", s.Kind, err)
		}
		return nil
	}
	switch s.Kind {
	case KindWedgeTunnel2D:
		var v WedgeTunnel2D
		if err := decode(&v); err != nil {
			return nil, err
		}
		return v, nil
	case KindEmptyTunnel2D:
		var v EmptyTunnel2D
		if err := decode(&v); err != nil {
			return nil, err
		}
		return v, nil
	case KindDoubleWedge2D:
		var v DoubleWedge2D
		if err := decode(&v); err != nil {
			return nil, err
		}
		return v, nil
	case KindShockTube3D:
		var v ShockTube3D
		if err := decode(&v); err != nil {
			return nil, err
		}
		return v, nil
	}
	return nil, fmt.Errorf("dsmc: unknown scenario kind %q", s.Kind)
}
