// Package dsmc is a Go reproduction of the hypersonic rarefied-flow
// direct particle simulation (DSMC) that Leonardo Dagum implemented on
// the Thinking Machines CM-2 (RIACS TR 88.46 / Supercomputing '89),
// using the McDonald–Baganoff particle-level selection rule and
// 5-component permutation collision algorithm.
//
// Two interchangeable backends run the same physics:
//
//   - Reference: a sequential float64 implementation of the algorithm
//     (the role of the paper's hand-vectorized Cray-2 comparator);
//   - ConnectionMachine: a data-parallel fixed-point (Q9.23)
//     implementation on a simulated CM — virtual processors, scans,
//     sort-based pairing, router cost model — the paper's actual system.
//
// The public API is organised around scenarios and quantities: a
// Scenario (WedgeTunnel2D, EmptyTunnel2D, DoubleWedge2D, ShockTube3D)
// describes what to simulate, NewSimulation builds the matching 2D or 3D
// engine behind one Simulation type, and one sampling pass derives every
// macroscopic quantity (Density, VelocityX/Y/Z, Temperature, MachNumber)
// from the same moment accumulation.
//
// The quickest start:
//
//	sc := dsmc.PaperWedgeTunnel()
//	sc.ParticlesPerCell = 8 // scale down from the 512k-particle run
//	s, err := dsmc.NewSimulation(sc)
//	...
//	s.Run(600)                        // reach steady state
//	smp := s.Sample(300)              // one pass, all moments
//	field, _ := smp.Field(dsmc.Density)
//	fmt.Println(field.ShockAngleDeg())
//
// The legacy Config/PaperConfig/SampleDensity surface keeps working as a
// thin shim over the wedge-tunnel scenario.
package dsmc

import (
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"dsmc/internal/cmsim"
	"dsmc/internal/phys"
	"dsmc/internal/sample"
	"dsmc/internal/sim"
	"dsmc/internal/sim3"
)

// Backend selects the implementation.
type Backend int

// Available backends.
const (
	// Reference is the sequential float64 implementation.
	Reference Backend = iota
	// ConnectionMachine is the data-parallel fixed-point implementation
	// with the CM-2 cost model.
	ConnectionMachine
)

// String names the backend.
func (b Backend) String() string {
	if b == ConnectionMachine {
		return "connection-machine"
	}
	return "reference"
}

// WedgeSpec describes the test body.
type WedgeSpec struct {
	LeadX    float64 // distance of the leading edge from the upstream boundary, cells
	Base     float64 // base length, cells
	AngleDeg float64 // ramp angle, degrees
}

// Precision selects the storage precision of the Reference backend's
// particle columns. All RNG draws, the probability rule, and the
// collision exchange are computed in float64 for either setting;
// Float32 narrows the stored columns — halving the memory traffic of
// the cell-major sweeps, the dominant cost at paper scale — and
// additionally accumulates the pair relative-speed sums feeding the
// selection rule in single precision (the streaming half of that
// kernel), so float32 physics deviates by that accumulation plus one
// rounding per column write.
type Precision string

// Supported storage precisions.
const (
	// Float64 is the default, bit-exact reference precision.
	Float64 Precision = "float64"
	// Float32 halves the particle-store memory traffic; physics
	// validation targets (shock angle, Rankine–Hugoniot rise) still hold
	// within slightly loosened tolerances.
	Float32 Precision = "float32"
)

// MolecularModel selects the interaction law for the selection rule.
type MolecularModel string

// Supported molecular models.
const (
	// Maxwell molecules (α = 4): the paper's model; the selection rule
	// depends only on density.
	Maxwell MolecularModel = "maxwell"
	// HardSphere molecules: the selection rule scales with relative speed.
	HardSphere MolecularModel = "hard-sphere"
)

// Config specifies a 2D wind-tunnel simulation through the legacy flat
// surface. It remains fully supported as a compatibility shim: Config
// implements Scenario, lowering to the wedge-tunnel (or empty-tunnel)
// scenario, so NewSimulation(cfg) keeps working unchanged. New code
// should prefer the first-class scenario types (WedgeTunnel2D etc.),
// which also cover the 3D shock tube and the double wedge.
type Config struct {
	// GridNX, GridNY are the cell-grid dimensions (unit square cells).
	GridNX, GridNY int
	// Wedge is the body; nil runs an empty tunnel.
	Wedge *WedgeSpec
	// Mach is the freestream Mach number (> 1).
	Mach float64
	// ThermalSpeed is the freestream most-probable molecular speed in
	// cells per time step (sets the time-step size relative to the flow).
	ThermalSpeed float64
	// MeanFreePath is the freestream mean free path in cells; 0 selects
	// the near-continuum mode in which every candidate pair collides.
	MeanFreePath float64
	// ParticlesPerCell is the freestream simulator-particle density.
	ParticlesPerCell float64
	// Model is the molecular model (default Maxwell).
	Model MolecularModel
	// Backend selects the implementation (default Reference).
	Backend Backend
	// PhysProcs is the physical processor count of the ConnectionMachine
	// backend (default 1024; the paper's machine had 32k).
	PhysProcs int
	// Precision selects the Reference backend's storage precision
	// (default Float64). The ConnectionMachine backend is fixed-point;
	// combining it with Float32 is a configuration error.
	Precision Precision
	// Workers is the CPU worker count the Reference backend shards its
	// phases over (move/boundary over particle chunks, sort, select,
	// collide and sampling over cell ranges); 0 selects runtime.NumCPU().
	// Results are bit-identical for any worker count: randomness comes
	// from counter-based per-cell streams, not a shared sequential one.
	Workers int
	// Seed seeds all randomness; runs with equal seeds are reproducible.
	Seed uint64
	// SortTile is the Reference backend's cell-block scatter window width
	// in cells (0 = default). A cache-tuning knob only — never changes
	// results.
	SortTile int
	// SpatialRegions selects the Reference backend's spatially-blocked
	// (owner-computes) stepping mode: each worker owns a contiguous cell
	// region end-to-end, with migrant exchange at the sort. Bit-identical
	// to the default sharding.
	SpatialRegions bool
}

// PaperConfig returns the configuration of the paper's simulations:
// a 98×64 grid, the 30° wedge placed 20 cells from the upstream boundary
// with a 25-cell base, Mach 4, and a mean free path of 0.5 cells
// (the rarefied case of figures 4–6; set MeanFreePath = 0 for the
// near-continuum case of figures 1–3). ParticlesPerCell = 75 corresponds
// to the full 512k-particle run; scale it down for laptop-scale runs.
func PaperConfig() Config {
	return Config{
		GridNX: 98, GridNY: 64,
		Wedge:            &WedgeSpec{LeadX: 20, Base: 25, AngleDeg: 30},
		Mach:             4,
		ThermalSpeed:     0.125,
		MeanFreePath:     0.5,
		ParticlesPerCell: 75,
		Model:            Maxwell,
		Backend:          Reference,
		Seed:             1988,
	}
}

// Validate reports configuration errors before any lowering: unknown
// enum values (Precision, Backend, Model), out-of-range knobs, and a
// wedge whose geometry does not fit the grid all fail here with a
// descriptive error instead of silently defaulting or deferring to the
// internal validator's lower-level message. The remaining physics-level
// checks (supersonic freestream, time-step bound) run in the internal
// configuration's Validate; NewSimulation applies both.
func (c Config) Validate() error {
	if c.GridNX <= 0 || c.GridNY <= 0 {
		return errors.New("dsmc: grid dimensions must be positive")
	}
	switch c.Backend {
	case Reference, ConnectionMachine:
	default:
		return fmt.Errorf("dsmc: unknown backend %d", c.Backend)
	}
	if err := validateFlow(c.MeanFreePath, c.ParticlesPerCell, c.Model, c.Precision, c.Workers, c.SortTile); err != nil {
		return err
	}
	if c.Backend == ConnectionMachine && c.Precision == Float32 {
		return errors.New("dsmc: the ConnectionMachine backend is fixed-point; Precision must be unset or float64")
	}
	if c.PhysProcs < 0 {
		return errors.New("dsmc: PhysProcs must not be negative")
	}
	if c.Wedge != nil {
		if err := validateWedgeFit(*c.Wedge, c.GridNX, c.GridNY, "wedge"); err != nil {
			return err
		}
	}
	return nil
}

// Kind returns the scenario kind the configuration lowers to:
// KindWedgeTunnel2D, or KindEmptyTunnel2D when no wedge is set.
func (c Config) Kind() string {
	if c.Wedge == nil {
		return KindEmptyTunnel2D
	}
	return KindWedgeTunnel2D
}

// firstClass converts the legacy configuration into its first-class
// scenario equivalent. ConnectionMachine configs have no first-class
// form (the fixed-point backend is reachable only through Config).
func (c Config) firstClass() (Scenario, error) {
	if c.Backend != Reference {
		return nil, errors.New("dsmc: only Reference-backend configs convert to a first-class scenario")
	}
	if c.Wedge == nil {
		return EmptyTunnel2D{
			GridNX: c.GridNX, GridNY: c.GridNY,
			Mach: c.Mach, ThermalSpeed: c.ThermalSpeed, MeanFreePath: c.MeanFreePath,
			ParticlesPerCell: c.ParticlesPerCell, Model: c.Model,
			Precision: c.Precision, Workers: c.Workers, Seed: c.Seed,
			SortTile: c.SortTile, SpatialRegions: c.SpatialRegions,
		}, nil
	}
	return WedgeTunnel2D{
		GridNX: c.GridNX, GridNY: c.GridNY, Wedge: *c.Wedge,
		Mach: c.Mach, ThermalSpeed: c.ThermalSpeed, MeanFreePath: c.MeanFreePath,
		ParticlesPerCell: c.ParticlesPerCell, Model: c.Model,
		Precision: c.Precision, Workers: c.Workers, Seed: c.Seed,
		SortTile: c.SortTile, SpatialRegions: c.SpatialRegions,
	}, nil
}

// lower resolves the shim to the 2D tunnel plan, carrying the backend
// selection (Reference or ConnectionMachine) the first-class scenarios
// do not expose.
func (c Config) lower() (*plan, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	p, err := lower2D(c.Kind(), c.GridNX, c.GridNY, c.Wedge, nil,
		c.Mach, c.ThermalSpeed, c.MeanFreePath, c.ParticlesPerCell,
		c.Model, c.Precision, c.Workers, c.Seed, c.SortTile, c.SpatialRegions)
	if err != nil {
		return nil, err
	}
	p.backend = c.Backend
	p.physProcs = c.PhysProcs
	return p, nil
}

// backend abstracts the implementations behind the minimal stepping
// surface every backend offers.
type backend interface {
	Step()
	Run(n int)
	NFlow() int
	NReservoir() int
	StepCount() int
	Collisions() int64
}

// engineBackend is the extra surface of the engine-based Reference
// backends beyond backend: cell-sharded moment sampling, the phase
// timing breakdown, and binary checkpoint/restore. All four engine
// instantiations implement it — both precisions of the 2D wind tunnel
// (sim.SimOf) and of the 3D shock tube (sim3.SimOf).
type engineBackend interface {
	backend
	SampleInto(acc *sample.Accumulator)
	PhaseTimes() map[string]time.Duration
	WriteCheckpoint(w io.Writer) error
	ReadCheckpoint(r io.Reader) error
}

// Simulation is a running simulation of any scenario — the 2D wind
// tunnel (either backend, either precision), the double wedge, or the
// 3D shock tube — behind one type.
type Simulation struct {
	scen Scenario
	p    *plan
	ref  engineBackend
	cm   *cmsim.Sim
	b    backend
}

// NewSimulation builds and initialises a simulation from any Scenario —
// a first-class scenario value or the legacy Config shim.
func NewSimulation(sc Scenario) (*Simulation, error) {
	p, err := sc.lower()
	if err != nil {
		return nil, err
	}
	s := &Simulation{scen: sc, p: p}
	switch {
	case p.backend == ConnectionMachine:
		cs, err := cmsim.New(cmsim.Config{Sim: *p.sim, PhysProcs: p.physProcs})
		if err != nil {
			return nil, err
		}
		s.cm = cs
		s.b = cs
	case p.sim != nil:
		if p.precision == Float32 {
			rs, err := sim.NewOf[float32](*p.sim)
			if err != nil {
				return nil, err
			}
			s.ref = rs
		} else {
			rs, err := sim.New(*p.sim)
			if err != nil {
				return nil, err
			}
			s.ref = rs
		}
		s.b = s.ref
	case p.sim3 != nil:
		if p.precision == Float32 {
			rs, err := sim3.NewOf[float32](*p.sim3)
			if err != nil {
				return nil, err
			}
			s.ref = rs
		} else {
			rs, err := sim3.New(*p.sim3)
			if err != nil {
				return nil, err
			}
			s.ref = rs
		}
		s.b = s.ref
	default:
		return nil, fmt.Errorf("dsmc: scenario %q lowered to no backend", p.kind)
	}
	return s, nil
}

// Scenario returns the scenario the simulation was built from.
func (s *Simulation) Scenario() Scenario { return s.scen }

// Kind returns the running scenario's kind slug.
func (s *Simulation) Kind() string { return s.p.kind }

// Shape returns the field shape: grid dimensions NX, NY and NZ
// (NZ = 1 for 2D scenarios).
func (s *Simulation) Shape() (nx, ny, nz int) { return s.p.nx, s.p.ny, s.p.nz }

// Step advances one time step.
func (s *Simulation) Step() { s.b.Step() }

// Run advances n time steps.
func (s *Simulation) Run(n int) { s.b.Run(n) }

// NFlow returns the number of particles in the flow.
func (s *Simulation) NFlow() int { return s.b.NFlow() }

// NReservoir returns the number of particles banked in the reservoir.
func (s *Simulation) NReservoir() int { return s.b.NReservoir() }

// StepCount returns completed time steps.
func (s *Simulation) StepCount() int { return s.b.StepCount() }

// Collisions returns the cumulative collision count.
func (s *Simulation) Collisions() int64 { return s.b.Collisions() }

// Backend reports which implementation is running.
func (s *Simulation) Backend() Backend { return s.p.backend }

// SampleDensity advances the simulation `steps` further steps while
// accumulating the time-averaged density field normalised by the
// freestream density (the quantity plotted in the paper's figures).
//
// Deprecated: SampleDensity is the single-quantity shim over the
// multi-moment sampling pass; it returns bit-identical data to
// Sample(steps).Field(Density). New code should call Sample once and
// derive every quantity it needs from the returned Sampling.
func (s *Simulation) SampleDensity(steps int) *Field {
	f, err := s.Sample(steps).Field(Density)
	if err != nil {
		// Density is derivable on every backend; this cannot happen.
		panic(err)
	}
	return f
}

// PhaseSeconds returns the cumulative wall-clock seconds per algorithm
// phase (move+boundary, sort, select, collide).
func (s *Simulation) PhaseSeconds() map[string]float64 {
	out := map[string]float64{}
	if s.ref != nil {
		for k, v := range s.ref.PhaseTimes() {
			out[k] = v.Seconds()
		}
		return out
	}
	book := s.cm.Machine().Cost()
	for _, name := range book.Phases() {
		out[name] = book.Phase(name).Wall.Seconds()
	}
	return out
}

// ModelPhaseCycles returns the Connection Machine cost model's cycle
// counts per phase; nil for the Reference backend.
func (s *Simulation) ModelPhaseCycles() map[string]int64 {
	if s.cm == nil {
		return nil
	}
	book := s.cm.Machine().Cost()
	out := map[string]int64{}
	for _, name := range book.Phases() {
		out[name] = book.Phase(name).Cycles
	}
	return out
}

// MicrosecondsPerParticleStep reports the average wall-clock cost per
// particle per time step so far — the paper's headline metric
// (7.2 µs on the 32k-processor CM-2, 0.5 µs on the Cray-2).
func (s *Simulation) MicrosecondsPerParticleStep() float64 {
	if s.StepCount() == 0 || s.NFlow() == 0 {
		return 0
	}
	var total time.Duration
	if s.ref != nil {
		for _, v := range s.ref.PhaseTimes() {
			total += v
		}
	} else {
		total = s.cm.Machine().Cost().TotalWall()
	}
	return total.Seconds() * 1e6 / float64(s.StepCount()) / float64(s.NFlow())
}

// Theory returns the inviscid-theory references for this scenario —
// the numbers the paper validates against, extended with the
// Rankine–Hugoniot temperature rise and the piston-shock solution of
// the 3D tube.
type Theory struct {
	ShockAngleDeg    float64 // oblique shock angle (45° for the paper's case)
	DensityRatio     float64 // Rankine–Hugoniot rise (3.7 for the paper's case)
	TemperatureRatio float64 // Rankine–Hugoniot T2/T1 across the shock
	Knudsen          float64 // λ∞ / wedge base
	SpeedRatio       float64 // u∞/cm∞
	FreestreamU      float64 // cells per step
	Detached         bool    // no attached-shock solution exists
	// ShockSpeed is the 3D piston-shock propagation speed in cells per
	// step (0 for 2D scenarios).
	ShockSpeed float64
}

// Theory computes the validation references from the scenario.
func (s *Simulation) Theory() Theory {
	gamma := s.p.gamma
	if s.p.sim3 != nil {
		// Piston-driven normal shock: Ms − 1/Ms = up(γ+1)/(2a1).
		a1 := s.p.cm * math.Sqrt(gamma/2)
		k := s.p.pistonSpeed * (gamma + 1) / (2 * a1)
		ms := (k + math.Sqrt(k*k+4)) / 2
		return Theory{
			ShockSpeed:       ms * a1,
			DensityRatio:     phys.RHDensityRatio(ms, gamma),
			TemperatureRatio: phys.RHTemperatureRatio(ms, gamma),
		}
	}
	t := Theory{
		SpeedRatio:  s.p.mach * math.Sqrt(gamma/2),
		FreestreamU: s.p.mach * s.p.cm * math.Sqrt(gamma/2),
	}
	if s.p.wedge == nil {
		return t
	}
	t.Knudsen = s.p.lambda / s.p.wedge.Base
	beta, err := phys.ObliqueShockBeta(s.p.mach, s.p.wedge.AngleDeg*math.Pi/180, gamma)
	if err != nil {
		t.Detached = true
		return t
	}
	m1n := phys.NormalMach(s.p.mach, beta)
	t.ShockAngleDeg = beta * 180 / math.Pi
	t.DensityRatio = phys.RHDensityRatio(m1n, gamma)
	t.TemperatureRatio = phys.RHTemperatureRatio(m1n, gamma)
	return t
}
