// Package dsmc is a Go reproduction of the hypersonic rarefied-flow
// direct particle simulation (DSMC) that Leonardo Dagum implemented on
// the Thinking Machines CM-2 (RIACS TR 88.46 / Supercomputing '89),
// using the McDonald–Baganoff particle-level selection rule and
// 5-component permutation collision algorithm.
//
// Two interchangeable backends run the same physics:
//
//   - Reference: a sequential float64 implementation of the algorithm
//     (the role of the paper's hand-vectorized Cray-2 comparator);
//   - ConnectionMachine: a data-parallel fixed-point (Q9.23)
//     implementation on a simulated CM — virtual processors, scans,
//     sort-based pairing, router cost model — the paper's actual system.
//
// The quickest start:
//
//	cfg := dsmc.PaperConfig()
//	cfg.ParticlesPerCell = 8 // scale down from the 512k-particle run
//	s, err := dsmc.NewSimulation(cfg)
//	...
//	s.Run(600)                       // reach steady state
//	field := s.SampleDensity(300)    // time-averaged density
//	fmt.Println(field.ShockAngleDeg())
package dsmc

import (
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"dsmc/internal/cmsim"
	"dsmc/internal/geom"
	"dsmc/internal/grid"
	"dsmc/internal/molec"
	"dsmc/internal/phys"
	"dsmc/internal/sample"
	"dsmc/internal/sim"
)

// Backend selects the implementation.
type Backend int

// Available backends.
const (
	// Reference is the sequential float64 implementation.
	Reference Backend = iota
	// ConnectionMachine is the data-parallel fixed-point implementation
	// with the CM-2 cost model.
	ConnectionMachine
)

// String names the backend.
func (b Backend) String() string {
	if b == ConnectionMachine {
		return "connection-machine"
	}
	return "reference"
}

// WedgeSpec describes the test body.
type WedgeSpec struct {
	LeadX    float64 // distance of the leading edge from the upstream boundary, cells
	Base     float64 // base length, cells
	AngleDeg float64 // ramp angle, degrees
}

// Precision selects the storage precision of the Reference backend's
// particle columns. All RNG draws, the probability rule, and the
// collision exchange are computed in float64 for either setting;
// Float32 narrows the stored columns — halving the memory traffic of
// the cell-major sweeps, the dominant cost at paper scale — and
// additionally accumulates the pair relative-speed sums feeding the
// selection rule in single precision (the streaming half of that
// kernel), so float32 physics deviates by that accumulation plus one
// rounding per column write.
type Precision string

// Supported storage precisions.
const (
	// Float64 is the default, bit-exact reference precision.
	Float64 Precision = "float64"
	// Float32 halves the particle-store memory traffic; physics
	// validation targets (shock angle, Rankine–Hugoniot rise) still hold
	// within slightly loosened tolerances.
	Float32 Precision = "float32"
)

// MolecularModel selects the interaction law for the selection rule.
type MolecularModel string

// Supported molecular models.
const (
	// Maxwell molecules (α = 4): the paper's model; the selection rule
	// depends only on density.
	Maxwell MolecularModel = "maxwell"
	// HardSphere molecules: the selection rule scales with relative speed.
	HardSphere MolecularModel = "hard-sphere"
)

// Config specifies a wind-tunnel simulation through the public API.
type Config struct {
	// GridNX, GridNY are the cell-grid dimensions (unit square cells).
	GridNX, GridNY int
	// Wedge is the body; nil runs an empty tunnel.
	Wedge *WedgeSpec
	// Mach is the freestream Mach number (> 1).
	Mach float64
	// ThermalSpeed is the freestream most-probable molecular speed in
	// cells per time step (sets the time-step size relative to the flow).
	ThermalSpeed float64
	// MeanFreePath is the freestream mean free path in cells; 0 selects
	// the near-continuum mode in which every candidate pair collides.
	MeanFreePath float64
	// ParticlesPerCell is the freestream simulator-particle density.
	ParticlesPerCell float64
	// Model is the molecular model (default Maxwell).
	Model MolecularModel
	// Backend selects the implementation (default Reference).
	Backend Backend
	// PhysProcs is the physical processor count of the ConnectionMachine
	// backend (default 1024; the paper's machine had 32k).
	PhysProcs int
	// Precision selects the Reference backend's storage precision
	// (default Float64). The ConnectionMachine backend is fixed-point;
	// combining it with Float32 is a configuration error.
	Precision Precision
	// Workers is the CPU worker count the Reference backend shards its
	// phases over (move/boundary over particle chunks, sort, select,
	// collide and sampling over cell ranges); 0 selects runtime.NumCPU().
	// Results are bit-identical for any worker count: randomness comes
	// from counter-based per-cell streams, not a shared sequential one.
	Workers int
	// Seed seeds all randomness; runs with equal seeds are reproducible.
	Seed uint64
}

// PaperConfig returns the configuration of the paper's simulations:
// a 98×64 grid, the 30° wedge placed 20 cells from the upstream boundary
// with a 25-cell base, Mach 4, and a mean free path of 0.5 cells
// (the rarefied case of figures 4–6; set MeanFreePath = 0 for the
// near-continuum case of figures 1–3). ParticlesPerCell = 75 corresponds
// to the full 512k-particle run; scale it down for laptop-scale runs.
func PaperConfig() Config {
	return Config{
		GridNX: 98, GridNY: 64,
		Wedge:            &WedgeSpec{LeadX: 20, Base: 25, AngleDeg: 30},
		Mach:             4,
		ThermalSpeed:     0.125,
		MeanFreePath:     0.5,
		ParticlesPerCell: 75,
		Model:            Maxwell,
		Backend:          Reference,
		Seed:             1988,
	}
}

// Validate reports configuration errors before any lowering: unknown
// enum values (Precision, Backend, Model) and out-of-range knobs fail
// here with a descriptive error instead of silently defaulting. The
// physics-level checks (supersonic freestream, wedge fit, time-step
// bound) run in the internal configuration's Validate; NewSimulation
// applies both.
func (c Config) Validate() error {
	if c.GridNX <= 0 || c.GridNY <= 0 {
		return errors.New("dsmc: grid dimensions must be positive")
	}
	switch c.Backend {
	case Reference, ConnectionMachine:
	default:
		return fmt.Errorf("dsmc: unknown backend %d", c.Backend)
	}
	switch c.Precision {
	case "", Float64, Float32:
	default:
		return fmt.Errorf("dsmc: unknown precision %q (want %q or %q)", c.Precision, Float64, Float32)
	}
	switch c.Model {
	case "", Maxwell, HardSphere:
	default:
		return fmt.Errorf("dsmc: unknown molecular model %q (want %q or %q)", c.Model, Maxwell, HardSphere)
	}
	if c.Backend == ConnectionMachine && c.Precision == Float32 {
		return errors.New("dsmc: the ConnectionMachine backend is fixed-point; Precision must be unset or float64")
	}
	if c.MeanFreePath < 0 {
		return errors.New("dsmc: MeanFreePath must not be negative (0 selects the near-continuum collide-all mode)")
	}
	if c.ParticlesPerCell <= 0 {
		return errors.New("dsmc: ParticlesPerCell must be positive")
	}
	if c.Workers < 0 {
		return errors.New("dsmc: Workers must not be negative (0 selects runtime.NumCPU())")
	}
	if c.PhysProcs < 0 {
		return errors.New("dsmc: PhysProcs must not be negative")
	}
	return nil
}

// internalConfig lowers the public configuration.
func (c Config) internalConfig() (sim.Config, error) {
	if err := c.Validate(); err != nil {
		return sim.Config{}, err
	}
	model := molec.Maxwell()
	switch c.Model {
	case HardSphere:
		model = molec.HardSphere()
	}
	var wedge *geom.Wedge
	if c.Wedge != nil {
		wedge = &geom.Wedge{
			LeadX: c.Wedge.LeadX,
			Base:  c.Wedge.Base,
			Angle: c.Wedge.AngleDeg * math.Pi / 180,
		}
	}
	ic := sim.Config{
		NX: c.GridNX, NY: c.GridNY,
		Wedge: wedge,
		Free: phys.Freestream{
			Mach:   c.Mach,
			Cm:     c.ThermalSpeed,
			Lambda: c.MeanFreePath,
			Gamma:  model.Gamma(),
		},
		Model:          model,
		NPerCell:       c.ParticlesPerCell,
		PlungerTrigger: 4,
		Seed:           c.Seed,
		Workers:        c.Workers,
	}
	return ic, ic.Validate()
}

// backend abstracts the implementations.
type backend interface {
	Step()
	Run(n int)
	NFlow() int
	NReservoir() int
	StepCount() int
	Collisions() int64
	Grid() grid.Grid
	Volumes() []float64
}

// refBackend is the extra surface of the engine-based Reference
// backends beyond backend: cell-sharded sampling, the phase timing
// breakdown, and binary checkpoint/restore. Both precision
// instantiations of sim.SimOf implement it.
type refBackend interface {
	backend
	SampleInto(acc *sample.Accumulator)
	PhaseTimes() map[string]time.Duration
	WriteCheckpoint(w io.Writer) error
	ReadCheckpoint(r io.Reader) error
}

// Simulation is a running wind-tunnel simulation.
type Simulation struct {
	cfg Config
	ref refBackend
	cm  *cmsim.Sim
	b   backend
}

// NewSimulation builds and initialises a simulation.
func NewSimulation(c Config) (*Simulation, error) {
	ic, err := c.internalConfig()
	if err != nil {
		return nil, err
	}
	s := &Simulation{cfg: c}
	switch c.Backend {
	case ConnectionMachine:
		cs, err := cmsim.New(cmsim.Config{Sim: ic, PhysProcs: c.PhysProcs})
		if err != nil {
			return nil, err
		}
		s.cm = cs
		s.b = cs
	default:
		switch c.Precision {
		case "", Float64:
			rs, err := sim.New(ic)
			if err != nil {
				return nil, err
			}
			s.ref = rs
		case Float32:
			rs, err := sim.NewOf[float32](ic)
			if err != nil {
				return nil, err
			}
			s.ref = rs
		default:
			return nil, fmt.Errorf("dsmc: unknown precision %q", c.Precision)
		}
		s.b = s.ref
	}
	return s, nil
}

// Step advances one time step.
func (s *Simulation) Step() { s.b.Step() }

// Run advances n time steps.
func (s *Simulation) Run(n int) { s.b.Run(n) }

// NFlow returns the number of particles in the flow.
func (s *Simulation) NFlow() int { return s.b.NFlow() }

// NReservoir returns the number of particles banked in the reservoir.
func (s *Simulation) NReservoir() int { return s.b.NReservoir() }

// StepCount returns completed time steps.
func (s *Simulation) StepCount() int { return s.b.StepCount() }

// Collisions returns the cumulative collision count.
func (s *Simulation) Collisions() int64 { return s.b.Collisions() }

// Backend reports which implementation is running.
func (s *Simulation) Backend() Backend { return s.cfg.Backend }

// SampleDensity advances the simulation `steps` further steps while
// accumulating the time-averaged density field normalised by the
// freestream density (the quantity plotted in the paper's figures).
func (s *Simulation) SampleDensity(steps int) *Field {
	acc := sample.NewAccumulator(s.b.Grid(), s.b.Volumes(), s.cfg.ParticlesPerCell)
	for k := 0; k < steps; k++ {
		s.Step()
		if s.ref != nil {
			// Sharded over cell ranges on the backend's worker pool.
			s.ref.SampleInto(acc)
		} else {
			acc.AddCounts(s.cm.CellCounts())
		}
	}
	return &Field{
		NX: s.cfg.GridNX, NY: s.cfg.GridNY,
		Data: acc.Density(),
		grid: s.b.Grid(), vols: s.b.Volumes(),
		wedge: s.cfg.Wedge, mach: s.cfg.Mach,
	}
}

// PhaseSeconds returns the cumulative wall-clock seconds per algorithm
// phase (move+boundary, sort, select, collide).
func (s *Simulation) PhaseSeconds() map[string]float64 {
	out := map[string]float64{}
	if s.ref != nil {
		for k, v := range s.ref.PhaseTimes() {
			out[k] = v.Seconds()
		}
		return out
	}
	book := s.cm.Machine().Cost()
	for _, name := range book.Phases() {
		out[name] = book.Phase(name).Wall.Seconds()
	}
	return out
}

// ModelPhaseCycles returns the Connection Machine cost model's cycle
// counts per phase; nil for the Reference backend.
func (s *Simulation) ModelPhaseCycles() map[string]int64 {
	if s.cm == nil {
		return nil
	}
	book := s.cm.Machine().Cost()
	out := map[string]int64{}
	for _, name := range book.Phases() {
		out[name] = book.Phase(name).Cycles
	}
	return out
}

// MicrosecondsPerParticleStep reports the average wall-clock cost per
// particle per time step so far — the paper's headline metric
// (7.2 µs on the 32k-processor CM-2, 0.5 µs on the Cray-2).
func (s *Simulation) MicrosecondsPerParticleStep() float64 {
	if s.StepCount() == 0 || s.NFlow() == 0 {
		return 0
	}
	var total time.Duration
	if s.ref != nil {
		for _, v := range s.ref.PhaseTimes() {
			total += v
		}
	} else {
		total = s.cm.Machine().Cost().TotalWall()
	}
	return total.Seconds() * 1e6 / float64(s.StepCount()) / float64(s.NFlow())
}

// Theory returns the inviscid-theory references for this configuration —
// the numbers the paper validates against.
type Theory struct {
	ShockAngleDeg float64 // oblique shock angle (45° for the paper's case)
	DensityRatio  float64 // Rankine–Hugoniot rise (3.7 for the paper's case)
	Knudsen       float64 // λ∞ / wedge base
	SpeedRatio    float64 // u∞/cm∞
	FreestreamU   float64 // cells per step
	Detached      bool    // no attached-shock solution exists
}

// Theory computes the validation references from the configuration.
func (s *Simulation) Theory() Theory {
	t := Theory{
		SpeedRatio:  s.cfg.Mach * math.Sqrt(phys.GammaDiatomic/2),
		FreestreamU: s.cfg.Mach * s.cfg.ThermalSpeed * math.Sqrt(phys.GammaDiatomic/2),
	}
	if s.cfg.Wedge == nil {
		return t
	}
	t.Knudsen = s.cfg.MeanFreePath / s.cfg.Wedge.Base
	beta, err := phys.ObliqueShockBeta(s.cfg.Mach, s.cfg.Wedge.AngleDeg*math.Pi/180, phys.GammaDiatomic)
	if err != nil {
		t.Detached = true
		return t
	}
	t.ShockAngleDeg = beta * 180 / math.Pi
	t.DensityRatio = phys.RHDensityRatio(phys.NormalMach(s.cfg.Mach, beta), phys.GammaDiatomic)
	return t
}
