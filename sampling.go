package dsmc

import (
	"fmt"

	"dsmc/internal/grid"
	"dsmc/internal/sample"
)

// Quantity identifies a sampled macroscopic field. All quantities are
// derived from the same one-pass moment accumulation, so asking for
// several costs one sampling run, not several.
type Quantity string

// The derivable quantities. Each is normalised by its freestream value:
// density by ρ∞, velocities by the freestream most-probable speed cm∞,
// temperature by the freestream temperature (so undisturbed flow reads
// 1.0), and MachNumber is the local bulk speed over the local sound
// speed.
const (
	Density     Quantity = sample.QDensity
	VelocityX   Quantity = sample.QVelocityX
	VelocityY   Quantity = sample.QVelocityY
	VelocityZ   Quantity = sample.QVelocityZ
	Temperature Quantity = sample.QTemperature
	MachNumber  Quantity = sample.QMach
)

// Quantities lists every derivable quantity in stable order.
func Quantities() []Quantity {
	qs := sample.Quantities()
	out := make([]Quantity, len(qs))
	for i, q := range qs {
		out[i] = Quantity(q)
	}
	return out
}

// Sampling is the result of a sampling pass: the accumulated per-cell
// moments of `Steps()` consecutive time steps, from which any Quantity
// field is derived without re-running the simulation.
type Sampling struct {
	p     *plan
	acc   *sample.Accumulator
	steps int
	// countsOnly marks backends that expose per-cell counts but not
	// per-particle moments (the ConnectionMachine backend): only Density
	// is derivable.
	countsOnly bool
}

// Sample advances the simulation `steps` further steps while
// accumulating all per-cell moments (count, momentum, energy) in one
// pass — sharded over cell ranges on the backend's worker pool, with the
// same worker-count bit-identity contract as the simulation itself. Use
// the returned Sampling's Field to derive quantity fields.
func (s *Simulation) Sample(steps int) *Sampling {
	acc := sample.NewAccumulatorCells(s.p.cells(), s.p.vols, s.p.nInf)
	for k := 0; k < steps; k++ {
		s.Step()
		if s.ref != nil {
			s.ref.SampleInto(acc)
		} else {
			acc.AddCounts(s.cm.CellCounts())
		}
	}
	return &Sampling{p: s.p, acc: acc, steps: steps, countsOnly: s.ref == nil}
}

// Steps returns the number of time steps averaged into the sampling.
func (sp *Sampling) Steps() int { return sp.steps }

// Field derives one quantity field from the accumulated moments. The
// field carries the scenario's shape header (NX, NY, NZ) — 3D scenarios
// yield 3D fields whose Slice/ProjectXY/ProfileX views feed the 2D
// analysis and renderers. The ConnectionMachine backend accumulates
// per-cell counts only; asking it for anything but Density is an error.
func (sp *Sampling) Field(q Quantity) (*Field, error) {
	if sp.countsOnly && q != Density {
		return nil, fmt.Errorf("dsmc: the ConnectionMachine backend samples cell counts only; quantity %q requires the Reference backend", q)
	}
	cm, gamma := sp.p.norms()
	data, err := sp.acc.FieldOf(string(q), sample.Norms{Cm: cm, Gamma: gamma})
	if err != nil {
		return nil, err
	}
	return &Field{
		NX: sp.p.nx, NY: sp.p.ny, NZ: sp.p.nz,
		Quantity: q,
		Data:     data,
		grid:     grid.New(sp.p.nx, sp.p.ny),
		vols:     sp.p.vols,
		wedge:    sp.p.wedge,
		mach:     sp.p.mach,
	}, nil
}

// MustField is Field for quantities known to be derivable (e.g. Density
// on any backend); it panics on error. Convenient in examples and tests.
func (sp *Sampling) MustField(q Quantity) *Field {
	f, err := sp.Field(q)
	if err != nil {
		panic(err)
	}
	return f
}
