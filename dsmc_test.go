package dsmc

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// testConfig is a small, fast configuration exercising the full pipeline.
func testConfig() Config {
	cfg := PaperConfig()
	cfg.GridNX, cfg.GridNY = 48, 24
	cfg.Wedge = &WedgeSpec{LeadX: 10, Base: 12, AngleDeg: 30}
	cfg.ParticlesPerCell = 6
	cfg.Seed = 3
	return cfg
}

func TestPaperConfigDefaults(t *testing.T) {
	cfg := PaperConfig()
	if cfg.GridNX != 98 || cfg.GridNY != 64 {
		t.Errorf("paper grid is 98x64")
	}
	if cfg.Wedge.AngleDeg != 30 || cfg.Wedge.Base != 25 || cfg.Wedge.LeadX != 20 {
		t.Errorf("paper wedge: 30°, base 25, placed 20 cells in")
	}
	if cfg.Mach != 4 || cfg.MeanFreePath != 0.5 {
		t.Errorf("paper rarefied case: Mach 4, λ∞ = 0.5")
	}
	if _, err := NewSimulation(testConfig()); err != nil {
		t.Errorf("test config must build: %v", err)
	}
}

func TestConfigErrors(t *testing.T) {
	bad := testConfig()
	bad.GridNX = 0
	if _, err := NewSimulation(bad); err == nil {
		t.Errorf("zero grid must fail")
	}
	bad = testConfig()
	bad.Model = "quantum"
	if _, err := NewSimulation(bad); err == nil {
		t.Errorf("unknown model must fail")
	}
	bad = testConfig()
	bad.Mach = 0.5
	if _, err := NewSimulation(bad); err == nil {
		t.Errorf("subsonic must fail")
	}
}

func TestBothBackendsRun(t *testing.T) {
	for _, backend := range []Backend{Reference, ConnectionMachine} {
		cfg := testConfig()
		cfg.Backend = backend
		cfg.PhysProcs = 64
		s, err := NewSimulation(cfg)
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		s.Run(20)
		if s.StepCount() != 20 {
			t.Errorf("%v: StepCount = %d", backend, s.StepCount())
		}
		if s.Collisions() == 0 {
			t.Errorf("%v: no collisions", backend)
		}
		if s.NFlow() == 0 || s.NReservoir() == 0 {
			t.Errorf("%v: populations empty", backend)
		}
		if s.Backend() != backend {
			t.Errorf("Backend() = %v", s.Backend())
		}
		if got := s.MicrosecondsPerParticleStep(); got <= 0 {
			t.Errorf("%v: per-particle time %v", backend, got)
		}
		ph := s.PhaseSeconds()
		if len(ph) < 3 {
			t.Errorf("%v: phase breakdown missing: %v", backend, ph)
		}
	}
}

func TestModelPhaseCyclesOnlyOnCM(t *testing.T) {
	cfg := testConfig()
	s, _ := NewSimulation(cfg)
	if s.ModelPhaseCycles() != nil {
		t.Errorf("reference backend has no cycle model")
	}
	cfg.Backend = ConnectionMachine
	cfg.PhysProcs = 64
	s, _ = NewSimulation(cfg)
	s.Run(3)
	cycles := s.ModelPhaseCycles()
	if cycles["collide"] <= 0 || cycles["sort"] <= 0 {
		t.Errorf("cycle model empty: %v", cycles)
	}
}

func TestTheoryPaperNumbers(t *testing.T) {
	cfg := PaperConfig()
	s, err := NewSimulation(Config{
		GridNX: cfg.GridNX, GridNY: cfg.GridNY, Wedge: cfg.Wedge,
		Mach: 4, ThermalSpeed: 0.125, MeanFreePath: 0.5,
		ParticlesPerCell: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	th := s.Theory()
	if math.Abs(th.ShockAngleDeg-45) > 0.3 {
		t.Errorf("theory shock angle %.2f, paper quotes 45", th.ShockAngleDeg)
	}
	if math.Abs(th.DensityRatio-3.7) > 0.05 {
		t.Errorf("theory density ratio %.3f, paper quotes 3.7", th.DensityRatio)
	}
	if math.Abs(th.Knudsen-0.02) > 1e-12 {
		t.Errorf("Knudsen %.4f, paper quotes 0.02", th.Knudsen)
	}
	if th.Detached {
		t.Errorf("paper's shock is attached")
	}
}

func TestTheoryDetached(t *testing.T) {
	cfg := testConfig()
	cfg.Mach = 1.5
	cfg.Wedge.AngleDeg = 40
	cfg.MeanFreePath = 0.5
	s, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Theory().Detached {
		t.Errorf("40° at Mach 1.5 must detach")
	}
}

func TestSampleDensityFieldMethods(t *testing.T) {
	cfg := testConfig()
	cfg.ParticlesPerCell = 10
	s, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(40)
	f := s.SampleDensity(30)
	if f.NX != cfg.GridNX || f.NY != cfg.GridNY {
		t.Fatalf("field shape %dx%d", f.NX, f.NY)
	}
	if fm := f.FreestreamMean(); math.Abs(fm-1) > 0.15 {
		t.Errorf("freestream density %.3f", fm)
	}
	if f.Max() <= 1 {
		t.Errorf("compression must exceed freestream, max %v", f.Max())
	}
	// Renderers produce plausible output.
	ascii := f.ASCII()
	if strings.Count(ascii, "\n") != cfg.GridNY {
		t.Errorf("ASCII map row count")
	}
	if len(f.Surface(8)) == 0 {
		t.Errorf("Surface empty")
	}
	var csv, pgm bytes.Buffer
	if err := f.WriteCSV(&csv); err != nil || csv.Len() == 0 {
		t.Errorf("CSV: %v", err)
	}
	if err := f.WritePGM(&pgm); err != nil || !bytes.HasPrefix(pgm.Bytes(), []byte("P5")) {
		t.Errorf("PGM: %v", err)
	}
	if segs := f.Contours(1.5); len(segs) == 0 {
		t.Errorf("no contours at level 1.5")
	}
	// Window extraction.
	win := f.Window(8, 0, 24, 12)
	if win.NX != 16 || win.NY != 12 {
		t.Errorf("window shape %dx%d", win.NX, win.NY)
	}
	if win.At(0, 0) != f.At(8, 0) {
		t.Errorf("window content mismatch")
	}
}

// TestPublicAPIShockValidation drives the whole paper validation through
// the public API on the reference backend at reduced scale.
func TestPublicAPIShockValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := PaperConfig()
	cfg.ParticlesPerCell = 8
	cfg.Seed = 5
	s, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(600)
	f := s.SampleDensity(300)
	th := s.Theory()
	if got := f.ShockAngleDeg(); math.Abs(got-th.ShockAngleDeg) > 5 {
		t.Errorf("measured shock angle %.1f°, theory %.1f°", got, th.ShockAngleDeg)
	}
	if got := f.PostShockMean(); math.Abs(got-th.DensityRatio)/th.DensityRatio > 0.25 {
		t.Errorf("post-shock density %.2f, theory %.2f", got, th.DensityRatio)
	}
	if thick := f.ShockThickness(); math.IsNaN(thick) || thick < 1 || thick > 12 {
		t.Errorf("rarefied shock thickness %.1f cells, paper reads ≈5", thick)
	}
	if wc := f.WakeContrast(); math.IsNaN(wc) {
		t.Errorf("wake contrast unavailable")
	}
}

// TestPublicWorkersDeterminism: through the public API, the same seed at
// Workers=1 and Workers=8 must produce identical trajectories and a
// bit-identical sampled density field on the Reference backend.
func TestPublicWorkersDeterminism(t *testing.T) {
	run := func(workers int) (*Simulation, *Field) {
		cfg := testConfig()
		cfg.Workers = workers
		s, err := NewSimulation(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run(15)
		return s, s.SampleDensity(5)
	}
	s1, f1 := run(1)
	s8, f8 := run(8)
	if s1.Collisions() != s8.Collisions() {
		t.Fatalf("collisions: %d vs %d", s1.Collisions(), s8.Collisions())
	}
	if s1.NFlow() != s8.NFlow() || s1.NReservoir() != s8.NReservoir() {
		t.Fatalf("population: flow %d/%d, reservoir %d/%d",
			s1.NFlow(), s8.NFlow(), s1.NReservoir(), s8.NReservoir())
	}
	for i := range f1.Data {
		if math.Float64bits(f1.Data[i]) != math.Float64bits(f8.Data[i]) {
			t.Fatalf("density field diverged at cell %d: %v vs %v", i, f1.Data[i], f8.Data[i])
		}
	}
}

// TestPrecisionFloat32Backend: the public Precision knob must select the
// float32 reference backend, which runs the same physics (same streams,
// narrowed columns) — populations and sampled density stay on top of the
// float64 run over a short transient, and the timing/phase surface works.
func TestPrecisionFloat32Backend(t *testing.T) {
	cfg := testConfig()
	cfg.Precision = Float32
	s32, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg64 := testConfig()
	s64, err := NewSimulation(cfg64)
	if err != nil {
		t.Fatal(err)
	}
	s32.Run(10)
	s64.Run(10)
	if s32.NFlow() == 0 || s32.Collisions() == 0 {
		t.Fatal("float32 backend did not simulate")
	}
	if f := float64(s32.NFlow()) / float64(s64.NFlow()); f < 0.99 || f > 1.01 {
		t.Errorf("float32 flow population %d far from float64 %d", s32.NFlow(), s64.NFlow())
	}
	f := s32.SampleDensity(5)
	mean := 0.0
	for _, v := range f.Data {
		mean += v
	}
	mean /= float64(len(f.Data))
	if mean <= 0 {
		t.Errorf("float32 density field empty")
	}
	if len(s32.PhaseSeconds()) == 0 {
		t.Errorf("phase timing missing on float32 backend")
	}

	bad := testConfig()
	bad.Precision = "float16"
	if _, err := NewSimulation(bad); err == nil {
		t.Errorf("unknown precision must fail")
	}
}
