// Package phys collects the compressible-flow and kinetic-theory relations
// used to calibrate the simulation and validate its results, exactly the
// checks the paper applies: the oblique-shock angle from θ–β–M theory, the
// Rankine–Hugoniot density rise, and the Prandtl–Meyer expansion around
// the wedge corner.
//
// Units follow the simulation normalisation: lengths in cell widths, times
// in time steps, velocities in cells per step. Temperature enters only
// through the freestream most-probable speed.
package phys

import (
	"errors"
	"math"
)

// GammaDiatomic is the ratio of specific heats for the paper's molecular
// model: three translational and two rotational degrees of freedom give
// γ = (5+2)/5 = 7/5.
const GammaDiatomic = 1.4

// Freestream bundles the normalised freestream state.
type Freestream struct {
	Mach   float64 // Mach number
	Cm     float64 // most probable thermal speed, cells/step
	Lambda float64 // mean free path, cells (0 = near-continuum mode)
	Gamma  float64 // ratio of specific heats
}

// SoundSpeed returns the freestream speed of sound a = cm·sqrt(γ/2),
// since a = sqrt(γRT) and cm = sqrt(2RT).
func (f Freestream) SoundSpeed() float64 { return f.Cm * math.Sqrt(f.Gamma/2) }

// Velocity returns the freestream flow speed u = M·a in cells/step.
func (f Freestream) Velocity() float64 { return f.Mach * f.SoundSpeed() }

// SpeedRatio returns the molecular speed ratio s = u/cm.
func (f Freestream) SpeedRatio() float64 { return f.Velocity() / f.Cm }

// MeanSpeed returns the mean thermal speed c̄ = (2/√π)·cm.
func (f Freestream) MeanSpeed() float64 { return f.Cm * 2 / math.SqrtPi }

// ComponentSigma returns the standard deviation of each velocity
// component at equilibrium: cm/√2 (each quadratic degree of freedom
// carries kT/2).
func (f Freestream) ComponentSigma() float64 { return f.Cm / math.Sqrt2 }

// CollisionTime returns the freestream mean collision time t_c = λ/c̄.
// Near-continuum mode (λ = 0) returns 0.
func (f Freestream) CollisionTime() float64 {
	if f.Lambda <= 0 {
		return 0
	}
	return f.Lambda / f.MeanSpeed()
}

// SelectionPInf returns the freestream selection probability
// P∞ = Δt/t_c∞ (Δt = 1 in normalised units) used by the selection rule,
// eq. (4) of the paper. Near-continuum mode returns 1 (all candidates
// collide). The paper's validity constraint P∞ ≲ 1/3 is the caller's
// responsibility; ValidateTimeStep checks it.
func (f Freestream) SelectionPInf() float64 {
	tc := f.CollisionTime()
	if tc == 0 {
		return 1
	}
	p := 1 / tc
	if p > 1 {
		p = 1
	}
	return p
}

// ErrTimeStepTooLarge indicates the time step violates the selection-rule
// constraint that Δt be 3–4 times smaller than the mean collision time.
var ErrTimeStepTooLarge = errors.New("phys: time step exceeds t_c/3; selection rule invalid (reduce Cm or increase Lambda)")

// ValidateTimeStep enforces the paper's constraint on the selection rule
// (P_c = Δt/t_c valid only if Δt ≤ t_c/3). Near-continuum mode is exempt:
// there every candidate pair collides by construction.
func (f Freestream) ValidateTimeStep() error {
	if f.Lambda <= 0 {
		return nil
	}
	if f.SelectionPInf() > 1.0/3+1e-12 {
		return ErrTimeStepTooLarge
	}
	return nil
}

// Knudsen returns the Knudsen number λ/L for a body of length L cells.
func (f Freestream) Knudsen(bodyLength float64) float64 {
	return f.Lambda / bodyLength
}

// Reynolds returns the Reynolds number from the Kn–M–Re relation for a
// hard-sphere-like gas, Kn = sqrt(γπ/2)·M/Re. For the paper's rarefied
// case (M=4, Kn=0.02) this gives Re ≈ 300; the paper quotes 600, which
// corresponds to a viscosity coefficient about half the hard-sphere value
// (Maxwell molecules are softer). Both are recorded in EXPERIMENTS.md.
func (f Freestream) Reynolds(bodyLength float64) float64 {
	kn := f.Knudsen(bodyLength)
	if kn <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(f.Gamma*math.Pi/2) * f.Mach / kn
}

// MachAngle returns the Mach angle µ = asin(1/M); M must be ≥ 1.
func MachAngle(m float64) float64 { return math.Asin(1 / m) }

// thetaFromBeta evaluates the θ–β–M relation:
// tan θ = 2·cot β·(M²sin²β − 1) / (M²(γ + cos 2β) + 2).
func thetaFromBeta(m, beta, gamma float64) float64 {
	s := math.Sin(beta)
	num := 2 * (m*m*s*s - 1) / math.Tan(beta)
	den := m*m*(gamma+math.Cos(2*beta)) + 2
	return math.Atan(num / den)
}

// ErrDetachedShock indicates the wedge angle exceeds the maximum for an
// attached oblique shock at this Mach number.
var ErrDetachedShock = errors.New("phys: no attached oblique shock (deflection exceeds maximum)")

// ObliqueShockBeta solves the θ–β–M relation for the weak-shock wave angle
// β given the flow deflection θ (radians). For the paper's validation
// case, M=4 and θ=30° give β=45°.
func ObliqueShockBeta(m, theta, gamma float64) (float64, error) {
	if m <= 1 {
		return 0, errors.New("phys: oblique shock requires supersonic flow")
	}
	lo := MachAngle(m)
	// Find the β of maximum deflection by golden-section-free scan, then
	// bisect on the weak branch [µ, βmax].
	hi := math.Pi / 2
	betaMax, thetaMax := lo, 0.0
	for i := 0; i <= 2000; i++ {
		b := lo + (hi-lo)*float64(i)/2000
		if th := thetaFromBeta(m, b, gamma); th > thetaMax {
			thetaMax, betaMax = th, b
		}
	}
	if theta > thetaMax {
		return 0, ErrDetachedShock
	}
	a, b := lo, betaMax
	for i := 0; i < 200; i++ {
		mid := (a + b) / 2
		if thetaFromBeta(m, mid, gamma) < theta {
			a = mid
		} else {
			b = mid
		}
	}
	return (a + b) / 2, nil
}

// NormalMach returns the normal component of the upstream Mach number for
// wave angle β.
func NormalMach(m, beta float64) float64 { return m * math.Sin(beta) }

// RHDensityRatio returns ρ2/ρ1 across a shock with upstream normal Mach
// number m1n (Rankine–Hugoniot). For the paper's case (M=4, β=45°,
// M1n = 2.83) this is 3.7.
func RHDensityRatio(m1n, gamma float64) float64 {
	return (gamma + 1) * m1n * m1n / ((gamma-1)*m1n*m1n + 2)
}

// RHPressureRatio returns p2/p1 across the shock.
func RHPressureRatio(m1n, gamma float64) float64 {
	return 1 + 2*gamma/(gamma+1)*(m1n*m1n-1)
}

// RHTemperatureRatio returns T2/T1 across the shock.
func RHTemperatureRatio(m1n, gamma float64) float64 {
	return RHPressureRatio(m1n, gamma) / RHDensityRatio(m1n, gamma)
}

// PostShockNormalMach returns the downstream normal Mach number.
func PostShockNormalMach(m1n, gamma float64) float64 {
	return math.Sqrt((1 + (gamma-1)/2*m1n*m1n) / (gamma*m1n*m1n - (gamma-1)/2))
}

// PostObliqueShockMach returns the full downstream Mach number after an
// oblique shock of wave angle beta with deflection theta.
func PostObliqueShockMach(m, beta, theta, gamma float64) float64 {
	m2n := PostShockNormalMach(NormalMach(m, beta), gamma)
	return m2n / math.Sin(beta-theta)
}

// PrandtlMeyer returns the Prandtl–Meyer function ν(M) in radians.
func PrandtlMeyer(m, gamma float64) float64 {
	if m <= 1 {
		return 0
	}
	k := math.Sqrt((gamma + 1) / (gamma - 1))
	t := math.Sqrt(m*m - 1)
	return k*math.Atan(t/k) - math.Atan(t)
}

// PrandtlMeyerInverse returns the Mach number with ν(M) = nu (radians),
// by bisection on [1, 100].
func PrandtlMeyerInverse(nu, gamma float64) float64 {
	lo, hi := 1.0, 100.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if PrandtlMeyer(mid, gamma) < nu {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// ExpansionDensityRatio returns ρ2/ρ1 for an isentropic Prandtl–Meyer
// expansion turning the flow by dTheta radians from upstream Mach m1.
func ExpansionDensityRatio(m1, dTheta, gamma float64) float64 {
	m2 := PrandtlMeyerInverse(PrandtlMeyer(m1, gamma)+dTheta, gamma)
	f := func(m float64) float64 { return 1 + (gamma-1)/2*m*m }
	// ρ ∝ (1 + (γ-1)/2 M²)^(-1/(γ-1)) along an isentrope.
	return math.Pow(f(m1)/f(m2), 1/(gamma-1))
}

// IsentropicDensityRatio returns ρ/ρ0 (static over stagnation) at Mach m.
func IsentropicDensityRatio(m, gamma float64) float64 {
	return math.Pow(1+(gamma-1)/2*m*m, -1/(gamma-1))
}

// MaxwellSpeedPDF returns the probability density of molecular speed c for
// a gas with most probable speed cm (3D Maxwell distribution).
func MaxwellSpeedPDF(c, cm float64) float64 {
	x := c / cm
	return 4 / math.SqrtPi * x * x * math.Exp(-x*x) / cm
}

// EquilibriumEnergyPerParticle returns the mean total (translational +
// rotational) thermal energy per particle divided by m, for 5 quadratic
// degrees of freedom with component variance sigma²: (5/2)·sigma².
func EquilibriumEnergyPerParticle(sigma float64) float64 { return 2.5 * sigma * sigma }
