package phys

import (
	"math"
	"testing"
	"testing/quick"
)

const deg = math.Pi / 180

// TestPaperValidationCase reproduces the two theory numbers the paper uses
// to validate the code: for Mach 4 flow over a 30° wedge, the shock angle
// is 45° and the Rankine–Hugoniot density rise is 3.7.
func TestPaperValidationCase(t *testing.T) {
	beta, err := ObliqueShockBeta(4, 30*deg, GammaDiatomic)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta/deg-45) > 0.3 {
		t.Errorf("shock angle = %.2f°, paper quotes 45°", beta/deg)
	}
	ratio := RHDensityRatio(NormalMach(4, beta), GammaDiatomic)
	if math.Abs(ratio-3.7) > 0.05 {
		t.Errorf("density ratio = %.3f, paper quotes 3.7", ratio)
	}
}

func TestMachAngle(t *testing.T) {
	if math.Abs(MachAngle(2)-30*deg) > 1e-12 {
		t.Errorf("MachAngle(2) = %v", MachAngle(2)/deg)
	}
}

func TestObliqueShockLimits(t *testing.T) {
	// θ → 0 gives β → Mach angle.
	beta, err := ObliqueShockBeta(3, 0.0001*deg, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta-MachAngle(3)) > 0.01 {
		t.Errorf("zero-deflection shock angle %v should approach Mach angle %v", beta/deg, MachAngle(3)/deg)
	}
	// Excessive deflection detaches.
	if _, err := ObliqueShockBeta(2, 40*deg, 1.4); err != ErrDetachedShock {
		t.Errorf("expected detached shock error, got %v", err)
	}
	// Subsonic is rejected.
	if _, err := ObliqueShockBeta(0.8, 10*deg, 1.4); err == nil {
		t.Errorf("expected error for subsonic flow")
	}
}

func TestObliqueShockConsistency(t *testing.T) {
	// β solved from θ must reproduce θ through the direct relation.
	f := func(mSeed, thSeed uint8) bool {
		m := 1.5 + float64(mSeed%60)/10      // 1.5..7.4
		th := (1 + float64(thSeed%25)) * deg // 1..25°
		beta, err := ObliqueShockBeta(m, th, 1.4)
		if err != nil {
			return true // detached: nothing to check
		}
		return math.Abs(thetaFromBeta(m, beta, 1.4)-th) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRHNormalShockTable(t *testing.T) {
	// Classic normal-shock table values, γ=1.4.
	cases := []struct{ m, rho, p float64 }{
		{1, 1, 1},
		{2, 2.6667, 4.5},
		{3, 3.8571, 10.3333},
		{5, 5.0, 29.0},
	}
	for _, c := range cases {
		if got := RHDensityRatio(c.m, 1.4); math.Abs(got-c.rho) > 2e-4*c.rho {
			t.Errorf("RHDensityRatio(%v) = %v, want %v", c.m, got, c.rho)
		}
		if got := RHPressureRatio(c.m, 1.4); math.Abs(got-c.p) > 2e-4*c.p {
			t.Errorf("RHPressureRatio(%v) = %v, want %v", c.m, got, c.p)
		}
	}
}

func TestRHDensityRatioLimit(t *testing.T) {
	// Strong-shock limit is (γ+1)/(γ-1) = 6 for γ = 1.4.
	if got := RHDensityRatio(1000, 1.4); math.Abs(got-6) > 0.001 {
		t.Errorf("strong shock density ratio = %v, want 6", got)
	}
}

func TestRHTemperatureIsPressureOverDensity(t *testing.T) {
	f := func(seed uint8) bool {
		m := 1.1 + float64(seed)/32
		tr := RHTemperatureRatio(m, 1.4)
		return math.Abs(tr-RHPressureRatio(m, 1.4)/RHDensityRatio(m, 1.4)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPostShockNormalMachSubsonic(t *testing.T) {
	for _, m := range []float64{1.5, 2, 4, 8} {
		if m2 := PostShockNormalMach(m, 1.4); m2 >= 1 || m2 <= 0 {
			t.Errorf("post-shock normal Mach %v for M1n=%v must be subsonic", m2, m)
		}
	}
}

func TestPostObliqueShockMach(t *testing.T) {
	// M=4, θ=30°, weak shock: downstream Mach ≈ 1.85, still supersonic but
	// reduced; and the normal-component identity M2n = M2·sin(β−θ) holds.
	beta, _ := ObliqueShockBeta(4, 30*deg, 1.4)
	m2 := PostObliqueShockMach(4, beta, 30*deg, 1.4)
	if m2 <= 1 || m2 >= 4 {
		t.Errorf("post-shock Mach = %v, must be in (1, 4)", m2)
	}
	if math.Abs(m2-1.85) > 0.05 {
		t.Errorf("post-shock Mach = %v, want ≈1.85", m2)
	}
	m2n := PostShockNormalMach(NormalMach(4, beta), 1.4)
	if math.Abs(m2*math.Sin(beta-30*deg)-m2n) > 1e-9 {
		t.Errorf("normal-component identity violated")
	}
}

func TestPrandtlMeyerKnownValues(t *testing.T) {
	// ν(2) = 26.38°, ν(4) = 65.78° for γ=1.4 (standard tables).
	if got := PrandtlMeyer(2, 1.4) / deg; math.Abs(got-26.38) > 0.02 {
		t.Errorf("nu(2) = %v°, want 26.38°", got)
	}
	if got := PrandtlMeyer(4, 1.4) / deg; math.Abs(got-65.78) > 0.02 {
		t.Errorf("nu(4) = %v°, want 65.78°", got)
	}
	if PrandtlMeyer(1, 1.4) != 0 {
		t.Errorf("nu(1) must be 0")
	}
}

func TestPrandtlMeyerInverse(t *testing.T) {
	for _, m := range []float64{1.2, 2, 3.7, 6} {
		nu := PrandtlMeyer(m, 1.4)
		if got := PrandtlMeyerInverse(nu, 1.4); math.Abs(got-m) > 1e-6 {
			t.Errorf("PM inverse of nu(%v) = %v", m, got)
		}
	}
}

func TestExpansionDensityRatioDecreases(t *testing.T) {
	r := ExpansionDensityRatio(1.66, 30*deg, 1.4)
	if r >= 1 || r <= 0 {
		t.Errorf("expansion must reduce density: ratio %v", r)
	}
	// Larger turn, lower density.
	if r2 := ExpansionDensityRatio(1.66, 40*deg, 1.4); r2 >= r {
		t.Errorf("stronger expansion must give lower density")
	}
}

func TestIsentropicDensityRatio(t *testing.T) {
	// ρ/ρ0 at M=1, γ=1.4 is 0.6339.
	if got := IsentropicDensityRatio(1, 1.4); math.Abs(got-0.6339) > 3e-4 {
		t.Errorf("isentropic density ratio at M=1: %v", got)
	}
}

func TestFreestreamDerivedQuantities(t *testing.T) {
	f := Freestream{Mach: 4, Cm: 0.125, Lambda: 0.5, Gamma: GammaDiatomic}
	if math.Abs(f.SoundSpeed()-0.125*math.Sqrt(0.7)) > 1e-12 {
		t.Errorf("SoundSpeed = %v", f.SoundSpeed())
	}
	if math.Abs(f.Velocity()-4*f.SoundSpeed()) > 1e-12 {
		t.Errorf("Velocity")
	}
	if math.Abs(f.SpeedRatio()-4*math.Sqrt(0.7)) > 1e-12 {
		t.Errorf("SpeedRatio = %v", f.SpeedRatio())
	}
	if math.Abs(f.MeanSpeed()-2/math.SqrtPi*0.125) > 1e-12 {
		t.Errorf("MeanSpeed")
	}
	if math.Abs(f.ComponentSigma()-0.125/math.Sqrt2) > 1e-12 {
		t.Errorf("ComponentSigma")
	}
	// Paper's rarefied case: wedge 25 cells, λ=0.5 → Kn = 0.02.
	if math.Abs(f.Knudsen(25)-0.02) > 1e-12 {
		t.Errorf("Knudsen = %v", f.Knudsen(25))
	}
	if re := f.Reynolds(25); re < 200 || re > 700 {
		t.Errorf("Reynolds = %v, expected O(300-600) band around paper's 600", re)
	}
}

func TestSelectionPInf(t *testing.T) {
	f := Freestream{Mach: 4, Cm: 0.125, Lambda: 0.5, Gamma: GammaDiatomic}
	want := f.MeanSpeed() / 0.5
	if got := f.SelectionPInf(); math.Abs(got-want) > 1e-12 {
		t.Errorf("SelectionPInf = %v, want %v", got, want)
	}
	// Near-continuum: every candidate collides.
	nc := Freestream{Mach: 4, Cm: 0.125, Lambda: 0, Gamma: GammaDiatomic}
	if nc.SelectionPInf() != 1 {
		t.Errorf("near-continuum P must be 1")
	}
	if err := nc.ValidateTimeStep(); err != nil {
		t.Errorf("near-continuum exempt from time-step constraint: %v", err)
	}
}

func TestValidateTimeStep(t *testing.T) {
	ok := Freestream{Mach: 4, Cm: 0.125, Lambda: 0.5, Gamma: GammaDiatomic}
	if err := ok.ValidateTimeStep(); err != nil {
		t.Errorf("cm=0.125, λ=0.5 satisfies Δt ≤ t_c/3: %v", err)
	}
	bad := Freestream{Mach: 4, Cm: 0.5, Lambda: 0.5, Gamma: GammaDiatomic}
	if err := bad.ValidateTimeStep(); err != ErrTimeStepTooLarge {
		t.Errorf("cm=0.5, λ=0.5 violates the constraint, got %v", err)
	}
}

func TestMaxwellSpeedPDFNormalised(t *testing.T) {
	// Integrate numerically.
	const cm = 1.3
	var sum float64
	const dc = 0.001
	for c := dc / 2; c < 10*cm; c += dc {
		sum += MaxwellSpeedPDF(c, cm) * dc
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Errorf("Maxwell speed pdf integrates to %v", sum)
	}
	// Mode at cm.
	if MaxwellSpeedPDF(cm, cm) < MaxwellSpeedPDF(0.9*cm, cm) ||
		MaxwellSpeedPDF(cm, cm) < MaxwellSpeedPDF(1.1*cm, cm) {
		t.Errorf("pdf mode must be at cm")
	}
}

func TestEquilibriumEnergyPerParticle(t *testing.T) {
	if got := EquilibriumEnergyPerParticle(2); got != 10 {
		t.Errorf("5 dof × sigma²/2 each: got %v", got)
	}
}
