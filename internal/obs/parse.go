package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseText is a deliberately tiny reader of the Prometheus text
// exposition format — just enough for tests to assert that a scrape
// parses and to read individual sample values, without taking a
// Prometheus dependency. It validates the shape of every line (# HELP
// and # TYPE comments with a known type, or `name[{labels}] value`)
// and returns the samples keyed by name+rendered-labels, the same key
// Sample.Key produces.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		key, val, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out[key] = val
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func checkComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return fmt.Errorf("malformed comment %q", line)
	}
	if !validName(fields[2]) {
		return fmt.Errorf("bad metric name %q", fields[2])
	}
	if fields[1] == "TYPE" {
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		switch fields[3] {
		case typeCounter, typeGauge, typeHistogram, "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
	}
	return nil
}

func parseSample(line string) (key string, val float64, err error) {
	// name{labels} value  |  name value
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd <= 0 {
		return "", 0, fmt.Errorf("malformed sample %q", line)
	}
	name := line[:nameEnd]
	if !validName(name) {
		return "", 0, fmt.Errorf("bad metric name %q", name)
	}
	rest := line[nameEnd:]
	labels := ""
	if rest[0] == '{' {
		end := labelsEnd(rest)
		if end < 0 {
			return "", 0, fmt.Errorf("unterminated labels in %q", line)
		}
		labels = rest[:end+1]
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// Timestamps (a trailing integer field) are legal in the format;
	// this writer never emits them, and the parser rejects them so a
	// test failure points at the unexpected field.
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad value in %q: %v", line, err)
	}
	return name + labels, v, nil
}

// labelsEnd returns the index of the closing '}' of a label block that
// starts at s[0] == '{', honouring escapes inside quoted values.
func labelsEnd(s string) int {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
