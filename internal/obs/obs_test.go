package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestExpositionAndParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_requests_total", "Requests served.")
	g := r.NewGauge("test_queue_depth", "Jobs queued.", L{"queue", "main"})
	r.NewGaugeFunc("test_workers", "Live workers.", func() float64 { return 3 })
	h := r.NewHistogram("test_phase_seconds", "Phase time.", []float64{0.001, 0.01, 0.1}, L{"phase", "sort"})

	c.Add(41)
	c.Inc()
	g.Set(7)
	g.Add(-2)
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(99)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	for _, want := range []string{
		"# HELP test_requests_total Requests served.",
		"# TYPE test_requests_total counter",
		"test_requests_total 42",
		`test_queue_depth{queue="main"} 5`,
		"test_workers 3",
		"# TYPE test_phase_seconds histogram",
		`test_phase_seconds_bucket{phase="sort",le="0.001"} 1`,
		`test_phase_seconds_bucket{phase="sort",le="0.1"} 2`,
		`test_phase_seconds_bucket{phase="sort",le="+Inf"} 3`,
		`test_phase_seconds_count{phase="sort"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}

	vals, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseText: %v\n%s", err, text)
	}
	if vals["test_requests_total"] != 42 {
		t.Errorf("parsed counter = %v, want 42", vals["test_requests_total"])
	}
	if vals[`test_queue_depth{queue="main"}`] != 5 {
		t.Errorf("parsed gauge = %v, want 5", vals[`test_queue_depth{queue="main"}`])
	}
	if vals[`test_phase_seconds_bucket{phase="sort",le="+Inf"}`] != 3 {
		t.Errorf("parsed +Inf bucket = %v, want 3", vals[`test_phase_seconds_bucket{phase="sort",le="+Inf"}`])
	}
	wantSum := 0.0005 + 0.05 + 99
	if got := vals[`test_phase_seconds_sum{phase="sort"}`]; math.Abs(got-wantSum) > 1e-12 {
		t.Errorf("parsed sum = %v, want %v", got, wantSum)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"no value line",
		"1leading_digit 3",
		`unterminated{le="x 3`,
		"# TYPE x wibble",
		"name 12 34 56",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q) accepted malformed input", bad)
		}
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("dsmc_engine_steps_total", "Steps.")
	h := r.NewHistogram("dsmc_engine_phase_seconds", "Phase.", []float64{1}, L{"phase", "move"})
	r.NewCounter("dsmc_coord_polls_total", "Polls.")
	c.Add(5)
	h.Observe(0.5)

	snap := r.Snapshot("dsmc_engine_")
	keys := make(map[string]float64, len(snap))
	for _, s := range snap {
		keys[s.Key()] = s.Value
	}
	if len(snap) != 3 {
		t.Fatalf("Snapshot returned %d samples, want 3: %v", len(snap), snap)
	}
	if keys["dsmc_engine_steps_total"] != 5 {
		t.Errorf("steps sample = %v, want 5", keys["dsmc_engine_steps_total"])
	}
	if keys[`dsmc_engine_phase_seconds_count{phase="move"}`] != 1 {
		t.Errorf("count sample = %v, want 1", keys[`dsmc_engine_phase_seconds_count{phase="move"}`])
	}
}

// TestRecordPathAllocFree pins the tentpole's core claim: recording a
// metric performs zero heap allocations, so instrumented //dsmc:hotpath
// functions keep their AllocsPerRun guarantees.
func TestRecordPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("alloc_c", "c")
	g := r.NewGauge("alloc_g", "g")
	h := r.NewHistogram("alloc_h", "h", DurationBuckets)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		g.Add(0.5)
		h.Observe(0.002)
	}); n != 0 {
		t.Fatalf("record path allocates %v per op, want 0", n)
	}
}

func TestSetEnabled(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("toggle_c", "c")
	h := r.NewHistogram("toggle_h", "h", []float64{1})
	SetEnabled(false)
	c.Inc()
	h.Observe(0.5)
	SetEnabled(true)
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled instruments moved: c=%d h=%d", c.Value(), h.Count())
	}
	c.Inc()
	h.Observe(0.5)
	if c.Value() != 1 || h.Count() != 1 {
		t.Fatalf("re-enabled instruments stuck: c=%d h=%d", c.Value(), h.Count())
	}
}

// TestConcurrentScrape hammers the record path from several goroutines
// while scraping; under -race this is the proof that exposition is
// safe concurrent with stepping.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("cc", "c")
	h := r.NewHistogram("hh", "h", []float64{0.01, 0.1}, L{"phase", "x"})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(0.05)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		if _, err := ParseText(strings.NewReader(b.String())); err != nil {
			t.Fatalf("mid-hammer scrape does not parse: %v\n%s", err, b.String())
		}
	}
	close(stop)
	wg.Wait()
	if h.Count() != c.Value() {
		t.Fatalf("count mismatch after quiesce: h=%d c=%d", h.Count(), c.Value())
	}
}

func TestRegistrationConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "x")
	mustPanic(t, "type conflict", func() { r.NewGauge("x_total", "x") })
	mustPanic(t, "duplicate labels", func() { r.NewCounter("x_total", "x") })
	mustPanic(t, "non-ascending buckets", func() { r.NewHistogram("x_h", "h", []float64{1, 1}) })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	f()
}
