// Package obs is the repo's zero-dependency observability layer: a
// metrics registry (counters, gauges, fixed-bucket histograms) with
// Prometheus text-format exposition. The design splits hot from cold:
// the record path (Inc/Add/Set/Observe) is a handful of atomic
// operations with zero heap allocations — safe inside //dsmc:hotpath
// functions — while everything stateful-but-slow (registration,
// snapshotting, text rendering) happens on the scrape path under a
// lock. Values are read with atomic snapshots, so scraping is safe
// concurrent with stepping; a scrape observes each sample at some
// point during its own execution, never a torn value.
//
// Metrics carry constant label sets fixed at registration (for
// example one histogram child per engine phase). There is no dynamic
// label lookup on the record path: callers hold the child pointer.
// Registration panics on conflicting reuse of a name — metrics are
// wired at package init, so a conflict is a programming error, not a
// runtime condition.
//
// The package deliberately has no clock reads and no randomness: it
// records durations handed to it, which is what keeps the dsmclint
// determinism rule and the engine's bit-identity goldens untouched by
// instrumentation.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// enabled gates every record path in the process. It exists for one
// consumer: the bench's metrics-on vs metrics-off overhead pair. Off,
// a record call is a single atomic load and a branch.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns the record paths of every instrument in the
// process on or off. Scrapes still work when disabled; values simply
// stop moving.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether record paths are live.
func Enabled() bool { return enabled.Load() }

// L is one constant label pair, fixed at registration.
type L struct{ K, V string }

// Sample is one flattened exposition sample: a metric name (with the
// histogram suffixes already applied), a rendered label string such as
// `{phase="sort"}` (empty when unlabelled), and the value. It is the
// unit of the compact snapshots workers piggyback on heartbeats, so it
// has JSON tags.
type Sample struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// Key returns the exposition identity Name+Labels, the form the text
// parser also uses as map key.
func (s Sample) Key() string { return s.Name + s.Labels }

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// child is one (label set, value) member of a metric family.
type child struct {
	labels string // rendered, sorted; "" when unlabelled
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// family is one metric name: help, type, and its label children.
type family struct {
	name, help, typ string
	children        []child
}

// Registry holds metric families and renders them. The zero value is
// not usable; call NewRegistry. All methods are safe for concurrent
// use; record paths never touch the registry lock.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Default is the process-wide registry every package-level instrument
// registers on, and the one cmd/dsmcd exposes at GET /metrics.
var Default = NewRegistry()

// renderLabels renders a constant label set into its exposition form,
// sorted by key, values escaped per the text format.
func renderLabels(labels []L) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]L, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].K < ls[j].K })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.K)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.V))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register attaches a child to the named family, creating the family
// on first use and panicking on help/type mismatch or a duplicate
// label set — registration happens at init, so conflicts are bugs.
func (r *Registry) register(name, help, typ string, ch child) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.fams[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	for _, c := range f.children {
		if c.labels == ch.labels {
			panic(fmt.Sprintf("obs: duplicate registration of %s%s", name, ch.labels))
		}
	}
	f.children = append(f.children, ch)
	sort.Slice(f.children, func(i, j int) bool { return f.children[i].labels < f.children[j].labels })
}

// Counter is a monotonically increasing integer-valued metric.
type Counter struct{ v atomic.Uint64 }

// NewCounter registers a counter child under name with the given
// constant labels.
func (r *Registry) NewCounter(name, help string, labels ...L) *Counter {
	c := &Counter{}
	r.register(name, help, typeCounter, child{labels: renderLabels(labels), c: c})
	return c
}

// Inc adds one.
//
//dsmc:hotpath
func (c *Counter) Inc() {
	if enabled.Load() {
		c.v.Add(1)
	}
}

// Add adds n (n must be non-negative; counters only go up).
//
//dsmc:hotpath
func (c *Counter) Add(n uint64) {
	if enabled.Load() {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float-valued metric that can go up and down. The value
// lives in the bits of one uint64, so Set is a single atomic store
// and Add a CAS loop — allocation-free either way.
type Gauge struct{ bits atomic.Uint64 }

// NewGauge registers a gauge child under name with the given constant
// labels.
func (r *Registry) NewGauge(name, help string, labels ...L) *Gauge {
	g := &Gauge{}
	r.register(name, help, typeGauge, child{labels: renderLabels(labels), g: g})
	return g
}

// Set replaces the gauge value.
//
//dsmc:hotpath
func (g *Gauge) Set(v float64) {
	if enabled.Load() {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta to the gauge value.
//
//dsmc:hotpath
func (g *Gauge) Add(delta float64) {
	if !enabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// NewGaugeFunc registers a gauge whose value is computed at scrape
// time by f. Use it for values that already live somewhere under a
// lock (queue depths, worker counts) rather than mirroring them into
// a stored gauge on every mutation.
func (r *Registry) NewGaugeFunc(name, help string, f func() float64, labels ...L) {
	r.register(name, help, typeGauge, child{labels: renderLabels(labels), gf: f})
}

// Histogram is a fixed-bucket histogram. Buckets are upper bounds in
// ascending order; an implicit +Inf bucket is appended. Observe finds
// the bucket by linear scan (bucket counts are small and fixed) and
// increments exactly one bucket counter — buckets are stored
// non-cumulative and accumulated at scrape, which keeps the record
// path a single atomic add plus a CAS for the sum.
type Histogram struct {
	upper   []float64
	buckets []atomic.Uint64 // len(upper)+1; last is +Inf
	sumBits atomic.Uint64
}

// DurationBuckets is the default bucket ladder for per-step phase
// times: 10 µs to 10 s in 1–2.5–5 decades, wide enough for a tiny
// smoke case and a paper-scale step on a loaded host.
var DurationBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// NewHistogram registers a histogram child under name with the given
// upper bounds (ascending) and constant labels.
func (r *Registry) NewHistogram(name, help string, upper []float64, labels ...L) *Histogram {
	for i := 1; i < len(upper); i++ {
		if upper[i] <= upper[i-1] {
			panic(fmt.Sprintf("obs: histogram %s buckets not ascending", name))
		}
	}
	h := &Histogram{upper: upper, buckets: make([]atomic.Uint64, len(upper)+1)}
	r.register(name, help, typeHistogram, child{labels: renderLabels(labels), h: h})
	return h
}

// Observe records one value.
//
//dsmc:hotpath
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.buckets[i].Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// fmtVal renders a float in the shortest exact form the text format
// accepts.
func fmtVal(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders the registry in Prometheus text exposition format
// 0.0.4: families sorted by name, # HELP and # TYPE once per family,
// histogram children expanded into cumulative _bucket/_sum/_count
// series.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.fams[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, ch := range f.children {
			writeChild(&b, f, ch)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeChild(b *strings.Builder, f *family, ch child) {
	switch {
	case ch.c != nil:
		fmt.Fprintf(b, "%s%s %s\n", f.name, ch.labels, fmtVal(float64(ch.c.Value())))
	case ch.g != nil:
		fmt.Fprintf(b, "%s%s %s\n", f.name, ch.labels, fmtVal(ch.g.Value()))
	case ch.gf != nil:
		fmt.Fprintf(b, "%s%s %s\n", f.name, ch.labels, fmtVal(ch.gf()))
	case ch.h != nil:
		var cum uint64
		for i, u := range ch.h.upper {
			cum += ch.h.buckets[i].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, mergeLE(ch.labels, fmtVal(u)), cum)
		}
		cum += ch.h.buckets[len(ch.h.upper)].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, mergeLE(ch.labels, "+Inf"), cum)
		fmt.Fprintf(b, "%s_sum%s %s\n", f.name, ch.labels, fmtVal(ch.h.Sum()))
		fmt.Fprintf(b, "%s_count%s %d\n", f.name, ch.labels, cum)
	}
}

// mergeLE appends the le label to an already-rendered label string.
func mergeLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// Snapshot returns the registry's current values as flattened samples,
// restricted to families whose name starts with prefix ("" for all).
// Histograms contribute only their _sum and _count — the compact form
// workers piggyback on heartbeats, where per-bucket resolution is not
// worth the bytes.
func (r *Registry) Snapshot(prefix string) []Sample {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		if strings.HasPrefix(n, prefix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.fams[n]
	}
	r.mu.Unlock()

	var out []Sample
	for _, f := range fams {
		for _, ch := range f.children {
			switch {
			case ch.c != nil:
				out = append(out, Sample{f.name, ch.labels, float64(ch.c.Value())})
			case ch.g != nil:
				out = append(out, Sample{f.name, ch.labels, ch.g.Value()})
			case ch.gf != nil:
				out = append(out, Sample{f.name, ch.labels, ch.gf()})
			case ch.h != nil:
				out = append(out, Sample{f.name + "_sum", ch.labels, ch.h.Sum()})
				out = append(out, Sample{f.name + "_count", ch.labels, float64(ch.h.Count())})
			}
		}
	}
	return out
}
