package fixed

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromFloatRoundTrip(t *testing.T) {
	cases := []float64{0, 1, -1, 0.5, -0.5, 3.1415926, -127.75, 255.999, -255.999}
	for _, f := range cases {
		x := FromFloat(f)
		if got := x.Float(); math.Abs(got-f) > 1.0/(1<<FracBits) {
			t.Errorf("round trip %v -> %v, err %g", f, got, got-f)
		}
	}
}

func TestFromFloatSaturates(t *testing.T) {
	if FromFloat(1e9) != Max {
		t.Errorf("positive overflow must saturate to Max")
	}
	if FromFloat(-1e9) != Min {
		t.Errorf("negative overflow must saturate to Min")
	}
}

func TestFromInt(t *testing.T) {
	if FromInt(3) != 3*One {
		t.Errorf("FromInt(3) = %v", FromInt(3))
	}
	if FromInt(1000) != Max {
		t.Errorf("FromInt(1000) must saturate")
	}
	if FromInt(-1000) != Min {
		t.Errorf("FromInt(-1000) must saturate")
	}
	if FromInt(-5).Float() != -5 {
		t.Errorf("FromInt(-5) = %v", FromInt(-5).Float())
	}
}

func TestIntTruncatesDownward(t *testing.T) {
	if FromFloat(3.75).Int() != 3 {
		t.Errorf("Int(3.75) = %d", FromFloat(3.75).Int())
	}
	if FromFloat(-0.25).Int() != -1 {
		t.Errorf("Int(-0.25) = %d, want -1 (floor semantics)", FromFloat(-0.25).Int())
	}
}

func TestFrac(t *testing.T) {
	x := FromFloat(3.25)
	if got := x.Frac().Float(); math.Abs(got-0.25) > 1e-6 {
		t.Errorf("Frac(3.25) = %v", got)
	}
}

func TestAddSubProperty(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := Fix(a)/4, Fix(b)/4 // keep clear of saturation
		return Add(x, y) == x+y && Sub(x, y) == x-y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSaturates(t *testing.T) {
	if Add(Max, One) != Max {
		t.Errorf("Add overflow must saturate")
	}
	if Sub(Min, One) != Min {
		t.Errorf("Sub underflow must saturate")
	}
}

func TestMulMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a := rng.Float64()*20 - 10
		b := rng.Float64()*20 - 10
		got := Mul(FromFloat(a), FromFloat(b)).Float()
		if math.Abs(got-a*b) > 4.0/(1<<FracBits)*math.Max(1, math.Abs(a)+math.Abs(b)) {
			t.Fatalf("Mul(%g,%g) = %g, want %g", a, b, got, a*b)
		}
	}
}

func TestDivMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a := rng.Float64()*20 - 10
		b := rng.Float64()*20 - 10
		if math.Abs(b) < 0.1 {
			continue
		}
		got := Div(FromFloat(a), FromFloat(b)).Float()
		if math.Abs(got-a/b) > 1e-4 {
			t.Fatalf("Div(%g,%g) = %g, want %g", a, b, got, a/b)
		}
	}
}

func TestDivByZeroSaturates(t *testing.T) {
	if Div(One, 0) != Max {
		t.Errorf("1/0 must saturate to Max")
	}
	if Div(-One, 0) != Min {
		t.Errorf("-1/0 must saturate to Min")
	}
}

func TestHalfTruncatesDownward(t *testing.T) {
	if Half(5) != 2 {
		t.Errorf("Half(5 lsb) = %d", Half(5))
	}
	if Half(-5) != -3 {
		t.Errorf("Half(-5 lsb) = %d, want -3 (floor)", Half(-5))
	}
}

// TestHalfStochasticUnbiased verifies the paper's claim: adding 0 or 1 with
// uniform probability after the truncating division by 2 achieves correct
// rounding in the statistical sense, i.e. E[HalfStochastic(x)] = x/2.
func TestHalfStochasticUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, x := range []Fix{1, 3, -1, -3, 12345, -98765, One + 1} {
		const n = 200000
		var sum int64
		for i := 0; i < n; i++ {
			sum += int64(HalfStochastic(x, uint32(rng.Int63()&1)))
		}
		mean := float64(sum) / n
		want := float64(x) / 2
		if math.Abs(mean-want) > 0.01 {
			t.Errorf("E[HalfStochastic(%d)] = %v, want %v", x, mean, want)
		}
	}
}

func TestHalfStochasticEvenExact(t *testing.T) {
	// Even inputs need no dither; both random bits must give the exact half.
	for _, x := range []Fix{0, 2, -4, 1 << 20} {
		if HalfStochastic(x, 0) != x/2 || HalfStochastic(x, 1) != x/2 {
			t.Errorf("HalfStochastic(%d) not exact on even input", x)
		}
	}
}

// TestConsistentTruncationLosesEnergy demonstrates the failure mode the paper
// describes: repeated truncating halving is biased low, while the stochastic
// version is not. This is the stagnation-region energy-loss mechanism.
func TestConsistentTruncationLosesEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n = 50000
	var truncSum, stochSum, exactSum float64
	for i := 0; i < n; i++ {
		x := Fix(rng.Int31n(1000) + 1)
		truncSum += float64(Half(x))
		stochSum += float64(HalfStochastic(x, uint32(rng.Int63()&1)))
		exactSum += float64(x) / 2
	}
	truncBias := (exactSum - truncSum) / n
	stochBias := math.Abs(exactSum-stochSum) / n
	if truncBias < 0.2 {
		t.Errorf("expected consistent truncation to be biased low by ~0.25 LSB, got %v", truncBias)
	}
	if stochBias > 0.05 {
		t.Errorf("stochastic rounding should be unbiased, residual %v", stochBias)
	}
}

func TestSqrt(t *testing.T) {
	for _, f := range []float64{0, 0.25, 1, 2, 9, 100, 250} {
		got := Sqrt(FromFloat(f)).Float()
		if math.Abs(got-math.Sqrt(f)) > 1e-5*(1+math.Sqrt(f)) {
			t.Errorf("Sqrt(%g) = %g, want %g", f, got, math.Sqrt(f))
		}
	}
	if Sqrt(-One) != 0 {
		t.Errorf("Sqrt of negative must return 0")
	}
}

func TestSqrtProperty(t *testing.T) {
	f := func(a int32) bool {
		x := Fix(a)
		if x < 0 {
			x = -x / 2
		}
		r := Sqrt(x)
		// r^2 <= x < (r+eps)^2 within one LSB of rounding.
		lo := Mul(r, r)
		hi := Mul(r+2, r+2)
		return lo <= x+2 && hi >= x-2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDot5ConservedUnderPermutationAndSign(t *testing.T) {
	// The invariant behind the collision algorithm: permuting components and
	// flipping signs preserves the squared norm.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		var v [5]Fix
		for j := range v {
			v[j] = FromFloat(rng.Float64()*4 - 2)
		}
		before := Norm2of5(&v)
		p := rng.Perm(5)
		var w [5]Fix
		for j := range w {
			w[j] = v[p[j]]
			if rng.Int63()&1 == 0 {
				w[j] = -w[j]
			}
		}
		if Norm2of5(&w) != before {
			t.Fatalf("norm changed under permutation+sign: %d -> %d", before, Norm2of5(&w))
		}
	}
}

func TestDirtyBits(t *testing.T) {
	x := Fix(0b101101101)
	if DirtyBits(x, 3) != 0b110 {
		t.Errorf("DirtyBits skips the lowest bit: got %b", DirtyBits(x, 3))
	}
	if DirtyBits(x, 23) >= 1<<23 {
		t.Errorf("DirtyBits must mask to n bits")
	}
}

func TestClampLerpScaleAbsNeg(t *testing.T) {
	if Clamp(FromInt(5), 0, One) != One {
		t.Errorf("Clamp high")
	}
	if Clamp(FromInt(-5), 0, One) != 0 {
		t.Errorf("Clamp low")
	}
	if got := Lerp(0, FromInt(2), FromFloat(0.5)).Float(); math.Abs(got-1) > 1e-6 {
		t.Errorf("Lerp = %v", got)
	}
	if Scale(One, 3) != 3*One {
		t.Errorf("Scale")
	}
	if Scale(Max, 2) != Max {
		t.Errorf("Scale must saturate")
	}
	if Abs(FromInt(-3)) != FromInt(3) {
		t.Errorf("Abs")
	}
	if Abs(Min) != Max || Neg(Min) != Max {
		t.Errorf("Abs/Neg of Min must saturate to Max")
	}
}
