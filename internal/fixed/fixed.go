// Package fixed implements the 32-bit fixed-point arithmetic used by the
// Connection Machine implementation of the particle simulation.
//
// The paper stores the physical state of a particle in a 32-bit fixed-point
// format with 23 bits of precision (matching the 23-bit mantissa of IEEE
// single precision). This package provides that format — Q8.23 plus sign,
// referred to throughout as Q9.23 — together with the stochastic-rounding
// correction the paper applies after halving, and the "quick but dirty"
// random numbers extracted from the low-order bits of state quantities.
package fixed

import "math"

// FracBits is the number of fractional bits in the fixed-point format.
// The paper uses 23 bits of precision in a 32-bit word.
const FracBits = 23

// One is the fixed-point representation of 1.0.
const One Fix = 1 << FracBits

// Max and Min are the saturation limits of the format.
const (
	Max Fix = math.MaxInt32
	Min Fix = math.MinInt32
)

// Eps is the smallest positive increment representable in the format.
const Eps Fix = 1

// Fix is a signed 32-bit fixed-point number with FracBits fractional bits.
// The integer range is [-256, 256) with a resolution of 2^-23.
type Fix int32

// FromFloat converts a float64 to fixed point, rounding to nearest and
// saturating at the format limits.
func FromFloat(f float64) Fix {
	v := math.RoundToEven(f * (1 << FracBits))
	if v >= float64(math.MaxInt32) {
		return Max
	}
	if v <= float64(math.MinInt32) {
		return Min
	}
	return Fix(v)
}

// FromInt converts an integer to fixed point, saturating on overflow.
func FromInt(i int) Fix {
	if i >= 1<<(31-FracBits) {
		return Max
	}
	if i < -(1 << (31 - FracBits)) {
		return Min
	}
	return Fix(i << FracBits)
}

// Float converts a fixed-point value to float64 exactly.
func (x Fix) Float() float64 { return float64(x) / (1 << FracBits) }

// Int returns the integer part of x, truncating toward negative infinity.
// This matches the bit-shift truncation of the bit-serial hardware and is
// what the cell-index computation in the paper uses.
func (x Fix) Int() int { return int(x >> FracBits) }

// Frac returns the fractional bits of x as a non-negative value below One.
func (x Fix) Frac() Fix { return x & (One - 1) }

// Add returns x+y with saturation.
func Add(x, y Fix) Fix {
	s := int64(x) + int64(y)
	return sat64(s)
}

// Sub returns x-y with saturation.
func Sub(x, y Fix) Fix {
	s := int64(x) - int64(y)
	return sat64(s)
}

// Mul returns the fixed-point product x*y, truncated toward zero on the
// low side, with saturation.
func Mul(x, y Fix) Fix {
	p := (int64(x) * int64(y)) >> FracBits
	return sat64(p)
}

// MulRound returns the fixed-point product rounded to nearest.
func MulRound(x, y Fix) Fix {
	p := int64(x) * int64(y)
	p += 1 << (FracBits - 1)
	return sat64(p >> FracBits)
}

// Div returns the fixed-point quotient x/y, truncated. Division by zero
// saturates in the direction of the sign of x (0/0 returns Max, matching
// the saturating behaviour documented for the substrate rather than
// trapping, since library code must not panic on simulation data).
func Div(x, y Fix) Fix {
	if y == 0 {
		if x < 0 {
			return Min
		}
		return Max
	}
	q := (int64(x) << FracBits) / int64(y)
	return sat64(q)
}

// Half returns x/2 truncated toward negative infinity (arithmetic shift),
// exactly as the bit-serial divide-by-two behaves. The consistent downward
// truncation is the energy-loss mechanism the paper identifies in
// stagnation regions.
func Half(x Fix) Fix { return x >> 1 }

// HalfStochastic returns x/2 with the paper's correction: when the shifted-
// out bit is 1 (the result was truncated), one LSB is added with probability
// 1/2 using the supplied random bit, so the expected value of the result is
// exactly x/2. rbit must be 0 or 1.
func HalfStochastic(x Fix, rbit uint32) Fix {
	h := x >> 1
	if x&1 != 0 {
		h += Fix(rbit & 1)
	}
	return h
}

// DirtyBits extracts n low-order bits of x as the paper's "quick but dirty
// random number of limited size and unspecified distribution". n must be in
// [1, 23]; the lowest bit is skipped because after a halving it is the most
// recently generated and strongly correlated with the dither.
func DirtyBits(x Fix, n uint) uint32 {
	return (uint32(x) >> 1) & ((1 << n) - 1)
}

// Abs returns |x| with saturation (|Min| saturates to Max).
func Abs(x Fix) Fix {
	if x == Min {
		return Max
	}
	if x < 0 {
		return -x
	}
	return x
}

// Neg returns -x with saturation.
func Neg(x Fix) Fix {
	if x == Min {
		return Max
	}
	return -x
}

// Sqrt returns the fixed-point square root of x using a bitwise
// integer method (no floating point); negative input returns 0.
func Sqrt(x Fix) Fix {
	if x <= 0 {
		return 0
	}
	// Compute isqrt(x << FracBits) so the result is in Q9.23.
	v := uint64(x) << FracBits
	var res uint64
	bit := uint64(1) << 62
	for bit > v {
		bit >>= 2
	}
	for bit != 0 {
		if v >= res+bit {
			v -= res + bit
			res = res>>1 + bit
		} else {
			res >>= 1
		}
		bit >>= 2
	}
	return sat64(int64(res))
}

// Scale multiplies x by the integer k with saturation.
func Scale(x Fix, k int) Fix {
	return sat64(int64(x) * int64(k))
}

// Lerp returns a + t*(b-a) for t in fixed point.
func Lerp(a, b, t Fix) Fix {
	return Add(a, Mul(t, Sub(b, a)))
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi Fix) Fix {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func sat64(v int64) Fix {
	if v > int64(math.MaxInt32) {
		return Max
	}
	if v < int64(math.MinInt32) {
		return Min
	}
	return Fix(v)
}

// Dot5 returns the fixed-point dot product of two 5-component vectors,
// the quantity conserved by the collision algorithm (eq. 18 of the paper).
// The accumulation is done in 64-bit before a single saturating narrowing,
// so intermediate overflow cannot corrupt the conservation check.
func Dot5(a, b *[5]Fix) Fix {
	var acc int64
	for i := 0; i < 5; i++ {
		acc += (int64(a[i]) * int64(b[i])) >> FracBits
	}
	return sat64(acc)
}

// Norm2of5 returns the squared magnitude of a 5-component vector.
func Norm2of5(a *[5]Fix) Fix { return Dot5(a, a) }
