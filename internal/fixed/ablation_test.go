package fixed

import (
	"math"
	"testing"

	"dsmc/internal/rng"
)

// truncTowardZero halves with truncation toward zero — the raw bit-serial
// divide-by-two on sign-magnitude values, whose consistent truncation the
// paper identifies as the cause of "a significant loss in total energy in
// stagnation regions of the flow".
func truncTowardZero(x Fix) Fix {
	if x < 0 {
		return -(-x >> 1)
	}
	return x >> 1
}

// halfStochasticZero is the same halving with the paper's correction:
// 0 or 1 LSB added with uniform probability toward the discarded bit.
func halfStochasticZero(x Fix, bit uint32) Fix {
	if x < 0 {
		return -HalfStochastic(-x, bit)
	}
	return HalfStochastic(x, bit)
}

// collideFixed runs the 5-component permutation collision on a pair with
// the supplied halving function, the same construction as the paper's
// collision algorithm: rel and mean per component, halve the relative
// components, rebuild a = mean + h, b = mean − h.
func collideFixed(a, b *[5]Fix, half func(Fix) Fix, r *rng.Stream, table []rng.Perm5) {
	var rel, mean [5]Fix
	for k := 0; k < 5; k++ {
		rel[k] = Sub(a[k], b[k])
		mean[k] = half(Add(a[k], b[k]))
	}
	perm := rng.RandomPerm5(table, r)
	signs := r.Uint32()
	var newRel [5]Fix
	for k, src := range perm {
		v := rel[src]
		if signs>>uint(k)&1 == 1 {
			v = Neg(v)
		}
		newRel[k] = v
	}
	for k := 0; k < 5; k++ {
		h := half(newRel[k])
		a[k] = Add(mean[k], h)
		b[k] = Sub(mean[k], h)
	}
}

func ensembleEnergy(parts [][5]Fix) float64 {
	var e float64
	for i := range parts {
		for k := 0; k < 5; k++ {
			v := parts[i][k].Float()
			e += v * v
		}
	}
	return e
}

// TestAblationTruncationDrainsEnergy reproduces the failure mode and the
// fix described in the paper's implementation section: with consistent
// truncation after the division by 2, repeated collisions steadily drain
// kinetic energy; adding 0 or 1 with uniform probability "in a
// statistical sense achieves the correct rounding" and the drain
// disappears.
func TestAblationTruncationDrainsEnergy(t *testing.T) {
	const n = 2000
	const steps = 400
	table := rng.Perm5Table()

	run := func(half func(Fix, *rng.Stream) Fix, seed uint64) (lossFrac float64) {
		r := rng.NewStream(seed)
		parts := make([][5]Fix, n)
		for i := range parts {
			for k := 0; k < 5; k++ {
				// Small thermal velocities, as in a stagnation region.
				parts[i][k] = FromFloat(r.Gaussian(0, 0.01))
			}
		}
		e0 := ensembleEnergy(parts)
		h := func(x Fix) Fix { return half(x, &r) }
		for s := 0; s < steps; s++ {
			// Random pairing each step, every pair collides.
			for i := 0; i+1 < n; i += 2 {
				j := i + 1 + r.Intn(n-i-1)
				parts[i+1], parts[j] = parts[j], parts[i+1]
				collideFixed(&parts[i], &parts[i+1], h, &r, table)
			}
		}
		return (e0 - ensembleEnergy(parts)) / e0
	}

	truncLoss := run(func(x Fix, r *rng.Stream) Fix { return truncTowardZero(x) }, 1)
	stochLoss := run(func(x Fix, r *rng.Stream) Fix { return halfStochasticZero(x, r.Bit()) }, 1)

	if truncLoss < 0.002 {
		t.Errorf("consistent truncation should visibly drain energy, lost only %.4f%%", 100*truncLoss)
	}
	if math.Abs(stochLoss) > truncLoss/5 {
		t.Errorf("stochastic rounding should cure the drain: trunc %.4f%%, stochastic %.4f%%",
			100*truncLoss, 100*stochLoss)
	}
}

// TestAblationDrainScalesWithCollisions: the drain is per-collision, so
// doubling the number of steps roughly doubles the loss — the reason it
// matters most in stagnation regions, where the collision rate peaks.
func TestAblationDrainScalesWithCollisions(t *testing.T) {
	table := rng.Perm5Table()
	run := func(steps int) float64 {
		const n = 1000
		r := rng.NewStream(3)
		parts := make([][5]Fix, n)
		for i := range parts {
			for k := 0; k < 5; k++ {
				parts[i][k] = FromFloat(r.Gaussian(0, 0.01))
			}
		}
		e0 := ensembleEnergy(parts)
		for s := 0; s < steps; s++ {
			for i := 0; i+1 < n; i += 2 {
				j := i + 1 + r.Intn(n-i-1)
				parts[i+1], parts[j] = parts[j], parts[i+1]
				collideFixed(&parts[i], &parts[i+1], truncTowardZero, &r, table)
			}
		}
		return (e0 - ensembleEnergy(parts)) / e0
	}
	l1 := run(150)
	l2 := run(300)
	if l2 < 1.5*l1 {
		t.Errorf("drain should accumulate with collisions: %.4f%% at 150 steps, %.4f%% at 300",
			100*l1, 100*l2)
	}
}
