// Package geom provides the wind-tunnel geometry of the simulation: the
// inclined wedge (the only body the paper's implementation supports, as an
// "inclined flat plate" ramp), the tunnel walls, and the boundary
// interactions — specular (inviscid) reflection as in the paper, plus the
// diffuse isothermal reflection listed in the paper's future work.
package geom

import "math"

// Vec2 is a 2D vector in cell units.
type Vec2 struct{ X, Y float64 }

// Add returns a+b.
func (a Vec2) Add(b Vec2) Vec2 { return Vec2{a.X + b.X, a.Y + b.Y} }

// Sub returns a-b.
func (a Vec2) Sub(b Vec2) Vec2 { return Vec2{a.X - b.X, a.Y - b.Y} }

// Dot returns the dot product.
func (a Vec2) Dot(b Vec2) float64 { return a.X*b.X + a.Y*b.Y }

// Scale returns s·a.
func (a Vec2) Scale(s float64) Vec2 { return Vec2{s * a.X, s * a.Y} }

// Norm returns |a|.
func (a Vec2) Norm() float64 { return math.Hypot(a.X, a.Y) }

// Face is an oriented planar surface element: a point on the surface and
// the unit normal pointing into the gas.
type Face struct {
	P Vec2 // a point on the face
	N Vec2 // unit outward (into-gas) normal
}

// Depth returns the penetration depth of point p behind the face
// (positive when p is on the solid side).
func (f Face) Depth(p Vec2) float64 { return -f.N.Dot(p.Sub(f.P)) }

// MirrorPosition reflects a penetrating position back across the face.
func (f Face) MirrorPosition(p Vec2) Vec2 {
	d := f.N.Dot(p.Sub(f.P))
	return p.Sub(f.N.Scale(2 * d))
}

// ReflectVelocity specularly reflects v if it points into the surface;
// velocities already leaving the surface are unchanged (this keeps the
// iterated corner handling from double-flipping).
func (f Face) ReflectVelocity(v Vec2) Vec2 {
	vn := f.N.Dot(v)
	if vn >= 0 {
		return v
	}
	return v.Sub(f.N.Scale(2 * vn))
}

// Wedge is the test body: a ramp rising from the lower wall at the given
// angle, with a vertical back face — the paper's configuration has the
// leading edge 20 cells from the upstream boundary, a 25-cell base and a
// 30° incline, with a single expansion corner at the apex.
type Wedge struct {
	LeadX float64 // x of the leading edge on the lower wall
	Base  float64 // base length along the wall, cells
	Angle float64 // ramp angle, radians
}

// Height returns the apex height Base·tan(Angle).
func (w Wedge) Height() float64 { return w.Base * math.Tan(w.Angle) }

// Apex returns the expansion-corner vertex.
func (w Wedge) Apex() Vec2 { return Vec2{w.LeadX + w.Base, w.Height()} }

// TrailX returns the x coordinate of the back face.
func (w Wedge) TrailX() float64 { return w.LeadX + w.Base }

// Vertices returns the triangle (leading edge, trailing edge, apex).
func (w Wedge) Vertices() [3]Vec2 {
	return [3]Vec2{{w.LeadX, 0}, {w.TrailX(), 0}, w.Apex()}
}

// Contains reports whether p is strictly inside the wedge body.
func (w Wedge) Contains(p Vec2) bool {
	if p.X <= w.LeadX || p.X >= w.TrailX() || p.Y <= 0 {
		return false
	}
	return p.Y < (p.X-w.LeadX)*math.Tan(w.Angle)
}

// Faces returns the two gas-facing faces of the wedge: the ramp
// (hypotenuse) and the vertical back face. The base coincides with the
// lower wall and is never gas-facing.
func (w Wedge) Faces() [2]Face {
	s, c := math.Sin(w.Angle), math.Cos(w.Angle)
	return [2]Face{
		{P: Vec2{w.LeadX, 0}, N: Vec2{-s, c}},   // ramp: outward up-left normal
		{P: Vec2{w.TrailX(), 0}, N: Vec2{1, 0}}, // back face: downstream normal
	}
}

// Tunnel is the wind-tunnel domain: x in [0, W], y in [0, H], with up to
// two disjoint wedges on the lower wall (the second supports the
// double-wedge scenario; nil for the paper's single-body runs). The
// upstream (x=0) boundary is the plunger, owned by the simulation; the
// downstream (x=W) boundary is the soft sink, also owned by the
// simulation.
type Tunnel struct {
	W, H   float64
	Wedge  *Wedge
	Wedge2 *Wedge
}

// ContainingWedge returns the wedge strictly containing p, or nil. The
// wedges are disjoint by construction (the simulation validates it), so
// at most one can contain a point; Wedge is checked first, preserving
// the single-body behaviour bit for bit.
func (t *Tunnel) ContainingWedge(p Vec2) *Wedge {
	if t.Wedge != nil && t.Wedge.Contains(p) {
		return t.Wedge
	}
	if t.Wedge2 != nil && t.Wedge2.Contains(p) {
		return t.Wedge2
	}
	return nil
}

// maxBounces bounds the mirror iteration; a particle cannot legitimately
// cross more than a few surfaces in one step when velocities are below a
// cell per step, and corner pockets converge within this bound.
const maxBounces = 8

// ReflectSpecular applies the paper's inviscid boundary interaction to a
// particle that has just completed its collisionless move: positions
// beyond the hard walls or inside the wedge are mirrored across the
// violated surface and the normal velocity component is reversed. The
// mirroring iterates to handle corners (wall+ramp). Returns the corrected
// position and velocity.
func (t *Tunnel) ReflectSpecular(p, v Vec2) (Vec2, Vec2) {
	for b := 0; b < maxBounces; b++ {
		if p.Y < 0 {
			p.Y = -p.Y
			if v.Y < 0 {
				v.Y = -v.Y
			}
		} else if p.Y > t.H {
			p.Y = 2*t.H - p.Y
			if v.Y > 0 {
				v.Y = -v.Y
			}
		} else if w := t.ContainingWedge(p); w != nil {
			f := nearestWedgeFace(w, p)
			p = f.MirrorPosition(p)
			v = f.ReflectVelocity(v)
		} else {
			return p, v
		}
	}
	// Degenerate pocket: place the particle on the nearest free spot and
	// let the next step carry it out.
	p = t.clampFree(p)
	return p, v
}

// nearestWedgeFace returns the wedge face with the smallest penetration
// depth for an interior point — the surface the particle most plausibly
// crossed during the step.
func nearestWedgeFace(w *Wedge, p Vec2) Face {
	faces := w.Faces()
	best := faces[0]
	bestDepth := best.Depth(p)
	if d := faces[1].Depth(p); d < bestDepth {
		best, bestDepth = faces[1], d
	}
	return best
}

// NearestFace returns the gas-facing face of w with the smallest
// penetration depth for an interior point (the surface a just-moved
// particle most plausibly crossed).
func (w *Wedge) NearestFace(p Vec2) Face { return nearestWedgeFace(w, p) }

// clampFree nudges a position to the domain interior outside the wedges.
func (t *Tunnel) clampFree(p Vec2) Vec2 {
	if p.Y < 0 {
		p.Y = 0
	}
	if p.Y > t.H {
		p.Y = t.H
	}
	if w := t.ContainingWedge(p); w != nil {
		f := nearestWedgeFace(w, p)
		p = p.Add(f.N.Scale(f.Depth(p) + 1e-9))
	}
	return p
}

// Inside reports whether p lies in the gas region of the tunnel
// (within the walls and outside the wedges).
func (t *Tunnel) Inside(p Vec2) bool {
	if p.Y < 0 || p.Y > t.H || p.X < 0 || p.X > t.W {
		return false
	}
	return t.ContainingWedge(p) == nil
}
