package geom

import (
	"math"
	"testing"
	"testing/quick"

	"dsmc/internal/rng"
)

const deg = math.Pi / 180

func paperWedge() Wedge { return Wedge{LeadX: 20, Base: 25, Angle: 30 * deg} }

func TestWedgeDerivedGeometry(t *testing.T) {
	w := paperWedge()
	if math.Abs(w.Height()-25*math.Tan(30*deg)) > 1e-12 {
		t.Errorf("Height = %v", w.Height())
	}
	if w.TrailX() != 45 {
		t.Errorf("TrailX = %v", w.TrailX())
	}
	apex := w.Apex()
	if apex.X != 45 || math.Abs(apex.Y-w.Height()) > 1e-12 {
		t.Errorf("Apex = %v", apex)
	}
}

func TestWedgeContains(t *testing.T) {
	w := paperWedge()
	cases := []struct {
		p    Vec2
		want bool
	}{
		{Vec2{10, 1}, false},      // upstream of wedge
		{Vec2{30, 1}, true},       // under the ramp
		{Vec2{30, 10}, false},     // above the ramp
		{Vec2{44, 10}, true},      // deep interior near back
		{Vec2{50, 1}, false},      // downstream
		{Vec2{30, -1}, false},     // below the wall is not "inside wedge"
		{Vec2{20, 0.5}, false},    // leading edge boundary
		{Vec2{45.0001, 5}, false}, // just past back face
	}
	for _, c := range cases {
		if got := w.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestFaceNormalsAreUnitAndOutward(t *testing.T) {
	w := paperWedge()
	faces := w.Faces()
	for i, f := range faces {
		if math.Abs(f.N.Norm()-1) > 1e-12 {
			t.Errorf("face %d normal not unit: %v", i, f.N)
		}
	}
	// A point just outside the ramp must have negative depth (gas side).
	outside := Vec2{30, (30-20)*math.Tan(30*deg) + 0.1}
	if faces[0].Depth(outside) > 0 {
		t.Errorf("gas-side point has positive penetration depth")
	}
	inside := Vec2{30, (30-20)*math.Tan(30*deg) - 0.1}
	if faces[0].Depth(inside) < 0 {
		t.Errorf("solid-side point has negative depth")
	}
}

func TestMirrorPositionInvolution(t *testing.T) {
	f := Face{P: Vec2{0, 0}, N: Vec2{0, 1}}
	p := Vec2{3, -0.5}
	m := f.MirrorPosition(p)
	if math.Abs(m.Y-0.5) > 1e-12 || m.X != 3 {
		t.Errorf("mirror across y=0: %v", m)
	}
	if got := f.MirrorPosition(m); math.Abs(got.Y-p.Y) > 1e-12 {
		t.Errorf("mirror must be an involution")
	}
}

func TestReflectVelocityOnlyWhenIncoming(t *testing.T) {
	f := Face{P: Vec2{0, 0}, N: Vec2{0, 1}}
	in := Vec2{1, -2}
	out := f.ReflectVelocity(in)
	if out.Y != 2 || out.X != 1 {
		t.Errorf("specular reflection wrong: %v", out)
	}
	leaving := Vec2{1, 2}
	if f.ReflectVelocity(leaving) != leaving {
		t.Errorf("outgoing velocity must not be re-flipped")
	}
}

func TestReflectVelocityPreservesSpeed(t *testing.T) {
	w := paperWedge()
	ramp := w.Faces()[0]
	f := func(vx, vy float64) bool {
		v := Vec2{math.Mod(vx, 3), math.Mod(vy, 3)}
		r := ramp.ReflectVelocity(v)
		return math.Abs(r.Norm()-v.Norm()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTunnelWallReflection(t *testing.T) {
	tun := &Tunnel{W: 98, H: 64}
	// Below the floor.
	p, v := tun.ReflectSpecular(Vec2{10, -0.3}, Vec2{0.5, -0.2})
	if math.Abs(p.Y-0.3) > 1e-12 || v.Y != 0.2 {
		t.Errorf("floor reflection: p=%v v=%v", p, v)
	}
	// Above the ceiling.
	p, v = tun.ReflectSpecular(Vec2{10, 64.5}, Vec2{0.5, 0.2})
	if math.Abs(p.Y-63.5) > 1e-12 || v.Y != -0.2 {
		t.Errorf("ceiling reflection: p=%v v=%v", p, v)
	}
	// Interior point untouched.
	p0, v0 := Vec2{5, 5}, Vec2{1, 1}
	if p, v = tun.ReflectSpecular(p0, v0); p != p0 || v != v0 {
		t.Errorf("interior point must be unchanged")
	}
}

func TestTunnelWedgeReflection(t *testing.T) {
	w := paperWedge()
	tun := &Tunnel{W: 98, H: 64, Wedge: &w}
	// A particle that has just punched slightly through the ramp.
	surfY := func(x float64) float64 { return (x - 20) * math.Tan(30*deg) }
	p0 := Vec2{30, surfY(30) - 0.05}
	v0 := Vec2{0.4, -0.1}
	p, v := tun.ReflectSpecular(p0, v0)
	if w.Contains(p) {
		t.Errorf("reflected position still inside wedge: %v", p)
	}
	if math.Abs(v.Norm()-v0.Norm()) > 1e-12 {
		t.Errorf("specular reflection must preserve speed")
	}
	// Velocity must now move away from the ramp.
	if w.Faces()[0].N.Dot(v) < 0 {
		t.Errorf("velocity still into the ramp after reflection")
	}
}

func TestTunnelBackFaceReflection(t *testing.T) {
	w := paperWedge()
	tun := &Tunnel{W: 98, H: 64, Wedge: &w}
	// Particle in the wake hitting the vertical back face from downstream.
	p0 := Vec2{44.9, 3}
	v0 := Vec2{-0.5, 0}
	p, v := tun.ReflectSpecular(p0, v0)
	if w.Contains(p) {
		t.Errorf("still inside wedge: %v", p)
	}
	if v.X <= 0 {
		t.Errorf("back-face reflection must reverse u: %v", v)
	}
	if p.X < 45 {
		t.Errorf("mirrored position must be downstream of the back face: %v", p)
	}
}

// TestCornerPocketTerminates drives a particle into the wall/ramp corner,
// where multiple mirrors are needed; the iteration must terminate with a
// legal position.
func TestCornerPocketTerminates(t *testing.T) {
	w := paperWedge()
	tun := &Tunnel{W: 98, H: 64, Wedge: &w}
	p, _ := tun.ReflectSpecular(Vec2{20.4, -0.2}, Vec2{0.7, -0.5})
	if !tun.Inside(p) {
		t.Errorf("corner reflection produced illegal position %v", p)
	}
}

func TestReflectionPropertyNeverInsideWedge(t *testing.T) {
	w := paperWedge()
	tun := &Tunnel{W: 98, H: 64, Wedge: &w}
	r := rng.NewStream(11)
	for i := 0; i < 20000; i++ {
		p0 := Vec2{r.Float64() * 98, r.Float64()*64 - 2}
		v0 := Vec2{r.Float64()*2 - 1, r.Float64()*2 - 1}
		p, v := tun.ReflectSpecular(p0, v0)
		if p.Y < 0 || p.Y > 64 || (w.Contains(p)) {
			t.Fatalf("illegal corrected position %v from %v", p, p0)
		}
		if math.Abs(v.Norm()-v0.Norm()) > 1e-9 {
			t.Fatalf("speed not preserved: %v -> %v", v0, v)
		}
	}
}

func TestInside(t *testing.T) {
	w := paperWedge()
	tun := &Tunnel{W: 98, H: 64, Wedge: &w}
	if !tun.Inside(Vec2{5, 5}) {
		t.Errorf("free point must be inside")
	}
	if tun.Inside(Vec2{30, 1}) {
		t.Errorf("wedge interior is not gas")
	}
	if tun.Inside(Vec2{-1, 5}) || tun.Inside(Vec2{99, 5}) {
		t.Errorf("outside x bounds is not gas")
	}
}

func TestDiffuseIsothermalEmitsOutward(t *testing.T) {
	f := Face{P: Vec2{0, 0}, N: Vec2{0, 1}}
	d := DiffuseState{Model: DiffuseIsothermal, WallCm: 0.2}
	r := rng.NewStream(13)
	var meanN float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := d.Emit(f, Vec2{0.3, -0.4}, &r)
		if v.Y <= 0 {
			t.Fatalf("diffuse emission must leave the wall, got %v", v)
		}
		meanN += v.Y
	}
	// Flux-weighted half-Maxwellian normal component has mean cm·√π/2.
	want := 0.2 * math.SqrtPi / 2
	if math.Abs(meanN/n-want) > 0.01*want+0.002 {
		t.Errorf("mean normal emission speed %v, want %v", meanN/n, want)
	}
}

func TestDiffuseAdiabaticPreservesSpeed(t *testing.T) {
	f := Face{P: Vec2{0, 0}, N: Vec2{0, 1}}
	d := DiffuseState{Model: DiffuseAdiabatic, WallCm: 0.2}
	r := rng.NewStream(17)
	in := Vec2{0.3, -0.4}
	for i := 0; i < 1000; i++ {
		out := d.Emit(f, in, &r)
		if math.Abs(out.Norm()-in.Norm()) > 1e-12 {
			t.Fatalf("adiabatic wall must preserve speed: %v", out)
		}
		if out.Y <= 0 {
			t.Fatalf("adiabatic emission must leave the wall")
		}
	}
}

func TestSpecularModelDelegates(t *testing.T) {
	f := Face{P: Vec2{0, 0}, N: Vec2{0, 1}}
	d := DiffuseState{Model: Specular}
	r := rng.NewStream(19)
	in := Vec2{0.3, -0.4}
	out := d.Emit(f, in, &r)
	if out.X != 0.3 || out.Y != 0.4 {
		t.Errorf("specular model must mirror: %v", out)
	}
}

func TestEmitAuxMoments(t *testing.T) {
	d := DiffuseState{Model: DiffuseIsothermal, WallCm: 0.3}
	r := rng.NewStream(23)
	var sum, sum2 float64
	const n = 100000
	for i := 0; i < n; i++ {
		x := d.EmitAux(&r)
		sum += x
		sum2 += x * x
	}
	if math.Abs(sum/n) > 0.005 {
		t.Errorf("EmitAux mean = %v", sum/n)
	}
	want := 0.3 * 0.3 / 2
	if math.Abs(sum2/n-want) > 0.002 {
		t.Errorf("EmitAux variance = %v, want %v", sum2/n, want)
	}
}

func TestVecOps(t *testing.T) {
	a, b := Vec2{1, 2}, Vec2{3, -1}
	if a.Add(b) != (Vec2{4, 1}) || a.Sub(b) != (Vec2{-2, 3}) {
		t.Errorf("Add/Sub")
	}
	if a.Dot(b) != 1 {
		t.Errorf("Dot = %v", a.Dot(b))
	}
	if a.Scale(2) != (Vec2{2, 4}) {
		t.Errorf("Scale")
	}
	if math.Abs(Vec2{3, 4}.Norm()-5) > 1e-15 {
		t.Errorf("Norm")
	}
}
