package geom

import (
	"math"

	"dsmc/internal/rng"
)

// WallModel selects the gas-surface interaction.
type WallModel int

// Wall interaction models. Specular is the paper's implementation;
// DiffuseIsothermal and DiffuseAdiabatic are the extensions its
// future-work section calls for.
const (
	// Specular reflects the velocity about the surface normal (inviscid
	// wall), allowing direct comparison with 2D inviscid theory.
	Specular WallModel = iota
	// DiffuseIsothermal re-emits the particle with a half-space Maxwellian
	// at the fixed wall temperature (full accommodation, no-slip).
	DiffuseIsothermal
	// DiffuseAdiabatic re-emits diffusely but preserves the particle's
	// speed, so no energy is exchanged with the wall in the mean.
	DiffuseAdiabatic
)

// DiffuseState carries the wall parameters for diffuse reflection.
type DiffuseState struct {
	Model  WallModel
	WallCm float64 // most probable speed at the wall temperature
}

// Emit produces the post-interaction velocity for a particle striking a
// face with incoming velocity v (2D components; the out-of-plane and
// rotational components are the caller's responsibility, resampled via
// EmitAux for isothermal walls). r supplies the randomness.
func (d DiffuseState) Emit(f Face, v Vec2, r *rng.Stream) Vec2 {
	switch d.Model {
	case DiffuseIsothermal:
		return d.sampleHalfMaxwellian(f, d.WallCm, r)
	case DiffuseAdiabatic:
		speed := v.Norm()
		out := d.sampleHalfMaxwellian(f, d.WallCm, r)
		n := out.Norm()
		if n == 0 {
			return f.ReflectVelocity(v)
		}
		return out.Scale(speed / n)
	default:
		return f.ReflectVelocity(v)
	}
}

// sampleHalfMaxwellian draws from the flux-weighted half-space Maxwellian
// leaving the face: the normal component has the Rayleigh-type density
// p(c) ∝ c·exp(-c²/cm²) (because faster molecules leave more often), and
// the tangential component is a plain Gaussian.
func (d DiffuseState) sampleHalfMaxwellian(f Face, cm float64, r *rng.Stream) Vec2 {
	// Normal component: inverse-CDF of the flux-weighted distribution.
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	cn := cm * math.Sqrt(-math.Log(u))
	ct := r.Gaussian(0, cm/math.Sqrt2)
	tang := Vec2{-f.N.Y, f.N.X}
	return f.N.Scale(cn).Add(tang.Scale(ct))
}

// EmitAux resamples an out-of-plane or rotational velocity component for
// an isothermal diffuse interaction (thermal equilibrium with the wall).
func (d DiffuseState) EmitAux(r *rng.Stream) float64 {
	return r.Gaussian(0, d.WallCm/math.Sqrt2)
}
