// Package par provides the persistent worker pool the reference backends
// shard their phases over. It generalises the chunked executor of
// internal/cm/machine.go: work over [0, n) is split into a fixed block
// decomposition — one contiguous block per worker, the last possibly
// short or empty — that depends only on n and the worker count, never on
// scheduling. Phases that need deterministic results for any worker count
// rely on this fixed decomposition together with counter-based RNG
// streams (rng.StreamAt) keyed by cell or particle index.
package par

import (
	"runtime"
	"sync"
)

// serialCutoff is the span below which dispatch overhead exceeds the
// work; smaller loops run on the calling goroutine with the identical
// block decomposition.
const serialCutoff = 2048

// Pool is a persistent set of worker goroutines executing chunked
// parallel-for loops. The zero value is invalid; use New. A pool never
// needs explicit shutdown: its workers exit when the pool is collected.
type Pool struct {
	workers int
	tasks   chan task
	// wg is reused across dispatches so a steady-state ForIdx performs no
	// heap allocation. Safe because calls must not nest or overlap (see
	// ForIdx); a pool serves one phase of one simulation at a time.
	wg sync.WaitGroup
}

type task struct {
	f      func(w, lo, hi int)
	w      int
	lo, hi int
	wg     *sync.WaitGroup
}

// New returns a pool with the given worker count; workers <= 0 selects
// runtime.NumCPU(). A one-worker pool runs everything on the caller.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.tasks = make(chan task, workers)
		for i := 0; i < workers; i++ {
			go work(p.tasks)
		}
		// The workers hold only the channel, so once the pool itself is
		// unreachable the cleanup closes the channel and they exit.
		runtime.AddCleanup(p, func(ch chan task) { close(ch) }, p.tasks)
	}
	return p
}

func work(tasks <-chan task) {
	for t := range tasks {
		t.f(t.w, t.lo, t.hi)
		t.wg.Done()
	}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// BlockStep returns the span width of the pool's fixed block
// decomposition of [0, n). Callers that run serial carry passes over the
// same blocks (the cm scans) must use this exact width.
func (p *Pool) BlockStep(n int) int {
	step := (n + p.workers - 1) / p.workers
	if step < 1 {
		step = 1
	}
	return step
}

// span returns block b of the fixed decomposition of [0, n).
func (p *Pool) span(b, n int) (lo, hi int) {
	step := p.BlockStep(n)
	lo, hi = b*step, b*step+step
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// Parallel reports whether ForIdx/For dispatch [0, n) concurrently or run
// it on the calling goroutine (one-worker pools and small spans are
// serial). Callers aggregating per-block wall times need this: concurrent
// blocks overlap (take the max), serial blocks run back-to-back (sum).
func (p *Pool) Parallel(n int) bool {
	return p.workers > 1 && n >= serialCutoff
}

// ForIdx runs f once per block b of the fixed decomposition with its span
// [lo, hi); empty blocks get lo == hi. Blocks run concurrently for large
// n, serially otherwise, but f is always invoked exactly Workers() times
// with the identical decomposition, so per-worker scratch indexed by b is
// safe on every path.
//
// Calls must not nest: f must never invoke ForIdx/For on the same pool,
// or the inner call's tasks wait for workers the outer call already
// occupies — a deadlock as soon as n crosses the serial cutoff. Run
// nested loops serially inside the block instead.
func (p *Pool) ForIdx(n int, f func(w, lo, hi int)) {
	if !p.Parallel(n) {
		for b := 0; b < p.workers; b++ {
			lo, hi := p.span(b, n)
			f(b, lo, hi)
		}
		return
	}
	p.wg.Add(p.workers)
	for b := 0; b < p.workers; b++ {
		lo, hi := p.span(b, n)
		p.tasks <- task{f: f, w: b, lo: lo, hi: hi, wg: &p.wg}
	}
	p.wg.Wait()
}

// For runs f over [0, n) split into the fixed block decomposition,
// skipping empty blocks.
func (p *Pool) For(n int, f func(lo, hi int)) {
	p.ForIdx(n, func(_, lo, hi int) {
		if lo < hi {
			f(lo, hi)
		}
	})
}

// ForSpans runs f once per block b over the caller-supplied ascending
// decomposition: block b covers [bounds[b], bounds[b+1]), and bounds must
// have exactly Workers()+1 non-decreasing entries starting at 0. This is
// the dispatch primitive of the spatially-blocked (owner-computes) mode,
// where the spans are particle segments or cell regions owned by each
// worker rather than equal blocks. Like ForIdx, f is always invoked
// exactly Workers() times (empty spans get lo == hi), the same
// no-nesting rule applies, and the parallel/serial decision depends only
// on the total span and worker count.
func (p *Pool) ForSpans(bounds []int32, f func(w, lo, hi int)) {
	n := int(bounds[p.workers])
	if !p.Parallel(n) {
		for b := 0; b < p.workers; b++ {
			f(b, int(bounds[b]), int(bounds[b+1]))
		}
		return
	}
	p.wg.Add(p.workers)
	for b := 0; b < p.workers; b++ {
		p.tasks <- task{f: f, w: b, lo: int(bounds[b]), hi: int(bounds[b+1]), wg: &p.wg}
	}
	p.wg.Wait()
}

// SweepWorkers returns the worker counts of a scaling sweep — 1, 2, 4 and
// the full machine — clipped to runtime.NumCPU() and deduplicated in
// ascending order, so a sweep never measures oversubscribed pools (a
// 3-core host yields [1 2 3], a single core just [1]).
func SweepWorkers() []int {
	n := runtime.NumCPU()
	var ws []int
	for _, w := range []int{1, 2, 4, n} {
		if w > n {
			w = n
		}
		if len(ws) == 0 || w > ws[len(ws)-1] {
			ws = append(ws, w)
		}
	}
	return ws
}
