package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversRangeOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := New(workers)
		for _, n := range []int{0, 1, 7, serialCutoff - 1, serialCutoff, 3*serialCutoff + 5} {
			marks := make([]int32, n)
			p.For(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&marks[i], 1)
				}
			})
			for i, m := range marks {
				if m != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, m)
				}
			}
		}
	}
}

func TestForIdxFixedDecomposition(t *testing.T) {
	p := New(4)
	for _, n := range []int{0, 1, 10, 4096, 10001} {
		type span struct{ lo, hi int }
		got := make([]span, p.Workers())
		calls := int32(0)
		p.ForIdx(n, func(w, lo, hi int) {
			atomic.AddInt32(&calls, 1)
			got[w] = span{lo, hi}
		})
		if int(calls) != p.Workers() {
			t.Fatalf("n=%d: %d calls, want one per worker (%d)", n, calls, p.Workers())
		}
		// Blocks are contiguous, ascending, and cover [0, n) exactly.
		prev := 0
		for w, sp := range got {
			if sp.lo != prev || sp.hi < sp.lo {
				t.Fatalf("n=%d worker %d: span [%d,%d) does not continue from %d", n, w, sp.lo, sp.hi, prev)
			}
			prev = sp.hi
		}
		if prev != n {
			t.Fatalf("n=%d: decomposition ends at %d", n, prev)
		}
	}
}

func TestNewDefaultsToNumCPU(t *testing.T) {
	if got := New(0).Workers(); got != runtime.NumCPU() {
		t.Fatalf("Workers() = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := New(-3).Workers(); got != runtime.NumCPU() {
		t.Fatalf("Workers() = %d, want NumCPU %d", got, runtime.NumCPU())
	}
}

// TestParallelPathRuns forces the concurrent path (n above the serial
// cutoff) and checks a reduction computed from per-worker partials.
func TestParallelPathRuns(t *testing.T) {
	p := New(4)
	n := 10 * serialCutoff
	partial := make([]int64, p.Workers())
	p.ForIdx(n, func(w, lo, hi int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		partial[w] = s
	})
	var got int64
	for _, s := range partial {
		got += s
	}
	want := int64(n) * int64(n-1) / 2
	if got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestSweepWorkersClippedAscending(t *testing.T) {
	ws := SweepWorkers()
	n := runtime.NumCPU()
	if len(ws) == 0 || ws[0] != 1 {
		t.Fatalf("sweep must start at 1 worker: %v", ws)
	}
	for i, w := range ws {
		if w > n {
			t.Errorf("sweep entry %d oversubscribes the host: %d > %d CPUs", i, w, n)
		}
		if i > 0 && w <= ws[i-1] {
			t.Errorf("sweep not strictly ascending: %v", ws)
		}
	}
	if ws[len(ws)-1] != n {
		t.Errorf("sweep must end at the full machine (%d): %v", n, ws)
	}
}
