package par

import "dsmc/internal/rng"

// CellSort is the sharded stable counting sort shared by the reference
// backends: per-worker histograms over contiguous element blocks, a
// serial merge that assigns every worker its scatter base inside each
// cell, and a stable sharded scatter. The resulting order is the serial
// counting sort's (ascending element index within each cell) for any
// worker count — the invariant the deterministic collide phase relies on.
type CellSort struct {
	pool      *Pool
	counts    []int32
	cellStart []int32
	wcounts   [][]int32
	wfill     [][]int32
}

// NewCellSort returns a sorter over the given cell count, sharded on pool.
func NewCellSort(pool *Pool, cells int) *CellSort {
	cs := &CellSort{
		pool:      pool,
		counts:    make([]int32, cells),
		cellStart: make([]int32, cells+1),
		wcounts:   make([][]int32, pool.Workers()),
		wfill:     make([][]int32, pool.Workers()),
	}
	for w := range cs.wcounts {
		cs.wcounts[w] = make([]int32, cells)
		cs.wfill[w] = make([]int32, cells)
	}
	return cs
}

// Counts returns the per-cell element counts of the latest Sort.
func (cs *CellSort) Counts() []int32 { return cs.counts }

// CellStart returns the bucket boundaries of the latest Sort: cell c's
// elements are order[CellStart()[c]:CellStart()[c+1]].
func (cs *CellSort) CellStart() []int32 { return cs.cellStart }

// Sort computes cell[i] = cellOf(i) for every i in [0, n), then fills
// order[:n] with the stable cell-bucketed permutation.
func (cs *CellSort) Sort(n int, cell, order []int32, cellOf func(i int) int32) {
	cs.pool.ForIdx(n, func(w, lo, hi int) {
		cw := cs.wcounts[w]
		for c := range cw {
			cw[c] = 0
		}
		for i := lo; i < hi; i++ {
			c := cellOf(i)
			cell[i] = c
			cw[c]++
		}
	})
	// Merge into global counts/starts and give every worker its scatter
	// base inside each cell: cell c holds worker 0's elements first, then
	// worker 1's, ... — exactly the stable order of the serial sort.
	cs.cellStart[0] = 0
	for c := range cs.counts {
		var t int32
		for w := range cs.wcounts {
			cs.wfill[w][c] = cs.cellStart[c] + t
			t += cs.wcounts[w][c]
		}
		cs.counts[c] = t
		cs.cellStart[c+1] = cs.cellStart[c] + t
	}
	cs.pool.ForIdx(n, func(w, lo, hi int) {
		fill := cs.wfill[w]
		for i := lo; i < hi; i++ {
			c := cell[i]
			order[fill[c]] = int32(i)
			fill[c]++
		}
	})
}

// Shuffle randomizes the order within each cell — collision candidates
// must change between time steps or the same partners collide repeatedly,
// leading to correlated velocity distributions — drawing each cell's
// permutation from its own counter-based stream (seed, epoch, cell),
// sharded over cell ranges.
func (cs *CellSort) Shuffle(order []int32, seed, epoch uint64) {
	cs.pool.For(len(cs.counts), func(clo, chi int) {
		for c := clo; c < chi; c++ {
			span := order[cs.cellStart[c]:cs.cellStart[c+1]]
			if len(span) < 2 {
				continue
			}
			r := rng.StreamAt(seed, epoch, uint64(c))
			for i := len(span) - 1; i > 0; i-- {
				j := r.Intn(i + 1)
				span[i], span[j] = span[j], span[i]
			}
		}
	})
}
