package par

import (
	"dsmc/internal/kernel"
	"dsmc/internal/particle"
	"dsmc/internal/rng"
)

// CellSort is the sharded cell-major sort shared by the reference
// backends. It fuses the classic "sort then reorder" into one stable
// counting sort whose scatter pass moves the particle payload itself:
//
//  1. Plan: per-worker histograms over contiguous element blocks and a
//     serial merge that assigns every worker its scatter base inside each
//     cell;
//  2. ScatterStore: a stable sharded scatter that writes the payload
//     (X, Y, [Z], U, V, W, R1, R2, Evib, Cell) of a source
//     particle.Store directly into a shadow store at its cell-major
//     position — no index permutation is ever materialized, and after the
//     caller swaps the two buffers cell c's particles occupy the
//     contiguous range CellStart()[c]:CellStart()[c+1];
//  3. Shuffle: an in-place per-cell-span record shuffle drawing each
//     cell's permutation from its own counter-based stream.
//
// The resulting order is the serial counting sort's (ascending
// pre-scatter index within each cell) for any worker count — the
// invariant the deterministic collide phase relies on. All dispatch
// closures are built once at construction, so steady-state sorting
// performs zero heap allocations.
type CellSort[F kernel.Float] struct {
	pool      *Pool
	counts    []int32
	cellStart []int32
	wcounts   [][]int32
	wfill     [][]int32

	// Prebuilt shard bodies (allocation-free dispatch) and the per-call
	// state they read. The fields are only live during the owning call.
	histFn    func(w, lo, hi int)
	scatterFn func(w, lo, hi int)
	shuffleFn func(w, clo, chi int)
	cell      []int32
	cellOf    func(i int) int32
	src, dst  *particle.Store[F]
	swap      func(i, j int)
	seed      uint64
	epoch     uint64
}

// NewCellSort returns a sorter over the given cell count, sharded on pool.
func NewCellSort[F kernel.Float](pool *Pool, cells int) *CellSort[F] {
	cs := &CellSort[F]{
		pool:      pool,
		counts:    make([]int32, cells),
		cellStart: make([]int32, cells+1),
		wcounts:   make([][]int32, pool.Workers()),
		wfill:     make([][]int32, pool.Workers()),
	}
	for w := range cs.wcounts {
		cs.wcounts[w] = make([]int32, cells)
		cs.wfill[w] = make([]int32, cells)
	}
	cs.histFn = cs.histShard
	cs.scatterFn = cs.scatterShard
	cs.shuffleFn = cs.shuffleShard
	return cs
}

// Counts returns the per-cell element counts of the latest Plan.
func (cs *CellSort[F]) Counts() []int32 { return cs.counts }

// CellStart returns the bucket boundaries of the latest Plan: cell c's
// elements occupy [CellStart()[c], CellStart()[c+1]) after the scatter.
func (cs *CellSort[F]) CellStart() []int32 { return cs.cellStart }

// Plan computes cell[i] = cellOf(i) for every i in [0, n), the per-cell
// counts and bucket boundaries, and every worker's scatter base inside
// each cell. It must precede ScatterStore.
//
//dsmc:hotpath
func (cs *CellSort[F]) Plan(n int, cell []int32, cellOf func(i int) int32) {
	cs.cell, cs.cellOf = cell, cellOf
	cs.pool.ForIdx(n, cs.histFn)
	cs.cellOf = nil
	// Merge into global counts/starts and give every worker its scatter
	// base inside each cell: cell c holds worker 0's elements first, then
	// worker 1's, ... — exactly the stable order of the serial sort.
	cs.cellStart[0] = 0
	for c := range cs.counts {
		var t int32
		for w := range cs.wcounts {
			cs.wfill[w][c] = cs.cellStart[c] + t
			t += cs.wcounts[w][c]
		}
		cs.counts[c] = t
		cs.cellStart[c+1] = cs.cellStart[c] + t
	}
}

//dsmc:hotpath
func (cs *CellSort[F]) histShard(w, lo, hi int) {
	cw := cs.wcounts[w]
	for c := range cw {
		cw[c] = 0
	}
	cell, cellOf := cs.cell, cs.cellOf
	for i := lo; i < hi; i++ {
		c := cellOf(i)
		cell[i] = c
		cw[c]++
	}
}

// ScatterStore performs the stable sharded scatter of the latest Plan,
// writing src's payload into dst at cell-major positions and marking
// dst's first src.Len() slots live. The caller then swaps the two store
// pointers — sort and physical reorder fused into this single pass. src
// and dst must share Plan's cell slice (src.Cell) and have equal shape
// (both 2D or both 3D, dst.Cap() >= src.Len()).
//
//dsmc:hotpath
func (cs *CellSort[F]) ScatterStore(src, dst *particle.Store[F]) {
	cs.src, cs.dst = src, dst
	cs.pool.ForIdx(src.Len(), cs.scatterFn)
	cs.src, cs.dst = nil, nil
	dst.SetLen(src.Len())
}

//dsmc:hotpath
func (cs *CellSort[F]) scatterShard(w, lo, hi int) {
	src, dst := cs.src, cs.dst
	fill := cs.wfill[w]
	cell := src.Cell
	threeD := src.Z != nil
	for i := lo; i < hi; i++ {
		c := cell[i]
		d := fill[c]
		fill[c] = d + 1
		dst.X[d] = src.X[i]
		dst.Y[d] = src.Y[i]
		if threeD {
			dst.Z[d] = src.Z[i]
		}
		dst.U[d] = src.U[i]
		dst.V[d] = src.V[i]
		dst.W[d] = src.W[i]
		dst.R1[d] = src.R1[i]
		dst.R2[d] = src.R2[i]
		dst.Evib[d] = src.Evib[i]
		dst.Cell[d] = c
	}
}

// Shuffle randomizes the record order within each cell span in place —
// collision candidates must change between time steps or the same
// partners collide repeatedly, leading to correlated velocity
// distributions — drawing each cell's permutation from its own
// counter-based stream (seed, epoch, cell), sharded over cell ranges.
// swap exchanges two records of the scattered payload (e.g. the bound
// store's Swap); it is only ever called with indices of one cell span.
//
//dsmc:hotpath
func (cs *CellSort[F]) Shuffle(seed, epoch uint64, swap func(i, j int)) {
	cs.seed, cs.epoch, cs.swap = seed, epoch, swap
	cs.pool.ForIdx(len(cs.counts), cs.shuffleFn)
	cs.swap = nil
}

//dsmc:hotpath
func (cs *CellSort[F]) shuffleShard(_, clo, chi int) {
	swap := cs.swap
	for c := clo; c < chi; c++ {
		lo := int(cs.cellStart[c])
		cnt := int(cs.cellStart[c+1]) - lo
		if cnt < 2 {
			continue
		}
		r := rng.StreamAt(cs.seed, cs.epoch, uint64(c))
		for i := cnt - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			swap(lo+i, lo+j)
		}
	}
}
