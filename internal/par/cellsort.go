package par

import (
	"dsmc/internal/kernel"
	"dsmc/internal/particle"
	"dsmc/internal/rng"
)

// DefaultSortTile is the scatter's cell-block window width (in cells)
// when the configuration does not pin one. Chosen by the cmd/bench
// -tile sweep: the destination window of one block (tile × density ×
// the 9–10 payload columns) should sit comfortably in L2 while the
// per-block pass overhead stays amortized.
const DefaultSortTile = 256

// CellSort is the sharded cell-major sort shared by the reference
// backends. It fuses the classic "sort then reorder" into one stable
// counting sort whose scatter pass moves the particle payload itself:
//
//  1. Plan (or PlanSpans): per-worker histograms over contiguous element
//     spans and a serial blocked merge that assigns every worker its
//     scatter base inside each cell;
//  2. ScatterStore (or ScatterStoreRegions): a stable sharded scatter
//     that writes the payload (X, Y, [Z], U, V, W, R1, R2, Evib, Cell)
//     of a source particle.Store directly into a shadow store at its
//     cell-major position — no index permutation is ever materialized,
//     and after the caller swaps the two buffers cell c's particles
//     occupy the contiguous range CellStart()[c]:CellStart()[c+1];
//  3. Shuffle (or ShuffleSpans): an in-place per-cell-span record
//     shuffle drawing each cell's permutation from its own counter-based
//     stream.
//
// The scatter is tiled by cell block: each worker first buckets its
// element span by destination cell block (a single int32 index write per
// element), then scatters one bounded block window at a time, so the
// active set of per-cell fill cursors and destination column lines stays
// cache-resident instead of streaming 9–10 scattered column writes
// across the whole domain. ScatterStoreRegions is the owner-computes
// variant: the bucket lists double as the migrant exchange, and each
// worker drains the buckets of its own cell region from every source
// span in (source-span, source-index) order.
//
// The resulting order is the serial counting sort's (ascending
// pre-scatter index within each cell) for any worker count and any
// ascending contiguous source decomposition — the invariant the
// deterministic collide phase relies on. The tile width and the source/
// destination decompositions move work between caches, never bits. All
// dispatch closures are built once at construction, so steady-state
// sorting performs zero heap allocations.
type CellSort[F kernel.Float] struct {
	pool      *Pool
	counts    []int32
	cellStart []int32
	wcounts   [][]int32
	wfill     [][]int32

	// Tiled-scatter state: elements are bucketed by destination cell
	// block (block = cell >> tileShift) before the payload moves, so the
	// scatter revisits one bounded window of cells at a time.
	tileShift uint
	nblocks   int
	bidx      []int32   // block-bucketed source indices, capacity = store cap
	bstart    [][]int32 // per-worker per-block bucket bounds (nblocks+1)
	bfill     [][]int32 // per-worker per-block bucket cursors (nblocks)

	mergeBase []int32 // blocked-merge scratch: per-cell running scatter base

	// Prebuilt shard bodies (allocation-free dispatch) and the per-call
	// state they read. The fields are only live during the owning call.
	histFn     func(w, lo, hi int)
	scatterFn  func(w, lo, hi int)
	tiledFn    func(w, lo, hi int)
	bucketFn   func(w, lo, hi int)
	regionFn   func(w, clo, chi int)
	shuffleFn  func(w, clo, chi int)
	cell       []int32
	cellOf     func(i int) int32
	src, dst   *particle.Store[F]
	swap       func(i, j int)
	seed       uint64
	epoch      uint64
	planBounds []int32 // PlanSpans' source decomposition (nil after Plan)
}

// mergeBlock is the cell-block width of Plan's serial merge: the merge
// walks the per-worker histograms worker-major inside each block, so the
// live working set is W short rows of this many int32 counts (cache
// lines streamed in address order) instead of one strided column across
// all W histogram slices per cell.
const mergeBlock = 512

// NewCellSort returns a sorter over the given cell count, sharded on
// pool. tile is the scatter's cell-block window width in cells (rounded
// up to a power of two; <= 0 selects DefaultSortTile; >= cells disables
// tiling — the scatter degenerates to the single direct pass). capacity
// is the maximum element count a Plan/Scatter pair will see (the
// particle store's capacity); the bucket index buffer is pre-sized to it
// so steady-state sorting never allocates.
func NewCellSort[F kernel.Float](pool *Pool, cells, tile, capacity int) *CellSort[F] {
	if tile <= 0 {
		tile = DefaultSortTile
	}
	var shift uint
	for 1<<shift < tile {
		shift++
	}
	nblocks := (cells + (1 << shift) - 1) >> shift
	if nblocks < 1 {
		nblocks = 1
	}
	cs := &CellSort[F]{
		pool:      pool,
		counts:    make([]int32, cells),
		cellStart: make([]int32, cells+1),
		wcounts:   make([][]int32, pool.Workers()),
		wfill:     make([][]int32, pool.Workers()),
		tileShift: shift,
		nblocks:   nblocks,
		bidx:      make([]int32, capacity),
		bstart:    make([][]int32, pool.Workers()),
		bfill:     make([][]int32, pool.Workers()),
		mergeBase: make([]int32, mergeBlock),
	}
	for w := range cs.wcounts {
		cs.wcounts[w] = make([]int32, cells)
		cs.wfill[w] = make([]int32, cells)
		cs.bstart[w] = make([]int32, nblocks+1)
		cs.bfill[w] = make([]int32, nblocks)
	}
	cs.histFn = cs.histShard
	cs.scatterFn = cs.scatterShard
	cs.tiledFn = cs.tiledScatterShard
	cs.bucketFn = cs.bucketShard
	cs.regionFn = cs.regionScatterShard
	cs.shuffleFn = cs.shuffleShard
	return cs
}

// Counts returns the per-cell element counts of the latest Plan.
func (cs *CellSort[F]) Counts() []int32 { return cs.counts }

// CellStart returns the bucket boundaries of the latest Plan: cell c's
// elements occupy [CellStart()[c], CellStart()[c+1]) after the scatter.
func (cs *CellSort[F]) CellStart() []int32 { return cs.cellStart }

// Tile returns the resolved cell-block window width in cells.
func (cs *CellSort[F]) Tile() int { return 1 << cs.tileShift }

// Plan computes cell[i] = cellOf(i) for every i in [0, n), the per-cell
// counts and bucket boundaries, and every worker's scatter base inside
// each cell. It must precede ScatterStore.
//
//dsmc:hotpath
func (cs *CellSort[F]) Plan(n int, cell []int32, cellOf func(i int) int32) {
	cs.cell, cs.cellOf, cs.planBounds = cell, cellOf, nil
	cs.pool.ForIdx(n, cs.histFn)
	cs.cellOf = nil
	cs.merge()
}

// PlanSpans is Plan over a caller-supplied ascending source
// decomposition (Pool.ForSpans semantics: bounds[w] ≤ bounds[w+1],
// bounds[0] = 0, bounds[Workers()] = n) — the owner-computes mode hands
// each worker the particle segment its cell region produced, so the
// histogram re-reads the columns that worker just moved. Any ascending
// decomposition yields bit-identical results; the spans move cache
// locality, not bits.
//
//dsmc:hotpath
func (cs *CellSort[F]) PlanSpans(bounds []int32, cell []int32, cellOf func(i int) int32) {
	cs.cell, cs.cellOf, cs.planBounds = cell, cellOf, bounds
	cs.pool.ForSpans(bounds, cs.histFn)
	cs.cellOf = nil
	cs.merge()
}

// merge combines the per-worker histograms into the global counts and
// bucket boundaries and gives every worker its scatter base inside each
// cell: cell c holds worker 0's elements first, then worker 1's, … —
// exactly the stable order of the serial sort. The walk is blocked and
// worker-major: each pass streams a contiguous mergeBlock-cell row of
// one worker's histogram (sequential int32 reads/writes), rather than
// chasing all W histogram pointers per cell, so this serial per-step
// cost stays cache-friendly as the worker count grows.
//
//dsmc:hotpath
func (cs *CellSort[F]) merge() {
	cells := len(cs.counts)
	cs.cellStart[0] = 0
	for c0 := 0; c0 < cells; c0 += mergeBlock {
		c1 := c0 + mergeBlock
		if c1 > cells {
			c1 = cells
		}
		blk := cs.counts[c0:c1]
		for j := range blk {
			blk[j] = 0
		}
		for w := range cs.wcounts {
			cw := cs.wcounts[w][c0:c1]
			for j, v := range cw {
				blk[j] += v
			}
		}
		run := cs.cellStart[c0]
		base := cs.mergeBase[:len(blk)]
		for j, v := range blk {
			base[j] = run
			run += v
			cs.cellStart[c0+j+1] = base[j] + v
		}
		for w := range cs.wcounts {
			cw := cs.wcounts[w][c0:c1]
			fw := cs.wfill[w][c0:c1]
			for j, v := range cw {
				fw[j] = base[j]
				base[j] += v
			}
		}
	}
}

//dsmc:hotpath
func (cs *CellSort[F]) histShard(w, lo, hi int) {
	cw := cs.wcounts[w]
	for c := range cw {
		cw[c] = 0
	}
	cell, cellOf := cs.cell, cs.cellOf
	for i := lo; i < hi; i++ {
		c := cellOf(i)
		cell[i] = c
		cw[c]++
	}
}

// ScatterStore performs the stable sharded scatter of the latest Plan,
// writing src's payload into dst at cell-major positions and marking
// dst's first src.Len() slots live. The caller then swaps the two store
// pointers — sort and physical reorder fused into this single pass. src
// and dst must share Plan's cell slice (src.Cell) and have equal shape
// (both 2D or both 3D, dst.Cap() >= src.Len()).
//
// With more than one cell block, each worker processes its element span
// in two sub-passes: bucket the span by destination block (one int32
// write per element), then drain the buckets block by block so the
// destination column lines and fill cursors of one bounded window stay
// resident. A single block (tile >= cells) takes the direct one-pass
// scatter.
//
//dsmc:hotpath
func (cs *CellSort[F]) ScatterStore(src, dst *particle.Store[F]) {
	cs.src, cs.dst = src, dst
	fn := cs.tiledFn
	if cs.nblocks == 1 {
		fn = cs.scatterFn
	} else if len(cs.bidx) < src.Len() {
		//dsmclint:allow hotpath-alloc amortized grow: the bucket index re-makes only if the store outgrows its construction capacity once, then is stable (AllocsPerRun pins the steady state)
		cs.bidx = make([]int32, src.Len()+src.Len()/4)
	}
	if cs.planBounds != nil {
		cs.pool.ForSpans(cs.planBounds, fn)
	} else {
		cs.pool.ForIdx(src.Len(), fn)
	}
	cs.src, cs.dst = nil, nil
	dst.SetLen(src.Len())
}

// ScatterStoreRegions is the owner-computes scatter: pass A buckets
// every source span by destination cell block (sharded over the latest
// PlanSpans decomposition — each worker buckets the span it just
// histogrammed), then pass B is sharded over the cellBounds regions and
// each worker drains, for every block overlapping its region, the
// buckets of all source spans in span order. The buckets are the
// explicit migrant exchange between regions: a particle whose new cell
// lies outside its source region is picked up here by the destination
// owner, and because each destination cell drains source spans in
// ascending order and each bucket preserves ascending source index, the
// merge order is exactly (source-region, source-index) — the same
// stable order ScatterStore produces, so both modes are bit-identical.
//
// cellBounds is the cell-region decomposition (Pool.ForSpans semantics
// over the cell index space). Regions need not align to tile blocks: a
// block straddling a region boundary is drained by both neighbours,
// each filtering to its own cells.
//
//dsmc:hotpath
func (cs *CellSort[F]) ScatterStoreRegions(src, dst *particle.Store[F], cellBounds []int32) {
	cs.src, cs.dst = src, dst
	if len(cs.bidx) < src.Len() {
		//dsmclint:allow hotpath-alloc amortized grow: the bucket index re-makes only if the store outgrows its construction capacity once, then is stable (AllocsPerRun pins the steady state)
		cs.bidx = make([]int32, src.Len()+src.Len()/4)
	}
	if cs.planBounds != nil {
		cs.pool.ForSpans(cs.planBounds, cs.bucketFn)
	} else {
		cs.pool.ForIdx(src.Len(), cs.bucketFn)
	}
	cs.pool.ForSpans(cellBounds, cs.regionFn)
	cs.src, cs.dst = nil, nil
	dst.SetLen(src.Len())
}

// scatterShard is the direct one-pass scatter (single cell block): the
// per-cell cursors and destination lines span the whole domain.
//
//dsmc:hotpath
func (cs *CellSort[F]) scatterShard(w, lo, hi int) {
	src, dst := cs.src, cs.dst
	fill := cs.wfill[w]
	cell := src.Cell
	threeD := src.Z != nil
	for i := lo; i < hi; i++ {
		c := cell[i]
		d := fill[c]
		fill[c] = d + 1
		dst.X[d] = src.X[i]
		dst.Y[d] = src.Y[i]
		if threeD {
			dst.Z[d] = src.Z[i]
		}
		dst.U[d] = src.U[i]
		dst.V[d] = src.V[i]
		dst.W[d] = src.W[i]
		dst.R1[d] = src.R1[i]
		dst.R2[d] = src.R2[i]
		dst.Evib[d] = src.Evib[i]
		dst.Cell[d] = c
	}
}

// bucketShard groups worker w's element span [lo, hi) by destination
// cell block: bstart[w] receives the block bounds inside bidx[lo:hi]
// (sized from the worker's own histogram) and each element's index is
// appended to its block's bucket in ascending order. The only payload
// traffic is one int32 per element; the bounded set of per-block
// cursors stays resident.
//
//dsmc:hotpath
func (cs *CellSort[F]) bucketShard(w, lo, hi int) {
	bs, bf := cs.bstart[w], cs.bfill[w]
	shift := cs.tileShift
	for b := range bf {
		bf[b] = 0
	}
	for c, v := range cs.wcounts[w] {
		bf[c>>shift] += v
	}
	run := int32(lo)
	for b, v := range bf {
		bs[b] = run
		bf[b] = run
		run += v
	}
	bs[len(bf)] = run
	cell, bidx := cs.cell, cs.bidx
	for i := lo; i < hi; i++ {
		b := cell[i] >> shift
		k := bf[b]
		bf[b] = k + 1
		bidx[k] = int32(i)
	}
}

// tiledScatterShard is one worker's tiled scatter: bucket the span, then
// drain it one cell-block window at a time. While a block drains, the
// live destination set is that block's cells only — fill cursors and the
// 9–10 destination column lines of a bounded cell window — instead of
// scattering across the whole domain.
//
//dsmc:hotpath
func (cs *CellSort[F]) tiledScatterShard(w, lo, hi int) {
	cs.bucketShard(w, lo, hi)
	src, dst := cs.src, cs.dst
	fill := cs.wfill[w]
	bs := cs.bstart[w]
	bidx := cs.bidx
	cell := src.Cell
	threeD := src.Z != nil
	for b := 0; b < cs.nblocks; b++ {
		for k := bs[b]; k < bs[b+1]; k++ {
			i := int(bidx[k])
			c := cell[i]
			d := fill[c]
			fill[c] = d + 1
			dst.X[d] = src.X[i]
			dst.Y[d] = src.Y[i]
			if threeD {
				dst.Z[d] = src.Z[i]
			}
			dst.U[d] = src.U[i]
			dst.V[d] = src.V[i]
			dst.W[d] = src.W[i]
			dst.R1[d] = src.R1[i]
			dst.R2[d] = src.R2[i]
			dst.Evib[d] = src.Evib[i]
			dst.Cell[d] = c
		}
	}
}

// regionScatterShard drains the cell region [clo, chi): for each cell
// block overlapping the region, the buckets of every source span in
// span order. All destination writes land inside the region's own
// cell-major range — the owner computes its cells' layout end-to-end —
// and the bucket reads from foreign spans are exactly the migrants
// crossing into this region. Blocks fully inside the region drain
// unfiltered; a boundary block shared with a neighbour filters to its
// own cells (writes stay disjoint, so the overlap is read-only).
//
//dsmc:hotpath
func (cs *CellSort[F]) regionScatterShard(_, clo, chi int) {
	if clo >= chi {
		return
	}
	src, dst := cs.src, cs.dst
	bidx := cs.bidx
	cell := src.Cell
	threeD := src.Z != nil
	shift := cs.tileShift
	bHi := (chi - 1) >> shift
	for b := clo >> shift; b <= bHi; b++ {
		whole := b<<shift >= clo && (b+1)<<shift <= chi
		for s := range cs.bstart {
			bs := cs.bstart[s]
			fill := cs.wfill[s]
			for k := bs[b]; k < bs[b+1]; k++ {
				i := int(bidx[k])
				c := cell[i]
				if !whole && (int(c) < clo || int(c) >= chi) {
					continue
				}
				d := fill[c]
				fill[c] = d + 1
				dst.X[d] = src.X[i]
				dst.Y[d] = src.Y[i]
				if threeD {
					dst.Z[d] = src.Z[i]
				}
				dst.U[d] = src.U[i]
				dst.V[d] = src.V[i]
				dst.W[d] = src.W[i]
				dst.R1[d] = src.R1[i]
				dst.R2[d] = src.R2[i]
				dst.Evib[d] = src.Evib[i]
				dst.Cell[d] = c
			}
		}
	}
}

// Shuffle randomizes the record order within each cell span in place —
// collision candidates must change between time steps or the same
// partners collide repeatedly, leading to correlated velocity
// distributions — drawing each cell's permutation from its own
// counter-based stream (seed, epoch, cell), sharded over cell ranges.
// swap exchanges two records of the scattered payload (e.g. the bound
// store's Swap); it is only ever called with indices of one cell span.
//
//dsmc:hotpath
func (cs *CellSort[F]) Shuffle(seed, epoch uint64, swap func(i, j int)) {
	cs.seed, cs.epoch, cs.swap = seed, epoch, swap
	cs.pool.ForIdx(len(cs.counts), cs.shuffleFn)
	cs.swap = nil
}

// ShuffleSpans is Shuffle sharded over the given cell-region
// decomposition — each owner shuffles its own cells. Per-cell streams
// make any decomposition bit-identical.
//
//dsmc:hotpath
func (cs *CellSort[F]) ShuffleSpans(seed, epoch uint64, swap func(i, j int), cellBounds []int32) {
	cs.seed, cs.epoch, cs.swap = seed, epoch, swap
	cs.pool.ForSpans(cellBounds, cs.shuffleFn)
	cs.swap = nil
}

//dsmc:hotpath
func (cs *CellSort[F]) shuffleShard(_, clo, chi int) {
	swap := cs.swap
	for c := clo; c < chi; c++ {
		lo := int(cs.cellStart[c])
		cnt := int(cs.cellStart[c+1]) - lo
		if cnt < 2 {
			continue
		}
		r := rng.StreamAt(cs.seed, cs.epoch, uint64(c))
		for i := cnt - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			swap(lo+i, lo+j)
		}
	}
}
