package par

import (
	"testing"

	"dsmc/internal/particle"
	"dsmc/internal/rng"
)

// fillStore populates n particles with distinct deterministic payloads
// and pseudo-random cell assignments over [0, cells).
func fillStore(st *particle.Store[float64], n, cells int, seed uint64) {
	st.SetLen(n)
	r := rng.NewStream(seed)
	for i := 0; i < n; i++ {
		st.X[i] = float64(i) + 0.25
		st.Y[i] = float64(i) + 0.5
		st.U[i] = r.Float64()
		st.V[i] = r.Float64()
		st.W[i] = r.Float64()
		st.R1[i] = r.Float64()
		st.R2[i] = r.Float64()
		st.Evib[i] = float64(i % 17)
		st.Cell[i] = int32(r.Intn(cells))
	}
}

// storesEqual reports whether the first n records of the two stores are
// bit-identical in every column.
func storesEqual(a, b *particle.Store[float64], n int) bool {
	cols := [][2][]float64{
		{a.X, b.X}, {a.Y, b.Y}, {a.U, b.U}, {a.V, b.V}, {a.W, b.W},
		{a.R1, b.R1}, {a.R2, b.R2}, {a.Evib, b.Evib},
	}
	for _, c := range cols {
		for i := 0; i < n; i++ {
			if c[0][i] != c[1][i] {
				return false
			}
		}
	}
	for i := 0; i < n; i++ {
		if a.Cell[i] != b.Cell[i] {
			return false
		}
	}
	return true
}

// stableOracle computes the serial stable counting sort the scatter must
// reproduce: cell-major, ascending pre-sort index within each cell.
func stableOracle(src *particle.Store[float64], n, cells int) *particle.Store[float64] {
	counts := make([]int32, cells+1)
	for i := 0; i < n; i++ {
		counts[src.Cell[i]+1]++
	}
	for c := 0; c < cells; c++ {
		counts[c+1] += counts[c]
	}
	dst := particle.NewStore[float64](src.Cap())
	dst.SetLen(n)
	for i := 0; i < n; i++ {
		c := src.Cell[i]
		d := counts[c]
		counts[c] = d + 1
		dst.X[d], dst.Y[d] = src.X[i], src.Y[i]
		dst.U[d], dst.V[d], dst.W[d] = src.U[i], src.V[i], src.W[i]
		dst.R1[d], dst.R2[d], dst.Evib[d] = src.R1[i], src.R2[i], src.Evib[i]
		dst.Cell[d] = c
	}
	return dst
}

// TestScatterMatchesStableOracle: shared-store scatter (tiled and
// untiled) and the region scatter all reproduce the serial stable
// counting sort exactly, for uneven source spans and region bounds that
// do not align to the tile grid.
func TestScatterMatchesStableOracle(t *testing.T) {
	const (
		n     = 5000
		cells = 300
		cap_  = 6000
	)
	src := particle.NewStore[float64](cap_)
	fillStore(src, n, cells, 42)
	want := stableOracle(src, n, cells)

	pool := New(4)
	planBounds := []int32{0, 1200, 1200, 3700, n} // one empty span
	cellBounds := []int32{0, 50, 170, 171, cells} // off-tile cuts, near-empty region
	for _, tile := range []int{1, 8, 64, cells, 4096} {
		cellOf := func(i int) int32 { return src.Cell[i] }

		cs := NewCellSort[float64](pool, cells, tile, cap_)
		cs.Plan(n, src.Cell, cellOf)
		dst := particle.NewStore[float64](cap_)
		cs.ScatterStore(src, dst)
		if !storesEqual(want, dst, n) {
			t.Errorf("tile=%d: ScatterStore diverges from the stable oracle", tile)
		}

		cs.PlanSpans(planBounds, src.Cell, cellOf)
		dst2 := particle.NewStore[float64](cap_)
		cs.ScatterStore(src, dst2)
		if !storesEqual(want, dst2, n) {
			t.Errorf("tile=%d: ScatterStore over uneven spans diverges from the stable oracle", tile)
		}

		cs.PlanSpans(planBounds, src.Cell, cellOf)
		dst3 := particle.NewStore[float64](cap_)
		cs.ScatterStoreRegions(src, dst3, cellBounds)
		if !storesEqual(want, dst3, n) {
			t.Errorf("tile=%d: ScatterStoreRegions diverges from the stable oracle", tile)
		}
	}
}

// TestRegionScatterOrderIndependent forcibly perturbs the region
// completion order: the bucket pass and then the per-region scatter
// shards are invoked by hand, regions running serially in REVERSE order
// (the most adversarial schedule a pool could produce). The result must
// be bit-identical to the normal dispatch — the migrant buckets are
// drained in (source-span, source-index) order by construction, and
// each region writes a disjoint destination range, so completion order
// cannot leak into the output.
func TestRegionScatterOrderIndependent(t *testing.T) {
	const (
		n     = 4000
		cells = 256
		cap_  = 4500
	)
	src := particle.NewStore[float64](cap_)
	fillStore(src, n, cells, 7)

	pool := New(4)
	planBounds := []int32{0, 900, 2100, 3999, n}
	cellBounds := []int32{0, 31, 130, 200, cells}
	cellOf := func(i int) int32 { return src.Cell[i] }

	cs := NewCellSort[float64](pool, cells, 64, cap_)
	cs.PlanSpans(planBounds, src.Cell, cellOf)
	want := particle.NewStore[float64](cap_)
	cs.ScatterStoreRegions(src, want, cellBounds)

	// Re-plan (the scatter consumed the wfill cursors), then drive the
	// shards by hand in reverse region order.
	cs.PlanSpans(planBounds, src.Cell, cellOf)
	got := particle.NewStore[float64](cap_)
	cs.src, cs.dst = src, got
	for w := 0; w < pool.Workers(); w++ {
		cs.bucketShard(w, int(planBounds[w]), int(planBounds[w+1]))
	}
	for r := pool.Workers() - 1; r >= 0; r-- {
		cs.regionScatterShard(r, int(cellBounds[r]), int(cellBounds[r+1]))
	}
	cs.src, cs.dst = nil, nil
	got.SetLen(n)

	if !storesEqual(want, got, n) {
		t.Error("reverse region completion order changed the scattered store")
	}
}
