package store

import "dsmc/internal/obs"

// Process-global store counters, registered once at package init so the
// families render (at zero) from the first scrape. Gauges that depend
// on a Store instance live on (*Store).WriteMetrics instead.
var (
	mHits = obs.Default.NewCounter("dsmc_store_hits_total",
		"Result-store lookups satisfied by a verified artifact (replicas not recomputed).")
	mMisses = obs.Default.NewCounter("dsmc_store_misses_total",
		"Result-store lookups that found no usable artifact.")
	mPublishes = obs.Default.NewCounter("dsmc_store_publishes_total",
		"Artifacts published to the result store (idempotent re-acks not counted).")
	mVerifyFailures = obs.Default.NewCounter("dsmc_store_verify_failures_total",
		"Artifacts that failed integrity verification (quarantined) or publish conflicts.")
	mEvictions = obs.Default.NewCounter("dsmc_store_evictions_total",
		"Artifacts evicted by the size-budget garbage collector.")
)
