package store

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testOutput() *Output {
	return &Output{
		Fields: map[string][]float64{
			"density":     {1.0, 2.5, 0.125},
			"temperature": {0.5, 0.75, 1.5},
		},
		ShockAngleDeg: math.NaN(), // the reason JSON can't be the codec
		Collisions:    42,
		NFlow:         1234,
	}
}

func TestKeyID(t *testing.T) {
	k := Key{Kind: "out", Fp: 0xdeadbeef, Seed: 7, Point: 2, Replica: 11}
	want := "out-00000000deadbeef-0000000000000007-p002-r011"
	if got := k.ID(); got != want {
		t.Fatalf("Key.ID() = %q, want %q", got, want)
	}
}

func TestOutputCodecRoundTrip(t *testing.T) {
	o := testOutput()
	data := EncodeOutput(o)
	back, err := DecodeOutput(data)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(back.ShockAngleDeg) || back.Collisions != 42 || back.NFlow != 1234 {
		t.Fatalf("scalars did not round-trip: %+v", back)
	}
	for name, col := range o.Fields {
		got := back.Fields[name]
		if len(got) != len(col) {
			t.Fatalf("field %q: %d cells, want %d", name, len(got), len(col))
		}
		for c := range col {
			if math.Float64bits(got[c]) != math.Float64bits(col[c]) {
				t.Fatalf("field %q cell %d: %v != %v", name, c, got[c], col[c])
			}
		}
	}
	// Canonical encoding: re-encoding the decoded value is byte-identical.
	if string(EncodeOutput(back)) != string(data) {
		t.Fatal("re-encoding is not canonical")
	}
	// Any flipped byte must fail the checksum, not decode quietly.
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0x01
	if _, err := DecodeOutput(bad); err == nil {
		t.Fatal("flipped byte decoded without error")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id := Key{Kind: "out", Fp: 1, Seed: 2, Point: 0, Replica: 0}.ID()
	data := EncodeOutput(testOutput())
	sha, err := s.Put(id, data)
	if err != nil {
		t.Fatal(err)
	}
	got, gotSHA, ok := s.Get(id)
	if !ok || gotSHA != sha || string(got) != string(data) {
		t.Fatalf("Get: ok=%v sha=%q", ok, gotSHA)
	}
	bySHA, ok := s.GetBySHA(sha)
	if !ok || string(bySHA) != string(data) {
		t.Fatal("GetBySHA did not return the object")
	}
	if n, b := s.Stats(); n != 1 || b != int64(len(data)) {
		t.Fatalf("Stats = (%d, %d), want (1, %d)", n, b, len(data))
	}
	// A fresh Open over the same root sees the same index.
	s2, err := Open(s.Root())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s2.Get(id); !ok {
		t.Fatal("reopened store lost the entry")
	}
}

func TestPutIdempotentAndConflict(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id := Key{Kind: "out", Fp: 1, Seed: 2}.ID()
	data := EncodeOutput(testOutput())
	sha1, err := s.Put(id, data)
	if err != nil {
		t.Fatal(err)
	}
	// Racing writers of a deterministic key produce identical bytes: ack.
	sha2, err := s.Put(id, append([]byte(nil), data...))
	if err != nil || sha2 != sha1 {
		t.Fatalf("idempotent Put: sha=%q err=%v", sha2, err)
	}
	// Different bytes under a live key is a detected determinism
	// violation, not a silent overwrite.
	other := testOutput()
	other.Collisions++
	if _, err := s.Put(id, EncodeOutput(other)); err == nil {
		t.Fatal("conflicting Put succeeded")
	}
	if got, _, ok := s.Get(id); !ok || string(got) != string(data) {
		t.Fatal("original artifact did not survive the conflicting publish")
	}
}

func TestOpenQuarantinesTmpAndDangling(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	id := Key{Kind: "out", Fp: 9, Seed: 9}.ID()
	if _, err := s.Put(id, EncodeOutput(testOutput())); err != nil {
		t.Fatal(err)
	}
	// Plant a torn atomic write and a dangling index entry, as a crash
	// mid-publish would leave them.
	torn := filepath.Join(dir, "objects", "deadbeef.tmp")
	if err := os.WriteFile(torn, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	dangling := Key{Kind: "out", Fp: 10, Seed: 10}.ID()
	if err := os.WriteFile(filepath.Join(dir, "index", dangling), []byte(strings.Repeat("ab", 32)+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatal("torn .tmp still in objects/")
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", "deadbeef.tmp")); err != nil {
		t.Fatal("torn .tmp was not quarantined")
	}
	if _, _, ok := s2.Get(dangling); ok {
		t.Fatal("dangling index entry served")
	}
	if _, _, ok := s2.Get(id); !ok {
		t.Fatal("healthy entry lost during recovery")
	}
}

func TestGetQuarantinesCorruptObject(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	id := Key{Kind: "out", Fp: 3, Seed: 4}.ID()
	data := EncodeOutput(testOutput())
	sha, err := s.Put(id, data)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte on disk (same size, so only the hash can tell).
	path := filepath.Join(dir, "objects", sha)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	failures := mVerifyFailures.Value()
	if _, _, ok := s.Get(id); ok {
		t.Fatal("corrupt artifact served as a hit")
	}
	if mVerifyFailures.Value() != failures+1 {
		t.Fatal("verification failure not counted")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt object still in objects/")
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", sha)); err != nil {
		t.Fatal("corrupt object was not quarantined")
	}
	// The key is recomputable: a fresh publish of the true bytes works.
	if _, err := s.Put(id, data); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get(id); !ok {
		t.Fatal("republished artifact not served")
	}
}

func TestGC(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var shas []string
	var ids []string
	for i := 0; i < 3; i++ {
		o := testOutput()
		o.NFlow = i // distinct content per artifact
		id := Key{Kind: "out", Fp: 1, Seed: 1, Replica: i}.ID()
		sha, err := s.Put(id, EncodeOutput(o))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		shas = append(shas, sha)
		// Stagger mtimes so eviction order is deterministic.
		mt := time.Now().Add(time.Duration(i-10) * time.Hour)
		if err := os.Chtimes(filepath.Join(dir, "objects", sha), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	_ = shas
	// An object nothing references (its index entries were quarantined
	// in a prior incident) is reclaimed by any GC pass.
	stray := filepath.Join(dir, "objects", strings.Repeat("00", 32))
	if err := os.WriteFile(stray, []byte("stray"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if removed, freed := s2.GC(0); removed != 1 || freed != 5 {
		t.Fatalf("GC(0) = (%d, %d), want (1, 5)", removed, freed)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatal("unreferenced object survived GC")
	}
	// Budget that fits two of the three equally-sized artifacts: the
	// oldest-modified one is evicted, the newer two survive.
	_, total := s2.Stats()
	evictions := mEvictions.Value()
	if removed, freed := s2.GC(total * 2 / 3); removed != 1 || freed != total/3 {
		t.Fatalf("budget GC = (%d, %d), want (1, %d)", removed, freed, total/3)
	}
	if mEvictions.Value() != evictions+1 {
		t.Fatal("eviction not counted")
	}
	if _, _, ok := s2.Get(ids[0]); ok {
		t.Fatal("oldest artifact survived the budget GC")
	}
	if _, _, ok := s2.Get(ids[1]); !ok {
		t.Fatal("second artifact did not survive the budget GC")
	}
	if _, _, ok := s2.Get(ids[2]); !ok {
		t.Fatal("newest artifact did not survive the budget GC")
	}
}
