// Package store is the content-addressed result store: the simulation
// database a sweep server accumulates as it runs. A finished replica
// job's output is a pure function of (spec fingerprint, master seed,
// point index, replica index) — the repo's determinism contract — so
// the store indexes artifacts by exactly that tuple and any later sweep
// that derives the same key gets the finished bytes back instead of
// recomputing them.
//
// Layout under the root (modeled on dagu's file-based persistence and
// git's object/ref split):
//
//	objects/<sha256>      artifact bytes, content-addressed, immutable
//	index/<key-id>        one line: the sha256 of the key's content
//	quarantine/           torn or corrupt files moved aside, never served
//
// Writes are atomic (temp file + fsync + rename, both layers), and the
// index is input-addressed over content-addressed objects: publishing
// the same key twice with identical bytes is an idempotent ack, while
// publishing different bytes under an existing key is a conflict error
// — the determinism violation is detected, never silently resolved.
// Every read re-hashes the object and compares against the index; a
// mismatch (disk corruption, torn write that survived rename) moves the
// object to quarantine and reports a miss, so callers fall back to
// recomputation instead of serving garbage. The content hash doubles as
// the artifact's strong HTTP ETag.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Key identifies one artifact by the inputs that determine its bits:
// the quantity-inclusive spec fingerprint, the sweep's master seed, the
// point (scenario) index, and the replica index — or, for a point
// aggregate, the replica count.
type Key struct {
	// Kind tags the artifact type: "out" (one replica's output, DSMCOUT1
	// frame) or "agg" (one point's aggregate, DSMCAGG1 frame).
	Kind string
	// Fp is the spec fingerprint extended with the requested quantities
	// (the trajectory fingerprint alone under-identifies an artifact:
	// outputs carry derived fields, which depend on what was sampled).
	Fp uint64
	// Seed is the sweep's master seed; each job's seed derives from it
	// and the (point, replica) coordinates, so the tuple pins the bits.
	Seed uint64
	// Point is the scenario index within the sweep — part of the seed
	// derivation, so the same physics at a different index is a
	// different artifact.
	Point int
	// Replica is the replica index for "out" artifacts and the replica
	// count for "agg" artifacts (an aggregate over fewer replicas is a
	// different result).
	Replica int
}

// ID renders the key as its canonical, filesystem-safe index name.
func (k Key) ID() string {
	return fmt.Sprintf("%s-%016x-%016x-p%03d-r%03d", k.Kind, k.Fp, k.Seed, k.Point, k.Replica)
}

// Entry is one index row of the store listing.
type Entry struct {
	ID     string `json:"key"`
	SHA256 string `json:"sha256"`
	Size   int64  `json:"size"`
}

// Store is a content-addressed artifact store rooted at one directory.
// All methods are safe for concurrent use; the in-memory index mirrors
// the on-disk one and is authoritative between Opens.
type Store struct {
	root string

	mu    sync.Mutex
	index map[string]string // key ID → content sha256 (hex)
	sizes map[string]int64  // sha256 → object size in bytes
	bytes int64             // total object bytes (including unreferenced)
}

// Open opens (creating if needed) a store rooted at dir and runs the
// recovery sweep: every *.tmp orphan left by a crashed atomic write is
// moved to quarantine/, and every index entry is validated against its
// object's existence — a dangling or malformed entry is quarantined and
// dropped rather than served.
func Open(dir string) (*Store, error) {
	s := &Store{
		root:  dir,
		index: map[string]string{},
		sizes: map[string]int64{},
	}
	for _, sub := range []string{s.objectsDir(), s.indexDir(), s.quarantineDir()} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, err
		}
	}
	if err := s.sweepOrphans(); err != nil {
		return nil, err
	}
	objs, err := os.ReadDir(s.objectsDir())
	if err != nil {
		return nil, err
	}
	for _, e := range objs {
		if e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		s.sizes[e.Name()] = info.Size()
		s.bytes += info.Size()
	}
	idx, err := os.ReadDir(s.indexDir())
	if err != nil {
		return nil, err
	}
	for _, e := range idx {
		if e.IsDir() {
			continue
		}
		path := filepath.Join(s.indexDir(), e.Name())
		raw, err := os.ReadFile(path)
		sha := strings.TrimSpace(string(raw))
		if err != nil || !validSHA(sha) {
			s.quarantine(path)
			continue
		}
		if _, ok := s.sizes[sha]; !ok {
			// Dangling reference: the object never made it (or was lost).
			// Quarantine the entry so the key reads as a clean miss and a
			// recompute can republish it.
			s.quarantine(path)
			continue
		}
		s.index[e.Name()] = sha
	}
	return s, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// Get returns a key's artifact bytes and content hash after verifying
// the bytes against the index. A corrupt object is quarantined — along
// with every index entry referencing it — and reported as a miss, so
// the caller recomputes instead of serving garbage.
func (s *Store) Get(id string) (data []byte, sha string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sha, ok = s.index[id]
	if !ok {
		mMisses.Inc()
		return nil, "", false
	}
	data, err := os.ReadFile(s.objectPath(sha))
	if err != nil || hashOf(data) != sha {
		s.rejectLocked(sha)
		mMisses.Inc()
		return nil, "", false
	}
	mHits.Inc()
	return data, sha, true
}

// GetBySHA returns an object's bytes by content hash (the HTTP artifact
// route), verified like Get. It counts neither hit nor miss: it is a
// read of content already located, not a memoization probe.
func (s *Store) GetBySHA(sha string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sizes[sha]; !ok {
		return nil, false
	}
	data, err := os.ReadFile(s.objectPath(sha))
	if err != nil || hashOf(data) != sha {
		s.rejectLocked(sha)
		return nil, false
	}
	return data, true
}

// Put publishes a key's artifact. Re-publishing identical bytes is an
// idempotent ack (racing writers of a deterministic key converge);
// different bytes under a live key is a conflict error and counts as a
// verification failure — the caller surfaced a determinism violation,
// and the original artifact stands.
func (s *Store) Put(id string, data []byte) (sha string, err error) {
	sha = hashOf(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.index[id]; ok {
		if prev == sha {
			return sha, nil
		}
		mVerifyFailures.Inc()
		return "", fmt.Errorf("store: key %s already holds content %s; refusing conflicting publish %s (determinism violation?)", id, prev, sha)
	}
	if _, ok := s.sizes[sha]; !ok {
		if err := atomicWrite(s.objectPath(sha), data); err != nil {
			return "", err
		}
		s.sizes[sha] = int64(len(data))
		s.bytes += int64(len(data))
	}
	if err := atomicWrite(s.indexPath(id), []byte(sha+"\n")); err != nil {
		return "", err
	}
	s.index[id] = sha
	mPublishes.Inc()
	return sha, nil
}

// Reject quarantines a key's artifact: the object is moved aside and
// every index entry referencing it is dropped. Used when content that
// passed the hash check still fails structural decoding — the key reads
// as a miss afterwards, so it can be recomputed and republished.
func (s *Store) Reject(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sha, ok := s.index[id]; ok {
		s.rejectLocked(sha)
	}
}

// List returns the index sorted by key ID.
func (s *Store) List() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, len(s.index))
	for id, sha := range s.index {
		out = append(out, Entry{ID: id, SHA256: sha, Size: s.sizes[sha]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats reports the index size and total object bytes.
func (s *Store) Stats() (artifacts int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index), s.bytes
}

// GC reclaims space: unreferenced objects (their index entries were
// quarantined or evicted) are always removed, and with budget > 0 the
// store then evicts oldest-modified artifacts — index entry and, once
// unreferenced, object — until total object bytes fit the budget.
// Returns the number of objects removed and the bytes freed.
func (s *Store) GC(budget int64) (removed int, freed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	refs := map[string]int{}
	for _, sha := range s.index {
		refs[sha]++
	}
	for sha := range s.sizes {
		if refs[sha] == 0 {
			freed += s.dropObjectLocked(sha)
			removed++
		}
	}
	if budget <= 0 || s.bytes <= budget {
		return removed, freed
	}
	// Over budget: evict whole artifacts oldest-first (object mtime, key
	// ID as the deterministic tiebreaker).
	type victim struct {
		id  string
		sha string
		mt  time.Time
	}
	victims := make([]victim, 0, len(s.index))
	for id, sha := range s.index {
		info, err := os.Stat(s.objectPath(sha))
		if err != nil {
			continue
		}
		victims = append(victims, victim{id: id, sha: sha, mt: info.ModTime()})
	}
	sort.Slice(victims, func(i, j int) bool {
		if !victims[i].mt.Equal(victims[j].mt) {
			return victims[i].mt.Before(victims[j].mt)
		}
		return victims[i].id < victims[j].id
	})
	for _, v := range victims {
		if s.bytes <= budget {
			break
		}
		os.Remove(s.indexPath(v.id))
		delete(s.index, v.id)
		refs[v.sha]--
		if refs[v.sha] == 0 {
			freed += s.dropObjectLocked(v.sha)
			removed++
		}
		mEvictions.Inc()
	}
	return removed, freed
}

// WriteMetrics renders the store's instance-shaped gauges in Prometheus
// text format (the counters live on the process-global registry).
func (s *Store) WriteMetrics(w io.Writer) error {
	artifacts, bytes := s.Stats()
	_, err := fmt.Fprintf(w,
		"# HELP dsmc_store_artifacts Artifacts indexed in the result store.\n"+
			"# TYPE dsmc_store_artifacts gauge\n"+
			"dsmc_store_artifacts %d\n"+
			"# HELP dsmc_store_bytes Total object bytes held by the result store.\n"+
			"# TYPE dsmc_store_bytes gauge\n"+
			"dsmc_store_bytes %d\n", artifacts, bytes)
	return err
}

// --- internals ---

func (s *Store) objectsDir() string    { return filepath.Join(s.root, "objects") }
func (s *Store) indexDir() string      { return filepath.Join(s.root, "index") }
func (s *Store) quarantineDir() string { return filepath.Join(s.root, "quarantine") }

func (s *Store) objectPath(sha string) string { return filepath.Join(s.objectsDir(), sha) }
func (s *Store) indexPath(id string) string   { return filepath.Join(s.indexDir(), id) }

// rejectLocked quarantines an object and drops every index entry
// referencing it, counting one verification failure.
func (s *Store) rejectLocked(sha string) {
	mVerifyFailures.Inc()
	s.quarantine(s.objectPath(sha))
	if size, ok := s.sizes[sha]; ok {
		s.bytes -= size
		delete(s.sizes, sha)
	}
	var drop []string
	for id, ref := range s.index {
		if ref == sha {
			drop = append(drop, id)
		}
	}
	for _, id := range drop {
		os.Remove(s.indexPath(id))
		delete(s.index, id)
	}
}

// dropObjectLocked removes an object file and its accounting.
func (s *Store) dropObjectLocked(sha string) (size int64) {
	os.Remove(s.objectPath(sha))
	size = s.sizes[sha]
	s.bytes -= size
	delete(s.sizes, sha)
	return size
}

// sweepOrphans moves every *.tmp under the root into quarantine. An
// orphan is a crashed atomic write whose rename never happened — it is
// garbage by construction, but quarantining instead of deleting keeps
// the evidence for postmortems and guarantees it is never served.
func (s *Store) sweepOrphans() error {
	return filepath.WalkDir(s.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path == s.quarantineDir() {
				return fs.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".tmp") {
			s.quarantine(path)
		}
		return nil
	})
}

// quarantine moves a file into quarantine/, uniquifying the name if a
// previous incident already used it. Best-effort: on failure the file
// is removed outright, so a bad artifact never stays servable.
func (s *Store) quarantine(path string) {
	base := filepath.Base(path)
	dst := filepath.Join(s.quarantineDir(), base)
	for i := 1; ; i++ {
		if _, err := os.Lstat(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(s.quarantineDir(), fmt.Sprintf("%s.%d", base, i))
	}
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
	}
}

func hashOf(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

func validSHA(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// atomicWrite writes via temp file + fsync + rename so a crash can
// never leave a half-written object or index entry in place; the *.tmp
// orphan a crash does leave is swept to quarantine on the next Open.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
