package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// Output is one finished replica job's result as it travels and rests:
// the sampled quantity fields keyed by quantity slug, the fitted shock
// angle (NaN for scenarios without a wedge), and the integer
// diagnostics. It mirrors the public dsmc.ReplicaOutput field-for-field
// — the store sits below the public package in the layer DAG, so the
// callers on either side convert by construction, not by import.
type Output struct {
	Fields        map[string][]float64
	ShockAngleDeg float64
	Collisions    int64
	NFlow         int
}

// The binary replica-output codec (the coordinator's upload format and
// the store's at-rest "out" artifact format — one frame, PR 7's
// DSMCOUT1). JSON cannot carry the outputs — ShockAngleDeg is NaN for
// scenarios without a wedge — and the sweep's bit-identity guarantee
// makes "almost the same float" a corruption, so outputs travel as raw
// IEEE-754 bits with a checksum trailer:
//
//	magic "DSMCOUT1"
//	u32 field count, then per field (sorted by name):
//	  u32 name length, name bytes, u32 cell count, cells × u64 float bits
//	u64 shock angle bits, u64 collisions, u64 nflow
//	u64 FNV-1a of everything before the trailer
const outputMagic = "DSMCOUT1"

// EncodeOutput serializes a replica output bit-exactly. The encoding is
// canonical (fields sorted by name), so identical results produce
// identical bytes — the property the content-addressed index relies on
// to make racing publishes of one key converge.
func EncodeOutput(o *Output) []byte {
	names := make([]string, 0, len(o.Fields))
	for name := range o.Fields {
		names = append(names, name)
	}
	sort.Strings(names)

	size := len(outputMagic) + 4
	for _, name := range names {
		size += 4 + len(name) + 4 + 8*len(o.Fields[name])
	}
	size += 8 * 4
	buf := make([]byte, 0, size)
	buf = append(buf, outputMagic...)
	u32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	u32(uint32(len(names)))
	for _, name := range names {
		u32(uint32(len(name)))
		buf = append(buf, name...)
		col := o.Fields[name]
		u32(uint32(len(col)))
		for _, v := range col {
			u64(math.Float64bits(v))
		}
	}
	u64(math.Float64bits(o.ShockAngleDeg))
	u64(uint64(o.Collisions))
	u64(uint64(o.NFlow))
	h := fnv.New64a()
	h.Write(buf)
	u64(h.Sum64())
	return buf
}

// DecodeOutput parses an encoded replica output, verifying the checksum
// before trusting any of it.
func DecodeOutput(data []byte) (*Output, error) {
	if len(data) < len(outputMagic)+4+8*4 || string(data[:len(outputMagic)]) != outputMagic {
		return nil, errors.New("store: malformed output (bad magic or truncated)")
	}
	h := fnv.New64a()
	h.Write(data[:len(data)-8])
	if h.Sum64() != binary.LittleEndian.Uint64(data[len(data)-8:]) {
		return nil, errors.New("store: output checksum mismatch")
	}
	p := data[len(outputMagic) : len(data)-8]
	fail := errors.New("store: malformed output (truncated)")
	u32 := func() (uint32, error) {
		if len(p) < 4 {
			return 0, fail
		}
		v := binary.LittleEndian.Uint32(p)
		p = p[4:]
		return v, nil
	}
	u64 := func() (uint64, error) {
		if len(p) < 8 {
			return 0, fail
		}
		v := binary.LittleEndian.Uint64(p)
		p = p[8:]
		return v, nil
	}
	nf, err := u32()
	if err != nil {
		return nil, err
	}
	out := &Output{Fields: make(map[string][]float64, nf)}
	for i := uint32(0); i < nf; i++ {
		nl, err := u32()
		if err != nil || len(p) < int(nl) {
			return nil, fail
		}
		name := string(p[:nl])
		p = p[nl:]
		cells, err := u32()
		if err != nil || len(p) < 8*int(cells) {
			return nil, fail
		}
		col := make([]float64, cells)
		for c := range col {
			col[c] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*c:]))
		}
		p = p[8*int(cells):]
		if _, dup := out.Fields[name]; dup {
			return nil, fmt.Errorf("store: malformed output (duplicate field %q)", name)
		}
		out.Fields[name] = col
	}
	angle, err := u64()
	if err != nil {
		return nil, err
	}
	colls, err := u64()
	if err != nil {
		return nil, err
	}
	nflow, err := u64()
	if err != nil {
		return nil, err
	}
	if len(p) != 0 {
		return nil, errors.New("store: malformed output (trailing bytes)")
	}
	out.ShockAngleDeg = math.Float64frombits(angle)
	out.Collisions = int64(colls)
	out.NFlow = int(nflow)
	return out, nil
}
