// Package collide implements the McDonald–Baganoff collision algorithm and
// selection rule that the paper parallelizes: a per-candidate-pair
// collision probability (eq. 5–8) and a post-collision state constructed
// by randomly permuting and sign-flipping the five relative velocity
// components (eq. 18), which conserves linear momentum and energy exactly.
package collide

import (
	"math"

	"dsmc/internal/molec"
	"dsmc/internal/rng"
)

// State5 is the five-component velocity state of a diatomic particle:
// indices 0–2 are the translational components (u, v, w) and 3–4 the
// rotational components (the rotational velocity vector r of eq. 9).
type State5 = [5]float64

// RelMean decomposes a candidate pair into relative and mean components:
// mean[i] = (a[i]+b[i])/2, rel[i] = a[i]-b[i] (eqs. 12–15).
func RelMean(a, b *State5) (rel, mean State5) {
	for i := 0; i < 5; i++ {
		rel[i] = a[i] - b[i]
		mean[i] = (a[i] + b[i]) / 2
	}
	return rel, mean
}

// Reconstruct forms the post-collision particle states from the permuted
// relative components and the (unchanged) mean: a' = mean + rel'/2,
// b' = mean − rel'/2.
func Reconstruct(a, b *State5, rel, mean *State5) {
	for i := 0; i < 5; i++ {
		h := rel[i] / 2
		a[i] = mean[i] + h
		b[i] = mean[i] - h
	}
}

// TransRelSpeed returns the magnitude of the translational relative
// velocity g, the quantity entering the selection rule's cross-section
// factor.
func TransRelSpeed(a, b *State5) float64 {
	du := a[0] - b[0]
	dv := a[1] - b[1]
	dw := a[2] - b[2]
	return math.Sqrt(du*du + dv*dv + dw*dw)
}

// Collide performs one McDonald–Baganoff collision on the pair (a, b):
// the five pre-collision relative components are re-ordered by perm and
// each is given a random, equally probable sign from the low bits of
// signs; the pair is reconstructed about the unchanged mean. Any
// post-collision set satisfying eq. 18 is valid; using the pre-collision
// values themselves makes the construction exact.
func Collide(a, b *State5, perm rng.Perm5, signs uint32) {
	rel, mean := RelMean(a, b)
	var newRel State5
	for i, j := range perm {
		v := rel[j]
		if signs>>uint(i)&1 == 1 {
			v = -v
		}
		newRel[i] = v
	}
	Reconstruct(a, b, &newRel, &mean)
}

// Invariants returns the conserved quantities of a pair: the three
// components of linear momentum (translational only — rotational
// components carry no linear momentum) and the total energy
// (translational + rotational, per unit mass, factor ½ omitted).
func Invariants(a, b *State5) (mom [3]float64, energy float64) {
	for i := 0; i < 3; i++ {
		mom[i] = a[i] + b[i]
	}
	for i := 0; i < 5; i++ {
		energy += a[i]*a[i] + b[i]*b[i]
	}
	return mom, energy
}

// Rule is the selection rule, eq. (7)/(8) of the paper, normalised to the
// freestream: P = P∞ · (n/n∞) · (g/g∞)^GExp.
type Rule struct {
	Model molec.Model
	// PInf is the freestream collision probability Δt/t_c∞.
	PInf float64
	// NInf is the freestream number of simulator particles per unit cell
	// volume.
	NInf float64
	// GInf is the freestream mean relative speed √2·c̄∞ used to normalise g.
	GInf float64
	// CollideAll short-circuits the rule to P = 1, the paper's
	// near-continuum mode (freestream mean free path set to zero), where
	// the number of collisions in a cell is half the number of particles.
	CollideAll bool
}

// Prob returns the collision probability for a candidate pair in a cell
// of the given population and (possibly fractional) volume, with
// translational relative speed g. The result is clamped to [0, 1].
func (r Rule) Prob(cellCount int, cellVolume, g float64) float64 {
	if r.CollideAll {
		return 1
	}
	if cellVolume <= 0 || cellCount <= 0 {
		return 0
	}
	n := float64(cellCount) / cellVolume
	p := r.PInf * (n / r.NInf) * r.Model.GFactor(g/r.GInf)
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// MeanFreePathEstimate inverts the rule at freestream conditions: the
// mean free path implied by PInf is c̄∞/P∞ per unit time step.
func (r Rule) MeanFreePathEstimate(meanSpeed float64) float64 {
	if r.PInf <= 0 {
		return math.Inf(1)
	}
	return meanSpeed / r.PInf
}
