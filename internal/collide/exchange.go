package collide

import (
	"math"

	"dsmc/internal/rng"
)

// The exchange models below are the generalisations the paper's
// future-work section asks for: isotropic VHS-style scattering without
// internal energy exchange, Borgnakke–Larsen translational–rotational
// relaxation with a rotational collision number, and relaxation into a
// continuous vibrational energy reservoir.

// CollideVHSIsotropic scatters the translational relative velocity
// isotropically on the sphere of radius |g| (the VHS/hard-sphere angular
// law) and leaves the rotational components untouched. Momentum and
// energy are conserved.
func CollideVHSIsotropic(a, b *State5, r *rng.Stream) {
	rel, mean := RelMean(a, b)
	g := math.Sqrt(rel[0]*rel[0] + rel[1]*rel[1] + rel[2]*rel[2])
	dir := isotropic3(r)
	// Only the translational components are rebuilt; the rotational state
	// must pass through bit-exactly in an elastic encounter.
	for i := 0; i < 3; i++ {
		h := g * dir[i] / 2
		a[i] = mean[i] + h
		b[i] = mean[i] - h
	}
}

// CollideBL performs a Borgnakke–Larsen collision with rotational
// relaxation number zRot: with probability 1/zRot the collision
// redistributes the total pair energy between the relative translational
// mode (3 degrees of freedom) and the four rotational degrees of freedom
// by sampling the equilibrium Beta distribution; otherwise the collision
// is elastic isotropic. Momentum and energy are conserved either way.
func CollideBL(a, b *State5, zRot float64, r *rng.Stream) {
	if zRot < 1 {
		zRot = 1
	}
	if r.Float64() >= 1/zRot {
		CollideVHSIsotropic(a, b, r)
		return
	}
	rel, mean := RelMean(a, b)
	// Pair energy split (per unit mass, factor ¼ on the relative part
	// because the reduced mass is m/2 and the pair shares the mean):
	// E_tr = |g|²/4, E_rot = (r_a² + r_b²)/2 in the same units used by
	// Invariants (which omits the global ½).
	eTr := (rel[0]*rel[0] + rel[1]*rel[1] + rel[2]*rel[2]) / 2
	var eRot float64
	eRot += (a[3]*a[3] + a[4]*a[4] + b[3]*b[3] + b[4]*b[4])
	ec := eTr + eRot
	// Equilibrium fraction to translation: Beta(3/2, 2) for 3 relative
	// translational dof against 4 rotational dof.
	fTr := betaSample(1.5, 2.0, r)
	eTrNew := fTr * ec
	eRotNew := ec - eTrNew
	// New relative translational velocity, isotropic with the new energy:
	// |g'|²/2 = eTrNew.
	g := math.Sqrt(2 * eTrNew)
	dir := isotropic3(r)
	rel[0], rel[1], rel[2] = g*dir[0], g*dir[1], g*dir[2]
	// Split the rotational energy between the two particles with the
	// equilibrium Beta(1,1) = uniform fraction (2 dof each side), with
	// uniformly random planar directions.
	fa := betaSample(1, 1, r)
	ra := math.Sqrt(eRotNew * fa)
	rb := math.Sqrt(eRotNew * (1 - fa))
	phiA := 2 * math.Pi * r.Float64()
	phiB := 2 * math.Pi * r.Float64()
	a[3], a[4] = ra*math.Cos(phiA), ra*math.Sin(phiA)
	b[3], b[4] = rb*math.Cos(phiB), rb*math.Sin(phiB)
	// Rebuild translation about the unchanged mean; rotational components
	// were assigned directly.
	for i := 0; i < 3; i++ {
		h := rel[i] / 2
		a[i] = mean[i] + h
		b[i] = mean[i] - h
	}
}

// VibExchange relaxes a pair's vibrational energies (continuous model,
// two effective vibrational degrees of freedom per particle) against the
// collision energy with vibrational collision number zVib. It returns the
// updated vibrational energies along with a scale factor to apply to the
// pair's relative translational velocity so total energy stays conserved.
// The caller owns applying the scale (see Simulation's vibrating mode).
func VibExchange(eTr, eVibA, eVibB, zVib float64, r *rng.Stream) (eTrNew, eVibANew, eVibBNew float64) {
	if zVib < 1 {
		zVib = 1
	}
	if r.Float64() >= 1/zVib {
		return eTr, eVibA, eVibB
	}
	ec := eTr + eVibA + eVibB
	// Fraction to translation: Beta(3/2, 2) against 4 vibrational dof.
	f := betaSample(1.5, 2.0, r)
	eTrNew = f * ec
	rest := ec - eTrNew
	fa := r.Float64()
	return eTrNew, rest * fa, rest * (1 - fa)
}

// isotropic3 returns a uniformly distributed unit 3-vector.
func isotropic3(r *rng.Stream) [3]float64 {
	z := 2*r.Float64() - 1
	phi := 2 * math.Pi * r.Float64()
	s := math.Sqrt(1 - z*z)
	return [3]float64{s * math.Cos(phi), s * math.Sin(phi), z}
}

// betaSample draws from Beta(a, b) using Jöhnk's rejection method,
// adequate for the small shape parameters used here.
func betaSample(a, b float64, r *rng.Stream) float64 {
	for i := 0; i < 1000; i++ {
		u := math.Pow(r.Float64(), 1/a)
		v := math.Pow(r.Float64(), 1/b)
		if u+v > 0 && u+v <= 1 {
			return u / (u + v)
		}
	}
	return 0.5
}
