package collide

import (
	"math"
	"testing"
	"testing/quick"

	"dsmc/internal/molec"
	"dsmc/internal/rng"
)

func randomPair(r *rng.Stream) (State5, State5) {
	var a, b State5
	for i := range a {
		a[i] = r.Gaussian(0, 1)
		b[i] = r.Gaussian(0.5, 1)
	}
	return a, b
}

// TestCollideConservesInvariants is the central correctness property:
// eq. 18 of the paper guarantees momentum and energy conservation for any
// permutation and sign assignment, and the float64 construction is exact
// up to rounding.
func TestCollideConservesInvariants(t *testing.T) {
	r := rng.NewStream(1)
	table := rng.Perm5Table()
	for i := 0; i < 5000; i++ {
		a, b := randomPair(&r)
		momBefore, eBefore := Invariants(&a, &b)
		perm := rng.RandomPerm5(table, &r)
		Collide(&a, &b, perm, r.Uint32())
		momAfter, eAfter := Invariants(&a, &b)
		for k := 0; k < 3; k++ {
			if math.Abs(momAfter[k]-momBefore[k]) > 1e-12 {
				t.Fatalf("momentum[%d] drift %g", k, momAfter[k]-momBefore[k])
			}
		}
		if math.Abs(eAfter-eBefore) > 1e-12*math.Max(1, eBefore) {
			t.Fatalf("energy drift %g", eAfter-eBefore)
		}
	}
}

func TestCollideIdentityPermNoSigns(t *testing.T) {
	// Identity permutation with no sign flips must leave the pair unchanged.
	r := rng.NewStream(2)
	a, b := randomPair(&r)
	a0, b0 := a, b
	Collide(&a, &b, rng.IdentityPerm5, 0)
	for i := 0; i < 5; i++ {
		if math.Abs(a[i]-a0[i]) > 1e-15 || math.Abs(b[i]-b0[i]) > 1e-15 {
			t.Fatalf("identity collision changed the state")
		}
	}
}

func TestCollideSignFlipSwapsPair(t *testing.T) {
	// Identity permutation with all five signs flipped exchanges the two
	// particles' states (a gains -rel/2 instead of +rel/2).
	r := rng.NewStream(3)
	a, b := randomPair(&r)
	a0, b0 := a, b
	Collide(&a, &b, rng.IdentityPerm5, 0x1f)
	for i := 0; i < 5; i++ {
		if math.Abs(a[i]-b0[i]) > 1e-15 || math.Abs(b[i]-a0[i]) > 1e-15 {
			t.Fatalf("full sign flip must swap the pair")
		}
	}
}

func TestRelMeanReconstructRoundTrip(t *testing.T) {
	f := func(a0, a1, a2, a3, a4, b0, b1, b2, b3, b4 float64) bool {
		clamp := func(x float64) float64 { return math.Mod(x, 100) }
		a := State5{clamp(a0), clamp(a1), clamp(a2), clamp(a3), clamp(a4)}
		b := State5{clamp(b0), clamp(b1), clamp(b2), clamp(b3), clamp(b4)}
		rel, mean := RelMean(&a, &b)
		var a2v, b2v State5
		Reconstruct(&a2v, &b2v, &rel, &mean)
		for i := 0; i < 5; i++ {
			if math.Abs(a2v[i]-a[i]) > 1e-12 || math.Abs(b2v[i]-b[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransRelSpeed(t *testing.T) {
	a := State5{3, 0, 0, 9, 9}
	b := State5{0, 4, 0, -9, -9}
	if got := TransRelSpeed(&a, &b); math.Abs(got-5) > 1e-12 {
		t.Errorf("g = %v, want 5 (rotational components must not enter)", got)
	}
}

func TestRuleMaxwellDensityScaling(t *testing.T) {
	rule := Rule{Model: molec.Maxwell(), PInf: 0.25, NInf: 30, GInf: 1}
	// Freestream cell: P = PInf.
	if got := rule.Prob(30, 1, 2.5); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("freestream P = %v, want 0.25", got)
	}
	// Double density doubles P (eq. 8).
	if got := rule.Prob(60, 1, 0.1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("doubled density P = %v, want 0.5", got)
	}
	// Fractional cell volume raises the density (the paper's special
	// allowance for wedge-cut cells).
	if got := rule.Prob(30, 0.5, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("half-volume cell P = %v, want 0.5", got)
	}
}

func TestRuleHardSphereSpeedScaling(t *testing.T) {
	rule := Rule{Model: molec.HardSphere(), PInf: 0.1, NInf: 10, GInf: 2}
	if got := rule.Prob(10, 1, 4); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("hard-sphere P = %v, want 0.2 (g/g∞ = 2)", got)
	}
}

func TestRuleClampsToUnity(t *testing.T) {
	rule := Rule{Model: molec.Maxwell(), PInf: 0.5, NInf: 10, GInf: 1}
	if got := rule.Prob(1000, 1, 1); got != 1 {
		t.Errorf("P must clamp to 1, got %v", got)
	}
}

func TestRuleNearContinuumCollideAll(t *testing.T) {
	rule := Rule{Model: molec.Maxwell(), CollideAll: true}
	if rule.Prob(2, 1, 0.001) != 1 {
		t.Errorf("near-continuum mode must collide every candidate")
	}
}

func TestRuleDegenerateCells(t *testing.T) {
	rule := Rule{Model: molec.Maxwell(), PInf: 0.25, NInf: 30, GInf: 1}
	if rule.Prob(0, 1, 1) != 0 {
		t.Errorf("empty cell must not collide")
	}
	if rule.Prob(10, 0, 1) != 0 {
		t.Errorf("zero-volume cell must not collide")
	}
}

func TestMeanFreePathEstimate(t *testing.T) {
	rule := Rule{PInf: 0.25}
	if got := rule.MeanFreePathEstimate(0.125); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("lambda = %v, want 0.5", got)
	}
	if !math.IsInf(Rule{}.MeanFreePathEstimate(1), 1) {
		t.Errorf("PInf=0 implies infinite mean free path")
	}
}

func TestVHSIsotropicConserves(t *testing.T) {
	r := rng.NewStream(5)
	for i := 0; i < 2000; i++ {
		a, b := randomPair(&r)
		momB, eB := Invariants(&a, &b)
		rotA, rotB := [2]float64{a[3], a[4]}, [2]float64{b[3], b[4]}
		CollideVHSIsotropic(&a, &b, &r)
		momA, eA := Invariants(&a, &b)
		for k := 0; k < 3; k++ {
			if math.Abs(momA[k]-momB[k]) > 1e-12 {
				t.Fatalf("momentum drift")
			}
		}
		if math.Abs(eA-eB) > 1e-12*math.Max(1, eB) {
			t.Fatalf("energy drift %g", eA-eB)
		}
		if a[3] != rotA[0] || a[4] != rotA[1] || b[3] != rotB[0] || b[4] != rotB[1] {
			t.Fatalf("elastic scattering must not touch rotational state")
		}
	}
}

func TestBLConserves(t *testing.T) {
	r := rng.NewStream(6)
	for i := 0; i < 2000; i++ {
		a, b := randomPair(&r)
		momB, eB := Invariants(&a, &b)
		CollideBL(&a, &b, 1, &r) // force exchange every collision
		momA, eA := Invariants(&a, &b)
		for k := 0; k < 3; k++ {
			if math.Abs(momA[k]-momB[k]) > 1e-12 {
				t.Fatalf("momentum drift %g", momA[k]-momB[k])
			}
		}
		if math.Abs(eA-eB) > 1e-10*math.Max(1, eB) {
			t.Fatalf("energy drift %g", eA-eB)
		}
	}
}

// TestBLEquipartition relaxes an ensemble with all energy initially
// translational; Borgnakke–Larsen exchange must drive rotational and
// translational temperatures together.
func TestBLEquipartition(t *testing.T) {
	r := rng.NewStream(7)
	const n = 4000
	parts := make([]State5, n)
	for i := range parts {
		parts[i][0] = r.Gaussian(0, 1)
		parts[i][1] = r.Gaussian(0, 1)
		parts[i][2] = r.Gaussian(0, 1)
		// rotational components start cold
	}
	var accTr, accRot float64
	for step := 0; step < 500; step++ {
		for i := 0; i+1 < n; i += 2 {
			j := i + 1 + r.Intn(n-i-1)
			CollideBL(&parts[i], &parts[j], 3, &r)
		}
		if step >= 200 { // time-average the equilibrated tail
			for i := range parts {
				accTr += parts[i][0]*parts[i][0] + parts[i][1]*parts[i][1] + parts[i][2]*parts[i][2]
				accRot += parts[i][3]*parts[i][3] + parts[i][4]*parts[i][4]
			}
		}
	}
	// Equipartition: energy per dof equal → eRot/eTr = 2/3.
	ratio := accRot / accTr
	if math.Abs(ratio-2.0/3) > 0.03 {
		t.Errorf("equipartition ratio = %v, want 2/3", ratio)
	}
}

func TestVibExchangeConserves(t *testing.T) {
	r := rng.NewStream(8)
	for i := 0; i < 2000; i++ {
		eTr := r.Float64() * 3
		eA := r.Float64()
		eB := r.Float64()
		nTr, nA, nB := VibExchange(eTr, eA, eB, 1, &r)
		if math.Abs((nTr+nA+nB)-(eTr+eA+eB)) > 1e-12 {
			t.Fatalf("vibrational exchange must conserve energy")
		}
		if nTr < 0 || nA < 0 || nB < 0 {
			t.Fatalf("negative energy after exchange")
		}
	}
}

func TestVibExchangeRespectsZVib(t *testing.T) {
	r := rng.NewStream(9)
	unchanged := 0
	const n = 10000
	for i := 0; i < n; i++ {
		_, nA, _ := VibExchange(1, 0.3, 0.3, 5, &r)
		if nA == 0.3 {
			unchanged++
		}
	}
	// With zVib = 5 about 80% of collisions skip the exchange.
	if f := float64(unchanged) / n; math.Abs(f-0.8) > 0.02 {
		t.Errorf("exchange skip fraction = %v, want 0.8", f)
	}
}

// TestCollideRandomizesDirections: after many collisions of an initially
// anisotropic ensemble, the translational components must share energy
// (the permutation mixes components), demonstrating why the permutation
// mechanism thermalises the gas.
func TestCollideRandomizesDirections(t *testing.T) {
	r := rng.NewStream(10)
	table := rng.Perm5Table()
	const n = 4000
	parts := make([]State5, n)
	for i := range parts {
		parts[i][0] = r.Gaussian(0, 2) // all energy in x initially
	}
	var e [5]float64
	for step := 0; step < 300; step++ {
		for i := 0; i+1 < n; i += 2 {
			j := i + 1 + r.Intn(n-i-1)
			perm := rng.RandomPerm5(table, &r)
			Collide(&parts[i], &parts[j], perm, r.Uint32())
		}
		if step >= 100 { // time-average the equilibrated tail
			for i := range parts {
				for k := 0; k < 5; k++ {
					e[k] += parts[i][k] * parts[i][k]
				}
			}
		}
	}
	mean := (e[0] + e[1] + e[2] + e[3] + e[4]) / 5
	for k := 0; k < 5; k++ {
		if math.Abs(e[k]-mean)/mean > 0.05 {
			t.Errorf("component %d energy %v deviates from equipartition %v", k, e[k], mean)
		}
	}
}
