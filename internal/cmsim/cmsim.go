// Package cmsim is the paper's implementation: the particle simulation
// expressed in Connection Machine data-parallel primitives with one
// virtual processor per particle and 32-bit fixed-point (Q9.23) particle
// state.
//
// Every mechanism described in the implementation section of the paper is
// present:
//
//   - particles-to-processors mapping; flow and reservoir particles share
//     the machine, so "idle" processors do the useful work of relaxing the
//     reservoir;
//   - collisionless motion as one elementwise vector add, perfectly load
//     balanced;
//   - the upstream plunger moving with the freestream, withdrawn at a
//     trigger point, with the void refilled from the reservoir via an
//     enumeration scan;
//   - the per-step sort on cell index scaled by a constant with a random
//     offset added, so ordering within a cell changes every step;
//   - even/odd candidate pairing after the sort, so collision partners sit
//     in the same physical processor for VP ratios ≥ 2;
//   - cell population (density) via segmented scans;
//   - the McDonald–Baganoff selection rule in fixed point;
//   - the 5-component permutation collision using per-particle permutation
//     vectors refreshed by one random transposition per collision;
//   - stochastic rounding of the halvings, curing the truncation energy
//     loss the paper describes.
package cmsim

import (
	"math"

	"dsmc/internal/cm"
	"dsmc/internal/fixed"
	"dsmc/internal/geom"
	"dsmc/internal/grid"
	"dsmc/internal/rng"
	"dsmc/internal/sim"
)

// Config configures the data-parallel simulation.
type Config struct {
	// Sim carries the physical configuration (grid, wedge, freestream,
	// densities). The pluggable Scheme and Wall fields are ignored: this
	// backend always runs the paper's algorithm with specular walls.
	Sim sim.Config
	// PhysProcs is the number of physical processors of the modelled
	// machine (the paper uses 32k; any positive count works). The virtual
	// processor ratio is the particle count divided by this.
	PhysProcs int
}

// keyScale is the constant factor by which the cell index is scaled
// before a random number below it is added, giving randomised order
// within a cell after the sort.
const keyScale = 64

// region codes stored in the region field.
const (
	regionFlow = iota
	regionReservoir
)

// Sim is a running data-parallel simulation.
type Sim struct {
	cfg  Config
	m    *cm.Machine
	grid grid.Grid
	vols []fixed.Fix // per-cell gas volume, fixed point
	volF []float64

	// particle state fields (one VP per particle)
	x, y                cm.Field
	u, v, w, r1, r2     cm.Field
	permF               cm.Field // packed Perm5
	region              cm.Field
	cellF, key          cm.Field
	ones, scratch, enum cm.Field
	nU, nV, nW          cm.Field // neighbour velocities (shifted)
	count, rank         cm.Field
	nCell               cm.Field

	segStart  []bool
	pairFirst []bool
	flowCtx   []bool
	resCtx    []bool

	lanes []rng.Stream
	table []rng.Perm5

	// fixed-point constants
	uInfF    fixed.Fix
	wTan     fixed.Fix
	wSin     fixed.Fix
	wCos     fixed.Fix
	leadX    fixed.Fix
	trailX   fixed.Fix
	height   fixed.Fix
	tunnelW  fixed.Fix
	tunnelH  fixed.Fix
	pInfQ    float64 // selection probability scale, float (front-end constant)
	resCells int

	plungerX   fixed.Fix
	stepN      int
	collisions int64
	nFlow      int
}

// New builds the data-parallel simulation. The machine is sized to the
// total particle count (flow target + reservoir), rounded up to a
// multiple of the physical processor count.
func New(cfg Config) (*Sim, error) {
	if cfg.PhysProcs <= 0 {
		cfg.PhysProcs = 1024
	}
	c := cfg.Sim
	if c.Free.Gamma == 0 {
		c.Free.Gamma = 1.4
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	cfg.Sim = c
	g := grid.New(c.NX, c.NY)
	volF := g.Volumes(c.Wedge)
	var freeVol float64
	for _, v := range volF {
		freeVol += v
	}
	flowTarget := int(c.NPerCell * freeVol)
	resTarget := flowTarget / 10
	if resTarget < 64 {
		resTarget = 64
	}
	m := cm.New(cfg.PhysProcs, flowTarget+resTarget)

	s := &Sim{
		cfg: cfg, m: m, grid: g, volF: volF,
		x: m.NewField(), y: m.NewField(),
		u: m.NewField(), v: m.NewField(), w: m.NewField(),
		r1: m.NewField(), r2: m.NewField(),
		permF: m.NewField(), region: m.NewField(),
		cellF: m.NewField(), key: m.NewField(),
		ones: m.NewField(), scratch: m.NewField(), enum: m.NewField(),
		nU: m.NewField(), nV: m.NewField(), nW: m.NewField(),
		count: m.NewField(), rank: m.NewField(), nCell: m.NewField(),
		segStart:  make([]bool, m.VPs()),
		pairFirst: make([]bool, m.VPs()),
		flowCtx:   make([]bool, m.VPs()),
		resCtx:    make([]bool, m.VPs()),
		lanes:     rng.Streams(c.Seed+1, m.VPs()),
		table:     rng.Perm5Table(),
	}
	s.vols = make([]fixed.Fix, len(volF))
	for i, v := range volF {
		s.vols[i] = fixed.FromFloat(v)
	}
	wedge := c.Wedge
	if wedge != nil {
		s.wTan = fixed.FromFloat(math.Tan(wedge.Angle))
		s.wSin = fixed.FromFloat(math.Sin(wedge.Angle))
		s.wCos = fixed.FromFloat(math.Cos(wedge.Angle))
		s.leadX = fixed.FromFloat(wedge.LeadX)
		s.trailX = fixed.FromFloat(wedge.TrailX())
		s.height = fixed.FromFloat(wedge.Height())
	}
	s.tunnelW = fixed.FromInt(c.NX)
	s.tunnelH = fixed.FromInt(c.NY)
	s.uInfF = fixed.FromFloat(c.Free.Velocity())
	s.pInfQ = c.Free.SelectionPInf() / c.NPerCell
	s.resCells = resTarget/64 + 1

	s.initParticles(flowTarget)
	m.Fill(s.ones, 1)
	return s, nil
}

// initParticles fills the first flowTarget lanes with freestream flow and
// the remainder with reservoir particles.
func (s *Sim) initParticles(flowTarget int) {
	c := s.cfg.Sim
	sigma := c.Free.ComponentSigma()
	uInf := c.Free.Velocity()
	w := float64(c.NX)
	h := float64(c.NY)
	placedEnd := flowTarget
	s.m.Update(8, func(i int) {
		r := &s.lanes[i]
		if i < placedEnd {
			// Rejection-sample a gas-region position.
			for {
				px := r.Float64() * w
				py := r.Float64() * h
				if c.Wedge != nil && c.Wedge.Contains(geom.Vec2{X: px, Y: py}) {
					continue
				}
				s.x[i] = int32(fixed.FromFloat(px))
				s.y[i] = int32(fixed.FromFloat(py))
				break
			}
			s.u[i] = int32(fixed.FromFloat(uInf + r.Gaussian(0, sigma)))
			s.v[i] = int32(fixed.FromFloat(r.Gaussian(0, sigma)))
			s.w[i] = int32(fixed.FromFloat(r.Gaussian(0, sigma)))
			s.r1[i] = int32(fixed.FromFloat(r.Gaussian(0, sigma)))
			s.r2[i] = int32(fixed.FromFloat(r.Gaussian(0, sigma)))
			s.region[i] = regionFlow
		} else {
			s.depositLane(i)
		}
		s.permF[i] = rng.RandomPerm5(s.table, r).Pack()
	})
	s.nFlow = flowTarget
}

// depositLane converts lane i to a reservoir particle with rectangular
// thermal-frame velocities.
func (s *Sim) depositLane(i int) {
	r := &s.lanes[i]
	sigma := s.cfg.Sim.Free.ComponentSigma()
	s.region[i] = regionReservoir
	s.u[i] = int32(fixed.FromFloat(r.Rect(sigma)))
	s.v[i] = int32(fixed.FromFloat(r.Rect(sigma)))
	s.w[i] = int32(fixed.FromFloat(r.Rect(sigma)))
	s.r1[i] = int32(fixed.FromFloat(r.Rect(sigma)))
	s.r2[i] = int32(fixed.FromFloat(r.Rect(sigma)))
	s.x[i] = 0
	s.y[i] = 0
}

// Machine exposes the underlying data-parallel machine (cost model and
// phase timers).
func (s *Sim) Machine() *cm.Machine { return s.m }

// Grid returns the cell grid.
func (s *Sim) Grid() grid.Grid { return s.grid }

// Volumes returns the per-cell gas volumes.
func (s *Sim) Volumes() []float64 { return s.volF }

// NFlow returns the number of particles currently in the flow.
func (s *Sim) NFlow() int { return s.nFlow }

// NReservoir returns the number of reservoir particles.
func (s *Sim) NReservoir() int { return s.m.VPs() - s.nFlow }

// StepCount returns completed steps.
func (s *Sim) StepCount() int { return s.stepN }

// Collisions returns cumulative collisions (flow and reservoir).
func (s *Sim) Collisions() int64 { return s.collisions }

// Run advances n steps.
func (s *Sim) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// Step advances one time step: motion, boundaries, sort, selection,
// collision — each charged to its named phase of the cost model.
func (s *Sim) Step() {
	s.m.Phase("move")
	s.move()
	s.boundaries()
	s.m.Phase("sort")
	s.sort()
	s.m.Phase("select")
	s.selectPairs()
	s.m.Phase("collide")
	s.collide()
	s.m.FlushTimers()
	s.stepN++
}

// move is the collisionless motion: one saturating add per coordinate,
// executed on every flow processor simultaneously.
func (s *Sim) move() {
	s.m.Mask(s.flowCtx, s.region, func(r int32) bool { return r == regionFlow })
	s.m.ZipWhere(cm.OpALU, s.flowCtx, s.x, s.x, s.u, func(a, b int32) int32 {
		return int32(fixed.Add(fixed.Fix(a), fixed.Fix(b)))
	})
	s.m.ZipWhere(cm.OpALU, s.flowCtx, s.y, s.y, s.v, func(a, b int32) int32 {
		return int32(fixed.Add(fixed.Fix(a), fixed.Fix(b)))
	})
	s.plungerX = fixed.Add(s.plungerX, s.uInfF)
}

// boundaries enforces the soft downstream sink, the plunger, the hard
// walls and the wedge — all as per-processor conditional updates, then
// triggers the plunger refill when needed.
func (s *Sim) boundaries() {
	uInf2 := fixed.Scale(s.uInfF, 2)
	plunger := s.plungerX
	exited := s.m.UpdateReduce(78, func(i int, acc *int64) {
		if s.region[i] != regionFlow {
			return
		}
		x := fixed.Fix(s.x[i])
		// Downstream soft boundary: into the reservoir.
		if x > s.tunnelW {
			s.depositLane(i)
			*acc++
			return
		}
		// Upstream plunger, specular in the plunger frame.
		if x < plunger {
			s.x[i] = int32(fixed.Sub(fixed.Scale(plunger, 2), x))
			s.u[i] = int32(fixed.Sub(uInf2, fixed.Fix(s.u[i])))
		}
		s.reflectLane(i)
	})
	s.nFlow -= int(exited)
	if s.plungerX.Float() >= s.cfg.Sim.PlungerTrigger {
		s.refill()
	}
}

// reflectLane applies wall and wedge specular reflection in fixed point.
func (s *Sim) reflectLane(i int) {
	wedge := s.cfg.Sim.Wedge
	for b := 0; b < 6; b++ {
		y := fixed.Fix(s.y[i])
		if y < 0 {
			s.y[i] = int32(fixed.Neg(y))
			if fixed.Fix(s.v[i]) < 0 {
				s.v[i] = int32(fixed.Neg(fixed.Fix(s.v[i])))
			}
			continue
		}
		if y > s.tunnelH {
			s.y[i] = int32(fixed.Sub(fixed.Scale(s.tunnelH, 2), y))
			if fixed.Fix(s.v[i]) > 0 {
				s.v[i] = int32(fixed.Neg(fixed.Fix(s.v[i])))
			}
			continue
		}
		if wedge == nil {
			return
		}
		x := fixed.Fix(s.x[i])
		if x <= s.leadX || x >= s.trailX || y <= 0 {
			return
		}
		ramp := fixed.Mul(fixed.Sub(x, s.leadX), s.wTan)
		if y >= ramp {
			return
		}
		// Inside the wedge: mirror across the nearer face.
		// Ramp face depth (perpendicular): (ramp − y)·cosθ.
		dRamp := fixed.Mul(fixed.Sub(ramp, y), s.wCos)
		dBack := fixed.Sub(s.trailX, x)
		if dBack < dRamp {
			// Back face: mirror in x, flip u if moving upstream.
			s.x[i] = int32(fixed.Add(s.trailX, dBack))
			if fixed.Fix(s.u[i]) < 0 {
				s.u[i] = int32(fixed.Neg(fixed.Fix(s.u[i])))
			}
			continue
		}
		// Ramp face: p' = p + 2d·n with n = (−sinθ, cosθ).
		d2 := fixed.Scale(dRamp, 2)
		s.x[i] = int32(fixed.Sub(x, fixed.Mul(d2, s.wSin)))
		s.y[i] = int32(fixed.Add(y, fixed.Mul(d2, s.wCos)))
		// v' = v − 2(n·v)n when incoming.
		vn := fixed.Sub(fixed.Mul(fixed.Fix(s.v[i]), s.wCos),
			fixed.Mul(fixed.Fix(s.u[i]), s.wSin))
		if vn < 0 {
			vn2 := fixed.Scale(vn, 2)
			s.u[i] = int32(fixed.Add(fixed.Fix(s.u[i]), fixed.Mul(vn2, s.wSin)))
			s.v[i] = int32(fixed.Sub(fixed.Fix(s.v[i]), fixed.Mul(vn2, s.wCos)))
		}
	}
}

// refill withdraws the plunger and converts reservoir particles to flow
// in the vacated band, using the enumeration-scan idiom to pick the first
// K reservoir particles.
func (s *Sim) refill() {
	void := s.plungerX.Float()
	s.plungerX = 0
	want := int(void*float64(s.cfg.Sim.NY)*s.cfg.Sim.NPerCell + 0.5)
	s.m.Mask(s.resCtx, s.region, func(r int32) bool { return r == regionReservoir })
	avail := s.m.Enumerate(s.enum, s.resCtx)
	if want > avail {
		want = avail
	}
	if want == 0 {
		return
	}
	uInf := s.uInfF
	h := float64(s.cfg.Sim.NY)
	wantQ := int32(want)
	s.m.Update(10, func(i int) {
		if s.region[i] != regionReservoir || s.enum[i] < 0 || s.enum[i] >= wantQ {
			return
		}
		r := &s.lanes[i]
		s.region[i] = regionFlow
		s.x[i] = int32(fixed.FromFloat(r.Float64() * void))
		s.y[i] = int32(fixed.FromFloat(r.Float64() * h))
		s.u[i] = int32(fixed.Add(fixed.Fix(s.u[i]), uInf))
	})
	s.nFlow += want
}

// sort computes the dithered sort key — cell index times keyScale plus a
// random number below keyScale, the paper's randomisation trick — and
// reorders every particle field by the resulting rank.
func (s *Sim) sort() {
	nCells := int32(s.grid.Cells())
	nx := s.grid.NX
	resCells := int32(s.resCells)
	s.m.Update(12, func(i int) {
		var cell int32
		if s.region[i] == regionFlow {
			ix := fixed.Fix(s.x[i]).Int()
			iy := fixed.Fix(s.y[i]).Int()
			if ix < 0 {
				ix = 0
			}
			if ix >= nx {
				ix = nx - 1
			}
			if iy < 0 {
				iy = 0
			}
			if iy >= s.grid.NY {
				iy = s.grid.NY - 1
			}
			cell = int32(iy*nx + ix)
		} else {
			// Reservoir pseudo-cells sort after all flow cells; a random
			// pseudo-cell each step remixes the reservoir pairing.
			cell = nCells + int32(s.lanes[i].Intn(int(resCells)))
		}
		s.cellF[i] = cell
		s.key[i] = cell*keyScale + int32(fixed.DirtyBits(fixed.Fix(s.u[i])^fixed.Fix(s.x[i]), 12)%keyScale)
	})
	perm := s.m.SortPerm(s.key)
	s.m.GatherMany(perm, s.scratch,
		s.x, s.y, s.u, s.v, s.w, s.r1, s.r2, s.permF, s.region, s.cellF)
}

// selectPairs identifies candidate pairs (even/odd within each cell after
// the sort), obtains the cell population by segmented scan, and applies
// the selection rule, leaving the accepted pairs in pairFirst.
func (s *Sim) selectPairs() {
	m := s.m
	n := m.VPs()
	// Segment starts where the cell index changes.
	m.ShiftUp(s.nCell, s.cellF, -1)
	m.Update(2, func(i int) {
		s.segStart[i] = i == 0 || s.nCell[i] != s.cellF[i]
	})
	// Cell population on every particle.
	m.SegBroadcastSum(s.count, s.ones, s.segStart)
	// Rank within the cell.
	m.SegPlusScan(s.rank, s.ones, s.segStart, true)
	// Neighbour state (within-processor communication for VPR ≥ 2).
	m.ShiftDown(s.nU, s.u, 0)
	m.ShiftDown(s.nV, s.v, 0)
	m.ShiftDown(s.nW, s.w, 0)
	m.ShiftDown(s.nCell, s.cellF, -1)
	// Selection rule per candidate pair.
	nCells := int32(s.grid.Cells())
	collideAll := s.cfg.Sim.Free.Lambda <= 0
	gInf := math.Sqrt2 * s.cfg.Sim.Free.MeanSpeed()
	gExp := s.cfg.Sim.Model.GExp
	pInfQ := s.pInfQ
	m.Update(95, func(i int) {
		s.pairFirst[i] = false
		if s.rank[i]&1 != 0 || i+1 >= n || s.nCell[i] != s.cellF[i] {
			return
		}
		// A valid candidate pair (i, i+1) in the same cell.
		cell := s.cellF[i]
		var p float64
		switch {
		case cell >= nCells:
			p = 1 // reservoir bath: every candidate collides
		case collideAll:
			p = 1
		default:
			vol := s.volF[cell]
			if vol <= 0 {
				return
			}
			p = pInfQ * float64(s.count[i]) / vol
			if gExp != 0 {
				g := s.laneRelSpeed(i)
				if g <= 0 {
					return
				}
				p *= math.Pow(g/gInf, gExp)
			}
			if p > 1 {
				p = 1
			}
		}
		//dsmclint:allow float-eq exact saturation sentinel: p is clamped to 1 just above; == skips the lane draw without shifting it
		if p == 1 || s.lanes[i].Float64() < p {
			s.pairFirst[i] = true
		}
	})
}

// laneRelSpeed returns the translational relative speed of pair (i, i+1)
// in float units (the selection rule's g).
func (s *Sim) laneRelSpeed(i int) float64 {
	du := fixed.Sub(fixed.Fix(s.u[i]), fixed.Fix(s.nU[i])).Float()
	dv := fixed.Sub(fixed.Fix(s.v[i]), fixed.Fix(s.nV[i])).Float()
	dw := fixed.Sub(fixed.Fix(s.w[i]), fixed.Fix(s.nW[i])).Float()
	return math.Sqrt(du*du + dv*dv + dw*dw)
}

// collide performs the accepted collisions: the five relative components
// are computed with stochastically rounded halvings, re-ordered by the
// lane's permutation vector with random signs, and both partners are
// rebuilt about the mean. Each collision also applies one random
// transposition to each partner's permutation vector.
func (s *Sim) collide() {
	collided := s.m.UpdateReduce(235, func(i int, acc *int64) {
		if !s.pairFirst[i] {
			return
		}
		j := i + 1
		r := &s.lanes[i]
		var a, b, rel, mean [5]fixed.Fix
		a[0], a[1], a[2] = fixed.Fix(s.u[i]), fixed.Fix(s.v[i]), fixed.Fix(s.w[i])
		a[3], a[4] = fixed.Fix(s.r1[i]), fixed.Fix(s.r2[i])
		b[0], b[1], b[2] = fixed.Fix(s.u[j]), fixed.Fix(s.v[j]), fixed.Fix(s.w[j])
		b[3], b[4] = fixed.Fix(s.r1[j]), fixed.Fix(s.r2[j])
		for k := 0; k < 5; k++ {
			rel[k] = fixed.Sub(a[k], b[k])
			// Stochastically rounded halving: the paper's fix for the
			// truncation energy loss in stagnation regions.
			mean[k] = fixed.HalfStochastic(fixed.Add(a[k], b[k]), r.Bit())
		}
		perm := rng.UnpackPerm5(s.permF[i])
		dirty := fixed.DirtyBits(rel[0]^rel[1]^fixed.Fix(s.x[i]), 10) ^ r.Uint32()
		var newRel [5]fixed.Fix
		for k, src := range perm {
			val := rel[src]
			if dirty>>uint(k)&1 == 1 {
				val = fixed.Neg(val)
			}
			newRel[k] = val
		}
		for k := 0; k < 5; k++ {
			// Split newRel into h + (newRel−h) exactly, so a−b = newRel
			// bit-exactly (energy) and a+b = 2·mean bit-exactly (momentum,
			// up to the unbiased dither already inside mean).
			h := fixed.HalfStochastic(newRel[k], r.Bit())
			a[k] = fixed.Add(mean[k], h)
			b[k] = fixed.Sub(mean[k], fixed.Sub(newRel[k], h))
		}
		s.u[i], s.v[i], s.w[i] = int32(a[0]), int32(a[1]), int32(a[2])
		s.r1[i], s.r2[i] = int32(a[3]), int32(a[4])
		s.u[j], s.v[j], s.w[j] = int32(b[0]), int32(b[1]), int32(b[2])
		s.r1[j], s.r2[j] = int32(b[3]), int32(b[4])
		// One random transposition per collision refreshes each partner's
		// permutation vector (Aldous–Diaconis mixing).
		s.permF[i] = perm.RandomTransposition(r).Pack()
		s.permF[j] = rng.UnpackPerm5(s.permF[j]).RandomTransposition(r).Pack()
		*acc++
	})
	s.collisions += collided
}

// CellCounts returns the per-cell flow particle counts of the current
// (post-sort) configuration, for density sampling.
func (s *Sim) CellCounts() []int32 {
	counts := make([]int32, s.grid.Cells())
	nCells := int32(s.grid.Cells())
	for i := 0; i < s.m.VPs(); i++ {
		if s.region[i] == regionFlow && s.cellF[i] >= 0 && s.cellF[i] < nCells {
			counts[s.cellF[i]]++
		}
	}
	return counts
}

// TotalEnergy returns Σ over flow and reservoir of the five squared
// velocity components, in float units — the fixed-point energy-drift
// diagnostic.
func (s *Sim) TotalEnergy() float64 {
	var e float64
	for i := 0; i < s.m.VPs(); i++ {
		for _, f := range []cm.Field{s.u, s.v, s.w, s.r1, s.r2} {
			x := fixed.Fix(f[i]).Float()
			e += x * x
		}
	}
	return e
}
