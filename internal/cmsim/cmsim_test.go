package cmsim

import (
	"math"
	"testing"

	"dsmc/internal/fixed"
	"dsmc/internal/geom"
	"dsmc/internal/phys"
	"dsmc/internal/sample"
	"dsmc/internal/sim"
)

func smallConfig() Config {
	c := sim.DefaultConfig(1)
	c.NX, c.NY = 48, 24
	c.Wedge = &geom.Wedge{LeadX: 10, Base: 12, Angle: 30 * math.Pi / 180}
	c.NPerCell = 6
	c.Seed = 11
	return Config{Sim: c, PhysProcs: 64}
}

func TestNewSizesMachine(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.Machine().VPs() < s.NFlow() {
		t.Errorf("machine smaller than flow population")
	}
	if s.NFlow()+s.NReservoir() != s.Machine().VPs() {
		t.Errorf("flow+reservoir must cover all virtual processors")
	}
	if s.NReservoir() == 0 {
		t.Errorf("reservoir must start populated (paper banks ~10%%)")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.Sim.NPerCell = 0
	if _, err := New(cfg); err == nil {
		t.Errorf("expected validation error")
	}
}

func TestStepInvariants(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	n0 := s.NFlow()
	wedge := s.cfg.Sim.Wedge
	for step := 0; step < 40; step++ {
		s.Step()
	}
	// All flow particles inside the gas region.
	for i := 0; i < s.Machine().VPs(); i++ {
		if s.region[i] != regionFlow {
			continue
		}
		x := fixed.Fix(s.x[i]).Float()
		y := fixed.Fix(s.y[i]).Float()
		if y < -1e-6 || y > 24+1e-6 {
			t.Fatalf("flow particle outside walls: y=%v", y)
		}
		if wedge.Contains(geom.Vec2{X: x, Y: y}) {
			t.Fatalf("flow particle inside wedge at (%v,%v)", x, y)
		}
	}
	if f := float64(s.NFlow()) / float64(n0); f < 0.8 || f > 1.2 {
		t.Errorf("flow population drifted to %.2f of initial", f)
	}
	if s.Collisions() == 0 {
		t.Errorf("no collisions")
	}
	if s.StepCount() != 40 {
		t.Errorf("StepCount = %d", s.StepCount())
	}
}

func TestCellCountsConsistent(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Run(5)
	counts := s.CellCounts()
	var total int32
	for _, c := range counts {
		total += c
	}
	if int(total) != s.NFlow() {
		t.Errorf("cell counts sum %d, flow %d", total, s.NFlow())
	}
}

// TestEnergyStability: with stochastic rounding the fixed-point pipeline
// must hold the per-particle energy of a freestream-equilibrium tunnel
// steady (the consistent-truncation bias the paper describes would show
// as a monotonic drain).
func TestEnergyStability(t *testing.T) {
	cfg := smallConfig()
	cfg.Sim.Wedge = nil
	cfg.Sim.NPerCell = 10
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perParticle := func() float64 {
		return s.TotalEnergy() / float64(s.Machine().VPs())
	}
	e0 := perParticle()
	s.Run(150)
	e1 := perParticle()
	if math.Abs(e1-e0)/e0 > 0.05 {
		t.Errorf("per-particle energy drifted %.1f%% over 150 steps", 100*(e1-e0)/e0)
	}
}

func TestPhaseCostsRecorded(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Run(10)
	book := s.Machine().Cost()
	for _, phase := range []string{"move", "sort", "select", "collide"} {
		if book.Phase(phase).Cycles <= 0 {
			t.Errorf("phase %q has no modelled cycles", phase)
		}
	}
	// The paper's ordering at full scale: collide is the most expensive
	// phase (39%), and the sort is substantial (27%).
	col := book.Phase("collide").Cycles
	mov := book.Phase("move").Cycles
	if col <= 0 || mov <= 0 {
		t.Fatalf("missing phase cycles")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, float64) {
		s, err := New(smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		s.Run(20)
		return s.Collisions(), s.TotalEnergy()
	}
	c1, e1 := run()
	c2, e2 := run()
	if c1 != c2 || e1 != e2 {
		t.Errorf("same seed must reproduce: %d/%v vs %d/%v", c1, e1, c2, e2)
	}
}

// TestPerParticleCostFallsWithVPRatio is the mechanism of Figure 7 at the
// full pipeline level: fixed machine size, growing particle count.
func TestPerParticleCostFallsWithVPRatio(t *testing.T) {
	perParticle := func(nPerCell float64) float64 {
		cfg := smallConfig()
		cfg.PhysProcs = 256
		cfg.Sim.NPerCell = nPerCell
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		const steps = 10
		s.Run(steps)
		return float64(s.Machine().Cost().TotalCycles()) / float64(s.NFlow()*steps)
	}
	small := perParticle(1)
	large := perParticle(16)
	if large >= small {
		t.Errorf("per-particle cycles must fall with VP ratio: VPR~4 %v, VPR~64 %v", small, large)
	}
}

// TestWedgeShockCM validates the physics of the fixed-point data-parallel
// backend against theory, as the paper does (figures 1 and 4).
func TestWedgeShockCM(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: full wedge flow on the CM backend")
	}
	c := sim.DefaultConfig(1)
	c.NPerCell = 8
	c.Seed = 99
	s, err := New(Config{Sim: c, PhysProcs: 1024})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(600)
	acc := sample.NewAccumulator(s.Grid(), s.Volumes(), c.NPerCell)
	for k := 0; k < 300; k++ {
		s.Step()
		acc.AddCounts(s.CellCounts())
	}
	rho := acc.Density()
	beta, err := phys.ObliqueShockBeta(4, 30*math.Pi/180, phys.GammaDiatomic)
	if err != nil {
		t.Fatal(err)
	}
	wantRatio := phys.RHDensityRatio(phys.NormalMach(4, beta), phys.GammaDiatomic)
	angle := sample.ShockAngle(rho, s.Grid(), 26, 43, wantRatio) * 180 / math.Pi
	if math.IsNaN(angle) || math.Abs(angle-45) > 5 {
		t.Errorf("CM backend shock angle %.1f°, theory 45°", angle)
	}
	post := sample.RegionMean(rho, s.Grid(), s.Volumes(), 36, 12, 44, 18)
	if math.Abs(post-wantRatio)/wantRatio > 0.2 {
		t.Errorf("CM backend post-shock density %.2f, theory %.2f", post, wantRatio)
	}
	upstream := sample.RegionMean(rho, s.Grid(), s.Volumes(), 2, 2, 16, 20)
	if math.Abs(upstream-1) > 0.08 {
		t.Errorf("CM backend freestream density %.3f, want 1", upstream)
	}
}
