package kernel

// Advance2 performs the collisionless motion of the 2D move phase over
// equal-length column slices: x[i] += u[i], y[i] += v[i]. The loop is
// blocked Width lanes at a time; the per-element arithmetic is exactly
// the scalar x += u, so the float64 instantiation is bit-identical to
// the unblocked pass it replaces.
//
//dsmc:hotpath
func Advance2[F Float](x, y, u, v []F) {
	n := len(x)
	_, _, _ = y[:n], u[:n], v[:n]
	i := 0
	for ; i+Width <= n; i += Width {
		xb, ub := (*[Width]F)(x[i:]), (*[Width]F)(u[i:])
		for k := 0; k < Width; k++ {
			xb[k] += ub[k]
		}
		yb, vb := (*[Width]F)(y[i:]), (*[Width]F)(v[i:])
		for k := 0; k < Width; k++ {
			yb[k] += vb[k]
		}
	}
	for ; i < n; i++ {
		x[i] += u[i]
		y[i] += v[i]
	}
}

// Advance3 is the 3D move pass: x += u, y += v, z += w, blocked Width
// lanes at a time.
//
//dsmc:hotpath
func Advance3[F Float](x, y, z, u, v, w []F) {
	n := len(x)
	_, _, _, _, _ = y[:n], z[:n], u[:n], v[:n], w[:n]
	i := 0
	for ; i+Width <= n; i += Width {
		xb, ub := (*[Width]F)(x[i:]), (*[Width]F)(u[i:])
		for k := 0; k < Width; k++ {
			xb[k] += ub[k]
		}
		yb, vb := (*[Width]F)(y[i:]), (*[Width]F)(v[i:])
		for k := 0; k < Width; k++ {
			yb[k] += vb[k]
		}
		zb, wb := (*[Width]F)(z[i:]), (*[Width]F)(w[i:])
		for k := 0; k < Width; k++ {
			zb[k] += wb[k]
		}
	}
	for ; i < n; i++ {
		x[i] += u[i]
		y[i] += v[i]
		z[i] += w[i]
	}
}
