package kernel

import "math"

// PairRelSpeeds computes the translational relative speeds of the
// `pairs` adjacent candidate pairs of one cell-major span: for k in
// [0, pairs), g[k] = |v(a+2k) − v(a+2k+1)| over the (u, v, w)
// components. The sweep is blocked Width pairs at a time: the squared
// sums accumulate in the storage precision — the streaming half of the
// kernel — and the square roots are taken in float64, the precision of
// the selection rule they feed. g must hold at least pairs elements.
//
// The selection phase consumes the speeds pair by pair afterwards,
// applying the probability rule and its RNG draws in store order, so the
// per-cell draw sequence is untouched by the blocking.
//
//dsmc:hotpath
func PairRelSpeeds[F Float](u, v, w []F, a, pairs int, g []float64) {
	ub := u[a : a+2*pairs]
	vb := v[a : a+2*pairs]
	wb := w[a : a+2*pairs]
	gb := g[:pairs]
	var sq [Width]F
	for base := 0; base < pairs; base += Width {
		nb := pairs - base
		if nb > Width {
			nb = Width
		}
		for k := 0; k < nb; k++ {
			j := 2 * (base + k)
			du := ub[j] - ub[j+1]
			dv := vb[j] - vb[j+1]
			dw := wb[j] - wb[j+1]
			sq[k] = du*du + dv*dv + dw*dw
		}
		for k := 0; k < nb; k++ {
			gb[base+k] = math.Sqrt(float64(sq[k]))
		}
	}
}
