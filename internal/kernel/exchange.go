package kernel

import (
	"dsmc/internal/collide"
	"dsmc/internal/rng"
)

// ExchangePair performs one McDonald–Baganoff collision on the pair
// (ia, ib) of the five velocity columns: the states are gathered to
// float64, exchanged by collide.Collide (permutation + random signs
// about the unchanged pair mean), and scattered back to the storage
// precision. The float64 instantiation is bit-identical to the
// Vel/Collide/SetVel sequence of the pre-generic backends.
//
//dsmc:hotpath
func ExchangePair[F Float](u, v, w, r1, r2 []F, ia, ib int, perm rng.Perm5, signs uint32) {
	va := collide.State5{float64(u[ia]), float64(v[ia]), float64(w[ia]), float64(r1[ia]), float64(r2[ia])}
	vb := collide.State5{float64(u[ib]), float64(v[ib]), float64(w[ib]), float64(r1[ib]), float64(r2[ib])}
	collide.Collide(&va, &vb, perm, signs)
	u[ia], v[ia], w[ia], r1[ia], r2[ia] = F(va[0]), F(va[1]), F(va[2]), F(va[3]), F(va[4])
	u[ib], v[ib], w[ib], r1[ib], r2[ib] = F(vb[0]), F(vb[1]), F(vb[2]), F(vb[3]), F(vb[4])
}
