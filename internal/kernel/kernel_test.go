package kernel

import (
	"math"
	"testing"

	"dsmc/internal/rng"
)

// testAdvance checks the blocked move pass against the scalar loop for
// both precisions and for lengths around the block width (0, partial
// block, exact blocks, blocks + tail).
func testAdvance[F Float](t *testing.T) {
	t.Helper()
	for _, n := range []int{0, 1, 7, 8, 9, 16, 37} {
		r := rng.NewStream(uint64(n) + 3)
		mk := func() []F {
			s := make([]F, n)
			for i := range s {
				s[i] = F(r.Gaussian(0, 1))
			}
			return s
		}
		x, y, z := mk(), mk(), mk()
		u, v, w := mk(), mk(), mk()
		wantX, wantY, wantZ := make([]F, n), make([]F, n), make([]F, n)
		for i := 0; i < n; i++ {
			wantX[i] = x[i] + u[i]
			wantY[i] = y[i] + v[i]
			wantZ[i] = z[i] + w[i]
		}
		x2, y2 := append([]F(nil), x...), append([]F(nil), y...)
		Advance2(x2, y2, u, v)
		Advance3(x, y, z, u, v, w)
		for i := 0; i < n; i++ {
			if x2[i] != wantX[i] || y2[i] != wantY[i] {
				t.Fatalf("n=%d: Advance2 diverged at %d", n, i)
			}
			if x[i] != wantX[i] || y[i] != wantY[i] || z[i] != wantZ[i] {
				t.Fatalf("n=%d: Advance3 diverged at %d", n, i)
			}
		}
	}
}

func TestAdvance64(t *testing.T) { testAdvance[float64](t) }
func TestAdvance32(t *testing.T) { testAdvance[float32](t) }

// TestPairRelSpeeds64BitExact: the float64 instantiation must match the
// scalar sqrt(du²+dv²+dw²) of the reference select loop bit for bit.
func TestPairRelSpeeds64BitExact(t *testing.T) {
	r := rng.NewStream(11)
	n := 2 * 13
	u, v, w := make([]float64, n), make([]float64, n), make([]float64, n)
	for i := 0; i < n; i++ {
		u[i], v[i], w[i] = r.Gaussian(0, 1), r.Gaussian(0, 1), r.Gaussian(0, 1)
	}
	g := make([]float64, 13)
	PairRelSpeeds(u, v, w, 0, 13, g)
	for k := 0; k < 13; k++ {
		a := 2 * k
		du := u[a] - u[a+1]
		dv := v[a] - v[a+1]
		dw := w[a] - w[a+1]
		want := math.Sqrt(du*du + dv*dv + dw*dw)
		if math.Float64bits(g[k]) != math.Float64bits(want) {
			t.Fatalf("pair %d: %v != %v", k, g[k], want)
		}
	}
	// An offset sub-span must match the same pairs shifted.
	g2 := make([]float64, 5)
	PairRelSpeeds(u, v, w, 4, 5, g2)
	for k := 0; k < 5; k++ {
		if math.Float64bits(g2[k]) != math.Float64bits(g[k+2]) {
			t.Fatalf("offset pair %d diverged", k)
		}
	}
}

// TestPairRelSpeeds32 checks the float32 instantiation against a float64
// recomputation within single-precision tolerance.
func TestPairRelSpeeds32(t *testing.T) {
	r := rng.NewStream(29)
	n := 2 * Width
	u, v, w := make([]float32, n), make([]float32, n), make([]float32, n)
	for i := 0; i < n; i++ {
		u[i] = float32(r.Gaussian(0, 1))
		v[i] = float32(r.Gaussian(0, 1))
		w[i] = float32(r.Gaussian(0, 1))
	}
	g := make([]float64, Width)
	PairRelSpeeds(u, v, w, 0, Width, g)
	for k := 0; k < Width; k++ {
		a := 2 * k
		du := float64(u[a]) - float64(u[a+1])
		dv := float64(v[a]) - float64(v[a+1])
		dw := float64(w[a]) - float64(w[a+1])
		want := math.Sqrt(du*du + dv*dv + dw*dw)
		if math.Abs(g[k]-want) > 1e-5*(1+want) {
			t.Fatalf("pair %d: %v vs %v", k, g[k], want)
		}
	}
}

// testExchangePair: the exchange must conserve the pair's linear momentum
// and total energy in both precisions (exactly in float64, to rounding in
// float32) and must equal the permutation construction.
func testExchangePair[F Float](t *testing.T, tol float64) {
	t.Helper()
	r := rng.NewStream(7)
	table := rng.Perm5Table()
	n := 10
	u, v, w := make([]F, n), make([]F, n), make([]F, n)
	r1, r2 := make([]F, n), make([]F, n)
	for i := 0; i < n; i++ {
		u[i], v[i], w[i] = F(r.Gaussian(0, 1)), F(r.Gaussian(0, 1)), F(r.Gaussian(0, 1))
		r1[i], r2[i] = F(r.Gaussian(0, 1)), F(r.Gaussian(0, 1))
	}
	for trial := 0; trial < 50; trial++ {
		ia, ib := 2*(trial%5), 2*(trial%5)+1
		mom0 := [3]float64{
			float64(u[ia]) + float64(u[ib]),
			float64(v[ia]) + float64(v[ib]),
			float64(w[ia]) + float64(w[ib]),
		}
		e0 := 0.0
		for _, c := range [][]F{u, v, w, r1, r2} {
			e0 += float64(c[ia])*float64(c[ia]) + float64(c[ib])*float64(c[ib])
		}
		ExchangePair(u, v, w, r1, r2, ia, ib, rng.RandomPerm5(table, &r), r.Uint32())
		mom1 := [3]float64{
			float64(u[ia]) + float64(u[ib]),
			float64(v[ia]) + float64(v[ib]),
			float64(w[ia]) + float64(w[ib]),
		}
		e1 := 0.0
		for _, c := range [][]F{u, v, w, r1, r2} {
			e1 += float64(c[ia])*float64(c[ia]) + float64(c[ib])*float64(c[ib])
		}
		for k := 0; k < 3; k++ {
			if math.Abs(mom1[k]-mom0[k]) > tol {
				t.Fatalf("trial %d: momentum %d drifted %v", trial, k, mom1[k]-mom0[k])
			}
		}
		if math.Abs(e1-e0) > tol*(1+e0) {
			t.Fatalf("trial %d: energy drifted %v -> %v", trial, e0, e1)
		}
	}
}

func TestExchangePair64(t *testing.T) { testExchangePair[float64](t, 1e-12) }
func TestExchangePair32(t *testing.T) { testExchangePair[float32](t, 1e-5) }
