// Package kernel holds the width-grouped inner loops of the particle
// pipeline — the move pass, the relative-speed sweep feeding the
// selection rule, and the collision exchange — as generic functions
// instantiated for both storage precisions. The loops are blocked eight
// lanes at a time (the width of an AVX2/AVX-512 register over float32)
// with slice-to-array conversions hoisting the bounds checks out of the
// lane loop, so the compiler emits straight-line per-block code and a
// float32 store moves half the bytes of a float64 store through the same
// sweeps.
//
// Precision policy: position and velocity columns are stored and
// streamed in F — including the relative-speed squared sums, the
// streaming half of the selection sweep — while the square root, the
// probability rule, the RNG draws, and the collision exchange compute in
// float64. A float64 instantiation therefore performs bit-for-bit the
// arithmetic of the pre-generic reference code (the golden tests pin
// this); a float32 instantiation deviates by the single-precision
// relative-speed accumulation and one rounding per column write.
package kernel

// Float is the storage-precision constraint shared by the particle
// store, the sharded sort, and the engine: float32 halves the memory
// traffic of the cell-major sweeps, float64 is the bit-exact reference.
type Float interface{ ~float32 | ~float64 }

// Width is the lane-group size of the blocked kernels.
const Width = 8
