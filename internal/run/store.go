package run

import (
	"errors"
	"os"
)

// CkptStore is where a replica job persists its checkpoint bytes. The
// local path stores to a file next to the sweep spec; the distributed
// worker uploads to the coordinator. Whatever the medium, Save must be
// atomic from the reader's point of view: Load returns either a
// previously completed Save or nothing, never a torn prefix. (The
// checksum trailer inside the checkpoint catches media that break this
// promise anyway — loadCheckpoint falls back to a fresh run.)
type CkptStore interface {
	// Load returns the last saved checkpoint, or nil when none exists.
	Load() ([]byte, error)
	// Save durably replaces the checkpoint.
	Save(data []byte) error
	// Discard removes a checkpoint found corrupt or stale so it is not
	// re-read; losing it only costs recomputation.
	Discard() error
}

// FileCkptStore persists checkpoints to one file with the
// write-temp/fsync/rename discipline, so neither a process crash
// mid-write nor a host crash around the rename can replace a good
// checkpoint with a torn one.
type FileCkptStore struct {
	Path string
}

// Load reads the checkpoint, cleaning up an orphaned temp file a crash
// mid-Save may have left behind (the rename never happened, so the temp
// holds an incomplete write that must not survive into later saves).
func (s FileCkptStore) Load() ([]byte, error) {
	os.Remove(s.Path + ".tmp")
	data, err := os.ReadFile(s.Path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	return data, err
}

// Save implements CkptStore.
func (s FileCkptStore) Save(data []byte) error {
	tmp := s.Path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, s.Path)
}

// Discard implements CkptStore.
func (s FileCkptStore) Discard() error {
	err := os.Remove(s.Path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}
