package run

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"dsmc/internal/store"
)

// This file is the sweep-memoization bridge between the job DAG and the
// content-addressed result store: key derivation from the determinism
// contract, the aggregate artifact codec, and the load/publish hooks
// the executor calls around every replica and fan-in node.
//
// A replica's bits are a pure function of (spec fingerprint, master
// seed, point index, replica index) — specFingerprint pins the
// trajectory, jobSeed derives the job's seed from (BaseSeed, point,
// replica) injectively — so that tuple, extended with the requested
// quantity list (derived fields depend on what was sampled), is the
// store key. Two sweeps that share a point at the same index therefore
// share artifacts; the same physics at a different index is a different
// seed and a different key, never a false hit.

// storeFingerprint extends the trajectory fingerprint with the resolved
// quantity list: the part of an artifact's identity that the checkpoint
// fingerprint deliberately ignores.
func (sp *Spec) storeFingerprint(scenarioIdx int) uint64 {
	h := fnv.New64a()
	var b [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	word(specFingerprint(sp.Scenarios[scenarioIdx], sp.WarmSteps, sp.SampleSteps))
	for _, q := range sp.quantities() {
		word(uint64(len(q)))
		h.Write([]byte(q))
	}
	return h.Sum64()
}

// OutputKey is the store key of one replica's output artifact.
func (sp *Spec) OutputKey(scenarioIdx, replica int) store.Key {
	return store.Key{Kind: "out", Fp: sp.storeFingerprint(scenarioIdx), Seed: sp.BaseSeed,
		Point: scenarioIdx, Replica: replica}
}

// AggregateKey is the store key of one point's aggregate artifact; the
// replica slot carries the replica count (an aggregate over fewer
// replicas is a different result).
func (sp *Spec) AggregateKey(scenarioIdx int) store.Key {
	return store.Key{Kind: "agg", Fp: sp.storeFingerprint(scenarioIdx), Seed: sp.BaseSeed,
		Point: scenarioIdx, Replica: sp.Replicas}
}

// memoReplica consults the store for a finished replica. A verified hit
// returns the decoded result; structurally-invalid content that slipped
// past the hash check is rejected (quarantined) and reads as a miss, so
// the caller recomputes.
func memoReplica(st *store.Store, key store.Key) (*ReplicaResult, bool) {
	data, _, ok := st.Get(key.ID())
	if !ok {
		return nil, false
	}
	o, err := store.DecodeOutput(data)
	if err != nil {
		st.Reject(key.ID())
		return nil, false
	}
	return &ReplicaResult{
		Fields:        o.Fields,
		ShockAngleDeg: o.ShockAngleDeg,
		Collisions:    o.Collisions,
		NFlow:         o.NFlow,
	}, true
}

// publishReplica stores a freshly computed replica output. Best-effort:
// a publish failure costs future recomputation, never the current run.
func publishReplica(st *store.Store, key store.Key, res *ReplicaResult) {
	data := store.EncodeOutput(&store.Output{
		Fields:        res.Fields,
		ShockAngleDeg: res.ShockAngleDeg,
		Collisions:    res.Collisions,
		NFlow:         res.NFlow,
	})
	st.Put(key.ID(), data)
}

// memoAggregate consults the store for a point's aggregate. The artifact
// does not carry the point name (two sweeps may name the same physics
// differently); the caller's scenario name is stamped on the way out.
func memoAggregate(st *store.Store, key store.Key, scenario string, quantities []string) (*Aggregate, bool) {
	data, _, ok := st.Get(key.ID())
	if !ok {
		return nil, false
	}
	agg, err := decodeAggregate(data, quantities)
	if err != nil {
		st.Reject(key.ID())
		return nil, false
	}
	agg.Scenario = scenario
	return agg, true
}

// publishAggregate stores a point's freshly merged aggregate.
func publishAggregate(st *store.Store, key store.Key, agg *Aggregate, quantities []string) {
	st.Put(key.ID(), encodeAggregate(agg, quantities))
}

// The binary aggregate codec ("agg" artifacts). JSON is ruled out for
// the same reason as replica outputs — bit-identity is the contract and
// per-cell variance of a NaN-bearing field would not survive a float
// round-trip — so aggregates rest as raw IEEE-754 bits with the same
// FNV-1a trailer discipline:
//
//	magic "DSMCAGG1"
//	u64 replica count
//	u32 field count, then per field (quantity-list order):
//	  u32 name length, name bytes, u32 cells,
//	  cells × u64 mean bits, cells × u64 variance bits, cells × u64 ci95 bits
//	3 × scalar stats (shock angle, collisions, nflow):
//	  u64 mean bits, u64 variance bits, u64 ci95 bits, u64 n, u64 dropped
//	u64 FNV-1a of everything before the trailer
//
// Field order follows the spec's resolved quantity list rather than a
// map sort: the list is deterministic per spec, this package is in the
// determinism lint scope (no map ranging), and encode/decode sharing
// the list keeps the frame canonical.
const aggregateMagic = "DSMCAGG1"

func encodeAggregate(agg *Aggregate, quantities []string) []byte {
	size := len(aggregateMagic) + 8 + 4
	for _, q := range quantities {
		size += 4 + len(q) + 4 + 3*8*len(agg.Fields[q].Mean)
	}
	size += 3*5*8 + 8
	buf := make([]byte, 0, size)
	buf = append(buf, aggregateMagic...)
	u32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	cols := func(vs []float64) {
		for _, v := range vs {
			f64(v)
		}
	}
	u64(uint64(agg.Replicas))
	u32(uint32(len(quantities)))
	for _, q := range quantities {
		fs := agg.Fields[q]
		u32(uint32(len(q)))
		buf = append(buf, q...)
		u32(uint32(len(fs.Mean)))
		cols(fs.Mean)
		cols(fs.Variance)
		cols(fs.CI95)
	}
	for _, sc := range []ScalarStats{agg.ShockAngleDeg, agg.Collisions, agg.NFlow} {
		f64(sc.Mean)
		f64(sc.Variance)
		f64(sc.CI95)
		u64(uint64(sc.N))
		u64(uint64(sc.Dropped))
	}
	h := fnv.New64a()
	h.Write(buf)
	u64(h.Sum64())
	return buf
}

// decodeAggregate parses an aggregate artifact, verifying the checksum
// first and then that the field set matches the expected quantity list
// exactly — a mismatch means the key derivation and the artifact
// disagree, which must read as corruption, not as a partial hit.
func decodeAggregate(data []byte, quantities []string) (*Aggregate, error) {
	if len(data) < len(aggregateMagic)+8+4+8 || string(data[:len(aggregateMagic)]) != aggregateMagic {
		return nil, fmt.Errorf("run: malformed aggregate artifact (bad magic or truncated)")
	}
	h := fnv.New64a()
	h.Write(data[:len(data)-8])
	if h.Sum64() != binary.LittleEndian.Uint64(data[len(data)-8:]) {
		return nil, fmt.Errorf("run: aggregate artifact checksum mismatch")
	}
	p := data[len(aggregateMagic) : len(data)-8]
	fail := fmt.Errorf("run: malformed aggregate artifact (truncated)")
	u32 := func() (uint32, error) {
		if len(p) < 4 {
			return 0, fail
		}
		v := binary.LittleEndian.Uint32(p)
		p = p[4:]
		return v, nil
	}
	u64 := func() (uint64, error) {
		if len(p) < 8 {
			return 0, fail
		}
		v := binary.LittleEndian.Uint64(p)
		p = p[8:]
		return v, nil
	}
	cols := func(n int) ([]float64, error) {
		if len(p) < 8*n {
			return nil, fail
		}
		out := make([]float64, n)
		for c := range out {
			out[c] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*c:]))
		}
		p = p[8*n:]
		return out, nil
	}
	replicas, err := u64()
	if err != nil {
		return nil, err
	}
	nf, err := u32()
	if err != nil {
		return nil, err
	}
	if int(nf) != len(quantities) {
		return nil, fmt.Errorf("run: aggregate artifact has %d fields, expected %d", nf, len(quantities))
	}
	agg := &Aggregate{Replicas: int(replicas), Fields: make(map[string]FieldStats, nf)}
	for _, q := range quantities {
		nl, err := u32()
		if err != nil || len(p) < int(nl) || string(p[:nl]) != q {
			return nil, fmt.Errorf("run: aggregate artifact field order does not match quantity list")
		}
		p = p[nl:]
		cells, err := u32()
		if err != nil {
			return nil, err
		}
		var fs FieldStats
		if fs.Mean, err = cols(int(cells)); err != nil {
			return nil, err
		}
		if fs.Variance, err = cols(int(cells)); err != nil {
			return nil, err
		}
		if fs.CI95, err = cols(int(cells)); err != nil {
			return nil, err
		}
		agg.Fields[q] = fs
	}
	scalar := func() (ScalarStats, error) {
		var sc ScalarStats
		mean, err := u64()
		if err != nil {
			return sc, err
		}
		variance, err := u64()
		if err != nil {
			return sc, err
		}
		ci, err := u64()
		if err != nil {
			return sc, err
		}
		n, err := u64()
		if err != nil {
			return sc, err
		}
		dropped, err := u64()
		if err != nil {
			return sc, err
		}
		sc.Mean = math.Float64frombits(mean)
		sc.Variance = math.Float64frombits(variance)
		sc.CI95 = math.Float64frombits(ci)
		sc.N = int(n)
		sc.Dropped = int(dropped)
		return sc, nil
	}
	if agg.ShockAngleDeg, err = scalar(); err != nil {
		return nil, err
	}
	if agg.Collisions, err = scalar(); err != nil {
		return nil, err
	}
	if agg.NFlow, err = scalar(); err != nil {
		return nil, err
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("run: malformed aggregate artifact (trailing bytes)")
	}
	return agg, nil
}
