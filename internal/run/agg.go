package run

import "math"

// ScalarStats is a Welford mean/variance pair with its normal-theory
// 95% confidence half-width. N is the number of finite samples merged
// (replicas whose measurement was NaN — e.g. no shock front found — are
// excluded and counted in Dropped).
type ScalarStats struct {
	Mean     float64 `json:"mean"`
	Variance float64 `json:"variance"`
	CI95     float64 `json:"ci95"`
	N        int     `json:"n"`
	Dropped  int     `json:"dropped,omitempty"`
}

// FieldStats carries per-cell statistics across replicas.
type FieldStats struct {
	Mean     []float64 `json:"mean"`
	Variance []float64 `json:"variance"`
	CI95     []float64 `json:"ci95"`
}

// Aggregate is the fan-in result of one scenario's replicas: per-cell
// statistics for every requested quantity, keyed by quantity slug.
type Aggregate struct {
	Scenario      string                `json:"scenario"`
	Replicas      int                   `json:"replicas"`
	Fields        map[string]FieldStats `json:"fields"`
	ShockAngleDeg ScalarStats           `json:"shock_angle_deg"`
	Collisions    ScalarStats           `json:"collisions"`
	NFlow         ScalarStats           `json:"nflow"`
}

// welford is the textbook single-pass mean/M2 accumulator. Merging
// replicas strictly in index order makes every aggregate bit-identical
// regardless of pool size or completion order — the scheduler hands the
// fan-in node the full result slice, never a stream.
type welford struct {
	n    int
	mean float64
	m2   float64
}

func (w *welford) add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

func (w *welford) variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// ci95 is the normal-approximation 95% half-width of the mean; zero for
// fewer than two samples. (With the small replica counts of a typical
// ensemble this understates the Student-t interval slightly; it is a
// consistent, distribution-free-of-tables convention.)
func (w *welford) ci95() float64 {
	if w.n < 2 {
		return 0
	}
	return 1.96 * math.Sqrt(w.variance()/float64(w.n))
}

func (w *welford) scalar(dropped int) ScalarStats {
	return ScalarStats{Mean: w.mean, Variance: w.variance(), CI95: w.ci95(), N: w.n, Dropped: dropped}
}

// aggregate fans in one scenario's replica results, merging in replica-
// index order (per quantity, so every field's statistics are bit-
// identical for any pool size). results must be fully populated (the
// scheduler guarantees it: the aggregate node depends on every replica
// node).
func aggregate(scenario string, quantities []string, results []*ReplicaResult) *Aggregate {
	agg := &Aggregate{Scenario: scenario, Replicas: len(results), Fields: map[string]FieldStats{}}
	if len(results) == 0 {
		return agg
	}
	for _, q := range quantities {
		cells := len(results[0].Fields[q])
		field := make([]welford, cells)
		for _, r := range results {
			col := r.Fields[q]
			for c := 0; c < cells; c++ {
				field[c].add(col[c])
			}
		}
		fs := FieldStats{
			Mean:     make([]float64, cells),
			Variance: make([]float64, cells),
			CI95:     make([]float64, cells),
		}
		for c := 0; c < cells; c++ {
			fs.Mean[c] = field[c].mean
			fs.Variance[c] = field[c].variance()
			fs.CI95[c] = field[c].ci95()
		}
		agg.Fields[q] = fs
	}
	var angle, colls, nflow welford
	angleDropped := 0
	for _, r := range results {
		if math.IsNaN(r.ShockAngleDeg) {
			angleDropped++
		} else {
			angle.add(r.ShockAngleDeg)
		}
		colls.add(float64(r.Collisions))
		nflow.add(float64(r.NFlow))
	}
	agg.ShockAngleDeg = angle.scalar(angleDropped)
	agg.Collisions = colls.scalar(0)
	agg.NFlow = nflow.scalar(0)
	return agg
}
