package run

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dsmc/internal/geom"
	"dsmc/internal/sim"
)

func testScenario(name string, lambda float64, f32 bool) Scenario {
	cfg := sim.DefaultConfig(1)
	cfg.NX, cfg.NY = 48, 24
	cfg.Wedge = &geom.Wedge{LeadX: 10, Base: 12, Angle: 30 * math.Pi / 180}
	cfg.NPerCell = 4
	cfg.Free.Lambda = lambda
	cfg.Workers = 1
	return Scenario{Name: name, Sim: &cfg, Float32: f32}
}

func testSpec() Spec {
	return Spec{
		Name: "test",
		Scenarios: []Scenario{
			testScenario("rarefied", 0.5, false),
			testScenario("near-continuum", 0, false),
		},
		Replicas:    3,
		WarmSteps:   8,
		SampleSteps: 8,
		BaseSeed:    1988,
	}
}

// bitsEqual compares float64 values bit for bit (NaN-safe).
func bitsEqual(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func scalarEqual(a, b ScalarStats) bool {
	return bitsEqual(a.Mean, b.Mean) && bitsEqual(a.Variance, b.Variance) &&
		bitsEqual(a.CI95, b.CI95) && a.N == b.N && a.Dropped == b.Dropped
}

func colsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bitsEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func aggEqual(a, b *Aggregate) bool {
	if a.Scenario != b.Scenario || a.Replicas != b.Replicas ||
		len(a.Fields) != len(b.Fields) {
		return false
	}
	for q, fa := range a.Fields {
		fb, ok := b.Fields[q]
		if !ok || !colsEqual(fa.Mean, fb.Mean) ||
			!colsEqual(fa.Variance, fb.Variance) || !colsEqual(fa.CI95, fb.CI95) {
			return false
		}
	}
	return scalarEqual(a.ShockAngleDeg, b.ShockAngleDeg) &&
		scalarEqual(a.Collisions, b.Collisions) &&
		scalarEqual(a.NFlow, b.NFlow)
}

// TestPoolSizeDeterminism: the same sweep at pool sizes 1 and 8 yields
// byte-identical aggregates — pool size only changes scheduling, and
// aggregation merges in replica-index order inside the fan-in node.
func TestPoolSizeDeterminism(t *testing.T) {
	var got [2]*Result
	for i, pool := range []int{1, 8} {
		sp := testSpec()
		sp.Pool = pool
		res, err := Run(context.Background(), sp, nil)
		if err != nil {
			t.Fatalf("pool=%d: %v", pool, err)
		}
		got[i] = res
	}
	for k := range got[0].Aggregates {
		if !aggEqual(got[0].Aggregates[k], got[1].Aggregates[k]) {
			t.Errorf("aggregate %q differs between pool 1 and pool 8",
				got[0].Aggregates[k].Scenario)
		}
	}
}

// TestCompletionOrderIndependence drives the scheduler with fan-out
// nodes whose completion order is forcibly reversed (later replicas
// finish first) and asserts the fan-in sees the same aggregate as the
// in-order execution: result slots are indexed, never appended.
func TestCompletionOrderIndependence(t *testing.T) {
	build := func(reverse bool) *Aggregate {
		const n = 6
		results := make([]*ReplicaResult, n)
		var agg *Aggregate
		nodes := make([]Node, 0, n+1)
		deps := make([]string, 0, n)
		for r := 0; r < n; r++ {
			r := r
			id := string(rune('a' + r))
			deps = append(deps, id)
			nodes = append(nodes, Node{
				ID: id,
				Run: func(ctx context.Context) error {
					if reverse {
						// Later indices finish first.
						time.Sleep(time.Duration(n-r) * 5 * time.Millisecond)
					}
					results[r] = &ReplicaResult{
						Fields: map[string][]float64{
							"density":     {float64(r), float64(r) * 0.5},
							"temperature": {1 + float64(r), 2 * float64(r)},
						},
						ShockAngleDeg: 40 + float64(r),
						Collisions:    int64(100 * r),
						NFlow:         1000 + r,
					}
					return nil
				},
			})
		}
		nodes = append(nodes, Node{
			ID: "agg", Deps: deps,
			Run: func(ctx context.Context) error {
				agg = aggregate("s", []string{"density", "temperature"}, results)
				return nil
			},
		})
		if err := ExecuteDAG(context.Background(), nodes, n, nil); err != nil {
			t.Fatal(err)
		}
		return agg
	}
	if a, b := build(false), build(true); !aggEqual(a, b) {
		t.Error("aggregate depends on completion order")
	}
}

// TestCheckpointResumeBitIdentity: cancel a checkpointed sweep mid-
// flight, re-run it from the checkpoint directory, and require the
// aggregates to match an uninterrupted run bit for bit.
func TestCheckpointResumeBitIdentity(t *testing.T) {
	sp := testSpec()
	sp.Scenarios = sp.Scenarios[:1]
	sp.Replicas = 2
	sp.Pool = 2

	straight, err := Run(context.Background(), sp, nil)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	interrupted := sp
	interrupted.CheckpointDir = dir
	interrupted.CheckpointEvery = 4

	ctx, cancel := context.WithCancel(context.Background())
	var sawCheckpointableProgress atomic.Bool
	_, err = Run(ctx, interrupted, func(e Event) {
		// Cancel once any job has committed at least one checkpoint but
		// none can have finished (total is 16 steps, checkpoint every 4).
		if e.Type == EventJobProgress && e.StepsDone >= 4 && e.StepsDone < e.StepsTotal {
			sawCheckpointableProgress.Store(true)
			cancel()
		}
	})
	cancel()
	if err == nil {
		t.Fatal("interrupted run reported success")
	}
	if !sawCheckpointableProgress.Load() {
		t.Fatal("test never observed mid-job progress; cannot exercise resume")
	}

	resumed, err := Run(context.Background(), interrupted, nil)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !aggEqual(straight.Aggregates[0], resumed.Aggregates[0]) {
		t.Error("killed+resumed sweep aggregates differ from uninterrupted run")
	}

	// A second resume (all checkpoints now complete) recomputes the same
	// result from the final checkpoints without re-stepping.
	again, err := Run(context.Background(), interrupted, nil)
	if err != nil {
		t.Fatalf("re-resume: %v", err)
	}
	if !aggEqual(straight.Aggregates[0], again.Aggregates[0]) {
		t.Error("re-resumed aggregates differ")
	}
}

// TestFloat32Jobs: the orchestration layer dispatches float32 scenarios
// and they aggregate deterministically too.
func TestFloat32Jobs(t *testing.T) {
	sp := testSpec()
	sp.Scenarios = []Scenario{testScenario("rarefied-f32", 0.5, true)}
	sp.Replicas = 2
	var got [2]*Result
	for i, pool := range []int{1, 4} {
		sp.Pool = pool
		res, err := Run(context.Background(), sp, nil)
		if err != nil {
			t.Fatal(err)
		}
		got[i] = res
	}
	if !aggEqual(got[0].Aggregates[0], got[1].Aggregates[0]) {
		t.Error("float32 aggregates differ across pool sizes")
	}
}

func TestJobSeedsDistinctAcrossScenariosAndReplicas(t *testing.T) {
	seen := map[uint64]string{}
	for si := 0; si < 64; si++ {
		for r := 0; r < 64; r++ {
			s := jobSeed(1988, si, r)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision between %s and s%d/r%d", prev, si, r)
			}
			seen[s] = ""
		}
	}
}

func TestDAGValidation(t *testing.T) {
	noop := func(ctx context.Context) error { return nil }
	cases := []struct {
		name  string
		nodes []Node
	}{
		{"duplicate-id", []Node{{ID: "a", Run: noop}, {ID: "a", Run: noop}}},
		{"unknown-dep", []Node{{ID: "a", Deps: []string{"ghost"}, Run: noop}}},
		{"cycle", []Node{
			{ID: "a", Deps: []string{"b"}, Run: noop},
			{ID: "b", Deps: []string{"a"}, Run: noop},
		}},
		{"empty-id", []Node{{ID: "", Run: noop}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := ExecuteDAG(context.Background(), tc.nodes, 2, nil); err == nil {
				t.Error("invalid DAG executed without error")
			}
		})
	}
}

// TestDAGFailurePropagation: a failing node stops new launches, its
// dependents are reported skipped, and the first error surfaces.
func TestDAGFailurePropagation(t *testing.T) {
	boom := errors.New("boom")
	var ran sync.Map
	nodes := []Node{
		{ID: "bad", Run: func(ctx context.Context) error { return boom }},
		{ID: "child", Deps: []string{"bad"}, Run: func(ctx context.Context) error {
			ran.Store("child", true)
			return nil
		}},
	}
	var skipped []string
	err := ExecuteDAG(context.Background(), nodes, 1, func(id string, st NodeState, _ error) {
		if st == NodeSkipped {
			skipped = append(skipped, id)
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap the node failure", err)
	}
	if _, ok := ran.Load("child"); ok {
		t.Error("dependent of failed node ran")
	}
	if len(skipped) != 1 || skipped[0] != "child" {
		t.Errorf("skipped = %v, want [child]", skipped)
	}
}

// TestDAGBoundedConcurrency: at most pool nodes run at once.
func TestDAGBoundedConcurrency(t *testing.T) {
	const pool = 3
	var cur, peak atomic.Int64
	var nodes []Node
	for i := 0; i < 12; i++ {
		id := string(rune('a' + i))
		nodes = append(nodes, Node{ID: id, Run: func(ctx context.Context) error {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(3 * time.Millisecond)
			cur.Add(-1)
			return nil
		}})
	}
	if err := ExecuteDAG(context.Background(), nodes, pool, nil); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > pool {
		t.Errorf("observed %d concurrent nodes, pool is %d", p, pool)
	}
}

// TestRunSpecValidation: broken specs fail before any simulation runs.
func TestRunSpecValidation(t *testing.T) {
	mutate := []func(*Spec){
		func(sp *Spec) { sp.Scenarios = nil },
		func(sp *Spec) { sp.Replicas = 0 },
		func(sp *Spec) { sp.SampleSteps = 0 },
		func(sp *Spec) { sp.WarmSteps = -1 },
		func(sp *Spec) { sp.Scenarios[1].Name = sp.Scenarios[0].Name },
		func(sp *Spec) { sp.Scenarios[0].Sim.NPerCell = 0 },
	}
	for i, m := range mutate {
		sp := testSpec()
		m(&sp)
		if _, err := Run(context.Background(), sp, nil); err == nil {
			t.Errorf("mutation %d: invalid spec ran", i)
		}
	}
}

// TestCorruptCheckpointFallsBackToFreshRun: a torn or damaged job
// checkpoint (detected by the whole-file checksum before any state is
// applied) is discarded and the job recomputes from scratch — same bits,
// no permanently wedged sweep — instead of failing the run.
func TestCorruptCheckpointFallsBackToFreshRun(t *testing.T) {
	sp := testSpec()
	sp.Scenarios = sp.Scenarios[:1]
	sp.Replicas = 1

	straight, err := Run(context.Background(), sp, nil)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	sp.CheckpointDir = dir
	sp.CheckpointEvery = 4
	if _, err := Run(context.Background(), sp, nil); err != nil {
		t.Fatal(err)
	}
	path := jobCkptPath(dir, 0, 0)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), sp, nil)
	if err != nil {
		t.Fatalf("run over corrupt checkpoint failed instead of recomputing: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Error("corrupt checkpoint was neither removed nor rewritten")
	}
	if !aggEqual(straight.Aggregates[0], res.Aggregates[0]) {
		t.Error("fresh recomputation after corruption drifted from the straight run")
	}
	// Truncation (the torn-write shape) falls back the same way.
	if err := os.WriteFile(path, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	res, err = Run(context.Background(), sp, nil)
	if err != nil {
		t.Fatalf("run over truncated checkpoint failed: %v", err)
	}
	if !aggEqual(straight.Aggregates[0], res.Aggregates[0]) {
		t.Error("recomputation after truncation drifted from the straight run")
	}
}

// TestStaleVersionCheckpointFallsBackToFreshRun: a structurally intact
// job checkpoint from a different format version (pre-upgrade leftovers)
// is discarded and recomputed fresh — bit-identically — instead of
// failing the sweep.
func TestStaleVersionCheckpointFallsBackToFreshRun(t *testing.T) {
	sp := testSpec()
	sp.Scenarios = sp.Scenarios[:1]
	sp.Replicas = 1

	straight, err := Run(context.Background(), sp, nil)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	sp.CheckpointDir = dir
	sp.CheckpointEvery = 4
	if _, err := Run(context.Background(), sp, nil); err != nil {
		t.Fatal(err)
	}
	// Rewrite the header's version word to a foreign value and re-seal
	// the checksum trailer, simulating a checkpoint from another format
	// version that is otherwise intact.
	path := jobCkptPath(dir, 0, 0)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint64(raw[8:16], 999)
	h := fnv.New64a()
	h.Write(raw[:len(raw)-8])
	binary.LittleEndian.PutUint64(raw[len(raw)-8:], h.Sum64())
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := Run(context.Background(), sp, nil)
	if err != nil {
		t.Fatalf("run over stale-version checkpoint failed instead of recomputing: %v", err)
	}
	if !aggEqual(straight.Aggregates[0], res.Aggregates[0]) {
		t.Error("recomputation after version mismatch drifted from the straight run")
	}
}

// TestCheckpointSeedMismatchRejected: a checkpoint directory reused by a
// different base seed is rejected rather than silently blended.
func TestCheckpointSeedMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	sp := testSpec()
	sp.Scenarios = sp.Scenarios[:1]
	sp.Replicas = 1
	sp.CheckpointDir = dir
	sp.CheckpointEvery = 4
	if _, err := Run(context.Background(), sp, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := filepath.Glob(filepath.Join(dir, "*.ckpt")); err != nil {
		t.Fatal(err)
	}
	sp.BaseSeed++
	if _, err := Run(context.Background(), sp, nil); err == nil {
		t.Error("checkpoint from a different base seed was accepted")
	}
}

// TestCheckpointSpecChangeRejected: reusing a checkpoint directory after
// the step budget or physics knobs changed is a hard error — the old
// state must never be served as the new spec's result.
func TestCheckpointSpecChangeRejected(t *testing.T) {
	base := testSpec()
	base.Scenarios = base.Scenarios[:1]
	base.Replicas = 1
	base.CheckpointDir = t.TempDir()
	base.CheckpointEvery = 4
	if _, err := Run(context.Background(), base, nil); err != nil {
		t.Fatal(err)
	}
	mutations := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"warm-steps", func(sp *Spec) { sp.WarmSteps = 2 }},
		{"sample-steps", func(sp *Spec) { sp.SampleSteps = 4 }},
		{"lambda", func(sp *Spec) { sp.Scenarios[0].Sim.Free.Lambda = 0 }},
		{"density", func(sp *Spec) { sp.Scenarios[0].Sim.NPerCell = 5 }},
		{"precision", func(sp *Spec) { sp.Scenarios[0].Float32 = true }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			sp := base
			sp.Scenarios = append([]Scenario(nil), base.Scenarios...)
			// Deep-copy the config so a mutation cannot leak into the
			// base spec of the next subtest through the shared pointer.
			cfg := *base.Scenarios[0].Sim
			sp.Scenarios[0].Sim = &cfg
			m.mutate(&sp)
			if _, err := Run(context.Background(), sp, nil); err == nil {
				t.Error("changed spec resumed over the old checkpoint directory")
			}
		})
	}
}
