package run

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"path/filepath"

	"dsmc/internal/ckpt"
	"dsmc/internal/grid"
	"dsmc/internal/kernel"
	"dsmc/internal/molec"
	"dsmc/internal/rng"
	"dsmc/internal/sample"
	"dsmc/internal/sim"
	"dsmc/internal/sim3"
)

// Scenario is one sweep point lowered to an internal configuration:
// exactly one of the backend configs is set (2D wind tunnel or 3D shock
// tube), plus the storage precision to instantiate it at. The Seed field
// of the config is ignored — every job derives its own seed from the
// spec's base seed (rng.JobSeed), so replicas are independent by
// construction and a sweep is reproducible from (spec, base seed) alone.
type Scenario struct {
	Name    string
	Sim     *sim.Config  // 2D wind tunnel
	Sim3    *sim3.Config // 3D shock tube
	Float32 bool
}

// validate reports scenario errors (run.Spec.Validate wraps them with
// the scenario name).
func (sc *Scenario) validate() error {
	switch {
	case sc.Sim != nil && sc.Sim3 != nil:
		return errors.New("both Sim and Sim3 set")
	case sc.Sim != nil:
		return sc.Sim.Validate()
	case sc.Sim3 != nil:
		return sc.Sim3.Validate()
	}
	return errors.New("no backend config set")
}

// ReplicaResult is one finished replica's contribution to the
// aggregation: the requested time-averaged quantity fields, the fitted
// shock angle (NaN for scenarios without a wedge), and the integer
// diagnostics.
type ReplicaResult struct {
	Fields        map[string][]float64
	ShockAngleDeg float64
	Collisions    int64
	NFlow         int
}

// jobCkpt describes the checkpoint policy of one replica job.
type jobCkpt struct {
	store CkptStore // nil disables checkpointing
	every int       // steps between checkpoints (> 0 when store is set)
}

// replicaSim is the slice of engine-backend surface one replica job
// drives. Both precision instantiations of both backends implement it.
type replicaSim interface {
	Step()
	SampleInto(acc *sample.Accumulator)
	Collisions() int64
	NFlow() int
	SetStepObserver(fn func(step int, phaseNs [4]int64, particles int))
	CheckpointSections(w *ckpt.Writer)
	RestoreSections(r *ckpt.Reader) error
}

// replicaJob is a constructed replica: the live simulation plus the
// scenario-derived metadata the shared stepping loop and the checkpoint
// codec need (shape, precision tag, normalisers, analysis hook).
type replicaJob struct {
	sim   replicaSim
	prec  ckpt.Prec
	cells int
	acc   *sample.Accumulator
	norms sample.Norms
	// angle fits the scenario's validation scalar from the density
	// field; NaN when the scenario has no oblique shock to fit.
	angle func(density []float64) float64
}

// buildReplica constructs the scenario's simulation at the given seed.
func buildReplica(sc Scenario, seed uint64) (*replicaJob, error) {
	switch {
	case sc.Sim != nil:
		if sc.Float32 {
			return buildReplica2D[float32](sc, seed)
		}
		return buildReplica2D[float64](sc, seed)
	case sc.Sim3 != nil:
		if sc.Float32 {
			return buildReplica3D[float32](sc, seed)
		}
		return buildReplica3D[float64](sc, seed)
	}
	return nil, fmt.Errorf("scenario %q: no backend config set", sc.Name)
}

func buildReplica2D[F kernel.Float](sc Scenario, seed uint64) (*replicaJob, error) {
	cfg := *sc.Sim
	cfg.Seed = seed
	s, err := sim.NewOf[F](cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
	}
	g := grid.New(cfg.NX, cfg.NY)
	gamma := cfg.Free.Gamma
	if gamma == 0 {
		gamma = cfg.Model.Gamma()
	}
	return &replicaJob{
		sim:   s,
		prec:  ckpt.PrecOf[F](),
		cells: g.Cells(),
		acc:   sample.NewAccumulator(g, s.Volumes(), cfg.NPerCell),
		norms: sample.Norms{Cm: cfg.Free.Cm, Gamma: gamma},
		angle: func(density []float64) float64 { return shockAngleDeg(density, g, cfg) },
	}, nil
}

func buildReplica3D[F kernel.Float](sc Scenario, seed uint64) (*replicaJob, error) {
	cfg := *sc.Sim3
	cfg.Seed = seed
	s, err := sim3.NewOf[F](cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
	}
	model := cfg.Model
	if model.Name == "" {
		model = molec.Maxwell()
	}
	cells := sim3.Grid3{NX: cfg.NX, NY: cfg.NY, NZ: cfg.NZ}.Cells()
	return &replicaJob{
		sim:   s,
		prec:  ckpt.PrecOf[F](),
		cells: cells,
		acc:   sample.NewAccumulatorCells(cells, nil, cfg.NPerCell),
		norms: sample.Norms{Cm: cfg.Cm, Gamma: model.Gamma()},
		angle: func([]float64) float64 { return math.NaN() },
	}, nil
}

// runReplica executes one replica of a scenario: warm to steady state,
// then sample every step into the one-pass moment accumulator, and
// derive the requested quantity fields at the end. With a checkpoint
// store the job persists its progress every `every` steps and resumes
// exactly — the restored run is bit-identical to an uninterrupted one,
// because the checkpoint carries the full engine, domain and accumulator
// state and the step sequence does not depend on chunk boundaries.
//
// Cancellation is checked after every step, not just at chunk
// boundaries: a cancelled job saves a checkpoint at whatever step it
// reached (the state is consistent after any full step) and returns
// ctx.Err(), so graceful shutdown loses no work and the resumed run is
// still bit-identical.
func runReplica(ctx context.Context, sc Scenario, quantities []string, seed uint64, warm, sampleSteps int, ck jobCkpt, progress func(done, total int), trace func(step int, phaseNs [4]int64, particles int)) (*ReplicaResult, error) {
	job, err := buildReplica(sc, seed)
	if err != nil {
		return nil, err
	}
	if trace != nil {
		// The flight-recorder feed: per-step phase timings straight off
		// the engine's existing clock chokepoint. Purely observational —
		// the observer sees durations, never touches state.
		job.sim.SetStepObserver(trace)
	}

	done := 0 // steps completed, warm and sampling combined
	total := warm + sampleSteps
	fp := specFingerprint(sc, warm, sampleSteps)
	if ck.store != nil {
		restored, n, err := job.loadCheckpoint(ck.store, seed, fp)
		if err != nil {
			return nil, err
		}
		if restored {
			done = n
		}
	}
	if progress != nil {
		progress(done, total)
	}

	for done < total {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		chunk := total - done
		if ck.store != nil && ck.every > 0 && chunk > ck.every {
			chunk = ck.every
		}
		cancelled := false
		for k := 0; k < chunk; k++ {
			job.sim.Step()
			if done+k+1 > warm {
				job.sim.SampleInto(job.acc)
			}
			if ctx.Err() != nil {
				done += k + 1
				cancelled = true
				break
			}
		}
		if cancelled {
			// Best-effort checkpoint of the in-flight state; the job is
			// abandoning anyway, so a failed save only costs recomputation.
			if ck.store != nil {
				_ = job.saveCheckpoint(ck.store, seed, fp, done)
			}
			return nil, ctx.Err()
		}
		done += chunk
		if ck.store != nil {
			if err := job.saveCheckpoint(ck.store, seed, fp, done); err != nil {
				return nil, err
			}
		}
		if progress != nil {
			progress(done, total)
		}
	}

	res := &ReplicaResult{
		Fields:     make(map[string][]float64, len(quantities)),
		Collisions: job.sim.Collisions(),
		NFlow:      job.sim.NFlow(),
	}
	for _, q := range quantities {
		field, err := job.acc.FieldOf(q, job.norms)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		res.Fields[q] = field
	}
	// The shock-angle fit runs on the density field; reuse the derived
	// one when it was requested (the public layer always requests it).
	density := res.Fields[sample.QDensity]
	if density == nil {
		d, err := job.acc.FieldOf(sample.QDensity, job.norms)
		if err != nil {
			return nil, err
		}
		density = d
	}
	res.ShockAngleDeg = job.angle(density)
	return res, nil
}

// saveCheckpoint serializes the job state — progress counters, the full
// simulation, and the sampling accumulator — and hands the bytes to the
// store, which persists them atomically (the file store via
// write-temp/fsync/rename, the distributed worker via an idempotent
// upload). If the medium still delivers a corrupt buffer later,
// loadCheckpoint detects it by checksum and falls back to a fresh
// (bit-identical) run rather than wedging the sweep.
func (job *replicaJob) saveCheckpoint(store CkptStore, seed, fp uint64, done int) error {
	var buf bytes.Buffer
	w := ckpt.NewWriter(&buf, ckpt.KindJob, job.prec, job.cells)
	w.U64(seed)
	w.U64(fp)
	w.U64(uint64(done))
	job.sim.CheckpointSections(w)
	ckpt.WriteAccumulator(w, job.acc)
	if err := w.Close(); err != nil {
		return err
	}
	return store.Save(buf.Bytes())
}

// loadCheckpoint restores a job checkpoint if one exists, returning
// whether a restore happened and the completed step count.
//
// Failure policy: a checkpoint that is merely corrupt (torn write,
// disk damage — detected by the checksum trailer before any state is
// applied) is discarded and the job starts fresh, which is bit-identical
// to having resumed and costs only the recomputation; a checkpoint that
// is structurally valid but belongs to a different job or spec — wrong
// seed, spec fingerprint (step budget or physics knobs changed), kind,
// precision or grid, i.e. a checkpoint directory shared across specs —
// is a hard error, because silently ignoring it would mask the
// misconfiguration (or worse, serve the old spec's state as the new
// spec's result).
func (job *replicaJob) loadCheckpoint(store CkptStore, seed, fp uint64) (bool, int, error) {
	data, err := store.Load()
	if err != nil {
		return false, 0, err
	}
	if data == nil {
		return false, 0, nil
	}
	if !ckpt.VerifyTrailer(data) {
		// Corrupt: discard and recompute. The whole-buffer verification
		// runs before RestoreSections, so a bad checkpoint can never leave
		// the simulation half-mutated.
		store.Discard()
		return false, 0, nil
	}
	r, err := ckpt.NewReader(bytes.NewReader(data))
	if errors.Is(err, ckpt.ErrVersion) {
		// A checkpoint from a different format version (pre-upgrade
		// leftovers in a resumed sweep directory): recomputing from
		// scratch is bit-identical to having resumed, so treat it like
		// corruption rather than wedging the sweep.
		store.Discard()
		return false, 0, nil
	}
	if err != nil {
		return false, 0, fmt.Errorf("job checkpoint: %w", err)
	}
	if err := ckpt.CheckShape(r, ckpt.KindJob, job.prec, job.cells); err != nil {
		return false, 0, fmt.Errorf("job checkpoint: %w", err)
	}
	ckSeed := r.U64()
	ckFp := r.U64()
	done := int(r.U64())
	if r.Err() != nil {
		return false, 0, r.Err()
	}
	if ckSeed != seed {
		return false, 0, fmt.Errorf("job checkpoint: seed %#x does not match job seed %#x", ckSeed, seed)
	}
	if ckFp != fp {
		return false, 0, fmt.Errorf("job checkpoint: spec fingerprint %#x does not match %#x (step budget or physics parameters changed; use a fresh checkpoint directory)", ckFp, fp)
	}
	if err := job.sim.RestoreSections(r); err != nil {
		return false, 0, fmt.Errorf("job checkpoint: %w", err)
	}
	if err := ckpt.ReadAccumulator(r, job.acc); err != nil {
		return false, 0, fmt.Errorf("job checkpoint: %w", err)
	}
	if err := r.Close(); err != nil {
		return false, 0, fmt.Errorf("job checkpoint: %w", err)
	}
	return true, done, nil
}

// jobCkptPath names a job's checkpoint file inside the sweep's
// checkpoint directory.
func jobCkptPath(dir string, scenarioIdx, replica int) string {
	return filepath.Join(dir, fmt.Sprintf("job-s%03d-r%03d.ckpt", scenarioIdx, replica))
}

// specFingerprint hashes every job parameter that determines the job's
// trajectory — step budget, grid, physics knobs, wall model, wedges,
// molecular model, precision, dimensionality — so a checkpoint directory
// reused after the spec changed is rejected instead of silently serving
// the old spec's state as the new spec's result. (The seed is checked
// separately; requested quantities are deliberately not fingerprinted —
// they are derived from the same accumulated moments and do not affect
// the trajectory. The pluggable Scheme override is not reachable through
// the sweep API and is therefore not fingerprinted either.)
func specFingerprint(sc Scenario, warm, sampleSteps int) uint64 {
	h := fnv.New64a()
	var b [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	f := func(v float64) { word(math.Float64bits(v)) }
	word(uint64(warm))
	word(uint64(sampleSteps))
	if sc.Float32 {
		word(1)
	} else {
		word(0)
	}
	switch {
	case sc.Sim != nil:
		cfg := sc.Sim
		word(2) // dimensionality tag
		word(uint64(cfg.NX))
		word(uint64(cfg.NY))
		f(cfg.NPerCell)
		f(cfg.Free.Mach)
		f(cfg.Free.Cm)
		f(cfg.Free.Lambda)
		f(cfg.Free.Gamma)
		f(cfg.PlungerTrigger)
		f(cfg.ZVib)
		word(uint64(cfg.Wall.Model))
		f(cfg.Wall.WallCm)
		word(uint64(cfg.ReservoirCapacity))
		if cfg.Wedge != nil {
			word(1)
			f(cfg.Wedge.LeadX)
			f(cfg.Wedge.Base)
			f(cfg.Wedge.Angle)
		} else {
			word(0)
		}
		if cfg.Wedge2 != nil {
			word(1)
			f(cfg.Wedge2.LeadX)
			f(cfg.Wedge2.Base)
			f(cfg.Wedge2.Angle)
		} else {
			word(0)
		}
		h.Write([]byte(cfg.Model.Name))
	case sc.Sim3 != nil:
		cfg := sc.Sim3
		word(3) // dimensionality tag
		word(uint64(cfg.NX))
		word(uint64(cfg.NY))
		word(uint64(cfg.NZ))
		f(cfg.NPerCell)
		f(cfg.Cm)
		f(cfg.Lambda)
		f(cfg.PistonSpeed)
		h.Write([]byte(cfg.Model.Name))
	}
	return h.Sum64()
}

// jobSeed derives the simulation seed of (scenario, replica) from the
// spec's base seed; see rng.JobSeed for the non-collision argument. The
// job index packs the scenario into the high word so sweeps of any
// practical width cannot overlap.
func jobSeed(base uint64, scenarioIdx, replica int) uint64 {
	return rng.JobSeed(base, uint64(scenarioIdx)<<32|uint64(uint32(replica)))
}

// shockAngleDeg fits the oblique shock angle from a density field — the
// identical analysis (sample.WedgeShockAngle) the public Field runs, so
// per-replica statistics and the fit on the cross-replica mean can never
// diverge in convention; NaN when the scenario has no wedge or no front
// is found.
func shockAngleDeg(density []float64, g grid.Grid, cfg sim.Config) float64 {
	if cfg.Wedge == nil {
		return math.NaN()
	}
	return sample.WedgeShockAngle(density, g,
		cfg.Wedge.LeadX, cfg.Wedge.Base, cfg.Wedge.Angle, cfg.Free.Mach) * 180 / math.Pi
}
