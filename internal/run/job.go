package run

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"

	"dsmc/internal/ckpt"
	"dsmc/internal/grid"
	"dsmc/internal/kernel"
	"dsmc/internal/rng"
	"dsmc/internal/sample"
	"dsmc/internal/sim"
)

// Scenario is one sweep point lowered to the internal configuration: a
// wind-tunnel config plus the storage precision to instantiate it at.
// The Seed field of Sim is ignored — every job derives its own seed from
// the spec's base seed (rng.JobSeed), so replicas are independent by
// construction and a sweep is reproducible from (spec, base seed) alone.
type Scenario struct {
	Name    string
	Sim     sim.Config
	Float32 bool
}

// ReplicaResult is one finished replica's contribution to the
// aggregation: the time-averaged density field, the fitted shock angle,
// and the integer diagnostics.
type ReplicaResult struct {
	Density       []float64
	ShockAngleDeg float64
	Collisions    int64
	NFlow         int
}

// jobCkpt describes the checkpoint policy of one replica job.
type jobCkpt struct {
	path  string // "" disables checkpointing
	every int    // steps between checkpoints (> 0 when path is set)
}

// runReplica executes one replica of a scenario: warm to steady state,
// then sample every step into an accumulator. With a checkpoint path the
// job persists its progress every `every` steps and resumes exactly —
// the restored run is bit-identical to an uninterrupted one, because the
// checkpoint carries the full engine, domain and accumulator state and
// the step sequence does not depend on chunk boundaries.
func runReplica(ctx context.Context, sc Scenario, seed uint64, warm, sampleSteps int, ck jobCkpt, progress func(done, total int)) (*ReplicaResult, error) {
	if sc.Float32 {
		return runReplicaOf[float32](ctx, sc, seed, warm, sampleSteps, ck, progress)
	}
	return runReplicaOf[float64](ctx, sc, seed, warm, sampleSteps, ck, progress)
}

func runReplicaOf[F kernel.Float](ctx context.Context, sc Scenario, seed uint64, warm, sampleSteps int, ck jobCkpt, progress func(done, total int)) (*ReplicaResult, error) {
	cfg := sc.Sim
	cfg.Seed = seed
	s, err := sim.NewOf[F](cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
	}
	g := grid.New(cfg.NX, cfg.NY)
	acc := sample.NewAccumulator(g, s.Volumes(), cfg.NPerCell)

	done := 0 // steps completed, warm and sampling combined
	total := warm + sampleSteps
	fp := specFingerprint(sc, warm, sampleSteps)
	if ck.path != "" {
		restored, n, err := loadJobCheckpoint(ck.path, s, acc, seed, fp)
		if err != nil {
			return nil, err
		}
		if restored {
			done = n
		}
	}
	if progress != nil {
		progress(done, total)
	}

	for done < total {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		chunk := total - done
		if ck.path != "" && ck.every > 0 && chunk > ck.every {
			chunk = ck.every
		}
		for k := 0; k < chunk; k++ {
			s.Step()
			if done+k+1 > warm {
				s.SampleInto(acc)
			}
		}
		done += chunk
		if ck.path != "" {
			if err := saveJobCheckpoint(ck.path, s, acc, seed, fp, done); err != nil {
				return nil, err
			}
		}
		if progress != nil {
			progress(done, total)
		}
	}

	res := &ReplicaResult{
		Density:    acc.Density(),
		Collisions: s.Collisions(),
		NFlow:      s.NFlow(),
	}
	res.ShockAngleDeg = shockAngleDeg(res.Density, g, cfg)
	return res, nil
}

// saveJobCheckpoint atomically writes the job state: progress counters,
// the full simulation, and the sampling accumulator. The write goes to a
// temp file that is fsynced before the rename, so neither a process
// crash mid-write nor a host crash around the rename can replace a good
// checkpoint with a torn one — and if the filesystem still delivers a
// corrupt file, loadJobCheckpoint detects it by checksum and falls back
// to a fresh (bit-identical) run rather than wedging the sweep.
func saveJobCheckpoint[F kernel.Float](path string, s *sim.SimOf[F], acc *sample.Accumulator, seed, fp uint64, done int) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := ckpt.NewWriter(f, ckpt.KindJob, ckpt.PrecOf[F](), len(s.Volumes()))
	w.U64(seed)
	w.U64(fp)
	w.U64(uint64(done))
	s.CheckpointSections(w)
	ckpt.WriteAccumulator(w, acc)
	err = w.Close()
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// loadJobCheckpoint restores a job checkpoint if one exists, returning
// whether a restore happened and the completed step count.
//
// Failure policy: a checkpoint that is merely corrupt (torn write,
// disk damage — detected by the checksum trailer before any state is
// applied) is discarded and the job starts fresh, which is bit-identical
// to having resumed and costs only the recomputation; a checkpoint that
// is structurally valid but belongs to a different job or spec — wrong
// seed, spec fingerprint (step budget or physics knobs changed), kind,
// precision or grid, i.e. a checkpoint directory shared across specs —
// is a hard error, because silently ignoring it would mask the
// misconfiguration (or worse, serve the old spec's state as the new
// spec's result).
func loadJobCheckpoint[F kernel.Float](path string, s *sim.SimOf[F], acc *sample.Accumulator, seed, fp uint64) (bool, int, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return false, 0, nil
	}
	if err != nil {
		return false, 0, err
	}
	if !ckpt.VerifyTrailer(data) {
		// Corrupt: discard and recompute. The whole-buffer verification
		// runs before RestoreSections, so a bad checkpoint can never leave
		// the simulation half-mutated.
		os.Remove(path)
		return false, 0, nil
	}
	r, err := ckpt.NewReader(bytes.NewReader(data))
	if err != nil {
		return false, 0, fmt.Errorf("job checkpoint %s: %w", path, err)
	}
	if err := ckpt.CheckShape(r, ckpt.KindJob, ckpt.PrecOf[F](), len(s.Volumes())); err != nil {
		return false, 0, fmt.Errorf("job checkpoint %s: %w", path, err)
	}
	ckSeed := r.U64()
	ckFp := r.U64()
	done := int(r.U64())
	if r.Err() != nil {
		return false, 0, r.Err()
	}
	if ckSeed != seed {
		return false, 0, fmt.Errorf("job checkpoint %s: seed %#x does not match job seed %#x", path, ckSeed, seed)
	}
	if ckFp != fp {
		return false, 0, fmt.Errorf("job checkpoint %s: spec fingerprint %#x does not match %#x (step budget or physics parameters changed; use a fresh checkpoint directory)", path, ckFp, fp)
	}
	if err := s.RestoreSections(r); err != nil {
		return false, 0, fmt.Errorf("job checkpoint %s: %w", path, err)
	}
	if err := ckpt.ReadAccumulator(r, acc); err != nil {
		return false, 0, fmt.Errorf("job checkpoint %s: %w", path, err)
	}
	if err := r.Close(); err != nil {
		return false, 0, fmt.Errorf("job checkpoint %s: %w", path, err)
	}
	return true, done, nil
}

// jobCkptPath names a job's checkpoint file inside the sweep's
// checkpoint directory.
func jobCkptPath(dir string, scenarioIdx, replica int) string {
	return filepath.Join(dir, fmt.Sprintf("job-s%03d-r%03d.ckpt", scenarioIdx, replica))
}

// specFingerprint hashes every job parameter that determines the job's
// trajectory — step budget, grid, physics knobs, wall model, wedge,
// molecular model, precision — so a checkpoint directory reused after
// the spec changed is rejected instead of silently serving the old
// spec's state as the new spec's result. (The seed is checked
// separately; the pluggable Scheme override is not reachable through
// the sweep API and is therefore not fingerprinted.)
func specFingerprint(sc Scenario, warm, sampleSteps int) uint64 {
	h := fnv.New64a()
	var b [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	f := func(v float64) { word(math.Float64bits(v)) }
	word(uint64(warm))
	word(uint64(sampleSteps))
	word(uint64(sc.Sim.NX))
	word(uint64(sc.Sim.NY))
	f(sc.Sim.NPerCell)
	f(sc.Sim.Free.Mach)
	f(sc.Sim.Free.Cm)
	f(sc.Sim.Free.Lambda)
	f(sc.Sim.Free.Gamma)
	f(sc.Sim.PlungerTrigger)
	f(sc.Sim.ZVib)
	word(uint64(sc.Sim.Wall.Model))
	f(sc.Sim.Wall.WallCm)
	word(uint64(sc.Sim.ReservoirCapacity))
	if sc.Sim.Wedge != nil {
		word(1)
		f(sc.Sim.Wedge.LeadX)
		f(sc.Sim.Wedge.Base)
		f(sc.Sim.Wedge.Angle)
	} else {
		word(0)
	}
	if sc.Float32 {
		word(1)
	} else {
		word(0)
	}
	h.Write([]byte(sc.Sim.Model.Name))
	return h.Sum64()
}

// jobSeed derives the simulation seed of (scenario, replica) from the
// spec's base seed; see rng.JobSeed for the non-collision argument. The
// job index packs the scenario into the high word so sweeps of any
// practical width cannot overlap.
func jobSeed(base uint64, scenarioIdx, replica int) uint64 {
	return rng.JobSeed(base, uint64(scenarioIdx)<<32|uint64(uint32(replica)))
}

// shockAngleDeg fits the oblique shock angle from a density field — the
// identical analysis (sample.WedgeShockAngle) the public Field runs, so
// per-replica statistics and the fit on the cross-replica mean can never
// diverge in convention; NaN when the scenario has no wedge or no front
// is found.
func shockAngleDeg(density []float64, g grid.Grid, cfg sim.Config) float64 {
	if cfg.Wedge == nil {
		return math.NaN()
	}
	return sample.WedgeShockAngle(density, g,
		cfg.Wedge.LeadX, cfg.Wedge.Base, cfg.Wedge.Angle, cfg.Free.Mach) * 180 / math.Pi
}
