// Package run is the run-orchestration layer over the reference
// backends: it models an ensemble or parameter sweep as a small job DAG
// — replica simulations fan out, per-scenario aggregations fan in — and
// executes it over a bounded pool of concurrent whole simulations. This
// is the outer level of parallelism the paper's single hand-launched
// runs lack: DSMC answers are statistical, so the production question is
// "run N replicas per sweep point, aggregate into mean/variance/CI, and
// serve the result", and whole-simulation jobs scale on multi-core hosts
// even where the inner worker sharding is bandwidth-bound.
//
// Determinism: every job derives its seed from the spec's base seed
// (rng.JobSeed — collision-free by construction), jobs never share
// mutable state, and aggregation merges replica results strictly in
// index order inside fan-in nodes, so a sweep's aggregates are
// bit-identical for any pool size and any completion order. With a
// checkpoint directory set, jobs persist engine + domain + accumulator
// state every few steps (internal/ckpt) and resume exactly: a killed and
// restarted sweep produces the same bits as an uninterrupted one.
package run

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"

	"dsmc/internal/sample"
	"dsmc/internal/store"
)

// Spec describes an ensemble or sweep: one or more scenarios, each run
// Replicas times. The zero value is not runnable; Validate reports why.
type Spec struct {
	// Name labels the sweep in events and results.
	Name string
	// Scenarios are the sweep points (one scenario = a plain ensemble).
	Scenarios []Scenario
	// Quantities are the sampled quantity slugs (sample.Q*) each replica
	// derives from its one-pass moment accumulation and each aggregate
	// carries per-cell statistics for; empty defaults to density alone.
	Quantities []string
	// Replicas is the number of independent replicas per scenario.
	Replicas int
	// WarmSteps runs before sampling starts; SampleSteps are accumulated.
	WarmSteps, SampleSteps int
	// BaseSeed seeds the per-job derivation (rng.JobSeed).
	BaseSeed uint64
	// Pool bounds the number of concurrently running simulations;
	// 0 selects runtime.NumCPU(). Each simulation runs with its own
	// configured Workers (default 1 when orchestrating, so the outer and
	// inner parallelism multiply rather than oversubscribe).
	Pool int
	// CheckpointDir, when set, makes jobs resumable: each persists its
	// state there every CheckpointEvery steps.
	CheckpointDir string
	// CheckpointEvery is the step interval between job checkpoints
	// (default 50 when a directory is set).
	CheckpointEvery int
	// Results, when set, memoizes the sweep against a content-addressed
	// result store: every replica and aggregate node consults the store
	// before computing (a verified hit skips the work entirely) and
	// publishes its artifact after. Keys derive from the determinism
	// contract (see memo.go), so hits are bit-identical by construction.
	Results *store.Store
}

// Validate reports spec errors.
func (sp *Spec) Validate() error {
	if len(sp.Scenarios) == 0 {
		return fmt.Errorf("run: spec has no scenarios")
	}
	if sp.Replicas <= 0 {
		return fmt.Errorf("run: Replicas must be positive")
	}
	if sp.SampleSteps <= 0 {
		return fmt.Errorf("run: SampleSteps must be positive")
	}
	if sp.WarmSteps < 0 {
		return fmt.Errorf("run: WarmSteps must not be negative")
	}
	for _, q := range sp.Quantities {
		if !sample.KnownQuantity(q) {
			return fmt.Errorf("run: unknown quantity %q", q)
		}
	}
	seen := make(map[string]bool, len(sp.Scenarios))
	for i, sc := range sp.Scenarios {
		if sc.Name == "" {
			return fmt.Errorf("run: scenario %d has no name", i)
		}
		if seen[sc.Name] {
			return fmt.Errorf("run: duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if err := sc.validate(); err != nil {
			return fmt.Errorf("run: scenario %q: %w", sc.Name, err)
		}
	}
	return nil
}

// quantities resolves the spec's quantity list (default: density).
func (sp *Spec) quantities() []string {
	if len(sp.Quantities) == 0 {
		return []string{sample.QDensity}
	}
	return sp.Quantities
}

// JobName is the canonical ID of one replica job — the same string the
// in-process executor uses as DAG node ID and event job name, so
// distributed runs and local runs report identical job tables.
func JobName(scenario string, replica int) string {
	return fmt.Sprintf("%s/r%03d", scenario, replica)
}

// AggregateName is the canonical ID of a scenario's fan-in node.
func AggregateName(scenario string) string { return scenario + "/aggregate" }

// JobIO carries the side channels of a single-job execution: the
// checkpoint store (nil disables checkpointing), the step interval
// between checkpoints, the progress observer, and the per-step trace
// observer (the flight-recorder feed; called on the stepping
// goroutine after every step with that step's per-phase wall times in
// nanoseconds and the particle count).
type JobIO struct {
	Ckpt      CkptStore
	Every     int
	Progress  func(done, total int)
	StepTrace func(step int, phaseNs [4]int64, particles int)
	// Results, when set, memoizes the job: a verified store hit returns
	// the finished output without stepping, a miss computes and
	// publishes it.
	Results *store.Store
}

// RunJob executes exactly one replica job of a validated spec — the
// distributed-execution entry. A coordinator enumerates the (scenario,
// replica) pairs; pull-workers call RunJob with a checkpoint store that
// uploads to the coordinator. The seed derivation, stepping loop and
// checkpoint codec are the very functions the in-process Run path uses,
// so a job executed remotely — or re-executed elsewhere after a worker
// loss, resuming from the last uploaded checkpoint — contributes bits
// identical to the never-failed local run.
func RunJob(ctx context.Context, sp Spec, scenarioIdx, replica int, io JobIO) (*ReplicaResult, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if scenarioIdx < 0 || scenarioIdx >= len(sp.Scenarios) {
		return nil, fmt.Errorf("run: scenario index %d out of range (%d scenarios)", scenarioIdx, len(sp.Scenarios))
	}
	if replica < 0 || replica >= sp.Replicas {
		return nil, fmt.Errorf("run: replica %d out of range (%d replicas)", replica, sp.Replicas)
	}
	var ck jobCkpt
	if io.Ckpt != nil {
		every := io.Every
		if every <= 0 {
			every = 50
		}
		ck = jobCkpt{store: io.Ckpt, every: every}
	}
	if io.Results != nil {
		if res, ok := memoReplica(io.Results, sp.OutputKey(scenarioIdx, replica)); ok {
			if io.Progress != nil {
				total := sp.WarmSteps + sp.SampleSteps
				io.Progress(total, total)
			}
			return res, nil
		}
	}
	seed := jobSeed(sp.BaseSeed, scenarioIdx, replica)
	res, err := runReplica(ctx, sp.Scenarios[scenarioIdx], sp.quantities(), seed, sp.WarmSteps, sp.SampleSteps, ck, io.Progress, io.StepTrace)
	if err != nil {
		return nil, err
	}
	if io.Results != nil {
		publishReplica(io.Results, sp.OutputKey(scenarioIdx, replica), res)
	}
	return res, nil
}

// AggregateScenario fans in one scenario's replica results — results
// must be indexed by replica and fully populated — with the identical
// index-order Welford merge the in-process fan-in node runs, so a
// distributed sweep's aggregates are bit-identical to the local run's.
func (sp *Spec) AggregateScenario(scenarioIdx int, results []*ReplicaResult) *Aggregate {
	return aggregate(sp.Scenarios[scenarioIdx].Name, sp.quantities(), results)
}

// Result is a completed sweep: one aggregate per scenario, in scenario
// order.
type Result struct {
	Name       string       `json:"name"`
	Aggregates []*Aggregate `json:"aggregates"`
}

// EventType tags a sweep event.
type EventType string

// Sweep event types.
const (
	EventJobStarted    EventType = "job-started"
	EventJobProgress   EventType = "job-progress"
	EventJobDone       EventType = "job-done"
	EventJobFailed     EventType = "job-failed"
	EventJobSkipped    EventType = "job-skipped"
	EventAggregateDone EventType = "aggregate-done"
)

// Event is one observation of sweep progress. Events are delivered
// serially (never concurrently) but their order across jobs follows
// scheduling, not replica index.
type Event struct {
	Type     EventType `json:"type"`
	Job      string    `json:"job"`
	Scenario string    `json:"scenario,omitempty"`
	Replica  int       `json:"replica,omitempty"`
	// StepsDone/StepsTotal carry job progress (warm + sampling combined).
	StepsDone  int    `json:"steps_done,omitempty"`
	StepsTotal int    `json:"steps_total,omitempty"`
	Err        string `json:"err,omitempty"`
}

// Run executes the spec's job DAG and returns the per-scenario
// aggregates. onEvent, when non-nil, observes progress (serialized).
func Run(ctx context.Context, sp Spec, onEvent func(Event)) (*Result, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	pool := sp.Pool
	if pool <= 0 {
		pool = runtime.NumCPU()
	}
	ckEvery := sp.CheckpointEvery
	if ckEvery <= 0 {
		ckEvery = 50
	}
	if sp.CheckpointDir != "" {
		if err := os.MkdirAll(sp.CheckpointDir, 0o755); err != nil {
			return nil, err
		}
	}

	// Events may arrive from any job goroutine; serialize them here so
	// observers (NDJSON streams, progress tables) need no locking.
	var evMu sync.Mutex
	emit := func(e Event) {
		if onEvent == nil {
			return
		}
		evMu.Lock()
		defer evMu.Unlock()
		onEvent(e)
	}

	// Result slots are preallocated per (scenario, replica); jobs write
	// only their own slot, aggregates read their scenario's slice after
	// the DAG ordering guarantees it is fully populated.
	results := make([][]*ReplicaResult, len(sp.Scenarios))
	aggs := make([]*Aggregate, len(sp.Scenarios))
	var nodes []Node
	for si := range sp.Scenarios {
		si := si
		sc := sp.Scenarios[si]
		results[si] = make([]*ReplicaResult, sp.Replicas)
		var deps []string
		for r := 0; r < sp.Replicas; r++ {
			r := r
			id := JobName(sc.Name, r)
			deps = append(deps, id)
			nodes = append(nodes, Node{
				ID: id,
				Run: func(ctx context.Context) error {
					if sp.Results != nil {
						if res, ok := memoReplica(sp.Results, sp.OutputKey(si, r)); ok {
							results[si][r] = res
							total := sp.WarmSteps + sp.SampleSteps
							emit(Event{Type: EventJobProgress, Job: id, Scenario: sc.Name,
								Replica: r, StepsDone: total, StepsTotal: total})
							return nil
						}
					}
					var ck jobCkpt
					if sp.CheckpointDir != "" {
						ck = jobCkpt{store: FileCkptStore{Path: jobCkptPath(sp.CheckpointDir, si, r)}, every: ckEvery}
					}
					seed := jobSeed(sp.BaseSeed, si, r)
					res, err := runReplica(ctx, sc, sp.quantities(), seed, sp.WarmSteps, sp.SampleSteps, ck,
						func(done, total int) {
							emit(Event{Type: EventJobProgress, Job: id, Scenario: sc.Name,
								Replica: r, StepsDone: done, StepsTotal: total})
						}, nil)
					if err != nil {
						return err
					}
					results[si][r] = res
					if sp.Results != nil {
						publishReplica(sp.Results, sp.OutputKey(si, r), res)
					}
					return nil
				},
			})
		}
		nodes = append(nodes, Node{
			ID:   AggregateName(sc.Name),
			Deps: deps,
			Run: func(ctx context.Context) error {
				if sp.Results != nil {
					if agg, ok := memoAggregate(sp.Results, sp.AggregateKey(si), sc.Name, sp.quantities()); ok {
						aggs[si] = agg
						emit(Event{Type: EventAggregateDone, Job: AggregateName(sc.Name), Scenario: sc.Name})
						return nil
					}
				}
				aggs[si] = aggregate(sc.Name, sp.quantities(), results[si])
				if sp.Results != nil {
					publishAggregate(sp.Results, sp.AggregateKey(si), aggs[si], sp.quantities())
				}
				emit(Event{Type: EventAggregateDone, Job: AggregateName(sc.Name), Scenario: sc.Name})
				return nil
			},
		})
	}

	err := ExecuteDAG(ctx, nodes, pool, func(id string, st NodeState, nodeErr error) {
		switch st {
		case NodeRunning:
			emit(Event{Type: EventJobStarted, Job: id})
		case NodeFailed:
			emit(Event{Type: EventJobFailed, Job: id, Err: nodeErr.Error()})
		case NodeSkipped:
			emit(Event{Type: EventJobSkipped, Job: id})
		case NodeDone:
			emit(Event{Type: EventJobDone, Job: id})
		}
	})
	if err != nil {
		return nil, err
	}
	return &Result{Name: sp.Name, Aggregates: aggs}, nil
}
