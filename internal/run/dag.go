package run

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Node is one unit of work in a job DAG: a Run closure plus the IDs of
// the nodes that must complete first. An ensemble is the smallest
// instance — replicas fan out from nothing and an aggregate node fans
// them in — but the executor takes any acyclic dependency structure.
type Node struct {
	ID   string
	Deps []string
	Run  func(ctx context.Context) error
}

// NodeState is the lifecycle of a node during execution.
type NodeState int

// Node lifecycle states.
const (
	NodePending NodeState = iota
	NodeRunning
	NodeDone
	NodeFailed
	// NodeSkipped marks nodes never started because a dependency (or the
	// context) failed first.
	NodeSkipped
)

// String names the state.
func (s NodeState) String() string {
	switch s {
	case NodePending:
		return "pending"
	case NodeRunning:
		return "running"
	case NodeDone:
		return "done"
	case NodeFailed:
		return "failed"
	case NodeSkipped:
		return "skipped"
	}
	return "unknown"
}

// ExecuteDAG runs the nodes respecting dependencies, with at most pool
// nodes in flight at once (pool <= 0 means unbounded). It validates the
// graph up front — duplicate IDs, unknown dependencies, and cycles are
// errors before anything runs. On the first node failure (or context
// cancellation) no new nodes start; in-flight nodes finish and the first
// error is returned. onState, when non-nil, observes every state
// transition; it is called from the scheduling goroutine only, so
// observers need no locking of their own.
//
// Determinism note: ready nodes start in the deterministic order they
// became ready (ties broken by ID), but completion order is scheduling-
// dependent. Anything that must be reproducible — the cross-replica
// aggregation — therefore runs inside fan-in nodes that see all their
// dependencies' results at once and combine them in index order.
func ExecuteDAG(ctx context.Context, nodes []Node, pool int, onState func(id string, st NodeState, err error)) error {
	byID := make(map[string]*Node, len(nodes))
	for i := range nodes {
		n := &nodes[i]
		if n.ID == "" {
			return fmt.Errorf("run: node %d has an empty ID", i)
		}
		if _, dup := byID[n.ID]; dup {
			return fmt.Errorf("run: duplicate node ID %q", n.ID)
		}
		byID[n.ID] = n
	}
	indeg := make(map[string]int, len(nodes))
	dependents := make(map[string][]string, len(nodes))
	for i := range nodes {
		n := &nodes[i]
		indeg[n.ID] = len(n.Deps)
		for _, d := range n.Deps {
			if _, ok := byID[d]; !ok {
				return fmt.Errorf("run: node %q depends on unknown node %q", n.ID, d)
			}
			dependents[d] = append(dependents[d], n.ID)
		}
	}
	if err := checkAcyclic(indeg, dependents); err != nil {
		return err
	}

	if pool <= 0 || pool > len(nodes) {
		pool = len(nodes)
	}
	notify := func(id string, st NodeState, err error) {
		if onState != nil {
			onState(id, st, err)
		}
	}

	var ready []string
	for _, n := range nodes {
		if indeg[n.ID] == 0 {
			ready = append(ready, n.ID)
		}
	}
	sort.Strings(ready)

	type doneMsg struct {
		id  string
		err error
	}
	doneCh := make(chan doneMsg)
	var wg sync.WaitGroup
	running := 0
	finished := 0
	var firstErr error

	start := func(id string) {
		running++
		notify(id, NodeRunning, nil)
		n := byID[id]
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := n.Run(ctx)
			doneCh <- doneMsg{id: id, err: err}
		}()
	}

	for finished < len(nodes) {
		// Launch while capacity and work remain, unless failing.
		for firstErr == nil && ctx.Err() == nil && running < pool && len(ready) > 0 {
			id := ready[0]
			ready = ready[1:]
			start(id)
		}
		if running == 0 {
			// Nothing in flight and nothing startable: everything left is
			// blocked behind a failure or cancellation.
			break
		}
		msg := <-doneCh
		running--
		finished++
		if msg.err != nil {
			notify(msg.id, NodeFailed, msg.err)
			if firstErr == nil {
				firstErr = fmt.Errorf("run: node %q: %w", msg.id, msg.err)
			}
			continue
		}
		notify(msg.id, NodeDone, nil)
		var unblocked []string
		for _, dep := range dependents[msg.id] {
			indeg[dep]--
			if indeg[dep] == 0 {
				unblocked = append(unblocked, dep)
			}
		}
		sort.Strings(unblocked)
		ready = append(ready, unblocked...)
	}
	wg.Wait()

	if firstErr == nil && ctx.Err() != nil {
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		// Report everything that never started — still queued (in-degree
		// zero) or still blocked — as skipped, in deterministic order.
		skipped := append([]string(nil), ready...)
		//dsmclint:allow determinism order-invariant: collected IDs are sorted before any observer sees them
		for id, d := range indeg {
			if d > 0 {
				skipped = append(skipped, id)
			}
		}
		sort.Strings(skipped)
		for _, id := range skipped {
			notify(id, NodeSkipped, nil)
		}
	}
	return firstErr
}

// checkAcyclic runs Kahn's algorithm on a copy of the in-degrees over
// the executor's reverse-adjacency map and fails if any node is
// unreachable from the sources (a cycle).
func checkAcyclic(indeg map[string]int, dependents map[string][]string) error {
	deg := make(map[string]int, len(indeg))
	var queue []string
	//dsmclint:allow determinism order-invariant: collected IDs are sorted before any observer sees them
	for id, d := range indeg {
		deg[id] = d
		if d == 0 {
			queue = append(queue, id)
		}
	}
	seen := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		seen++
		for _, dep := range dependents[id] {
			deg[dep]--
			if deg[dep] == 0 {
				queue = append(queue, dep)
			}
		}
	}
	if seen != len(indeg) {
		var stuck []string
		//dsmclint:allow determinism order-invariant: the stuck list is sorted before it enters the error message
		for id, d := range deg {
			if d > 0 {
				stuck = append(stuck, id)
			}
		}
		sort.Strings(stuck)
		return fmt.Errorf("run: dependency cycle through %v", stuck)
	}
	return nil
}
