// Package molec defines the molecular models of the simulation. The
// paper's model is the ideal diatomic Maxwell molecule — three
// translational and two rotational degrees of freedom, inverse-power-law
// exponent α = 4 — for which the selection rule loses its dependence on
// the relative speed. The generalisations called for in the paper's
// future-work section (power-law interactions with arbitrary α, hard
// spheres, VHS) are provided through the same type.
package molec

import "math"

// Model captures how a molecular interaction enters the selection rule:
// P/P∞ = (n/n∞)·(g/g∞)^GExp, with GExp = 1 − 4/α for an inverse power
// law of exponent α (eq. 6–8 of the paper).
type Model struct {
	Name string
	// GExp is the exponent on the normalised relative speed in the
	// selection rule.
	GExp float64
	// RotDOF is the number of rotational degrees of freedom (2 for the
	// paper's diatomic model, 0 for a monatomic gas).
	RotDOF int
}

// Maxwell returns the paper's model: Maxwell molecules (α = 4), diatomic.
// The selection rule reduces to P/P∞ = n/n∞ — no relative-speed factor —
// which is why the paper calls it the special case.
func Maxwell() Model { return Model{Name: "maxwell", GExp: 0, RotDOF: 2} }

// HardSphere returns the hard-sphere limit α → ∞, GExp = 1.
func HardSphere() Model { return Model{Name: "hard-sphere", GExp: 1, RotDOF: 2} }

// PowerLaw returns an inverse-power-law molecule with exponent alpha ≥ 4.
func PowerLaw(alpha float64) Model {
	if alpha < 4 {
		panic("molec: power-law exponent must be at least 4 (Maxwell)")
	}
	return Model{Name: "power-law", GExp: 1 - 4/alpha, RotDOF: 2}
}

// VHS returns a variable-hard-sphere model with viscosity exponent omega
// in [0.5, 1]; ω = 0.5 is a hard sphere, ω = 1 a Maxwell molecule. The
// VHS cross-section σ ∝ g^(1−2ω) gives P ∝ n·g^(2−2ω).
func VHS(omega float64) Model {
	if omega < 0.5 || omega > 1 {
		panic("molec: VHS omega must lie in [0.5, 1]")
	}
	return Model{Name: "vhs", GExp: 2 - 2*omega, RotDOF: 2}
}

// Monatomic strips the rotational degrees of freedom from a model.
func Monatomic(m Model) Model {
	m.RotDOF = 0
	m.Name = m.Name + "-monatomic"
	return m
}

// Gamma returns the ratio of specific heats implied by the model's
// degrees of freedom: (dof+2)/dof with dof = 3 + RotDOF.
func (m Model) Gamma() float64 {
	dof := float64(3 + m.RotDOF)
	return (dof + 2) / dof
}

// GFactor returns the relative-speed factor (g/g∞)^GExp of the selection
// rule, with the Maxwell fast path the paper's integer implementation
// exploits.
func (m Model) GFactor(gOverGInf float64) float64 {
	if m.GExp == 0 {
		return 1
	}
	if gOverGInf <= 0 {
		return 0
	}
	return math.Pow(gOverGInf, m.GExp)
}
