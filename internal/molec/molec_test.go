package molec

import (
	"math"
	"testing"
)

func TestMaxwellSelectionFactorIsUnity(t *testing.T) {
	m := Maxwell()
	if m.GExp != 0 {
		t.Errorf("Maxwell GExp = %v, want 0 (eq. 8: P/P∞ = n/n∞)", m.GExp)
	}
	for _, g := range []float64{0.1, 1, 10} {
		if m.GFactor(g) != 1 {
			t.Errorf("Maxwell GFactor(%v) = %v", g, m.GFactor(g))
		}
	}
}

func TestPowerLawReducesToMaxwell(t *testing.T) {
	if got := PowerLaw(4).GExp; got != 0 {
		t.Errorf("alpha=4 GExp = %v, want 0", got)
	}
}

func TestHardSphereExponent(t *testing.T) {
	if HardSphere().GExp != 1 {
		t.Errorf("hard sphere GExp = %v, want 1 (P ∝ n·g)", HardSphere().GExp)
	}
	if got := HardSphere().GFactor(2); got != 2 {
		t.Errorf("hard sphere GFactor(2) = %v", got)
	}
}

func TestVHSLimits(t *testing.T) {
	if VHS(0.5).GExp != 1 {
		t.Errorf("VHS(0.5) must be a hard sphere")
	}
	if VHS(1).GExp != 0 {
		t.Errorf("VHS(1) must be a Maxwell molecule")
	}
}

func TestVHSPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for omega out of range")
		}
	}()
	VHS(0.3)
}

func TestPowerLawPanicsBelowMaxwell(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for alpha < 4")
		}
	}()
	PowerLaw(2)
}

func TestGamma(t *testing.T) {
	if got := Maxwell().Gamma(); math.Abs(got-1.4) > 1e-12 {
		t.Errorf("diatomic gamma = %v, want 7/5", got)
	}
	if got := Monatomic(Maxwell()).Gamma(); math.Abs(got-5.0/3) > 1e-12 {
		t.Errorf("monatomic gamma = %v, want 5/3", got)
	}
}

func TestGFactorZeroSpeed(t *testing.T) {
	if HardSphere().GFactor(0) != 0 {
		t.Errorf("zero relative speed must give zero factor for g-dependent models")
	}
}

func TestGFactorFractionalAlpha(t *testing.T) {
	m := PowerLaw(8) // GExp = 1/2
	if math.Abs(m.GFactor(4)-2) > 1e-12 {
		t.Errorf("alpha=8 GFactor(4) = %v, want 2", m.GFactor(4))
	}
}
