// Package golden provides the FNV-1a state-hash machinery that pins the
// reference backends bit-for-bit: every particle column is absorbed word
// by word (IEEE-754 bits) together with the integer state (flow count,
// reservoir level, collision count, plunger/piston position). Two
// simulations hash equal if and only if their full mutable state is
// bit-identical, which is what the golden regression tests and the
// checkpoint/restore bit-identity tests assert. The hash functions are
// generic over the storage precision; the float64 instantiation absorbs
// exactly the bytes the pre-refactor test-local helpers did, so the
// recorded golden values are unchanged.
package golden

import (
	"math"

	"dsmc/internal/kernel"
	"dsmc/internal/sim"
	"dsmc/internal/sim3"
)

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// HashWord absorbs one 64-bit word into an FNV-1a state, byte by byte
// little-endian.
func HashWord(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= fnvPrime
	}
	return h
}

// hashCol absorbs a particle column: each value is widened to float64
// and its IEEE-754 bits hashed, so the float64 instantiation reproduces
// the historical hashes exactly and equal float32 states hash equal.
func hashCol[F kernel.Float](h uint64, xs []F) uint64 {
	for _, x := range xs {
		h = HashWord(h, math.Float64bits(float64(x)))
	}
	return h
}

// hashCells absorbs the int32 cell-index column.
func hashCells(h uint64, cs []int32) uint64 {
	for _, c := range cs {
		h = HashWord(h, uint64(uint32(c)))
	}
	return h
}

// HashSim2D hashes the full mutable state of a 2D wind-tunnel
// simulation: flow and reservoir counts, cumulative collisions, every
// particle column, and the cell indices.
func HashSim2D[F kernel.Float](s *sim.SimOf[F]) uint64 {
	st := s.Store()
	n := st.Len()
	h := uint64(fnvOffset)
	h = HashWord(h, uint64(s.NFlow()))
	h = HashWord(h, uint64(s.NReservoir()))
	h = HashWord(h, uint64(s.Collisions()))
	for _, col := range [][]F{st.X, st.Y, st.U, st.V, st.W, st.R1, st.R2, st.Evib} {
		h = hashCol(h, col[:n])
	}
	return hashCells(h, st.Cell[:n])
}

// HashSim3D hashes the full mutable state of a 3D shock-tube
// simulation: particle count, cumulative collisions, piston position,
// every particle column, and the cell indices.
func HashSim3D[F kernel.Float](s *sim3.SimOf[F]) uint64 {
	st := s.Store()
	n := st.Len()
	h := uint64(fnvOffset)
	h = HashWord(h, uint64(s.N()))
	h = HashWord(h, uint64(s.Collisions()))
	h = HashWord(h, math.Float64bits(s.PistonX()))
	for _, col := range [][]F{st.X, st.Y, st.Z, st.U, st.V, st.W, st.R1, st.R2} {
		h = hashCol(h, col[:n])
	}
	return hashCells(h, st.Cell[:n])
}
