// Tiling and owner-computes bit-identity: the scatter's cell-block tile
// width and the spatially-blocked (Regions) stepping mode are pure
// scheduling/cache knobs, so every combination must reproduce the exact
// recorded golden hashes — including the degenerate tiles (1 cell per
// block maximizes block count; a tile at least the cell count collapses
// to the untiled direct scatter) and worker counts past the host's core
// count. The float32 instantiations have no recorded goldens (they are
// not bit-equal to float64 by construction), so each scenario instead
// pins every knob combination to the plain shared-store single-worker
// run of the same precision.
package golden_test

import (
	"testing"

	"dsmc/internal/golden"
	"dsmc/internal/kernel"
	"dsmc/internal/sim"
	"dsmc/internal/sim3"
)

// knobGrid is the (tile, workers, regions) cross product every scenario
// must be invariant under: degenerate and odd tile widths, worker counts
// below/at/above typical core counts, both stepping modes.
var (
	knobTiles   = []int{1, 7, 64, 1 << 20}
	knobWorkers = []int{1, 4, 8}
)

func hash2D[F kernel.Float](t *testing.T, cfg sim.Config, steps int) uint64 {
	t.Helper()
	s, err := sim.NewOf[F](cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(steps)
	return golden.HashSim2D(s)
}

func hash3D[F kernel.Float](t *testing.T, cfg sim3.Config, steps int) uint64 {
	t.Helper()
	s, err := sim3.NewOf[F](cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(steps)
	return golden.HashSim3D(s)
}

// TestTiling2D: every (tile, workers, regions) combination of the 2D
// wind tunnel reproduces the recorded float64 golden, and the float32
// instantiation is invariant across the same grid.
func TestTiling2D(t *testing.T) {
	const steps = 12
	const want = 0x5fc1c3b82b975c74 // TestGolden2D/specular

	base := goldenConfig2D()
	base32 := base
	base32.Workers = 1
	want32 := hash2D[float32](t, base32, steps)

	for _, tile := range knobTiles {
		for _, workers := range knobWorkers {
			for _, regions := range []bool{false, true} {
				cfg := goldenConfig2D()
				cfg.SortTile = tile
				cfg.Workers = workers
				cfg.Regions = regions
				if got := hash2D[float64](t, cfg, steps); got != want {
					t.Errorf("float64 tile=%d workers=%d regions=%v: hash %#016x, golden %#016x",
						tile, workers, regions, got, want)
				}
				if got := hash2D[float32](t, cfg, steps); got != want32 {
					t.Errorf("float32 tile=%d workers=%d regions=%v: hash %#016x, want %#016x",
						tile, workers, regions, got, want32)
				}
			}
		}
	}
}

// TestTiling3D: likewise for the 3D shock tube (fused select style,
// piston boundary, no membership changes).
func TestTiling3D(t *testing.T) {
	const steps = 12
	const want = 0x5a415e622c33dc10 // TestGolden3D/rarefied

	base := sim3.Config{
		NX: 40, NY: 4, NZ: 4,
		Cm: 0.125, Lambda: 0.5, PistonSpeed: 0.131,
		NPerCell: 8, Seed: 99,
		Workers: 1,
	}
	want32 := hash3D[float32](t, base, steps)

	for _, tile := range knobTiles {
		for _, workers := range knobWorkers {
			for _, regions := range []bool{false, true} {
				cfg := base
				cfg.SortTile = tile
				cfg.Workers = workers
				cfg.Regions = regions
				if got := hash3D[float64](t, cfg, steps); got != want {
					t.Errorf("float64 tile=%d workers=%d regions=%v: hash %#016x, golden %#016x",
						tile, workers, regions, got, want)
				}
				if got := hash3D[float32](t, cfg, steps); got != want32 {
					t.Errorf("float32 tile=%d workers=%d regions=%v: hash %#016x, want %#016x",
						tile, workers, regions, got, want32)
				}
			}
		}
	}
}
