package golden_test

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"dsmc/internal/golden"
	"dsmc/internal/obs"
	"dsmc/internal/sim"
)

// TestGoldenWithConcurrentScrape pins the observability layer's core
// promise: recording metrics — and scraping them from another goroutine
// mid-run — perturbs nothing. The simulation steps with the default-on
// registry while a scraper hammers WriteText the whole time, and the
// final state must still hash to the recorded golden (the same value
// TestGolden2D/"specular" pins with no scraper attached). A stray clock
// read, allocation-driven scheduling change, or registry lock on the
// stepping path cannot break bit-identity by construction — the metrics
// feed off already-computed phase durations — but a regression that
// reintroduces one would likely surface here first.
func TestGoldenWithConcurrentScrape(t *testing.T) {
	const want = 0x5fc1c3b82b975c74 // TestGolden2D "specular" golden

	cfg := goldenConfig2D()
	cfg.Workers = 3
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var scrapes int
	ready := make(chan struct{}) // first scrape done; on one CPU the
	// stepping loop would otherwise finish before the scraper ever ran
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var buf bytes.Buffer
		for !stop.Load() {
			buf.Reset()
			if err := obs.Default.WriteText(&buf); err != nil {
				t.Errorf("scrape failed: %v", err)
				return
			}
			if _, err := obs.ParseText(&buf); err != nil {
				t.Errorf("scrape did not parse: %v", err)
				return
			}
			scrapes++
			if scrapes == 1 {
				close(ready)
			}
		}
	}()

	<-ready
	for i := 0; i < 12; i++ {
		s.Step()
	}
	stop.Store(true)
	wg.Wait()

	if got := golden.HashSim2D(s); got != want {
		t.Errorf("state hash %#016x under concurrent scraping, golden %#016x", got, want)
	}
	if scrapes == 0 {
		t.Error("scraper never completed a scrape")
	}
	t.Logf("%d concurrent scrapes while stepping", scrapes)
}
