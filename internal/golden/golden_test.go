// Package golden_test pins the float64 reference backends to their
// pre-refactor output: each scenario runs a short simulation and hashes
// every particle column bit-for-bit (the package's FNV-1a machinery)
// together with the integer state (flow count, reservoir level, collision
// count). The expected values were recorded from the hand-duplicated
// sim/sim3 pipelines immediately before they were collapsed onto the
// generic engine; any arithmetic re-ordering, RNG re-keying, or stream
// drift in the unified core shows up here as a one-bit difference. The
// scenarios cover every randomness-consuming path (specular and diffuse
// walls, the pluggable schemes, vibrational relaxation, 3D selection with
// and without the collide-all short-circuit) and run at several worker
// counts, so the goldens also re-prove worker-count independence.
package golden_test

import (
	"testing"

	"dsmc/internal/baseline"
	"dsmc/internal/geom"
	"dsmc/internal/golden"
	"dsmc/internal/sim"
	"dsmc/internal/sim3"
)

// goldenConfig2D is the cheap wedge configuration the 2D scenarios
// perturb (the unit tests' smallConfig, pinned here so test-helper edits
// cannot silently move the goldens).
func goldenConfig2D() sim.Config {
	cfg := sim.DefaultConfig(1)
	cfg.NX, cfg.NY = 48, 24
	cfg.Wedge = &geom.Wedge{LeadX: 10, Base: 12, Angle: 30 * 3.14159265358979323846 / 180}
	cfg.NPerCell = 6
	cfg.Seed = 7
	return cfg
}

// TestGolden2D: the unified engine must reproduce the pre-refactor 2D
// wind-tunnel results bit-for-bit, for every randomness-consuming
// configuration and any worker count.
func TestGolden2D(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*sim.Config)
		steps  int
		want   uint64
	}{
		{"specular", func(c *sim.Config) {}, 12, 0x5fc1c3b82b975c74},
		{"diffuse-vibrational", func(c *sim.Config) {
			c.Wall = geom.DiffuseState{Model: geom.DiffuseIsothermal, WallCm: c.Free.Cm}
			c.ZVib = 5
		}, 10, 0xd4634f54c0a3b959},
		{"scheme-bird", func(c *sim.Config) { c.Scheme = baseline.NewBirdTC() }, 8, 0x32454f0b3c39974d},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, workers := range []int{1, 3} {
				cfg := goldenConfig2D()
				tc.mutate(&cfg)
				cfg.Workers = workers
				s, err := sim.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				s.Run(tc.steps)
				if got := golden.HashSim2D(s); got != tc.want {
					t.Errorf("workers=%d: state hash %#016x, golden %#016x",
						workers, got, tc.want)
				}
			}
		})
	}
}

// TestGolden3D: likewise for the 3D shock tube, with the selection rule
// both active (Lambda > 0, interleaved select/collide draws) and
// short-circuited (collide-all).
func TestGolden3D(t *testing.T) {
	cases := []struct {
		name  string
		cfg   sim3.Config
		steps int
		want  uint64
	}{
		{"rarefied", sim3.Config{
			NX: 40, NY: 4, NZ: 4,
			Cm: 0.125, Lambda: 0.5, PistonSpeed: 0.131,
			NPerCell: 8, Seed: 99,
		}, 12, 0x5a415e622c33dc10},
		{"collide-all", sim3.Config{
			NX: 32, NY: 4, NZ: 4,
			Cm: 0.125, Lambda: 0, PistonSpeed: 0.131,
			NPerCell: 8, Seed: 5,
		}, 8, 0x1f27ff05c400ccde},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				cfg := tc.cfg
				cfg.Workers = workers
				s, err := sim3.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				s.Run(tc.steps)
				if got := golden.HashSim3D(s); got != tc.want {
					t.Errorf("workers=%d: state hash %#016x, golden %#016x",
						workers, got, tc.want)
				}
			}
		})
	}
}
