// Package stats provides the statistical machinery used to validate the
// simulation's velocity distributions: moments, histograms, chi-square
// goodness of fit, and Kolmogorov–Smirnov tests against the Gaussian and
// Maxwell-speed distributions the gas must relax to.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Moments summarises a sample: mean, variance (population), skewness and
// excess-free kurtosis (normal = 3).
type Moments struct {
	N        int
	Mean     float64
	Variance float64
	Skewness float64
	Kurtosis float64
}

// Measure computes the sample moments.
func Measure(xs []float64) Moments {
	m := Moments{N: len(xs)}
	if m.N == 0 {
		return m
	}
	for _, x := range xs {
		m.Mean += x
	}
	m.Mean /= float64(m.N)
	var s2, s3, s4 float64
	for _, x := range xs {
		d := x - m.Mean
		s2 += d * d
		s3 += d * d * d
		s4 += d * d * d * d
	}
	n := float64(m.N)
	m.Variance = s2 / n
	if m.Variance > 0 {
		sd := math.Sqrt(m.Variance)
		m.Skewness = s3 / n / (sd * sd * sd)
		m.Kurtosis = s4 / n / (m.Variance * m.Variance)
	}
	return m
}

// Histogram bins xs into nbins equal-width bins over [lo, hi]; values
// outside the range are clamped into the edge bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
}

// NewHistogram bins the sample.
func NewHistogram(xs []float64, lo, hi float64, nbins int) (*Histogram, error) {
	if nbins <= 0 || hi <= lo {
		return nil, errors.New("stats: invalid histogram range")
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		h.Counts[b]++
		h.Total++
	}
	return h, nil
}

// BinCenter returns the centre of bin b.
func (h *Histogram) BinCenter(b int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(b)+0.5)*w
}

// ChiSquare compares the histogram against expected bin probabilities
// given by the cdf of a reference distribution, returning the statistic
// and the degrees of freedom (bins−1). Bins with expected count < 5 are
// merged into their neighbour, the standard validity rule.
func (h *Histogram) ChiSquare(cdf func(float64) float64) (chi2 float64, dof int) {
	nbins := len(h.Counts)
	w := (h.Hi - h.Lo) / float64(nbins)
	type bin struct{ obs, exp float64 }
	var bins []bin
	for b := 0; b < nbins; b++ {
		lo := h.Lo + float64(b)*w
		hi := lo + w
		p := cdf(hi) - cdf(lo)
		if b == 0 {
			p = cdf(hi) // clamped tail
		}
		if b == nbins-1 {
			p = 1 - cdf(lo)
		}
		bins = append(bins, bin{float64(h.Counts[b]), p * float64(h.Total)})
	}
	// Merge small-expectation bins rightward.
	var merged []bin
	for _, bn := range bins {
		if len(merged) > 0 && merged[len(merged)-1].exp < 5 {
			merged[len(merged)-1].obs += bn.obs
			merged[len(merged)-1].exp += bn.exp
		} else {
			merged = append(merged, bn)
		}
	}
	// A trailing small bin merges leftward.
	if n := len(merged); n >= 2 && merged[n-1].exp < 5 {
		merged[n-2].obs += merged[n-1].obs
		merged[n-2].exp += merged[n-1].exp
		merged = merged[:n-1]
	}
	for _, bn := range merged {
		if bn.exp > 0 {
			d := bn.obs - bn.exp
			chi2 += d * d / bn.exp
		}
	}
	return chi2, len(merged) - 1
}

// ChiSquareCritical999 returns an approximate p=0.001 critical value for
// the chi-square distribution with dof degrees of freedom
// (Wilson–Hilferty approximation).
func ChiSquareCritical999(dof int) float64 {
	if dof <= 0 {
		return 0
	}
	k := float64(dof)
	z := 3.0902 // z for p = 0.001
	t := 1 - 2/(9*k) + z*math.Sqrt(2/(9*k))
	return k * t * t * t
}

// NormalCDF is the standard normal cumulative distribution.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// GaussianCDF returns the cdf of N(mean, sigma²).
func GaussianCDF(mean, sigma float64) func(float64) float64 {
	return func(x float64) float64 { return NormalCDF((x - mean) / sigma) }
}

// MaxwellSpeedCDF returns the cdf of the 3D Maxwell speed distribution
// with most probable speed cm: F(c) = erf(x) − (2/√π)·x·exp(−x²), x=c/cm.
func MaxwellSpeedCDF(cm float64) func(float64) float64 {
	return func(c float64) float64 {
		if c <= 0 {
			return 0
		}
		x := c / cm
		return math.Erf(x) - 2/math.SqrtPi*x*math.Exp(-x*x)
	}
}

// RectCDF returns the cdf of the rectangular distribution with mean 0 and
// standard deviation sigma (uniform on ±sigma·√3).
func RectCDF(sigma float64) func(float64) float64 {
	half := sigma * math.Sqrt(3)
	return func(x float64) float64 {
		switch {
		case x <= -half:
			return 0
		case x >= half:
			return 1
		default:
			return (x + half) / (2 * half)
		}
	}
}

// KolmogorovSmirnov returns the KS statistic D = sup|F_n − F| of the
// sample against the reference cdf. The sample is sorted in place.
func KolmogorovSmirnov(xs []float64, cdf func(float64) float64) float64 {
	sort.Float64s(xs)
	n := float64(len(xs))
	var d float64
	for i, x := range xs {
		f := cdf(x)
		if hi := float64(i+1)/n - f; hi > d {
			d = hi
		}
		if lo := f - float64(i)/n; lo > d {
			d = lo
		}
	}
	return d
}

// KSCritical999 returns the asymptotic p=0.001 KS critical value for a
// sample of size n: 1.95/√n.
func KSCritical999(n int) float64 { return 1.95 / math.Sqrt(float64(n)) }

// Autocorrelation returns the lag-k autocorrelation of the series.
func Autocorrelation(xs []float64, k int) float64 {
	n := len(xs)
	if k >= n || k < 0 {
		return 0
	}
	m := Measure(xs)
	if m.Variance == 0 {
		return 0
	}
	var acc float64
	for i := 0; i+k < n; i++ {
		acc += (xs[i] - m.Mean) * (xs[i+k] - m.Mean)
	}
	return acc / float64(n-k) / m.Variance
}

// PairCorrelation returns the Pearson correlation of paired samples.
func PairCorrelation(xs, ys []float64) float64 {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return 0
	}
	mx, my := Measure(xs), Measure(ys)
	if mx.Variance == 0 || my.Variance == 0 {
		return 0
	}
	var acc float64
	for i := range xs {
		acc += (xs[i] - mx.Mean) * (ys[i] - my.Mean)
	}
	return acc / float64(n) / math.Sqrt(mx.Variance*my.Variance)
}
