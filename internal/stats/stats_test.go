package stats

import (
	"math"
	"testing"

	"dsmc/internal/rng"
)

func gaussianSample(n int, mean, sigma float64, seed uint64) []float64 {
	r := rng.NewStream(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Gaussian(mean, sigma)
	}
	return xs
}

func TestMeasureMoments(t *testing.T) {
	xs := gaussianSample(200000, 2, 0.5, 1)
	m := Measure(xs)
	if math.Abs(m.Mean-2) > 0.01 {
		t.Errorf("mean %v", m.Mean)
	}
	if math.Abs(m.Variance-0.25) > 0.005 {
		t.Errorf("variance %v", m.Variance)
	}
	if math.Abs(m.Skewness) > 0.02 {
		t.Errorf("skewness %v", m.Skewness)
	}
	if math.Abs(m.Kurtosis-3) > 0.05 {
		t.Errorf("kurtosis %v", m.Kurtosis)
	}
}

func TestMeasureEmptyAndConstant(t *testing.T) {
	if m := Measure(nil); m.N != 0 || m.Mean != 0 {
		t.Errorf("empty sample: %+v", m)
	}
	m := Measure([]float64{3, 3, 3})
	if m.Variance != 0 || m.Kurtosis != 0 {
		t.Errorf("constant sample must have zero variance and defined kurtosis: %+v", m)
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram([]float64{-10, 0.1, 0.1, 0.9, 10}, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] != 3 || h.Counts[1] != 2 {
		t.Errorf("counts %v (outliers clamp to edge bins)", h.Counts)
	}
	if h.Total != 5 {
		t.Errorf("total %d", h.Total)
	}
	if c := h.BinCenter(0); math.Abs(c-0.25) > 1e-12 {
		t.Errorf("bin centre %v", c)
	}
	if _, err := NewHistogram(nil, 1, 0, 4); err == nil {
		t.Errorf("inverted range must error")
	}
}

func TestChiSquareAcceptsMatchingDistribution(t *testing.T) {
	xs := gaussianSample(50000, 0, 1, 1)
	h, _ := NewHistogram(xs, -4, 4, 40)
	chi2, dof := h.ChiSquare(GaussianCDF(0, 1))
	// Accept generously (1.5× the p=0.001 critical value): the test guards
	// against gross mismatch, not generator-quality subtleties.
	if chi2 > 1.5*ChiSquareCritical999(dof) {
		t.Errorf("chi2 %v exceeds p=0.001 critical %v (dof %d)", chi2, ChiSquareCritical999(dof), dof)
	}
}

func TestChiSquareRejectsWrongDistribution(t *testing.T) {
	r := rng.NewStream(3)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = r.Rect(1) // rectangular, not Gaussian
	}
	h, _ := NewHistogram(xs, -4, 4, 40)
	chi2, dof := h.ChiSquare(GaussianCDF(0, 1))
	if chi2 < 5*ChiSquareCritical999(dof) {
		t.Errorf("chi2 %v should grossly exceed the critical value", chi2)
	}
}

func TestChiSquareCritical999(t *testing.T) {
	// Known values: dof=10 → 29.59, dof=30 → 59.70.
	if got := ChiSquareCritical999(10); math.Abs(got-29.59) > 0.5 {
		t.Errorf("critical(10) = %v", got)
	}
	if got := ChiSquareCritical999(30); math.Abs(got-59.70) > 0.8 {
		t.Errorf("critical(30) = %v", got)
	}
	if ChiSquareCritical999(0) != 0 {
		t.Errorf("dof 0")
	}
}

func TestNormalCDF(t *testing.T) {
	cases := map[float64]float64{0: 0.5, 1.96: 0.975, -1.96: 0.025}
	for x, want := range cases {
		if got := NormalCDF(x); math.Abs(got-want) > 1e-3 {
			t.Errorf("Phi(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestMaxwellSpeedCDF(t *testing.T) {
	cdf := MaxwellSpeedCDF(1)
	if cdf(0) != 0 {
		t.Errorf("F(0) must be 0")
	}
	if got := cdf(10); math.Abs(got-1) > 1e-9 {
		t.Errorf("F(inf) = %v", got)
	}
	// Median of the Maxwell speed distribution is ≈ 1.0876·cm.
	if got := cdf(1.0876); math.Abs(got-0.5) > 1e-3 {
		t.Errorf("F(median) = %v", got)
	}
	// Monotone.
	prev := -1.0
	for c := 0.0; c < 5; c += 0.1 {
		if v := cdf(c); v < prev {
			t.Fatalf("cdf not monotone at %v", c)
		} else {
			prev = v
		}
	}
}

func TestKolmogorovSmirnovAccepts(t *testing.T) {
	xs := gaussianSample(20000, 0, 1, 4)
	d := KolmogorovSmirnov(xs, GaussianCDF(0, 1))
	if d > KSCritical999(len(xs)) {
		t.Errorf("KS %v exceeds critical %v", d, KSCritical999(len(xs)))
	}
}

func TestKolmogorovSmirnovRejects(t *testing.T) {
	xs := gaussianSample(20000, 0.3, 1, 5) // shifted mean
	d := KolmogorovSmirnov(xs, GaussianCDF(0, 1))
	if d < 2*KSCritical999(len(xs)) {
		t.Errorf("KS %v should reject the shifted sample", d)
	}
}

func TestKSAgainstMaxwellSpeeds(t *testing.T) {
	// Speeds of 3D Gaussian velocities follow the Maxwell distribution.
	r := rng.NewStream(6)
	const cm = 0.8
	sigma := cm / math.Sqrt2
	xs := make([]float64, 30000)
	for i := range xs {
		u, v, w := r.Gaussian(0, sigma), r.Gaussian(0, sigma), r.Gaussian(0, sigma)
		xs[i] = math.Sqrt(u*u + v*v + w*w)
	}
	d := KolmogorovSmirnov(xs, MaxwellSpeedCDF(cm))
	if d > KSCritical999(len(xs)) {
		t.Errorf("Maxwell speed KS %v exceeds critical %v", d, KSCritical999(len(xs)))
	}
}

func TestRectCDF(t *testing.T) {
	cdf := RectCDF(1)
	half := math.Sqrt(3)
	if cdf(-half-1) != 0 || cdf(half+1) != 1 {
		t.Errorf("tails wrong")
	}
	if math.Abs(cdf(0)-0.5) > 1e-12 {
		t.Errorf("median wrong")
	}
}

func TestAutocorrelation(t *testing.T) {
	// A deterministic alternating series has lag-1 autocorrelation −1.
	xs := []float64{1, -1, 1, -1, 1, -1, 1, -1}
	if got := Autocorrelation(xs, 1); math.Abs(got+1) > 0.01 {
		t.Errorf("lag-1 of alternating series = %v", got)
	}
	// White noise decorrelates.
	noise := gaussianSample(50000, 0, 1, 7)
	if got := Autocorrelation(noise, 3); math.Abs(got) > 0.02 {
		t.Errorf("noise lag-3 = %v", got)
	}
	if Autocorrelation(xs, 100) != 0 || Autocorrelation(xs, -1) != 0 {
		t.Errorf("out-of-range lags must return 0")
	}
}

func TestPairCorrelation(t *testing.T) {
	xs := gaussianSample(20000, 0, 1, 8)
	ys := make([]float64, len(xs))
	copy(ys, xs)
	if got := PairCorrelation(xs, ys); math.Abs(got-1) > 1e-9 {
		t.Errorf("identical series correlation = %v", got)
	}
	ys = gaussianSample(20000, 0, 1, 9)
	if got := PairCorrelation(xs, ys); math.Abs(got) > 0.03 {
		t.Errorf("independent series correlation = %v", got)
	}
	if PairCorrelation(xs, ys[:5]) != 0 {
		t.Errorf("mismatched lengths must return 0")
	}
}
