// Package grid implements the rectangular grid of small, geometrically
// simple and similar cells that the selection of collision partners
// requires: square cells of unit width, a distinct integer index per cell,
// and — for cells divided by the wedge — the fractional cell volume the
// paper applies both in the selection rule and in the time-averaged cell
// density.
package grid

import (
	"math"

	"dsmc/internal/geom"
)

// Grid is an NX×NY arrangement of unit square cells covering
// [0,NX]×[0,NY].
type Grid struct {
	NX, NY int
}

// New returns a grid; dimensions must be positive.
func New(nx, ny int) Grid {
	if nx <= 0 || ny <= 0 {
		panic("grid: dimensions must be positive")
	}
	return Grid{NX: nx, NY: ny}
}

// Cells returns the total cell count.
func (g Grid) Cells() int { return g.NX * g.NY }

// Index returns the distinct cell index of cell (ix, iy).
func (g Grid) Index(ix, iy int) int { return iy*g.NX + ix }

// Coords inverts Index.
func (g Grid) Coords(idx int) (ix, iy int) { return idx % g.NX, idx / g.NX }

// CellOf returns the index of the cell containing position (x, y),
// clamping positions on or beyond the domain edge into the boundary cell
// (boundary conditions have already been enforced when this is called;
// the clamp only guards against exact-edge coordinates).
func (g Grid) CellOf(x, y float64) int {
	ix := int(math.Floor(x))
	iy := int(math.Floor(y))
	if ix < 0 {
		ix = 0
	}
	if ix >= g.NX {
		ix = g.NX - 1
	}
	if iy < 0 {
		iy = 0
	}
	if iy >= g.NY {
		iy = g.NY - 1
	}
	return g.Index(ix, iy)
}

// Center returns the center of cell idx.
func (g Grid) Center(idx int) (x, y float64) {
	ix, iy := g.Coords(idx)
	return float64(ix) + 0.5, float64(iy) + 0.5
}

// Volumes returns the gas-accessible volume (area, in 2D) of every cell:
// 1 for free cells, the fractional volume for cells divided by a wedge,
// and 0 for cells entirely inside a body. The paper notes this special
// allowance is needed wherever the rectangular grid cuts the smooth wedge
// surface. Multiple (disjoint) wedges each subtract their own overlap;
// nil entries are skipped, so the historical single-wedge call sites are
// unchanged.
func (g Grid) Volumes(ws ...*geom.Wedge) []float64 {
	vols := make([]float64, g.Cells())
	for i := range vols {
		vols[i] = 1
	}
	for _, w := range ws {
		if w == nil {
			continue
		}
		tri := w.Vertices()
		poly := []geom.Vec2{tri[0], tri[1], tri[2]}
		// Only cells overlapping the wedge's bounding box need clipping.
		ix0 := int(math.Floor(w.LeadX))
		ix1 := int(math.Ceil(w.TrailX()))
		iy1 := int(math.Ceil(w.Height()))
		for iy := 0; iy < iy1 && iy < g.NY; iy++ {
			for ix := ix0; ix < ix1 && ix < g.NX; ix++ {
				if ix < 0 || iy < 0 {
					continue
				}
				cell := []geom.Vec2{
					{X: float64(ix), Y: float64(iy)},
					{X: float64(ix + 1), Y: float64(iy)},
					{X: float64(ix + 1), Y: float64(iy + 1)},
					{X: float64(ix), Y: float64(iy + 1)},
				}
				overlap := PolyArea(ClipPolygon(cell, poly))
				v := vols[g.Index(ix, iy)] - overlap
				if v < 0 {
					v = 0
				}
				vols[g.Index(ix, iy)] = v
			}
		}
	}
	return vols
}

// ClipPolygon clips subject against a convex clip polygon (CCW order)
// using the Sutherland–Hodgman algorithm and returns the intersection
// polygon (possibly empty).
func ClipPolygon(subject, clip []geom.Vec2) []geom.Vec2 {
	out := append([]geom.Vec2(nil), subject...)
	n := len(clip)
	for i := 0; i < n && len(out) > 0; i++ {
		a, b := clip[i], clip[(i+1)%n]
		out = clipHalfPlane(out, a, b)
	}
	return out
}

// clipHalfPlane keeps the part of poly on the left of directed edge a→b.
func clipHalfPlane(poly []geom.Vec2, a, b geom.Vec2) []geom.Vec2 {
	side := func(p geom.Vec2) float64 {
		return (b.X-a.X)*(p.Y-a.Y) - (b.Y-a.Y)*(p.X-a.X)
	}
	var out []geom.Vec2
	n := len(poly)
	for i := 0; i < n; i++ {
		cur, next := poly[i], poly[(i+1)%n]
		sc, sn := side(cur), side(next)
		if sc >= 0 {
			out = append(out, cur)
		}
		if (sc > 0 && sn < 0) || (sc < 0 && sn > 0) {
			t := sc / (sc - sn)
			out = append(out, geom.Vec2{
				X: cur.X + t*(next.X-cur.X),
				Y: cur.Y + t*(next.Y-cur.Y),
			})
		}
	}
	return out
}

// PolyArea returns the unsigned area of a simple polygon (shoelace).
func PolyArea(poly []geom.Vec2) float64 {
	if len(poly) < 3 {
		return 0
	}
	var s float64
	n := len(poly)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		s += poly[i].X*poly[j].Y - poly[j].X*poly[i].Y
	}
	return math.Abs(s) / 2
}
