package grid

import (
	"math"
	"testing"
	"testing/quick"

	"dsmc/internal/geom"
)

const deg = math.Pi / 180

func TestIndexCoordsRoundTrip(t *testing.T) {
	g := New(98, 64)
	f := func(ix, iy uint16) bool {
		x, y := int(ix)%98, int(iy)%64
		gx, gy := g.Coords(g.Index(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCellOf(t *testing.T) {
	g := New(10, 10)
	if g.CellOf(0.5, 0.5) != 0 {
		t.Errorf("origin cell")
	}
	if g.CellOf(9.5, 9.5) != 99 {
		t.Errorf("far corner cell")
	}
	if g.CellOf(3.999, 7.001) != g.Index(3, 7) {
		t.Errorf("interior cell")
	}
	// Edge clamping.
	if g.CellOf(10.0, 5.0) != g.Index(9, 5) {
		t.Errorf("x edge clamp")
	}
	if g.CellOf(-0.001, 5.0) != g.Index(0, 5) {
		t.Errorf("negative x clamp")
	}
	if g.CellOf(5.0, 10.0) != g.Index(5, 9) {
		t.Errorf("y edge clamp")
	}
}

func TestCenter(t *testing.T) {
	g := New(10, 10)
	x, y := g.Center(g.Index(3, 7))
	if x != 3.5 || y != 7.5 {
		t.Errorf("Center = %v,%v", x, y)
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	New(0, 5)
}

func TestPolyArea(t *testing.T) {
	square := []geom.Vec2{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 2}, {X: 0, Y: 2}}
	if got := PolyArea(square); math.Abs(got-4) > 1e-12 {
		t.Errorf("square area = %v", got)
	}
	tri := []geom.Vec2{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}}
	if got := PolyArea(tri); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("triangle area = %v", got)
	}
	if PolyArea(tri[:2]) != 0 {
		t.Errorf("degenerate polygon has zero area")
	}
}

func TestClipPolygonFullContainment(t *testing.T) {
	inner := []geom.Vec2{{X: 0.25, Y: 0.25}, {X: 0.75, Y: 0.25}, {X: 0.75, Y: 0.75}, {X: 0.25, Y: 0.75}}
	outer := []geom.Vec2{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}}
	got := PolyArea(ClipPolygon(inner, outer))
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("contained polygon must be unchanged, area %v", got)
	}
}

func TestClipPolygonDisjoint(t *testing.T) {
	a := []geom.Vec2{{X: 5, Y: 5}, {X: 6, Y: 5}, {X: 6, Y: 6}, {X: 5, Y: 6}}
	b := []geom.Vec2{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}}
	if got := PolyArea(ClipPolygon(a, b)); got != 0 {
		t.Errorf("disjoint polygons must clip to nothing, area %v", got)
	}
}

func TestClipPolygonHalfOverlap(t *testing.T) {
	a := []geom.Vec2{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}}
	b := []geom.Vec2{{X: 0.5, Y: 0}, {X: 1.5, Y: 0}, {X: 1.5, Y: 1}, {X: 0.5, Y: 1}}
	if got := PolyArea(ClipPolygon(a, b)); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("half overlap area = %v", got)
	}
}

func paperWedge() *geom.Wedge { return &geom.Wedge{LeadX: 20, Base: 25, Angle: 30 * deg} }

func TestVolumesNoWedge(t *testing.T) {
	g := New(8, 8)
	for _, v := range g.Volumes(nil) {
		if v != 1 {
			t.Fatalf("free cell volume must be 1")
		}
	}
}

func TestVolumesWithWedge(t *testing.T) {
	g := New(98, 64)
	w := paperWedge()
	vols := g.Volumes(w)
	// Total removed volume equals the wedge area: base·height/2.
	var removed float64
	for _, v := range vols {
		removed += 1 - v
	}
	wantArea := 25 * w.Height() / 2
	if math.Abs(removed-wantArea) > 1e-6 {
		t.Errorf("removed volume %v, wedge area %v", removed, wantArea)
	}
	// A cell fully inside the wedge near the back has zero volume.
	if v := vols[g.Index(43, 2)]; v != 0 {
		t.Errorf("deep interior cell volume = %v, want 0", v)
	}
	// A cell upstream of the wedge is free.
	if v := vols[g.Index(5, 5)]; v != 1 {
		t.Errorf("free cell volume = %v", v)
	}
	// A cell straddling the ramp has a strictly fractional volume.
	midX := 30
	surfY := int((30.5 - 20) * math.Tan(30*deg))
	v := vols[g.Index(midX, surfY)]
	if v <= 0 || v >= 1 {
		t.Errorf("ramp-cut cell volume = %v, want fractional", v)
	}
	// All volumes in [0, 1].
	for i, v := range vols {
		if v < 0 || v > 1 {
			t.Fatalf("cell %d volume %v out of range", i, v)
		}
	}
}

// TestVolumesConsistentWithContains cross-checks the clipper against Monte
// Carlo point sampling for a band of cut cells.
func TestVolumesConsistentWithContains(t *testing.T) {
	g := New(98, 64)
	w := paperWedge()
	vols := g.Volumes(w)
	for _, cell := range []struct{ ix, iy int }{{25, 3}, {35, 8}, {44, 13}, {21, 0}} {
		idx := g.Index(cell.ix, cell.iy)
		const samples = 40000
		inside := 0
		// Deterministic low-discrepancy sampling is enough here.
		for i := 0; i < samples; i++ {
			fx := float64(i%200)/200 + 1.0/400
			fy := float64(i/200)/200 + 1.0/400
			p := geom.Vec2{X: float64(cell.ix) + fx, Y: float64(cell.iy) + fy}
			if w.Contains(p) {
				inside++
			}
		}
		mc := 1 - float64(inside)/samples
		if math.Abs(mc-vols[idx]) > 0.02 {
			t.Errorf("cell (%d,%d): clipped volume %v, sampled %v", cell.ix, cell.iy, vols[idx], mc)
		}
	}
}
