// Package ckpt is the compact binary checkpoint format of the reference
// backends: the full mutable engine state — particle store columns in
// either storage precision, reservoir contents, serial RNG stream state,
// sample accumulators, and the step/collision counters that key the RNG
// epoch — such that restoring into a freshly constructed simulation of
// the same configuration and continuing is bit-identical to never having
// stopped, at any worker count (the per-phase randomness is counter-
// based, so no worker-local state needs to survive).
//
// The format is a fixed header (magic, version, kind, precision, cell
// count), a sequence of sections written through the primitive codecs
// below, and an FNV-1a trailer over every payload byte; the reader
// recomputes the checksum as it consumes the stream and Close fails on
// any corruption. All words are little-endian. Floats are stored at
// their native storage precision (float32 columns cost 4 bytes per
// value), so a checkpoint is approximately the size of the live store.
//
// Layering: this package owns the encoding and the codecs for the shared
// containers (store, reservoir, stream, accumulator, engine counters);
// each backend composes them with its own domain scalars — see
// sim.WriteCheckpoint and sim3.WriteCheckpoint — and internal/run adds
// job-progress sections around a backend checkpoint to make whole
// ensemble jobs resumable.
package ckpt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"math"

	"dsmc/internal/collide"
	"dsmc/internal/engine"
	"dsmc/internal/kernel"
	"dsmc/internal/particle"
	"dsmc/internal/rng"
	"dsmc/internal/sample"
)

// Magic identifies a dsmc checkpoint stream ("DSMCCKPT").
const Magic uint64 = 0x44534d43434b5054

// Version is the current format version; readers reject others.
// Version 2 added the Σw moment column to the accumulator section (the
// multi-quantity sampling redesign).
const Version uint32 = 2

// Kind tags the simulation family a checkpoint belongs to.
type Kind uint8

// Checkpoint kinds.
const (
	// Kind2D is the wind-tunnel (internal/sim) state.
	Kind2D Kind = 1
	// Kind3D is the shock-tube (internal/sim3) state.
	Kind3D Kind = 2
	// KindJob is an orchestration job: progress counters and a sample
	// accumulator wrapped around a backend checkpoint (internal/run).
	KindJob Kind = 3
)

// Prec tags the storage precision of the checkpointed columns.
type Prec uint8

// Column precisions.
const (
	PrecF64 Prec = 1
	PrecF32 Prec = 2
)

// PrecOf returns the precision tag of the instantiation F.
func PrecOf[F kernel.Float]() Prec {
	var z F
	if _, ok := any(z).(float32); ok {
		return PrecF32
	}
	return PrecF64
}

// TrailerSize is the checksum trailer's byte length.
const TrailerSize = 8

// VerifyTrailer reports whether a complete checkpoint byte stream is
// internally consistent: its FNV-1a checksum over everything but the
// trailer matches the trailer. Callers that must not partially apply a
// corrupt checkpoint (the job resume path) verify the whole buffer
// before handing it to a Reader.
func VerifyTrailer(data []byte) bool {
	if len(data) < TrailerSize {
		return false
	}
	h := fnv.New64a()
	h.Write(data[:len(data)-TrailerSize])
	return h.Sum64() == binary.LittleEndian.Uint64(data[len(data)-TrailerSize:])
}

// Writer encodes a checkpoint stream. Errors are sticky: the first I/O
// failure is remembered and returned by Close, so section writers can
// stream without per-call checks.
type Writer struct {
	w    *bufio.Writer
	sum  hash.Hash64
	err  error
	buf  [8]byte
	kind Kind
	prec Prec
}

// NewWriter writes the header (magic, version, kind, precision, cells)
// and returns a writer positioned at the first section. cells pins the
// grid size so a checkpoint cannot be restored into a differently
// shaped simulation.
func NewWriter(w io.Writer, kind Kind, prec Prec, cells int) *Writer {
	cw := &Writer{w: bufio.NewWriterSize(w, 1<<16), sum: fnv.New64a(), kind: kind, prec: prec}
	cw.U64(Magic)
	cw.U64(uint64(Version))
	cw.U64(uint64(kind))
	cw.U64(uint64(prec))
	cw.U64(uint64(cells))
	return cw
}

func (w *Writer) word(v uint64) {
	if w.err != nil {
		return
	}
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.sum.Write(w.buf[:])
	_, w.err = w.w.Write(w.buf[:])
}

func (w *Writer) word32(v uint32) {
	if w.err != nil {
		return
	}
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.sum.Write(w.buf[:4])
	_, w.err = w.w.Write(w.buf[:4])
}

// U64 writes one unsigned word.
func (w *Writer) U64(v uint64) { w.word(v) }

// I64 writes one signed word.
func (w *Writer) I64(v int64) { w.word(uint64(v)) }

// F64 writes one float64 by IEEE-754 bits.
func (w *Writer) F64(v float64) { w.word(math.Float64bits(v)) }

// Bool writes a boolean as one word.
func (w *Writer) Bool(v bool) {
	var u uint64
	if v {
		u = 1
	}
	w.word(u)
}

// I32s writes an int32 slice (length-prefixed).
func (w *Writer) I32s(xs []int32) {
	w.U64(uint64(len(xs)))
	for _, x := range xs {
		w.word32(uint32(x))
	}
}

// F64s writes a float64 slice (length-prefixed).
func (w *Writer) F64s(xs []float64) {
	w.U64(uint64(len(xs)))
	for _, x := range xs {
		w.word(math.Float64bits(x))
	}
}

// Floats writes a column at its native storage precision
// (length-prefixed): float32 values cost 4 bytes, float64 values 8.
func Floats[F kernel.Float](w *Writer, xs []F) {
	w.U64(uint64(len(xs)))
	if PrecOf[F]() == PrecF32 {
		for _, x := range xs {
			w.word32(math.Float32bits(float32(x)))
		}
		return
	}
	for _, x := range xs {
		w.word(math.Float64bits(float64(x)))
	}
}

// Close writes the checksum trailer and flushes. It returns the first
// error of the whole write sequence.
func (w *Writer) Close() error {
	sum := w.sum.Sum64() // the trailer itself is not part of the checksum
	w.word(sum)
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader decodes a checkpoint stream, verifying the header eagerly and
// the checksum trailer at Close. Errors are sticky.
type Reader struct {
	r     *bufio.Reader
	sum   hash.Hash64
	err   error
	buf   [8]byte
	kind  Kind
	prec  Prec
	cells int
}

// ErrVersion reports a checkpoint written by a different format version.
// Callers with a cheap recompute path (the job resume) treat it like
// corruption — discard and start fresh — instead of failing hard.
var ErrVersion = errors.New("ckpt: unsupported format version")

// NewReader consumes and validates the header. The caller checks Kind,
// Precision and Cells against the simulation it is restoring into.
func NewReader(r io.Reader) (*Reader, error) {
	cr := &Reader{r: bufio.NewReaderSize(r, 1<<16), sum: fnv.New64a()}
	if m := cr.U64(); m != Magic {
		return nil, fmt.Errorf("ckpt: bad magic %#016x", m)
	}
	if v := cr.U64(); v != uint64(Version) {
		return nil, fmt.Errorf("%w: %d (want %d)", ErrVersion, v, Version)
	}
	cr.kind = Kind(cr.U64())
	cr.prec = Prec(cr.U64())
	cr.cells = int(cr.U64())
	if cr.err != nil {
		return nil, cr.err
	}
	return cr, nil
}

// Kind returns the header's simulation family tag.
func (r *Reader) Kind() Kind { return r.kind }

// Precision returns the header's storage-precision tag.
func (r *Reader) Precision() Prec { return r.prec }

// Cells returns the header's grid cell count.
func (r *Reader) Cells() int { return r.cells }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) word() uint64 {
	if r.err != nil {
		return 0
	}
	if _, r.err = io.ReadFull(r.r, r.buf[:]); r.err != nil {
		return 0
	}
	r.sum.Write(r.buf[:])
	return binary.LittleEndian.Uint64(r.buf[:])
}

func (r *Reader) word32() uint32 {
	if r.err != nil {
		return 0
	}
	if _, r.err = io.ReadFull(r.r, r.buf[:4]); r.err != nil {
		return 0
	}
	r.sum.Write(r.buf[:4])
	return binary.LittleEndian.Uint32(r.buf[:4])
}

// U64 reads one unsigned word.
func (r *Reader) U64() uint64 { return r.word() }

// I64 reads one signed word.
func (r *Reader) I64() int64 { return int64(r.word()) }

// F64 reads one float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.word()) }

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.word() != 0 }

// lenInto validates a length prefix against a destination capacity.
func (r *Reader) lenInto(what string, capacity int) int {
	n := int(r.U64())
	if r.err == nil && (n < 0 || n > capacity) {
		r.err = fmt.Errorf("ckpt: %s length %d exceeds capacity %d", what, n, capacity)
	}
	if r.err != nil {
		return 0
	}
	return n
}

// I32s reads an int32 slice into dst, returning the element count.
func (r *Reader) I32s(dst []int32) int {
	n := r.lenInto("int32 column", len(dst))
	for i := 0; i < n; i++ {
		dst[i] = int32(r.word32())
	}
	return n
}

// F64s reads a float64 slice into dst, returning the element count.
func (r *Reader) F64s(dst []float64) int {
	n := r.lenInto("float64 column", len(dst))
	for i := 0; i < n; i++ {
		dst[i] = math.Float64frombits(r.word())
	}
	return n
}

// ReadFloats reads a column written by Floats into dst (which must be at
// least as long as the stored column), returning the element count.
func ReadFloats[F kernel.Float](r *Reader, dst []F) int {
	n := r.lenInto("float column", len(dst))
	if PrecOf[F]() == PrecF32 {
		for i := 0; i < n; i++ {
			dst[i] = F(math.Float32frombits(r.word32()))
		}
		return n
	}
	for i := 0; i < n; i++ {
		dst[i] = F(math.Float64frombits(r.word()))
	}
	return n
}

// Close consumes the checksum trailer and verifies it against the bytes
// read. A checkpoint truncated or corrupted anywhere fails here (or
// earlier, on a structural error).
func (r *Reader) Close() error {
	want := r.sum.Sum64() // trailer excluded from the checksum, mirror the writer
	got := r.word()
	if r.err != nil {
		return r.err
	}
	if got != want {
		return fmt.Errorf("ckpt: checksum mismatch: stored %#016x, computed %#016x", got, want)
	}
	return nil
}

// ErrShape reports a checkpoint/simulation shape mismatch.
var ErrShape = errors.New("ckpt: checkpoint does not match the simulation shape")

// CheckShape validates a reader's header against the restoring
// simulation's kind, precision and cell count.
func CheckShape(r *Reader, kind Kind, prec Prec, cells int) error {
	if r.Kind() != kind {
		return fmt.Errorf("%w: kind %d, simulation wants %d", ErrShape, r.Kind(), kind)
	}
	if r.Precision() != prec {
		return fmt.Errorf("%w: precision %d, simulation wants %d", ErrShape, r.Precision(), prec)
	}
	if r.Cells() != cells {
		return fmt.Errorf("%w: %d cells, simulation has %d", ErrShape, r.Cells(), cells)
	}
	return nil
}

// WriteStore writes the live particle columns: count, every float column
// at storage precision (Z only for 3D stores), and the cell indices.
func WriteStore[F kernel.Float](w *Writer, st *particle.Store[F]) {
	n := st.Len()
	w.U64(uint64(n))
	w.Bool(st.Z != nil)
	Floats(w, st.X[:n])
	Floats(w, st.Y[:n])
	if st.Z != nil {
		Floats(w, st.Z[:n])
	}
	Floats(w, st.U[:n])
	Floats(w, st.V[:n])
	Floats(w, st.W[:n])
	Floats(w, st.R1[:n])
	Floats(w, st.R2[:n])
	Floats(w, st.Evib[:n])
	w.I32s(st.Cell[:n])
}

// ReadStore restores a store written by WriteStore into st, which must
// have the same dimensionality and sufficient capacity (both hold for a
// store built from the checkpointed configuration).
func ReadStore[F kernel.Float](r *Reader, st *particle.Store[F]) error {
	n := int(r.U64())
	if r.Err() != nil {
		return r.Err()
	}
	if n > st.Cap() {
		return fmt.Errorf("%w: %d particles, store capacity %d", ErrShape, n, st.Cap())
	}
	threeD := r.Bool()
	if threeD != (st.Z != nil) {
		return fmt.Errorf("%w: dimensionality differs (checkpoint 3D=%v)", ErrShape, threeD)
	}
	ReadFloats(r, st.X[:n])
	ReadFloats(r, st.Y[:n])
	if threeD {
		ReadFloats(r, st.Z[:n])
	}
	ReadFloats(r, st.U[:n])
	ReadFloats(r, st.V[:n])
	ReadFloats(r, st.W[:n])
	ReadFloats(r, st.R1[:n])
	ReadFloats(r, st.R2[:n])
	ReadFloats(r, st.Evib[:n])
	r.I32s(st.Cell[:n])
	if r.Err() != nil {
		return r.Err()
	}
	st.SetLen(n)
	return nil
}

// WriteEngine writes the engine counters that key the RNG epoch (step,
// cumulative collisions) followed by the live store. Phase wall-times
// are diagnostics and not part of the state.
func WriteEngine[F kernel.Float](w *Writer, e *engine.Engine[F]) {
	w.U64(uint64(e.StepCount()))
	w.I64(e.Collisions())
	WriteStore(w, e.Store())
}

// ReadEngine restores the counters and store written by WriteEngine.
func ReadEngine[F kernel.Float](r *Reader, e *engine.Engine[F]) error {
	step := int(r.U64())
	collisions := r.I64()
	if err := ReadStore(r, e.Store()); err != nil {
		return err
	}
	e.RestoreCounters(step, collisions)
	return nil
}

// WriteReservoir writes the banked thermal-frame velocities.
func WriteReservoir(w *Writer, rv *particle.Reservoir) {
	vels := rv.Snapshot()
	w.U64(uint64(len(vels)))
	for i := range vels {
		for k := 0; k < 5; k++ {
			w.F64(vels[i][k])
		}
	}
}

// ReadReservoir restores a reservoir written by WriteReservoir.
func ReadReservoir(r *Reader, rv *particle.Reservoir) error {
	n := int(r.U64())
	if r.Err() != nil {
		return r.Err()
	}
	const maxReservoir = 1 << 30 // structural sanity bound before allocating
	if n < 0 || n > maxReservoir {
		return fmt.Errorf("ckpt: implausible reservoir size %d", n)
	}
	vels := make([]collide.State5, n)
	for i := range vels {
		for k := 0; k < 5; k++ {
			vels[i][k] = r.F64()
		}
	}
	if r.Err() != nil {
		return r.Err()
	}
	return rv.Restore(vels)
}

// WriteStream writes a serial RNG stream's state.
func WriteStream(w *Writer, st rng.StreamState) {
	w.U64(st.S)
	w.F64(st.Spare)
	w.Bool(st.HaveSpare)
}

// ReadStream restores a stream state written by WriteStream.
func ReadStream(r *Reader) rng.StreamState {
	return rng.StreamState{S: r.U64(), Spare: r.F64(), HaveSpare: r.Bool()}
}

// WriteAccumulator writes a sample accumulator's step count and moment
// columns.
func WriteAccumulator(w *Writer, a *sample.Accumulator) {
	count, momX, momY, momZ, enrg := a.Raw()
	w.U64(uint64(a.Steps))
	w.F64s(count)
	w.F64s(momX)
	w.F64s(momY)
	w.F64s(momZ)
	w.F64s(enrg)
}

// ReadAccumulator restores an accumulator written by WriteAccumulator.
// The accumulator must cover the same grid (equal column lengths).
func ReadAccumulator(r *Reader, a *sample.Accumulator) error {
	count, momX, momY, momZ, enrg := a.Raw()
	steps := int(r.U64())
	for _, col := range [][]float64{count, momX, momY, momZ, enrg} {
		if n := r.F64s(col); r.Err() == nil && n != len(col) {
			return fmt.Errorf("%w: accumulator column length %d, grid wants %d", ErrShape, n, len(col))
		}
	}
	if r.Err() != nil {
		return r.Err()
	}
	a.Steps = steps
	return nil
}
