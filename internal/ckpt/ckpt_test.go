package ckpt_test

import (
	"bytes"
	"strings"
	"testing"

	"dsmc/internal/ckpt"
	"dsmc/internal/geom"
	"dsmc/internal/golden"
	"dsmc/internal/grid"
	"dsmc/internal/kernel"
	"dsmc/internal/sample"
	"dsmc/internal/sim"
	"dsmc/internal/sim3"
)

func config2D() sim.Config {
	cfg := sim.DefaultConfig(1)
	cfg.NX, cfg.NY = 48, 24
	cfg.Wedge = &geom.Wedge{LeadX: 10, Base: 12, Angle: 30 * 3.14159265358979323846 / 180}
	cfg.NPerCell = 4
	cfg.Seed = 7
	return cfg
}

func config3D() sim3.Config {
	return sim3.Config{
		NX: 40, NY: 4, NZ: 4,
		Cm: 0.125, Lambda: 0.5, PistonSpeed: 0.131,
		NPerCell: 6, Seed: 99,
	}
}

// roundTrip2D runs the acceptance sequence at one precision: run(100)
// must hash identically to run(50) + checkpoint + restore-into-fresh +
// run(50), with the restoring simulation at a different worker count.
func roundTrip2D[F kernel.Float](t *testing.T, saveWorkers, loadWorkers int) {
	t.Helper()
	cfg := config2D()
	cfg.Workers = saveWorkers

	straight, err := sim.NewOf[F](cfg)
	if err != nil {
		t.Fatal(err)
	}
	straight.Run(100)
	want := golden.HashSim2D(straight)

	half, err := sim.NewOf[F](cfg)
	if err != nil {
		t.Fatal(err)
	}
	half.Run(50)
	var buf bytes.Buffer
	if err := half.WriteCheckpoint(&buf); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	midHash := golden.HashSim2D(half)

	cfg.Workers = loadWorkers
	restored, err := sim.NewOf[F](cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.ReadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := golden.HashSim2D(restored); got != midHash {
		t.Fatalf("restored state hash %#016x != checkpointed %#016x", got, midHash)
	}
	restored.Run(50)
	if got := golden.HashSim2D(restored); got != want {
		t.Fatalf("run(100) hash %#016x, run(50)+save+load+run(50) hash %#016x", want, got)
	}
}

func roundTrip3D[F kernel.Float](t *testing.T, saveWorkers, loadWorkers int) {
	t.Helper()
	cfg := config3D()
	cfg.Workers = saveWorkers

	straight, err := sim3.NewOf[F](cfg)
	if err != nil {
		t.Fatal(err)
	}
	straight.Run(100)
	want := golden.HashSim3D(straight)

	half, err := sim3.NewOf[F](cfg)
	if err != nil {
		t.Fatal(err)
	}
	half.Run(50)
	var buf bytes.Buffer
	if err := half.WriteCheckpoint(&buf); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	cfg.Workers = loadWorkers
	restored, err := sim3.NewOf[F](cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.ReadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("restore: %v", err)
	}
	restored.Run(50)
	if got := golden.HashSim3D(restored); got != want {
		t.Fatalf("run(100) hash %#016x, run(50)+save+load+run(50) hash %#016x", want, got)
	}
}

// TestRoundTrip2D is the acceptance matrix: both precisions, checkpoint
// taken at 1 and 8 workers, restored at 8 and 1 (restore must not care).
func TestRoundTrip2D(t *testing.T) {
	t.Run("float64/w1-to-w8", func(t *testing.T) { roundTrip2D[float64](t, 1, 8) })
	t.Run("float64/w8-to-w1", func(t *testing.T) { roundTrip2D[float64](t, 8, 1) })
	t.Run("float32/w1-to-w8", func(t *testing.T) { roundTrip2D[float32](t, 1, 8) })
	t.Run("float32/w8-to-w1", func(t *testing.T) { roundTrip2D[float32](t, 8, 1) })
}

func TestRoundTrip3D(t *testing.T) {
	t.Run("float64/w1-to-w8", func(t *testing.T) { roundTrip3D[float64](t, 1, 8) })
	t.Run("float64/w8-to-w1", func(t *testing.T) { roundTrip3D[float64](t, 8, 1) })
	t.Run("float32/w1-to-w8", func(t *testing.T) { roundTrip3D[float32](t, 1, 8) })
	t.Run("float32/w8-to-w1", func(t *testing.T) { roundTrip3D[float32](t, 8, 1) })
}

// TestDiffuseVibrationalRoundTrip covers the remaining randomness-
// consuming domain paths: diffuse-isothermal walls (per-particle wall
// streams) and vibrational relaxation (Evib column live).
func TestDiffuseVibrationalRoundTrip(t *testing.T) {
	cfg := config2D()
	cfg.Wall = geom.DiffuseState{Model: geom.DiffuseIsothermal, WallCm: cfg.Free.Cm}
	cfg.ZVib = 5
	cfg.Workers = 3

	straight, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	straight.Run(40)
	want := golden.HashSim2D(straight)

	half, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	half.Run(20)
	var buf bytes.Buffer
	if err := half.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.ReadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	restored.Run(20)
	if got := golden.HashSim2D(restored); got != want {
		t.Fatalf("diffuse+vibrational resume drifted: %#016x vs %#016x", got, want)
	}
}

func checkpoint2D(t *testing.T, cfg sim.Config, steps int) []byte {
	t.Helper()
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(steps)
	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCorruptionDetected flips single bytes across the stream and
// demands every corruption is caught (checksum or structural error).
func TestCorruptionDetected(t *testing.T) {
	cfg := config2D()
	raw := checkpoint2D(t, cfg, 5)
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{8, 48, len(raw) / 2, len(raw) - 4} {
		cp := append([]byte(nil), raw...)
		cp[off] ^= 0x40
		if err := s.ReadCheckpoint(bytes.NewReader(cp)); err == nil {
			t.Errorf("corruption at byte %d went undetected", off)
		}
	}
	// Truncation must be caught too.
	if err := s.ReadCheckpoint(bytes.NewReader(raw[:len(raw)-9])); err == nil {
		t.Error("truncated checkpoint went undetected")
	}
}

// TestShapeMismatches: restoring across kinds, precisions or grids fails
// loudly rather than silently producing garbage.
func TestShapeMismatches(t *testing.T) {
	cfg := config2D()
	raw := checkpoint2D(t, cfg, 3)

	t.Run("wrong-precision", func(t *testing.T) {
		s32, err := sim.NewOf[float32](cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s32.ReadCheckpoint(bytes.NewReader(raw)); err == nil {
			t.Error("float64 checkpoint restored into float32 simulation")
		}
	})
	t.Run("wrong-kind", func(t *testing.T) {
		s3, err := sim3.New(config3D())
		if err != nil {
			t.Fatal(err)
		}
		if err := s3.ReadCheckpoint(bytes.NewReader(raw)); err == nil {
			t.Error("2D checkpoint restored into 3D simulation")
		}
	})
	t.Run("wrong-grid", func(t *testing.T) {
		other := cfg
		other.NX = 32
		s, err := sim.New(other)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.ReadCheckpoint(bytes.NewReader(raw)); err == nil {
			t.Error("48-wide checkpoint restored into 32-wide simulation")
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		s, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		err = s.ReadCheckpoint(strings.NewReader("this is not a checkpoint at all........"))
		if err == nil {
			t.Error("garbage stream accepted as checkpoint")
		}
	})
}

// TestAccumulatorRoundTrip: the sampling state checkpoints bit-for-bit
// (the piece that makes mid-sampling job resume exact).
func TestAccumulatorRoundTrip(t *testing.T) {
	cfg := config2D()
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := grid.New(cfg.NX, cfg.NY)
	acc := sample.NewAccumulator(g, s.Volumes(), cfg.NPerCell)
	for k := 0; k < 5; k++ {
		s.Step()
		s.SampleInto(acc)
	}

	var buf bytes.Buffer
	w := ckpt.NewWriter(&buf, ckpt.KindJob, ckpt.PrecF64, g.Cells())
	ckpt.WriteAccumulator(w, acc)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := ckpt.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	acc2 := sample.NewAccumulator(g, s.Volumes(), cfg.NPerCell)
	if err := ckpt.ReadAccumulator(r, acc2); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if acc2.Steps != acc.Steps {
		t.Fatalf("steps %d != %d", acc2.Steps, acc.Steps)
	}
	d1, d2 := acc.Density(), acc2.Density()
	for c := range d1 {
		if d1[c] != d2[c] {
			t.Fatalf("density[%d] %v != %v after round trip", c, d2[c], d1[c])
		}
	}
}
