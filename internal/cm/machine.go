// Package cm is a data-parallel virtual machine modelled on the Thinking
// Machines CM-2 as the paper uses it: a large set of virtual processors,
// each owning one particle, executing elementwise integer operations,
// (segmented) scans, a stable sort, and general router communication.
//
// Two things are modelled:
//
//   - Semantics: fields of int32 (the paper's 32-bit fixed-point particle
//     state), context flags (the CM's activity mask), scans, sort, send.
//     These execute on a pool of goroutines, one chunk of virtual
//     processors per "physical processor".
//
//   - Cost: a cycle-level model of the bit-serial CM-2, accumulated per
//     named phase. Every operation charges per-virtual-processor serial
//     cycles (multiplied by the virtual-processor ratio), a fixed
//     front-end instruction-issue overhead, and communication cycles that
//     distinguish within-physical-processor traffic from router traffic.
//     This is what reproduces Figure 7 of the paper: per-particle time
//     falls as the VP ratio grows because issue overhead amortizes and a
//     growing share of communication stays on-processor.
package cm

import (
	"fmt"
	"runtime"
	"time"

	"dsmc/internal/par"
)

// Field is a per-virtual-processor array of 32-bit words, the only
// register width of the machine (matching the paper's 32-bit fixed-point
// particle state).
type Field []int32

// Machine is a virtual CM with a fixed number of physical processors and
// some number of virtual processors mapped onto them in contiguous chunks.
type Machine struct {
	numPhys int
	vps     int
	workers int // == pool.Workers(), cached for the scans' carry logic
	pool    *par.Pool

	cost  CostBook
	phase string

	wallStart map[string]time.Time
}

// New creates a machine with numPhys physical processors and vps virtual
// processors. vps is rounded up to a multiple of numPhys, as on the real
// machine (the VP ratio is a power-of-two integer there; here any integer
// ratio is permitted). numPhys must be positive.
func New(numPhys, vps int) *Machine {
	if numPhys <= 0 {
		panic("cm: numPhys must be positive")
	}
	if vps < numPhys {
		vps = numPhys
	}
	if r := vps % numPhys; r != 0 {
		vps += numPhys - r
	}
	w := runtime.GOMAXPROCS(0)
	if w > numPhys {
		w = numPhys
	}
	if w < 1 {
		w = 1
	}
	return &Machine{
		numPhys:   numPhys,
		vps:       vps,
		workers:   w,
		pool:      par.New(w),
		cost:      NewCostBook(),
		phase:     "default",
		wallStart: map[string]time.Time{},
	}
}

// P returns the number of physical processors.
func (m *Machine) P() int { return m.numPhys }

// VPs returns the number of virtual processors.
func (m *Machine) VPs() int { return m.vps }

// VPR returns the virtual processor ratio.
func (m *Machine) VPR() int { return m.vps / m.numPhys }

// ChunkOf returns the physical processor owning virtual processor i.
func (m *Machine) ChunkOf(i int) int { return i / m.VPR() }

// NewField allocates a zeroed field.
func (m *Machine) NewField() Field { return make(Field, m.vps) }

// NewContext returns a context (activity mask) with every processor active.
func (m *Machine) NewContext() []bool {
	ctx := make([]bool, m.vps)
	for i := range ctx {
		ctx[i] = true
	}
	return ctx
}

// Phase names the accounting bucket for subsequent operations and starts
// its wall-clock timer; the previous phase's timer is stopped.
func (m *Machine) Phase(name string) {
	now := time.Now()
	if st, ok := m.wallStart[m.phase]; ok {
		m.cost.addWall(m.phase, now.Sub(st))
		delete(m.wallStart, m.phase)
	}
	m.phase = name
	m.wallStart[name] = now
}

// FlushTimers closes the open phase timer so accumulated wall times are
// complete. Safe to call repeatedly.
func (m *Machine) FlushTimers() {
	now := time.Now()
	if st, ok := m.wallStart[m.phase]; ok {
		m.cost.addWall(m.phase, now.Sub(st))
		m.wallStart[m.phase] = now
	}
}

// Cost returns the accumulated cost book.
func (m *Machine) Cost() *CostBook { return &m.cost }

// ResetCost clears accumulated cost and wall times.
func (m *Machine) ResetCost() {
	m.cost = NewCostBook()
	m.wallStart = map[string]time.Time{m.phase: time.Now()}
}

// blockStep returns the span width of the fixed block decomposition used
// by every parallel operation: w blocks of equal width (the last possibly
// short or empty). Serial carry passes in the scans rely on this exact
// decomposition, so every execution path must use it — it is the pool's
// decomposition, shared with the reference backends via internal/par.
func (m *Machine) blockStep(n int) int { return m.pool.BlockStep(n) }

// parForIdx runs f once per block b with its span [lo, hi); empty blocks
// get lo == hi == n. Execution is parallel for large n, serial otherwise,
// but the decomposition is identical either way.
func (m *Machine) parForIdx(n int, f func(b, lo, hi int)) {
	m.pool.ForIdx(n, f)
}

// parFor runs f over [0, n) split into the fixed block decomposition.
func (m *Machine) parFor(n int, f func(lo, hi int)) {
	m.pool.For(n, f)
}

// checkLen panics if a field does not belong to this machine geometry.
func (m *Machine) checkLen(fs ...Field) {
	for _, f := range fs {
		if len(f) != m.vps {
			panic(fmt.Sprintf("cm: field length %d does not match machine VPs %d", len(f), m.vps))
		}
	}
}
