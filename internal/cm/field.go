package cm

// OpKind classifies an elementwise operation for cost accounting.
type OpKind int

// Elementwise operation kinds, in increasing bit-serial cost.
const (
	OpALU OpKind = iota // add/sub/compare/select/shift/logical
	OpMul               // multiply
	OpDiv               // divide
)

func (k OpKind) cycles() int64 {
	switch k {
	case OpMul:
		return CycleMul32
	case OpDiv:
		return CycleDiv32
	default:
		return CycleALU32
	}
}

// Fill sets every element of dst to v.
func (m *Machine) Fill(dst Field, v int32) {
	m.checkLen(dst)
	m.parFor(m.vps, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = v
		}
	})
	m.chargeElementwise(CycleALU32)
}

// Copy copies src into dst.
func (m *Machine) Copy(dst, src Field) {
	m.checkLen(dst, src)
	m.parFor(m.vps, func(lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
	m.chargeElementwise(CycleALU32)
}

// Map applies f elementwise: dst[i] = f(src[i]). kind selects the cost
// charged per virtual processor.
func (m *Machine) Map(kind OpKind, dst, src Field, f func(int32) int32) {
	m.checkLen(dst, src)
	m.parFor(m.vps, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = f(src[i])
		}
	})
	m.chargeElementwise(kind.cycles())
}

// MapWhere applies f elementwise under the context mask; inactive
// processors keep their dst value. The CM charges inactive processors the
// same cycles (they idle through the broadcast instruction), so the cost
// is identical to Map — this is exactly the load-balance argument the
// paper makes against the cells-to-processors mapping.
func (m *Machine) MapWhere(kind OpKind, ctx []bool, dst, src Field, f func(int32) int32) {
	m.checkLen(dst, src)
	m.parFor(m.vps, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if ctx[i] {
				dst[i] = f(src[i])
			}
		}
	})
	m.chargeElementwise(kind.cycles())
}

// Zip applies f elementwise over two operands: dst[i] = f(a[i], b[i]).
func (m *Machine) Zip(kind OpKind, dst, a, b Field, f func(int32, int32) int32) {
	m.checkLen(dst, a, b)
	m.parFor(m.vps, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = f(a[i], b[i])
		}
	})
	m.chargeElementwise(kind.cycles())
}

// ZipWhere is Zip under a context mask.
func (m *Machine) ZipWhere(kind OpKind, ctx []bool, dst, a, b Field, f func(int32, int32) int32) {
	m.checkLen(dst, a, b)
	m.parFor(m.vps, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if ctx[i] {
				dst[i] = f(a[i], b[i])
			}
		}
	})
	m.chargeElementwise(kind.cycles())
}

// Update applies an in-place per-processor update with access to the lane
// index, used for operations that consult per-lane state such as RNG
// streams. It is charged as the given number of equivalent ALU ops.
func (m *Machine) Update(aluOps int, f func(i int)) {
	m.parFor(m.vps, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
	m.chargeElementwise(int64(aluOps) * CycleALU32)
}

// UpdateReduce applies a per-processor update that also accumulates an
// int64 result (e.g. a collision count); accumulation is per block with a
// final serial combine, so it is race-free and deterministic. Charged as
// aluOps equivalent ALU operations plus one reduction.
func (m *Machine) UpdateReduce(aluOps int, f func(i int, acc *int64)) int64 {
	partial := make([]int64, m.workers)
	m.parForIdx(m.vps, func(b, lo, hi int) {
		var acc int64
		for i := lo; i < hi; i++ {
			f(i, &acc)
		}
		partial[b] = acc
	})
	var total int64
	for _, p := range partial {
		total += p
	}
	m.chargeElementwise(int64(aluOps) * CycleALU32)
	m.chargeScan()
	return total
}

// Select sets dst[i] = a[i] where ctx else b[i].
func (m *Machine) Select(ctx []bool, dst, a, b Field) {
	m.checkLen(dst, a, b)
	m.parFor(m.vps, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if ctx[i] {
				dst[i] = a[i]
			} else {
				dst[i] = b[i]
			}
		}
	})
	m.chargeElementwise(CycleALU32)
}

// Mask computes a context from a predicate over one field.
func (m *Machine) Mask(dst []bool, src Field, pred func(int32) bool) {
	m.checkLen(src)
	m.parFor(m.vps, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = pred(src[i])
		}
	})
	m.chargeElementwise(CycleALU32)
}

// MaskAnd narrows a context in place: dst[i] &&= pred(src[i]).
func (m *Machine) MaskAnd(dst []bool, src Field, pred func(int32) bool) {
	m.checkLen(src)
	m.parFor(m.vps, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = dst[i] && pred(src[i])
		}
	})
	m.chargeElementwise(CycleALU32)
}

// Reduce returns the sum of src as int64 (the global reduction network).
func (m *Machine) Reduce(src Field) int64 {
	m.checkLen(src)
	partial := make([]int64, m.workers)
	m.parForIdx(m.vps, func(w, lo, hi int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(src[i])
		}
		partial[w] = s
	})
	var total int64
	for _, s := range partial {
		total += s
	}
	m.chargeScan()
	return total
}

// ReduceMax returns the maximum of src; zero-length machines cannot occur.
func (m *Machine) ReduceMax(src Field) int32 {
	m.checkLen(src)
	partial := make([]int32, m.workers)
	m.parForIdx(m.vps, func(w, lo, hi int) {
		best := src[0] // safe floor for empty blocks
		for i := lo; i < hi; i++ {
			if src[i] > best {
				best = src[i]
			}
		}
		partial[w] = best
	})
	best := partial[0]
	for _, v := range partial[1:] {
		if v > best {
			best = v
		}
	}
	m.chargeScan()
	return best
}

// Count returns the number of active processors in ctx.
func (m *Machine) Count(ctx []bool) int {
	partial := make([]int, m.workers)
	m.parForIdx(m.vps, func(w, lo, hi int) {
		c := 0
		for i := lo; i < hi; i++ {
			if ctx[i] {
				c++
			}
		}
		partial[w] = c
	})
	total := 0
	for _, c := range partial {
		total += c
	}
	m.chargeScan()
	return total
}
