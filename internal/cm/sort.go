package cm

import "sync/atomic"

// SortPerm returns the permutation that stably sorts keys ascending:
// perm[r] is the index of the element of rank r. Keys must be
// non-negative (cell-index keys always are). The sort is an LSD radix
// sort — the same class of O(n) rank-based sort the CM-2's sorting
// primitive uses — parallelized per block with stable cross-block
// scatter offsets.
//
// The cost model charges one router send per key whose destination chunk
// differs from its source chunk, per radix pass: on the real machine the
// reordering is a general-router permutation. This is the machinery behind
// the paper's observation that general communication happens in the
// sorting routine when particle motion or re-randomization forces
// particles to change physical processors.
func (m *Machine) SortPerm(keys Field) []int32 {
	m.checkLen(keys)
	n := m.vps
	maxKey := m.ReduceMax(keys)
	passes := 0
	for v := int64(maxKey); v > 0; v >>= radixBits {
		passes++
	}
	if passes == 0 {
		passes = 1
	}

	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	next := make([]int32, n)
	cur := keys
	keyBuf := make(Field, n)
	keyNext := make(Field, n)
	copy(keyBuf, cur)
	cur = keyBuf

	w := m.workers
	var crossMsgs int64
	for p := 0; p < passes; p++ {
		shift := uint(p * radixBits)
		// Per-block digit histograms.
		hist := make([][]int32, w)
		m.parForIdx(n, func(b, lo, hi int) {
			h := make([]int32, radixSize)
			for i := lo; i < hi; i++ {
				h[(uint32(cur[i])>>shift)&radixMask]++
			}
			hist[b] = h
		})
		// Global stable offsets: for digit d, block b starts at
		// sum over digits < d of all blocks + sum over blocks < b of digit d.
		offsets := make([][]int32, w)
		for b := range offsets {
			offsets[b] = make([]int32, radixSize)
		}
		var run int32
		for d := 0; d < radixSize; d++ {
			for b := 0; b < w; b++ {
				offsets[b][d] = run
				run += hist[b][d]
			}
		}
		// Stable scatter per block.
		m.parForIdx(n, func(b, lo, hi int) {
			off := offsets[b]
			for i := lo; i < hi; i++ {
				d := (uint32(cur[i]) >> shift) & radixMask
				dst := off[d]
				off[d]++
				next[dst] = perm[i]
				keyNext[dst] = cur[i]
			}
		})
		perm, next = next, perm
		cur, keyNext = keyNext, cur
		// Each pass performs rank arithmetic (histogram + offsets): charged
		// as scans plus elementwise work.
		m.chargeScan()
		m.chargeElementwise(CycleALU32 * 2)
	}
	// Communication is charged for the net permutation: the machine's sort
	// delivers each element from its source processor to its rank position
	// through the router; traffic staying within a physical processor is a
	// memory move. Nearly-sorted keys (the common case between time steps)
	// therefore generate little router traffic at high VP ratios — the
	// effect the paper reports in Figure 7.
	vpr := m.VPR()
	m.parForIdx(n, func(_, lo, hi int) {
		var localCross int64
		for r := lo; r < hi; r++ {
			if int(perm[r])/vpr != r/vpr {
				localCross++
			}
		}
		atomic.AddInt64(&crossMsgs, localCross)
	})
	m.chargeComm(int64(n)-crossMsgs, crossMsgs)
	return perm
}

const (
	radixBits = 8
	radixSize = 1 << radixBits
	radixMask = radixSize - 1
)

// Gather permutes src into dst through the router: dst[i] = src[perm[i]].
// dst and src must not alias.
func (m *Machine) Gather(dst, src Field, perm []int32) {
	m.checkLen(dst, src)
	var cross int64
	vpr := m.VPR()
	m.parForIdx(m.vps, func(_, lo, hi int) {
		var localCross int64
		for i := lo; i < hi; i++ {
			j := int(perm[i])
			dst[i] = src[j]
			if j/vpr != i/vpr {
				localCross++
			}
		}
		atomic.AddInt64(&cross, localCross)
	})
	m.chargeComm(int64(m.vps)-cross, cross)
}

// GatherMany applies the same permutation to several fields, reusing one
// scratch buffer; each field is a separate router operation on the real
// machine and is charged as such.
func (m *Machine) GatherMany(perm []int32, scratch Field, fields ...Field) {
	for _, f := range fields {
		m.Gather(scratch, f, perm)
		m.Copy(f, scratch)
	}
}

// Scatter performs dst[perm[i]] = src[i]. perm must be a permutation.
func (m *Machine) Scatter(dst, src Field, perm []int32) {
	m.checkLen(dst, src)
	var cross int64
	vpr := m.VPR()
	m.parForIdx(m.vps, func(_, lo, hi int) {
		var localCross int64
		for i := lo; i < hi; i++ {
			j := int(perm[i])
			dst[j] = src[i]
			if j/vpr != i/vpr {
				localCross++
			}
		}
		atomic.AddInt64(&cross, localCross)
	})
	m.chargeComm(int64(m.vps)-cross, cross)
}

// ShiftUp implements the NEWS-style nearest-neighbour shift: dst[i] =
// src[i-1], with dst[0] = fill. Neighbour communication crosses a chunk
// boundary only once per physical processor, so it is charged almost
// entirely as local moves.
func (m *Machine) ShiftUp(dst, src Field, fill int32) {
	m.checkLen(dst, src)
	m.parFor(m.vps, func(lo, hi int) {
		start := lo
		if lo == 0 {
			dst[0] = fill
			start = 1
		}
		for i := start; i < hi; i++ {
			dst[i] = src[i-1]
		}
	})
	m.chargeComm(int64(m.vps)-int64(m.numPhys), int64(m.numPhys))
}

// ShiftDown implements dst[i] = src[i+1], with dst[n-1] = fill.
func (m *Machine) ShiftDown(dst, src Field, fill int32) {
	m.checkLen(dst, src)
	n := m.vps
	m.parFor(n, func(lo, hi int) {
		end := hi
		if hi == n {
			dst[n-1] = fill
			end = n - 1
		}
		for i := lo; i < end; i++ {
			dst[i] = src[i+1]
		}
	})
	m.chargeComm(int64(n)-int64(m.numPhys), int64(m.numPhys))
}
