package cm

// The richer scan set of the paper's future-work section ("a richer set
// of scan functions in the Version 5.0 software which may be used to
// decrease the time spent in identifying collision candidates"):
// max/min scans and their segmented forms, which allow e.g. per-cell
// extrema (largest relative speed, majorant frequencies) to be computed
// directly.

// MaxScan computes the running maximum: dst[i] = max(src[0..i]).
func (m *Machine) MaxScan(dst, src Field) {
	m.checkLen(dst, src)
	n := m.vps
	w := m.workers
	blockMax := make([]int32, w)
	m.parForIdx(n, func(b, lo, hi int) {
		best := src[0]
		for i := lo; i < hi; i++ {
			if src[i] > best {
				best = src[i]
			}
		}
		blockMax[b] = best
	})
	carryIn := make([]int32, w)
	cur := src[0]
	for b := 0; b < w; b++ {
		carryIn[b] = cur
		if blockMax[b] > cur {
			cur = blockMax[b]
		}
	}
	m.parForIdx(n, func(b, lo, hi int) {
		best := carryIn[b]
		for i := lo; i < hi; i++ {
			if src[i] > best {
				best = src[i]
			}
			dst[i] = best
		}
	})
	m.chargeScan()
}

// MinScan computes the running minimum: dst[i] = min(src[0..i]).
func (m *Machine) MinScan(dst, src Field) {
	neg := m.NewField()
	m.Map(OpALU, neg, src, func(x int32) int32 { return -x })
	m.MaxScan(neg, neg)
	m.Map(OpALU, dst, neg, func(x int32) int32 { return -x })
}

// SegMaxScan computes the segmented running maximum, restarting at every
// segment start.
func (m *Machine) SegMaxScan(dst, src Field, segStart []bool) {
	m.checkLen(dst, src)
	n := m.vps
	w := m.workers
	tailMax := make([]int32, w)
	hasStart := make([]bool, w)
	m.parForIdx(n, func(b, lo, hi int) {
		best := int32(0)
		started := false
		haveAny := false
		for i := lo; i < hi; i++ {
			if segStart[i] {
				best = src[i]
				started = true
				haveAny = true
				continue
			}
			if !haveAny {
				best = src[i]
				haveAny = true
			} else if src[i] > best {
				best = src[i]
			}
		}
		tailMax[b] = best
		hasStart[b] = started
	})
	carryIn := make([]int32, w)
	cur := src[0]
	for b := 0; b < w; b++ {
		carryIn[b] = cur
		if hasStart[b] {
			cur = tailMax[b]
		} else if tailMax[b] > cur {
			cur = tailMax[b]
		}
	}
	m.parForIdx(n, func(b, lo, hi int) {
		best := carryIn[b]
		for i := lo; i < hi; i++ {
			if segStart[i] {
				best = src[i]
			} else if src[i] > best {
				best = src[i]
			}
			dst[i] = best
		}
	})
	m.chargeScan()
}

// SegBroadcastMax gives every element the maximum of its segment
// (a segmented max-scan followed by a backward copy), e.g. the largest
// relative speed in a cell for majorant-rate selection schemes.
func (m *Machine) SegBroadcastMax(dst, src Field, segStart []bool) {
	m.checkLen(dst, src)
	tmp := m.NewField()
	m.SegMaxScan(tmp, src, segStart)
	// The segment-final value of tmp is the segment max; propagate it
	// backward exactly as SegBroadcastSum does.
	n := m.vps
	w := m.workers
	step := m.blockStep(n)
	carryFromRight := make([]int32, w)
	cur := tmp[n-1]
	for b := w - 1; b >= 0; b-- {
		carryFromRight[b] = cur
		lo := b * step
		hi := lo + step
		if lo > n {
			lo = n
		}
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			if segStart[i] {
				if i > 0 {
					cur = tmp[i-1]
				}
				break
			}
		}
	}
	m.parForIdx(n, func(b, lo, hi int) {
		fill := carryFromRight[b]
		for i := hi - 1; i >= lo; i-- {
			dst[i] = fill
			if segStart[i] && i > 0 {
				fill = tmp[i-1]
			}
		}
	})
	m.chargeScan()
}

// ReduceMin returns the global minimum of src.
func (m *Machine) ReduceMin(src Field) int32 {
	m.checkLen(src)
	partial := make([]int32, m.workers)
	m.parForIdx(m.vps, func(w, lo, hi int) {
		best := src[0]
		for i := lo; i < hi; i++ {
			if src[i] < best {
				best = src[i]
			}
		}
		partial[w] = best
	})
	best := partial[0]
	for _, v := range partial[1:] {
		if v < best {
			best = v
		}
	}
	m.chargeScan()
	return best
}
