package cm

import (
	"math/rand"
	"testing"
)

func TestMaxScanMatchesReference(t *testing.T) {
	for _, n := range []int{16, 1000, 20000} {
		m := New(16, n)
		src := m.NewField()
		rng := rand.New(rand.NewSource(int64(n)))
		for i := range src {
			src[i] = int32(rng.Intn(2000) - 1000)
		}
		dst := m.NewField()
		m.MaxScan(dst, src)
		best := src[0]
		for i := range src {
			if src[i] > best {
				best = src[i]
			}
			if dst[i] != best {
				t.Fatalf("n=%d: MaxScan[%d] = %d, want %d", n, i, dst[i], best)
			}
		}
	}
}

func TestMinScanMatchesReference(t *testing.T) {
	m := New(8, 5000)
	src := m.NewField()
	rng := rand.New(rand.NewSource(7))
	for i := range src {
		src[i] = int32(rng.Intn(2000) - 1000)
	}
	dst := m.NewField()
	m.MinScan(dst, src)
	best := src[0]
	for i := range src {
		if src[i] < best {
			best = src[i]
		}
		if dst[i] != best {
			t.Fatalf("MinScan[%d] = %d, want %d", i, dst[i], best)
		}
	}
}

func TestSegMaxScanMatchesReference(t *testing.T) {
	for _, n := range []int{64, 20000} {
		m := New(16, n)
		src := m.NewField()
		seg := make([]bool, m.VPs())
		rng := rand.New(rand.NewSource(int64(n) + 3))
		for i := range src {
			src[i] = int32(rng.Intn(1000) - 500)
			seg[i] = rng.Intn(9) == 0
		}
		dst := m.NewField()
		m.SegMaxScan(dst, src, seg)
		best := src[0]
		for i := range src {
			if seg[i] || i == 0 {
				best = src[i]
			} else if src[i] > best {
				best = src[i]
			}
			if dst[i] != best {
				t.Fatalf("n=%d: SegMaxScan[%d] = %d, want %d", n, i, dst[i], best)
			}
		}
	}
}

func TestSegBroadcastMax(t *testing.T) {
	for _, n := range []int{64, 16384} {
		m := New(16, n)
		src := m.NewField()
		seg := make([]bool, m.VPs())
		rng := rand.New(rand.NewSource(int64(n) + 5))
		for i := range src {
			src[i] = int32(rng.Intn(1000))
			seg[i] = rng.Intn(7) == 0
		}
		seg[0] = true
		dst := m.NewField()
		m.SegBroadcastMax(dst, src, seg)
		// Reference per segment.
		i := 0
		for i < m.VPs() {
			j := i + 1
			for j < m.VPs() && !seg[j] {
				j++
			}
			best := src[i]
			for k := i; k < j; k++ {
				if src[k] > best {
					best = src[k]
				}
			}
			for k := i; k < j; k++ {
				if dst[k] != best {
					t.Fatalf("n=%d: segment max at %d = %d, want %d", n, k, dst[k], best)
				}
			}
			i = j
		}
	}
}

func TestReduceMin(t *testing.T) {
	m := New(8, 3000)
	src := m.NewField()
	for i := range src {
		src[i] = int32(i%71) - 35
	}
	if got := m.ReduceMin(src); got != -35 {
		t.Errorf("ReduceMin = %d", got)
	}
}
