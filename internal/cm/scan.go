package cm

// PlusScan computes a prefix sum of src into dst. If exclusive is true,
// dst[i] = sum(src[0:i]); otherwise dst[i] includes src[i]. dst and src
// may alias. The implementation is the classic two-sweep blocked parallel
// scan: per-block partial sums, a serial pass over block totals, then a
// per-block local scan with carry-in — structurally the same algorithm the
// CM-2 scan network performs.
func (m *Machine) PlusScan(dst, src Field, exclusive bool) {
	m.checkLen(dst, src)
	n := m.vps
	w := m.workers
	blockSum := make([]int64, w+1)
	m.parForIdx(n, func(b, lo, hi int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(src[i])
		}
		blockSum[b+1] = s
	})
	for b := 1; b <= w; b++ {
		blockSum[b] += blockSum[b-1]
	}
	m.parForIdx(n, func(b, lo, hi int) {
		carry := blockSum[b]
		if exclusive {
			for i := lo; i < hi; i++ {
				v := int64(src[i])
				dst[i] = int32(carry)
				carry += v
			}
		} else {
			for i := lo; i < hi; i++ {
				carry += int64(src[i])
				dst[i] = int32(carry)
			}
		}
	})
	m.chargeScan()
}

// SegPlusScan computes a segmented inclusive (or exclusive) prefix sum:
// the running sum restarts wherever segStart is true. This is the scan the
// implementation uses to number particles within a cell and to count cell
// populations after the sort.
func (m *Machine) SegPlusScan(dst, src Field, segStart []bool, exclusive bool) {
	m.checkLen(dst, src)
	n := m.vps
	w := m.workers
	// First sweep: each block computes the sum of its tail segment (from
	// the last segment start in the block, or the block head if none) and
	// whether it contains any segment start.
	tailSum := make([]int64, w)
	hasStart := make([]bool, w)
	m.parForIdx(n, func(b, lo, hi int) {
		var s int64
		started := false
		for i := lo; i < hi; i++ {
			if segStart[i] {
				s = 0
				started = true
			}
			s += int64(src[i])
		}
		tailSum[b] = s
		hasStart[b] = started
	})
	// Serial pass: carry into each block is the sum since the most recent
	// segment start across preceding blocks.
	carryIn := make([]int64, w)
	var carry int64
	for b := 0; b < w; b++ {
		carryIn[b] = carry
		if hasStart[b] {
			carry = tailSum[b]
		} else {
			carry += tailSum[b]
		}
	}
	// Second sweep: local segmented scan with carry-in.
	m.parForIdx(n, func(b, lo, hi int) {
		run := carryIn[b]
		if exclusive {
			for i := lo; i < hi; i++ {
				if segStart[i] {
					run = 0
				}
				dst[i] = int32(run)
				run += int64(src[i])
			}
		} else {
			for i := lo; i < hi; i++ {
				if segStart[i] {
					run = 0
				}
				run += int64(src[i])
				dst[i] = int32(run)
			}
		}
	})
	m.chargeScan()
}

// SegCopyScan broadcasts the value at each segment start to every element
// of the segment (a copy-scan). Content before the first segment start is
// copied from element 0 of the machine.
func (m *Machine) SegCopyScan(dst, src Field, segStart []bool) {
	m.checkLen(dst, src)
	n := m.vps
	w := m.workers
	outVal := make([]int32, w)
	hasStart := make([]bool, w)
	m.parForIdx(n, func(b, lo, hi int) {
		v := int32(0)
		started := false
		for i := lo; i < hi; i++ {
			if segStart[i] {
				v = src[i]
				started = true
			}
		}
		outVal[b] = v
		hasStart[b] = started
	})
	carryIn := make([]int32, w)
	cur := src[0]
	for b := 0; b < w; b++ {
		carryIn[b] = cur
		if hasStart[b] {
			cur = outVal[b]
		}
	}
	m.parForIdx(n, func(b, lo, hi int) {
		v := carryIn[b]
		for i := lo; i < hi; i++ {
			if segStart[i] {
				v = src[i]
			}
			dst[i] = v
		}
	})
	m.chargeScan()
}

// SegBroadcastSum gives every element the total of its segment: an
// inclusive segmented plus-scan followed by a backward copy of the
// segment-final values. This pair of scans is how the implementation
// obtains the cell population (hence the local density n) on every
// particle of a cell.
func (m *Machine) SegBroadcastSum(dst, src Field, segStart []bool) {
	m.checkLen(dst, src)
	n := m.vps
	w := m.workers
	tmp := m.NewField()
	m.SegPlusScan(tmp, src, segStart, false)
	// Backward sweep. For element i we need tmp at the last index of i's
	// segment. Serial right-to-left pass over blocks computes the fill
	// value entering each block from the right.
	step := m.blockStep(n)
	carryFromRight := make([]int32, w)
	cur := tmp[n-1]
	for b := w - 1; b >= 0; b-- {
		carryFromRight[b] = cur
		lo := b * step
		hi := lo + step
		if lo > n {
			lo = n
		}
		if hi > n {
			hi = n
		}
		// The fill value flowing left out of this block: the total of the
		// segment ending just before the first segment start in the block.
		for i := lo; i < hi; i++ {
			if segStart[i] {
				if i > 0 {
					cur = tmp[i-1]
				}
				break
			}
		}
	}
	m.parForIdx(n, func(b, lo, hi int) {
		fill := carryFromRight[b]
		for i := hi - 1; i >= lo; i-- {
			dst[i] = fill
			if segStart[i] && i > 0 {
				fill = tmp[i-1]
			}
		}
	})
	m.chargeScan()
}

// Enumerate numbers the active processors 0,1,2,... in machine order and
// returns the count; inactive processors receive -1. This is the standard
// CM enumeration idiom (an exclusive plus-scan of the context).
func (m *Machine) Enumerate(dst Field, ctx []bool) int {
	m.checkLen(dst)
	ones := m.NewField()
	m.parFor(m.vps, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if ctx[i] {
				ones[i] = 1
			}
		}
	})
	m.PlusScan(dst, ones, true)
	count := 0
	if m.vps > 0 {
		last := m.vps - 1
		count = int(dst[last])
		if ctx[last] {
			count++
		}
	}
	m.parFor(m.vps, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if !ctx[i] {
				dst[i] = -1
			}
		}
	})
	m.chargeElementwise(CycleALU32)
	return count
}
