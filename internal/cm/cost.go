package cm

import (
	"sort"
	"time"
)

// Cycle costs of the bit-serial machine, in (modelled) clock cycles per
// virtual processor for data-path operations and per instruction for the
// front-end. The relative structure (issue overhead vs per-VP work vs
// communication) reproduces the shape of the paper's performance results;
// the absolute level is set by CycleMacroOp.
//
// CycleMacroOp calibrates the fact that each operation this substrate
// charges is a routine-level macro-op standing in for a burst of real
// Paris instructions (the Update that performs a whole collision is one
// charge here but hundreds of bit-serial instructions on the machine).
// The factor is chosen so the full pipeline lands near the paper's
// absolute numbers: 7.2 µs/particle/step at 512k particles on a
// 32k-processor machine (3.5 h for the 3200-step run).
const (
	// CycleMacroOp is the macro-op expansion factor described above,
	// applied to data-path and communication costs; CycleIssueFactor is
	// the (smaller) factor for the front-end issue overhead. The pair is
	// fitted to both ends of the paper's Figure 7 curve: ~10.5 µs per
	// particle-step at 32k particles (VP ratio 1) and 7.2 µs at 512k
	// (VP ratio 16) on the 32k-processor machine.
	CycleMacroOp = 59
	// CycleALU32 is one 32-bit integer add/sub/compare/move macro-op in
	// the bit-serial data path.
	CycleALU32 = 40 * CycleMacroOp
	// CycleMul32 is a 32-bit multiply (quadratic in width when bit-serial).
	CycleMul32 = 700 * CycleMacroOp
	// CycleDiv32 is a 32-bit divide.
	CycleDiv32 = 900 * CycleMacroOp
	// CycleIssue is the fixed front-end instruction issue/decode/broadcast
	// overhead per macro-op, independent of the VP ratio. Its amortization
	// over more virtual processors is one of the two causes of the
	// per-particle speedup in Figure 7.
	CycleIssue = 2600 * CycleIssueFactor
	// CycleIssueFactor is the macro-op factor for front-end issue.
	CycleIssueFactor = 3
	// CycleScanWire is the per-stage cost of the scan/reduction network;
	// a scan costs VPR*CycleALU32 + log2(P)*CycleScanWire.
	CycleScanWire = 60 * CycleMacroOp
	// CycleCommFactor is the macro-op factor for per-message communication
	// costs; messages are closer to single hardware operations than the
	// routine-level compute charges, so their factor is smaller.
	CycleCommFactor = 21
	// CycleLocalMove is moving one 32-bit word between virtual processors
	// resident in the same physical processor (a memory copy).
	CycleLocalMove = 50 * CycleCommFactor
	// CycleRouter is delivering one 32-bit message through the general
	// router between distinct physical processors, the expensive path the
	// sort and the collision pairing try to avoid.
	CycleRouter = 1200 * CycleCommFactor
	// ClockHz is the modelled clock rate used to convert cycles to time.
	ClockHz = 7_000_000
)

// PhaseCost accumulates modelled cycles and wall time for one phase.
type PhaseCost struct {
	Cycles     int64
	Ops        int64 // front-end instructions issued
	RouterMsgs int64 // cross-processor messages
	LocalMoves int64 // within-processor moves
	Wall       time.Duration
}

// CostBook is the per-phase cost ledger of a machine.
type CostBook struct {
	phases map[string]*PhaseCost
}

// NewCostBook returns an empty ledger.
func NewCostBook() CostBook {
	return CostBook{phases: map[string]*PhaseCost{}}
}

func (c *CostBook) get(phase string) *PhaseCost {
	p := c.phases[phase]
	if p == nil {
		p = &PhaseCost{}
		c.phases[phase] = p
	}
	return p
}

func (c *CostBook) addWall(phase string, d time.Duration) {
	c.get(phase).Wall += d
}

// Phase returns the cost record for a phase (zero record if unused).
func (c *CostBook) Phase(name string) PhaseCost {
	if p, ok := c.phases[name]; ok {
		return *p
	}
	return PhaseCost{}
}

// Phases returns the phase names in sorted order.
func (c *CostBook) Phases() []string {
	out := make([]string, 0, len(c.phases))
	for k := range c.phases {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TotalCycles sums modelled cycles over all phases.
func (c *CostBook) TotalCycles() int64 {
	var t int64
	for _, p := range c.phases {
		t += p.Cycles
	}
	return t
}

// TotalWall sums wall time over all phases.
func (c *CostBook) TotalWall() time.Duration {
	var t time.Duration
	for _, p := range c.phases {
		t += p.Wall
	}
	return t
}

// ModelSeconds converts modelled cycles to seconds at the modelled clock.
func ModelSeconds(cycles int64) float64 { return float64(cycles) / ClockHz }

// chargeElementwise records an elementwise operation: per-VP serial cycles
// times the VP ratio, plus one instruction issue.
func (m *Machine) chargeElementwise(perVPCycles int64) {
	p := m.cost.get(m.phase)
	p.Cycles += int64(m.VPR())*perVPCycles + CycleIssue
	p.Ops++
}

// chargeScan records a scan: serial sweep over resident VPs plus the
// log-depth wire traversal.
func (m *Machine) chargeScan() {
	p := m.cost.get(m.phase)
	p.Cycles += int64(m.VPR())*CycleALU32 + int64(log2ceil(m.numPhys))*CycleScanWire + CycleIssue
	p.Ops++
}

// chargeComm records a data movement with the given number of
// within-processor and cross-processor 32-bit transfers.
func (m *Machine) chargeComm(local, router int64) {
	p := m.cost.get(m.phase)
	// Router messages are serviced by all physical processors in parallel;
	// model the time as the average load per processor with a congestion
	// factor folded into CycleRouter.
	p.Cycles += local*CycleLocalMove/int64(m.numPhys) +
		router*CycleRouter/int64(m.numPhys) + CycleIssue
	p.Ops++
	p.RouterMsgs += router
	p.LocalMoves += local
}

func log2ceil(n int) int {
	k := 0
	for v := 1; v < n; v <<= 1 {
		k++
	}
	return k
}
