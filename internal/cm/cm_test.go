package cm

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewRoundsUpVPs(t *testing.T) {
	m := New(16, 100)
	if m.VPs() != 112 {
		t.Errorf("VPs = %d, want 112 (rounded to multiple of 16)", m.VPs())
	}
	if m.VPR() != 7 {
		t.Errorf("VPR = %d", m.VPR())
	}
}

func TestNewMinimumOneVPPerProcessor(t *testing.T) {
	m := New(8, 3)
	if m.VPs() != 8 || m.VPR() != 1 {
		t.Errorf("VPs=%d VPR=%d, want 8, 1", m.VPs(), m.VPR())
	}
}

func TestChunkOf(t *testing.T) {
	m := New(4, 16)
	if m.ChunkOf(0) != 0 || m.ChunkOf(3) != 0 || m.ChunkOf(4) != 1 || m.ChunkOf(15) != 3 {
		t.Errorf("ChunkOf wrong for VPR=4")
	}
}

func TestFillCopyMapZip(t *testing.T) {
	m := New(4, 64)
	a, b, c := m.NewField(), m.NewField(), m.NewField()
	m.Fill(a, 7)
	for _, v := range a {
		if v != 7 {
			t.Fatalf("Fill failed")
		}
	}
	m.Map(OpALU, b, a, func(x int32) int32 { return x * 2 })
	for _, v := range b {
		if v != 14 {
			t.Fatalf("Map failed")
		}
	}
	m.Zip(OpALU, c, a, b, func(x, y int32) int32 { return x + y })
	for _, v := range c {
		if v != 21 {
			t.Fatalf("Zip failed")
		}
	}
	m.Copy(a, c)
	for _, v := range a {
		if v != 21 {
			t.Fatalf("Copy failed")
		}
	}
}

func TestMapWhereRespectsContext(t *testing.T) {
	m := New(2, 8)
	ctx := m.NewContext()
	for i := range ctx {
		ctx[i] = i%2 == 0
	}
	a := m.NewField()
	m.Fill(a, 1)
	m.MapWhere(OpALU, ctx, a, a, func(x int32) int32 { return 99 })
	for i, v := range a {
		want := int32(1)
		if i%2 == 0 {
			want = 99
		}
		if v != want {
			t.Fatalf("MapWhere at %d = %d, want %d", i, v, want)
		}
	}
}

func TestSelectMaskCount(t *testing.T) {
	m := New(2, 10)
	a, b, c := m.NewField(), m.NewField(), m.NewField()
	m.Fill(a, 1)
	m.Fill(b, 2)
	ctx := m.NewContext()
	for i := range ctx {
		ctx[i] = i < 5
	}
	m.Select(ctx, c, a, b)
	for i, v := range c {
		if (i < 5 && v != 1) || (i >= 5 && v != 2) {
			t.Fatalf("Select wrong at %d", i)
		}
	}
	if got := m.Count(ctx); got != 5 {
		t.Errorf("Count = %d", got)
	}
	mask := make([]bool, m.VPs())
	m.Mask(mask, c, func(x int32) bool { return x == 2 })
	if got := m.Count(mask); got != 5 {
		t.Errorf("Mask/Count = %d", got)
	}
	m.MaskAnd(mask, c, func(x int32) bool { return false })
	if got := m.Count(mask); got != 0 {
		t.Errorf("MaskAnd should clear all: %d", got)
	}
}

func TestReduce(t *testing.T) {
	m := New(8, 1000)
	a := m.NewField()
	for i := range a {
		a[i] = int32(i)
	}
	want := int64(len(a)-1) * int64(len(a)) / 2
	if got := m.Reduce(a); got != want {
		t.Errorf("Reduce = %d, want %d", got, want)
	}
	if got := m.ReduceMax(a); got != int32(len(a)-1) {
		t.Errorf("ReduceMax = %d", got)
	}
}

func TestReduceMaxAllNegative(t *testing.T) {
	m := New(4, 64)
	a := m.NewField()
	for i := range a {
		a[i] = -int32(i) - 5
	}
	if got := m.ReduceMax(a); got != -5 {
		t.Errorf("ReduceMax = %d, want -5", got)
	}
}

func plusScanRef(src []int32, exclusive bool) []int32 {
	out := make([]int32, len(src))
	var run int64
	for i, v := range src {
		if exclusive {
			out[i] = int32(run)
			run += int64(v)
		} else {
			run += int64(v)
			out[i] = int32(run)
		}
	}
	return out
}

func TestPlusScanMatchesReference(t *testing.T) {
	for _, n := range []int{16, 1000, 10000} {
		for _, excl := range []bool{false, true} {
			m := New(16, n)
			src := m.NewField()
			rng := rand.New(rand.NewSource(int64(n)))
			for i := range src {
				src[i] = int32(rng.Intn(100) - 20)
			}
			dst := m.NewField()
			m.PlusScan(dst, src, excl)
			ref := plusScanRef(src, excl)
			for i := range dst {
				if dst[i] != ref[i] {
					t.Fatalf("n=%d excl=%v: scan[%d] = %d, want %d", n, excl, i, dst[i], ref[i])
				}
			}
		}
	}
}

func TestPlusScanAliases(t *testing.T) {
	m := New(4, 100)
	src := m.NewField()
	for i := range src {
		src[i] = 1
	}
	ref := plusScanRef(src, false)
	m.PlusScan(src, src, false)
	for i := range src {
		if src[i] != ref[i] {
			t.Fatalf("aliased scan wrong at %d", i)
		}
	}
}

func segScanRef(src []int32, seg []bool, exclusive bool) []int32 {
	out := make([]int32, len(src))
	var run int64
	for i, v := range src {
		if seg[i] {
			run = 0
		}
		if exclusive {
			out[i] = int32(run)
			run += int64(v)
		} else {
			run += int64(v)
			out[i] = int32(run)
		}
	}
	return out
}

func TestSegPlusScanMatchesReference(t *testing.T) {
	for _, n := range []int{64, 5000, 20000} {
		for _, excl := range []bool{false, true} {
			m := New(32, n)
			src := m.NewField()
			seg := make([]bool, m.VPs())
			rng := rand.New(rand.NewSource(int64(n) + 7))
			for i := range src {
				src[i] = int32(rng.Intn(9))
				seg[i] = rng.Intn(13) == 0
			}
			seg[0] = true
			dst := m.NewField()
			m.SegPlusScan(dst, src, seg, excl)
			ref := segScanRef(src, seg, excl)
			for i := range dst {
				if dst[i] != ref[i] {
					t.Fatalf("n=%d excl=%v: segscan[%d] = %d, want %d", n, excl, i, dst[i], ref[i])
				}
			}
		}
	}
}

func TestSegCopyScan(t *testing.T) {
	for _, n := range []int{64, 20000} {
		m := New(16, n)
		src := m.NewField()
		seg := make([]bool, m.VPs())
		rng := rand.New(rand.NewSource(int64(n) + 13))
		for i := range src {
			src[i] = int32(rng.Intn(1000))
			seg[i] = rng.Intn(17) == 0
		}
		dst := m.NewField()
		m.SegCopyScan(dst, src, seg)
		cur := src[0]
		for i := range dst {
			if seg[i] {
				cur = src[i]
			}
			if dst[i] != cur {
				t.Fatalf("n=%d: copyscan[%d] = %d, want %d", n, i, dst[i], cur)
			}
		}
	}
}

func TestSegBroadcastSum(t *testing.T) {
	for _, n := range []int{64, 4096, 30000} {
		m := New(16, n)
		src := m.NewField()
		seg := make([]bool, m.VPs())
		rng := rand.New(rand.NewSource(int64(n) + 19))
		for i := range src {
			src[i] = int32(rng.Intn(5))
			seg[i] = rng.Intn(11) == 0
		}
		seg[0] = true
		dst := m.NewField()
		m.SegBroadcastSum(dst, src, seg)
		// Reference: compute each segment's total.
		want := make([]int32, m.VPs())
		i := 0
		for i < m.VPs() {
			j := i + 1
			for j < m.VPs() && !seg[j] {
				j++
			}
			var total int32
			for k := i; k < j; k++ {
				total += src[k]
			}
			for k := i; k < j; k++ {
				want[k] = total
			}
			i = j
		}
		for k := range dst {
			if dst[k] != want[k] {
				t.Fatalf("n=%d: broadcastsum[%d] = %d, want %d", n, k, dst[k], want[k])
			}
		}
	}
}

func TestEnumerate(t *testing.T) {
	m := New(8, 100)
	ctx := m.NewContext()
	for i := range ctx {
		ctx[i] = i%3 == 0
	}
	dst := m.NewField()
	count := m.Enumerate(dst, ctx)
	wantCount := 0
	for i := range ctx {
		if ctx[i] {
			if dst[i] != int32(wantCount) {
				t.Fatalf("Enumerate[%d] = %d, want %d", i, dst[i], wantCount)
			}
			wantCount++
		} else if dst[i] != -1 {
			t.Fatalf("inactive processor %d must get -1", i)
		}
	}
	if count != wantCount {
		t.Errorf("Enumerate count = %d, want %d", count, wantCount)
	}
}

func TestSortPermSortsAndIsStable(t *testing.T) {
	for _, n := range []int{32, 1000, 30000} {
		m := New(16, n)
		keys := m.NewField()
		rng := rand.New(rand.NewSource(int64(n) + 23))
		for i := range keys {
			keys[i] = int32(rng.Intn(50)) // many duplicates to exercise stability
		}
		perm := m.SortPerm(keys)
		// Permutation validity.
		seen := make([]bool, m.VPs())
		for _, p := range perm {
			if seen[p] {
				t.Fatalf("n=%d: perm not a permutation", n)
			}
			seen[p] = true
		}
		// Sortedness and stability.
		for r := 1; r < m.VPs(); r++ {
			ka, kb := keys[perm[r-1]], keys[perm[r]]
			if ka > kb {
				t.Fatalf("n=%d: not sorted at rank %d", n, r)
			}
			if ka == kb && perm[r-1] > perm[r] {
				t.Fatalf("n=%d: not stable at rank %d", n, r)
			}
		}
	}
}

func TestSortPermLargeKeys(t *testing.T) {
	m := New(8, 5000)
	keys := m.NewField()
	rng := rand.New(rand.NewSource(31))
	for i := range keys {
		keys[i] = rng.Int31()
	}
	perm := m.SortPerm(keys)
	for r := 1; r < m.VPs(); r++ {
		if keys[perm[r-1]] > keys[perm[r]] {
			t.Fatalf("large-key sort failed at rank %d", r)
		}
	}
}

func TestSortPermAllEqualKeysIsIdentity(t *testing.T) {
	m := New(4, 256)
	keys := m.NewField()
	perm := m.SortPerm(keys)
	for i, p := range perm {
		if int(p) != i {
			t.Fatalf("stable sort of equal keys must be identity, perm[%d]=%d", i, p)
		}
	}
}

func TestSortPermProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64 + rng.Intn(512)
		m := New(8, n)
		keys := m.NewField()
		for i := range keys {
			keys[i] = int32(rng.Intn(1 << 20))
		}
		ref := append([]int32(nil), keys...)
		sort.Slice(ref, func(a, b int) bool { return ref[a] < ref[b] })
		perm := m.SortPerm(keys)
		for r := range perm {
			if keys[perm[r]] != ref[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGatherScatterInverse(t *testing.T) {
	m := New(8, 1024)
	src := m.NewField()
	rng := rand.New(rand.NewSource(37))
	for i := range src {
		src[i] = rng.Int31()
	}
	keys := m.NewField()
	for i := range keys {
		keys[i] = int32(rng.Intn(100))
	}
	perm := m.SortPerm(keys)
	gathered, back := m.NewField(), m.NewField()
	m.Gather(gathered, src, perm)
	m.Scatter(back, gathered, perm)
	for i := range back {
		if back[i] != src[i] {
			t.Fatalf("Scatter(Gather(x)) != x at %d", i)
		}
	}
}

func TestGatherMany(t *testing.T) {
	m := New(4, 256)
	a, b := m.NewField(), m.NewField()
	for i := range a {
		a[i] = int32(i)
		b[i] = int32(i * 10)
	}
	keys := m.NewField()
	for i := range keys {
		keys[i] = int32(len(keys) - i)
	}
	perm := m.SortPerm(keys)
	scratch := m.NewField()
	m.GatherMany(perm, scratch, a, b)
	for i := range a {
		if b[i] != a[i]*10 {
			t.Fatalf("GatherMany must permute all fields consistently")
		}
	}
	if a[0] != int32(len(a)-1) {
		t.Errorf("descending keys must reverse the field, a[0]=%d", a[0])
	}
}

func TestShifts(t *testing.T) {
	m := New(4, 64)
	src, dst := m.NewField(), m.NewField()
	for i := range src {
		src[i] = int32(i)
	}
	m.ShiftUp(dst, src, -1)
	if dst[0] != -1 || dst[1] != 0 || dst[63] != 62 {
		t.Errorf("ShiftUp wrong: %d %d %d", dst[0], dst[1], dst[63])
	}
	m.ShiftDown(dst, src, -7)
	if dst[63] != -7 || dst[0] != 1 {
		t.Errorf("ShiftDown wrong: %d %d", dst[63], dst[0])
	}
}

func TestCostAccumulation(t *testing.T) {
	m := New(16, 16*64)
	m.Phase("move")
	a := m.NewField()
	m.Fill(a, 1)
	m.Map(OpMul, a, a, func(x int32) int32 { return x * 3 })
	m.Phase("sort")
	m.SortPerm(a)
	m.FlushTimers()
	move := m.Cost().Phase("move")
	srt := m.Cost().Phase("sort")
	if move.Cycles <= 0 || move.Ops != 2 {
		t.Errorf("move phase cost: %+v", move)
	}
	if srt.Cycles <= 0 {
		t.Errorf("sort phase cost: %+v", srt)
	}
	if m.Cost().TotalCycles() != move.Cycles+srt.Cycles {
		t.Errorf("TotalCycles mismatch")
	}
	phases := m.Cost().Phases()
	if len(phases) < 2 {
		t.Errorf("Phases() = %v", phases)
	}
}

// TestVPRatioAmortization checks the Figure 7 mechanism in the cost model:
// at fixed machine size, the modelled per-particle cost of a fixed
// instruction sequence falls as the number of particles (hence VP ratio)
// rises, because the front-end issue overhead is shared by more particles.
func TestVPRatioAmortization(t *testing.T) {
	perParticle := func(vps int) float64 {
		m := New(1024, vps)
		a := m.NewField()
		m.Fill(a, 3)
		for k := 0; k < 10; k++ {
			m.Map(OpALU, a, a, func(x int32) int32 { return x + 1 })
		}
		return float64(m.Cost().TotalCycles()) / float64(vps)
	}
	c1 := perParticle(1024)     // VPR 1
	c4 := perParticle(4 * 1024) // VPR 4
	c16 := perParticle(16 * 1024)
	if !(c1 > c4 && c4 > c16) {
		t.Errorf("per-particle cost must fall with VP ratio: %v %v %v", c1, c4, c16)
	}
}

// TestSortCrossTrafficDropsWithVPR: with more particles per physical
// processor, a random permutation keeps a larger fraction of traffic
// on-processor only when locality exists; for the sort of an already
// nearly-sorted key field (the common case between time steps) cross
// traffic per particle should drop as VPR rises.
func TestSortCrossTrafficDropsWithVPR(t *testing.T) {
	cross := func(vps int) float64 {
		m := New(256, vps)
		keys := m.NewField()
		rng := rand.New(rand.NewSource(99))
		for i := range keys {
			// nearly sorted: key grows with index, small random displacement
			keys[i] = int32(i/4 + rng.Intn(3))
		}
		m.Phase("sort")
		m.SortPerm(keys)
		return float64(m.Cost().Phase("sort").RouterMsgs) / float64(vps)
	}
	lo := cross(256)     // VPR 1
	hi := cross(256 * 8) // VPR 8
	if hi >= lo {
		t.Errorf("cross traffic per particle should drop with VPR: VPR1=%v VPR8=%v", lo, hi)
	}
}

func TestFieldLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on mismatched field length")
		}
	}()
	m := New(4, 64)
	bad := make(Field, 10)
	m.Fill(bad, 0)
}

func TestNewPanicsOnNonPositiveProcessors(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	New(0, 10)
}

func TestUpdateVisitsEveryLane(t *testing.T) {
	m := New(8, 300)
	visited := make([]int32, m.VPs())
	m.Update(1, func(i int) { visited[i]++ })
	for i, v := range visited {
		if v != 1 {
			t.Fatalf("lane %d visited %d times", i, v)
		}
	}
}
