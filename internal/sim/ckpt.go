package sim

import (
	"io"

	"dsmc/internal/ckpt"
)

// CheckpointSections writes the wind tunnel's full mutable state as
// sections of an open checkpoint stream: the engine counters and store,
// then the 2D domain state — plunger position, reservoir contents, and
// the serial RNG stream that feeds reservoir deposits and the plunger
// refill. Callers that embed a simulation inside a larger checkpoint
// (internal/run wraps job progress around one) use this; standalone
// checkpoints go through WriteCheckpoint.
func (s *SimOf[F]) CheckpointSections(w *ckpt.Writer) {
	ckpt.WriteEngine(w, s.eng)
	w.F64(s.dom.plungerX)
	ckpt.WriteReservoir(w, s.dom.res)
	ckpt.WriteStream(w, s.dom.r.State())
}

// RestoreSections restores state written by CheckpointSections into a
// simulation built from the same configuration. Any worker count works:
// per-phase randomness is counter-based, so no worker-local state exists
// to restore — continuing from the restored state is bit-identical to
// never having stopped.
func (s *SimOf[F]) RestoreSections(r *ckpt.Reader) error {
	if err := ckpt.ReadEngine(r, s.eng); err != nil {
		return err
	}
	s.dom.plungerX = r.F64()
	if err := ckpt.ReadReservoir(r, s.dom.res); err != nil {
		return err
	}
	s.dom.r.SetState(ckpt.ReadStream(r))
	return r.Err()
}

// WriteCheckpoint writes a standalone checkpoint of the simulation.
func (s *SimOf[F]) WriteCheckpoint(wr io.Writer) error {
	w := ckpt.NewWriter(wr, ckpt.Kind2D, ckpt.PrecOf[F](), s.grid.Cells())
	s.CheckpointSections(w)
	return w.Close()
}

// ReadCheckpoint restores a standalone checkpoint into the simulation,
// which must have been built from the same configuration (same grid,
// same precision; the worker count is free to differ).
func (s *SimOf[F]) ReadCheckpoint(rd io.Reader) error {
	r, err := ckpt.NewReader(rd)
	if err != nil {
		return err
	}
	if err := ckpt.CheckShape(r, ckpt.Kind2D, ckpt.PrecOf[F](), s.grid.Cells()); err != nil {
		return err
	}
	if err := s.RestoreSections(r); err != nil {
		return err
	}
	return r.Close()
}
