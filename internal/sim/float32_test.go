package sim

import (
	"math"
	"testing"

	"dsmc/internal/phys"
	"dsmc/internal/sample"
)

// TestFloat32ParallelDeterminism: the float32 instantiation draws from
// the same float64-keyed counter-based streams, so it too must be
// bit-identical for any worker count.
func TestFloat32ParallelDeterminism(t *testing.T) {
	run := func(workers int) *SimOf[float32] {
		cfg := smallConfig()
		cfg.Workers = workers
		s, err := NewOf[float32](cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run(15)
		return s
	}
	s1, s8 := run(1), run(8)
	if s1.NFlow() != s8.NFlow() || s1.Collisions() != s8.Collisions() {
		t.Fatalf("flow %d vs %d, collisions %d vs %d",
			s1.NFlow(), s8.NFlow(), s1.Collisions(), s8.Collisions())
	}
	a, b := s1.Store(), s8.Store()
	for i := 0; i < s1.NFlow(); i++ {
		if math.Float32bits(a.X[i]) != math.Float32bits(b.X[i]) ||
			math.Float32bits(a.U[i]) != math.Float32bits(b.U[i]) {
			t.Fatalf("state diverged at particle %d", i)
		}
	}
}

// TestFloat32TracksFloat64 is a cheap seam check: over a short transient
// the float32 flow must stay statistically on top of the float64 flow
// (identical draws, only storage rounding differs), so the aggregate
// counters match closely long before the trajectories decorrelate.
func TestFloat32TracksFloat64(t *testing.T) {
	cfg := smallConfig()
	s64, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s32, err := NewOf[float32](cfg)
	if err != nil {
		t.Fatal(err)
	}
	s64.Run(10)
	s32.Run(10)
	if s64.NFlow() == 0 || s32.NFlow() == 0 {
		t.Fatal("empty flow")
	}
	if f := float64(s32.NFlow()) / float64(s64.NFlow()); f < 0.99 || f > 1.01 {
		t.Errorf("flow populations diverged: %d vs %d", s32.NFlow(), s64.NFlow())
	}
	c64, c32 := float64(s64.Collisions()), float64(s32.Collisions())
	if math.Abs(c32-c64)/c64 > 0.02 {
		t.Errorf("collision counts diverged: %v vs %v", c32, c64)
	}
	e64 := s64.TotalEnergy() / float64(s64.NFlow())
	e32 := s32.TotalEnergy() / float64(s32.NFlow())
	if math.Abs(e32-e64)/e64 > 0.01 {
		t.Errorf("per-particle energy diverged: %v vs %v", e32, e64)
	}
}

// TestWedgeShockValidationFloat32 is the paper's validation experiment on
// the float32 backend: Mach 4 over the 30° wedge must still produce the
// ~45° oblique shock and the ~3.7 Rankine–Hugoniot density rise, within
// tolerances loosened one notch over the float64 test (the rounding noise
// sits far below the statistical scatter at this particle count).
func TestWedgeShockValidationFloat32(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: full wedge flow")
	}
	cfg := DefaultConfig(1)
	cfg.NPerCell = 8
	cfg.Seed = 42
	s, err := NewOf[float32](cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(600) // reach steady state
	acc := sample.NewAccumulator(s.Grid(), s.Volumes(), cfg.NPerCell)
	for k := 0; k < 300; k++ {
		s.Step()
		s.SampleInto(acc)
	}
	rho := acc.Density()

	beta, err := phys.ObliqueShockBeta(4, 30*math.Pi/180, phys.GammaDiatomic)
	if err != nil {
		t.Fatal(err)
	}
	wantRatio := phys.RHDensityRatio(phys.NormalMach(4, beta), phys.GammaDiatomic)

	angle := sample.ShockAngle(rho, s.Grid(), 26, 43, wantRatio)
	if math.IsNaN(angle) {
		t.Fatal("no shock front found")
	}
	angleDeg := angle * 180 / math.Pi
	if math.Abs(angleDeg-45) > 6 {
		t.Errorf("float32 shock angle %.1f°, theory 45°", angleDeg)
	}
	post := sample.RegionMean(rho, s.Grid(), s.Volumes(), 36, 12, 44, 18)
	if math.Abs(post-wantRatio)/wantRatio > 0.25 {
		t.Errorf("float32 post-shock density ratio %.2f, theory %.2f", post, wantRatio)
	}
	upstream := sample.RegionMean(rho, s.Grid(), s.Volumes(), 2, 2, 16, 40)
	if math.Abs(upstream-1) > 0.1 {
		t.Errorf("float32 freestream density %.3f, want 1", upstream)
	}
}
