package sim

import (
	"math"
	"testing"

	"dsmc/internal/baseline"
	"dsmc/internal/geom"
	"dsmc/internal/phys"
	"dsmc/internal/sample"
)

// smallConfig is a cheap but physically sane configuration for unit tests.
func smallConfig() Config {
	cfg := DefaultConfig(1)
	cfg.NX, cfg.NY = 48, 24
	cfg.Wedge = &geom.Wedge{LeadX: 10, Base: 12, Angle: 30 * math.Pi / 180}
	cfg.NPerCell = 6
	cfg.Seed = 7
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := smallConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero grid", func(c *Config) { c.NX = 0 }},
		{"zero density", func(c *Config) { c.NPerCell = 0 }},
		{"zero thermal speed", func(c *Config) { c.Free.Cm = 0 }},
		{"subsonic", func(c *Config) { c.Free.Mach = 0.5 }},
		{"wedge too tall", func(c *Config) {
			c.Wedge = &geom.Wedge{LeadX: 1, Base: 40, Angle: 40 * math.Pi / 180}
		}},
		{"time step too large", func(c *Config) { c.Free.Cm = 0.9 }},
	}
	for _, tc := range cases {
		cfg := smallConfig()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig(1)
	if cfg.NX != 98 || cfg.NY != 64 {
		t.Errorf("grid %dx%d, paper uses 98x64", cfg.NX, cfg.NY)
	}
	if cfg.Wedge.LeadX != 20 || cfg.Wedge.Base != 25 {
		t.Errorf("wedge placement: paper places it 20 cells in, 25 wide")
	}
	if math.Abs(cfg.Wedge.Angle-30*math.Pi/180) > 1e-12 {
		t.Errorf("wedge angle must be 30°")
	}
	if cfg.Free.Mach != 4 {
		t.Errorf("paper simulates Mach 4")
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestNewPlacesFreestream(t *testing.T) {
	cfg := smallConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Store()
	if st.Len() == 0 {
		t.Fatal("no particles placed")
	}
	var sumU float64
	for i := 0; i < st.Len(); i++ {
		p := geom.Vec2{X: st.X[i], Y: st.Y[i]}
		if !(&geom.Tunnel{W: float64(cfg.NX), H: float64(cfg.NY), Wedge: cfg.Wedge}).Inside(p) {
			t.Fatalf("initial particle outside gas region: %v", p)
		}
		sumU += st.U[i]
	}
	meanU := sumU / float64(st.Len())
	if math.Abs(meanU-cfg.Free.Velocity()) > 0.02*cfg.Free.Velocity() {
		t.Errorf("mean streamwise velocity %v, want %v", meanU, cfg.Free.Velocity())
	}
	if s.NReservoir() == 0 {
		t.Errorf("reservoir must start stocked")
	}
}

func TestStepMaintainsInvariants(t *testing.T) {
	cfg := smallConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n0 := s.NFlow()
	tun := geom.Tunnel{W: float64(cfg.NX), H: float64(cfg.NY), Wedge: cfg.Wedge}
	for step := 0; step < 60; step++ {
		s.Step()
		st := s.Store()
		for i := 0; i < st.Len(); i++ {
			if math.IsNaN(st.X[i]) || math.IsNaN(st.U[i]) {
				t.Fatalf("NaN state at step %d", step)
			}
			if st.Y[i] < 0 || st.Y[i] > tun.H {
				t.Fatalf("particle outside walls at step %d: y=%v", step, st.Y[i])
			}
			if cfg.Wedge.Contains(geom.Vec2{X: st.X[i], Y: st.Y[i]}) {
				t.Fatalf("particle inside wedge at step %d", step)
			}
		}
	}
	if s.StepCount() != 60 {
		t.Errorf("StepCount = %d", s.StepCount())
	}
	// The plunger refills keep the flow population near its target.
	if f := float64(s.NFlow()) / float64(n0); f < 0.85 || f > 1.15 {
		t.Errorf("flow population drifted to %.2f of initial", f)
	}
	if s.Collisions() == 0 {
		t.Errorf("no collisions occurred")
	}
}

func TestPlungerCycleRefillsVoid(t *testing.T) {
	cfg := smallConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Run long enough for several plunger cycles
	// (trigger / u∞ ≈ 10 steps per cycle).
	s.Run(40)
	st := s.Store()
	// The upstream band must be populated (void refilled), with roughly
	// freestream density.
	inBand := 0
	for i := 0; i < st.Len(); i++ {
		if st.X[i] < 4 {
			inBand++
		}
	}
	want := cfg.NPerCell * 4 * float64(cfg.NY)
	if f := float64(inBand) / want; f < 0.6 || f > 1.4 {
		t.Errorf("upstream band population %.2f of freestream target", f)
	}
}

func TestReservoirExchanges(t *testing.T) {
	cfg := smallConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res0 := s.NReservoir()
	s.Run(50)
	// Particles exit downstream into the reservoir and are withdrawn by
	// the plunger refills; the reservoir level must have moved at least
	// once (statistically certain at these rates).
	if s.NReservoir() == res0 && s.Collisions() == 0 {
		t.Errorf("reservoir never exchanged particles")
	}
}

func TestPhaseTimesPopulated(t *testing.T) {
	cfg := smallConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(5)
	pt := s.PhaseTimes()
	for _, name := range []string{"move+boundary", "sort", "select", "collide"} {
		if _, ok := pt[name]; !ok {
			t.Errorf("missing phase %q", name)
		}
	}
	if pt["sort"] <= 0 {
		t.Errorf("sort time not recorded")
	}
}

func TestPluggableScheme(t *testing.T) {
	cfg := smallConfig()
	cfg.Scheme = baseline.NewBirdTC()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(10)
	if s.Collisions() == 0 {
		t.Errorf("Bird scheme produced no collisions")
	}
}

func TestDiffuseWallsRun(t *testing.T) {
	cfg := smallConfig()
	cfg.Wall = geom.DiffuseState{Model: geom.DiffuseIsothermal, WallCm: cfg.Free.Cm}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(20)
	st := s.Store()
	for i := 0; i < st.Len(); i++ {
		if st.Y[i] < 0 || st.Y[i] > float64(cfg.NY) {
			t.Fatalf("diffuse wall leaked a particle")
		}
		if cfg.Wedge.Contains(geom.Vec2{X: st.X[i], Y: st.Y[i]}) {
			t.Fatalf("diffuse wall left a particle in the wedge")
		}
	}
}

// TestEmptyTunnelStaysFreestream: with no body, the wind tunnel must hold
// uniform freestream density — the plunger and sink in equilibrium. This
// is the cleanest end-to-end check of the boundary machinery.
func TestEmptyTunnelStaysFreestream(t *testing.T) {
	cfg := smallConfig()
	cfg.Wedge = nil
	cfg.NPerCell = 12
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(60) // several flow-through times of the 48-cell tunnel
	acc := sample.NewAccumulator(s.Grid(), s.Volumes(), cfg.NPerCell)
	for k := 0; k < 40; k++ {
		s.Step()
		sample.AddFlow(acc, s.Store())
	}
	rho := acc.Density()
	mean := sample.RegionMean(rho, s.Grid(), s.Volumes(), 2, 2, cfg.NX-2, cfg.NY-2)
	if math.Abs(mean-1) > 0.05 {
		t.Errorf("empty-tunnel density %.3f, want 1.0", mean)
	}
	// No systematic streamwise gradient.
	up := sample.RegionMean(rho, s.Grid(), s.Volumes(), 2, 2, cfg.NX/2, cfg.NY-2)
	down := sample.RegionMean(rho, s.Grid(), s.Volumes(), cfg.NX/2, 2, cfg.NX-2, cfg.NY-2)
	if math.Abs(up-down) > 0.08 {
		t.Errorf("streamwise density gradient: upstream %.3f downstream %.3f", up, down)
	}
}

// TestWedgeShockValidation is the paper's validation experiment at reduced
// scale: Mach 4 over the 30° wedge must produce a ~45° shock with a ~3.7
// density rise. Run with the rarefied setting (λ∞ = 0.5).
func TestWedgeShockValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: full wedge flow")
	}
	cfg := DefaultConfig(1)
	cfg.NPerCell = 8
	cfg.Seed = 42
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(600) // reach steady state
	acc := sample.NewAccumulator(s.Grid(), s.Volumes(), cfg.NPerCell)
	for k := 0; k < 300; k++ {
		s.Step()
		sample.AddFlow(acc, s.Store())
	}
	rho := acc.Density()

	beta, err := phys.ObliqueShockBeta(4, 30*math.Pi/180, phys.GammaDiatomic)
	if err != nil {
		t.Fatal(err)
	}
	wantRatio := phys.RHDensityRatio(phys.NormalMach(4, beta), phys.GammaDiatomic)

	// Shock angle from the density front above the ramp.
	angle := sample.ShockAngle(rho, s.Grid(), 26, 43, wantRatio)
	if math.IsNaN(angle) {
		t.Fatal("no shock front found")
	}
	angleDeg := angle * 180 / math.Pi
	if math.Abs(angleDeg-45) > 5 {
		t.Errorf("shock angle %.1f°, theory 45°", angleDeg)
	}

	// Post-shock density in the region between ramp and shock.
	post := sample.RegionMean(rho, s.Grid(), s.Volumes(), 36, 12, 44, 18)
	if math.Abs(post-wantRatio)/wantRatio > 0.2 {
		t.Errorf("post-shock density ratio %.2f, theory %.2f", post, wantRatio)
	}

	// Upstream of the shock the gas is undisturbed.
	upstream := sample.RegionMean(rho, s.Grid(), s.Volumes(), 2, 2, 16, 40)
	if math.Abs(upstream-1) > 0.08 {
		t.Errorf("freestream density %.3f, want 1", upstream)
	}
}

// TestVibrationalModeRuns exercises the future-work vibrational
// relaxation: with ZVib enabled the flow carries vibrational energy whose
// per-particle level stays near the freestream equilibrium (2·sigma² for
// two continuous degrees of freedom), and the combined
// translational+rotational+vibrational energy per particle is stationary.
func TestVibrationalModeRuns(t *testing.T) {
	cfg := smallConfig()
	cfg.Wedge = nil // empty tunnel: the whole flow stays at freestream T
	cfg.ZVib = 5
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sigma := cfg.Free.ComponentSigma()
	wantVib := 2 * sigma * sigma
	vib0 := s.TotalVibEnergy() / float64(s.NFlow())
	if math.Abs(vib0-wantVib)/wantVib > 0.1 {
		t.Fatalf("initial vib energy %v, equilibrium %v", vib0, wantVib)
	}
	e0 := (s.TotalEnergy() + s.TotalVibEnergy()) / float64(s.NFlow())
	s.Run(80)
	vib1 := s.TotalVibEnergy() / float64(s.NFlow())
	if math.Abs(vib1-wantVib)/wantVib > 0.25 {
		t.Errorf("vibrational energy drifted from equilibrium: %v vs %v", vib1, wantVib)
	}
	e1 := (s.TotalEnergy() + s.TotalVibEnergy()) / float64(s.NFlow())
	// The wind tunnel is open (plunger work, in/outflow), so only demand
	// the per-particle energy stays in a physical band.
	if math.Abs(e1-e0)/e0 > 0.2 {
		t.Errorf("total per-particle energy drifted: %v -> %v", e0, e1)
	}
	if s.Collisions() == 0 {
		t.Errorf("no collisions")
	}
}
