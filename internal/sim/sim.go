// Package sim is the wind-tunnel backend of the paper's simulation: the
// same four sub-steps per time step (collisionless motion, boundary
// conditions, selection of collision partners, collision of selected
// partners), the same arrangement (specular walls, wedge body, upstream
// plunger, downstream sink into a reservoir) — the role the
// hand-vectorized Cray-2 implementation plays in the paper's performance
// comparison.
//
// The phase pipeline itself lives in internal/engine, shared with the 3D
// shock tube and generic over the storage precision; this package
// supplies only the 2D parts — grid indexing, the wedge/wall/plunger/
// sink boundary conditions, and the reservoir bookkeeping — as the
// engine's Domain, plus configuration. Sim is the float64 instantiation
// (bit-identical to the pre-unification backend, pinned by
// internal/golden); NewOf[float32] runs the same physics at half the
// memory traffic.
package sim

import (
	"errors"
	"fmt"
	"math"
	"time"

	"dsmc/internal/baseline"
	"dsmc/internal/collide"
	"dsmc/internal/engine"
	"dsmc/internal/geom"
	"dsmc/internal/grid"
	"dsmc/internal/kernel"
	"dsmc/internal/molec"
	"dsmc/internal/par"
	"dsmc/internal/particle"
	"dsmc/internal/phys"
	"dsmc/internal/rng"
	"dsmc/internal/sample"
)

// Config specifies a wind-tunnel simulation. The zero value is not
// runnable; use DefaultConfig as a starting point.
type Config struct {
	// NX, NY are the grid dimensions in cells (the paper: 98×64).
	NX, NY int
	// Wedge is the body; nil simulates an empty tunnel.
	Wedge *geom.Wedge
	// Wedge2 is an optional second body downstream of (and disjoint
	// from) Wedge — the double-wedge scenario. Requires Wedge.
	Wedge2 *geom.Wedge
	// Free is the freestream state (Mach, thermal speed, mean free path).
	Free phys.Freestream
	// Model is the molecular model (default Maxwell molecules).
	Model molec.Model
	// NPerCell is the freestream particle count per unit cell volume.
	NPerCell float64
	// PlungerTrigger is the downstream distance at which the plunger
	// snaps back (cells).
	PlungerTrigger float64
	// Wall selects the gas-surface interaction (specular by default).
	Wall geom.DiffuseState
	// Scheme overrides the collision scheme (default McDonald–Baganoff).
	Scheme baseline.Scheme
	// Seed seeds all randomness.
	Seed uint64
	// ReservoirCapacity bounds the reservoir (default: 12% of flow).
	ReservoirCapacity int
	// ZVib enables vibrational relaxation (the future-work extension)
	// when positive: each collision exchanges energy with the particles'
	// continuous vibrational reservoirs with probability 1/ZVib.
	ZVib float64
	// Workers is the CPU worker count the phases are sharded over
	// (move/boundary over contiguous particle chunks, sort scatter over
	// particle chunks, shuffle/select/collide/sample over cell ranges).
	// 0 selects runtime.NumCPU(). Results are bit-identical for any
	// worker count: every cell (and, at diffuse walls, every particle)
	// draws from its own counter-based stream keyed by (seed, step,
	// phase, index) rather than from a shared sequential stream.
	Workers int
	// SortTile is the sort's cell-block scatter window width in cells;
	// <= 0 selects the default. A cache knob only — never changes
	// results.
	SortTile int
	// Regions selects the spatially-blocked (owner-computes) stepping
	// mode: contiguous per-worker cell regions, rebalanced by particle
	// count, stepped end-to-end by their owners with migrant exchange at
	// the sort. Bit-identical to the default sharding.
	Regions bool
}

// DefaultConfig returns the paper's configuration at a particle density
// scaled by scale in (0, 1]: scale = 1 reproduces the 512k-particle run
// (460k in flow, the rest in the reservoir).
func DefaultConfig(scale float64) Config {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	w := geom.Wedge{LeadX: 20, Base: 25, Angle: 30 * math.Pi / 180}
	return Config{
		NX:    98,
		NY:    64,
		Wedge: &w,
		Free: phys.Freestream{
			Mach:   4,
			Cm:     0.125,
			Lambda: 0.5,
			Gamma:  phys.GammaDiatomic,
		},
		Model:          molec.Maxwell(),
		NPerCell:       75 * scale,
		PlungerTrigger: 4,
		Seed:           1988,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.NX <= 0 || c.NY <= 0 {
		return errors.New("sim: grid dimensions must be positive")
	}
	if c.NPerCell <= 0 {
		return errors.New("sim: NPerCell must be positive")
	}
	if c.Free.Cm <= 0 {
		return errors.New("sim: freestream thermal speed must be positive")
	}
	if c.Free.Mach <= 1 {
		return errors.New("sim: wind tunnel requires supersonic freestream (downstream boundary must be supersonic)")
	}
	if c.Wedge != nil {
		if c.Wedge.LeadX < 0 || c.Wedge.TrailX() > float64(c.NX) || c.Wedge.Height() >= float64(c.NY) {
			return errors.New("sim: wedge does not fit in the tunnel")
		}
	}
	if c.Wedge2 != nil {
		if c.Wedge == nil {
			return errors.New("sim: Wedge2 requires Wedge")
		}
		if c.Wedge2.LeadX < 0 || c.Wedge2.TrailX() > float64(c.NX) || c.Wedge2.Height() >= float64(c.NY) {
			return errors.New("sim: second wedge does not fit in the tunnel")
		}
		if c.Wedge2.LeadX < c.Wedge.TrailX() && c.Wedge.LeadX < c.Wedge2.TrailX() {
			return errors.New("sim: wedges overlap; their base intervals must be disjoint")
		}
	}
	if err := c.Free.ValidateTimeStep(); err != nil {
		return err
	}
	return nil
}

// layout2D is the 2D backend's stream-domain encoding, preserved exactly
// from the pre-unification code so the unified engine's float64 output
// stays bit-identical: sort (in-cell shuffle, lane = cell), select
// (lane = cell), collide (lane = cell), wall (diffuse re-emission,
// lane = particle).
var layout2D = engine.StreamLayout{NumDomains: 4, Sort: 0, Select: 1, Collide: 2, Wall: 3}

// Sim is the float64 wind-tunnel simulation — the reference precision.
type Sim = SimOf[float64]

// SimOf is a running wind-tunnel simulation at storage precision F. The
// phase pipeline (cell-major double-buffered store, fused passes,
// allocation-free steady state) is the shared engine's; see that
// package.
type SimOf[F kernel.Float] struct {
	cfg  Config
	grid grid.Grid
	vols []float64
	eng  *engine.Engine[F]
	dom  *wedgeDomain[F]
}

// New builds a float64 (reference-precision) simulation.
func New(cfg Config) (*Sim, error) { return NewOf[float64](cfg) }

// NewOf builds a simulation with storage precision F from the
// configuration.
func NewOf[F kernel.Float](cfg Config) (*SimOf[F], error) {
	if cfg.Model.Name == "" {
		cfg.Model = molec.Maxwell()
	}
	if cfg.Free.Gamma == 0 {
		cfg.Free.Gamma = cfg.Model.Gamma()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := grid.New(cfg.NX, cfg.NY)
	vols := g.Volumes(cfg.Wedge, cfg.Wedge2)
	var freeVol float64
	for _, v := range vols {
		freeVol += v
	}
	flowTarget := int(cfg.NPerCell * freeVol)
	resCap := cfg.ReservoirCapacity
	if resCap == 0 {
		resCap = flowTarget/8 + 1024
	}
	capacity := flowTarget + resCap + flowTarget/8

	pool := par.New(cfg.Workers)
	sigma := cfg.Free.ComponentSigma()
	dom := &wedgeDomain[F]{
		tun:      geom.Tunnel{W: float64(cfg.NX), H: float64(cfg.NY), Wedge: cfg.Wedge, Wedge2: cfg.Wedge2},
		wall:     cfg.Wall,
		uInf:     cfg.Free.Velocity(),
		trigger:  cfg.PlungerTrigger,
		nPerCell: cfg.NPerCell,
		sigma:    sigma,
		zvib:     cfg.ZVib,
		res:      particle.NewReservoir(resCap, sigma),
		resCap:   resCap,
		r:        rng.NewStream(cfg.Seed),
	}
	dom.grid = g
	// A worker's exit list can never exceed its block span, so sizing it
	// to the largest possible span means it never grows — one of the
	// pre-sizings behind the zero-allocation steady-state Step.
	dom.exits = make([][]int32, pool.Workers())
	blockCap := pool.BlockStep(capacity)
	for b := range dom.exits {
		dom.exits[b] = make([]int32, 0, blockCap)
	}

	store := particle.NewStore[F](capacity)
	shadow := particle.NewStore[F](capacity)
	eng := engine.New(engine.Config{
		Cells: g.Cells(),
		Seed:  cfg.Seed,
		Rule: collide.Rule{
			Model:      cfg.Model,
			PInf:       cfg.Free.SelectionPInf(),
			NInf:       cfg.NPerCell,
			GInf:       math.Sqrt2 * cfg.Free.MeanSpeed(),
			CollideAll: cfg.Free.Lambda <= 0,
		},
		Vols:     vols,
		Layout:   layout2D,
		ZVib:     cfg.ZVib,
		Scheme:   cfg.Scheme,
		SortTile: cfg.SortTile,
		Regions:  cfg.Regions,
	}, dom, pool, store, shadow)
	dom.eng = eng

	// Fill the tunnel with freestream gas and bank the paper's ~10% extra
	// in the reservoir.
	placed := store.InitFreestream(flowTarget, dom.tun.W, dom.tun.H,
		cfg.Free.Velocity(), sigma,
		func(x, y float64) bool { return dom.tun.Inside(geom.Vec2{X: x, Y: y}) }, &dom.r)
	if placed < flowTarget {
		return nil, fmt.Errorf("sim: store capacity exhausted at %d of %d particles", placed, flowTarget)
	}
	dom.res.DepositN(resCap*3/4, &dom.r)
	if cfg.ZVib > 0 {
		dom.initVibEquilibrium(store, 0, store.Len())
	}
	return &SimOf[F]{cfg: cfg, grid: g, vols: vols, eng: eng, dom: dom}, nil
}

// Workers returns the resolved worker count of the phase pool.
func (s *SimOf[F]) Workers() int { return s.eng.Workers() }

// NFlow returns the number of particles currently in the flow.
func (s *SimOf[F]) NFlow() int { return s.eng.Store().Len() }

// NReservoir returns the number of particles banked in the reservoir.
func (s *SimOf[F]) NReservoir() int { return s.dom.res.Len() }

// StepCount returns the number of completed time steps.
func (s *SimOf[F]) StepCount() int { return s.eng.StepCount() }

// Collisions returns the cumulative number of collisions performed.
func (s *SimOf[F]) Collisions() int64 { return s.eng.Collisions() }

// Grid returns the cell grid.
func (s *SimOf[F]) Grid() grid.Grid { return s.grid }

// Volumes returns the per-cell gas volumes (fractional at the wedge).
func (s *SimOf[F]) Volumes() []float64 { return s.vols }

// Rule returns the active selection rule.
func (s *SimOf[F]) Rule() collide.Rule { return s.eng.Rule() }

// PhaseTimes returns cumulative wall time per sub-step.
func (s *SimOf[F]) PhaseTimes() map[string]time.Duration { return s.eng.PhaseTimes() }

// SetStepObserver registers fn to receive each completed step's
// per-phase wall times (nanoseconds, indexed by engine.Phase) and
// particle count — the flight-recorder feed. fn runs on the stepping
// goroutine; nil unregisters.
func (s *SimOf[F]) SetStepObserver(fn func(step int, phaseNs [4]int64, particles int)) {
	s.eng.SetStepObserver(fn)
}

// Step advances the simulation one time step through the four sub-steps.
func (s *SimOf[F]) Step() { s.eng.Step() }

// Run advances n steps.
func (s *SimOf[F]) Run(n int) { s.eng.Run(n) }

// TotalVibEnergy returns the summed vibrational energy of the flow.
func (s *SimOf[F]) TotalVibEnergy() float64 { return s.eng.TotalVibEnergy() }

// CellCounts returns the current per-cell particle counts (valid after the
// sort of the latest step) for samplers.
func (s *SimOf[F]) CellCounts() []int32 { return s.eng.CellCounts() }

// CellStart returns the cell-major bucket boundaries of the latest sort:
// cell c's particles are store indices [CellStart()[c], CellStart()[c+1]).
func (s *SimOf[F]) CellStart() []int32 { return s.eng.CellStart() }

// TotalEnergy returns the flow's total velocity-square sum (diagnostic).
func (s *SimOf[F]) TotalEnergy() float64 { return s.eng.TotalEnergy() }

// Store exposes the particle store for diagnostics and samplers. The
// double-buffer swap makes the pointer alternate between two buffers, so
// re-fetch it after every Step rather than holding it across steps.
func (s *SimOf[F]) Store() *particle.Store[F] { return s.eng.Store() }

// SampleInto accumulates the current snapshot into acc, sharded over cell
// ranges on the simulation's worker pool.
func (s *SimOf[F]) SampleInto(acc *sample.Accumulator) { s.eng.SampleInto(acc) }

// wedgeDomain is the engine Domain of the wind tunnel: grid indexing on
// the 2D grid, the fused boundary conditions (downstream soft sink into
// the reservoir, upstream plunger, hard tunnel walls, wedge), and the
// serial plunger/reservoir bookkeeping around the sharded move pass.
type wedgeDomain[F kernel.Float] struct {
	eng  *engine.Engine[F]
	tun  geom.Tunnel
	grid grid.Grid
	wall geom.DiffuseState

	uInf     float64
	trigger  float64
	nPerCell float64
	sigma    float64
	zvib     float64
	plungerX float64

	res    *particle.Reservoir
	resCap int // resolved reservoir capacity (Config default applied)
	r      rng.Stream

	exits [][]int32 // per-worker downstream-exit lists
}

// CellIndexer returns the sort's per-particle cell lookup: a closure
// over the 2D grid reading the engine's live store, so the histogram
// loop pays a single indirect call per particle.
func (d *wedgeDomain[F]) CellIndexer() func(i int) int32 {
	return func(i int) int32 {
		st := d.eng.Store()
		return int32(d.grid.CellOf(float64(st.X[i]), float64(st.Y[i])))
	}
}

// PreMove advances the plunger and resets the per-worker exit lists the
// tiled Boundary calls append to.
func (d *wedgeDomain[F]) PreMove() {
	d.plungerX += d.uInf
	for w := range d.exits {
		d.exits[w] = d.exits[w][:0]
	}
}

// Boundary enforces all boundary conditions on the just-advanced
// particles [lo, hi) — the downstream soft sink (appended to the
// worker's exit list, removed in PostMove so the parallel pass never
// mutates membership), the upstream plunger (specular reflection in the
// plunger frame), the hard tunnel walls, and the wedge. The geometry
// runs in float64; the columns round once on write-back. Called once
// per cache tile (several times per shard, ascending ranges).
func (d *wedgeDomain[F]) Boundary(st *particle.Store[F], w, lo, hi int) {
	px := d.plungerX
	uInf := d.uInf
	ex := d.exits[w]
	for i := lo; i < hi; i++ {
		x := float64(st.X[i])
		// Downstream sink: record for removal.
		if x > d.tun.W {
			ex = append(ex, int32(i))
			continue
		}
		// Upstream plunger: specular reflection in the plunger frame.
		if x < px {
			st.X[i] = F(2*px - x)
			st.U[i] = F(2*uInf - float64(st.U[i]))
		}
		d.reflectWalls(st, i)
	}
	d.exits[w] = ex
}

// PostMove removes the recorded exits (in descending index order: every
// particle swapped in from the end is then a survivor that already
// received its boundary treatment) and refills the plunger void when
// triggered.
func (d *wedgeDomain[F]) PostMove() {
	for w := len(d.exits) - 1; w >= 0; w-- {
		ex := d.exits[w]
		for k := len(ex) - 1; k >= 0; k-- {
			d.depositToReservoir(int(ex[k]))
		}
	}
	if d.plungerX >= d.trigger {
		d.refillVoid()
	}
}

// PostStep relaxes the reservoir bath one step.
func (d *wedgeDomain[F]) PostStep() { d.res.Relax(&d.r) }

// depositToReservoir moves particle i into the reservoir (velocity is
// re-drawn there from the rectangular distribution). The resolved
// capacity bound keeps the reservoir slice at its construction size, so
// deposits never re-allocate.
func (d *wedgeDomain[F]) depositToReservoir(i int) {
	if d.res.Len() < d.resCap {
		d.res.Deposit(&d.r)
	}
	d.eng.Store().RemoveSwap(i)
}

// reflectWalls applies the hard-wall and wedge interactions for particle i.
func (d *wedgeDomain[F]) reflectWalls(st *particle.Store[F], i int) {
	if d.wall.Model == geom.Specular {
		p := geom.Vec2{X: float64(st.X[i]), Y: float64(st.Y[i])}
		v := geom.Vec2{X: float64(st.U[i]), Y: float64(st.V[i])}
		p2, v2 := d.tun.ReflectSpecular(p, v)
		st.X[i], st.Y[i] = F(p2.X), F(p2.Y)
		st.U[i], st.V[i] = F(v2.X), F(v2.Y)
		return
	}
	d.reflectDiffuse(st, i)
}

// reflectDiffuse handles the extension wall models: positions are mirrored
// as in the specular case, but the velocity is re-emitted from the wall
// distribution; for isothermal walls the out-of-plane and rotational
// components re-equilibrate with the wall too. The re-emission draws from
// the particle's own counter-based stream so the boundary phase can run
// on any worker count without changing results.
func (d *wedgeDomain[F]) reflectDiffuse(st *particle.Store[F], i int) {
	r := d.eng.PhaseStream(layout2D.Wall, i)
	for b := 0; b < 8; b++ {
		p := geom.Vec2{X: float64(st.X[i]), Y: float64(st.Y[i])}
		v := geom.Vec2{X: float64(st.U[i]), Y: float64(st.V[i])}
		var face geom.Face
		if p.Y < 0 {
			face = geom.Face{P: geom.Vec2{X: 0, Y: 0}, N: geom.Vec2{X: 0, Y: 1}}
		} else if p.Y > d.tun.H {
			face = geom.Face{P: geom.Vec2{X: 0, Y: d.tun.H}, N: geom.Vec2{X: 0, Y: -1}}
		} else if wg := d.tun.ContainingWedge(p); wg != nil {
			face = wg.NearestFace(p)
		} else {
			return
		}
		p = face.MirrorPosition(p)
		out := d.wall.Emit(face, v, &r)
		st.X[i], st.Y[i] = F(p.X), F(p.Y)
		st.U[i], st.V[i] = F(out.X), F(out.Y)
		if d.wall.Model == geom.DiffuseIsothermal {
			st.W[i] = F(d.wall.EmitAux(&r))
			st.R1[i] = F(d.wall.EmitAux(&r))
			st.R2[i] = F(d.wall.EmitAux(&r))
		}
	}
}

// refillVoid withdraws the plunger to the upstream wall and fills the void
// it leaves with new particles at freestream conditions, taken from the
// reservoir when available.
func (d *wedgeDomain[F]) refillVoid() {
	void := d.plungerX
	d.plungerX = 0
	area := void * d.tun.H
	want := int(area*d.nPerCell + 0.5)
	st := d.eng.Store()
	for k := 0; k < want; k++ {
		x := d.r.Float64() * void
		y := d.r.Float64() * d.tun.H
		var v collide.State5
		if th, ok := d.res.Withdraw(); ok {
			v = th
		} else {
			// Reservoir exhausted: sample the Gaussian directly (the costly
			// path the reservoir exists to avoid).
			v = collide.State5{
				d.r.Gaussian(0, d.sigma), d.r.Gaussian(0, d.sigma), d.r.Gaussian(0, d.sigma),
				d.r.Gaussian(0, d.sigma), d.r.Gaussian(0, d.sigma),
			}
		}
		v[0] += d.uInf
		idx := st.Append(x, y, v)
		if idx < 0 {
			return
		}
		if d.zvib > 0 {
			d.initVibEquilibrium(st, idx, idx+1)
		}
	}
}

// initVibEquilibrium samples the vibrational energies of particles
// [lo, hi) from the equilibrium (exponential) distribution for two
// continuous vibrational degrees of freedom at the freestream
// temperature: mean 2·sigma² in the Σv² energy units used throughout.
func (d *wedgeDomain[F]) initVibEquilibrium(st *particle.Store[F], lo, hi int) {
	mean := 2 * d.sigma * d.sigma
	for i := lo; i < hi; i++ {
		u := d.r.Float64()
		for u == 0 {
			u = d.r.Float64()
		}
		st.Evib[i] = F(-mean * math.Log(u))
	}
}
