// Package sim is the float64 reference implementation of the Stanford
// direct particle simulation the paper parallelizes: the same four
// sub-steps per time step (collisionless motion, boundary conditions,
// selection of collision partners, collision of selected partners), the
// same wind-tunnel arrangement (specular walls, wedge body, upstream
// plunger, downstream sink into a reservoir), executed as array sweeps —
// the role the hand-vectorized Cray-2 implementation plays in the paper's
// performance comparison.
package sim

import (
	"errors"
	"fmt"
	"math"
	"time"

	"dsmc/internal/baseline"
	"dsmc/internal/collide"
	"dsmc/internal/geom"
	"dsmc/internal/grid"
	"dsmc/internal/molec"
	"dsmc/internal/par"
	"dsmc/internal/particle"
	"dsmc/internal/phys"
	"dsmc/internal/rng"
	"dsmc/internal/sample"
)

// Config specifies a wind-tunnel simulation. The zero value is not
// runnable; use DefaultConfig as a starting point.
type Config struct {
	// NX, NY are the grid dimensions in cells (the paper: 98×64).
	NX, NY int
	// Wedge is the body; nil simulates an empty tunnel.
	Wedge *geom.Wedge
	// Free is the freestream state (Mach, thermal speed, mean free path).
	Free phys.Freestream
	// Model is the molecular model (default Maxwell molecules).
	Model molec.Model
	// NPerCell is the freestream particle count per unit cell volume.
	NPerCell float64
	// PlungerTrigger is the downstream distance at which the plunger
	// snaps back (cells).
	PlungerTrigger float64
	// Wall selects the gas-surface interaction (specular by default).
	Wall geom.DiffuseState
	// Scheme overrides the collision scheme (default McDonald–Baganoff).
	Scheme baseline.Scheme
	// Seed seeds all randomness.
	Seed uint64
	// ReservoirCapacity bounds the reservoir (default: 12% of flow).
	ReservoirCapacity int
	// ZVib enables vibrational relaxation (the future-work extension)
	// when positive: each collision exchanges energy with the particles'
	// continuous vibrational reservoirs with probability 1/ZVib.
	ZVib float64
	// Workers is the CPU worker count the phases are sharded over
	// (move/boundary over contiguous particle chunks, sort scatter over
	// particle chunks, shuffle/select/collide/sample over cell ranges).
	// 0 selects runtime.NumCPU(). Results are bit-identical for any
	// worker count: every cell (and, at diffuse walls, every particle)
	// draws from its own counter-based stream keyed by (seed, step,
	// phase, index) rather than from a shared sequential stream.
	Workers int
}

// DefaultConfig returns the paper's configuration at a particle density
// scaled by scale in (0, 1]: scale = 1 reproduces the 512k-particle run
// (460k in flow, the rest in the reservoir).
func DefaultConfig(scale float64) Config {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	w := geom.Wedge{LeadX: 20, Base: 25, Angle: 30 * math.Pi / 180}
	return Config{
		NX:    98,
		NY:    64,
		Wedge: &w,
		Free: phys.Freestream{
			Mach:   4,
			Cm:     0.125,
			Lambda: 0.5,
			Gamma:  phys.GammaDiatomic,
		},
		Model:          molec.Maxwell(),
		NPerCell:       75 * scale,
		PlungerTrigger: 4,
		Seed:           1988,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.NX <= 0 || c.NY <= 0 {
		return errors.New("sim: grid dimensions must be positive")
	}
	if c.NPerCell <= 0 {
		return errors.New("sim: NPerCell must be positive")
	}
	if c.Free.Cm <= 0 {
		return errors.New("sim: freestream thermal speed must be positive")
	}
	if c.Free.Mach <= 1 {
		return errors.New("sim: wind tunnel requires supersonic freestream (downstream boundary must be supersonic)")
	}
	if c.Wedge != nil {
		if c.Wedge.LeadX < 0 || c.Wedge.TrailX() > float64(c.NX) || c.Wedge.Height() >= float64(c.NY) {
			return errors.New("sim: wedge does not fit in the tunnel")
		}
	}
	if err := c.Free.ValidateTimeStep(); err != nil {
		return err
	}
	return nil
}

// Phase identifies one of the four sub-steps for timing breakdowns.
type Phase int

// The four sub-steps of a time step, as the paper reports them.
const (
	PhaseMove    Phase = iota // collisionless motion + boundary conditions
	PhaseSort                 // cell indexing and ordering
	PhaseSelect               // candidate pairing and the selection rule
	PhaseCollide              // collision of selected partners
	numPhases
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseMove:
		return "move+boundary"
	case PhaseSort:
		return "sort"
	case PhaseSelect:
		return "select"
	case PhaseCollide:
		return "collide"
	}
	return "unknown"
}

// The per-step stream domains: each (step, domain) pair is a distinct
// epoch for rng.StreamAt, so no stream is ever reused across phases.
const (
	domainSort    = iota // in-cell shuffle (lane = cell)
	domainSelect         // candidate selection (lane = cell)
	domainCollide        // collision of accepted pairs (lane = cell)
	domainWall           // diffuse wall re-emission (lane = particle)
	numDomains
)

// Sim is a running wind-tunnel simulation.
//
// The particle store is kept cell-major: every step the sort's scatter
// writes the payload into the shadow store at its cell-major position and
// the two buffers are swapped, so the select/collide/sample sweeps walk
// contiguous cellStart[c]:cellStart[c+1] ranges of the arrays with no
// index indirection. All dispatch closures and per-worker scratch are
// built once at construction; a steady-state Step performs zero heap
// allocations.
type Sim struct {
	cfg  Config
	tun  geom.Tunnel
	grid grid.Grid
	vols []float64

	store  *particle.Store // live buffer, cell-major after each sort
	shadow *particle.Store // scatter target, swapped with store each step
	res    *particle.Reservoir
	resCap int // resolved reservoir capacity (Config default applied)
	rule   collide.Rule
	bm     *baseline.BM

	r        rng.Stream
	plungerX float64
	uInf     float64
	step     int

	pool   *par.Pool
	sorter *par.CellSort

	// Prebuilt shard bodies: building them once keeps the pool dispatch
	// in Step allocation-free (a func literal created per call would
	// escape to the heap).
	fnMoveBound func(w, lo, hi int)
	fnSelCol    func(w, lo, hi int)
	fnScheme    func(w, lo, hi int)
	cellOfFn    func(i int) int32
	swapFn      func(i, j int)

	// per-worker scratch, indexed by the pool's block index
	exits    [][]int32          // downstream-exit lists
	scratchW [][]collide.State5 // scheme gather buffers
	picksW   [][]pairPick       // accepted-pair buffers
	selW     []time.Duration
	colW     []time.Duration
	colls    []int64

	phaseTime  [numPhases]time.Duration
	collisions int64
}

// pairPick records an accepted candidate pair: the particles at indices
// a and a+1 of the cell-major store, in cell c (the collide pass
// re-derives cell c's stream when c changes).
type pairPick struct{ a, c int32 }

// New builds a simulation from the configuration.
func New(cfg Config) (*Sim, error) {
	if cfg.Model.Name == "" {
		cfg.Model = molec.Maxwell()
	}
	if cfg.Free.Gamma == 0 {
		cfg.Free.Gamma = cfg.Model.Gamma()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := grid.New(cfg.NX, cfg.NY)
	vols := g.Volumes(cfg.Wedge)
	var freeVol float64
	for _, v := range vols {
		freeVol += v
	}
	flowTarget := int(cfg.NPerCell * freeVol)
	resCap := cfg.ReservoirCapacity
	if resCap == 0 {
		resCap = flowTarget/8 + 1024
	}
	capacity := flowTarget + resCap + flowTarget/8

	s := &Sim{
		cfg:    cfg,
		tun:    geom.Tunnel{W: float64(cfg.NX), H: float64(cfg.NY), Wedge: cfg.Wedge},
		grid:   g,
		vols:   vols,
		store:  particle.NewStore(capacity),
		shadow: particle.NewStore(capacity),
		res:    particle.NewReservoir(resCap, cfg.Free.ComponentSigma()),
		resCap: resCap,
		r:      rng.NewStream(cfg.Seed),
		uInf:   cfg.Free.Velocity(),
		rule: collide.Rule{
			Model:      cfg.Model,
			PInf:       cfg.Free.SelectionPInf(),
			NInf:       cfg.NPerCell,
			GInf:       math.Sqrt2 * cfg.Free.MeanSpeed(),
			CollideAll: cfg.Free.Lambda <= 0,
		},
		pool: par.New(cfg.Workers),
	}
	s.sorter = par.NewCellSort(s.pool, g.Cells())
	if cfg.Scheme == nil {
		s.bm = baseline.NewBM()
	}
	w := s.pool.Workers()
	s.exits = make([][]int32, w)
	s.scratchW = make([][]collide.State5, w)
	s.picksW = make([][]pairPick, w)
	// A worker's exit list can never exceed its block span, so sizing it
	// to the largest possible span means it never grows — one of the
	// pre-sizings behind the zero-allocation steady-state Step. The pick
	// buffers get the balanced-load bound (n/2 pairs split w ways); a
	// pathologically imbalanced flow could grow one once, after which it
	// too is stable.
	blockCap := s.pool.BlockStep(capacity)
	for b := 0; b < w; b++ {
		s.exits[b] = make([]int32, 0, blockCap)
		s.picksW[b] = make([]pairPick, 0, capacity/(2*w)+64)
	}
	s.selW = make([]time.Duration, w)
	s.colW = make([]time.Duration, w)
	s.colls = make([]int64, w)
	s.fnMoveBound = s.moveBoundShard
	s.fnSelCol = s.selColShard
	s.fnScheme = s.schemeShard
	s.cellOfFn = func(i int) int32 {
		return int32(s.grid.CellOf(s.store.X[i], s.store.Y[i]))
	}
	s.swapFn = func(i, j int) { s.store.Swap(i, j) }

	// Fill the tunnel with freestream gas and bank the paper's ~10% extra
	// in the reservoir.
	placed := s.store.InitFreestream(flowTarget, s.tun.W, s.tun.H,
		cfg.Free.Velocity(), cfg.Free.ComponentSigma(),
		func(x, y float64) bool { return s.tun.Inside(geom.Vec2{X: x, Y: y}) }, &s.r)
	if placed < flowTarget {
		return nil, fmt.Errorf("sim: store capacity exhausted at %d of %d particles", placed, flowTarget)
	}
	s.res.DepositN(resCap*3/4, &s.r)
	if cfg.ZVib > 0 {
		s.initVibEquilibrium(0, s.store.Len())
	}
	return s, nil
}

// initVibEquilibrium samples the vibrational energies of particles
// [lo, hi) from the equilibrium (exponential) distribution for two
// continuous vibrational degrees of freedom at the freestream
// temperature: mean 2·sigma² in the Σv² energy units used throughout.
func (s *Sim) initVibEquilibrium(lo, hi int) {
	sigma := s.cfg.Free.ComponentSigma()
	mean := 2 * sigma * sigma
	for i := lo; i < hi; i++ {
		u := s.r.Float64()
		for u == 0 {
			u = s.r.Float64()
		}
		s.store.Evib[i] = -mean * math.Log(u)
	}
}

// epoch encodes (step, domain) into the single epoch word of
// rng.StreamAt — the one place the encoding lives, so no two phases can
// drift onto the same stream coordinates.
func (s *Sim) epoch(domain int) uint64 {
	return uint64(s.step)*numDomains + uint64(domain)
}

// phaseStream returns the private counter-based stream for one lane (a
// cell or particle index) of one phase of the current step. Because the
// stream depends only on (seed, step, domain, lane), every lane draws the
// same randomness no matter which worker processes it.
func (s *Sim) phaseStream(domain, lane int) rng.Stream {
	return rng.StreamAt(s.cfg.Seed, s.epoch(domain), uint64(lane))
}

// Workers returns the resolved worker count of the phase pool.
func (s *Sim) Workers() int { return s.pool.Workers() }

// NFlow returns the number of particles currently in the flow.
func (s *Sim) NFlow() int { return s.store.Len() }

// NReservoir returns the number of particles banked in the reservoir.
func (s *Sim) NReservoir() int { return s.res.Len() }

// StepCount returns the number of completed time steps.
func (s *Sim) StepCount() int { return s.step }

// Collisions returns the cumulative number of collisions performed.
func (s *Sim) Collisions() int64 { return s.collisions }

// Grid returns the cell grid.
func (s *Sim) Grid() grid.Grid { return s.grid }

// Volumes returns the per-cell gas volumes (fractional at the wedge).
func (s *Sim) Volumes() []float64 { return s.vols }

// Rule returns the active selection rule.
func (s *Sim) Rule() collide.Rule { return s.rule }

// PhaseTimes returns cumulative wall time per sub-step.
func (s *Sim) PhaseTimes() map[string]time.Duration {
	out := make(map[string]time.Duration, numPhases)
	for p := Phase(0); p < numPhases; p++ {
		out[p.String()] = s.phaseTime[p]
	}
	return out
}

// Step advances the simulation one time step through the four sub-steps.
func (s *Sim) Step() {
	t0 := time.Now()
	s.moveBoundaries()
	t1 := time.Now()
	s.phaseTime[PhaseMove] += t1.Sub(t0)
	s.sortByCell()
	t2 := time.Now()
	s.phaseTime[PhaseSort] += t2.Sub(t1)
	s.selectAndCollide()
	s.res.Relax(&s.r)
	s.step++
}

// Run advances n steps.
func (s *Sim) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// moveBoundaries performs the collisionless motion (eq. 2) and enforces
// all boundary conditions — the downstream soft sink (into the
// reservoir), the upstream plunger, the hard tunnel walls, and the wedge
// — fused into a single sharded pass over the particle arrays (the two
// phases used to be separate full traversals of X/Y/U/V). Exiting
// particles are only recorded in per-worker lists and removed afterwards,
// so the parallel pass never mutates the store's membership. Finally the
// plunger trigger is checked and the void refilled.
func (s *Sim) moveBoundaries() {
	s.plungerX += s.uInf
	s.pool.ForIdx(s.store.Len(), s.fnMoveBound)
	// Remove in descending index order: every particle swapped in from the
	// end is then a survivor that already received its boundary treatment.
	for w := len(s.exits) - 1; w >= 0; w-- {
		ex := s.exits[w]
		for k := len(ex) - 1; k >= 0; k-- {
			s.depositToReservoir(int(ex[k]))
		}
	}
	if s.plungerX >= s.cfg.PlungerTrigger {
		s.refillVoid()
	}
}

func (s *Sim) moveBoundShard(w, lo, hi int) {
	st := s.store
	px := s.plungerX
	uInf := s.uInf
	ex := s.exits[w][:0]
	for i := lo; i < hi; i++ {
		x := st.X[i] + st.U[i]
		st.X[i] = x
		st.Y[i] += st.V[i]
		// Downstream sink: record for removal.
		if x > s.tun.W {
			ex = append(ex, int32(i))
			continue
		}
		// Upstream plunger: specular reflection in the plunger frame.
		if x < px {
			st.X[i] = 2*px - x
			st.U[i] = 2*uInf - st.U[i]
		}
		s.reflectWalls(i)
	}
	s.exits[w] = ex
}

// depositToReservoir moves particle i into the reservoir (velocity is
// re-drawn there from the rectangular distribution). The resolved
// capacity bound keeps the reservoir slice at its construction size, so
// deposits never re-allocate.
func (s *Sim) depositToReservoir(i int) {
	if s.res.Len() < s.resCap {
		s.res.Deposit(&s.r)
	}
	s.store.RemoveSwap(i)
}

// reflectWalls applies the hard-wall and wedge interactions for particle i.
func (s *Sim) reflectWalls(i int) {
	st := s.store
	p := geom.Vec2{X: st.X[i], Y: st.Y[i]}
	v := geom.Vec2{X: st.U[i], Y: st.V[i]}
	if s.cfg.Wall.Model == geom.Specular {
		p2, v2 := s.tun.ReflectSpecular(p, v)
		st.X[i], st.Y[i] = p2.X, p2.Y
		st.U[i], st.V[i] = v2.X, v2.Y
		return
	}
	s.reflectDiffuse(i)
}

// reflectDiffuse handles the extension wall models: positions are mirrored
// as in the specular case, but the velocity is re-emitted from the wall
// distribution; for isothermal walls the out-of-plane and rotational
// components re-equilibrate with the wall too. The re-emission draws from
// the particle's own counter-based stream so the boundary phase can run
// on any worker count without changing results.
func (s *Sim) reflectDiffuse(i int) {
	st := s.store
	r := s.phaseStream(domainWall, i)
	for b := 0; b < 8; b++ {
		p := geom.Vec2{X: st.X[i], Y: st.Y[i]}
		v := geom.Vec2{X: st.U[i], Y: st.V[i]}
		var face geom.Face
		switch {
		case p.Y < 0:
			face = geom.Face{P: geom.Vec2{X: 0, Y: 0}, N: geom.Vec2{X: 0, Y: 1}}
		case p.Y > s.tun.H:
			face = geom.Face{P: geom.Vec2{X: 0, Y: s.tun.H}, N: geom.Vec2{X: 0, Y: -1}}
		case s.tun.Wedge != nil && s.tun.Wedge.Contains(p):
			faces := s.tun.Wedge.Faces()
			face = faces[0]
			if faces[1].Depth(p) < faces[0].Depth(p) {
				face = faces[1]
			}
		default:
			return
		}
		p = face.MirrorPosition(p)
		out := s.cfg.Wall.Emit(face, v, &r)
		st.X[i], st.Y[i] = p.X, p.Y
		st.U[i], st.V[i] = out.X, out.Y
		if s.cfg.Wall.Model == geom.DiffuseIsothermal {
			st.W[i] = s.cfg.Wall.EmitAux(&r)
			st.R1[i] = s.cfg.Wall.EmitAux(&r)
			st.R2[i] = s.cfg.Wall.EmitAux(&r)
		}
	}
}

// refillVoid withdraws the plunger to the upstream wall and fills the void
// it leaves with new particles at freestream conditions, taken from the
// reservoir when available.
func (s *Sim) refillVoid() {
	void := s.plungerX
	s.plungerX = 0
	area := void * s.tun.H
	want := int(area*s.cfg.NPerCell + 0.5)
	uInf := s.uInf
	sigma := s.cfg.Free.ComponentSigma()
	for k := 0; k < want; k++ {
		x := s.r.Float64() * void
		y := s.r.Float64() * s.tun.H
		var v collide.State5
		if th, ok := s.res.Withdraw(); ok {
			v = th
		} else {
			// Reservoir exhausted: sample the Gaussian directly (the costly
			// path the reservoir exists to avoid).
			v = collide.State5{
				s.r.Gaussian(0, sigma), s.r.Gaussian(0, sigma), s.r.Gaussian(0, sigma),
				s.r.Gaussian(0, sigma), s.r.Gaussian(0, sigma),
			}
		}
		v[0] += uInf
		idx := s.store.Append(x, y, v)
		if idx < 0 {
			return
		}
		if s.cfg.ZVib > 0 {
			s.initVibEquilibrium(idx, idx+1)
		}
	}
}

// sortByCell makes the store cell-major: every particle's cell index is
// computed, the stable scatter writes the full payload into the shadow
// store at its cell-major position, the buffers are swapped — sort and
// physical reorder fused into one sharded pass — and the records inside
// each cell span are shuffled in place (the role of the paper's sort with
// the scaled-and-dithered key, candidates re-randomised every step).
// After this, cell c's particles are the contiguous index range
// cellStart[c]:cellStart[c+1] of the arrays.
func (s *Sim) sortByCell() {
	st := s.store
	s.sorter.Plan(st.Len(), st.Cell, s.cellOfFn)
	s.sorter.ScatterStore(st, s.shadow)
	s.store, s.shadow = s.shadow, s.store
	s.sorter.Shuffle(s.cfg.Seed, s.epoch(domainSort), s.swapFn)
}

// selectAndCollide pairs adjacent candidates within each cell-major span,
// applies the selection rule, and collides accepted pairs. The work is
// sharded over cell ranges: cells own disjoint contiguous index ranges
// and each draws from its own streams, so any worker count produces
// identical collisions. Each shard runs selection over all its cells
// first and then collides the accepted pairs, so the paper's
// select/collide breakdown costs three clock reads per shard instead of
// two per non-empty cell.
func (s *Sim) selectAndCollide() {
	nc := s.grid.Cells()
	if s.cfg.Scheme != nil {
		// Pluggable scheme path (baselines): gather cells, delegate.
		t0 := time.Now()
		s.pool.ForIdx(nc, s.fnScheme)
		for _, c := range s.colls {
			s.collisions += c
		}
		s.phaseTime[PhaseCollide] += time.Since(t0)
		return
	}
	// Default McDonald–Baganoff path, operating in place.
	s.pool.ForIdx(nc, s.fnSelCol)
	// A concurrent section's wall time is its slowest shard; if the pool
	// fell back to serial dispatch the shards ran back-to-back and their
	// times add instead. Per-worker times are written before the pool's
	// barrier and read after it, so the breakdown stays race-free.
	s.phaseTime[PhaseSelect] += shardWall(s.pool.Parallel(nc), s.selW)
	s.phaseTime[PhaseCollide] += shardWall(s.pool.Parallel(nc), s.colW)
	for _, c := range s.colls {
		s.collisions += c
	}
}

// selColShard is one worker's cell range of the default select+collide
// path. Selection streams the velocity columns of the shard's contiguous
// particle range once, recording accepted pairs; the collide sub-loop
// then revisits only the accepted records. Selection and collision draw
// from distinct per-cell stream domains so the two sub-loops stay
// deterministic for any worker count.
func (s *Sim) selColShard(w, clo, chi int) {
	st := s.store
	cellStart := s.sorter.CellStart()
	zvib := s.cfg.ZVib > 0
	t0 := time.Now()
	picks := s.picksW[w][:0]
	for c := clo; c < chi; c++ {
		lo, hi := int(cellStart[c]), int(cellStart[c+1])
		cnt := hi - lo
		if cnt < 2 {
			continue
		}
		r := s.phaseStream(domainSelect, c)
		vol := s.vols[c]
		for a := lo; a+1 < hi; a += 2 {
			du := st.U[a] - st.U[a+1]
			dv := st.V[a] - st.V[a+1]
			dw := st.W[a] - st.W[a+1]
			g := math.Sqrt(du*du + dv*dv + dw*dw)
			p := s.rule.Prob(cnt, vol, g)
			if p == 1 || r.Float64() < p {
				picks = append(picks, pairPick{int32(a), int32(c)})
			}
		}
	}
	t1 := time.Now()
	var r rng.Stream
	cur := int32(-1)
	var coll int64
	for _, pk := range picks {
		if pk.c != cur {
			cur = pk.c
			r = s.phaseStream(domainCollide, int(cur))
		}
		ia, ib := int(pk.a), int(pk.a)+1
		va, vb := st.Vel(ia), st.Vel(ib)
		perm := rng.RandomPerm5(s.bm.Table, &r)
		collide.Collide(&va, &vb, perm, r.Uint32())
		if zvib {
			s.vibExchange(&va, &vb, ia, ib, &r)
		}
		st.SetVel(ia, va)
		st.SetVel(ib, vb)
		coll++
	}
	s.picksW[w] = picks
	s.selW[w], s.colW[w] = t1.Sub(t0), time.Since(t1)
	s.colls[w] = coll
}

// schemeShard is one worker's cell range of the pluggable-scheme path:
// each cell span is copied contiguously into the worker's scratch buffer,
// handed to the scheme, and written back.
func (s *Sim) schemeShard(w, clo, chi int) {
	st := s.store
	cellStart := s.sorter.CellStart()
	var coll int64
	for c := clo; c < chi; c++ {
		lo, hi := int(cellStart[c]), int(cellStart[c+1])
		if hi-lo < 2 {
			continue
		}
		if cap(s.scratchW[w]) < hi-lo {
			s.scratchW[w] = make([]collide.State5, hi-lo)
		}
		cellParts := s.scratchW[w][:hi-lo]
		for k := range cellParts {
			cellParts[k] = st.Vel(lo + k)
		}
		r := s.phaseStream(domainCollide, c)
		coll += int64(s.cfg.Scheme.CollideCell(cellParts, s.vols[c], s.rule, &r))
		for k := range cellParts {
			st.SetVel(lo+k, cellParts[k])
		}
	}
	s.colls[w] = coll
}

func shardWall(concurrent bool, ds []time.Duration) time.Duration {
	var m, sum time.Duration
	for _, d := range ds {
		sum += d
		if d > m {
			m = d
		}
	}
	if concurrent {
		return m
	}
	return sum
}

// vibExchange applies the continuous vibrational relaxation to a just-
// collided pair: the pair's relative translational energy and the two
// vibrational reservoirs are redistributed (collide.VibExchange), and the
// relative translational velocity is rescaled so total energy is
// conserved exactly. The pair mean is untouched, so momentum is
// conserved too.
func (s *Sim) vibExchange(va, vb *collide.State5, ia, ib int, r *rng.Stream) {
	du := va[0] - vb[0]
	dv := va[1] - vb[1]
	dw := va[2] - vb[2]
	eTr := (du*du + dv*dv + dw*dw) / 2
	if eTr <= 0 {
		return
	}
	st := s.store
	eTrNew, ea, eb := collide.VibExchange(eTr, st.Evib[ia], st.Evib[ib], s.cfg.ZVib, r)
	st.Evib[ia], st.Evib[ib] = ea, eb
	if eTrNew == eTr {
		return
	}
	scale := math.Sqrt(eTrNew / eTr)
	for k := 0; k < 3; k++ {
		mean := (va[k] + vb[k]) / 2
		half := (va[k] - vb[k]) / 2 * scale
		va[k] = mean + half
		vb[k] = mean - half
	}
}

// TotalVibEnergy returns the summed vibrational energy of the flow.
func (s *Sim) TotalVibEnergy() float64 {
	var e float64
	for i := 0; i < s.store.Len(); i++ {
		e += s.store.Evib[i]
	}
	return e
}

// CellCounts returns the current per-cell particle counts (valid after the
// sort of the latest step) for samplers.
func (s *Sim) CellCounts() []int32 { return s.sorter.Counts() }

// CellStart returns the cell-major bucket boundaries of the latest sort:
// cell c's particles are store indices [CellStart()[c], CellStart()[c+1]).
func (s *Sim) CellStart() []int32 { return s.sorter.CellStart() }

// TotalEnergy returns the flow's total velocity-square sum (diagnostic).
func (s *Sim) TotalEnergy() float64 { return s.store.TotalEnergy() }

// Store exposes the particle store for diagnostics and samplers. The
// double-buffer swap makes the pointer alternate between two buffers, so
// re-fetch it after every Step rather than holding it across steps.
func (s *Sim) Store() *particle.Store { return s.store }

// SampleInto accumulates the current snapshot into acc, sharded over cell
// ranges on the simulation's worker pool. Valid after a completed step
// (the cell-major layout of the latest sort must be current). The
// per-cell accumulation order follows the store order, so the sums are
// bit-identical for any worker count.
func (s *Sim) SampleInto(acc *sample.Accumulator) {
	acc.AddFlowCellMajor(s.store, s.sorter.CellStart(), s.pool.For)
}
