// Package sim is the float64 reference implementation of the Stanford
// direct particle simulation the paper parallelizes: the same four
// sub-steps per time step (collisionless motion, boundary conditions,
// selection of collision partners, collision of selected partners), the
// same wind-tunnel arrangement (specular walls, wedge body, upstream
// plunger, downstream sink into a reservoir), executed as array sweeps —
// the role the hand-vectorized Cray-2 implementation plays in the paper's
// performance comparison.
package sim

import (
	"errors"
	"fmt"
	"math"
	"time"

	"dsmc/internal/baseline"
	"dsmc/internal/collide"
	"dsmc/internal/geom"
	"dsmc/internal/grid"
	"dsmc/internal/molec"
	"dsmc/internal/particle"
	"dsmc/internal/phys"
	"dsmc/internal/rng"
)

// Config specifies a wind-tunnel simulation. The zero value is not
// runnable; use DefaultConfig as a starting point.
type Config struct {
	// NX, NY are the grid dimensions in cells (the paper: 98×64).
	NX, NY int
	// Wedge is the body; nil simulates an empty tunnel.
	Wedge *geom.Wedge
	// Free is the freestream state (Mach, thermal speed, mean free path).
	Free phys.Freestream
	// Model is the molecular model (default Maxwell molecules).
	Model molec.Model
	// NPerCell is the freestream particle count per unit cell volume.
	NPerCell float64
	// PlungerTrigger is the downstream distance at which the plunger
	// snaps back (cells).
	PlungerTrigger float64
	// Wall selects the gas-surface interaction (specular by default).
	Wall geom.DiffuseState
	// Scheme overrides the collision scheme (default McDonald–Baganoff).
	Scheme baseline.Scheme
	// Seed seeds all randomness.
	Seed uint64
	// ReservoirCapacity bounds the reservoir (default: 12% of flow).
	ReservoirCapacity int
	// ZVib enables vibrational relaxation (the future-work extension)
	// when positive: each collision exchanges energy with the particles'
	// continuous vibrational reservoirs with probability 1/ZVib.
	ZVib float64
}

// DefaultConfig returns the paper's configuration at a particle density
// scaled by scale in (0, 1]: scale = 1 reproduces the 512k-particle run
// (460k in flow, the rest in the reservoir).
func DefaultConfig(scale float64) Config {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	w := geom.Wedge{LeadX: 20, Base: 25, Angle: 30 * math.Pi / 180}
	return Config{
		NX:    98,
		NY:    64,
		Wedge: &w,
		Free: phys.Freestream{
			Mach:   4,
			Cm:     0.125,
			Lambda: 0.5,
			Gamma:  phys.GammaDiatomic,
		},
		Model:          molec.Maxwell(),
		NPerCell:       75 * scale,
		PlungerTrigger: 4,
		Seed:           1988,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.NX <= 0 || c.NY <= 0 {
		return errors.New("sim: grid dimensions must be positive")
	}
	if c.NPerCell <= 0 {
		return errors.New("sim: NPerCell must be positive")
	}
	if c.Free.Cm <= 0 {
		return errors.New("sim: freestream thermal speed must be positive")
	}
	if c.Free.Mach <= 1 {
		return errors.New("sim: wind tunnel requires supersonic freestream (downstream boundary must be supersonic)")
	}
	if c.Wedge != nil {
		if c.Wedge.LeadX < 0 || c.Wedge.TrailX() > float64(c.NX) || c.Wedge.Height() >= float64(c.NY) {
			return errors.New("sim: wedge does not fit in the tunnel")
		}
	}
	if err := c.Free.ValidateTimeStep(); err != nil {
		return err
	}
	return nil
}

// Phase identifies one of the four sub-steps for timing breakdowns.
type Phase int

// The four sub-steps of a time step, as the paper reports them.
const (
	PhaseMove    Phase = iota // collisionless motion + boundary conditions
	PhaseSort                 // cell indexing and ordering
	PhaseSelect               // candidate pairing and the selection rule
	PhaseCollide              // collision of selected partners
	numPhases
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseMove:
		return "move+boundary"
	case PhaseSort:
		return "sort"
	case PhaseSelect:
		return "select"
	case PhaseCollide:
		return "collide"
	}
	return "unknown"
}

// Sim is a running wind-tunnel simulation.
type Sim struct {
	cfg  Config
	tun  geom.Tunnel
	grid grid.Grid
	vols []float64

	store *particle.Store
	res   *particle.Reservoir
	rule  collide.Rule
	bm    *baseline.BM

	r        rng.Stream
	plungerX float64
	step     int

	// sort scratch
	counts    []int32
	cellStart []int32
	order     []int32
	scratch   []collide.State5

	phaseTime  [numPhases]time.Duration
	collisions int64
}

// New builds a simulation from the configuration.
func New(cfg Config) (*Sim, error) {
	if cfg.Model.Name == "" {
		cfg.Model = molec.Maxwell()
	}
	if cfg.Free.Gamma == 0 {
		cfg.Free.Gamma = cfg.Model.Gamma()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := grid.New(cfg.NX, cfg.NY)
	vols := g.Volumes(cfg.Wedge)
	var freeVol float64
	for _, v := range vols {
		freeVol += v
	}
	flowTarget := int(cfg.NPerCell * freeVol)
	resCap := cfg.ReservoirCapacity
	if resCap == 0 {
		resCap = flowTarget/8 + 1024
	}
	capacity := flowTarget + resCap + flowTarget/8

	s := &Sim{
		cfg:   cfg,
		tun:   geom.Tunnel{W: float64(cfg.NX), H: float64(cfg.NY), Wedge: cfg.Wedge},
		grid:  g,
		vols:  vols,
		store: particle.NewStore(capacity),
		res:   particle.NewReservoir(resCap, cfg.Free.ComponentSigma()),
		r:     rng.NewStream(cfg.Seed),
		rule: collide.Rule{
			Model:      cfg.Model,
			PInf:       cfg.Free.SelectionPInf(),
			NInf:       cfg.NPerCell,
			GInf:       math.Sqrt2 * cfg.Free.MeanSpeed(),
			CollideAll: cfg.Free.Lambda <= 0,
		},
		counts:    make([]int32, g.Cells()),
		cellStart: make([]int32, g.Cells()+1),
	}
	if cfg.Scheme == nil {
		s.bm = baseline.NewBM()
	}

	// Fill the tunnel with freestream gas and bank the paper's ~10% extra
	// in the reservoir.
	placed := s.store.InitFreestream(flowTarget, s.tun.W, s.tun.H,
		cfg.Free.Velocity(), cfg.Free.ComponentSigma(),
		func(x, y float64) bool { return s.tun.Inside(geom.Vec2{X: x, Y: y}) }, &s.r)
	if placed < flowTarget {
		return nil, fmt.Errorf("sim: store capacity exhausted at %d of %d particles", placed, flowTarget)
	}
	s.res.DepositN(resCap*3/4, &s.r)
	s.order = make([]int32, s.store.Cap())
	if cfg.ZVib > 0 {
		s.initVibEquilibrium(0, s.store.Len())
	}
	return s, nil
}

// initVibEquilibrium samples the vibrational energies of particles
// [lo, hi) from the equilibrium (exponential) distribution for two
// continuous vibrational degrees of freedom at the freestream
// temperature: mean 2·sigma² in the Σv² energy units used throughout.
func (s *Sim) initVibEquilibrium(lo, hi int) {
	sigma := s.cfg.Free.ComponentSigma()
	mean := 2 * sigma * sigma
	for i := lo; i < hi; i++ {
		u := s.r.Float64()
		for u == 0 {
			u = s.r.Float64()
		}
		s.store.Evib[i] = -mean * math.Log(u)
	}
}

// NFlow returns the number of particles currently in the flow.
func (s *Sim) NFlow() int { return s.store.Len() }

// NReservoir returns the number of particles banked in the reservoir.
func (s *Sim) NReservoir() int { return s.res.Len() }

// StepCount returns the number of completed time steps.
func (s *Sim) StepCount() int { return s.step }

// Collisions returns the cumulative number of collisions performed.
func (s *Sim) Collisions() int64 { return s.collisions }

// Grid returns the cell grid.
func (s *Sim) Grid() grid.Grid { return s.grid }

// Volumes returns the per-cell gas volumes (fractional at the wedge).
func (s *Sim) Volumes() []float64 { return s.vols }

// Rule returns the active selection rule.
func (s *Sim) Rule() collide.Rule { return s.rule }

// PhaseTimes returns cumulative wall time per sub-step.
func (s *Sim) PhaseTimes() map[string]time.Duration {
	out := make(map[string]time.Duration, numPhases)
	for p := Phase(0); p < numPhases; p++ {
		out[p.String()] = s.phaseTime[p]
	}
	return out
}

// Step advances the simulation one time step through the four sub-steps.
func (s *Sim) Step() {
	t0 := time.Now()
	s.move()
	s.boundaries()
	t1 := time.Now()
	s.phaseTime[PhaseMove] += t1.Sub(t0)
	s.sortByCell()
	t2 := time.Now()
	s.phaseTime[PhaseSort] += t2.Sub(t1)
	s.selectAndCollide()
	s.res.Relax(&s.r)
	s.step++
}

// Run advances n steps.
func (s *Sim) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// move performs the collisionless motion: every particle adds its velocity
// components to its position (eq. 2), and the plunger advances with the
// freestream.
func (s *Sim) move() {
	st := s.store
	n := st.Len()
	for i := 0; i < n; i++ {
		st.X[i] += st.U[i]
		st.Y[i] += st.V[i]
	}
	s.plungerX += s.cfg.Free.Velocity()
}

// boundaries enforces all boundary conditions: the downstream soft sink
// (into the reservoir), the upstream plunger, the hard tunnel walls, and
// the wedge. Finally the plunger trigger is checked and the void refilled.
func (s *Sim) boundaries() {
	st := s.store
	uInf := s.cfg.Free.Velocity()
	for i := 0; i < st.Len(); {
		// Downstream sink: remove and bank.
		if st.X[i] > s.tun.W {
			s.depositToReservoir(i)
			continue // the swapped-in particle is re-examined at i
		}
		// Upstream plunger: specular reflection in the plunger frame.
		if st.X[i] < s.plungerX {
			st.X[i] = 2*s.plungerX - st.X[i]
			st.U[i] = 2*uInf - st.U[i]
		}
		s.reflectWalls(i)
		i++
	}
	if s.plungerX >= s.cfg.PlungerTrigger {
		s.refillVoid()
	}
}

// depositToReservoir moves particle i into the reservoir (velocity is
// re-drawn there from the rectangular distribution).
func (s *Sim) depositToReservoir(i int) {
	if s.res.Len() < s.cfg.reservoirCap() {
		s.res.Deposit(&s.r)
	}
	s.store.RemoveSwap(i)
}

func (c *Config) reservoirCap() int {
	if c.ReservoirCapacity > 0 {
		return c.ReservoirCapacity
	}
	return 1 << 30
}

// reflectWalls applies the hard-wall and wedge interactions for particle i.
func (s *Sim) reflectWalls(i int) {
	st := s.store
	p := geom.Vec2{X: st.X[i], Y: st.Y[i]}
	v := geom.Vec2{X: st.U[i], Y: st.V[i]}
	if s.cfg.Wall.Model == geom.Specular {
		p2, v2 := s.tun.ReflectSpecular(p, v)
		st.X[i], st.Y[i] = p2.X, p2.Y
		st.U[i], st.V[i] = v2.X, v2.Y
		return
	}
	s.reflectDiffuse(i)
}

// reflectDiffuse handles the extension wall models: positions are mirrored
// as in the specular case, but the velocity is re-emitted from the wall
// distribution; for isothermal walls the out-of-plane and rotational
// components re-equilibrate with the wall too.
func (s *Sim) reflectDiffuse(i int) {
	st := s.store
	for b := 0; b < 8; b++ {
		p := geom.Vec2{X: st.X[i], Y: st.Y[i]}
		v := geom.Vec2{X: st.U[i], Y: st.V[i]}
		var face geom.Face
		switch {
		case p.Y < 0:
			face = geom.Face{P: geom.Vec2{X: 0, Y: 0}, N: geom.Vec2{X: 0, Y: 1}}
		case p.Y > s.tun.H:
			face = geom.Face{P: geom.Vec2{X: 0, Y: s.tun.H}, N: geom.Vec2{X: 0, Y: -1}}
		case s.tun.Wedge != nil && s.tun.Wedge.Contains(p):
			faces := s.tun.Wedge.Faces()
			face = faces[0]
			if faces[1].Depth(p) < faces[0].Depth(p) {
				face = faces[1]
			}
		default:
			return
		}
		p = face.MirrorPosition(p)
		out := s.cfg.Wall.Emit(face, v, &s.r)
		st.X[i], st.Y[i] = p.X, p.Y
		st.U[i], st.V[i] = out.X, out.Y
		if s.cfg.Wall.Model == geom.DiffuseIsothermal {
			st.W[i] = s.cfg.Wall.EmitAux(&s.r)
			st.R1[i] = s.cfg.Wall.EmitAux(&s.r)
			st.R2[i] = s.cfg.Wall.EmitAux(&s.r)
		}
	}
}

// refillVoid withdraws the plunger to the upstream wall and fills the void
// it leaves with new particles at freestream conditions, taken from the
// reservoir when available.
func (s *Sim) refillVoid() {
	void := s.plungerX
	s.plungerX = 0
	area := void * s.tun.H
	want := int(area*s.cfg.NPerCell + 0.5)
	uInf := s.cfg.Free.Velocity()
	sigma := s.cfg.Free.ComponentSigma()
	for k := 0; k < want; k++ {
		x := s.r.Float64() * void
		y := s.r.Float64() * s.tun.H
		var v collide.State5
		if th, ok := s.res.Withdraw(); ok {
			v = th
		} else {
			// Reservoir exhausted: sample the Gaussian directly (the costly
			// path the reservoir exists to avoid).
			v = collide.State5{
				s.r.Gaussian(0, sigma), s.r.Gaussian(0, sigma), s.r.Gaussian(0, sigma),
				s.r.Gaussian(0, sigma), s.r.Gaussian(0, sigma),
			}
		}
		v[0] += uInf
		idx := s.store.Append(x, y, v)
		if idx < 0 {
			return
		}
		if s.cfg.ZVib > 0 {
			s.initVibEquilibrium(idx, idx+1)
		}
	}
}

// sortByCell computes every particle's cell index and produces a
// cell-bucketed ordering with random order inside each cell — the role of
// the paper's sort with the scaled-and-dithered key. A counting sort is
// the O(N) serial analogue.
func (s *Sim) sortByCell() {
	st := s.store
	n := st.Len()
	for i := range s.counts {
		s.counts[i] = 0
	}
	for i := 0; i < n; i++ {
		c := int32(s.grid.CellOf(st.X[i], st.Y[i]))
		st.Cell[i] = c
		s.counts[c]++
	}
	s.cellStart[0] = 0
	for c := 0; c < len(s.counts); c++ {
		s.cellStart[c+1] = s.cellStart[c] + s.counts[c]
	}
	fill := make([]int32, len(s.counts))
	copy(fill, s.cellStart[:len(s.counts)])
	for i := 0; i < n; i++ {
		c := st.Cell[i]
		s.order[fill[c]] = int32(i)
		fill[c]++
	}
	// Random order within each cell: collision candidates must change
	// between time steps or the same partners collide repeatedly, leading
	// to correlated velocity distributions.
	for c := 0; c < len(s.counts); c++ {
		lo, hi := s.cellStart[c], s.cellStart[c+1]
		span := s.order[lo:hi]
		for i := len(span) - 1; i > 0; i-- {
			j := s.r.Intn(i + 1)
			span[i], span[j] = span[j], span[i]
		}
	}
}

// selectAndCollide pairs candidates even/odd within each cell, applies the
// selection rule, and collides accepted pairs. Selection and collision
// times are accounted separately to reproduce the paper's breakdown.
func (s *Sim) selectAndCollide() {
	st := s.store
	tSel := time.Duration(0)
	tCol := time.Duration(0)
	if s.cfg.Scheme != nil {
		// Pluggable scheme path (baselines): gather cells, delegate.
		t0 := time.Now()
		for c := 0; c < len(s.counts); c++ {
			lo, hi := s.cellStart[c], s.cellStart[c+1]
			if hi-lo < 2 {
				continue
			}
			if cap(s.scratch) < int(hi-lo) {
				s.scratch = make([]collide.State5, hi-lo)
			}
			cellParts := s.scratch[:hi-lo]
			for k, oi := range s.order[lo:hi] {
				cellParts[k] = st.Vel(int(oi))
			}
			s.collisions += int64(s.cfg.Scheme.CollideCell(cellParts, s.vols[c], s.rule, &s.r))
			for k, oi := range s.order[lo:hi] {
				st.SetVel(int(oi), cellParts[k])
			}
		}
		s.phaseTime[PhaseCollide] += time.Since(t0)
		return
	}
	// Default McDonald–Baganoff path, operating in place.
	for c := 0; c < len(s.counts); c++ {
		lo, hi := s.cellStart[c], s.cellStart[c+1]
		cnt := int(hi - lo)
		if cnt < 2 {
			continue
		}
		t0 := time.Now()
		type pick struct{ a, b int32 }
		var picks []pick
		for k := int32(0); k+1 < int32(cnt); k += 2 {
			ia, ib := s.order[lo+k], s.order[lo+k+1]
			va := st.Vel(int(ia))
			vb := st.Vel(int(ib))
			g := collide.TransRelSpeed(&va, &vb)
			p := s.rule.Prob(cnt, s.vols[c], g)
			if p == 1 || s.r.Float64() < p {
				picks = append(picks, pick{ia, ib})
			}
		}
		t1 := time.Now()
		tSel += t1.Sub(t0)
		for _, pk := range picks {
			va := st.Vel(int(pk.a))
			vb := st.Vel(int(pk.b))
			perm := rng.RandomPerm5(s.bm.Table, &s.r)
			collide.Collide(&va, &vb, perm, s.r.Uint32())
			if s.cfg.ZVib > 0 {
				s.vibExchange(&va, &vb, int(pk.a), int(pk.b))
			}
			st.SetVel(int(pk.a), va)
			st.SetVel(int(pk.b), vb)
			s.collisions++
		}
		tCol += time.Since(t1)
	}
	s.phaseTime[PhaseSelect] += tSel
	s.phaseTime[PhaseCollide] += tCol
}

// vibExchange applies the continuous vibrational relaxation to a just-
// collided pair: the pair's relative translational energy and the two
// vibrational reservoirs are redistributed (collide.VibExchange), and the
// relative translational velocity is rescaled so total energy is
// conserved exactly. The pair mean is untouched, so momentum is
// conserved too.
func (s *Sim) vibExchange(va, vb *collide.State5, ia, ib int) {
	du := va[0] - vb[0]
	dv := va[1] - vb[1]
	dw := va[2] - vb[2]
	eTr := (du*du + dv*dv + dw*dw) / 2
	if eTr <= 0 {
		return
	}
	st := s.store
	eTrNew, ea, eb := collide.VibExchange(eTr, st.Evib[ia], st.Evib[ib], s.cfg.ZVib, &s.r)
	st.Evib[ia], st.Evib[ib] = ea, eb
	if eTrNew == eTr {
		return
	}
	scale := math.Sqrt(eTrNew / eTr)
	for k := 0; k < 3; k++ {
		mean := (va[k] + vb[k]) / 2
		half := (va[k] - vb[k]) / 2 * scale
		va[k] = mean + half
		vb[k] = mean - half
	}
}

// TotalVibEnergy returns the summed vibrational energy of the flow.
func (s *Sim) TotalVibEnergy() float64 {
	var e float64
	for i := 0; i < s.store.Len(); i++ {
		e += s.store.Evib[i]
	}
	return e
}

// CellCounts returns the current per-cell particle counts (valid after the
// sort of the latest step) for samplers.
func (s *Sim) CellCounts() []int32 { return s.counts }

// TotalEnergy returns the flow's total velocity-square sum (diagnostic).
func (s *Sim) TotalEnergy() float64 { return s.store.TotalEnergy() }

// Store exposes the particle store for diagnostics and samplers.
func (s *Sim) Store() *particle.Store { return s.store }
