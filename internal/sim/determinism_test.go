package sim

import (
	"math"
	"testing"

	"dsmc/internal/baseline"
	"dsmc/internal/geom"
	"dsmc/internal/sample"
)

// runWorkers advances a fresh simulation and returns it together with a
// density/moment accumulation over the last few steps.
func runWorkers(t *testing.T, cfg Config, workers, steps, avg int) (*Sim, []float64) {
	t.Helper()
	cfg.Workers = workers
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(steps)
	acc := sample.NewAccumulator(s.Grid(), s.Volumes(), cfg.NPerCell)
	for k := 0; k < avg; k++ {
		s.Step()
		s.SampleInto(acc)
	}
	return s, acc.Density()
}

// sameFloats demands bit-identical float64 slices.
func sameFloats(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s: first divergence at %d: %v vs %v", name, i, a[i], b[i])
		}
	}
}

// TestParallelDeterminism: the same seed must yield byte-identical
// particle state and sampled fields at Workers=1 and Workers=8, for every
// code path that consumes randomness (specular walls, diffuse walls, the
// pluggable schemes, vibrational relaxation).
func TestParallelDeterminism(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"specular", func(c *Config) {}},
		{"diffuse-isothermal", func(c *Config) {
			c.Wall = geom.DiffuseState{Model: geom.DiffuseIsothermal, WallCm: c.Free.Cm}
		}},
		{"scheme-bird", func(c *Config) { c.Scheme = baseline.NewBirdTC() }},
		{"vibrational", func(c *Config) { c.ZVib = 5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallConfig()
			tc.mutate(&cfg)
			s1, rho1 := runWorkers(t, cfg, 1, 15, 5)
			s8, rho8 := runWorkers(t, cfg, 8, 15, 5)

			if s1.NFlow() != s8.NFlow() {
				t.Fatalf("flow count: %d vs %d", s1.NFlow(), s8.NFlow())
			}
			if s1.NReservoir() != s8.NReservoir() {
				t.Fatalf("reservoir count: %d vs %d", s1.NReservoir(), s8.NReservoir())
			}
			if s1.Collisions() != s8.Collisions() {
				t.Fatalf("collisions: %d vs %d", s1.Collisions(), s8.Collisions())
			}
			n := s1.NFlow()
			a, b := s1.Store(), s8.Store()
			sameFloats(t, "X", a.X[:n], b.X[:n])
			sameFloats(t, "Y", a.Y[:n], b.Y[:n])
			sameFloats(t, "U", a.U[:n], b.U[:n])
			sameFloats(t, "V", a.V[:n], b.V[:n])
			sameFloats(t, "W", a.W[:n], b.W[:n])
			sameFloats(t, "R1", a.R1[:n], b.R1[:n])
			sameFloats(t, "R2", a.R2[:n], b.R2[:n])
			sameFloats(t, "Evib", a.Evib[:n], b.Evib[:n])
			for i := 0; i < n; i++ {
				if a.Cell[i] != b.Cell[i] {
					t.Fatalf("cell index diverged at %d", i)
				}
			}
			sameFloats(t, "density", rho1, rho8)
		})
	}
}

// TestWorkersIntermediateCounts: determinism must hold for every worker
// count, not just the two endpoints (the block decomposition shifts with
// the count, so this exercises stability of the sharded sort/scatter).
func TestWorkersIntermediateCounts(t *testing.T) {
	cfg := smallConfig()
	ref, rhoRef := runWorkers(t, cfg, 1, 10, 3)
	for _, w := range []int{2, 3, 5} {
		s, rho := runWorkers(t, cfg, w, 10, 3)
		if s.Collisions() != ref.Collisions() || s.NFlow() != ref.NFlow() {
			t.Fatalf("workers=%d: collisions %d vs %d, flow %d vs %d",
				w, s.Collisions(), ref.Collisions(), s.NFlow(), ref.NFlow())
		}
		n := ref.NFlow()
		sameFloats(t, "U", ref.Store().U[:n], s.Store().U[:n])
		sameFloats(t, "density", rhoRef, rho)
	}
}

// TestParallelDeterminismAboveCutoff runs the paper grid (6272 cells,
// ~12k particles at reduced density), which crosses par's serial cutoff
// in both shard dimensions: unlike the small configs above, this
// exercises — and under `go test -race` races — the concurrent dispatch
// path of every sharded phase, not the serial fallback.
func TestParallelDeterminismAboveCutoff(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.NPerCell = 2
	cfg.Seed = 11
	s1, rho1 := runWorkers(t, cfg, 1, 10, 3)
	s8, rho8 := runWorkers(t, cfg, 8, 10, 3)
	if s1.NFlow() != s8.NFlow() || s1.Collisions() != s8.Collisions() {
		t.Fatalf("flow %d vs %d, collisions %d vs %d",
			s1.NFlow(), s8.NFlow(), s1.Collisions(), s8.Collisions())
	}
	n := s1.NFlow()
	sameFloats(t, "X", s1.Store().X[:n], s8.Store().X[:n])
	sameFloats(t, "U", s1.Store().U[:n], s8.Store().U[:n])
	sameFloats(t, "density", rho1, rho8)
}

// TestWorkersDefaultResolved: Workers=0 must resolve to at least one
// worker and still run correctly.
func TestWorkersDefaultResolved(t *testing.T) {
	cfg := smallConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Workers() < 1 {
		t.Fatalf("resolved worker count %d", s.Workers())
	}
	s.Run(5)
	if s.Collisions() == 0 {
		t.Error("no collisions with default workers")
	}
}
