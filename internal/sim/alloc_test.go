package sim

import (
	"testing"

	"dsmc/internal/kernel"
)

// allocConfig crosses par's serial cutoff in both shard dimensions so the
// zero-allocation guarantee is checked on the concurrent dispatch path,
// not just the serial fallback.
func allocConfig() Config {
	cfg := DefaultConfig(1)
	cfg.NPerCell = 2
	cfg.Seed = 17
	cfg.Workers = 4
	return cfg
}

// testStepAllocationFree: a steady-state Step must perform zero heap
// allocations in either storage precision — the sort scatters into the
// pre-allocated shadow store, all shard closures are prebuilt, per-worker
// scratch is pre-sized, and the reservoir is capacity-bounded.
func testStepAllocationFree[F kernel.Float](t *testing.T, workers int, regions bool) {
	t.Helper()
	cfg := allocConfig()
	cfg.Workers = workers
	cfg.Regions = regions
	s, err := NewOf[F](cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Past the initial transient: several plunger cycles, exit lists and
	// pick buffers at their steady sizes.
	s.Run(40)
	if avg := testing.AllocsPerRun(20, s.Step); avg != 0 {
		t.Errorf("steady-state Step allocates %.2f times per call, want 0", avg)
	}
}

func TestStepAllocationFree(t *testing.T)       { testStepAllocationFree[float64](t, 4, false) }
func TestStepAllocationFreeSerial(t *testing.T) { testStepAllocationFree[float64](t, 1, false) }

// The float32 instantiation runs the same engine, so the guarantee must
// carry over unchanged.
func TestStepAllocationFreeFloat32(t *testing.T)       { testStepAllocationFree[float32](t, 4, false) }
func TestStepAllocationFreeFloat32Serial(t *testing.T) { testStepAllocationFree[float32](t, 1, false) }

// The spatially-blocked mode adds the bucket pass and the per-step
// region rebalance; both work entirely in pre-sized buffers, so the
// zero-allocation guarantee must hold there too.
func TestStepAllocationFreeRegions(t *testing.T)        { testStepAllocationFree[float64](t, 4, true) }
func TestStepAllocationFreeRegionsFloat32(t *testing.T) { testStepAllocationFree[float32](t, 4, true) }

// TestCellMajorInvariant: after a step the store must be physically
// cell-major — Cell non-decreasing, spans matching CellStart, and every
// cell index consistent with the particle's position (the sort runs
// before collide, which changes only velocities).
func TestCellMajorInvariant(t *testing.T) {
	cfg := smallConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 10; step++ {
		s.Step()
		st := s.Store()
		cellStart := s.CellStart()
		n := st.Len()
		if got := int(cellStart[len(cellStart)-1]); got != n {
			t.Fatalf("step %d: cellStart covers %d particles, store holds %d", step, got, n)
		}
		for i := 0; i < n; i++ {
			if i > 0 && st.Cell[i] < st.Cell[i-1] {
				t.Fatalf("step %d: Cell not non-decreasing at %d: %d after %d",
					step, i, st.Cell[i], st.Cell[i-1])
			}
			c := st.Cell[i]
			if i < int(cellStart[c]) || i >= int(cellStart[c+1]) {
				t.Fatalf("step %d: particle %d (cell %d) outside span [%d, %d)",
					step, i, c, cellStart[c], cellStart[c+1])
			}
			if want := int32(s.grid.CellOf(st.X[i], st.Y[i])); c != want {
				t.Fatalf("step %d: particle %d carries cell %d, position says %d",
					step, i, c, want)
			}
		}
	}
}
