// Package sample provides macroscopic sampling of the particle field: the
// time-averaged cell density (with the paper's fractional-volume
// correction at wedge-cut cells), velocity and temperature moments, and
// the analysis used for validation — shock-front location, shock-angle
// fit, shock thickness, and Prandtl–Meyer expansion checks — plus contour
// extraction and renderers for the density figures.
package sample

import (
	"fmt"
	"math"

	"dsmc/internal/grid"
	"dsmc/internal/kernel"
	"dsmc/internal/particle"
	"dsmc/internal/phys"
)

// Accumulator collects time-averaged per-cell moments. It is shape-
// agnostic: the cell count is all it knows about the grid, so the same
// accumulator serves the 2D wind tunnel and the 3D shock tube (and the
// per-plane layout of any future domain).
type Accumulator struct {
	Cells int
	Vols  []float64 // per-cell gas volumes; nil means unit volumes
	NInf  float64   // freestream particles per unit volume (density normaliser)
	Steps int

	count []float64 // Σ particles
	momX  []float64 // Σ u
	momY  []float64 // Σ v
	momZ  []float64 // Σ w
	enrg  []float64 // Σ (u²+v²+w²+r1²+r2²)
}

// NewAccumulator creates an accumulator over the given 2D grid; vols are
// the per-cell gas volumes and nInf the freestream number density.
func NewAccumulator(g grid.Grid, vols []float64, nInf float64) *Accumulator {
	return NewAccumulatorCells(g.Cells(), vols, nInf)
}

// NewAccumulatorCells creates an accumulator over `cells` cells of any
// dimensionality; vols may be nil for unit cell volumes everywhere.
func NewAccumulatorCells(cells int, vols []float64, nInf float64) *Accumulator {
	return &Accumulator{
		Cells: cells, Vols: vols, NInf: nInf,
		count: make([]float64, cells),
		momX:  make([]float64, cells),
		momY:  make([]float64, cells),
		momZ:  make([]float64, cells),
		enrg:  make([]float64, cells),
	}
}

// vol returns the gas volume of cell c (unit when no volume table).
func (a *Accumulator) vol(c int) float64 {
	if a.Vols == nil {
		return 1
	}
	return a.Vols[c]
}

// addParticle accumulates the moments of particle i into cell c. The
// sums are kept in float64 for either storage precision; the float64
// instantiation reproduces the pre-generic accumulation bit for bit.
func addParticle[F kernel.Float](a *Accumulator, st *particle.Store[F], c int32, i int) {
	u, v, w := float64(st.U[i]), float64(st.V[i]), float64(st.W[i])
	r1, r2 := float64(st.R1[i]), float64(st.R2[i])
	a.count[c]++
	a.momX[c] += u
	a.momY[c] += v
	a.momZ[c] += w
	a.enrg[c] += u*u + v*v + w*w + r1*r1 + r2*r2
}

// AddFlow accumulates one snapshot of the store (cell indices must be
// current, i.e. call after the step's sort).
func AddFlow[F kernel.Float](a *Accumulator, st *particle.Store[F]) {
	n := st.Len()
	for i := 0; i < n; i++ {
		addParticle(a, st, st.Cell[i], i)
	}
	a.Steps++
}

// AddFlowCellMajor accumulates one snapshot of a cell-major store (the
// layout the step's sort produces): cell c's particles are the contiguous
// store indices [cellStart[c], cellStart[c+1]), so each cell's moments
// stream a contiguous slice of every column. parFor shards the cell range
// (pass a serial loop or a worker pool's For); workers touch disjoint
// cells and the per-cell summation order follows the store order, so the
// accumulation is race-free and bit-identical for any sharding.
//
//dsmc:hotpath
func AddFlowCellMajor[F kernel.Float](a *Accumulator, st *particle.Store[F], cellStart []int32, parFor func(n int, f func(lo, hi int))) {
	//dsmclint:allow hotpath-alloc one closure per sample call (not per particle); the capture set varies per call so it cannot be prebuilt here
	parFor(len(cellStart)-1, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			for i := int(cellStart[c]); i < int(cellStart[c+1]); i++ {
				addParticle(a, st, int32(c), i)
			}
		}
	})
	a.Steps++
}

// Raw exposes the live moment columns (Σcount, Σu, Σv, Σw, Σenergy) for
// checkpointing: a writer streams them out, a reader copies a
// checkpointed snapshot back in. The slices alias the accumulator's
// storage — treat them as owned by the accumulator.
func (a *Accumulator) Raw() (count, momX, momY, momZ, enrg []float64) {
	return a.count, a.momX, a.momY, a.momZ, a.enrg
}

// AddCounts accumulates a per-cell count snapshot only (density sampling
// for backends that do not expose per-particle moments cheaply).
func (a *Accumulator) AddCounts(counts []int32) {
	for c, v := range counts {
		a.count[c] += float64(v)
	}
	a.Steps++
}

// Density returns the time-averaged density field normalised by the
// freestream (ρ/ρ∞ = 1 in undisturbed flow). Cells with zero gas volume
// return 0. The fractional cell volume enters here, exactly as the paper
// prescribes for wedge-cut cells.
func (a *Accumulator) Density() []float64 {
	out := make([]float64, len(a.count))
	if a.Steps == 0 {
		return out
	}
	for c := range out {
		if a.vol(c) <= 0 {
			continue
		}
		out[c] = a.count[c] / (float64(a.Steps) * a.vol(c) * a.NInf)
	}
	return out
}

// Velocity returns the time-averaged mean in-plane velocity components
// per cell (unnormalised, cells/step).
func (a *Accumulator) Velocity() (ux, uy []float64) {
	n := len(a.count)
	ux = make([]float64, n)
	uy = make([]float64, n)
	for c := 0; c < n; c++ {
		if a.count[c] > 0 {
			ux[c] = a.momX[c] / a.count[c]
			uy[c] = a.momY[c] / a.count[c]
		}
	}
	return ux, uy
}

// thermal returns cell c's mean thermal (peculiar) energy per degree of
// freedom: the mean square 5-component velocity minus the square of the
// mean bulk velocity, over 5 dof. Negative rounding residue clamps to 0.
func (a *Accumulator) thermal(c int) float64 {
	ux := a.momX[c] / a.count[c]
	uy := a.momY[c] / a.count[c]
	uz := a.momZ[c] / a.count[c]
	meanSq := a.enrg[c] / a.count[c]
	therm := meanSq - ux*ux - uy*uy - uz*uz
	if therm < 0 {
		therm = 0
	}
	return therm / 5
}

// Temperature returns a per-cell temperature proxy: the mean thermal
// (peculiar) energy per degree of freedom, in units of cm∞²/2 when
// normalised by the caller. Cells without samples return 0.
func (a *Accumulator) Temperature() []float64 {
	n := len(a.count)
	out := make([]float64, n)
	for c := 0; c < n; c++ {
		if a.count[c] <= 0 {
			continue
		}
		out[c] = a.thermal(c)
	}
	return out
}

// Quantity slugs — the shared vocabulary between the public sampling
// API, the orchestration layer, and the job server. Every quantity is
// derived from the same one-pass moment accumulation.
const (
	QDensity     = "density"     // ρ/ρ∞
	QVelocityX   = "velocity-x"  // mean u / cm∞
	QVelocityY   = "velocity-y"  // mean v / cm∞
	QVelocityZ   = "velocity-z"  // mean w / cm∞
	QTemperature = "temperature" // T/T∞ (thermal energy per dof over cm∞²/2)
	QMach        = "mach"        // local bulk speed over local sound speed
)

// Quantities lists every derivable quantity slug (stable order).
func Quantities() []string {
	return []string{QDensity, QVelocityX, QVelocityY, QVelocityZ, QTemperature, QMach}
}

// KnownQuantity reports whether q is a derivable quantity slug.
func KnownQuantity(q string) bool {
	for _, k := range Quantities() {
		if k == q {
			return true
		}
	}
	return false
}

// Norms carries the freestream normalisers the derived quantities are
// reported in: velocities in units of the freestream most-probable
// speed Cm, temperature in units of the freestream temperature proxy
// Cm²/2, and the local Mach number via the ratio of specific heats.
type Norms struct {
	Cm    float64
	Gamma float64
}

// FieldOf derives one normalised quantity field from the accumulated
// moments. Cells without samples (or without gas volume, for density)
// read 0. The derivation is pure arithmetic over the deterministic
// moment sums, so every quantity inherits the accumulation's worker-
// count bit-identity.
func (a *Accumulator) FieldOf(q string, n Norms) ([]float64, error) {
	switch q {
	case QDensity:
		return a.Density(), nil
	case QVelocityX:
		return a.meanOver(a.momX, n.Cm), nil
	case QVelocityY:
		return a.meanOver(a.momY, n.Cm), nil
	case QVelocityZ:
		return a.meanOver(a.momZ, n.Cm), nil
	case QTemperature:
		tInf := n.Cm * n.Cm / 2
		out := make([]float64, len(a.count))
		for c := range out {
			if a.count[c] > 0 {
				out[c] = a.thermal(c) / tInf
			}
		}
		return out, nil
	case QMach:
		out := make([]float64, len(a.count))
		for c := range out {
			if a.count[c] <= 0 {
				continue
			}
			ux := a.momX[c] / a.count[c]
			uy := a.momY[c] / a.count[c]
			uz := a.momZ[c] / a.count[c]
			t := a.thermal(c)
			if t <= 0 {
				continue
			}
			// Sound speed a² = γ·(kT/m), with kT/m = the thermal proxy.
			out[c] = math.Sqrt((ux*ux + uy*uy + uz*uz) / (n.Gamma * t))
		}
		return out, nil
	}
	return nil, fmt.Errorf("sample: unknown quantity %q", q)
}

// meanOver returns mom/count normalised by norm (0 where no samples).
func (a *Accumulator) meanOver(mom []float64, norm float64) []float64 {
	out := make([]float64, len(a.count))
	for c := range out {
		if a.count[c] > 0 {
			out[c] = mom[c] / a.count[c] / norm
		}
	}
	return out
}

// At reads a field at cell coordinates.
func At(field []float64, g grid.Grid, ix, iy int) float64 {
	return field[g.Index(ix, iy)]
}

// Column returns the field values of column ix (bottom to top).
func Column(field []float64, g grid.Grid, ix int) []float64 {
	out := make([]float64, g.NY)
	for iy := 0; iy < g.NY; iy++ {
		out[iy] = field[g.Index(ix, iy)]
	}
	return out
}

// Row returns the field values of row iy (upstream to downstream).
func Row(field []float64, g grid.Grid, iy int) []float64 {
	out := make([]float64, g.NX)
	for ix := 0; ix < g.NX; ix++ {
		out[ix] = field[g.Index(ix, iy)]
	}
	return out
}

// Window copies the sub-field [x0,x1)×[y0,y1) (the stagnation-region zoom
// of figures 3 and 6).
func Window(field []float64, g grid.Grid, x0, y0, x1, y1 int) ([]float64, int, int) {
	w, h := x1-x0, y1-y0
	out := make([]float64, w*h)
	for iy := y0; iy < y1; iy++ {
		for ix := x0; ix < x1; ix++ {
			out[(iy-y0)*w+(ix-x0)] = field[g.Index(ix, iy)]
		}
	}
	return out, w, h
}

// CrossingFromAbove scans column ix from the top down and returns the y
// (cell-centre units) where the density first rises through level,
// linearly interpolated; returns -1 if no crossing.
func CrossingFromAbove(field []float64, g grid.Grid, ix int, level float64) float64 {
	prev := At(field, g, ix, g.NY-1)
	for iy := g.NY - 2; iy >= 0; iy-- {
		cur := At(field, g, ix, iy)
		if prev < level && cur >= level {
			// Interpolate between cell centres iy+0.5 and iy+1.5.
			t := (level - prev) / (cur - prev)
			return float64(iy) + 1.5 - t
		}
		prev = cur
	}
	return -1
}

// ShockFront locates the shock above the wedge ramp: for each column in
// [x0, x1) it finds the downward crossing of the half-rise density level
// (1+postShock)/2 and returns the (x, y) points.
func ShockFront(field []float64, g grid.Grid, x0, x1 int, postShock float64) (xs, ys []float64) {
	level := (1 + postShock) / 2
	for ix := x0; ix < x1; ix++ {
		y := CrossingFromAbove(field, g, ix, level)
		if y >= 0 {
			xs = append(xs, float64(ix)+0.5)
			ys = append(ys, y)
		}
	}
	return xs, ys
}

// FitLine least-squares fits y = a + b·x and returns (a, b).
func FitLine(xs, ys []float64) (a, b float64) {
	n := float64(len(xs))
	if n < 2 {
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return sy / n, 0
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	return a, b
}

// ShockAngle fits the shock front over [x0, x1) and returns the shock
// angle in radians (the paper's validation: 45° for Mach 4 over the 30°
// wedge).
func ShockAngle(field []float64, g grid.Grid, x0, x1 int, postShock float64) float64 {
	xs, ys := ShockFront(field, g, x0, x1, postShock)
	if len(xs) < 2 {
		return math.NaN()
	}
	_, slope := FitLine(xs, ys)
	return math.Atan(slope)
}

// WedgePostShockRatio returns the Rankine–Hugoniot post-shock density
// ratio for a wedge flow — the reference level front detection keys on —
// falling back to 3 when no attached-shock solution exists. This is the
// one place the convention lives; the public Field analysis and the
// orchestration layer's per-replica fits both use it.
func WedgePostShockRatio(mach, wedgeAngleRad float64) float64 {
	beta, err := phys.ObliqueShockBeta(mach, wedgeAngleRad, phys.GammaDiatomic)
	if err != nil {
		return 3
	}
	return phys.RHDensityRatio(phys.NormalMach(mach, beta), phys.GammaDiatomic)
}

// WedgeShockAngle fits the oblique-shock angle (radians) of a wedge-flow
// density field over the standard ramp window — 6 cells behind the
// leading edge to 2 cells before the trailing edge, the stretch where
// the shock is straight and attached. NaN when no front is found.
func WedgeShockAngle(field []float64, g grid.Grid, leadX, base, wedgeAngleRad, mach float64) float64 {
	x0 := int(leadX) + 6
	x1 := int(leadX + base - 2)
	return ShockAngle(field, g, x0, x1, WedgePostShockRatio(mach, wedgeAngleRad))
}

// ShockThickness measures the 10–90% rise distance of the density through
// the shock along column ix, returning the distance along the shock
// normal (vertical distance × cos β). The paper reads 3 cell widths in
// the near-continuum case and 5 in the rarefied case.
func ShockThickness(field []float64, g grid.Grid, ix int, postShock, beta float64) float64 {
	lo := 1 + 0.1*(postShock-1)
	hi := 1 + 0.9*(postShock-1)
	yHi := CrossingFromAbove(field, g, ix, lo) // upper edge (low density)
	yLo := CrossingFromAbove(field, g, ix, hi) // lower edge (high density)
	if yHi < 0 || yLo < 0 || yHi <= yLo {
		return math.NaN()
	}
	return (yHi - yLo) * math.Cos(beta)
}

// RegionMean averages the field over cells [x0,x1)×[y0,y1) with positive
// volume.
func RegionMean(field []float64, g grid.Grid, vols []float64, x0, y0, x1, y1 int) float64 {
	var sum float64
	n := 0
	for iy := y0; iy < y1; iy++ {
		for ix := x0; ix < x1; ix++ {
			c := g.Index(ix, iy)
			if vols[c] > 0 {
				sum += field[c]
				n++
			}
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
