package sample

import (
	"fmt"
	"io"
	"strings"

	"dsmc/internal/grid"
)

// Contour extraction and renderers: the paper's figures are density
// contours (figs 1, 4) and density surfaces (figs 2, 3, 5, 6); here the
// same data is produced as contour segments, ASCII maps, CSV grids and
// PGM images.

// Segment is one line segment of a contour.
type Segment struct{ X1, Y1, X2, Y2 float64 }

// Contour extracts level-set segments of the field with marching squares
// over cell centres.
func Contour(field []float64, g grid.Grid, level float64) []Segment {
	var segs []Segment
	at := func(ix, iy int) float64 { return field[g.Index(ix, iy)] }
	interp := func(va, vb float64) float64 {
		//dsmclint:allow float-eq degenerate-span guard: exact equality is precisely the division-by-zero case below
		if vb == va {
			return 0.5
		}
		return (level - va) / (vb - va)
	}
	for iy := 0; iy+1 < g.NY; iy++ {
		for ix := 0; ix+1 < g.NX; ix++ {
			v00, v10 := at(ix, iy), at(ix+1, iy)
			v01, v11 := at(ix, iy+1), at(ix+1, iy+1)
			var code int
			if v00 >= level {
				code |= 1
			}
			if v10 >= level {
				code |= 2
			}
			if v11 >= level {
				code |= 4
			}
			if v01 >= level {
				code |= 8
			}
			if code == 0 || code == 15 {
				continue
			}
			x0, y0 := float64(ix)+0.5, float64(iy)+0.5
			// Edge midpoints with linear interpolation.
			bottom := func() (float64, float64) { return x0 + interp(v00, v10), y0 }
			top := func() (float64, float64) { return x0 + interp(v01, v11), y0 + 1 }
			left := func() (float64, float64) { return x0, y0 + interp(v00, v01) }
			right := func() (float64, float64) { return x0 + 1, y0 + interp(v10, v11) }
			add := func(ax, ay, bx, by float64) {
				segs = append(segs, Segment{ax, ay, bx, by})
			}
			switch code {
			case 1, 14:
				ax, ay := bottom()
				bx, by := left()
				add(ax, ay, bx, by)
			case 2, 13:
				ax, ay := bottom()
				bx, by := right()
				add(ax, ay, bx, by)
			case 3, 12:
				ax, ay := left()
				bx, by := right()
				add(ax, ay, bx, by)
			case 4, 11:
				ax, ay := top()
				bx, by := right()
				add(ax, ay, bx, by)
			case 6, 9:
				ax, ay := bottom()
				bx, by := top()
				add(ax, ay, bx, by)
			case 7, 8:
				ax, ay := top()
				bx, by := left()
				add(ax, ay, bx, by)
			case 5: // saddle: two segments
				ax, ay := bottom()
				bx, by := left()
				add(ax, ay, bx, by)
				ax, ay = top()
				bx, by = right()
				add(ax, ay, bx, by)
			case 10: // saddle
				ax, ay := bottom()
				bx, by := right()
				add(ax, ay, bx, by)
				ax, ay = top()
				bx, by = left()
				add(ax, ay, bx, by)
			}
		}
	}
	return segs
}

const asciiRamp = " .:-=+*#%@"

// ASCIIMap renders the field as text, one character per cell, row NY-1 at
// the top (flow left to right), scaled to [min, max].
func ASCIIMap(field []float64, g grid.Grid, min, max float64) string {
	var b strings.Builder
	span := max - min
	if span <= 0 {
		span = 1
	}
	for iy := g.NY - 1; iy >= 0; iy-- {
		for ix := 0; ix < g.NX; ix++ {
			v := (field[g.Index(ix, iy)] - min) / span
			if v < 0 {
				v = 0
			}
			if v > 0.999 {
				v = 0.999
			}
			b.WriteByte(asciiRamp[int(v*float64(len(asciiRamp)))])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteCSV writes the field as an NY×NX comma-separated grid (row 0 first).
func WriteCSV(w io.Writer, field []float64, g grid.Grid) error {
	for iy := 0; iy < g.NY; iy++ {
		for ix := 0; ix < g.NX; ix++ {
			if ix > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%.6g", field[g.Index(ix, iy)]); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// WritePGM writes the field as a binary 8-bit PGM image scaled to
// [min, max], row NY-1 at the top.
func WritePGM(w io.Writer, field []float64, g grid.Grid, min, max float64) error {
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", g.NX, g.NY); err != nil {
		return err
	}
	span := max - min
	if span <= 0 {
		span = 1
	}
	row := make([]byte, g.NX)
	for iy := g.NY - 1; iy >= 0; iy-- {
		for ix := 0; ix < g.NX; ix++ {
			v := (field[g.Index(ix, iy)] - min) / span * 255
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			row[ix] = byte(v)
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// SurfaceASCII renders a perspective-free "density surface" view: for
// each column the field value of each row is binned into height bands,
// approximating the paper's surface plots in text form.
func SurfaceASCII(field []float64, g grid.Grid, max float64, bands int) string {
	if bands <= 0 {
		bands = 8
	}
	var b strings.Builder
	for iy := g.NY - 1; iy >= 0; iy-- {
		for ix := 0; ix < g.NX; ix++ {
			v := field[g.Index(ix, iy)] / max
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			band := int(v * float64(bands))
			if band >= bands {
				band = bands - 1
			}
			b.WriteByte("0123456789abcdef"[band%16])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
