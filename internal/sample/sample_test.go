package sample

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dsmc/internal/collide"
	"dsmc/internal/grid"
	"dsmc/internal/particle"
)

func uniformVols(g grid.Grid) []float64 {
	v := make([]float64, g.Cells())
	for i := range v {
		v[i] = 1
	}
	return v
}

// syntheticShockField builds a density field with an oblique front rising
// from (x0, 0) at angle beta: 1 upstream/above, ratio below the front,
// with a linear ramp of the given thickness in y.
func syntheticShockField(g grid.Grid, x0, beta, ratio, thick float64) []float64 {
	f := make([]float64, g.Cells())
	tanb := math.Tan(beta)
	for iy := 0; iy < g.NY; iy++ {
		for ix := 0; ix < g.NX; ix++ {
			x := float64(ix) + 0.5
			y := float64(iy) + 0.5
			front := (x - x0) * tanb
			d := front - y // positive below the front
			var v float64
			switch {
			case d <= -thick/2:
				v = 1
			case d >= thick/2:
				v = ratio
			default:
				v = 1 + (ratio-1)*(d+thick/2)/thick
			}
			f[g.Index(ix, iy)] = v
		}
	}
	return f
}

func TestAccumulatorDensity(t *testing.T) {
	g := grid.New(4, 2)
	vols := uniformVols(g)
	acc := NewAccumulator(g, vols, 10)
	st := particle.NewStore[float64](40)
	// 20 particles in cell 0, 10 in cell 5.
	for i := 0; i < 20; i++ {
		idx := st.Append(0.5, 0.5, collide.State5{1, 0, 0, 0, 0})
		st.Cell[idx] = 0
	}
	for i := 0; i < 10; i++ {
		idx := st.Append(1.5, 1.5, collide.State5{0, 2, 0, 0, 0})
		st.Cell[idx] = 5
	}
	AddFlow(acc, st)
	AddFlow(acc, st) // two identical snapshots
	rho := acc.Density()
	if math.Abs(rho[0]-2.0) > 1e-12 {
		t.Errorf("cell 0 density %v, want 2 (20 particles / nInf 10)", rho[0])
	}
	if math.Abs(rho[5]-1.0) > 1e-12 {
		t.Errorf("cell 5 density %v, want 1", rho[5])
	}
	if rho[1] != 0 {
		t.Errorf("empty cell density %v", rho[1])
	}
}

func TestAccumulatorFractionalVolume(t *testing.T) {
	g := grid.New(2, 1)
	vols := []float64{0.5, 0} // a wedge-cut cell and a solid cell
	acc := NewAccumulator(g, vols, 10)
	st := particle.NewStore[float64](10)
	for i := 0; i < 5; i++ {
		idx := st.Append(0.5, 0.5, collide.State5{})
		st.Cell[idx] = 0
	}
	AddFlow(acc, st)
	rho := acc.Density()
	if math.Abs(rho[0]-1.0) > 1e-12 {
		t.Errorf("fractional cell density %v, want 1 (5/(0.5·10))", rho[0])
	}
	if rho[1] != 0 {
		t.Errorf("zero-volume cell must report 0 density")
	}
}

func TestAccumulatorVelocityTemperature(t *testing.T) {
	g := grid.New(1, 1)
	acc := NewAccumulator(g, uniformVols(g), 1)
	st := particle.NewStore[float64](2)
	i0 := st.Append(0.5, 0.5, collide.State5{2, 0, 0, 0, 0})
	i1 := st.Append(0.5, 0.5, collide.State5{4, 0, 0, 0, 0})
	st.Cell[i0], st.Cell[i1] = 0, 0
	AddFlow(acc, st)
	ux, uy := acc.Velocity()
	if math.Abs(ux[0]-3) > 1e-12 || uy[0] != 0 {
		t.Errorf("mean velocity %v,%v", ux[0], uy[0])
	}
	// Thermal energy: mean square 10, mean 3 → peculiar 1; over 5 dof 0.2.
	temp := acc.Temperature()
	if math.Abs(temp[0]-0.2) > 1e-12 {
		t.Errorf("temperature %v, want 0.2", temp[0])
	}
}

func TestAddCounts(t *testing.T) {
	g := grid.New(2, 1)
	acc := NewAccumulator(g, uniformVols(g), 5)
	acc.AddCounts([]int32{10, 0})
	acc.AddCounts([]int32{0, 10})
	rho := acc.Density()
	if math.Abs(rho[0]-1) > 1e-12 || math.Abs(rho[1]-1) > 1e-12 {
		t.Errorf("AddCounts density %v", rho)
	}
}

func TestRowColumnWindowAt(t *testing.T) {
	g := grid.New(3, 2)
	f := make([]float64, 6)
	for i := range f {
		f[i] = float64(i)
	}
	if At(f, g, 2, 1) != 5 {
		t.Errorf("At")
	}
	row := Row(f, g, 1)
	if row[0] != 3 || row[2] != 5 {
		t.Errorf("Row = %v", row)
	}
	col := Column(f, g, 1)
	if col[0] != 1 || col[1] != 4 {
		t.Errorf("Column = %v", col)
	}
	win, w, h := Window(f, g, 1, 0, 3, 2)
	if w != 2 || h != 2 || win[0] != 1 || win[3] != 5 {
		t.Errorf("Window = %v (%dx%d)", win, w, h)
	}
}

func TestShockAngleOnSyntheticField(t *testing.T) {
	g := grid.New(98, 64)
	const beta = 45 * math.Pi / 180
	f := syntheticShockField(g, 20, beta, 3.7, 3)
	got := ShockAngle(f, g, 26, 44, 3.7) * 180 / math.Pi
	if math.Abs(got-45) > 1.5 {
		t.Errorf("shock angle %v°, want 45°", got)
	}
}

func TestShockAngleSteeperFront(t *testing.T) {
	g := grid.New(98, 64)
	const beta = 30 * math.Pi / 180
	f := syntheticShockField(g, 20, beta, 3.0, 2)
	got := ShockAngle(f, g, 26, 60, 3.0) * 180 / math.Pi
	if math.Abs(got-30) > 1.5 {
		t.Errorf("shock angle %v°, want 30°", got)
	}
}

func TestShockAngleNoFront(t *testing.T) {
	g := grid.New(10, 10)
	f := make([]float64, 100) // all zero: no crossing
	if !math.IsNaN(ShockAngle(f, g, 0, 10, 3.7)) {
		t.Errorf("expected NaN for missing front")
	}
}

func TestShockThicknessOnSyntheticField(t *testing.T) {
	g := grid.New(98, 64)
	const beta = 45 * math.Pi / 180
	for _, thick := range []float64{3, 5} {
		f := syntheticShockField(g, 20, beta, 3.7, thick)
		got := ShockThickness(f, g, 35, 3.7, beta)
		// The synthetic ramp thickness is measured vertically; the
		// function reports along the normal: thick·cos β... the ramp is
		// built in y, so expected = 0.8·thick·cosβ (10–90% of the rise).
		want := 0.8 * thick * math.Cos(beta)
		if math.Abs(got-want) > 0.6 {
			t.Errorf("thickness(ramp %v) = %v, want ≈%v", thick, got, want)
		}
	}
}

func TestCrossingFromAbove(t *testing.T) {
	g := grid.New(1, 8)
	f := []float64{4, 4, 4, 3, 1, 1, 1, 1}
	y := CrossingFromAbove(f, g, 0, 2)
	// Density rises from 1 (cell 4, centre 4.5) to 3 (cell 3, centre 3.5);
	// level 2 crosses at y = 4.0.
	if math.Abs(y-4.0) > 1e-9 {
		t.Errorf("crossing y = %v, want 4.0", y)
	}
	if CrossingFromAbove(f, g, 0, 100) != -1 {
		t.Errorf("no crossing must return -1")
	}
}

func TestFitLine(t *testing.T) {
	a, b := FitLine([]float64{0, 1, 2, 3}, []float64{1, 3, 5, 7})
	if math.Abs(a-1) > 1e-12 || math.Abs(b-2) > 1e-12 {
		t.Errorf("FitLine = %v + %v x", a, b)
	}
	if _, b := FitLine([]float64{1}, []float64{5}); b != 0 {
		t.Errorf("degenerate fit must return zero slope")
	}
}

func TestRegionMean(t *testing.T) {
	g := grid.New(4, 4)
	vols := uniformVols(g)
	vols[g.Index(1, 1)] = 0 // excluded cell
	f := make([]float64, 16)
	for i := range f {
		f[i] = 2
	}
	f[g.Index(1, 1)] = 1e9 // must be ignored
	if got := RegionMean(f, g, vols, 0, 0, 4, 4); math.Abs(got-2) > 1e-12 {
		t.Errorf("RegionMean = %v", got)
	}
	if !math.IsNaN(RegionMean(f, g, vols, 1, 1, 2, 2)) {
		t.Errorf("all-excluded region must return NaN")
	}
}

func TestContourExtraction(t *testing.T) {
	g := grid.New(20, 20)
	// Radial field: contour of level 25 is a circle of radius 5 around
	// (10, 10) in cell-centre space.
	f := make([]float64, g.Cells())
	for iy := 0; iy < 20; iy++ {
		for ix := 0; ix < 20; ix++ {
			dx := float64(ix) + 0.5 - 10
			dy := float64(iy) + 0.5 - 10
			f[g.Index(ix, iy)] = dx*dx + dy*dy
		}
	}
	segs := Contour(f, g, 25)
	if len(segs) < 16 {
		t.Fatalf("too few contour segments: %d", len(segs))
	}
	for _, s := range segs {
		for _, pt := range [][2]float64{{s.X1, s.Y1}, {s.X2, s.Y2}} {
			r := math.Hypot(pt[0]-10, pt[1]-10)
			if math.Abs(r-5) > 0.8 {
				t.Fatalf("contour point at radius %v, want 5", r)
			}
		}
	}
}

func TestContourFlatFieldEmpty(t *testing.T) {
	g := grid.New(8, 8)
	f := make([]float64, 64)
	if segs := Contour(f, g, 0.5); len(segs) != 0 {
		t.Errorf("flat field must have no contours, got %d segments", len(segs))
	}
}

func TestASCIIMapShape(t *testing.T) {
	g := grid.New(10, 4)
	f := make([]float64, 40)
	f[g.Index(0, 0)] = 1
	s := ASCIIMap(f, g, 0, 1)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 || len(lines[0]) != 10 {
		t.Fatalf("map shape %dx%d", len(lines), len(lines[0]))
	}
	// Highest value renders as the densest glyph, at bottom-left.
	if lines[3][0] != '@' {
		t.Errorf("peak glyph = %q", lines[3][0])
	}
	if lines[0][9] != ' ' {
		t.Errorf("zero glyph = %q", lines[0][9])
	}
}

func TestWriteCSV(t *testing.T) {
	g := grid.New(2, 2)
	f := []float64{1, 2, 3, 4}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, f, g); err != nil {
		t.Fatal(err)
	}
	want := "1,2\n3,4\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestWritePGM(t *testing.T) {
	g := grid.New(3, 2)
	f := []float64{0, 0.5, 1, 1, 0.5, 0}
	var buf bytes.Buffer
	if err := WritePGM(&buf, f, g, 0, 1); err != nil {
		t.Fatal(err)
	}
	s := buf.Bytes()
	if !bytes.HasPrefix(s, []byte("P5\n3 2\n255\n")) {
		t.Fatalf("PGM header wrong: %q", s[:12])
	}
	if len(s) != len("P5\n3 2\n255\n")+6 {
		t.Errorf("PGM payload length %d", len(s))
	}
}

func TestSurfaceASCII(t *testing.T) {
	g := grid.New(4, 2)
	f := []float64{0, 1, 2, 4, 4, 2, 1, 0}
	s := SurfaceASCII(f, g, 4, 8)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 2 || len(lines[0]) != 4 {
		t.Fatalf("surface shape wrong")
	}
	if lines[1][0] != '0' || lines[1][3] != '7' {
		t.Errorf("bands wrong: %q", lines[1])
	}
}
