// Package engine is the generic cell-major core both reference backends
// run on: one phase pipeline — fused move+boundary, fused sort+scatter,
// in-cell shuffle, per-shard select/collide, sampling — parameterized
// over the storage precision (float32 halves the memory traffic of the
// cell-major sweeps; float64 reproduces the pre-unification backends bit
// for bit) and over a small Domain interface carrying the
// dimension-specific parts: grid indexing, boundary conditions, and the
// serial bookkeeping around them. The paper's point is that one
// data-parallel formulation serves every geometry; this package is that
// formulation, with internal/sim (wind tunnel + wedge) and internal/sim3
// (piston-driven shock tube) reduced to geometry and configuration
// adapters over it.
//
// Determinism contract: every cell (and, at diffuse walls, every
// particle) draws from its own counter-based stream keyed by
// (seed, step, domain, lane), so results are bit-identical for any
// worker count. The StreamLayout preserves each backend's historical
// epoch encoding, which is what keeps the unified core's float64 output
// identical to the pre-refactor code (pinned by internal/golden).
package engine

import (
	"math"
	"time"

	"dsmc/internal/baseline"
	"dsmc/internal/collide"
	"dsmc/internal/kernel"
	"dsmc/internal/obs"
	"dsmc/internal/par"
	"dsmc/internal/particle"
	"dsmc/internal/rng"
	"dsmc/internal/sample"
)

// Engine metrics live on the process-wide registry and are shared by
// every engine instance (a sweep runs many replicas in one process):
// counters accumulate across instances; the particle gauge reflects
// whichever engine stepped last. The instruments are resolved here,
// once — the record path in Step holds pointers and performs only
// atomic operations, so the AllocsPerRun zero-allocation pins and the
// bit-identity goldens hold with metrics enabled. No clock is read
// for metrics: the per-phase histograms observe the same durations
// the phaseTime breakdown already books through the now()/since()
// chokepoint.
var (
	mSteps      = obs.Default.NewCounter("dsmc_engine_steps_total", "Completed time steps across all engine instances.")
	mCollisions = obs.Default.NewCounter("dsmc_engine_collisions_total", "Collisions performed across all engine instances.")
	mParticles  = obs.Default.NewGauge("dsmc_engine_particles", "Particles in flow of the most recently stepped engine.")
	mPhase      [numPhases]*obs.Histogram
)

func init() {
	for p := Phase(0); p < numPhases; p++ {
		mPhase[p] = obs.Default.NewHistogram("dsmc_engine_phase_seconds",
			"Per-step wall time of one pipeline phase.",
			obs.DurationBuckets, obs.L{K: "phase", V: p.String()})
	}
}

// Phase identifies one of the four sub-steps for timing breakdowns.
type Phase int

// The four sub-steps of a time step, as the paper reports them.
const (
	PhaseMove    Phase = iota // collisionless motion + boundary conditions
	PhaseSort                 // cell indexing and ordering
	PhaseSelect               // candidate pairing and the selection rule
	PhaseCollide              // collision of selected partners
	numPhases
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseMove:
		return "move+boundary"
	case PhaseSort:
		return "sort"
	case PhaseSelect:
		return "select"
	case PhaseCollide:
		return "collide"
	}
	return "unknown"
}

// StreamLayout fixes a backend's rng.StreamAt epoch encoding: the epoch
// of a phase at step s is s*NumDomains + domain. Each backend keeps the
// encoding it has always used (2D: sort/select/collide/wall over four
// domains; 3D: sort/collide over two, selection drawing from the collide
// stream), so unifying the pipelines moved no stream coordinates.
type StreamLayout struct {
	// NumDomains is the number of per-step stream domains.
	NumDomains uint64
	// Sort is the in-cell shuffle domain (lane = cell).
	Sort uint64
	// Select is the candidate-selection domain (lane = cell); unused
	// when FusedSelect is set.
	Select uint64
	// Collide is the collision domain (lane = cell). Fused backends draw
	// the selection probabilities from this stream too, interleaved with
	// the collision draws.
	Collide uint64
	// Wall is the diffuse-wall re-emission domain (lane = particle);
	// only consumed by domains with randomized boundaries.
	Wall uint64
}

// Domain supplies the dimension-specific parts of the pipeline. Methods
// prefixed Pre/Post run serially on the stepping goroutine; Boundary and
// CellOf run inside sharded passes and must only touch shard-local or
// read-only state (plus their disjoint particle ranges).
type Domain[F kernel.Float] interface {
	// CellIndexer returns the per-particle cell lookup the fused
	// sort+scatter plans with. Called once at engine construction (never
	// per particle), so implementations return a closure prebuilt over
	// their grid that reads the engine's live store at call time — the
	// hot histogram loop then pays one indirect call per particle, not
	// an interface dispatch on top.
	CellIndexer() func(i int) int32
	// PreMove runs before the sharded move pass (advance the
	// plunger/piston, reset per-worker exit state).
	PreMove()
	// Boundary enforces the boundary conditions on particles [lo, hi) of
	// shard w, after the advance kernel has moved them. The engine tiles
	// each shard (advance a cache-resident tile, then bound it), so
	// Boundary is called several times per shard in ascending, disjoint
	// ranges: implementations must append to per-worker state, resetting
	// it in PreMove. Membership changes must be deferred to PostMove
	// (record, don't remove).
	Boundary(st *particle.Store[F], w, lo, hi int)
	// PostMove runs after the move pass (remove exited particles, refill
	// the plunger void).
	PostMove()
	// PostStep runs at the end of the step (relax the reservoir).
	PostStep()
}

// Config assembles an engine. The zero value is not runnable; every
// field except Vols, ZVib and Scheme is required.
type Config struct {
	// Cells is the grid's cell count.
	Cells int
	// Seed keys all counter-based streams.
	Seed uint64
	// Rule is the collision selection rule.
	Rule collide.Rule
	// Vols are the per-cell gas volumes entering the selection rule;
	// nil means unit volumes everywhere.
	Vols []float64
	// Layout is the backend's stream-domain encoding.
	Layout StreamLayout
	// FusedSelect selects the single-pass select+collide style (the 3D
	// backend's): selection and collision draw interleaved from the
	// Collide stream of each cell. Off, selection streams all pairs of a
	// shard first (recording picks) and collision revisits them with the
	// separate Collide stream — the 2D backend's style, which also
	// yields the select/collide timing split.
	FusedSelect bool
	// ZVib enables vibrational relaxation when positive: each collision
	// exchanges energy with the pair's continuous vibrational
	// reservoirs with probability 1/ZVib.
	ZVib float64
	// Scheme, when non-nil, replaces the default McDonald–Baganoff
	// select+collide with a pluggable per-cell scheme (baselines).
	Scheme baseline.Scheme
	// SortTile is the sort's cell-block scatter window width in cells
	// (rounded up to a power of two); <= 0 selects par.DefaultSortTile,
	// >= Cells disables tiling. A pure cache knob: it never changes
	// results.
	SortTile int
	// Regions selects the spatially-blocked (owner-computes) stepping
	// mode: the cells are partitioned into contiguous per-worker regions
	// (rebalanced by particle count at every sort) and each worker runs
	// move, sort, collide and sample over its own region's particles,
	// with the sort's cell-block buckets acting as the explicit migrant
	// exchange between regions. Bit-identical to the default
	// equal-blocks sharding — the decomposition moves cache and
	// cross-worker traffic, never bits.
	Regions bool
}

// pairPick records an accepted candidate pair: the particles at indices
// a and a+1 of the cell-major store, in cell c (the collide pass
// re-derives cell c's stream when c changes).
type pairPick struct{ a, c int32 }

// Engine is the unified cell-major pipeline over one particle store.
//
// The store is double-buffered: every step the sort's scatter writes the
// payload into the shadow buffer at its cell-major position and the two
// are swapped, so the select/collide/sample sweeps walk contiguous
// cellStart[c]:cellStart[c+1] ranges with no index indirection. All
// dispatch closures and per-worker scratch are built once at
// construction; a steady-state Step performs zero heap allocations.
type Engine[F kernel.Float] struct {
	cfg Config
	dom Domain[F]

	store  *particle.Store[F] // live buffer, cell-major after each sort
	shadow *particle.Store[F] // scatter target, swapped with store each step

	pool   *par.Pool
	sorter *par.CellSort[F]
	table  []rng.Perm5

	step       int
	collisions int64
	phaseTime  [numPhases]time.Duration

	// stepObs, when set, receives each completed step's phase-time
	// deltas (the flight-recorder feed); prevColl tracks the collision
	// counter between steps so the metrics see per-step increments.
	stepObs  func(step int, phaseNs [numPhases]int64, particles int)
	prevColl int64

	// Prebuilt shard bodies: building them once keeps the pool dispatch
	// in Step allocation-free (a func literal created per call would
	// escape to the heap).
	fnMoveBound func(w, lo, hi int)
	fnSelCol    func(w, lo, hi int)
	fnScheme    func(w, lo, hi int)
	cellOfFn    func(i int) int32
	swapFn      func(i, j int)

	// Owner-computes state (Config.Regions). cellBounds partitions the
	// cell index space into one contiguous region per worker; segBounds
	// is the matching particle-segment decomposition of the cell-major
	// store (segBounds[r] = cellStart[cellBounds[r]], recomputed after
	// every sort). haveBounds gates the span-sharded paths: false until
	// the first sort and after a checkpoint restore, when the pipeline
	// falls back to the equal-block decomposition for one pass — a pure
	// scheduling choice, so the fallback is bit-identical too.
	regions      bool
	cellBounds   []int32
	segBounds    []int32
	planSeg      []int32 // segBounds clamped to the post-PostMove length
	haveBounds   bool
	sampleFn     func(lo, hi int)
	fnSampleSpan func(w, lo, hi int)
	sampleFor    func(n int, f func(lo, hi int))

	// per-worker scratch, indexed by the pool's block index
	scratchW [][]collide.State5 // scheme gather buffers
	gW       [][]float64        // relative-speed spans (one cell at a time)
	picksW   [][]pairPick       // accepted-pair buffers (split style)
	selW     []time.Duration
	colW     []time.Duration
	colls    []int64
}

// New assembles an engine over the given domain, worker pool, and
// double-buffered stores (equal capacity, both 2D or both 3D).
func New[F kernel.Float](cfg Config, dom Domain[F], pool *par.Pool, store, shadow *particle.Store[F]) *Engine[F] {
	e := &Engine[F]{
		cfg:     cfg,
		dom:     dom,
		store:   store,
		shadow:  shadow,
		pool:    pool,
		sorter:  par.NewCellSort[F](pool, cfg.Cells, cfg.SortTile, store.Cap()),
		table:   rng.Perm5Table(),
		regions: cfg.Regions,
	}
	w := pool.Workers()
	e.scratchW = make([][]collide.State5, w)
	e.gW = make([][]float64, w)
	e.picksW = make([][]pairPick, w)
	capacity := store.Cap()
	splitStyle := !cfg.FusedSelect && cfg.Scheme == nil
	for b := 0; b < w; b++ {
		// The pick buffers exist only for the split select/collide style;
		// they get the balanced-load bound (n/2 pairs split w ways), so a
		// pathologically imbalanced flow could grow one once, after which
		// it too is stable. The relative-speed spans hold one cell's pairs
		// at a time and grow (rarely) past the pre-size the same way.
		if splitStyle {
			e.picksW[b] = make([]pairPick, 0, capacity/(2*w)+64)
		}
		e.gW[b] = make([]float64, 1024)
	}
	e.selW = make([]time.Duration, w)
	e.colW = make([]time.Duration, w)
	e.colls = make([]int64, w)
	e.fnMoveBound = e.moveBoundShard
	if cfg.FusedSelect {
		e.fnSelCol = e.selColFusedShard
	} else {
		e.fnSelCol = e.selColSplitShard
	}
	e.fnScheme = e.schemeShard
	e.cellOfFn = dom.CellIndexer()
	e.swapFn = func(i, j int) { e.store.Swap(i, j) }
	if cfg.Regions {
		e.cellBounds = make([]int32, w+1)
		e.segBounds = make([]int32, w+1)
		e.planSeg = make([]int32, w+1)
		// Equal cell blocks until the first sort's counts allow a
		// particle-balanced split.
		step := (cfg.Cells + w - 1) / w
		for b := 0; b <= w; b++ {
			c := b * step
			if c > cfg.Cells {
				c = cfg.Cells
			}
			e.cellBounds[b] = int32(c)
		}
		e.fnSampleSpan = func(w, lo, hi int) {
			if lo < hi {
				e.sampleFn(lo, hi)
			}
		}
		e.sampleFor = func(n int, f func(lo, hi int)) {
			e.sampleFn = f
			e.pool.ForSpans(e.cellBounds, e.fnSampleSpan)
			e.sampleFn = nil
		}
	} else {
		e.sampleFor = pool.For
	}
	return e
}

// Epoch encodes (step, domain) into the single epoch word of
// rng.StreamAt — the one place the encoding lives, so no two phases can
// drift onto the same stream coordinates.
func (e *Engine[F]) Epoch(domain uint64) uint64 {
	return uint64(e.step)*e.cfg.Layout.NumDomains + domain
}

// PhaseStream returns the private counter-based stream for one lane (a
// cell or particle index) of one phase of the current step. Because the
// stream depends only on (seed, step, domain, lane), every lane draws the
// same randomness no matter which worker processes it.
func (e *Engine[F]) PhaseStream(domain uint64, lane int) rng.Stream {
	return rng.StreamAt(e.cfg.Seed, e.Epoch(domain), uint64(lane))
}

// Store exposes the live particle store. The double-buffer swap makes
// the pointer alternate between two buffers, so re-fetch it after every
// Step rather than holding it across steps.
func (e *Engine[F]) Store() *particle.Store[F] { return e.store }

// Pool returns the phase worker pool.
func (e *Engine[F]) Pool() *par.Pool { return e.pool }

// Workers returns the resolved worker count of the phase pool.
func (e *Engine[F]) Workers() int { return e.pool.Workers() }

// StepCount returns the number of completed time steps.
func (e *Engine[F]) StepCount() int { return e.step }

// Collisions returns the cumulative number of collisions performed.
func (e *Engine[F]) Collisions() int64 { return e.collisions }

// Rule returns the active selection rule.
func (e *Engine[F]) Rule() collide.Rule { return e.cfg.Rule }

// RestoreCounters resets the step and collision counters to a
// checkpointed value. The caller must also restore the store contents
// and its domain's serial state; the phase wall-times are diagnostics
// and deliberately not restored. The next Step re-sorts, so the sorter's
// cell structures need no restoration either.
func (e *Engine[F]) RestoreCounters(step int, collisions int64) {
	e.step = step
	e.collisions = collisions
	// Resync the metrics baseline: the restored total is not new work,
	// and a backward jump must not wrap the per-step counter delta.
	e.prevColl = collisions
	// The restored store's layout owes nothing to the current region
	// bounds; the next sort rebuilds them (equal-block fallback for one
	// pass — bit-identical, see haveBounds).
	e.haveBounds = false
}

// SortTile returns the resolved cell-block scatter window width.
func (e *Engine[F]) SortTile() int { return e.sorter.Tile() }

// Regions reports whether the spatially-blocked stepping mode is active.
func (e *Engine[F]) Regions() bool { return e.regions }

// CellCounts returns the per-cell particle counts of the latest sort.
func (e *Engine[F]) CellCounts() []int32 { return e.sorter.Counts() }

// CellStart returns the cell-major bucket boundaries of the latest sort:
// cell c's particles are store indices [CellStart()[c], CellStart()[c+1]).
func (e *Engine[F]) CellStart() []int32 { return e.sorter.CellStart() }

// PhaseTimes returns cumulative wall time per sub-step.
func (e *Engine[F]) PhaseTimes() map[string]time.Duration {
	out := make(map[string]time.Duration, numPhases)
	for p := Phase(0); p < numPhases; p++ {
		out[p.String()] = e.phaseTime[p]
	}
	return out
}

// SetStepObserver registers fn to be called at the end of every Step
// with the step index just completed, that step's per-phase wall times
// in nanoseconds (indexed by Phase), and the flow's particle count —
// the feed behind the flight recorder. fn runs on the stepping
// goroutine and must not allocate or block; nil unregisters. The
// observer reuses durations already booked through the now()/since()
// chokepoint, so it adds no clock reads and cannot move bits.
func (e *Engine[F]) SetStepObserver(fn func(step int, phaseNs [numPhases]int64, particles int)) {
	e.stepObs = fn
}

// Step advances the simulation one time step through the four sub-steps.
//
//dsmc:hotpath
func (e *Engine[F]) Step() {
	prev := e.phaseTime
	t0 := now()
	e.moveBoundaries()
	t1 := now()
	e.phaseTime[PhaseMove] += t1.Sub(t0)
	e.sortByCell()
	t2 := now()
	e.phaseTime[PhaseSort] += t2.Sub(t1)
	e.selectAndCollide()
	e.dom.PostStep()
	e.step++
	e.recordStep(prev)
}

// recordStep publishes the completed step to the metrics registry and
// the step observer: per-phase deltas against the pre-step snapshot of
// the cumulative phaseTime breakdown (no additional clock reads), the
// collision increment, and the particle count. All record calls are
// atomic and allocation-free (pinned by obs's and this package's
// AllocsPerRun tests).
//
//dsmc:hotpath
func (e *Engine[F]) recordStep(prev [numPhases]time.Duration) {
	var ns [numPhases]int64
	for p := range ns {
		ns[p] = int64(e.phaseTime[p] - prev[p])
		mPhase[p].Observe(float64(ns[p]) / 1e9)
	}
	n := e.store.Len()
	mSteps.Inc()
	mParticles.Set(float64(n))
	mCollisions.Add(uint64(e.collisions - e.prevColl))
	e.prevColl = e.collisions
	if e.stepObs != nil {
		e.stepObs(e.step-1, ns, n)
	}
}

// Run advances n steps.
func (e *Engine[F]) Run(n int) {
	for i := 0; i < n; i++ {
		e.Step()
	}
}

// SampleInto accumulates the current snapshot into acc, sharded over cell
// ranges on the engine's worker pool. Valid after a completed step (the
// cell-major layout of the latest sort must be current). The per-cell
// accumulation order follows the store order, so the sums are
// bit-identical for any worker count.
//
//dsmc:hotpath
func (e *Engine[F]) SampleInto(acc *sample.Accumulator) {
	sample.AddFlowCellMajor(acc, e.store, e.sorter.CellStart(), e.sampleFor)
}

// moveBoundaries performs the collisionless motion (the width-grouped
// advance kernel) fused with the domain's boundary conditions in a
// single sharded pass over the particle arrays, bracketed by the
// domain's serial hooks (plunger/piston advance before, exit removal and
// void refill after). The parallel pass never mutates the store's
// membership — domains record exits per worker and remove them in
// PostMove.
//
//dsmc:hotpath
func (e *Engine[F]) moveBoundaries() {
	e.dom.PreMove()
	if e.regions && e.haveBounds {
		// Owner-computes: each worker advances the particle segment its
		// cell region produced at the last sort — the columns it wrote
		// then and will histogram next. Segments are ascending contiguous
		// spans, so exits still arrive in ascending order per worker and
		// the domains' reverse-order removal walk is unchanged.
		e.pool.ForSpans(e.segBounds, e.fnMoveBound)
	} else {
		e.pool.ForIdx(e.store.Len(), e.fnMoveBound)
	}
	e.dom.PostMove()
}

// moveTile is the particle count the move pass advances before handing
// the same range to the domain's boundary sweep: small enough that the
// just-written position columns are still cache-resident when the
// boundary checks re-read them (four float64 columns of 1024 particles
// are 32 KiB), large enough to amortize the per-tile call.
const moveTile = 1024

//dsmc:hotpath
func (e *Engine[F]) moveBoundShard(w, lo, hi int) {
	st := e.store
	for tlo := lo; tlo < hi; tlo += moveTile {
		thi := tlo + moveTile
		if thi > hi {
			thi = hi
		}
		if st.Z != nil {
			kernel.Advance3(st.X[tlo:thi], st.Y[tlo:thi], st.Z[tlo:thi], st.U[tlo:thi], st.V[tlo:thi], st.W[tlo:thi])
		} else {
			kernel.Advance2(st.X[tlo:thi], st.Y[tlo:thi], st.U[tlo:thi], st.V[tlo:thi])
		}
		e.dom.Boundary(st, w, tlo, thi)
	}
}

// sortByCell makes the store cell-major: every particle's cell index is
// computed, the stable scatter writes the full payload into the shadow
// store at its cell-major position, the buffers are swapped — sort and
// physical reorder fused into one sharded pass — and the records inside
// each cell span are shuffled in place (the role of the paper's sort with
// the scaled-and-dithered key, candidates re-randomised every step).
// After this, cell c's particles are the contiguous index range
// cellStart[c]:cellStart[c+1] of the arrays.
//
//dsmc:hotpath
func (e *Engine[F]) sortByCell() {
	st := e.store
	if !e.regions {
		e.sorter.Plan(st.Len(), st.Cell, e.cellOfFn)
		e.sorter.ScatterStore(st, e.shadow)
		e.store, e.shadow = e.shadow, e.store
		e.sorter.Shuffle(e.cfg.Seed, e.Epoch(e.cfg.Layout.Sort), e.swapFn)
		return
	}
	// Owner-computes sort. The histogram re-reads each region's own
	// segment (clamped: PostMove may have removed exits from the global
	// end or appended refills, both of which only resize the last span);
	// the regions are then rebalanced by particle count, and the region
	// scatter drains every region's buckets in (source-region,
	// source-index) order — the migrant exchange. Same stable order as
	// ScatterStore, so the modes are bit-identical.
	n := st.Len()
	if e.haveBounds {
		w := e.pool.Workers()
		for r := 0; r <= w; r++ {
			v := e.segBounds[r]
			if int(v) > n {
				v = int32(n)
			}
			e.planSeg[r] = v
		}
		e.planSeg[w] = int32(n)
		e.sorter.PlanSpans(e.planSeg, st.Cell, e.cellOfFn)
	} else {
		e.sorter.Plan(n, st.Cell, e.cellOfFn)
	}
	e.rebalanceRegions(n)
	e.sorter.ScatterStoreRegions(st, e.shadow, e.cellBounds)
	e.store, e.shadow = e.shadow, e.store
	e.sorter.ShuffleSpans(e.cfg.Seed, e.Epoch(e.cfg.Layout.Sort), e.swapFn, e.cellBounds)
	cellStart := e.sorter.CellStart()
	for r := range e.segBounds {
		e.segBounds[r] = cellStart[e.cellBounds[r]]
	}
	e.haveBounds = true
}

// rebalanceRegions re-cuts the per-worker cell regions so each owns
// roughly n/Workers() particles of the just-planned layout (a greedy
// walk over the bucket boundaries). Runs serially between the plan and
// the scatter; the bounds steer scheduling and cache traffic only, so
// rebalancing every step costs no determinism.
//
//dsmc:hotpath
func (e *Engine[F]) rebalanceRegions(n int) {
	cellStart := e.sorter.CellStart()
	cells := e.cfg.Cells
	w := e.pool.Workers()
	e.cellBounds[0] = 0
	c := 0
	for r := 1; r < w; r++ {
		target := int32(r * n / w)
		for c < cells && cellStart[c] < target {
			c++
		}
		e.cellBounds[r] = int32(c)
	}
	e.cellBounds[w] = int32(cells)
}

// smallCellPairs is the span below which the select sweep computes its
// relative speeds inline: a kernel call per cell only pays for itself
// once a cell holds at least a lane-group of pairs (the same
// dispatch-overhead cutoff pattern par uses for serial loops). The
// arithmetic is identical on both paths, so the cutoff moves no bits.
const smallCellPairs = kernel.Width

// relSpeeds fills g[:npairs] with the relative speeds of the cell span
// starting at lo: inline for small cells, the width-grouped kernel for
// dense ones.
//
//dsmc:hotpath
func relSpeeds[F kernel.Float](st *particle.Store[F], lo, npairs int, g []float64) {
	if npairs >= smallCellPairs {
		kernel.PairRelSpeeds(st.U, st.V, st.W, lo, npairs, g)
		return
	}
	for k := 0; k < npairs; k++ {
		a := lo + 2*k
		du := st.U[a] - st.U[a+1]
		dv := st.V[a] - st.V[a+1]
		dw := st.W[a] - st.W[a+1]
		g[k] = math.Sqrt(float64(du*du + dv*dv + dw*dw))
	}
}

// vol returns the gas volume of cell c (unit when no volume table is
// configured).
func (e *Engine[F]) vol(c int) float64 {
	if e.cfg.Vols == nil {
		return 1
	}
	return e.cfg.Vols[c]
}

// selectAndCollide pairs adjacent candidates within each cell-major span,
// applies the selection rule, and collides accepted pairs. The work is
// sharded over cell ranges: cells own disjoint contiguous index ranges
// and each draws from its own streams, so any worker count produces
// identical collisions.
//
// forCells dispatches a cell-range shard body over the active cell
// decomposition: the particle-balanced owner regions in spatially-
// blocked mode, the pool's equal blocks otherwise. Cells draw from
// per-cell streams and own disjoint store ranges, so the choice moves
// no bits.
//
//dsmc:hotpath
func (e *Engine[F]) forCells(f func(w, lo, hi int)) {
	if e.regions && e.haveBounds {
		e.pool.ForSpans(e.cellBounds, f)
	} else {
		e.pool.ForIdx(e.cfg.Cells, f)
	}
}

//dsmc:hotpath
func (e *Engine[F]) selectAndCollide() {
	nc := e.cfg.Cells
	if e.cfg.Scheme != nil {
		// Pluggable scheme path (baselines): gather cells, delegate.
		t0 := now()
		e.forCells(e.fnScheme)
		for _, c := range e.colls {
			e.collisions += c
		}
		e.phaseTime[PhaseCollide] += since(t0)
		return
	}
	if e.cfg.FusedSelect {
		// Single-pass style: selection and collision interleave on one
		// stream, so the timing cannot be split — book it all as collide.
		t0 := now()
		e.forCells(e.fnSelCol)
		for _, c := range e.colls {
			e.collisions += c
		}
		e.phaseTime[PhaseCollide] += since(t0)
		return
	}
	// Split style: each shard runs selection over all its cells first and
	// then collides the accepted pairs, so the paper's select/collide
	// breakdown costs three clock reads per shard instead of two per
	// non-empty cell.
	e.forCells(e.fnSelCol)
	// A concurrent section's wall time is its slowest shard; if the pool
	// fell back to serial dispatch the shards ran back-to-back and their
	// times add instead. Per-worker times are written before the pool's
	// barrier and read after it, so the breakdown stays race-free.
	e.phaseTime[PhaseSelect] += shardWall(e.pool.Parallel(nc), e.selW)
	e.phaseTime[PhaseCollide] += shardWall(e.pool.Parallel(nc), e.colW)
	for _, c := range e.colls {
		e.collisions += c
	}
}

// selColSplitShard is one worker's cell range of the split select+collide
// style. Selection streams the velocity columns of the shard's contiguous
// particle range once — the relative speeds computed by the width-grouped
// kernel a block of pairs at a time — recording accepted pairs; the
// collide sub-loop then revisits only the accepted records. Selection and
// collision draw from distinct per-cell stream domains so the two
// sub-loops stay deterministic for any worker count.
//
//dsmc:hotpath
func (e *Engine[F]) selColSplitShard(w, clo, chi int) {
	st := e.store
	cellStart := e.sorter.CellStart()
	zvib := e.cfg.ZVib > 0
	t0 := now()
	picks := e.picksW[w][:0]
	g := e.gW[w]
	for c := clo; c < chi; c++ {
		lo, hi := int(cellStart[c]), int(cellStart[c+1])
		cnt := hi - lo
		if cnt < 2 {
			continue
		}
		r := e.PhaseStream(e.cfg.Layout.Select, c)
		vol := e.vol(c)
		npairs := cnt / 2
		if len(g) < npairs {
			//dsmclint:allow hotpath-alloc amortized grow: the span re-makes only when a cell outgrows it once, then is stable (AllocsPerRun pins the steady state)
			g = make([]float64, npairs+npairs/2)
			e.gW[w] = g
		}
		relSpeeds(st, lo, npairs, g)
		for k := 0; k < npairs; k++ {
			p := e.cfg.Rule.Prob(cnt, vol, g[k])
			//dsmclint:allow float-eq exact saturation sentinel: Prob clamps to 1, and == skips the draw without shifting the stream
			if p == 1 || r.Float64() < p {
				picks = append(picks, pairPick{int32(lo + 2*k), int32(c)})
			}
		}
	}
	t1 := now()
	var r rng.Stream
	cur := int32(-1)
	var coll int64
	if zvib {
		for _, pk := range picks {
			if pk.c != cur {
				cur = pk.c
				r = e.PhaseStream(e.cfg.Layout.Collide, int(cur))
			}
			e.collideVibPair(st, int(pk.a), int(pk.a)+1, &r)
		}
	} else {
		for _, pk := range picks {
			if pk.c != cur {
				cur = pk.c
				r = e.PhaseStream(e.cfg.Layout.Collide, int(cur))
			}
			ia := int(pk.a)
			kernel.ExchangePair(st.U, st.V, st.W, st.R1, st.R2, ia, ia+1,
				rng.RandomPerm5(e.table, &r), r.Uint32())
		}
	}
	coll = int64(len(picks))
	e.picksW[w] = picks
	e.selW[w], e.colW[w] = t1.Sub(t0), since(t1)
	e.colls[w] = coll
}

// selColFusedShard is one worker's cell range of the fused style:
// selection and collision interleave pair by pair on the cell's single
// collide stream (the 3D backend's historical draw order). The relative
// speeds still come from the width-grouped kernel a block at a time —
// the blocking consumes no randomness, so the draw sequence is
// untouched.
//
//dsmc:hotpath
func (e *Engine[F]) selColFusedShard(w, clo, chi int) {
	st := e.store
	cellStart := e.sorter.CellStart()
	zvib := e.cfg.ZVib > 0
	var coll int64
	g := e.gW[w]
	for c := clo; c < chi; c++ {
		lo, hi := int(cellStart[c]), int(cellStart[c+1])
		cnt := hi - lo
		if cnt < 2 {
			continue
		}
		r := e.PhaseStream(e.cfg.Layout.Collide, c)
		vol := e.vol(c)
		npairs := cnt / 2
		if len(g) < npairs {
			//dsmclint:allow hotpath-alloc amortized grow: the span re-makes only when a cell outgrows it once, then is stable (AllocsPerRun pins the steady state)
			g = make([]float64, npairs+npairs/2)
			e.gW[w] = g
		}
		relSpeeds(st, lo, npairs, g)
		for k := 0; k < npairs; k++ {
			p := e.cfg.Rule.Prob(cnt, vol, g[k])
			//dsmclint:allow float-eq exact saturation sentinel: Prob clamps to 1, and == skips the draw without shifting the stream
			if p == 1 || r.Float64() < p {
				a := lo + 2*k
				if zvib {
					e.collideVibPair(st, a, a+1, &r)
				} else {
					kernel.ExchangePair(st.U, st.V, st.W, st.R1, st.R2, a, a+1,
						rng.RandomPerm5(e.table, &r), r.Uint32())
				}
				coll++
			}
		}
	}
	e.colls[w] = coll
}

// collideVibPair draws the permutation and signs from r, performs the
// exchange on pair (ia, ib), and relaxes the pair against its
// vibrational reservoirs.
//
//dsmc:hotpath
func (e *Engine[F]) collideVibPair(st *particle.Store[F], ia, ib int, r *rng.Stream) {
	perm := rng.RandomPerm5(e.table, r)
	va, vb := st.Vel(ia), st.Vel(ib)
	collide.Collide(&va, &vb, perm, r.Uint32())
	e.vibExchange(st, &va, &vb, ia, ib, r)
	st.SetVel(ia, va)
	st.SetVel(ib, vb)
}

// schemeShard is one worker's cell range of the pluggable-scheme path:
// each cell span is copied contiguously into the worker's scratch buffer,
// handed to the scheme, and written back.
//
//dsmc:hotpath
func (e *Engine[F]) schemeShard(w, clo, chi int) {
	st := e.store
	cellStart := e.sorter.CellStart()
	var coll int64
	for c := clo; c < chi; c++ {
		lo, hi := int(cellStart[c]), int(cellStart[c+1])
		if hi-lo < 2 {
			continue
		}
		if cap(e.scratchW[w]) < hi-lo {
			//dsmclint:allow hotpath-alloc amortized grow: scheme scratch re-makes only when a cell outgrows it once, then is stable
			e.scratchW[w] = make([]collide.State5, hi-lo)
		}
		cellParts := e.scratchW[w][:hi-lo]
		for k := range cellParts {
			cellParts[k] = st.Vel(lo + k)
		}
		r := e.PhaseStream(e.cfg.Layout.Collide, c)
		coll += int64(e.cfg.Scheme.CollideCell(cellParts, e.vol(c), e.cfg.Rule, &r))
		for k := range cellParts {
			st.SetVel(lo+k, cellParts[k])
		}
	}
	e.colls[w] = coll
}

func shardWall(concurrent bool, ds []time.Duration) time.Duration {
	var m, sum time.Duration
	for _, d := range ds {
		sum += d
		if d > m {
			m = d
		}
	}
	if concurrent {
		return m
	}
	return sum
}

// vibExchange applies the continuous vibrational relaxation to a just-
// collided pair: the pair's relative translational energy and the two
// vibrational reservoirs are redistributed (collide.VibExchange), and the
// relative translational velocity is rescaled so total energy is
// conserved exactly. The pair mean is untouched, so momentum is
// conserved too. The exchange runs in float64 (the reservoirs round once
// on store), so the float64 instantiation is bit-exact.
//
//dsmc:hotpath
func (e *Engine[F]) vibExchange(st *particle.Store[F], va, vb *collide.State5, ia, ib int, r *rng.Stream) {
	du := va[0] - vb[0]
	dv := va[1] - vb[1]
	dw := va[2] - vb[2]
	eTr := (du*du + dv*dv + dw*dw) / 2
	if eTr <= 0 {
		return
	}
	eTrNew, ea, eb := collide.VibExchange(eTr, float64(st.Evib[ia]), float64(st.Evib[ib]), e.cfg.ZVib, r)
	st.Evib[ia], st.Evib[ib] = F(ea), F(eb)
	//dsmclint:allow float-eq exact no-op sentinel: VibExchange returns eTr unchanged (same bits) when no exchange happened
	if eTrNew == eTr {
		return
	}
	scale := math.Sqrt(eTrNew / eTr)
	for k := 0; k < 3; k++ {
		mean := (va[k] + vb[k]) / 2
		half := (va[k] - vb[k]) / 2 * scale
		va[k] = mean + half
		vb[k] = mean - half
	}
}

// TotalVibEnergy returns the summed vibrational energy of the flow.
func (e *Engine[F]) TotalVibEnergy() float64 {
	var s float64
	for i := 0; i < e.store.Len(); i++ {
		s += float64(e.store.Evib[i])
	}
	return s
}

// TotalEnergy returns the flow's total velocity-square sum (diagnostic).
func (e *Engine[F]) TotalEnergy() float64 { return e.store.TotalEnergy() }
