package engine

import (
	"math"
	"testing"

	"dsmc/internal/collide"
	"dsmc/internal/kernel"
	"dsmc/internal/par"
	"dsmc/internal/particle"
	"dsmc/internal/rng"
)

// stubDomain is a minimal Domain for unit tests that never step: one
// cell, no boundaries.
type stubDomain[F kernel.Float] struct{}

func (stubDomain[F]) CellIndexer() func(i int) int32                { return func(int) int32 { return 0 } }
func (stubDomain[F]) PreMove()                                      {}
func (stubDomain[F]) Boundary(st *particle.Store[F], w, lo, hi int) {}
func (stubDomain[F]) PostMove()                                     {}
func (stubDomain[F]) PostStep()                                     {}

// TestVibExchangeConservesPairEnergy verifies the rescaling path: a
// forced exchange pair conserves translational+vibrational energy to
// round-off.
func TestVibExchangeConservesPairEnergy(t *testing.T) {
	pool := par.New(1)
	store := particle.NewStore[float64](4)
	shadow := particle.NewStore[float64](4)
	e := New(Config{
		Cells:  1,
		Seed:   3,
		Layout: StreamLayout{NumDomains: 4, Sort: 0, Select: 1, Collide: 2, Wall: 3},
		ZVib:   1, // exchange on every collision
	}, stubDomain[float64]{}, pool, store, shadow)
	r := rng.NewStream(9)
	for i := 0; i < 2; i++ {
		store.Append(0.5, 0.5, collide.State5{
			r.Gaussian(0, 1), r.Gaussian(0, 1), r.Gaussian(0, 1),
			r.Gaussian(0, 1), r.Gaussian(0, 1),
		})
		store.Evib[i] = 0.3 * float64(i+1)
	}
	va, vb := store.Vel(0), store.Vel(1)
	pairE := func(a, b collide.State5, ea, eb float64) float64 {
		var sum float64
		for k := 0; k < 5; k++ {
			sum += a[k]*a[k] + b[k]*b[k]
		}
		return sum + ea + eb // Evib is stored in the same Σv² units
	}
	cr := e.PhaseStream(e.cfg.Layout.Collide, 0)
	before := pairE(va, vb, store.Evib[0], store.Evib[1])
	e.vibExchange(store, &va, &vb, 0, 1, &cr)
	after := pairE(va, vb, store.Evib[0], store.Evib[1])
	if math.Abs(after-before) > 1e-9*before {
		t.Errorf("pair energy drift: %v -> %v", before, after)
	}
}

// TestEpochEncoding: the epoch word must advance by NumDomains per step
// and keep the domains disjoint — the invariant that keeps every phase
// on its own stream coordinates.
func TestEpochEncoding(t *testing.T) {
	pool := par.New(1)
	e := New(Config{
		Cells:  1,
		Seed:   1,
		Layout: StreamLayout{NumDomains: 4, Sort: 0, Select: 1, Collide: 2, Wall: 3},
	}, stubDomain[float64]{}, pool, particle.NewStore[float64](1), particle.NewStore[float64](1))
	seen := map[uint64]bool{}
	for step := 0; step < 3; step++ {
		e.step = step
		for _, d := range []uint64{0, 1, 2, 3} {
			ep := e.Epoch(d)
			if seen[ep] {
				t.Fatalf("epoch %d reused (step %d domain %d)", ep, step, d)
			}
			seen[ep] = true
		}
	}
}

// TestPhaseNames pins the timing-breakdown keys the public API reports.
func TestPhaseNames(t *testing.T) {
	want := []string{"move+boundary", "sort", "select", "collide"}
	for p := Phase(0); p < numPhases; p++ {
		if p.String() != want[p] {
			t.Errorf("phase %d named %q, want %q", p, p.String(), want[p])
		}
	}
}
