package engine

import "time"

// now and since are the engine's only wall-clock reads. They feed the
// per-phase timing breakdown (PhaseTimes, the paper's table of move/
// sort/select/collide cost) and nothing else: no particle state, no RNG
// stream, and no sampled quantity ever depends on them, which is why
// the two call sites below carry the determinism waivers for the whole
// package. Any new clock read in the engine must either route through
// here or justify its own waiver — the dsmclint determinism rule flags
// it otherwise.

//dsmclint:allow determinism diagnostics-only clock chokepoint; phase timings never feed physics (hoisted per-shard in PR 2)
func now() time.Time { return time.Now() }

//dsmclint:allow determinism diagnostics-only clock chokepoint; phase timings never feed physics (hoisted per-shard in PR 2)
func since(t time.Time) time.Duration { return time.Since(t) }
