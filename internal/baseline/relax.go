package baseline

import (
	"dsmc/internal/collide"
	"dsmc/internal/rng"
)

// Relax drives a homogeneous (single-cell, space-free) relaxation with the
// given scheme: each step the particle order is shuffled (providing the
// random pairing the paper's sort provides in the full simulation) and the
// scheme collides the whole box as one cell of the given volume. Returns
// the total number of collision events.
func Relax(scheme Scheme, parts []collide.State5, vol float64, rule collide.Rule, steps int, r *rng.Stream) int {
	total := 0
	for s := 0; s < steps; s++ {
		for i := len(parts) - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			parts[i], parts[j] = parts[j], parts[i]
		}
		total += scheme.CollideCell(parts, vol, rule, r)
	}
	return total
}

// Moments summarises an ensemble: per-component energies, total momentum,
// total energy, and pooled kurtosis of all five components.
type Moments struct {
	CompEnergy [5]float64
	Momentum   [3]float64
	Energy     float64
	Kurtosis   float64
}

// MeasureMoments computes ensemble diagnostics.
func MeasureMoments(parts []collide.State5) Moments {
	var m Moments
	var s2, s4 float64
	n := float64(len(parts) * 5)
	if n == 0 {
		return m
	}
	// Pooled central moments use the per-component means.
	var mean [5]float64
	for i := range parts {
		for k := 0; k < 5; k++ {
			mean[k] += parts[i][k]
		}
	}
	for k := 0; k < 5; k++ {
		mean[k] /= float64(len(parts))
	}
	for i := range parts {
		for k := 0; k < 5; k++ {
			m.CompEnergy[k] += parts[i][k] * parts[i][k]
			d := parts[i][k] - mean[k]
			s2 += d * d
			s4 += d * d * d * d
		}
		for k := 0; k < 3; k++ {
			m.Momentum[k] += parts[i][k]
		}
	}
	for k := 0; k < 5; k++ {
		m.Energy += m.CompEnergy[k]
	}
	v := s2 / n
	if v > 0 {
		m.Kurtosis = (s4 / n) / (v * v)
	}
	return m
}

// EquilibriumEnsemble builds n particles with Gaussian components of the
// given standard deviation (an equilibrated gas at rest).
func EquilibriumEnsemble(n int, sigma float64, r *rng.Stream) []collide.State5 {
	parts := make([]collide.State5, n)
	for i := range parts {
		for k := 0; k < 5; k++ {
			parts[i][k] = r.Gaussian(0, sigma)
		}
	}
	return parts
}

// RectangularEnsemble builds n particles with rectangular (uniform)
// velocity components of the given standard deviation — the reservoir's
// injection state.
func RectangularEnsemble(n int, sigma float64, r *rng.Stream) []collide.State5 {
	parts := make([]collide.State5, n)
	for i := range parts {
		for k := 0; k < 5; k++ {
			parts[i][k] = r.Rect(sigma)
		}
	}
	return parts
}

// AnisotropicEnsemble builds n particles with all thermal energy in the
// x-component — the classic relaxation-to-isotropy initial condition.
func AnisotropicEnsemble(n int, sigma float64, r *rng.Stream) []collide.State5 {
	parts := make([]collide.State5, n)
	for i := range parts {
		parts[i][0] = r.Gaussian(0, sigma)
	}
	return parts
}
