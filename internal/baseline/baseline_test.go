package baseline

import (
	"math"
	"testing"

	"dsmc/internal/collide"
	"dsmc/internal/molec"
	"dsmc/internal/rng"
)

func maxwellRule(pInf, nInf float64) collide.Rule {
	return collide.Rule{Model: molec.Maxwell(), PInf: pInf, NInf: nInf, GInf: 1}
}

func TestBMExpectedCollisionCount(t *testing.T) {
	// At freestream density, a cell of N particles performs on average
	// (N/2)·P∞ collisions per step.
	r := rng.NewStream(1)
	scheme := NewBM()
	rule := maxwellRule(0.3, 100)
	const n = 100
	const steps = 3000
	total := 0
	for s := 0; s < steps; s++ {
		parts := EquilibriumEnsemble(n, 0.2, &r)
		total += scheme.CollideCell(parts, 1, rule, &r)
	}
	got := float64(total) / steps
	want := float64(n) / 2 * 0.3
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("mean collisions per step = %v, want %v", got, want)
	}
}

func TestBMNearContinuumCollidesHalf(t *testing.T) {
	// Paper: with zero mean free path all candidates collide and the number
	// of collisions in a cell equals half the number of particles.
	r := rng.NewStream(2)
	scheme := NewBM()
	rule := collide.Rule{Model: molec.Maxwell(), CollideAll: true}
	parts := EquilibriumEnsemble(64, 0.2, &r)
	if got := scheme.CollideCell(parts, 1, rule, &r); got != 32 {
		t.Errorf("near-continuum collisions = %d, want 32", got)
	}
	// Odd population: the unpaired particle sits out.
	parts = EquilibriumEnsemble(7, 0.2, &r)
	if got := scheme.CollideCell(parts, 1, rule, &r); got != 3 {
		t.Errorf("odd-cell collisions = %d, want 3", got)
	}
}

func TestBMConservesCellExactly(t *testing.T) {
	r := rng.NewStream(3)
	scheme := NewBM()
	rule := maxwellRule(0.5, 10)
	parts := EquilibriumEnsemble(50, 0.3, &r)
	before := MeasureMoments(parts)
	scheme.CollideCell(parts, 1, rule, &r)
	after := MeasureMoments(parts)
	for k := 0; k < 3; k++ {
		if math.Abs(after.Momentum[k]-before.Momentum[k]) > 1e-10 {
			t.Errorf("momentum[%d] drift", k)
		}
	}
	if math.Abs(after.Energy-before.Energy) > 1e-9*before.Energy {
		t.Errorf("energy drift: %v -> %v", before.Energy, after.Energy)
	}
}

func TestBirdTCExpectedCollisionCount(t *testing.T) {
	r := rng.NewStream(4)
	scheme := NewBirdTC()
	rule := maxwellRule(0.3, 100)
	const n = 100
	const steps = 3000
	total := 0
	for s := 0; s < steps; s++ {
		parts := EquilibriumEnsemble(n, 0.2, &r)
		total += scheme.CollideCell(parts, 1, rule, &r)
	}
	got := float64(total) / steps
	want := float64(n) / 2 * 0.3
	if math.Abs(got-want)/want > 0.1 {
		t.Errorf("Bird TC mean collisions per step = %v, want %v", got, want)
	}
}

func TestBirdTCConserves(t *testing.T) {
	r := rng.NewStream(5)
	scheme := NewBirdTC()
	rule := maxwellRule(0.4, 50)
	parts := EquilibriumEnsemble(50, 0.3, &r)
	before := MeasureMoments(parts)
	scheme.CollideCell(parts, 1, rule, &r)
	after := MeasureMoments(parts)
	if math.Abs(after.Energy-before.Energy) > 1e-9*before.Energy {
		t.Errorf("Bird TC must conserve energy exactly per collision")
	}
	for k := 0; k < 3; k++ {
		if math.Abs(after.Momentum[k]-before.Momentum[k]) > 1e-10 {
			t.Errorf("momentum[%d] drift", k)
		}
	}
}

func TestBirdTCDegenerateCells(t *testing.T) {
	r := rng.NewStream(6)
	scheme := NewBirdTC()
	rule := maxwellRule(0.3, 100)
	if scheme.CollideCell(nil, 1, rule, &r) != 0 {
		t.Errorf("empty cell")
	}
	one := EquilibriumEnsemble(1, 0.2, &r)
	if scheme.CollideCell(one, 1, rule, &r) != 0 {
		t.Errorf("single-particle cell")
	}
	two := EquilibriumEnsemble(2, 0.2, &r)
	if scheme.CollideCell(two, 0, rule, &r) != 0 {
		t.Errorf("zero-volume cell")
	}
}

// TestNanbuConservesInMean: the paper's criticism — Nanbu's scheme (and
// Ploss's) conserve only the mean energy and momentum of a cell. Check
// that single-step energy is NOT exactly conserved but the ensemble mean
// drift is small.
func TestNanbuConservesInMean(t *testing.T) {
	r := rng.NewStream(7)
	scheme := Nanbu{}
	rule := maxwellRule(0.3, 50)
	var drift, absDrift float64
	const trials = 400
	exact := 0
	for trial := 0; trial < trials; trial++ {
		parts := EquilibriumEnsemble(50, 0.3, &r)
		before := MeasureMoments(parts)
		scheme.CollideCell(parts, 1, rule, &r)
		after := MeasureMoments(parts)
		d := after.Energy - before.Energy
		drift += d
		absDrift += math.Abs(d)
		if math.Abs(d) < 1e-12 {
			exact++
		}
	}
	if exact == trials {
		t.Fatalf("Nanbu conserved energy exactly in every trial; scheme not updating")
	}
	meanDrift := drift / trials
	meanAbs := absDrift / trials
	if meanAbs == 0 {
		t.Fatalf("no energy exchange at all")
	}
	if math.Abs(meanDrift) > 0.2*meanAbs {
		t.Errorf("mean drift %v should be small relative to per-step fluctuation %v", meanDrift, meanAbs)
	}
}

func TestPlossMatchesBMCollisionRate(t *testing.T) {
	r := rng.NewStream(8)
	rule := maxwellRule(0.3, 100)
	const n = 100
	const steps = 2000
	total := 0
	for s := 0; s < steps; s++ {
		parts := EquilibriumEnsemble(n, 0.2, &r)
		total += Ploss{}.CollideCell(parts, 1, rule, &r)
	}
	got := float64(total) / steps
	// Ploss updates single particles; its event count corresponds to
	// updated particles, comparable to 2× the pair count: N·P.
	want := float64(n) * 0.3
	if math.Abs(got-want)/want > 0.1 {
		t.Errorf("Ploss updates per step = %v, want %v", got, want)
	}
}

// TestAllSchemesRelaxToIsotropy: every scheme must drive an anisotropic
// ensemble toward equipartition of the three translational components.
func TestAllSchemesRelaxToIsotropy(t *testing.T) {
	schemes := []Scheme{NewBM(), NewBirdTC(), Nanbu{}, Ploss{}}
	for _, scheme := range schemes {
		r := rng.NewStream(9)
		rule := maxwellRule(0.3, 400)
		parts := AnisotropicEnsemble(400, 0.3, &r)
		Relax(scheme, parts, 1, rule, 120, &r)
		m := MeasureMoments(parts)
		trans := (m.CompEnergy[0] + m.CompEnergy[1] + m.CompEnergy[2]) / 3
		if trans <= 0 {
			t.Fatalf("%s: degenerate relaxation", scheme.Name())
		}
		for k := 0; k < 3; k++ {
			if math.Abs(m.CompEnergy[k]-trans)/trans > 0.25 {
				t.Errorf("%s: component %d energy %v vs mean %v — not isotropised",
					scheme.Name(), k, m.CompEnergy[k], trans)
			}
		}
	}
}

// TestBMRelaxesKurtosis: rectangular → Gaussian under the paper's scheme.
func TestBMRelaxesKurtosis(t *testing.T) {
	r := rng.NewStream(10)
	rule := collide.Rule{Model: molec.Maxwell(), CollideAll: true}
	parts := RectangularEnsemble(20000, 0.25, &r)
	if k := MeasureMoments(parts).Kurtosis; math.Abs(k-1.8) > 0.05 {
		t.Fatalf("rectangular kurtosis = %v", k)
	}
	Relax(NewBM(), parts, 1, rule, 10, &r)
	if k := MeasureMoments(parts).Kurtosis; math.Abs(k-3.0) > 0.1 {
		t.Errorf("relaxed kurtosis = %v, want 3", k)
	}
}

func TestSchemeNames(t *testing.T) {
	if NewBM().Name() == "" || NewBirdTC().Name() == "" ||
		(Nanbu{}).Name() == "" || (Ploss{}).Name() == "" {
		t.Errorf("schemes must be named")
	}
}

func TestEnsembleBuilders(t *testing.T) {
	r := rng.NewStream(11)
	eq := EquilibriumEnsemble(1000, 0.5, &r)
	m := MeasureMoments(eq)
	perComp := m.Energy / 5000
	if math.Abs(perComp-0.25) > 0.02 {
		t.Errorf("equilibrium component energy %v, want 0.25", perComp)
	}
	an := AnisotropicEnsemble(1000, 0.5, &r)
	ma := MeasureMoments(an)
	if ma.CompEnergy[1] != 0 || ma.CompEnergy[4] != 0 {
		t.Errorf("anisotropic ensemble must be cold off-axis")
	}
}
