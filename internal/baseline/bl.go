package baseline

import (
	"dsmc/internal/collide"
	"dsmc/internal/rng"
)

// BL is a Borgnakke–Larsen variant of the paper's scheme: candidate
// selection is identical (even/odd pairing, the McDonald–Baganoff
// probability), but accepted pairs exchange translational and rotational
// energy through the Borgnakke–Larsen redistribution with rotational
// collision number ZRot instead of the 5-component permutation. This is
// the molecular-model generalisation pathway the paper's future-work
// section points at.
type BL struct {
	// ZRot is the rotational collision number; 1 exchanges on every
	// collision, larger values relax rotation more slowly.
	ZRot float64
}

// Name implements Scheme.
func (b BL) Name() string { return "borgnakke-larsen" }

// CollideCell implements Scheme.
func (b BL) CollideCell(parts []collide.State5, vol float64, rule collide.Rule, r *rng.Stream) int {
	count := len(parts)
	z := b.ZRot
	if z < 1 {
		z = 1
	}
	collisions := 0
	for i := 0; i+1 < count; i += 2 {
		g := collide.TransRelSpeed(&parts[i], &parts[i+1])
		p := rule.Prob(count, vol, g)
		//dsmclint:allow float-eq exact saturation sentinel: Prob clamps to 1, and == skips the draw without shifting the stream
		if p == 1 || r.Float64() < p {
			collide.CollideBL(&parts[i], &parts[i+1], z, r)
			collisions++
		}
	}
	return collisions
}

// RelaxFixedPairing is the ablation of the paper's re-randomisation: the
// particle order is NOT reshuffled between steps, so the same partners
// collide repeatedly — the correlated-velocity failure mode the paper's
// scaled-and-dithered sort key exists to prevent. Returns the collision
// count; compare the resulting distribution against Relax.
func RelaxFixedPairing(scheme Scheme, parts []collide.State5, vol float64, rule collide.Rule, steps int, r *rng.Stream) int {
	total := 0
	for s := 0; s < steps; s++ {
		total += scheme.CollideCell(parts, vol, rule, r)
	}
	return total
}
