// Package baseline implements the collision-partner selection schemes the
// paper discusses and compares against:
//
//   - the McDonald–Baganoff pair-probability scheme (the paper's method,
//     parallelizable at the particle level, conserving energy and momentum
//     in every collision);
//   - Bird's time-counter method (cell-level, per-cell asynchronous time);
//   - Nanbu's scheme (O(N²), unconditional collision probability per
//     particle, conserving energy and momentum only in the mean);
//   - Ploss's O(N) reformulation of Nanbu's scheme.
//
// All schemes operate on one cell's worth of particle velocity states and
// report how many collision events they performed, so relaxation
// behaviour and computational scaling can be compared directly.
package baseline

import (
	"math"

	"dsmc/internal/collide"
	"dsmc/internal/rng"
)

// Scheme selects and performs collisions within one cell for one step.
type Scheme interface {
	Name() string
	// CollideCell updates parts in place; vol is the (fractional) cell
	// volume and rule the selection rule. Returns the number of collision
	// events performed.
	CollideCell(parts []collide.State5, vol float64, rule collide.Rule, r *rng.Stream) int
}

// BM is the McDonald–Baganoff scheme: the particles (already in random
// order within the cell) are paired even/odd, a collision probability is
// computed per candidate pair from the selection rule, and accepted pairs
// collide via the 5-component permutation algorithm.
type BM struct {
	Table []rng.Perm5
}

// NewBM returns the paper's scheme.
func NewBM() *BM { return &BM{Table: rng.Perm5Table()} }

// Name implements Scheme.
func (b *BM) Name() string { return "mcdonald-baganoff" }

// CollideCell implements Scheme.
func (b *BM) CollideCell(parts []collide.State5, vol float64, rule collide.Rule, r *rng.Stream) int {
	count := len(parts)
	collisions := 0
	for i := 0; i+1 < count; i += 2 {
		g := collide.TransRelSpeed(&parts[i], &parts[i+1])
		p := rule.Prob(count, vol, g)
		//dsmclint:allow float-eq exact saturation sentinel: Prob clamps to 1, and == skips the draw without shifting the stream
		if p == 1 || r.Float64() < p {
			perm := rng.RandomPerm5(b.Table, r)
			collide.Collide(&parts[i], &parts[i+1], perm, r.Uint32())
			collisions++
		}
	}
	return collisions
}

// BirdTC is Bird's time-counter method: pairs of molecules within the
// cell are randomly chosen and collided until the asynchronous cell time
// exceeds the global simulation time (one step here). As the paper notes,
// it parallelizes only at the cell level and is strongly influenced by
// statistical fluctuations in the cell population.
type BirdTC struct {
	Table []rng.Perm5
}

// NewBirdTC returns Bird's scheme.
func NewBirdTC() *BirdTC { return &BirdTC{Table: rng.Perm5Table()} }

// Name implements Scheme.
func (b *BirdTC) Name() string { return "bird-time-counter" }

// CollideCell implements Scheme.
func (b *BirdTC) CollideCell(parts []collide.State5, vol float64, rule collide.Rule, r *rng.Stream) int {
	n := len(parts)
	if n < 2 || vol <= 0 {
		return 0
	}
	collisions := 0
	var cellTime float64
	// Pair collision rate in rule units: a pair with relative speed g
	// collides at rate (P∞/(N∞·V))·(g/g∞)^GExp per step; after each
	// collision the cell time advances by 2/(N·n·σ·c̄) — here expressed
	// through the same normalisation so that the expected number of
	// collisions matches (N/2)·P.
	for cellTime < 1 {
		i := r.Intn(n)
		j := r.Intn(n)
		for j == i {
			j = r.Intn(n)
		}
		g := collide.TransRelSpeed(&parts[i], &parts[j])
		var rate float64
		if rule.CollideAll {
			rate = 1 // near-continuum: advance one collision per pair slot
		} else {
			rate = rule.PInf / (rule.NInf * vol) * rule.Model.GFactor(g/rule.GInf)
		}
		if rate <= 0 {
			// No collisions possible at this state; the counter cannot
			// advance — skip the cell this step.
			break
		}
		// Time per collision: 2/(N² · pair rate), the time-counter rule.
		dt := 2 / (float64(n) * float64(n) * rate)
		if cellTime+dt > 1 && collisions > 0 && r.Float64() > (1-cellTime)/dt {
			break
		}
		perm := rng.RandomPerm5(b.Table, r)
		collide.Collide(&parts[i], &parts[j], perm, r.Uint32())
		collisions++
		cellTime += dt
	}
	return collisions
}

// Nanbu is Nanbu's scheme as the paper characterises it: a collision
// probability applied unconditionally per particle, with a conditional
// partner selection; only the deciding particle's velocity is updated, so
// energy and momentum are conserved only in the mean. The partner scan
// makes it O(N²) per cell.
type Nanbu struct{}

// Name implements Scheme.
func (Nanbu) Name() string { return "nanbu" }

// CollideCell implements Scheme.
func (Nanbu) CollideCell(parts []collide.State5, vol float64, rule collide.Rule, r *rng.Stream) int {
	n := len(parts)
	if n < 2 || vol <= 0 {
		return 0
	}
	updated := 0
	pij := make([]float64, n)
	for i := 0; i < n; i++ {
		// O(N) scan per particle: cumulative pair probabilities.
		var pi float64
		for j := 0; j < n; j++ {
			if j == i {
				pij[j] = 0
				continue
			}
			g := collide.TransRelSpeed(&parts[i], &parts[j])
			var p float64
			if rule.CollideAll {
				p = 1 / float64(n-1)
			} else {
				p = rule.PInf / (rule.NInf * vol) * rule.Model.GFactor(g/rule.GInf)
			}
			pij[j] = p
			pi += p
		}
		if pi > 1 {
			pi = 1
		}
		if r.Float64() >= pi {
			continue
		}
		// Conditional partner selection with probability p_ij / P_i.
		target := r.Float64() * sum(pij)
		j, acc := 0, 0.0
		for ; j < n-1; j++ {
			acc += pij[j]
			if acc >= target {
				break
			}
		}
		// Nanbu update: only particle i moves to the post-collision state.
		mean := collide.State5{}
		for k := 0; k < 5; k++ {
			mean[k] = (parts[i][k] + parts[j][k]) / 2
		}
		grel := collide.TransRelSpeed(&parts[i], &parts[j])
		dir := unit3(r)
		parts[i][0] = mean[0] + grel*dir[0]/2
		parts[i][1] = mean[1] + grel*dir[1]/2
		parts[i][2] = mean[2] + grel*dir[2]/2
		// Rotational components exchange toward the pair mean likewise.
		gr := math.Hypot(parts[i][3]-parts[j][3], parts[i][4]-parts[j][4])
		phi := 2 * math.Pi * r.Float64()
		parts[i][3] = mean[3] + gr*math.Cos(phi)/2
		parts[i][4] = mean[4] + gr*math.Sin(phi)/2
		updated++
	}
	return updated
}

// Ploss is the O(N) reformulation of Nanbu's scheme (Ploss 1987): the
// expected number of updates is computed once for the cell and that many
// particles are processed against randomly chosen partners, removing the
// per-particle partner scan. Like Nanbu's scheme it conserves the cell's
// energy and momentum only in the mean.
type Ploss struct{}

// Name implements Scheme.
func (Ploss) Name() string { return "ploss" }

// CollideCell implements Scheme.
func (Ploss) CollideCell(parts []collide.State5, vol float64, rule collide.Rule, r *rng.Stream) int {
	n := len(parts)
	if n < 2 || vol <= 0 {
		return 0
	}
	var pMean float64
	if rule.CollideAll {
		pMean = 1
	} else {
		// Use the cell density with the freestream mean relative speed as
		// the majorant estimate for the per-particle update probability.
		pMean = rule.PInf * float64(n) / (rule.NInf * vol)
		if pMean > 1 {
			pMean = 1
		}
	}
	expect := pMean * float64(n)
	k := int(expect)
	if r.Float64() < expect-float64(k) {
		k++
	}
	updated := 0
	for e := 0; e < k; e++ {
		i := r.Intn(n)
		j := r.Intn(n)
		for j == i {
			j = r.Intn(n)
		}
		// Acceptance on the relative-speed factor keeps the g-dependence
		// for non-Maxwell models.
		if !rule.CollideAll && rule.Model.GExp != 0 {
			g := collide.TransRelSpeed(&parts[i], &parts[j])
			if r.Float64() >= rule.Model.GFactor(g/rule.GInf) {
				continue
			}
		}
		mean := collide.State5{}
		for c := 0; c < 5; c++ {
			mean[c] = (parts[i][c] + parts[j][c]) / 2
		}
		grel := collide.TransRelSpeed(&parts[i], &parts[j])
		dir := unit3(r)
		parts[i][0] = mean[0] + grel*dir[0]/2
		parts[i][1] = mean[1] + grel*dir[1]/2
		parts[i][2] = mean[2] + grel*dir[2]/2
		gr := math.Hypot(parts[i][3]-parts[j][3], parts[i][4]-parts[j][4])
		phi := 2 * math.Pi * r.Float64()
		parts[i][3] = mean[3] + gr*math.Cos(phi)/2
		parts[i][4] = mean[4] + gr*math.Sin(phi)/2
		updated++
	}
	return updated
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

func unit3(r *rng.Stream) [3]float64 {
	z := 2*r.Float64() - 1
	phi := 2 * math.Pi * r.Float64()
	s := math.Sqrt(1 - z*z)
	return [3]float64{s * math.Cos(phi), s * math.Sin(phi), z}
}
