package baseline

import (
	"math"
	"testing"

	"dsmc/internal/collide"
	"dsmc/internal/molec"
	"dsmc/internal/rng"
	"dsmc/internal/stats"
)

// TestAblationFixedPairingCorrelates demonstrates the failure mode the
// paper's sort randomisation prevents: "it is important that candidate
// partners change between time steps otherwise the situation arises where
// the same partners collide repeatedly leading to correlated velocity
// distributions."
//
// With the pairing frozen, each pair equilibrates only on its own energy
// shell: partner velocities become correlated and the ensemble never
// reaches the Gaussian (kurtosis 3). With the paper's per-step reshuffle
// the same scheme Maxwellises.
func TestAblationFixedPairingCorrelates(t *testing.T) {
	rule := collide.Rule{Model: molec.Maxwell(), CollideAll: true}
	const n = 20000
	const steps = 30

	// Frozen pairing.
	r1 := rng.NewStream(5)
	frozen := RectangularEnsemble(n, 0.25, &r1)
	RelaxFixedPairing(NewBM(), frozen, 1, rule, steps, &r1)
	// Correlation of the translational speed magnitude between partners.
	speed := func(v *collide.State5) float64 {
		return math.Sqrt(v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
	}
	var xs, ys []float64
	for i := 0; i+1 < n; i += 2 {
		xs = append(xs, speed(&frozen[i]))
		ys = append(ys, speed(&frozen[i+1]))
	}
	frozenCorr := stats.PairCorrelation(xs, ys)

	// Reshuffled pairing (the paper's behaviour).
	r2 := rng.NewStream(5)
	mixed := RectangularEnsemble(n, 0.25, &r2)
	Relax(NewBM(), mixed, 1, rule, steps, &r2)
	xs, ys = xs[:0], ys[:0]
	for i := 0; i+1 < n; i += 2 {
		xs = append(xs, speed(&mixed[i]))
		ys = append(ys, speed(&mixed[i+1]))
	}
	mixedCorr := stats.PairCorrelation(xs, ys)

	// Frozen pairs share a fixed energy budget, so partner speeds become
	// anti-correlated (one fast, the other slow) — the correlated velocity
	// distribution the paper warns about.
	if frozenCorr > -0.15 {
		t.Errorf("frozen pairing should anti-correlate partner speeds, got r = %v", frozenCorr)
	}
	if math.Abs(mixedCorr) > 0.05 {
		t.Errorf("reshuffled pairing must decorrelate partners, got r = %v", mixedCorr)
	}

	// And the frozen ensemble's velocity distribution is wrong: each pool
	// component stays pinned to its pair shell. Compare kurtosis.
	frozenKurt := MeasureMoments(frozen).Kurtosis
	mixedKurt := MeasureMoments(mixed).Kurtosis
	if math.Abs(mixedKurt-3) > 0.1 {
		t.Errorf("reshuffled relaxation must reach kurtosis 3, got %v", mixedKurt)
	}
	if math.Abs(frozenKurt-3) < 2*math.Abs(mixedKurt-3) {
		t.Errorf("frozen pairing should visibly miss the Gaussian: frozen %v vs mixed %v",
			frozenKurt, mixedKurt)
	}
}

// TestAblationKSConfirmsMaxwellisation uses the Kolmogorov–Smirnov test
// to confirm that the reshuffled relaxation produces a bona fide
// Maxwellian speed distribution while the frozen one is rejected.
func TestAblationKSConfirmsMaxwellisation(t *testing.T) {
	rule := collide.Rule{Model: molec.Maxwell(), CollideAll: true}
	const n = 20000
	const sigma = 0.25
	cm := sigma * math.Sqrt2

	speeds := func(parts []collide.State5) []float64 {
		out := make([]float64, len(parts))
		for i := range parts {
			out[i] = math.Sqrt(parts[i][0]*parts[i][0] + parts[i][1]*parts[i][1] + parts[i][2]*parts[i][2])
		}
		return out
	}

	r := rng.NewStream(9)
	mixed := RectangularEnsemble(n, sigma, &r)
	Relax(NewBM(), mixed, 1, rule, 30, &r)
	d := stats.KolmogorovSmirnov(speeds(mixed), stats.MaxwellSpeedCDF(cm))
	if d > 1.5*stats.KSCritical999(n) {
		t.Errorf("relaxed speeds fail the Maxwell KS test: D = %v", d)
	}

	r2 := rng.NewStream(9)
	frozen := RectangularEnsemble(n, sigma, &r2)
	RelaxFixedPairing(NewBM(), frozen, 1, rule, 30, &r2)
	dFrozen := stats.KolmogorovSmirnov(speeds(frozen), stats.MaxwellSpeedCDF(cm))
	if dFrozen < 3*stats.KSCritical999(n) {
		t.Errorf("frozen pairing should be rejected by the KS test: D = %v", dFrozen)
	}
}

func TestBLSchemeRelaxesAndConserves(t *testing.T) {
	rule := collide.Rule{Model: molec.Maxwell(), PInf: 0.4, NInf: 2000, GInf: 1}
	r := rng.NewStream(11)
	parts := AnisotropicEnsemble(2000, 0.3, &r)
	before := MeasureMoments(parts)
	collisions := Relax(BL{ZRot: 2}, parts, 1, rule, 150, &r)
	after := MeasureMoments(parts)
	if collisions == 0 {
		t.Fatal("no collisions")
	}
	if math.Abs(after.Energy-before.Energy) > 1e-8*before.Energy {
		t.Errorf("BL scheme must conserve energy: %v -> %v", before.Energy, after.Energy)
	}
	// Rotational modes heated from zero (translational-only start).
	rot := after.CompEnergy[3] + after.CompEnergy[4]
	if rot <= 0.1*after.Energy {
		t.Errorf("rotational energy not excited: %v of %v", rot, after.Energy)
	}
	if (BL{}).Name() == "" {
		t.Errorf("scheme must be named")
	}
}
