// Package lint is the repo's custom analyzer suite: it machine-checks
// the invariants the simulation's determinism story depends on —
// wall-clock and map-order nondeterminism kept out of result-bearing
// packages, random draws flowing only through the counter-based stream
// constructors, allocation-free hot paths, the package layering DAG, and
// exact float comparison kept out of physics code. The rules run over
// type-checked packages (go/parser + go/types, stdlib only, so offline
// builds keep working) and report diagnostics that fail CI at the line
// that introduced the violation — before a golden hash ever drifts.
//
// Three comment directives steer the suite:
//
//	//dsmclint:allow <rule> <reason>   waive a finding on this or the next line
//	//dsmclint:scope <rule>[=<arg>]    opt a package into a scoped rule
//	//dsmclint:layer <name>            declare the package's layer (layering rule)
//
// A waiver must carry a reason; a waiver that suppresses nothing is
// itself reported (stale waivers rot into false confidence). Scope and
// layer directives exist so fixture packages under testdata — and any
// future package that wants the discipline — can opt in without editing
// the production scope tables in this package.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the rule that fired, and a
// human-readable message. The CLI prints them as file:line:col: rule: message.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Rule is one analyzer: it inspects a type-checked package and reports
// raw findings. Waivers are applied by Run, not by rules.
type Rule interface {
	// Name is the rule identifier used in diagnostics, waivers, and
	// scope directives.
	Name() string
	// Doc is a one-line description of the invariant the rule protects.
	Doc() string
	// Check reports the rule's findings in pkg.
	Check(pkg *Package) []Diagnostic
}

// AllRules returns the production rule set.
func AllRules() []Rule {
	return []Rule{
		Determinism{},
		RNGDiscipline{},
		HotpathAlloc{},
		Layering{},
		FloatEq{},
	}
}

// metaRule names the suite's own hygiene diagnostics (unknown
// directives, stale or reason-less waivers). They are not waivable.
const metaRule = "dsmclint"

// waiver is one parsed //dsmclint:allow comment.
type waiver struct {
	pos    token.Position
	rule   string
	reason string
	used   bool
}

// directives holds the parsed //dsmclint: comments of one package.
type directives struct {
	// waivers by filename; a waiver at line L suppresses matching
	// diagnostics at lines L and L+1 (trailing or line-above placement).
	waivers map[string][]*waiver
	// scopes maps rule name to the directive argument ("" when bare).
	scopes map[string]string
	// layer is the //dsmclint:layer declaration, if any.
	layer string
	// meta collects directive hygiene findings.
	meta []Diagnostic
}

// parseDirectives scans every comment of the package once.
func parseDirectives(pkg *Package, known map[string]bool) *directives {
	d := &directives{waivers: map[string][]*waiver{}, scopes: map[string]string{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//dsmclint:")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				verb, rest, _ := strings.Cut(text, " ")
				rest = strings.TrimSpace(rest)
				switch verb {
				case "allow":
					rule, reason, _ := strings.Cut(rest, " ")
					// An inner // starts a comment-on-the-comment (the
					// fixture harness uses this for its want markers);
					// it is not part of the reason.
					if i := strings.Index(reason, "//"); i >= 0 {
						reason = reason[:i]
					}
					reason = strings.TrimSpace(reason)
					if !known[rule] {
						d.meta = append(d.meta, Diagnostic{pos, metaRule,
							fmt.Sprintf("waiver names unknown rule %q", rule)})
						continue
					}
					if reason == "" {
						d.meta = append(d.meta, Diagnostic{pos, metaRule,
							fmt.Sprintf("waiver for %q requires a reason", rule)})
						continue
					}
					d.waivers[pos.Filename] = append(d.waivers[pos.Filename],
						&waiver{pos: pos, rule: rule, reason: reason})
				case "scope":
					rule, arg, _ := strings.Cut(rest, "=")
					if !known[rule] {
						d.meta = append(d.meta, Diagnostic{pos, metaRule,
							fmt.Sprintf("scope directive names unknown rule %q", rule)})
						continue
					}
					d.scopes[rule] = arg
				case "layer":
					d.layer = rest
				default:
					d.meta = append(d.meta, Diagnostic{pos, metaRule,
						fmt.Sprintf("unknown directive //dsmclint:%s", verb)})
				}
			}
		}
	}
	return d
}

// scopeArg returns the //dsmclint:scope argument for rule and whether
// the package opted in at all.
func (p *Package) scopeArg(rule string) (string, bool) {
	arg, ok := p.dirs.scopes[rule]
	return arg, ok
}

// underTestdata reports whether the package lives under a testdata
// directory: such packages are fixtures and only see rules they opt
// into with //dsmclint:scope or //dsmclint:layer directives.
func (p *Package) underTestdata() bool {
	return strings.Contains(p.Path+"/", "/testdata/")
}

// Run executes the rules over the packages, applies waivers, appends
// directive- and waiver-hygiene findings, and returns the surviving
// diagnostics sorted by position. An empty result means a clean tree.
func Run(pkgs []*Package, rules []Rule) []Diagnostic {
	// Directives are validated against the full registry, not just the
	// active subset: a -rules invocation must not misreport the other
	// rules' waivers as unknown or stale.
	known := map[string]bool{}
	for _, r := range AllRules() {
		known[r.Name()] = true
	}
	active := map[string]bool{}
	for _, r := range rules {
		known[r.Name()] = true
		active[r.Name()] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		pkg.dirs = parseDirectives(pkg, known)
		var raw []Diagnostic
		for _, r := range rules {
			raw = append(raw, r.Check(pkg)...)
		}
		for _, diag := range raw {
			if !waive(pkg.dirs, diag) {
				out = append(out, diag)
			}
		}
		out = append(out, pkg.dirs.meta...)
		for _, ws := range pkg.dirs.waivers {
			for _, w := range ws {
				if !w.used && active[w.rule] {
					out = append(out, Diagnostic{w.pos, metaRule,
						fmt.Sprintf("stale waiver: no %q finding on this or the next line", w.rule)})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// waive reports whether a waiver covers the diagnostic, marking the
// waiver used.
func waive(d *directives, diag Diagnostic) bool {
	for _, w := range d.waivers[diag.Pos.Filename] {
		if w.rule == diag.Rule && (w.pos.Line == diag.Pos.Line || w.pos.Line == diag.Pos.Line-1) {
			w.used = true
			return true
		}
	}
	return false
}

// ---- shared AST/type helpers used by the rules ----

// calleeFunc resolves a call expression to the declared function or
// method it invokes, or nil (builtins, function-typed variables,
// conversions).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// isBuiltin reports whether the call invokes the named builtin
// (make, new, append, ...), resolving through the type info so a
// shadowing local identifier does not fool the rules.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// importPath returns the unquoted path of an import spec.
func importPath(spec *ast.ImportSpec) string {
	return strings.Trim(spec.Path.Value, `"`)
}
