// Package hotpath seeds every allocation source the hotpath-alloc rule
// flags inside //dsmc:hotpath functions, plus the preallocation idioms
// it must accept.
//
//dsmclint:scope hotpath-alloc
package hotpath

// Step is the annotated hot function: everything below allocates.
//
//dsmc:hotpath
func Step(dst []float64, n int) []float64 {
	buf := make([]float64, n) // want "hotpath-alloc: make in hot path Step"
	p := new(int)             // want "hotpath-alloc: new in hot path Step"
	_ = p
	f := func() int { return n } // want "hotpath-alloc: closure literal in hot path Step"
	_ = f
	dst = append(dst, buf...) // want "hotpath-alloc: append onto a slice Step did not preallocate"
	return dst
}

// Preallocated shows the accepted idioms: a [:0] reslice of an existing
// buffer and an append chain that keeps the status. No findings.
//
//dsmc:hotpath
func Preallocated(scratch []float64, x float64) []float64 {
	out := scratch[:0]
	out = append(out, x)
	out = append(out, x*2)
	return out
}

// Cold is unannotated: the rule ignores it entirely.
func Cold(n int) []float64 {
	buf := make([]float64, 0, n)
	return append(buf, 1)
}
