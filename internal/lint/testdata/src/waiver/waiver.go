// Package waiver exercises the //dsmclint:allow machinery: a trailing
// waiver and a line-above waiver suppress findings, an unwaived
// violation still fires, a waiver without a reason is rejected, and a
// waiver that suppresses nothing is reported as stale.
//
//dsmclint:scope determinism
package waiver

import "time"

// Timed demonstrates both waiver placements against the determinism
// rule's wall-clock check.
func Timed() time.Duration {
	t0 := time.Now() //dsmclint:allow determinism trailing waiver: diagnostics-only timing for this fixture

	//dsmclint:allow determinism line-above waiver: diagnostics-only timing for this fixture
	t1 := time.Now()

	d := time.Since(t1)       // want "determinism: call to time.Since"
	return d + time.Since(t0) // want "determinism: call to time.Since"
}

// Hygiene: a reason-less waiver is itself a finding, and so is a waiver
// with nothing to suppress.
func Hygiene() int {
	//dsmclint:allow determinism // want "dsmclint: waiver for .determinism. requires a reason"
	x := 1
	//dsmclint:allow float-eq nothing on the next line compares floats // want "dsmclint: stale waiver"
	return x
}
