// Package rngdiscipline seeds violations of the strict rng-discipline
// tier: ad-hoc stream constructors and raw Stream literals, next to the
// counter-based constructions the rule requires.
//
//dsmclint:scope rng-discipline
package rngdiscipline

import "dsmc/internal/rng"

// AdHoc builds streams every way the strict tier forbids.
func AdHoc(seed uint64) float64 {
	r := rng.NewStream(seed)     // want "rng-discipline: ad-hoc stream constructor rng.NewStream"
	many := rng.Streams(seed, 4) // want "rng-discipline: ad-hoc stream constructor rng.Streams"
	raw := rng.Stream{}          // want "rng-discipline: composite literal of rng.Stream"
	_ = many
	_ = raw
	return r.Float64()
}

// CounterBased is the sanctioned construction: no findings.
func CounterBased(master uint64) float64 {
	seed := rng.JobSeed(master, 3)
	r := rng.StreamAt(seed, 7, 11)
	return r.Float64()
}
