// Package layering declares itself a kernel-layer package — the layer
// allowed to import only the pure math leaves (collide, rng) — and then
// imports above its station.
//
//dsmclint:layer kernel
package layering

import (
	"dsmc/internal/rng" // allowed: kernel may import rng
	"dsmc/internal/sim" // want "layering: package in layer .kernel. may not import dsmc/internal/sim"
)

// Use keeps both imports referenced.
func Use() {
	var cfg sim.Config
	_ = cfg
	_ = rng.NewStream(1)
}
