// Package obsrules pins the observability contract on both rules it
// touches. Layering: obs is importable from the engine up, never from
// the compute layers — this package declares itself kernel-layer and
// imports obs to seed that violation. Hotpath-alloc: atomic metric
// increments through construction-time instrument pointers are the
// accepted instrumentation idiom (no findings), while building a
// metric name or message on the record path is flagged by the string
// checks.
//
//dsmclint:scope hotpath-alloc
//dsmclint:layer kernel
package obsrules

import (
	"fmt"
	"strconv"

	"dsmc/internal/obs" // want "layering: package in layer .kernel. may not import dsmc/internal/obs"
)

// Instruments are resolved once, at package init — the record path
// below holds pointers and never looks anything up.
var (
	steps = obs.Default.NewCounter("obsrules_steps_total", "Fixture steps.")
	depth = obs.Default.NewGauge("obsrules_depth", "Fixture depth.")
	phase = obs.Default.NewHistogram("obsrules_phase_seconds", "Fixture phase time.", obs.DurationBuckets)
)

// Instrumented is the sanctioned idiom: atomic increments on prebuilt
// instruments inside a hot function. No findings.
//
//dsmc:hotpath
func Instrumented(seconds float64, n int) {
	steps.Inc()
	steps.Add(2)
	depth.Set(float64(n))
	phase.Observe(seconds)
}

// FormattedName builds metric identity on the record path — every
// string-producing form is an allocation the rule now catches.
//
//dsmc:hotpath
func FormattedName(p int, seconds float64) string {
	name := "obsrules_phase_" + strconv.Itoa(p) // want "hotpath-alloc: string concatenation in hot path FormattedName"
	name += "_seconds"                          // want "hotpath-alloc: string concatenation in hot path FormattedName"
	msg := fmt.Sprintf("%s=%v", name, seconds)  // want "hotpath-alloc: fmt.Sprintf in hot path FormattedName"
	return msg
}
