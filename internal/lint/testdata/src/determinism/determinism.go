// Package determinism seeds one violation of each determinism check:
// wall-clock reads, the global math/rand generator, and map-order
// iteration. The //dsmclint:scope directive stands in for membership in
// the production scope table.
//
//dsmclint:scope determinism
package determinism

import (
	"math/rand" // want "determinism: import of math/rand"
	"time"
)

// Clocked reads the wall clock twice and draws from the global
// generator.
func Clocked() (time.Duration, int64) {
	t0 := time.Now() // want "determinism: call to time.Now"
	n := rand.Int63()
	return time.Since(t0), n // want "determinism: call to time.Since"
}

// MapOrder iterates a map: the per-run randomized order leaks into the
// sum of floats (addition is not associative).
func MapOrder(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want "determinism: range over a map"
		s += v
	}
	return s
}

// SliceOrder iterates a slice: deterministic, no finding.
func SliceOrder(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}
