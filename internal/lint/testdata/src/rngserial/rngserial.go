// Package rngserial exercises the serial tier of rng-discipline (the
// sim/sim3/cmsim allowance): NewStream/Streams are permitted for a
// backend's serial stream, but raw literals still flag.
//
//dsmclint:scope rng-discipline=serial
package rngserial

import "dsmc/internal/rng"

// SerialStream is the sanctioned serial-stream construction: no finding.
func SerialStream(seed uint64) float64 {
	r := rng.NewStream(seed)
	return r.Float64()
}

// RawLiteral still bypasses seeding even in the serial tier.
func RawLiteral() float64 {
	r := rng.Stream{} // want "rng-discipline: composite literal of rng.Stream"
	return r.Float64()
}
