// Package floateq seeds exact float comparisons: on float64, float32, a
// named float type, and a float-constrained type parameter — plus the
// comparisons the rule must accept (integers, and the exact-zero
// sentinel idiom).
//
//dsmclint:scope float-eq
package floateq

// Celsius is a named type with float underlying: still flags.
type Celsius float64

// Float mirrors the kernel's storage-precision constraint.
type Float interface{ ~float32 | ~float64 }

// Exact compares floats exactly in every representation.
func Exact(a, b float64, c, d float32, t Celsius) bool {
	if a == b { // want "float-eq: floating-point =="
		return true
	}
	if c != d { // want "float-eq: floating-point !="
		return false
	}
	return t == Celsius(a) // want "float-eq: floating-point =="
}

// Generic compares a float-constrained type parameter: whichever
// precision instantiates it, the comparison is exact bits.
func Generic[F Float](a, b F) bool {
	return a == b // want "float-eq: floating-point =="
}

// Accepted: integer comparison and the exact-zero sentinel idiom.
func Accepted(n int, x float64) bool {
	if n == 3 {
		return true
	}
	return x == 0 // zero-constant comparison is the unset/guard idiom: no finding
}
