package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotpathMarker tags a function whose steady-state executions must not
// allocate: the engine step pipeline, the width-grouped kernels, the
// fused cell sort, and the sampling sweep all carry it. The AllocsPerRun
// tests assert the zero-allocation property end to end; this rule
// attributes it per line, so a future edit that re-introduces an
// allocation fails CI pointing at the exact expression.
const hotpathMarker = "//dsmc:hotpath"

// HotpathAlloc flags allocation sources inside functions marked
// //dsmc:hotpath: make, new, closure literals (func literals created
// per call escape to the heap), append onto slices the function did
// not visibly preallocate, string concatenation, and calls into
// package fmt (formatting allocates and boxes every operand). Plain
// method calls are accepted — in particular the obs registry's atomic
// metric increments (Counter.Inc/Add, Gauge.Set, Histogram.Observe)
// are the sanctioned way to instrument a hot path: the instruments
// are resolved at construction time and the record path is
// allocation-free by obs's own AllocsPerRun test. Metric names must
// therefore be constants too — a formatted or concatenated name on
// the record path is exactly what the string checks catch. Amortized
// grow paths — a scratch buffer that re-makes itself when it is
// outgrown once and is stable after — are legitimate and should carry
// a //dsmclint:allow waiver saying so.
type HotpathAlloc struct{}

// Name implements Rule.
func (HotpathAlloc) Name() string { return "hotpath-alloc" }

// Doc implements Rule.
func (HotpathAlloc) Doc() string {
	return "no allocation sources (make/new/closures/unpreallocated append/string building) in //dsmc:hotpath functions"
}

// Check implements Rule.
func (h HotpathAlloc) Check(pkg *Package) []Diagnostic {
	if pkg.underTestdata() {
		if _, opted := pkg.scopeArg(h.Name()); !opted {
			return nil
		}
	}
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			out = append(out, h.checkFunc(pkg, fd)...)
		}
	}
	return out
}

// isHotpath reports whether the function's doc comment carries the
// marker on a line of its own.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == hotpathMarker {
			return true
		}
	}
	return false
}

// checkFunc walks one hot function. Preallocation tracking is a simple
// source-order approximation that matches the repo's idiom: a slice is
// considered preallocated when the function binds it from a
// length-zero reslice of an existing buffer (buf[:0]), a full slice
// expression (buf[:n:c]), or a capacity-carrying make — and an append
// whose result rebinds the same variable keeps the status.
func (h HotpathAlloc) checkFunc(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	diag := func(pos token.Pos, format string, args ...any) {
		out = append(out, Diagnostic{pkg.Fset.Position(pos), h.Name(), fmt.Sprintf(format, args...)})
	}
	prealloc := map[string]bool{}
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(pkg, n.Lhs[0]) {
				diag(n.Pos(), "string concatenation in hot path %s allocates; build names at construction time", name)
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				if preallocates(pkg, prealloc, n.Rhs[i]) {
					prealloc[id.Name] = true
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(pkg, n) {
				diag(n.Pos(), "string concatenation in hot path %s allocates; build names at construction time", name)
			}
		case *ast.FuncLit:
			diag(n.Pos(), "closure literal in hot path %s allocates per call; prebuild it at construction time", name)
			return false // the literal's own body is not on the hot path
		case *ast.CallExpr:
			switch {
			case isBuiltin(pkg.Info, n, "make"):
				diag(n.Pos(), "make in hot path %s: preallocate at construction (waive for an amortized grow path)", name)
			case isBuiltin(pkg.Info, n, "new"):
				diag(n.Pos(), "new in hot path %s: hoist the allocation out of the steady state", name)
			case isBuiltin(pkg.Info, n, "append"):
				id, isIdent := ast.Unparen(n.Args[0]).(*ast.Ident)
				if !isIdent || !prealloc[id.Name] {
					diag(n.Pos(), "append onto a slice %s did not preallocate: reslice a prebuilt buffer to [:0] first, or waive with the capacity argument", name)
				}
			default:
				if fn := calleeFunc(pkg.Info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
					diag(n.Pos(), "fmt.%s in hot path %s allocates and boxes its operands; format off the hot path", fn.Name(), name)
				}
			}
		}
		return true
	})
	return out
}

// isStringExpr reports whether the expression's type is (an alias or
// named form of) string, resolved through the type info so the check
// fires on real string building, not numeric addition.
func isStringExpr(pkg *Package, e ast.Expr) bool {
	t := pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// preallocates reports whether binding a variable to rhs marks it
// preallocated for append purposes.
func preallocates(pkg *Package, prealloc map[string]bool, rhs ast.Expr) bool {
	switch rhs := ast.Unparen(rhs).(type) {
	case *ast.SliceExpr:
		if rhs.Slice3 {
			return true
		}
		// buf[:0] (or buf[lo:lo]) — the canonical reuse idiom.
		if lit, ok := rhs.High.(*ast.BasicLit); ok && lit.Value == "0" {
			return true
		}
	case *ast.CallExpr:
		// make with an explicit capacity (itself flagged separately when
		// it sits inside the hot function; fine when waived as a grow).
		if isBuiltin(pkg.Info, rhs, "make") && len(rhs.Args) == 3 {
			return true
		}
		// x = append(x, ...) chains keep the source's status.
		if isBuiltin(pkg.Info, rhs, "append") {
			if id, ok := ast.Unparen(rhs.Args[0]).(*ast.Ident); ok {
				return prealloc[id.Name]
			}
		}
	}
	return false
}
