package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// The layering rule machine-checks the package import DAG. Each package
// is assigned a named layer; a layer carries the exact set of internal
// packages it may import directly. The load-bearing edges this pins:
//
//   - kernel stays a leaf over the pure math packages (collide, rng) —
//     the width-grouped loops must never grow a dependency on the
//     engine, stores, or orchestration above them;
//   - engine never imports sim/sim3/run/ckpt — the pipeline cannot know
//     its adapters, or the unification collapses;
//   - examples import no internal package at all — they are the public
//     API contract surface (this replaces the old CI grep).
//
// A new internal package fails the rule until it is assigned here:
// declaring its place in the DAG is part of adding it. Fixture packages
// under testdata declare a layer with //dsmclint:layer <name>.
var layerAllows = map[string][]string{
	// leaf: no internal imports (rng, molec, fixed, phys, report, stats, lint).
	"leaf": {},
	// physics: the collision exchange over molecule constants.
	"physics": {"dsmc/internal/molec", "dsmc/internal/rng"},
	// kernel: width-grouped inner loops over pure math only.
	"kernel": {"dsmc/internal/collide", "dsmc/internal/rng"},
	// storage: the particle store.
	"storage": {"dsmc/internal/collide", "dsmc/internal/kernel", "dsmc/internal/rng"},
	// par: worker pool + fused cell sort.
	"par": {"dsmc/internal/kernel", "dsmc/internal/particle", "dsmc/internal/rng"},
	// geometry: domains and grids.
	"geom": {"dsmc/internal/rng"},
	"grid": {"dsmc/internal/geom"},
	// sampling: moment accumulation and field derivation.
	"sample": {"dsmc/internal/grid", "dsmc/internal/kernel", "dsmc/internal/particle", "dsmc/internal/phys"},
	// baseline: pluggable reference collision schemes.
	"baseline": {"dsmc/internal/collide", "dsmc/internal/rng"},
	// store: the content-addressed result store — artifact bytes, keys
	// and codecs over the filesystem plus the obs telemetry leaf. It
	// knows nothing of specs or scheduling: key derivation lives in run,
	// so the store can sit below run, coord and the public package alike.
	"store": {"dsmc/internal/obs"},
	// obs: the metrics registry — a leaf importable from the engine up
	// (engine, coord, run, cmd), never from the compute layers below
	// (kernel, par, particle): the width-grouped loops and the store
	// must stay instrumentation-free so their cost model owes nothing
	// to telemetry.
	"obs": {},
	// engine: the unified pipeline — everything below it, nothing above.
	"engine": {
		"dsmc/internal/baseline", "dsmc/internal/collide", "dsmc/internal/kernel",
		"dsmc/internal/obs", "dsmc/internal/par", "dsmc/internal/particle",
		"dsmc/internal/rng", "dsmc/internal/sample",
	},
	// ckpt: engine-state serialization.
	"ckpt": {
		"dsmc/internal/collide", "dsmc/internal/engine", "dsmc/internal/kernel",
		"dsmc/internal/particle", "dsmc/internal/rng", "dsmc/internal/sample",
	},
	// backends: geometry+config adapters over the engine.
	"sim": {
		"dsmc/internal/baseline", "dsmc/internal/ckpt", "dsmc/internal/collide",
		"dsmc/internal/engine", "dsmc/internal/geom", "dsmc/internal/grid",
		"dsmc/internal/kernel", "dsmc/internal/molec", "dsmc/internal/par",
		"dsmc/internal/particle", "dsmc/internal/phys", "dsmc/internal/rng",
		"dsmc/internal/sample",
	},
	"sim3": {
		"dsmc/internal/ckpt", "dsmc/internal/collide", "dsmc/internal/engine",
		"dsmc/internal/kernel", "dsmc/internal/molec", "dsmc/internal/par",
		"dsmc/internal/particle", "dsmc/internal/phys", "dsmc/internal/rng",
		"dsmc/internal/sample",
	},
	// cm: the instrumented Connection Machine emulation and its adapter.
	"cm": {"dsmc/internal/par"},
	"cmsim": {
		"dsmc/internal/cm", "dsmc/internal/fixed", "dsmc/internal/geom",
		"dsmc/internal/grid", "dsmc/internal/rng", "dsmc/internal/sim",
	},
	// golden: FNV bit-identity pinning over both backends.
	"golden": {"dsmc/internal/kernel", "dsmc/internal/obs", "dsmc/internal/sim", "dsmc/internal/sim3"},
	// run: job DAG, aggregation, checkpoint/memoization orchestration.
	"run": {
		"dsmc/internal/ckpt", "dsmc/internal/grid", "dsmc/internal/kernel",
		"dsmc/internal/molec", "dsmc/internal/rng", "dsmc/internal/sample",
		"dsmc/internal/sim", "dsmc/internal/sim3", "dsmc/internal/store",
	},
	// coord: the distributed-sweep coordinator and pull-worker. It sits
	// ABOVE the public package — jobs are enumerated, run and assembled
	// through the dsmc distribution surface — so the only internal
	// packages it may reach are the obs telemetry leaf and the result
	// store it memoizes dispatch against; that keeps the wire protocol
	// honest (a worker process has exactly the information an API client
	// has, plus its own instruments — the store is coordinator-side).
	"coord": {"dsmc/internal/obs", "dsmc/internal/store"},
	// root: the public dsmc package — composes backends and run, but
	// never reaches under engine's hood directly.
	"root": {
		"dsmc/internal/cmsim", "dsmc/internal/geom", "dsmc/internal/grid",
		"dsmc/internal/molec", "dsmc/internal/phys", "dsmc/internal/run",
		"dsmc/internal/sample", "dsmc/internal/sim", "dsmc/internal/sim3",
		"dsmc/internal/store",
	},
	// cmd: developer/server binaries may reach anything.
	"cmd": {"*"},
	// examples: the public-API contract surface — no internal imports.
	"examples": {},
}

// layerOf assigns every module package its layer.
var layerOf = map[string]string{
	"dsmc/internal/rng":      "leaf",
	"dsmc/internal/molec":    "leaf",
	"dsmc/internal/fixed":    "leaf",
	"dsmc/internal/phys":     "leaf",
	"dsmc/internal/report":   "leaf",
	"dsmc/internal/stats":    "leaf",
	"dsmc/internal/lint":     "leaf",
	"dsmc/internal/collide":  "physics",
	"dsmc/internal/kernel":   "kernel",
	"dsmc/internal/particle": "storage",
	"dsmc/internal/par":      "par",
	"dsmc/internal/geom":     "geom",
	"dsmc/internal/grid":     "grid",
	"dsmc/internal/sample":   "sample",
	"dsmc/internal/baseline": "baseline",
	"dsmc/internal/obs":      "obs",
	"dsmc/internal/engine":   "engine",
	"dsmc/internal/ckpt":     "ckpt",
	"dsmc/internal/sim":      "sim",
	"dsmc/internal/sim3":     "sim3",
	"dsmc/internal/cm":       "cm",
	"dsmc/internal/cmsim":    "cmsim",
	"dsmc/internal/golden":   "golden",
	"dsmc/internal/run":      "run",
	"dsmc/internal/store":    "store",
	"dsmc/internal/coord":    "coord",
	"dsmc":                   "root",
}

// Layering enforces the import DAG declared above.
type Layering struct{}

// Name implements Rule.
func (Layering) Name() string { return "layering" }

// Doc implements Rule.
func (Layering) Doc() string {
	return "package imports stay inside the declared layer DAG (kernel leaf-only, engine below sim/run, examples public-only)"
}

// Check implements Rule.
func (l Layering) Check(pkg *Package) []Diagnostic {
	layer := pkg.dirs.layer
	if layer == "" {
		if pkg.underTestdata() {
			return nil
		}
		layer = layerOf[pkg.Path]
		switch {
		case layer == "":
			switch {
			case strings.HasPrefix(pkg.Path, "dsmc/cmd/"):
				layer = "cmd"
			case strings.HasPrefix(pkg.Path, "dsmc/examples/"):
				layer = "examples"
			case strings.HasPrefix(pkg.Path, "dsmc/internal/"):
				// Position the finding at the package clause of the
				// first file: there is no single import to blame.
				pos := pkg.Fset.Position(pkg.Files[0].Name.Pos())
				return []Diagnostic{{pos, l.Name(),
					fmt.Sprintf("internal package %s has no layer: declare its place in the import DAG in internal/lint/layering.go (layerOf)", pkg.Path)}}
			default:
				return nil // packages outside the module's layered zones
			}
		}
	}
	allowed, ok := layerAllows[layer]
	if !ok {
		pos := pkg.Fset.Position(pkg.Files[0].Name.Pos())
		return []Diagnostic{{pos, l.Name(), fmt.Sprintf("unknown layer %q", layer)}}
	}
	allowAll := len(allowed) == 1 && allowed[0] == "*"
	allowSet := map[string]bool{}
	for _, a := range allowed {
		allowSet[a] = true
	}
	var out []Diagnostic
	check := func(spec *ast.ImportSpec) {
		path := importPath(spec)
		if !strings.HasPrefix(path, "dsmc/internal/") || allowAll || allowSet[path] {
			return
		}
		// The suite's own fixtures import module packages to seed
		// violations; only the declared layer constrains them.
		msg := fmt.Sprintf("package in layer %q may not import %s", layer, path)
		if len(allowed) == 0 {
			msg += " (the layer imports no internal packages)"
		} else {
			msg += fmt.Sprintf(" (allowed: %s)", strings.Join(allowed, ", "))
		}
		out = append(out, Diagnostic{pkg.Fset.Position(spec.Pos()), l.Name(), msg})
	}
	for _, f := range pkg.Files {
		for _, spec := range f.Imports {
			check(spec)
		}
	}
	return out
}
