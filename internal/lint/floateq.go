package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEq forbids == and != on floating-point operands outside test
// files and the golden-hash helpers. Exact float equality is almost
// always a latent bug in physics code — two mathematically equal paths
// differ in the last ulp and the branch silently flips. The legitimate
// exceptions are exact sentinels (a probability clamped to exactly 1, a
// value returned unchanged by a no-op branch): those carry a
// //dsmclint:allow waiver naming the sentinel.
//
// Comparison against the exact constant zero is permitted without a
// waiver: the zero-value-means-unset config sentinel and the
// division-by-zero guard are both exact by construction and pervasive;
// flagging them would bury the real findings. Every other constant —
// including 1, where clamped probabilities saturate — still flags.
//
// Test files never reach this rule (the loader only reads non-test
// files) and internal/golden — whose whole purpose is bit-exact
// comparison — is exempted as the issue's "golden helpers".
type FloatEq struct{}

// Name implements Rule.
func (FloatEq) Name() string { return "float-eq" }

// Doc implements Rule.
func (FloatEq) Doc() string {
	return "no ==/!= on floating-point operands outside tests and golden helpers"
}

// floatEqExempt lists the packages allowed to compare floats exactly.
var floatEqExempt = map[string]bool{
	"dsmc/internal/golden": true,
}

// Check implements Rule.
func (r FloatEq) Check(pkg *Package) []Diagnostic {
	if _, opted := pkg.scopeArg(r.Name()); !opted {
		if pkg.underTestdata() || floatEqExempt[pkg.Path] {
			return nil
		}
	}
	var out []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isZeroConst(pkg.Info, be.X) || isZeroConst(pkg.Info, be.Y) {
				return true
			}
			if isFloatOperand(pkg.Info.TypeOf(be.X)) || isFloatOperand(pkg.Info.TypeOf(be.Y)) {
				out = append(out, Diagnostic{pkg.Fset.Position(be.OpPos), r.Name(),
					"floating-point " + be.Op.String() + " compares exact bits; use a tolerance, or waive naming the exact sentinel this checks"})
			}
			return true
		})
	}
	return out
}

// isZeroConst reports whether the expression is a compile-time constant
// equal to exactly zero.
func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

// isFloatOperand reports whether t is a float32/float64 (through named
// types), or a type parameter whose entire constraint type set has a
// floating-point core — the storage-precision parameter F of the
// generic kernels compares floats whichever way it is instantiated.
func isFloatOperand(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsFloat != 0
	case *types.Interface:
		// A type parameter's underlying type is its constraint interface.
		if _, isTP := t.(*types.TypeParam); !isTP {
			return false
		}
		return allTermsFloat(u)
	}
	return false
}

// allTermsFloat reports whether every term of the interface's type set
// is a floating-point type. An empty or unbounded (no union terms)
// constraint reports false.
func allTermsFloat(iface *types.Interface) bool {
	sawTerm := false
	for i := 0; i < iface.NumEmbeddeds(); i++ {
		switch emb := iface.EmbeddedType(i).(type) {
		case *types.Union:
			for j := 0; j < emb.Len(); j++ {
				sawTerm = true
				b, ok := emb.Term(j).Type().Underlying().(*types.Basic)
				if !ok || b.Info()&types.IsFloat == 0 {
					return false
				}
			}
		default:
			// An embedded named constraint (e.g. kernel.Float inside
			// another interface): recurse through its underlying.
			if inner, ok := emb.Underlying().(*types.Interface); ok {
				if !allTermsFloat(inner) {
					return false
				}
				sawTerm = true
				continue
			}
			b, ok := emb.Underlying().(*types.Basic)
			if !ok || b.Info()&types.IsFloat == 0 {
				return false
			}
			sawTerm = true
		}
	}
	return sawTerm
}
