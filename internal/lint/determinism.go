package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// determinismScope lists the packages whose results must be
// bit-identical for any worker count, pool size, or host: the engine
// step pipeline, the width-grouped kernels, the sharded sort, the
// particle store, sampling, checkpointing, and the run subsystem's
// aggregation/fingerprint paths. A wall-clock read, a global-rand draw,
// or a map-iteration order leaking into any of these is exactly the bug
// class the golden FNV tests catch late — this rule catches it at the
// line that introduced it.
//
// The CM instrumented backend (internal/cm, internal/cmsim) is
// deliberately out of scope: its per-phase wall-clock metering is the
// point of that backend, and its results never feed the golden paths.
var determinismScope = map[string]bool{
	"dsmc/internal/engine":   true,
	"dsmc/internal/kernel":   true,
	"dsmc/internal/par":      true,
	"dsmc/internal/particle": true,
	"dsmc/internal/sample":   true,
	"dsmc/internal/ckpt":     true,
	"dsmc/internal/run":      true,
	"dsmc/internal/sim":      true,
	"dsmc/internal/sim3":     true,
}

// Determinism forbids the three classic nondeterminism leaks in
// determinism-critical packages: wall-clock reads (time.Now/time.Since),
// the global math/rand generator, and ranging over maps.
type Determinism struct{}

// Name implements Rule.
func (Determinism) Name() string { return "determinism" }

// Doc implements Rule.
func (Determinism) Doc() string {
	return "no wall-clock reads, global math/rand, or map-order iteration in determinism-critical packages"
}

// Check implements Rule.
func (d Determinism) Check(pkg *Package) []Diagnostic {
	if _, opted := pkg.scopeArg(d.Name()); !opted {
		if pkg.underTestdata() || !determinismScope[pkg.Path] {
			return nil
		}
	}
	var out []Diagnostic
	diag := func(n ast.Node, format string, args ...any) {
		out = append(out, Diagnostic{pkg.Fset.Position(n.Pos()), d.Name(), fmt.Sprintf(format, args...)})
	}
	for _, f := range pkg.Files {
		for _, spec := range f.Imports {
			switch importPath(spec) {
			case "math/rand", "math/rand/v2":
				diag(spec, "import of %s: the global generator is seeded outside the counter-based stream discipline; draw from internal/rng streams", importPath(spec))
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(pkg.Info, n)
				if isPkgFunc(fn, "time", "Now") || isPkgFunc(fn, "time", "Since") {
					diag(n, "call to time.%s: wall-clock reads are nondeterministic; keep clocks out of result-bearing code (waive for diagnostics-only timing)", fn.Name())
				}
			case *ast.RangeStmt:
				if t := pkg.Info.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						diag(n, "range over a map: iteration order is randomized per run; iterate a sorted key slice instead (waive if the loop body is order-invariant)")
					}
				}
			}
			return true
		})
	}
	return out
}
