package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// rngPkg is the module's random-number package; every random draw in
// simulation code must flow through its stream constructors.
const rngPkg = "dsmc/internal/rng"

// Tiers of the rng-discipline rule. In the strict tier every stream
// must come from the counter-based coordinates (rng.StreamAt, seeded
// via rng.JobSeed for ensemble jobs) — that is the domain-separation
// argument that makes results bit-identical at any worker count and
// job seeds injective per master seed. The serial tier additionally
// permits rng.NewStream/rng.Streams for a backend's single serial
// stream (the reservoir-relaxation stream sim/sim3 checkpoint and
// restore); it still forbids ad-hoc sources and raw Stream literals.
const (
	tierStrict = "strict"
	tierSerial = "serial"
)

// rngScope maps each simulation package to its tier.
var rngScope = map[string]string{
	"dsmc/internal/engine":   tierStrict,
	"dsmc/internal/kernel":   tierStrict,
	"dsmc/internal/par":      tierStrict,
	"dsmc/internal/particle": tierStrict,
	"dsmc/internal/sample":   tierStrict,
	"dsmc/internal/run":      tierStrict,
	"dsmc/internal/collide":  tierStrict,
	"dsmc/internal/geom":     tierStrict,
	"dsmc/internal/baseline": tierStrict,
	"dsmc/internal/sim":      tierSerial,
	"dsmc/internal/sim3":     tierSerial,
	"dsmc/internal/cmsim":    tierSerial,
}

// RNGDiscipline enforces that simulation randomness flows only from
// internal/rng's stream constructors: no math/rand or crypto/rand, no
// raw rng.Stream composite literals (which bypass the seeding
// discipline entirely), and — in strict-tier packages — no
// rng.NewStream/rng.Streams, whose sequentially-derived states carry
// none of StreamAt's (seed, epoch, lane) domain separation.
type RNGDiscipline struct{}

// Name implements Rule.
func (RNGDiscipline) Name() string { return "rng-discipline" }

// Doc implements Rule.
func (RNGDiscipline) Doc() string {
	return "random draws in simulation code flow only from internal/rng stream constructors (StreamAt/JobSeed)"
}

// Check implements Rule.
func (r RNGDiscipline) Check(pkg *Package) []Diagnostic {
	tier, ok := rngScope[pkg.Path]
	if pkg.underTestdata() {
		tier, ok = "", false
	}
	if arg, opted := pkg.scopeArg(r.Name()); opted {
		// A bare //dsmclint:scope rng-discipline opts into the strict
		// tier; =serial selects the permissive one.
		tier, ok = tierStrict, true
		if arg == tierSerial {
			tier = tierSerial
		}
	}
	if !ok {
		return nil
	}
	var out []Diagnostic
	diag := func(n ast.Node, format string, args ...any) {
		out = append(out, Diagnostic{pkg.Fset.Position(n.Pos()), r.Name(), fmt.Sprintf(format, args...)})
	}
	for _, f := range pkg.Files {
		for _, spec := range f.Imports {
			switch importPath(spec) {
			case "math/rand", "math/rand/v2", "crypto/rand":
				diag(spec, "import of %s: simulation randomness must come from internal/rng streams (StreamAt, or JobSeed-derived seeds)", importPath(spec))
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if isRNGStreamType(pkg.Info.TypeOf(n)) {
					diag(n, "composite literal of rng.Stream bypasses the seeding discipline; construct streams with rng.StreamAt")
				}
			case *ast.CallExpr:
				if tier != tierStrict {
					return true
				}
				fn := calleeFunc(pkg.Info, n)
				if isPkgFunc(fn, rngPkg, "NewStream") || isPkgFunc(fn, rngPkg, "Streams") {
					diag(n, "ad-hoc stream constructor rng.%s in a strict-tier package: derive streams from counter coordinates with rng.StreamAt (ensemble seeds via rng.JobSeed)", fn.Name())
				}
			}
			return true
		})
	}
	return out
}

// isRNGStreamType reports whether t is rng.Stream.
func isRNGStreamType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == rngPkg && obj.Name() == "Stream"
}
