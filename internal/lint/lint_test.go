package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// wantRe extracts expected-diagnostic annotations from fixture source
// lines: `want "<regexp>"`. The regexp is matched against the
// diagnostic's "rule: message" string at the same file and line.
var wantRe = regexp.MustCompile(`want "([^"]+)"`)

// wantKey addresses one fixture source line.
type wantKey struct {
	file string
	line int
}

// collectWants scans every .go file of a fixture directory for want
// annotations.
func collectWants(t *testing.T, dir string) map[wantKey][]string {
	t.Helper()
	wants := map[wantKey][]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("open fixture: %v", err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				k := wantKey{e.Name(), line}
				wants[k] = append(wants[k], m[1])
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("scan fixture: %v", err)
		}
		f.Close()
	}
	return wants
}

// TestFixtures runs the full rule set over each fixture package and
// checks the diagnostics against the want annotations: every finding
// must match a want on its line, and every want must be hit.
func TestFixtures(t *testing.T) {
	fixtures, err := filepath.Glob(filepath.Join("testdata", "src", "*"))
	if err != nil || len(fixtures) == 0 {
		t.Fatalf("no fixtures found: %v", err)
	}
	for _, dir := range fixtures {
		name := filepath.Base(dir)
		t.Run(name, func(t *testing.T) {
			wants := collectWants(t, dir)
			pkgs, err := Load(".", "./"+filepath.ToSlash(dir))
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			diags := Run(pkgs, AllRules())

			// Each want may be satisfied once; count per (file, line, pattern).
			unmatched := map[wantKey][]string{}
			for k, ps := range wants {
				unmatched[k] = append([]string(nil), ps...)
			}
			for _, d := range diags {
				k := wantKey{filepath.Base(d.Pos.Filename), d.Pos.Line}
				got := d.Rule + ": " + d.Message
				matched := false
				rest := unmatched[k][:0]
				for _, p := range unmatched[k] {
					if !matched && regexp.MustCompile(p).MatchString(got) {
						matched = true
						continue
					}
					rest = append(rest, p)
				}
				unmatched[k] = rest
				if !matched {
					t.Errorf("unexpected diagnostic at %s:%d: %s", k.file, k.line, got)
				}
			}
			for k, ps := range unmatched {
				for _, p := range ps {
					t.Errorf("missing diagnostic at %s:%d: want match for %q", k.file, k.line, p)
				}
			}
		})
	}
}

// TestTreeClean asserts the production tree itself lints clean — the
// same check the CI lint job runs via cmd/dsmclint. Skipped in -short
// mode (it type-checks the whole module).
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint covered by the CI lint job")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	diags := Run(pkgs, AllRules())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestRuleNamesUnique guards the waiver/scope grammar: rule names must
// be distinct and must not collide with the meta rule.
func TestRuleNamesUnique(t *testing.T) {
	seen := map[string]bool{metaRule: true}
	for _, r := range AllRules() {
		if seen[r.Name()] {
			t.Errorf("duplicate rule name %q", r.Name())
		}
		seen[r.Name()] = true
		if r.Doc() == "" {
			t.Errorf("rule %q has no doc", r.Name())
		}
	}
}
