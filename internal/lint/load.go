package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one type-checked target package: the parsed files (with
// comments), the type information the rules query, and the parsed
// //dsmclint: directives.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	dirs *directives
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
}

// Load lists the patterns with the go tool, type-checks every matched
// package from source against the export data of its dependencies, and
// returns the targets ready for Run. dir is the working directory of
// the go invocations (the module root, or any directory inside it).
//
// Only non-test Go files are loaded: _test.go files (and the testdata
// fixtures, which wildcards never match) are exactly where exact float
// comparison and ad-hoc randomness are legitimate, so the rules never
// see them.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// One -deps listing yields export data for the full dependency
	// closure (compiled into the build cache as needed — no network);
	// the plain listing identifies which packages are the targets.
	deps, err := goList(dir, append([]string{"-deps", "-export"}, patterns...))
	if err != nil {
		return nil, err
	}
	targets, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	byPath := make(map[string]listEntry, len(deps))
	for _, e := range deps {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		byPath[e.ImportPath] = e
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		e, ok := byPath[t.ImportPath]
		if !ok {
			e = t
		}
		var files []*ast.File
		for _, name := range e.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: parse %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(e.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-check %s: %w", e.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  e.ImportPath,
			Dir:   e.Dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// goList runs `go list -json=...` with the given extra flags and
// patterns and decodes the JSON stream.
func goList(dir string, args []string) ([]listEntry, error) {
	cmd := exec.Command("go", append([]string{"list", "-json=ImportPath,Dir,Export,GoFiles"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}
