package sim3

import (
	"io"

	"dsmc/internal/ckpt"
)

// CheckpointSections writes the shock tube's full mutable state as
// sections of an open checkpoint stream: the engine counters and store,
// then the single 3D domain scalar — the piston position. The tube is
// closed (no reservoir) and its boundaries consume no serial randomness,
// so that is the entire domain state.
func (s *SimOf[F]) CheckpointSections(w *ckpt.Writer) {
	ckpt.WriteEngine(w, s.eng)
	w.F64(s.dom.pistonX)
}

// RestoreSections restores state written by CheckpointSections into a
// simulation built from the same configuration, at any worker count.
func (s *SimOf[F]) RestoreSections(r *ckpt.Reader) error {
	if err := ckpt.ReadEngine(r, s.eng); err != nil {
		return err
	}
	s.dom.pistonX = r.F64()
	return r.Err()
}

// WriteCheckpoint writes a standalone checkpoint of the simulation.
func (s *SimOf[F]) WriteCheckpoint(wr io.Writer) error {
	w := ckpt.NewWriter(wr, ckpt.Kind3D, ckpt.PrecOf[F](), s.grid.Cells())
	s.CheckpointSections(w)
	return w.Close()
}

// ReadCheckpoint restores a standalone checkpoint into the simulation,
// which must have been built from the same configuration (same box,
// same precision; the worker count is free to differ).
func (s *SimOf[F]) ReadCheckpoint(rd io.Reader) error {
	r, err := ckpt.NewReader(rd)
	if err != nil {
		return err
	}
	if err := ckpt.CheckShape(r, ckpt.Kind3D, ckpt.PrecOf[F](), s.grid.Cells()); err != nil {
		return err
	}
	if err := s.RestoreSections(r); err != nil {
		return err
	}
	return r.Close()
}
