package sim3

import (
	"math"
	"testing"

	"dsmc/internal/molec"
	"dsmc/internal/phys"
)

func tubeConfig() Config {
	return Config{
		NX: 160, NY: 4, NZ: 4,
		Cm:          0.125,
		Lambda:      0,     // collide-all gives the sharpest shock
		PistonSpeed: 0.131, // Ms ≈ 2 for γ = 1.4
		NPerCell:    14,
		Seed:        21,
	}
}

func TestGrid3Index(t *testing.T) {
	g := Grid3{4, 3, 2}
	if g.Cells() != 24 {
		t.Errorf("Cells = %d", g.Cells())
	}
	seen := map[int]bool{}
	for iz := 0; iz < 2; iz++ {
		for iy := 0; iy < 3; iy++ {
			for ix := 0; ix < 4; ix++ {
				idx := g.Index(ix, iy, iz)
				if idx < 0 || idx >= 24 || seen[idx] {
					t.Fatalf("index collision at (%d,%d,%d)", ix, iy, iz)
				}
				seen[idx] = true
			}
		}
	}
	if g.CellOf(0.5, 0.5, 0.5) != 0 {
		t.Errorf("origin cell")
	}
	if g.CellOf(3.9, 2.9, 1.9) != 23 {
		t.Errorf("far cell")
	}
	// Clamping.
	if g.CellOf(-1, 5, 9) != g.Index(0, 2, 1) {
		t.Errorf("clamp")
	}
}

func TestConfigValidate(t *testing.T) {
	good := tubeConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := tubeConfig()
	bad.NZ = 0
	if bad.Validate() == nil {
		t.Errorf("zero dimension")
	}
	bad = tubeConfig()
	bad.PistonSpeed = -1
	if bad.Validate() == nil {
		t.Errorf("retreating piston")
	}
	bad = tubeConfig()
	bad.Cm = 0
	if bad.Validate() == nil {
		t.Errorf("zero thermal speed")
	}
}

func TestTheoryPistonShock(t *testing.T) {
	cfg := tubeConfig()
	ws, ratio := cfg.Theory()
	gamma := molec.Maxwell().Gamma()
	a1 := cfg.Cm * math.Sqrt(gamma/2)
	ms := ws / a1
	// The Ms equation must be satisfied.
	lhs := cfg.PistonSpeed / a1
	rhs := 2 / (gamma + 1) * (ms - 1/ms)
	if math.Abs(lhs-rhs) > 1e-12 {
		t.Errorf("piston-shock relation violated: %v vs %v", lhs, rhs)
	}
	if math.Abs(ratio-phys.RHDensityRatio(ms, gamma)) > 1e-12 {
		t.Errorf("density ratio inconsistent with RH")
	}
	// Zero piston speed degenerates to an acoustic wave: Ms = 1.
	still := cfg
	still.PistonSpeed = 0
	ws0, r0 := still.Theory()
	if math.Abs(ws0-a1) > 1e-12 || math.Abs(r0-1) > 1e-12 {
		t.Errorf("zero-speed piston must give Ms=1, ratio=1: %v %v", ws0, r0)
	}
}

func TestQuiescentBoxConserves(t *testing.T) {
	cfg := tubeConfig()
	cfg.PistonSpeed = 0
	cfg.NX = 24
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e0, _, _ := s.TotalEnergyAndMomentum()
	s.Run(40)
	e1, py, pz := s.TotalEnergyAndMomentum()
	if math.Abs(e1-e0)/e0 > 1e-9 {
		t.Errorf("closed box with static piston must conserve energy: %v -> %v", e0, e1)
	}
	nf := float64(s.N())
	if math.Abs(py)/nf > 0.01 || math.Abs(pz)/nf > 0.01 {
		t.Errorf("transverse momentum drift: %v %v", py/nf, pz/nf)
	}
	if s.Collisions() == 0 {
		t.Errorf("no collisions in a dense box")
	}
}

func TestQuiescentDensityUniform(t *testing.T) {
	cfg := tubeConfig()
	cfg.PistonSpeed = 0
	cfg.NX = 40
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(30)
	prof := s.DensityProfile()
	for ix := 1; ix < len(prof)-1; ix++ {
		if math.Abs(prof[ix]-1) > 0.25 {
			t.Fatalf("density at slab %d = %v, want ~1", ix, prof[ix])
		}
	}
}

// TestPistonShockRankineHugoniot is the 3D validation experiment: the
// piston-driven normal shock must propagate at the theoretical speed and
// compress the gas by the Rankine–Hugoniot ratio.
func TestPistonShockRankineHugoniot(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: 3D shock tube")
	}
	cfg := tubeConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantSpeed, wantRatio := cfg.Theory()

	// Let the shock form, then track its position over a window.
	s.Run(250)
	x0 := s.ShockPosition()
	const window = 350
	s.Run(window)
	x1 := s.ShockPosition()
	if math.IsNaN(x0) || math.IsNaN(x1) {
		t.Fatal("shock front not found")
	}
	speed := (x1 - x0) / window
	if math.Abs(speed-wantSpeed)/wantSpeed > 0.12 {
		t.Errorf("shock speed %.4f cells/step, theory %.4f", speed, wantSpeed)
	}
	if ratio := s.PostShockDensity(); math.Abs(ratio-wantRatio)/wantRatio > 0.12 {
		t.Errorf("post-shock density %.2f, theory %.2f", ratio, wantRatio)
	}
	// The gas ahead of the shock is still quiescent at density 1.
	prof := s.DensityProfile()
	probe := int(x1) + 15
	if probe < len(prof)-2 {
		if math.Abs(prof[probe]-1) > 0.15 {
			t.Errorf("pre-shock density %v, want 1", prof[probe])
		}
	}
	// Piston never outruns the shock.
	if s.PistonX() >= x1 {
		t.Errorf("piston at %v passed the shock at %v", s.PistonX(), x1)
	}
}

func TestStepAdvancesAndCounts(t *testing.T) {
	cfg := tubeConfig()
	cfg.NX = 24
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(5)
	if s.StepCount() != 5 {
		t.Errorf("StepCount = %d", s.StepCount())
	}
	if s.PistonX() <= 0 {
		t.Errorf("piston did not advance")
	}
	// All particles legal and ahead of the piston.
	st := s.Store()
	for i := 0; i < st.Len(); i++ {
		if st.X[i] < s.PistonX()-1e-9 || st.X[i] > float64(cfg.NX) {
			t.Fatalf("particle %d at x=%v outside [piston, wall]", i, st.X[i])
		}
		if st.Y[i] < 0 || st.Y[i] > float64(cfg.NY) || st.Z[i] < 0 || st.Z[i] > float64(cfg.NZ) {
			t.Fatalf("particle %d outside the box", i)
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := tubeConfig()
	cfg.NPerCell = 0
	if _, err := New(cfg); err == nil {
		t.Errorf("expected error")
	}
}
