package sim3

import (
	"math"
	"testing"
)

// TestFloat32ParallelDeterminism3D: the float32 shock tube must also be
// bit-identical for any worker count (same counter-based streams, only
// the stored columns narrow).
func TestFloat32ParallelDeterminism3D(t *testing.T) {
	run := func(workers int) *SimOf[float32] {
		cfg := detConfig()
		cfg.Workers = workers
		s, err := NewOf[float32](cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run(25)
		return s
	}
	s1, s8 := run(1), run(8)
	if s1.Collisions() != s8.Collisions() || s1.N() != s8.N() {
		t.Fatalf("collisions %d vs %d, particles %d vs %d",
			s1.Collisions(), s8.Collisions(), s1.N(), s8.N())
	}
	a, b := s1.Store(), s8.Store()
	for i := 0; i < s1.N(); i++ {
		if math.Float32bits(a.X[i]) != math.Float32bits(b.X[i]) ||
			math.Float32bits(a.U[i]) != math.Float32bits(b.U[i]) {
			t.Fatalf("state diverged at particle %d", i)
		}
	}
}

// TestPistonShockRankineHugoniotFloat32 is the 3D validation experiment
// on the float32 backend: the piston-driven normal shock must propagate
// at the theoretical speed and compress the gas by the Rankine–Hugoniot
// ratio, within tolerances loosened one notch over the float64 test.
func TestPistonShockRankineHugoniotFloat32(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: 3D shock tube")
	}
	cfg := tubeConfig()
	s, err := NewOf[float32](cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantSpeed, wantRatio := cfg.Theory()

	s.Run(250)
	x0 := s.ShockPosition()
	const window = 350
	s.Run(window)
	x1 := s.ShockPosition()
	if math.IsNaN(x0) || math.IsNaN(x1) {
		t.Fatal("shock front not found")
	}
	speed := (x1 - x0) / window
	if math.Abs(speed-wantSpeed)/wantSpeed > 0.15 {
		t.Errorf("float32 shock speed %.4f cells/step, theory %.4f", speed, wantSpeed)
	}
	if ratio := s.PostShockDensity(); math.Abs(ratio-wantRatio)/wantRatio > 0.15 {
		t.Errorf("float32 post-shock density %.2f, theory %.2f", ratio, wantRatio)
	}
	if s.PistonX() >= x1 {
		t.Errorf("piston at %v passed the shock at %v", s.PistonX(), x1)
	}
}
