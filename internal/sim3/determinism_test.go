package sim3

import (
	"math"
	"testing"
)

// detConfig crosses par's serial cutoff in both shard dimensions (2560
// cells, ~20k particles), so the determinism check exercises the
// concurrent dispatch path — and races it under `go test -race` — rather
// than the serial fallback.
func detConfig() Config {
	return Config{
		NX: 160, NY: 4, NZ: 4,
		Cm: 0.125, Lambda: 0.5, PistonSpeed: 0.131,
		NPerCell: 8, Seed: 99,
	}
}

// TestParallelDeterminism3D: same seed, Workers=1 vs Workers=8, must give
// byte-identical particle state and density profile after N steps.
func TestParallelDeterminism3D(t *testing.T) {
	run := func(workers int) *Sim {
		cfg := detConfig()
		cfg.Workers = workers
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run(25)
		return s
	}
	s1 := run(1)
	s8 := run(8)
	if s1.Collisions() != s8.Collisions() {
		t.Fatalf("collisions: %d vs %d", s1.Collisions(), s8.Collisions())
	}
	if s1.N() != s8.N() {
		t.Fatalf("particle count: %d vs %d", s1.N(), s8.N())
	}
	a, b := s1.Store(), s8.Store()
	for i := 0; i < s1.N(); i++ {
		if math.Float64bits(a.X[i]) != math.Float64bits(b.X[i]) ||
			math.Float64bits(a.Y[i]) != math.Float64bits(b.Y[i]) ||
			math.Float64bits(a.Z[i]) != math.Float64bits(b.Z[i]) {
			t.Fatalf("position diverged at particle %d", i)
		}
		va, vb := a.Vel(i), b.Vel(i)
		for k := 0; k < 5; k++ {
			if math.Float64bits(va[k]) != math.Float64bits(vb[k]) {
				t.Fatalf("velocity component %d diverged at particle %d", k, i)
			}
		}
	}
	p1, p8 := s1.DensityProfile(), s8.DensityProfile()
	for i := range p1 {
		if math.Float64bits(p1[i]) != math.Float64bits(p8[i]) {
			t.Fatalf("density profile diverged at slab %d: %v vs %v", i, p1[i], p8[i])
		}
	}
}
