// Package sim3 extends the particle simulation to three dimensions — the
// first item of the paper's future-work list. The geometry is a shock
// tube: a box of gas at rest with a piston (the 3D analogue of the
// paper's plunger) driving in from the low-x end at constant speed. A
// normal shock detaches from the piston and runs ahead of it; its speed
// and the density rise behind it are classical Rankine–Hugoniot results,
// giving the 3D code an exact validation target just as the oblique shock
// validates the 2D code.
package sim3

import (
	"errors"
	"math"

	"dsmc/internal/collide"
	"dsmc/internal/molec"
	"dsmc/internal/par"
	"dsmc/internal/particle"
	"dsmc/internal/phys"
	"dsmc/internal/rng"
)

// Grid3 is an NX×NY×NZ arrangement of unit cube cells.
type Grid3 struct {
	NX, NY, NZ int
}

// Cells returns the total cell count.
func (g Grid3) Cells() int { return g.NX * g.NY * g.NZ }

// Index returns the distinct index of cell (ix, iy, iz).
func (g Grid3) Index(ix, iy, iz int) int { return (iz*g.NY+iy)*g.NX + ix }

// CellOf returns the cell containing a position, clamping edge
// coordinates inward.
func (g Grid3) CellOf(x, y, z float64) int {
	clamp := func(v float64, n int) int {
		i := int(math.Floor(v))
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return i
	}
	return g.Index(clamp(x, g.NX), clamp(y, g.NY), clamp(z, g.NZ))
}

// Config specifies the 3D shock-tube simulation.
type Config struct {
	// NX, NY, NZ are the box dimensions in cells. NX should be long
	// (shock propagation direction); NY, NZ can be slender.
	NX, NY, NZ int
	// Cm is the most probable thermal speed of the quiescent gas,
	// cells/step.
	Cm float64
	// Lambda is the mean free path of the quiescent gas in cells
	// (0 = collide-all).
	Lambda float64
	// PistonSpeed is the piston velocity in +x, cells/step.
	PistonSpeed float64
	// NPerCell is the initial particle density.
	NPerCell float64
	// Model is the molecular model (default Maxwell, diatomic).
	Model molec.Model
	// Seed seeds the randomness.
	Seed uint64
	// Workers is the CPU worker count the phases are sharded over; 0
	// selects runtime.NumCPU(). As in the 2D reference backend, every
	// cell draws from its own counter-based stream, so results are
	// bit-identical for any worker count.
	Workers int
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.NX <= 0 || c.NY <= 0 || c.NZ <= 0 {
		return errors.New("sim3: box dimensions must be positive")
	}
	if c.Cm <= 0 || c.NPerCell <= 0 {
		return errors.New("sim3: thermal speed and density must be positive")
	}
	if c.PistonSpeed < 0 {
		return errors.New("sim3: piston must not retreat")
	}
	return nil
}

// Theory returns the exact piston-shock solution: the shock Mach number
// Ms satisfies up/a1 = (2/(γ+1))·(Ms − 1/Ms); the shock speed is Ms·a1
// and the density ratio follows Rankine–Hugoniot at Ms.
func (c *Config) Theory() (shockSpeed, densityRatio float64) {
	gamma := c.model().Gamma()
	a1 := c.Cm * math.Sqrt(gamma/2)
	up := c.PistonSpeed
	// Solve Ms − 1/Ms = up(γ+1)/(2a1); quadratic in Ms.
	k := up * (gamma + 1) / (2 * a1)
	ms := (k + math.Sqrt(k*k+4)) / 2
	return ms * a1, phys.RHDensityRatio(ms, gamma)
}

func (c *Config) model() molec.Model {
	if c.Model.Name == "" {
		return molec.Maxwell()
	}
	return c.Model
}

// Sim is a running 3D shock-tube simulation. Like the 2D reference
// backend, the particle store is kept cell-major: each step the sort's
// scatter writes the payload into the shadow store and the buffers swap,
// so the collide sweep walks contiguous cell spans with no indirection,
// and a steady-state Step performs zero heap allocations (all dispatch
// closures and scratch are built at construction).
type Sim struct {
	cfg  Config
	grid Grid3

	store  *particle.Store // 3D store (Z column), cell-major after each sort
	shadow *particle.Store // scatter target, swapped with store each step

	rule    collide.Rule
	table   []rng.Perm5
	r       rng.Stream
	pistonX float64
	stepN   int

	pool     *par.Pool
	sorter   *par.CellSort
	colls    []int64
	collided int64

	// Prebuilt shard bodies for allocation-free pool dispatch.
	fnMove   func(w, lo, hi int)
	fnSelCol func(w, clo, chi int)
	cellOfFn func(i int) int32
	swapFn   func(i, j int)
}

// The per-step stream domains of the 3D backend (epochs for rng.StreamAt).
const (
	domainSort = iota // in-cell shuffle (lane = cell)
	domainCollide
	numDomains
)

// epoch encodes (step, domain) into the epoch word of rng.StreamAt; the
// single definition keeps the phases on disjoint stream coordinates.
func (s *Sim) epoch(domain int) uint64 {
	return uint64(s.stepN)*numDomains + uint64(domain)
}

// phaseStream returns the counter-based stream of one cell for one phase
// of the current step.
func (s *Sim) phaseStream(domain, cell int) rng.Stream {
	return rng.StreamAt(s.cfg.Seed, s.epoch(domain), uint64(cell))
}

// New builds and fills the shock tube with gas at rest.
func New(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	model := cfg.model()
	g := Grid3{cfg.NX, cfg.NY, cfg.NZ}
	n := int(cfg.NPerCell * float64(g.Cells()))
	free := phys.Freestream{Mach: 2, Cm: cfg.Cm, Lambda: cfg.Lambda, Gamma: model.Gamma()}
	s := &Sim{
		cfg:    cfg,
		grid:   g,
		store:  particle.NewStore3(n),
		shadow: particle.NewStore3(n),
		rule: collide.Rule{
			Model:      model,
			PInf:       free.SelectionPInf(),
			NInf:       cfg.NPerCell,
			GInf:       math.Sqrt2 * free.MeanSpeed(),
			CollideAll: cfg.Lambda <= 0,
		},
		table: rng.Perm5Table(),
		r:     rng.NewStream(cfg.Seed),
		pool:  par.New(cfg.Workers),
	}
	s.sorter = par.NewCellSort(s.pool, g.Cells())
	s.colls = make([]int64, s.pool.Workers())
	s.fnMove = s.moveShard
	s.fnSelCol = s.selColShard
	s.cellOfFn = func(i int) int32 {
		st := s.store
		return int32(s.grid.CellOf(st.X[i], st.Y[i], st.Z[i]))
	}
	s.swapFn = func(i, j int) { s.store.Swap(i, j) }
	sigma := free.ComponentSigma()
	st := s.store
	st.SetLen(n)
	for i := 0; i < n; i++ {
		st.X[i] = s.r.Float64() * float64(cfg.NX)
		st.Y[i] = s.r.Float64() * float64(cfg.NY)
		st.Z[i] = s.r.Float64() * float64(cfg.NZ)
		st.SetVel(i, collide.State5{
			s.r.Gaussian(0, sigma), s.r.Gaussian(0, sigma), s.r.Gaussian(0, sigma),
			s.r.Gaussian(0, sigma), s.r.Gaussian(0, sigma),
		})
	}
	return s, nil
}

// N returns the particle count.
func (s *Sim) N() int { return s.store.Len() }

// Store exposes the particle store for diagnostics. The double-buffer
// swap makes the pointer alternate between two buffers, so re-fetch it
// after every Step rather than holding it across steps.
func (s *Sim) Store() *particle.Store { return s.store }

// CellStart returns the cell-major bucket boundaries of the latest sort.
func (s *Sim) CellStart() []int32 { return s.sorter.CellStart() }

// PistonX returns the piston position.
func (s *Sim) PistonX() float64 { return s.pistonX }

// StepCount returns completed steps.
func (s *Sim) StepCount() int { return s.stepN }

// Workers returns the resolved worker count of the phase pool.
func (s *Sim) Workers() int { return s.pool.Workers() }

// Collisions returns the cumulative collision count.
func (s *Sim) Collisions() int64 { return s.collided }

// Step advances one time step: 3D motion, boundaries (piston + five
// specular walls), 3D cell sort, selection and collision.
func (s *Sim) Step() {
	s.move()
	s.sortByCell()
	s.selectAndCollide()
	s.stepN++
}

// Run advances n steps.
func (s *Sim) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// move advances positions and applies the piston and the five specular
// walls, sharded over contiguous particle chunks (the 3D boundaries
// consume no randomness, so the shard is trivially deterministic).
func (s *Sim) move() {
	s.pistonX += s.cfg.PistonSpeed
	s.pool.ForIdx(s.store.Len(), s.fnMove)
}

func (s *Sim) moveShard(_, lo, hi int) {
	st := s.store
	w := float64(s.cfg.NX)
	h := float64(s.cfg.NY)
	d := float64(s.cfg.NZ)
	px := s.pistonX
	up2 := 2 * s.cfg.PistonSpeed
	for i := lo; i < hi; i++ {
		st.X[i] += st.U[i]
		st.Y[i] += st.V[i]
		st.Z[i] += st.W[i]
		// Piston face (specular in the piston frame) and far wall.
		if st.X[i] < px {
			st.X[i] = 2*px - st.X[i]
			st.U[i] = up2 - st.U[i]
		}
		if st.X[i] > w {
			st.X[i] = 2*w - st.X[i]
			if st.U[i] > 0 {
				st.U[i] = -st.U[i]
			}
		}
		// Side walls.
		if st.Y[i] < 0 {
			st.Y[i] = -st.Y[i]
			st.V[i] = -st.V[i]
		}
		if st.Y[i] > h {
			st.Y[i] = 2*h - st.Y[i]
			st.V[i] = -st.V[i]
		}
		if st.Z[i] < 0 {
			st.Z[i] = -st.Z[i]
			st.W[i] = -st.W[i]
		}
		if st.Z[i] > d {
			st.Z[i] = 2*d - st.Z[i]
			st.W[i] = -st.W[i]
		}
	}
}

// sortByCell makes the 3D store cell-major via the shared fused sort
// (par.CellSort): per-worker histograms over particle chunks, a stable
// sharded scatter of the full payload into the shadow store, a buffer
// swap, and a per-cell-stream in-place record shuffle over cell ranges.
func (s *Sim) sortByCell() {
	st := s.store
	s.sorter.Plan(st.Len(), st.Cell, s.cellOfFn)
	s.sorter.ScatterStore(st, s.shadow)
	s.store, s.shadow = s.shadow, s.store
	s.sorter.Shuffle(s.cfg.Seed, s.epoch(domainSort), s.swapFn)
}

// selectAndCollide shards the cells over the pool; each cell collides
// from its own stream and owns a disjoint contiguous particle range of
// the cell-major store.
func (s *Sim) selectAndCollide() {
	s.pool.ForIdx(s.grid.Cells(), s.fnSelCol)
	for _, c := range s.colls {
		s.collided += c
	}
}

func (s *Sim) selColShard(w, clo, chi int) {
	st := s.store
	cellStart := s.sorter.CellStart()
	var coll int64
	for c := clo; c < chi; c++ {
		lo, hi := int(cellStart[c]), int(cellStart[c+1])
		cnt := hi - lo
		if cnt < 2 {
			continue
		}
		r := s.phaseStream(domainCollide, c)
		for a := lo; a+1 < hi; a += 2 {
			du := st.U[a] - st.U[a+1]
			dv := st.V[a] - st.V[a+1]
			dw := st.W[a] - st.W[a+1]
			g := math.Sqrt(du*du + dv*dv + dw*dw)
			p := s.rule.Prob(cnt, 1, g)
			if p == 1 || r.Float64() < p {
				va, vb := st.Vel(a), st.Vel(a+1)
				perm := rng.RandomPerm5(s.table, &r)
				collide.Collide(&va, &vb, perm, r.Uint32())
				st.SetVel(a, va)
				st.SetVel(a+1, vb)
				coll++
			}
		}
	}
	s.colls[w] = coll
}

// DensityProfile returns the particle density along x (averaged over the
// cross-section), normalised by the initial density.
func (s *Sim) DensityProfile() []float64 {
	prof := make([]float64, s.cfg.NX)
	st := s.store
	for i := 0; i < st.Len(); i++ {
		ix := int(st.X[i])
		if ix < 0 {
			ix = 0
		}
		if ix >= s.cfg.NX {
			ix = s.cfg.NX - 1
		}
		prof[ix]++
	}
	slab := s.cfg.NPerCell * float64(s.cfg.NY*s.cfg.NZ)
	for i := range prof {
		prof[i] /= slab
	}
	return prof
}

// ShockPosition locates the shock front: the x where the density profile
// falls through the half-rise level between the post-shock plateau and
// the quiescent gas, scanning downstream from the piston. Returns NaN if
// no front is found.
func (s *Sim) ShockPosition() float64 {
	prof := s.DensityProfile()
	_, ratio := s.cfg.Theory()
	level := (1 + ratio) / 2
	start := int(s.pistonX)
	if start < 0 {
		start = 0
	}
	for ix := start; ix+1 < len(prof); ix++ {
		if prof[ix] >= level && prof[ix+1] < level {
			t := (prof[ix] - level) / (prof[ix] - prof[ix+1])
			return float64(ix) + 0.5 + t
		}
	}
	return math.NaN()
}

// PostShockDensity averages the density between the piston and the shock
// (excluding two cells of cushion at each end); NaN when the region is
// too thin.
func (s *Sim) PostShockDensity() float64 {
	shock := s.ShockPosition()
	if math.IsNaN(shock) {
		return math.NaN()
	}
	lo := int(s.pistonX) + 2
	hi := int(shock) - 2
	if hi <= lo {
		return math.NaN()
	}
	prof := s.DensityProfile()
	var sum float64
	for ix := lo; ix < hi; ix++ {
		sum += prof[ix]
	}
	return sum / float64(hi-lo)
}

// TotalEnergyAndMomentum returns the conservation diagnostics (the piston
// does work, so energy grows; y/z momentum must stay near zero).
func (s *Sim) TotalEnergyAndMomentum() (energy, py, pz float64) {
	st := s.store
	for i := 0; i < st.Len(); i++ {
		energy += st.U[i]*st.U[i] + st.V[i]*st.V[i] + st.W[i]*st.W[i] +
			st.R1[i]*st.R1[i] + st.R2[i]*st.R2[i]
		py += st.V[i]
		pz += st.W[i]
	}
	return energy, py, pz
}
