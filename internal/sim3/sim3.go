// Package sim3 extends the particle simulation to three dimensions — the
// first item of the paper's future-work list. The geometry is a shock
// tube: a box of gas at rest with a piston (the 3D analogue of the
// paper's plunger) driving in from the low-x end at constant speed. A
// normal shock detaches from the piston and runs ahead of it; its speed
// and the density rise behind it are classical Rankine–Hugoniot results,
// giving the 3D code an exact validation target just as the oblique shock
// validates the 2D code.
//
// The phase pipeline is the shared cell-major engine (internal/engine);
// this package supplies only the 3D parts — box grid indexing, the
// piston + five specular walls — as the engine's Domain, plus
// configuration and the shock diagnostics. Sim is the float64
// instantiation (bit-identical to the pre-unification backend, pinned by
// internal/golden); NewOf[float32] runs the same physics at half the
// memory traffic.
package sim3

import (
	"errors"
	"math"
	"time"

	"dsmc/internal/collide"
	"dsmc/internal/engine"
	"dsmc/internal/kernel"
	"dsmc/internal/molec"
	"dsmc/internal/par"
	"dsmc/internal/particle"
	"dsmc/internal/phys"
	"dsmc/internal/rng"
	"dsmc/internal/sample"
)

// Grid3 is an NX×NY×NZ arrangement of unit cube cells.
type Grid3 struct {
	NX, NY, NZ int
}

// Cells returns the total cell count.
func (g Grid3) Cells() int { return g.NX * g.NY * g.NZ }

// Index returns the distinct index of cell (ix, iy, iz).
func (g Grid3) Index(ix, iy, iz int) int { return (iz*g.NY+iy)*g.NX + ix }

// clampCell floors a coordinate to its cell index, clamping edge
// coordinates into [0, n). Package-level (rather than a closure inside
// CellOf) so the per-particle cell lookup of the move phase carries no
// closure construction.
func clampCell(v float64, n int) int {
	i := int(math.Floor(v))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// CellOf returns the cell containing a position, clamping edge
// coordinates inward.
func (g Grid3) CellOf(x, y, z float64) int {
	return g.Index(clampCell(x, g.NX), clampCell(y, g.NY), clampCell(z, g.NZ))
}

// Config specifies the 3D shock-tube simulation.
type Config struct {
	// NX, NY, NZ are the box dimensions in cells. NX should be long
	// (shock propagation direction); NY, NZ can be slender.
	NX, NY, NZ int
	// Cm is the most probable thermal speed of the quiescent gas,
	// cells/step.
	Cm float64
	// Lambda is the mean free path of the quiescent gas in cells
	// (0 = collide-all).
	Lambda float64
	// PistonSpeed is the piston velocity in +x, cells/step.
	PistonSpeed float64
	// NPerCell is the initial particle density.
	NPerCell float64
	// Model is the molecular model (default Maxwell, diatomic).
	Model molec.Model
	// Seed seeds the randomness.
	Seed uint64
	// Workers is the CPU worker count the phases are sharded over; 0
	// selects runtime.NumCPU(). As in the 2D reference backend, every
	// cell draws from its own counter-based stream, so results are
	// bit-identical for any worker count.
	Workers int
	// SortTile is the sort's cell-block scatter window width in cells;
	// <= 0 selects the default. A cache knob only — never changes
	// results.
	SortTile int
	// Regions selects the spatially-blocked (owner-computes) stepping
	// mode: contiguous per-worker cell regions, rebalanced by particle
	// count, stepped end-to-end by their owners with migrant exchange at
	// the sort. Bit-identical to the default sharding.
	Regions bool
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.NX <= 0 || c.NY <= 0 || c.NZ <= 0 {
		return errors.New("sim3: box dimensions must be positive")
	}
	if c.Cm <= 0 || c.NPerCell <= 0 {
		return errors.New("sim3: thermal speed and density must be positive")
	}
	if c.PistonSpeed < 0 {
		return errors.New("sim3: piston must not retreat")
	}
	return nil
}

// Theory returns the exact piston-shock solution: the shock Mach number
// Ms satisfies up/a1 = (2/(γ+1))·(Ms − 1/Ms); the shock speed is Ms·a1
// and the density ratio follows Rankine–Hugoniot at Ms.
func (c *Config) Theory() (shockSpeed, densityRatio float64) {
	gamma := c.model().Gamma()
	a1 := c.Cm * math.Sqrt(gamma/2)
	up := c.PistonSpeed
	// Solve Ms − 1/Ms = up(γ+1)/(2a1); quadratic in Ms.
	k := up * (gamma + 1) / (2 * a1)
	ms := (k + math.Sqrt(k*k+4)) / 2
	return ms * a1, phys.RHDensityRatio(ms, gamma)
}

func (c *Config) model() molec.Model {
	if c.Model.Name == "" {
		return molec.Maxwell()
	}
	return c.Model
}

// layout3D is the 3D backend's stream-domain encoding, preserved exactly
// from the pre-unification code: two domains per step — the in-cell
// shuffle and the collide stream, which the fused selection also draws
// from. Select/Wall alias Collide but are never consumed (FusedSelect,
// specular walls).
var layout3D = engine.StreamLayout{NumDomains: 2, Sort: 0, Select: 1, Collide: 1, Wall: 1}

// Sim is the float64 shock-tube simulation — the reference precision.
type Sim = SimOf[float64]

// SimOf is a running 3D shock-tube simulation at storage precision F,
// on the shared cell-major engine (double-buffered scatter, in-cell
// shuffle, allocation-free steady-state Step).
type SimOf[F kernel.Float] struct {
	cfg  Config
	grid Grid3
	eng  *engine.Engine[F]
	dom  *tubeDomain[F]
}

// New builds a float64 (reference-precision) shock tube filled with gas
// at rest.
func New(cfg Config) (*Sim, error) { return NewOf[float64](cfg) }

// NewOf builds and fills the shock tube with gas at rest, at storage
// precision F.
func NewOf[F kernel.Float](cfg Config) (*SimOf[F], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	model := cfg.model()
	g := Grid3{cfg.NX, cfg.NY, cfg.NZ}
	n := int(cfg.NPerCell * float64(g.Cells()))
	free := phys.Freestream{Mach: 2, Cm: cfg.Cm, Lambda: cfg.Lambda, Gamma: model.Gamma()}

	pool := par.New(cfg.Workers)
	dom := &tubeDomain[F]{
		grid:  g,
		w:     float64(cfg.NX),
		h:     float64(cfg.NY),
		d:     float64(cfg.NZ),
		speed: cfg.PistonSpeed,
	}
	store := particle.NewStore3[F](n)
	shadow := particle.NewStore3[F](n)
	eng := engine.New(engine.Config{
		Cells: g.Cells(),
		Seed:  cfg.Seed,
		Rule: collide.Rule{
			Model:      model,
			PInf:       free.SelectionPInf(),
			NInf:       cfg.NPerCell,
			GInf:       math.Sqrt2 * free.MeanSpeed(),
			CollideAll: cfg.Lambda <= 0,
		},
		Layout:      layout3D,
		FusedSelect: true,
		SortTile:    cfg.SortTile,
		Regions:     cfg.Regions,
	}, dom, pool, store, shadow)
	dom.eng = eng

	r := rng.NewStream(cfg.Seed)
	sigma := free.ComponentSigma()
	store.SetLen(n)
	for i := 0; i < n; i++ {
		store.X[i] = F(r.Float64() * float64(cfg.NX))
		store.Y[i] = F(r.Float64() * float64(cfg.NY))
		store.Z[i] = F(r.Float64() * float64(cfg.NZ))
		store.SetVel(i, collide.State5{
			r.Gaussian(0, sigma), r.Gaussian(0, sigma), r.Gaussian(0, sigma),
			r.Gaussian(0, sigma), r.Gaussian(0, sigma),
		})
	}
	return &SimOf[F]{cfg: cfg, grid: g, eng: eng, dom: dom}, nil
}

// N returns the particle count.
func (s *SimOf[F]) N() int { return s.eng.Store().Len() }

// NFlow returns the particle count — the whole tube is "the flow"; the
// name matches the 2D backend so the public layer can treat both engine
// backends uniformly.
func (s *SimOf[F]) NFlow() int { return s.N() }

// NReservoir returns 0: the shock tube is closed and banks no particles.
func (s *SimOf[F]) NReservoir() int { return 0 }

// Grid returns the box grid.
func (s *SimOf[F]) Grid() Grid3 { return s.grid }

// PhaseTimes returns cumulative wall time per sub-step.
func (s *SimOf[F]) PhaseTimes() map[string]time.Duration { return s.eng.PhaseTimes() }

// SetStepObserver registers fn to receive each completed step's
// per-phase wall times (nanoseconds, indexed by engine.Phase) and
// particle count — the flight-recorder feed. fn runs on the stepping
// goroutine; nil unregisters.
func (s *SimOf[F]) SetStepObserver(fn func(step int, phaseNs [4]int64, particles int)) {
	s.eng.SetStepObserver(fn)
}

// SampleInto accumulates the current snapshot into acc (which must cover
// the box's cell count), sharded over cell ranges on the simulation's
// worker pool — same bit-identity contract as the 2D backend.
func (s *SimOf[F]) SampleInto(acc *sample.Accumulator) { s.eng.SampleInto(acc) }

// Store exposes the particle store for diagnostics. The double-buffer
// swap makes the pointer alternate between two buffers, so re-fetch it
// after every Step rather than holding it across steps.
func (s *SimOf[F]) Store() *particle.Store[F] { return s.eng.Store() }

// CellStart returns the cell-major bucket boundaries of the latest sort.
func (s *SimOf[F]) CellStart() []int32 { return s.eng.CellStart() }

// PistonX returns the piston position.
func (s *SimOf[F]) PistonX() float64 { return s.dom.pistonX }

// StepCount returns completed steps.
func (s *SimOf[F]) StepCount() int { return s.eng.StepCount() }

// Workers returns the resolved worker count of the phase pool.
func (s *SimOf[F]) Workers() int { return s.eng.Workers() }

// Collisions returns the cumulative collision count.
func (s *SimOf[F]) Collisions() int64 { return s.eng.Collisions() }

// Step advances one time step: 3D motion, boundaries (piston + five
// specular walls), 3D cell sort, selection and collision.
func (s *SimOf[F]) Step() { s.eng.Step() }

// Run advances n steps.
func (s *SimOf[F]) Run(n int) { s.eng.Run(n) }

// tubeDomain is the engine Domain of the shock tube: box grid indexing
// and the piston + five specular walls. The boundaries consume no
// randomness, so the sharded pass is trivially deterministic.
type tubeDomain[F kernel.Float] struct {
	eng     *engine.Engine[F]
	grid    Grid3
	w, h, d float64
	speed   float64
	pistonX float64
}

// CellIndexer returns the sort's per-particle cell lookup: a closure
// over the box grid reading the engine's live store.
func (t *tubeDomain[F]) CellIndexer() func(i int) int32 {
	return func(i int) int32 {
		st := t.eng.Store()
		return int32(t.grid.CellOf(float64(st.X[i]), float64(st.Y[i]), float64(st.Z[i])))
	}
}

// PreMove advances the piston.
func (t *tubeDomain[F]) PreMove() { t.pistonX += t.speed }

// Boundary applies the piston face (specular in the piston frame) and
// the five fixed specular walls to the just-advanced particles [lo, hi).
// The geometry runs in float64; the columns round once on write-back.
func (t *tubeDomain[F]) Boundary(st *particle.Store[F], _, lo, hi int) {
	w, h, d := t.w, t.h, t.d
	px := t.pistonX
	up2 := 2 * t.speed
	for i := lo; i < hi; i++ {
		x := float64(st.X[i])
		// Piston face (specular in the piston frame) and far wall.
		if x < px {
			x = 2*px - x
			st.X[i] = F(x)
			st.U[i] = F(up2 - float64(st.U[i]))
		}
		if x > w {
			st.X[i] = F(2*w - x)
			if st.U[i] > 0 {
				st.U[i] = -st.U[i]
			}
		}
		// Side walls.
		y := float64(st.Y[i])
		if y < 0 {
			y = -y
			st.Y[i] = F(y)
			st.V[i] = -st.V[i]
		}
		if y > h {
			st.Y[i] = F(2*h - y)
			st.V[i] = -st.V[i]
		}
		z := float64(st.Z[i])
		if z < 0 {
			z = -z
			st.Z[i] = F(z)
			st.W[i] = -st.W[i]
		}
		if z > d {
			st.Z[i] = F(2*d - z)
			st.W[i] = -st.W[i]
		}
	}
}

// PostMove is a no-op: the shock tube is closed, no particle ever leaves.
func (t *tubeDomain[F]) PostMove() {}

// PostStep is a no-op: there is no reservoir.
func (t *tubeDomain[F]) PostStep() {}

// DensityProfile returns the particle density along x (averaged over the
// cross-section), normalised by the initial density.
func (s *SimOf[F]) DensityProfile() []float64 {
	prof := make([]float64, s.cfg.NX)
	st := s.eng.Store()
	for i := 0; i < st.Len(); i++ {
		ix := int(st.X[i])
		if ix < 0 {
			ix = 0
		}
		if ix >= s.cfg.NX {
			ix = s.cfg.NX - 1
		}
		prof[ix]++
	}
	slab := s.cfg.NPerCell * float64(s.cfg.NY*s.cfg.NZ)
	for i := range prof {
		prof[i] /= slab
	}
	return prof
}

// ShockPosition locates the shock front: the x where the density profile
// falls through the half-rise level between the post-shock plateau and
// the quiescent gas, scanning downstream from the piston. Returns NaN if
// no front is found.
func (s *SimOf[F]) ShockPosition() float64 {
	prof := s.DensityProfile()
	_, ratio := s.cfg.Theory()
	level := (1 + ratio) / 2
	start := int(s.dom.pistonX)
	if start < 0 {
		start = 0
	}
	for ix := start; ix+1 < len(prof); ix++ {
		if prof[ix] >= level && prof[ix+1] < level {
			t := (prof[ix] - level) / (prof[ix] - prof[ix+1])
			return float64(ix) + 0.5 + t
		}
	}
	return math.NaN()
}

// PostShockDensity averages the density between the piston and the shock
// (excluding two cells of cushion at each end); NaN when the region is
// too thin.
func (s *SimOf[F]) PostShockDensity() float64 {
	shock := s.ShockPosition()
	if math.IsNaN(shock) {
		return math.NaN()
	}
	lo := int(s.dom.pistonX) + 2
	hi := int(shock) - 2
	if hi <= lo {
		return math.NaN()
	}
	prof := s.DensityProfile()
	var sum float64
	for ix := lo; ix < hi; ix++ {
		sum += prof[ix]
	}
	return sum / float64(hi-lo)
}

// TotalEnergyAndMomentum returns the conservation diagnostics (the piston
// does work, so energy grows; y/z momentum must stay near zero).
func (s *SimOf[F]) TotalEnergyAndMomentum() (energy, py, pz float64) {
	st := s.eng.Store()
	for i := 0; i < st.Len(); i++ {
		u, v, w := float64(st.U[i]), float64(st.V[i]), float64(st.W[i])
		r1, r2 := float64(st.R1[i]), float64(st.R2[i])
		energy += u*u + v*v + w*w + r1*r1 + r2*r2
		py += v
		pz += w
	}
	return energy, py, pz
}
