package sim3

import (
	"testing"

	"dsmc/internal/kernel"
)

// testStepAllocationFree3D: the 3D backend's steady-state Step must also
// be allocation-free in either storage precision; the config crosses
// par's serial cutoff in both shard dimensions (2560 cells, ~20k
// particles) so the concurrent dispatch path is the one measured.
func testStepAllocationFree3D[F kernel.Float](t *testing.T, regions bool) {
	t.Helper()
	cfg := detConfig()
	cfg.Workers = 4
	cfg.Regions = regions
	s, err := NewOf[F](cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(10)
	if avg := testing.AllocsPerRun(20, s.Step); avg != 0 {
		t.Errorf("steady-state Step allocates %.2f times per call, want 0", avg)
	}
}

func TestStepAllocationFree3D(t *testing.T)        { testStepAllocationFree3D[float64](t, false) }
func TestStepAllocationFree3DFloat32(t *testing.T) { testStepAllocationFree3D[float32](t, false) }

// The spatially-blocked mode must also stay allocation-free.
func TestStepAllocationFree3DRegions(t *testing.T) { testStepAllocationFree3D[float64](t, true) }

// TestCellMajorInvariant3D: after a step the 3D store must be physically
// cell-major and each cell index consistent with the particle's position.
func TestCellMajorInvariant3D(t *testing.T) {
	cfg := tubeConfig()
	cfg.NX = 24
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 5; step++ {
		s.Step()
		st := s.Store()
		cellStart := s.CellStart()
		n := st.Len()
		if got := int(cellStart[len(cellStart)-1]); got != n {
			t.Fatalf("step %d: cellStart covers %d particles, store holds %d", step, got, n)
		}
		for i := 0; i < n; i++ {
			if i > 0 && st.Cell[i] < st.Cell[i-1] {
				t.Fatalf("step %d: Cell not non-decreasing at %d", step, i)
			}
			c := st.Cell[i]
			if i < int(cellStart[c]) || i >= int(cellStart[c+1]) {
				t.Fatalf("step %d: particle %d (cell %d) outside its span", step, i, c)
			}
			if want := int32(s.grid.CellOf(st.X[i], st.Y[i], st.Z[i])); c != want {
				t.Fatalf("step %d: particle %d carries cell %d, position says %d",
					step, i, c, want)
			}
		}
	}
}
