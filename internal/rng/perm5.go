package rng

// Perm5 is a permutation of the five relative-velocity components,
// part of the computational state of a particle. It is stored compactly
// (one byte per element) because the CM-2 implementation keeps it in
// per-processor memory alongside the physical state.
type Perm5 [5]uint8

// IdentityPerm5 is the identity permutation.
var IdentityPerm5 = Perm5{0, 1, 2, 3, 4}

// Valid reports whether p is a permutation of {0..4}.
func (p Perm5) Valid() bool {
	var seen [5]bool
	for _, v := range p {
		if v > 4 || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Apply permutes the 5-vector src into dst: dst[i] = src[p[i]].
func (p Perm5) Apply(dst, src *[5]float64) {
	for i, j := range p {
		dst[i] = src[j]
	}
}

// Transpose swaps elements j and k of the permutation, returning the new
// permutation. One such random transposition is performed per collision;
// the paper (citing Aldous–Diaconis) notes n·log n ≈ 10 transpositions
// produce a statistically fresh permutation, and finds one per collision
// sufficient because partner selection supplies additional randomness.
func (p Perm5) Transpose(j, k int) Perm5 {
	p[j], p[k] = p[k], p[j]
	return p
}

// RandomTransposition applies one random transposition chosen from the
// stream: the first element is swapped with a uniformly random element,
// which is the specific scheme described in the paper (transposition of
// the j-th element with the first element).
func (p Perm5) RandomTransposition(r *Stream) Perm5 {
	j := r.Intn(5)
	return p.Transpose(0, j)
}

// Perm5Table is the front-end table of all 120 permutations of five
// elements, generated deterministically in lexicographic order. The CM-2
// implementation initialises particles with random rows of this table.
func Perm5Table() []Perm5 {
	var out []Perm5
	var rec func(prefix Perm5, used uint8, depth int)
	rec = func(prefix Perm5, used uint8, depth int) {
		if depth == 5 {
			out = append(out, prefix)
			return
		}
		for v := uint8(0); v < 5; v++ {
			if used&(1<<v) == 0 {
				prefix[depth] = v
				rec(prefix, used|1<<v, depth+1)
			}
		}
	}
	rec(Perm5{}, 0, 0)
	return out
}

// Pack encodes the permutation into 15 bits (3 bits per element) so it can
// live in a single int32 field of the data-parallel machine.
func (p Perm5) Pack() int32 {
	var v int32
	for i := 4; i >= 0; i-- {
		v = v<<3 | int32(p[i])
	}
	return v
}

// UnpackPerm5 decodes a permutation packed by Pack. Invalid encodings
// (not a permutation) return the identity, so corrupted state degrades to
// a legal, if less random, collision outcome instead of an invalid one.
func UnpackPerm5(v int32) Perm5 {
	var p Perm5
	for i := 0; i < 5; i++ {
		p[i] = uint8(v>>(3*i)) & 7
	}
	if !p.Valid() {
		return IdentityPerm5
	}
	return p
}

// RandomPerm5 returns a uniformly random permutation drawn via table lookup,
// the initialisation path used for new particles.
func RandomPerm5(table []Perm5, r *Stream) Perm5 {
	return table[r.Intn(len(table))]
}
