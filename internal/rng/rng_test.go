package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamsIndependence(t *testing.T) {
	ss := Streams(42, 4)
	a, b := ss[0].Uint64(), ss[1].Uint64()
	if a == b {
		t.Errorf("adjacent streams produced identical first output")
	}
}

func TestStreamsDeterministic(t *testing.T) {
	s1 := Streams(7, 3)
	s2 := Streams(7, 3)
	for i := range s1 {
		if s1[i].Uint64() != s2[i].Uint64() {
			t.Errorf("stream %d not reproducible", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewStream(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewStream(2)
	counts := make([]int, 5)
	for i := 0; i < 50000; i++ {
		counts[r.Intn(5)]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(5) biased: count[%d] = %d", v, c)
		}
	}
}

func TestBit(t *testing.T) {
	r := NewStream(3)
	ones := 0
	const n = 100000
	for i := 0; i < n; i++ {
		b := r.Bit()
		if b > 1 {
			t.Fatalf("Bit returned %d", b)
		}
		ones += int(b)
	}
	if math.Abs(float64(ones)/n-0.5) > 0.01 {
		t.Errorf("Bit bias: %v", float64(ones)/n)
	}
}

func TestRectMoments(t *testing.T) {
	r := NewStream(4)
	const sigma = 2.5
	const n = 400000
	var sum, sum2, sum4 float64
	for i := 0; i < n; i++ {
		x := r.Rect(sigma)
		sum += x
		sum2 += x * x
		sum4 += x * x * x * x
	}
	mean := sum / n
	variance := sum2 / n
	kurt := (sum4 / n) / (variance * variance)
	if math.Abs(mean) > 0.02 {
		t.Errorf("Rect mean = %v", mean)
	}
	if math.Abs(variance-sigma*sigma) > 0.1 {
		t.Errorf("Rect variance = %v, want %v", variance, sigma*sigma)
	}
	// Uniform distribution kurtosis is 9/5; this is what distinguishes the
	// reservoir's rectangular velocities from a relaxed Gaussian (kurt 3).
	if math.Abs(kurt-1.8) > 0.05 {
		t.Errorf("Rect kurtosis = %v, want 1.8", kurt)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewStream(5)
	const n = 400000
	var sum, sum2, sum3, sum4 float64
	for i := 0; i < n; i++ {
		x := r.Normal()
		sum += x
		sum2 += x * x
		sum3 += x * x * x
		sum4 += x * x * x * x
	}
	if math.Abs(sum/n) > 0.01 {
		t.Errorf("Normal mean = %v", sum/n)
	}
	if math.Abs(sum2/n-1) > 0.02 {
		t.Errorf("Normal variance = %v", sum2/n)
	}
	if math.Abs(sum3/n) > 0.03 {
		t.Errorf("Normal skewness = %v", sum3/n)
	}
	if math.Abs(sum4/n-3) > 0.08 {
		t.Errorf("Normal kurtosis = %v", sum4/n)
	}
}

func TestGaussian(t *testing.T) {
	r := NewStream(6)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := r.Gaussian(3, 0.5)
		sum += x
		sum2 += (x - 3) * (x - 3)
	}
	if math.Abs(sum/n-3) > 0.01 {
		t.Errorf("Gaussian mean = %v", sum/n)
	}
	if math.Abs(sum2/n-0.25) > 0.01 {
		t.Errorf("Gaussian variance = %v", sum2/n)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewStream(7)
	p := make([]int, 10)
	f := func() bool {
		r.Perm(p)
		var seen [10]bool
		for _, v := range p {
			if v < 0 || v >= 10 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	for i := 0; i < 1000; i++ {
		if !f() {
			t.Fatalf("Perm produced a non-permutation: %v", p)
		}
	}
}

func TestPermUniform(t *testing.T) {
	// Chi-square test over all 3! orderings of a 3-element shuffle.
	r := NewStream(8)
	p := make([]int, 3)
	counts := map[[3]int]int{}
	const n = 60000
	for i := 0; i < n; i++ {
		r.Perm(p)
		counts[[3]int{p[0], p[1], p[2]}]++
	}
	if len(counts) != 6 {
		t.Fatalf("expected 6 distinct permutations, got %d", len(counts))
	}
	expect := float64(n) / 6
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expect
		chi2 += d * d / expect
	}
	// 5 dof, p=0.001 critical value is 20.5.
	if chi2 > 20.5 {
		t.Errorf("Perm not uniform: chi2 = %v", chi2)
	}
}

func TestPerm5Table(t *testing.T) {
	table := Perm5Table()
	if len(table) != 120 {
		t.Fatalf("table has %d entries, want 120", len(table))
	}
	seen := map[Perm5]bool{}
	for _, p := range table {
		if !p.Valid() {
			t.Errorf("invalid table entry %v", p)
		}
		if seen[p] {
			t.Errorf("duplicate table entry %v", p)
		}
		seen[p] = true
	}
}

func TestPerm5PackRoundTrip(t *testing.T) {
	for _, p := range Perm5Table() {
		if got := UnpackPerm5(p.Pack()); got != p {
			t.Errorf("pack round trip: %v -> %v", p, got)
		}
	}
}

func TestUnpackInvalidFallsBackToIdentity(t *testing.T) {
	// 0 packs to {0,0,0,0,0}, which is not a permutation.
	if UnpackPerm5(0) != IdentityPerm5 {
		t.Errorf("invalid packed value must decode to identity")
	}
}

func TestPerm5Apply(t *testing.T) {
	p := Perm5{4, 3, 2, 1, 0}
	src := [5]float64{10, 20, 30, 40, 50}
	var dst [5]float64
	p.Apply(&dst, &src)
	want := [5]float64{50, 40, 30, 20, 10}
	if dst != want {
		t.Errorf("Apply = %v, want %v", dst, want)
	}
}

func TestTransposePreservesValidity(t *testing.T) {
	f := func(j, k uint8) bool {
		p := Perm5{2, 0, 4, 1, 3}
		q := p.Transpose(int(j%5), int(k%5))
		return q.Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTranspositionMixing verifies the Aldous–Diaconis claim quoted in the
// paper: repeated random top-transpositions converge to the uniform
// distribution over S5. After many transpositions the chi-square statistic
// over all 120 permutations should be consistent with uniformity.
func TestTranspositionMixing(t *testing.T) {
	r := NewStream(9)
	counts := map[Perm5]int{}
	const walkers = 6000
	const steps = 40 // well beyond n log n ~ 10
	for w := 0; w < walkers; w++ {
		p := IdentityPerm5
		for s := 0; s < steps; s++ {
			p = p.RandomTransposition(&r)
		}
		counts[p]++
	}
	if len(counts) < 110 {
		t.Fatalf("random walk visited only %d/120 permutations", len(counts))
	}
	expect := float64(walkers) / 120
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expect
		chi2 += d * d / expect
	}
	// 119 dof, p=0.001 critical value ~ 173.
	if chi2 > 173 {
		t.Errorf("transposition walk not uniform: chi2 = %v", chi2)
	}
}

func TestRandomPerm5FromTable(t *testing.T) {
	table := Perm5Table()
	r := NewStream(10)
	for i := 0; i < 100; i++ {
		if !RandomPerm5(table, &r).Valid() {
			t.Fatalf("RandomPerm5 returned invalid permutation")
		}
	}
}

func TestStreamAtDeterministic(t *testing.T) {
	a := StreamAt(1988, 42, 7)
	b := StreamAt(1988, 42, 7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same coordinate diverged at draw %d", i)
		}
	}
}

func TestStreamAtDistinctCoordinates(t *testing.T) {
	base := StreamAt(1988, 42, 7)
	first := base.Uint64()
	for _, other := range []Stream{
		StreamAt(1989, 42, 7), // different seed
		StreamAt(1988, 43, 7), // different epoch
		StreamAt(1988, 42, 8), // different lane
		StreamAt(1988, 7, 42), // epoch/lane swapped
	} {
		o := other
		if o.Uint64() == first {
			t.Fatalf("distinct coordinate produced identical first draw")
		}
	}
}

// TestStreamAtLaneMoments: per-lane streams at a fixed epoch must be
// statistically well-behaved in aggregate (the collide phase draws one
// stream per cell per step).
func TestStreamAtLaneMoments(t *testing.T) {
	const lanes = 4096
	var sum, sumSq float64
	for lane := uint64(0); lane < lanes; lane++ {
		r := StreamAt(3, 11, lane)
		u := r.Float64()
		sum += u
		sumSq += u * u
	}
	mean := sum / lanes
	if mean < 0.47 || mean > 0.53 {
		t.Errorf("first-draw mean over lanes = %v, want ~0.5", mean)
	}
	variance := sumSq/lanes - mean*mean
	if variance < 1.0/12-0.01 || variance > 1.0/12+0.01 {
		t.Errorf("first-draw variance over lanes = %v, want ~1/12", variance)
	}
}

func TestStreamAtZeroSeedValid(t *testing.T) {
	r := StreamAt(0, 0, 0)
	seen := map[uint64]bool{}
	for i := 0; i < 50; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 50 {
		t.Errorf("zero-coordinate stream repeated values early: %d distinct of 50", len(seen))
	}
}

func TestStreamStateRoundTrip(t *testing.T) {
	r := NewStream(42)
	r.Normal() // leave a Box–Muller spare cached
	saved := r.State()
	cont := r
	var restored Stream
	restored.SetState(saved)
	for i := 0; i < 100; i++ {
		a, b := cont.Gaussian(0, 1), restored.Gaussian(0, 1)
		if a != b {
			t.Fatalf("draw %d diverged after state restore: %v vs %v", i, a, b)
		}
	}
}

func TestJobSeedDistinct(t *testing.T) {
	const jobs = 1 << 14
	seen := make(map[uint64]uint64, jobs)
	for j := uint64(0); j < jobs; j++ {
		s := JobSeed(1988, j)
		if prev, dup := seen[s]; dup {
			t.Fatalf("jobs %d and %d derived equal seed %#x", prev, j, s)
		}
		seen[s] = j
	}
}

func TestJobSeedDeterministicAndMasterSeparated(t *testing.T) {
	if JobSeed(7, 3) != JobSeed(7, 3) {
		t.Error("JobSeed is not deterministic")
	}
	if JobSeed(7, 3) == JobSeed(8, 3) {
		t.Error("distinct masters derived equal job seeds")
	}
}
