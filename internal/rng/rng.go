// Package rng provides the random-number machinery of the particle
// simulation: cheap per-lane generator streams (one independent stream per
// virtual processor, matching the per-processor randomness of the CM-2
// implementation), the front-end table of the 120 permutations of five
// elements used to initialise particle permutation vectors, random
// transpositions for refreshing those vectors, and the velocity-distribution
// samplers (rectangular and drifting-Maxwellian) needed by the reservoir and
// the freestream initialisation.
package rng

import "math"

// splitmix64 advances the seeding state; used to derive well-separated
// per-lane stream seeds from a single master seed.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream is a single xorshift64* generator with a cached Box–Muller spare.
// The zero value is invalid; create streams with NewStream or Streams.
type Stream struct {
	s         uint64
	spare     float64
	haveSpare bool
}

// NewStream returns a stream seeded from seed via splitmix64, so that
// nearby seeds yield uncorrelated streams.
func NewStream(seed uint64) Stream {
	st := seed
	return Stream{s: splitmix64(&st) | 1}
}

// Uint64 returns the next 64 random bits.
func (r *Stream) Uint64() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545f4914f6cdd1d
}

// Uint32 returns 32 random bits.
func (r *Stream) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Bit returns a single random bit as 0 or 1.
func (r *Stream) Bit() uint32 { return uint32(r.Uint64() >> 63) }

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *Stream) Intn(n int) int {
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Rect returns a sample from the rectangular (uniform) distribution with
// mean 0 and the given standard deviation: uniform on
// [-sigma*sqrt(3), sigma*sqrt(3)]. This is the distribution the reservoir
// assigns to incoming particles; collisions then relax it to a Gaussian.
func (r *Stream) Rect(sigma float64) float64 {
	halfWidth := sigma * math.Sqrt(3)
	return (2*r.Float64() - 1) * halfWidth
}

// Normal returns a standard normal sample via the Box–Muller transform.
// The second value of each pair is cached.
func (r *Stream) Normal() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	var u float64
	for u == 0 {
		u = r.Float64()
	}
	v := r.Float64()
	m := math.Sqrt(-2 * math.Log(u))
	r.spare = m * math.Sin(2*math.Pi*v)
	r.haveSpare = true
	return m * math.Cos(2*math.Pi*v)
}

// Gaussian returns a normal sample with the given mean and std deviation.
func (r *Stream) Gaussian(mean, sigma float64) float64 {
	return mean + sigma*r.Normal()
}

// Perm fills p with a uniform random permutation of [0, len(p)) using the
// Fisher–Yates (Knuth) shuffle, the algorithm the paper cites from Knuth
// vol. 2 for generating the front-end permutation table.
func (r *Stream) Perm(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// StreamState is the exported state of a Stream — the generator word and
// the Box–Muller spare — for checkpointing. Restoring the state and
// continuing yields the exact draw sequence the original stream would
// have produced.
type StreamState struct {
	S         uint64
	Spare     float64
	HaveSpare bool
}

// State exports the stream's state for a checkpoint.
func (r *Stream) State() StreamState {
	return StreamState{S: r.s, Spare: r.spare, HaveSpare: r.haveSpare}
}

// SetState restores a checkpointed state.
func (r *Stream) SetState(st StreamState) {
	r.s, r.spare, r.haveSpare = st.S, st.Spare, st.HaveSpare
}

// goldenGamma is the splitmix64 increment (the odd integer nearest
// 2^64/φ); jobSeedTag is a fixed domain-separation constant so job-seed
// derivation can never coincide with any other use of the master seed.
const (
	goldenGamma = 0x9e3779b97f4a7c15
	jobSeedTag  = 0x6a6f625f73656564 // "job_seed"
)

// JobSeed derives the simulation seed of job index job from a master
// seed: the splitmix64 output at state master ^ jobSeedTag + (job+1)·γ.
// Two properties make the derivation safe for ensembles:
//
//   - Distinct job indices of one master can never receive equal seeds:
//     γ is odd, so state = base + (job+1)·γ is injective in job modulo
//     2^64, and the splitmix64 finalizer is a bijection.
//   - A job seed cannot collide with the inner per-cell streams by
//     construction: a simulation never uses its seed as generator state —
//     every inner stream is keyed through StreamAt's three-round
//     splitmix chain over (seed, epoch, lane) — so the derived value
//     enters the stream machinery exactly as a hand-picked seed would,
//     and the jobSeedTag domain constant keeps the derivation chain
//     itself disjoint from StreamAt's (which never XORs the tag).
func JobSeed(master, job uint64) uint64 {
	st := (master ^ jobSeedTag) + job*goldenGamma
	return splitmix64(&st)
}

// StreamAt returns the counter-based stream at coordinate (seed, epoch,
// lane): the same triple always yields the same stream, and distinct
// triples yield statistically independent streams (each word is absorbed
// through a full splitmix64 round). The parallel reference backends use
// one stream per cell (or per particle) per phase — epoch encodes
// (step, phase), lane the cell or particle index — so results are
// bit-identical for any worker count.
func StreamAt(seed, epoch, lane uint64) Stream {
	st := seed
	st = splitmix64(&st) ^ epoch
	st = splitmix64(&st) ^ lane
	return Stream{s: splitmix64(&st) | 1}
}

// Streams creates n independent streams seeded from a master seed,
// one per virtual processor lane.
func Streams(seed uint64, n int) []Stream {
	st := seed
	out := make([]Stream, n)
	for i := range out {
		out[i] = Stream{s: splitmix64(&st) | 1}
	}
	return out
}
