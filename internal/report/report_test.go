package report

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta-longer", 42)
	tb.AddRow("gamma", 250*time.Millisecond)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "alpha") {
		t.Errorf("missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + underline + header + separator + 3 rows.
	if len(lines) != 7 {
		t.Errorf("line count %d:\n%s", len(lines), out)
	}
	if tb.Rows() != 3 {
		t.Errorf("Rows = %d", tb.Rows())
	}
	// Columns aligned: header and rows share the name-column width.
	if !strings.HasPrefix(lines[5], "beta-longer") {
		t.Errorf("row order or format wrong: %q", lines[5])
	}
}

func TestPercentages(t *testing.T) {
	var buf bytes.Buffer
	err := Percentages(&buf, "Distribution of computational time", map[string]float64{
		"collide": 39, "sort": 27, "select": 20, "move": 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("line count: %d", len(lines))
	}
	// Sorted descending: collide first.
	if !strings.Contains(lines[1], "collide") || !strings.Contains(lines[1], "39.0%") {
		t.Errorf("first row %q", lines[1])
	}
	if !strings.Contains(lines[4], "move") {
		t.Errorf("last row %q", lines[4])
	}
}

func TestPercentagesEmptyTotal(t *testing.T) {
	var buf bytes.Buffer
	if err := Percentages(&buf, "empty", map[string]float64{"a": 0}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.0%") {
		t.Errorf("zero total must render 0%%")
	}
}

func TestSeries(t *testing.T) {
	var buf bytes.Buffer
	err := Series(&buf, "Fig 7", "particles", "usec/particle/step",
		[]float64{32768, 65536}, []float64{10.5, 9.2})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "32768") || !strings.Contains(out, "9.2") {
		t.Errorf("series content:\n%s", out)
	}
}
