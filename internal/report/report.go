// Package report formats the tables and series the experiment harness
// prints: fixed-width tables with headers, percentage breakdowns, and
// aligned numeric series — the textual equivalents of the paper's figures
// and in-text tables.
package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Table accumulates rows under a header and renders them aligned.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with %.4g.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			//dsmclint:allow float-eq exact integer-valuedness test for formatting; Trunc returns the same bits for integral v
			if v == math.Trunc(v) && math.Abs(v) < 1e15 {
				row[i] = fmt.Sprintf("%.0f", v)
			} else {
				row[i] = fmt.Sprintf("%.4g", v)
			}
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Percentages renders a named breakdown as "name pct%" lines sorted by
// descending share, matching the paper's in-text phase distribution.
func Percentages(w io.Writer, title string, parts map[string]float64) error {
	var total float64
	for _, v := range parts {
		total += v
	}
	type kv struct {
		k string
		v float64
	}
	items := make([]kv, 0, len(parts))
	for k, v := range parts {
		items = append(items, kv{k, v})
	}
	sort.Slice(items, func(i, j int) bool {
		//dsmclint:allow float-eq sort tie-break on tallied counts; equal keys carry identical bits
		if items[i].v != items[j].v {
			return items[i].v > items[j].v
		}
		return items[i].k < items[j].k
	})
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	for _, it := range items {
		pct := 0.0
		if total > 0 {
			pct = 100 * it.v / total
		}
		fmt.Fprintf(&b, "  %-16s %5.1f%%\n", it.k, pct)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Series renders x/y pairs as aligned columns, the text form of a figure.
func Series(w io.Writer, title, xName, yName string, xs, ys []float64) error {
	t := NewTable(title, xName, yName)
	for i := range xs {
		t.AddRow(xs[i], ys[i])
	}
	return t.Render(w)
}
