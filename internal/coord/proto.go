// Package coord distributes a sweep's job DAG across worker processes
// and survives their failure. It sits above the public dsmc API — the
// coordinator enumerates jobs with dsmc.SweepJobs, pull-based workers
// execute them with dsmc.RunSweepJob, and the coordinator assembles the
// uploaded outputs with dsmc.AssembleSweepResult — so a distributed
// sweep shares every line of lowering, seeding, stepping and
// aggregation code with the in-process path and its result is
// bit-identical to a single-process run.
//
// Protocol (modeled on dagu's coordinator protocol: workers poll for
// work, the coordinator dispatches leases, heartbeats carry liveness and
// step progress, a workers endpoint feeds status):
//
//	POST /coord/v1/poll        {"worker": id}        → 200 lease | 204 no work
//	POST /coord/v1/heartbeat   {worker, sweep, job, lease, steps_done, steps_total}
//	                                                 → {"status": "ok" | "abandon"}
//	GET  /coord/v1/checkpoint?sweep=&job=&lease=     → 200 bytes | 204 none
//	PUT  /coord/v1/checkpoint?sweep=&job=&lease=     → 204 (idempotent)
//	POST /coord/v1/complete?sweep=&job=&lease=       → 204 (idempotent; body: binary output)
//	POST /coord/v1/release?sweep=&job=&lease=        → 204 (graceful hand-back)
//	POST /coord/v1/fail?sweep=&job=&lease=           → 204 (body: {"error": msg})
//	GET  /coord/v1/workers                           → {"workers": [...]}
//
// Failure model: a lease that misses its heartbeats expires and the job
// is redispatched to the next polling worker, which resumes from the
// last uploaded checkpoint — because seeds and accumulators are
// deterministic, the retried job contributes the same bits as the
// never-failed run. A stale worker (its lease expired while it kept
// computing) gets 410 on every mutation, so redelivered uploads and
// completions are rejected idempotently and can never corrupt a
// redispatched job's state. A job that exhausts its dispatch budget is
// failed permanently and the failure skips forward through the DAG: the
// point's aggregation and every remaining undispatched job are marked
// skipped and the sweep reports the first error, exactly like the
// in-process executor.
package coord

import (
	"encoding/json"
	"errors"

	"dsmc"
	"dsmc/internal/obs"
	"dsmc/internal/store"
)

// Sentinel errors of the coordinator API. The HTTP layer maps them to
// status codes and the client maps the codes back, so in-process and
// remote queues behave identically.
var (
	// ErrStaleLease rejects a mutation under a lease that is no longer
	// the job's current lease — expired, released, superseded by a
	// redispatch, or on a sweep that already failed. The rejection is
	// idempotent: repeating the call changes nothing on either side, and
	// the worker's reaction is always "abandon the job".
	ErrStaleLease = errors.New("coord: stale lease")
	// ErrUnknown rejects references to sweeps or jobs the coordinator
	// does not track.
	ErrUnknown = errors.New("coord: unknown sweep or job")
)

// Lease is a dispatched job: the sweep spec to lower, the (point,
// replica) coordinates to run, and the lease the worker must present on
// every subsequent call. TTLMillis tells the worker how often it must
// heartbeat to keep the lease alive (heartbeat interval ≪ TTL).
type Lease struct {
	Sweep         string          `json:"sweep"`
	Job           string          `json:"job"`
	Point         int             `json:"point"`
	Replica       int             `json:"replica"`
	StepsTotal    int             `json:"steps_total"`
	LeaseID       string          `json:"lease_id"`
	TTLMillis     int64           `json:"ttl_ms"`
	HasCheckpoint bool            `json:"has_checkpoint"`
	Spec          json.RawMessage `json:"spec"`
}

// Heartbeat carries a worker's liveness and step progress for its
// current lease, plus two optional telemetry piggybacks: a compact
// snapshot of the worker's engine instruments (re-emitted by the
// coordinator's /metrics with a worker label) and the recent
// flight-recorder batch (fanned out as "trace" events). Both ride the
// heartbeat the worker already sends, so telemetry costs no extra
// round-trips and stops flowing exactly when liveness does.
type Heartbeat struct {
	Worker     string `json:"worker"`
	Sweep      string `json:"sweep"`
	Job        string `json:"job"`
	Lease      string `json:"lease"`
	StepsDone  int    `json:"steps_done"`
	StepsTotal int    `json:"steps_total"`

	Metrics []obs.Sample     `json:"metrics,omitempty"`
	Trace   []dsmc.StepTrace `json:"trace,omitempty"`
}

// Heartbeat responses.
const (
	// HBOK acknowledges the heartbeat and renews the lease.
	HBOK = "ok"
	// HBAbandon tells the worker its lease is gone (expired and possibly
	// redispatched): stop working on the job and poll for new work.
	HBAbandon = "abandon"
)

// WorkerStatus is one row of the workers endpoint: the operator's view
// of the fleet.
type WorkerStatus struct {
	ID         string `json:"id"`
	State      string `json:"state"` // "running" | "idle" | "lost"
	Sweep      string `json:"sweep,omitempty"`
	Job        string `json:"job,omitempty"`
	StepsDone  int    `json:"steps_done,omitempty"`
	StepsTotal int    `json:"steps_total,omitempty"`
	// LastSeenMillis is the age of the last contact, in milliseconds.
	LastSeenMillis int64 `json:"last_seen_ms"`
}

// The binary replica-output codec (the DSMCOUT1 frame) lives in
// internal/store: the coordinator's upload format and the result
// store's at-rest artifact format are deliberately one frame, so a
// worker's completion body can be published to the store byte-for-byte.
// JSON cannot carry the outputs — ShockAngleDeg is NaN for scenarios
// without a wedge — and the sweep's bit-identity guarantee makes
// "almost the same float" a corruption, so outputs travel as raw
// IEEE-754 bits with a checksum trailer. The wrappers here convert at
// the public-type boundary.

// EncodeOutput serializes a replica output bit-exactly.
func EncodeOutput(o *dsmc.ReplicaOutput) []byte {
	return store.EncodeOutput(&store.Output{
		Fields:        o.Fields,
		ShockAngleDeg: o.ShockAngleDeg,
		Collisions:    o.Collisions,
		NFlow:         o.NFlow,
	})
}

// DecodeOutput parses an encoded replica output, verifying the checksum
// before trusting any of it.
func DecodeOutput(data []byte) (*dsmc.ReplicaOutput, error) {
	o, err := store.DecodeOutput(data)
	if err != nil {
		return nil, err
	}
	return &dsmc.ReplicaOutput{
		Fields:        o.Fields,
		ShockAngleDeg: o.ShockAngleDeg,
		Collisions:    o.Collisions,
		NFlow:         o.NFlow,
	}, nil
}
