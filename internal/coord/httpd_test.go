package coord

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dsmc"
)

// TestHTTPTransport drives real workers through the wire protocol —
// HTTPQueue against the coordinator's Handler — with checkpoints on
// disk, and checks bit-identity against the in-process run plus the
// protocol's error mapping for stale leases.
func TestHTTPTransport(t *testing.T) {
	spec := tinySpec()
	want, err := dsmc.RunSweep(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)

	done := make(chan struct {
		res *dsmc.SweepResult
		err error
	}, 1)
	c := New(Config{DataDir: t.TempDir(), LeaseTTL: 30 * time.Second})
	err = c.AddSweep("sw", spec, func(res *dsmc.SweepResult, err error) {
		done <- struct {
			res *dsmc.SweepResult
			err error
		}{res, err}
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	q := &HTTPQueue{Base: ts.URL}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w := NewWorker(WorkerConfig{
			ID:             []string{"h1", "h2"}[i],
			Queue:          q,
			HeartbeatEvery: 50 * time.Millisecond,
			PollEvery:      10 * time.Millisecond,
			RetryBase:      5 * time.Millisecond,
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}

	select {
	case fin := <-done:
		if fin.err != nil {
			t.Fatal(fin.err)
		}
		gotJSON, _ := json.Marshal(fin.res)
		if string(gotJSON) != string(wantJSON) {
			t.Fatal("HTTP-distributed sweep result differs from in-process run")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("HTTP-distributed sweep never finished")
	}
	cancel()
	wg.Wait()

	// Wire-level error mapping: a bogus lease is 410 → ErrStaleLease, an
	// unknown sweep is 404 → ErrUnknown.
	bogus := &Lease{Sweep: "sw", Job: "rarefied/r000", LeaseID: "l999999"}
	if err := q.SaveCheckpoint(context.Background(), bogus, []byte("x")); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("bogus lease upload: got %v, want ErrStaleLease", err)
	}
	missing := &Lease{Sweep: "nope", Job: "rarefied/r000", LeaseID: "l1"}
	if err := q.SaveCheckpoint(context.Background(), missing, []byte("x")); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown sweep upload: got %v, want ErrUnknown", err)
	}
}
