package coord

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"dsmc"
)

// tinySpec is a fast two-replica, one-point sweep used across tests.
func tinySpec() dsmc.SweepSpec {
	cfg := dsmc.PaperConfig()
	cfg.GridNX, cfg.GridNY = 48, 24
	cfg.Wedge = &dsmc.WedgeSpec{LeadX: 10, Base: 12, AngleDeg: 30}
	cfg.ParticlesPerCell = 3
	cfg.Seed = 7
	return dsmc.SweepSpec{
		Name:            "coord-test",
		Base:            cfg,
		Points:          []dsmc.SweepPoint{{Name: "rarefied"}},
		Replicas:        2,
		WarmSteps:       2,
		SampleSteps:     6,
		CheckpointEvery: 2,
	}
}

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}
func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

// eventLog records emitted events thread-safely.
type eventLog struct {
	mu     sync.Mutex
	events []dsmc.SweepEvent
}

func (l *eventLog) add(_ string, e dsmc.SweepEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, e)
}

func (l *eventLog) count(typ, job string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.events {
		if e.Type == typ && (job == "" || e.Job == job) {
			n++
		}
	}
	return n
}

// testStore adapts coordinator checkpoint calls into a JobCheckpoint for
// driving RunSweepJob by hand under a specific lease.
type testStore struct {
	c *Coordinator
	l *Lease
}

func (s testStore) Load() ([]byte, error) { return s.c.LoadCheckpoint(s.l.Sweep, s.l.Job, s.l.LeaseID) }
func (s testStore) Save(data []byte) error {
	return s.c.SaveCheckpoint(s.l.Sweep, s.l.Job, s.l.LeaseID, data)
}
func (s testStore) Discard() error { return nil }

func runLeasedJob(t *testing.T, c *Coordinator, l *Lease) *dsmc.ReplicaOutput {
	t.Helper()
	var spec dsmc.SweepSpec
	if err := json.Unmarshal(l.Spec, &spec); err != nil {
		t.Fatalf("lease spec: %v", err)
	}
	out, err := dsmc.RunSweepJob(context.Background(), spec, l.Point, l.Replica,
		dsmc.SweepJobIO{Checkpoint: testStore{c, l}})
	if err != nil {
		t.Fatalf("run job %s: %v", l.Job, err)
	}
	return out
}

func mustPoll(t *testing.T, c *Coordinator, worker string) *Lease {
	t.Helper()
	l, err := c.Poll(worker)
	if err != nil {
		t.Fatalf("poll %s: %v", worker, err)
	}
	if l == nil {
		t.Fatalf("poll %s: expected a lease, got none", worker)
	}
	return l
}

// TestOutputCodecRoundTrip checks the binary codec is bit-exact,
// including the NaN shock angle JSON cannot carry.
func TestOutputCodecRoundTrip(t *testing.T) {
	spec := tinySpec()
	out, err := dsmc.RunSweepJob(context.Background(), spec, 0, 0, dsmc.SweepJobIO{})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeOutput(EncodeOutput(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Fields) != len(out.Fields) {
		t.Fatalf("field count %d != %d", len(dec.Fields), len(out.Fields))
	}
	for name, col := range out.Fields {
		got := dec.Fields[name]
		if len(got) != len(col) {
			t.Fatalf("field %s length %d != %d", name, len(got), len(col))
		}
		for i := range col {
			if got[i] != col[i] {
				t.Fatalf("field %s[%d]: %v != %v", name, i, got[i], col[i])
			}
		}
	}
	if dec.Collisions != out.Collisions || dec.NFlow != out.NFlow {
		t.Fatalf("diagnostics differ: %+v vs %+v", dec, out)
	}
	// NaN round-trip: same bit pattern counts as equal here.
	if (dec.ShockAngleDeg == dec.ShockAngleDeg) != (out.ShockAngleDeg == out.ShockAngleDeg) {
		t.Fatalf("shock angle NaN-ness differs")
	}

	// Corruption must be detected, not decoded.
	enc := EncodeOutput(out)
	enc[len(enc)/2] ^= 0x40
	if _, err := DecodeOutput(enc); err == nil {
		t.Fatal("corrupted output decoded without error")
	}
}

// TestLeaseExpiryEdgeCases drives the fake clock through the awkward
// windows: a heartbeat landing just after expiry, uploads and
// completions from the expired lease, and duplicate completion from the
// winning lease.
func TestLeaseExpiryEdgeCases(t *testing.T) {
	clk := newFakeClock()
	var log eventLog
	c := New(Config{LeaseTTL: 10 * time.Second, MaxAttempts: 3, OnEvent: log.add, now: clk.now})
	if err := c.AddSweep("sw", tinySpec(), nil); err != nil {
		t.Fatal(err)
	}

	l1 := mustPoll(t, c, "w1")
	if status, _ := c.HandleHeartbeat(Heartbeat{Worker: "w1", Sweep: l1.Sweep, Job: l1.Job, Lease: l1.LeaseID}); status != HBOK {
		t.Fatalf("live heartbeat: got %q", status)
	}

	// The lease expires; the worker's next heartbeat arrives just after.
	clk.advance(11 * time.Second)
	status, err := c.HandleHeartbeat(Heartbeat{Worker: "w1", Sweep: l1.Sweep, Job: l1.Job, Lease: l1.LeaseID})
	if err != nil || status != HBAbandon {
		t.Fatalf("post-expiry heartbeat: got %q, %v; want abandon", status, err)
	}
	// Stale uploads and completions are rejected idempotently.
	if err := c.SaveCheckpoint(l1.Sweep, l1.Job, l1.LeaseID, []byte("x")); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("stale upload: got %v, want ErrStaleLease", err)
	}
	if err := c.Complete(l1.Sweep, l1.Job, l1.LeaseID, &dsmc.ReplicaOutput{}); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("stale complete: got %v, want ErrStaleLease", err)
	}
	if n := log.count("job-lost", l1.Job); n != 1 {
		t.Fatalf("job-lost events for %s: got %d, want 1", l1.Job, n)
	}

	// The job redispatches to another worker, which completes it.
	l2 := mustPoll(t, c, "w2")
	if l2.Job != l1.Job {
		t.Fatalf("redispatch: got %s, want %s", l2.Job, l1.Job)
	}
	if l2.LeaseID == l1.LeaseID {
		t.Fatal("redispatch reused the lease ID")
	}
	out := runLeasedJob(t, c, l2)
	if err := c.Complete(l2.Sweep, l2.Job, l2.LeaseID, out); err != nil {
		t.Fatalf("complete: %v", err)
	}
	// Duplicate completion from the winning lease is acked; the loser
	// still gets a stale rejection.
	if err := c.Complete(l2.Sweep, l2.Job, l2.LeaseID, out); err != nil {
		t.Fatalf("duplicate complete: %v", err)
	}
	if err := c.Complete(l1.Sweep, l1.Job, l1.LeaseID, out); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("loser complete: got %v, want ErrStaleLease", err)
	}
	if n := log.count("job-done", l2.Job); n != 1 {
		t.Fatalf("job-done events: got %d, want 1", n)
	}
}

// TestDoubleDispatchPrevention: a leased job is never handed out again
// before its lease expires, and an idle coordinator answers "no work".
func TestDoubleDispatchPrevention(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{LeaseTTL: 10 * time.Second, now: clk.now})
	if err := c.AddSweep("sw", tinySpec(), nil); err != nil {
		t.Fatal(err)
	}

	l1 := mustPoll(t, c, "w1")
	l2 := mustPoll(t, c, "w2")
	if l1.Job == l2.Job {
		t.Fatalf("double dispatch: both workers got %s", l1.Job)
	}
	// Both replicas are leased; a third poll gets nothing, even repeated.
	for i := 0; i < 3; i++ {
		if l, _ := c.Poll("w3"); l != nil {
			t.Fatalf("poll with all jobs leased returned %s", l.Job)
		}
		clk.advance(time.Second)
	}
	// Heartbeats keep both leases alive across what would be an expiry.
	for i := 0; i < 3; i++ {
		clk.advance(6 * time.Second)
		for _, l := range []*Lease{l1, l2} {
			if status, _ := c.HandleHeartbeat(Heartbeat{Worker: "w", Sweep: l.Sweep, Job: l.Job, Lease: l.LeaseID}); status != HBOK {
				t.Fatalf("heartbeat lost lease %s", l.Job)
			}
		}
		if l, _ := c.Poll("w3"); l != nil {
			t.Fatalf("heartbeat-renewed job redispatched: %s", l.Job)
		}
	}
}

// TestRetryBudgetExhaustion: a job that keeps losing its lease fails
// permanently, the point's aggregate and undispatched jobs are skipped,
// and the sweep reports the first error.
func TestRetryBudgetExhaustion(t *testing.T) {
	clk := newFakeClock()
	var log eventLog
	done := make(chan error, 1)
	c := New(Config{LeaseTTL: 10 * time.Second, MaxAttempts: 2, OnEvent: log.add, now: clk.now})
	err := c.AddSweep("sw", tinySpec(), func(res *dsmc.SweepResult, err error) {
		if res != nil {
			done <- errors.New("got a result from a failed sweep")
			return
		}
		done <- err
	})
	if err != nil {
		t.Fatal(err)
	}

	first := mustPoll(t, c, "w1")
	for attempt := 1; ; attempt++ {
		clk.advance(11 * time.Second)
		l, _ := c.Poll("w1")
		if l == nil {
			break
		}
		if l.Job != first.Job {
			t.Fatalf("attempt %d dispatched %s, want %s", attempt, l.Job, first.Job)
		}
		if attempt > 4 {
			t.Fatal("job kept redispatching past its budget")
		}
	}

	if n := log.count("job-failed", first.Job); n != 1 {
		t.Fatalf("job-failed events: got %d, want 1", n)
	}
	agg := dsmc.AggregateJobID("rarefied")
	if n := log.count("job-skipped", agg); n != 1 {
		t.Fatalf("aggregate skip events: got %d, want 1", n)
	}
	if n := log.count("job-skipped", ""); n != 2 { // sibling replica + aggregate
		t.Fatalf("job-skipped events: got %d, want 2", n)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("failed sweep finished without an error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sweep never finished after failure")
	}
	// The failed sweep offers no more work.
	if l, _ := c.Poll("w9"); l != nil {
		t.Fatalf("failed sweep dispatched %s", l.Job)
	}
}

// TestRedispatchResumeBitIdentity is the heart of the failure model: a
// worker checkpoints, dies (lease expires), the job redispatches, the
// second worker resumes from the uploaded checkpoint — and the sweep's
// result is bit-identical to an uninterrupted in-process run.
func TestRedispatchResumeBitIdentity(t *testing.T) {
	spec := tinySpec()
	want, err := dsmc.RunSweep(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	clk := newFakeClock()
	done := make(chan struct {
		res *dsmc.SweepResult
		err error
	}, 1)
	c := New(Config{LeaseTTL: 10 * time.Second, now: clk.now})
	err = c.AddSweep("sw", spec, func(res *dsmc.SweepResult, err error) {
		done <- struct {
			res *dsmc.SweepResult
			err error
		}{res, err}
	})
	if err != nil {
		t.Fatal(err)
	}

	// Worker 1 leases r000, runs a few steps (uploading checkpoints),
	// then "crashes": its context dies and it never completes.
	l1 := mustPoll(t, c, "w1")
	var spec1 dsmc.SweepSpec
	if err := json.Unmarshal(l1.Spec, &spec1); err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	_, err = dsmc.RunSweepJob(ctx1, spec1, l1.Point, l1.Replica, dsmc.SweepJobIO{
		Checkpoint: testStore{c, l1},
		Progress: func(step, total int) {
			if step >= 4 {
				cancel1() // die mid-job, checkpoint already uploaded
			}
		},
	})
	cancel1()
	if err == nil {
		t.Fatal("crashed job reported success")
	}

	// Its lease lapses; the job redispatches with the checkpoint flagged.
	clk.advance(11 * time.Second)
	l2 := mustPoll(t, c, "w2")
	if l2.Job != l1.Job {
		t.Fatalf("redispatched %s, want %s", l2.Job, l1.Job)
	}
	if !l2.HasCheckpoint {
		t.Fatal("redispatched lease does not advertise the uploaded checkpoint")
	}
	if err := c.Complete(l2.Sweep, l2.Job, l2.LeaseID, runLeasedJob(t, c, l2)); err != nil {
		t.Fatal(err)
	}

	// The sibling replica runs normally.
	l3 := mustPoll(t, c, "w2")
	if err := c.Complete(l3.Sweep, l3.Job, l3.LeaseID, runLeasedJob(t, c, l3)); err != nil {
		t.Fatal(err)
	}

	select {
	case fin := <-done:
		if fin.err != nil {
			t.Fatal(fin.err)
		}
		gotJSON, err := json.Marshal(fin.res)
		if err != nil {
			t.Fatal(err)
		}
		if string(gotJSON) != string(wantJSON) {
			t.Fatal("redispatched+resumed sweep result differs from uninterrupted run")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sweep never finished")
	}
}

// TestWorkersEndToEnd runs real pull-workers against an in-process
// coordinator — one worker with injected upload failures (absorbed by
// retry/backoff) — and checks the assembled result is bit-identical to
// dsmc.RunSweep.
func TestWorkersEndToEnd(t *testing.T) {
	spec := tinySpec()
	want, err := dsmc.RunSweep(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)

	var log eventLog
	done := make(chan struct {
		res *dsmc.SweepResult
		err error
	}, 1)
	c := New(Config{LeaseTTL: 30 * time.Second, OnEvent: log.add})
	err = c.AddSweep("sw", spec, func(res *dsmc.SweepResult, err error) {
		done <- struct {
			res *dsmc.SweepResult
			err error
		}{res, err}
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		cfg := WorkerConfig{
			ID:             map[int]string{0: "flaky", 1: "steady"}[i],
			Queue:          LocalQueue{c},
			HeartbeatEvery: 50 * time.Millisecond,
			PollEvery:      10 * time.Millisecond,
			RetryBase:      5 * time.Millisecond,
		}
		if i == 0 {
			cfg.Chaos = Chaos{FailUploads: 2}
		}
		w := NewWorker(cfg)
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}

	select {
	case fin := <-done:
		if fin.err != nil {
			t.Fatal(fin.err)
		}
		gotJSON, _ := json.Marshal(fin.res)
		if string(gotJSON) != string(wantJSON) {
			t.Fatal("distributed sweep result differs from in-process run")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("distributed sweep never finished")
	}
	cancel()
	wg.Wait()

	if n := log.count("job-done", ""); n < 2 {
		t.Fatalf("job-done events: got %d, want >= 2", n)
	}
	ws := c.Workers()
	if len(ws) != 2 {
		t.Fatalf("worker fleet: got %d, want 2", len(ws))
	}
}

// TestGracefulReleaseResume: cancelling a worker mid-job checkpoints,
// releases the lease without burning retry budget, and a second worker
// resumes to a bit-identical result.
func TestGracefulReleaseResume(t *testing.T) {
	spec := tinySpec()
	spec.SampleSteps = 60 // long enough to cancel mid-flight
	spec.CheckpointEvery = 2
	want, err := dsmc.RunSweep(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)

	var log eventLog
	done := make(chan struct {
		res *dsmc.SweepResult
		err error
	}, 1)
	c := New(Config{LeaseTTL: 30 * time.Second, OnEvent: log.add})
	err = c.AddSweep("sw", spec, func(res *dsmc.SweepResult, err error) {
		done <- struct {
			res *dsmc.SweepResult
			err error
		}{res, err}
	})
	if err != nil {
		t.Fatal(err)
	}

	// Worker 1 starts, then is shut down as soon as it reports progress.
	ctx1, cancel1 := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	w1 := NewWorker(WorkerConfig{
		ID: "leaver", Queue: localProgressQueue{LocalQueue{c}, func(hb Heartbeat) {
			if hb.StepsDone >= 4 {
				once.Do(func() { close(started) })
			}
		}},
		HeartbeatEvery: 20 * time.Millisecond, PollEvery: 5 * time.Millisecond,
		RetryBase: 5 * time.Millisecond,
	})
	w1done := make(chan struct{})
	go func() {
		defer close(w1done)
		w1.Run(ctx1)
	}()
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("worker 1 never made progress")
	}
	cancel1()
	select {
	case <-w1done:
	case <-time.After(30 * time.Second):
		t.Fatal("worker 1 never drained")
	}
	if n := log.count("job-released", ""); n != 1 {
		t.Fatalf("job-released events: got %d, want 1", n)
	}

	// Worker 2 finishes the sweep, resuming the released job.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	w2 := NewWorker(WorkerConfig{
		ID: "finisher", Queue: LocalQueue{c},
		HeartbeatEvery: 20 * time.Millisecond, PollEvery: 5 * time.Millisecond,
		RetryBase: 5 * time.Millisecond,
	})
	w2done := make(chan struct{})
	go func() {
		defer close(w2done)
		w2.Run(ctx2)
	}()

	select {
	case fin := <-done:
		if fin.err != nil {
			t.Fatal(fin.err)
		}
		gotJSON, _ := json.Marshal(fin.res)
		if string(gotJSON) != string(wantJSON) {
			t.Fatal("released+resumed sweep result differs from uninterrupted run")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("sweep never finished after release")
	}
	cancel2()
	<-w2done
}

// localProgressQueue lets a test observe heartbeats flowing through a
// LocalQueue.
type localProgressQueue struct {
	LocalQueue
	onHB func(Heartbeat)
}

func (q localProgressQueue) Heartbeat(ctx context.Context, hb Heartbeat) (string, error) {
	q.onHB(hb)
	return q.LocalQueue.Heartbeat(ctx, hb)
}
