package coord

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"dsmc"
	"dsmc/internal/obs"
	"dsmc/internal/store"
)

// Config parameterizes a Coordinator. The zero value works for tests:
// in-memory checkpoints, 15s leases, 3 dispatch attempts per job.
type Config struct {
	// DataDir, when set, persists uploaded checkpoints to
	// <DataDir>/<sweep>/ckpt/job-sNNN-rNNN.ckpt — the exact layout the
	// in-process executor uses, so a coordinator restarted over an old
	// data directory resumes from the checkpoints either path wrote.
	// When empty, checkpoints are held in memory.
	DataDir string
	// LeaseTTL is how long a lease survives without a heartbeat before
	// the job is taken away and redispatched (default 15s).
	LeaseTTL time.Duration
	// MaxAttempts bounds dispatches per job; when a job's lease expires
	// or a worker reports an error and the budget is spent, the job fails
	// permanently and the failure propagates through the DAG (default 3).
	MaxAttempts int
	// Store, when non-nil, memoizes jobs against the content-addressed
	// result store: a sweep's jobs are satisfied from finished artifacts
	// at registration (never dispatched), every accepted completion is
	// published under the job's store key, and a publish immediately
	// completes matching pending jobs of every other registered sweep.
	// Reads are checksum-verified by the store; publishes of conflicting
	// bytes under a live key are refused and counted, never silently
	// accepted.
	Store *store.Store
	// OnEvent, when non-nil, observes sweep progress with the same event
	// vocabulary as dsmc.RunSweep, plus "job-lost" (lease expired or
	// worker-reported error with budget remaining; the job will be
	// redispatched) and "job-released" (worker handed the job back
	// gracefully, e.g. during shutdown; no attempt consumed). Calls are
	// serialized.
	OnEvent func(sweepID string, e dsmc.SweepEvent)
	// now is the test clock hook.
	now func() time.Time
}

// Coordinator owns the job DAGs of one or more sweeps and hands jobs to
// pull-based workers under leases. All state transitions happen under
// one mutex; expiry is evaluated lazily at the top of every public call,
// so no background goroutine is needed and tests can drive the clock.
type Coordinator struct {
	cfg Config

	mu       sync.Mutex
	order    []string // sweep IDs in arrival order (dispatch priority)
	sweeps   map[string]*sweepState
	workers  map[string]*workerState
	leaseSeq uint64
}

type jobPhase int

const (
	jobPending jobPhase = iota
	jobLeased
	jobDone
	jobFailed
	jobSkipped
)

type job struct {
	id         string
	point      int
	replica    int
	stepsTotal int
	// storeKey is the job's content-addressed result key (from
	// dsmc.SweepJobs); empty disables memoization for the job.
	storeKey string

	phase    jobPhase
	attempts int // dispatches consumed against MaxAttempts

	// dispatchedAt stamps the current lease's grant, feeding the
	// dispatch-to-complete latency histogram when the job completes.
	dispatchedAt time.Time

	// lease is the current lease while jobLeased; after jobDone it keeps
	// the winning lease ID so a redelivered Complete from the winner is
	// acked while any other lease is rejected.
	lease       string
	leaseWorker string
	expires     time.Time
	stepsDone   int
	heartbeats  int // heartbeats seen under the current lease

	output *dsmc.ReplicaOutput
	ckpt   []byte // in-memory checkpoint when Config.DataDir is unset
}

type sweepState struct {
	id      string
	spec    dsmc.SweepSpec
	specRaw json.RawMessage
	pool    int // max in-flight leases (0 = unbounded)

	jobs   []*job // (point, replica) order — dispatch order
	byID   map[string]*job
	points [][]*job // jobs grouped by point index
	names  []string // point names, for aggregate events

	aggDone  []bool // per point: aggregate event emitted
	failed   bool
	firstErr string
	finished bool
	onDone   func(*dsmc.SweepResult, error)
}

type workerState struct {
	id         string
	lastSeen   time.Time
	sweep, job string // current lease, if any
	stepsDone  int
	stepsTotal int
	// metrics is the worker's last heartbeat-piggybacked instrument
	// snapshot, re-emitted by WriteMetrics under dsmc_fleet_*.
	metrics []obs.Sample
}

// New builds a Coordinator.
func New(cfg Config) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 15 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return &Coordinator{
		cfg:     cfg,
		sweeps:  make(map[string]*sweepState),
		workers: make(map[string]*workerState),
	}
}

// AddSweep registers a sweep's job DAG for dispatch. onDone, when
// non-nil, is called exactly once from a fresh goroutine when the sweep
// finishes: with the assembled result on success, or with the first
// error once the failure has propagated through the DAG.
func (c *Coordinator) AddSweep(id string, spec dsmc.SweepSpec, onDone func(*dsmc.SweepResult, error)) error {
	jobs, err := dsmc.SweepJobs(spec)
	if err != nil {
		return err
	}
	// The dispatched spec must not leak coordinator-local paths: a worker
	// handed ResultStoreDir would open (or create) that directory on its
	// own filesystem. Memoization is coordinator-side; workers just run.
	wire := spec
	wire.ResultStoreDir = ""
	raw, err := json.Marshal(wire)
	if err != nil {
		return err
	}
	st := &sweepState{
		id:      id,
		spec:    spec,
		specRaw: raw,
		pool:    spec.Pool,
		byID:    make(map[string]*job, len(jobs)),
		onDone:  onDone,
	}
	for _, j := range jobs {
		tj := &job{id: j.ID, point: j.Point, replica: j.Replica, stepsTotal: j.StepsTotal, storeKey: j.StoreKey}
		st.jobs = append(st.jobs, tj)
		st.byID[j.ID] = tj
		for len(st.points) <= j.Point {
			st.points = append(st.points, nil)
			st.names = append(st.names, "")
		}
		st.points[j.Point] = append(st.points[j.Point], tj)
	}
	st.aggDone = make([]bool, len(st.points))
	for _, j := range jobs {
		if st.names[j.Point] == "" {
			// Job IDs are "<point-name>/rNNN"; recover the point name once.
			st.names[j.Point] = j.ID[:len(j.ID)-len(fmt.Sprintf("/r%03d", j.Replica))]
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.sweeps[id]; dup {
		return fmt.Errorf("coord: sweep %q already registered", id)
	}
	c.sweeps[id] = st
	c.order = append(c.order, id)
	// Memoization pass: satisfy every job the store already holds before
	// anything dispatches, so overlapping or restarted sweeps never
	// re-dispatch finished work. Runs once per sweep under the lock — the
	// 25ms poll loop never touches the store.
	if c.cfg.Store != nil {
		touched := make([]bool, len(st.points))
		any := false
		for _, j := range st.jobs {
			if c.memoLocked(st, j) {
				touched[j.point] = true
				any = true
			}
		}
		for pt, t := range touched {
			if t {
				c.maybeAggregateLocked(st, pt)
			}
		}
		if any {
			c.maybeFinishLocked(st)
		}
	}
	return nil
}

// Poll hands the worker the next dispatchable job, or nil when no work
// is available. Jobs dispatch in sweep-arrival then (point, replica)
// order; a sweep with Pool > 0 holds at most Pool in-flight leases.
func (c *Coordinator) Poll(workerID string) (*Lease, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	c.expireLocked(now)
	c.touchWorker(workerID, now)

	for _, id := range c.order {
		st := c.sweeps[id]
		if st.finished || st.failed {
			continue
		}
		inflight := 0
		for _, j := range st.jobs {
			if j.phase == jobLeased {
				inflight++
			}
		}
		if st.pool > 0 && inflight >= st.pool {
			continue
		}
		for _, j := range st.jobs {
			if j.phase != jobPending {
				continue
			}
			c.leaseSeq++
			j.phase = jobLeased
			j.attempts++
			j.lease = fmt.Sprintf("l%06d", c.leaseSeq)
			j.leaseWorker = workerID
			j.expires = now.Add(c.cfg.LeaseTTL)
			j.heartbeats = 0
			j.dispatchedAt = now
			mLeaseGrants.Inc()
			w := c.workers[workerID]
			w.sweep, w.job = st.id, j.id
			w.stepsDone, w.stepsTotal = j.stepsDone, j.stepsTotal
			c.emitLocked(st.id, dsmc.SweepEvent{Type: "job-started", Job: j.id})
			return &Lease{
				Sweep:         st.id,
				Job:           j.id,
				Point:         j.point,
				Replica:       j.replica,
				StepsTotal:    j.stepsTotal,
				LeaseID:       j.lease,
				TTLMillis:     c.cfg.LeaseTTL.Milliseconds(),
				HasCheckpoint: c.hasCheckpoint(st, j),
				Spec:          st.specRaw,
			}, nil
		}
	}
	return nil, nil
}

// HandleHeartbeat renews the lease and records progress, or tells a
// stale worker to abandon the job.
func (c *Coordinator) HandleHeartbeat(hb Heartbeat) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	c.expireLocked(now)
	c.touchWorker(hb.Worker, now)
	mHeartbeats.Inc()
	if len(hb.Metrics) > 0 {
		c.workers[hb.Worker].metrics = hb.Metrics
	}

	st, j, err := c.lookupLocked(hb.Sweep, hb.Job)
	if err != nil {
		mStaleRejects.Inc()
		return HBAbandon, nil // sweep evicted or unknown: stop working
	}
	if j.phase != jobLeased || j.lease != hb.Lease {
		mStaleRejects.Inc()
		return HBAbandon, nil
	}
	j.expires = now.Add(c.cfg.LeaseTTL)
	j.heartbeats++
	w := c.workers[hb.Worker]
	w.sweep, w.job = st.id, j.id
	w.stepsDone, w.stepsTotal = hb.StepsDone, hb.StepsTotal
	// Emit progress on change, and unconditionally on a lease's first
	// heartbeat so the event stream always shows a dispatched job moving.
	if hb.StepsDone != j.stepsDone || j.heartbeats == 1 {
		j.stepsDone = hb.StepsDone
		c.emitLocked(st.id, dsmc.SweepEvent{
			Type: "job-progress", Job: j.id, Scenario: st.names[j.point], Replica: j.replica,
			StepsDone: hb.StepsDone, StepsTotal: j.stepsTotal,
		})
	}
	// A trace batch from the live lease holder fans out as a "trace"
	// event — the flight-recorder feed. Batches from stale leases never
	// reach here, so a redispatched job's recorder shows one worker's
	// timeline at a time.
	if len(hb.Trace) > 0 {
		c.emitLocked(st.id, dsmc.SweepEvent{
			Type: "trace", Job: j.id, Scenario: st.names[j.point], Replica: j.replica,
			Trace: hb.Trace,
		})
	}
	return HBOK, nil
}

// SaveCheckpoint stores a job's checkpoint upload and renews the lease.
// Saves are idempotent (last write wins); a stale lease gets
// ErrStaleLease and must abandon the job.
func (c *Coordinator) SaveCheckpoint(sweep, jobID, lease string, data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	c.expireLocked(now)

	st, j, err := c.lookupLocked(sweep, jobID)
	if err != nil {
		return err
	}
	if j.phase != jobLeased || j.lease != lease {
		mStaleRejects.Inc()
		return ErrStaleLease
	}
	if c.cfg.DataDir == "" {
		j.ckpt = append([]byte(nil), data...)
	} else {
		path := c.ckptPath(st, j)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		if err := atomicWriteFile(path, data); err != nil {
			return err
		}
	}
	j.expires = now.Add(c.cfg.LeaseTTL)
	return nil
}

// LoadCheckpoint returns the job's last uploaded checkpoint (nil when
// none) to the current lease holder.
func (c *Coordinator) LoadCheckpoint(sweep, jobID, lease string) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(c.cfg.now())

	st, j, err := c.lookupLocked(sweep, jobID)
	if err != nil {
		return nil, err
	}
	if j.phase != jobLeased || j.lease != lease {
		mStaleRejects.Inc()
		return nil, ErrStaleLease
	}
	if c.cfg.DataDir == "" {
		return append([]byte(nil), j.ckpt...), nil
	}
	data, err := os.ReadFile(c.ckptPath(st, j))
	if os.IsNotExist(err) {
		return nil, nil
	}
	return data, err
}

// Complete records a job's output. Idempotent: a redelivered Complete
// under the winning lease is acked; any other lease gets ErrStaleLease.
func (c *Coordinator) Complete(sweep, jobID, lease string, out *dsmc.ReplicaOutput) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	c.expireLocked(now)

	st, j, err := c.lookupLocked(sweep, jobID)
	if err != nil {
		return err
	}
	if j.phase == jobDone && j.lease == lease {
		return nil // duplicate delivery of the winning completion
	}
	if j.phase != jobLeased || j.lease != lease {
		mStaleRejects.Inc()
		return ErrStaleLease
	}
	j.phase = jobDone
	j.stepsDone = j.stepsTotal
	j.output = out
	j.ckpt = nil
	mCompletions.Inc()
	if !j.dispatchedAt.IsZero() {
		mJobSeconds.Observe(now.Sub(j.dispatchedAt).Seconds())
	}
	c.clearWorkerJob(j.leaseWorker, now)
	c.emitLocked(st.id, dsmc.SweepEvent{Type: "job-done", Job: j.id})
	c.maybeAggregateLocked(st, j.point)
	c.maybeFinishLocked(st)
	// Publish the accepted output to the result store and immediately
	// satisfy matching pending jobs of every other registered sweep. The
	// publish sits behind the lease fence above, so only the winning
	// completion of a redispatched job reaches the store; racing writers
	// of the same key must therefore produce identical bytes, which Put
	// verifies rather than assumes (a conflict is refused and counted).
	if c.cfg.Store != nil && j.storeKey != "" {
		_, _ = c.cfg.Store.Put(j.storeKey, EncodeOutput(out))
		c.satisfyOthersLocked(st.id, j.storeKey)
	}
	return nil
}

// Release hands a job back gracefully (worker shutdown): the job returns
// to the queue without consuming a dispatch attempt, and the next worker
// resumes from the last uploaded checkpoint.
func (c *Coordinator) Release(sweep, jobID, lease string, stepsDone int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	c.expireLocked(now)

	st, j, err := c.lookupLocked(sweep, jobID)
	if err != nil {
		return err
	}
	if j.phase != jobLeased || j.lease != lease {
		mStaleRejects.Inc()
		return ErrStaleLease
	}
	mReleases.Inc()
	j.phase = jobPending
	j.attempts-- // voluntary hand-back does not burn retry budget
	j.lease = ""
	j.stepsDone = stepsDone
	c.clearWorkerJob(j.leaseWorker, now)
	j.leaseWorker = ""
	c.emitLocked(st.id, dsmc.SweepEvent{Type: "job-released", Job: j.id, StepsDone: stepsDone, StepsTotal: j.stepsTotal})
	return nil
}

// Fail records a worker-reported job error. With budget remaining the
// job is requeued; otherwise it fails permanently and the failure
// propagates through the sweep's DAG.
func (c *Coordinator) Fail(sweep, jobID, lease, msg string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	c.expireLocked(now)

	st, j, err := c.lookupLocked(sweep, jobID)
	if err != nil {
		return err
	}
	if j.phase != jobLeased || j.lease != lease {
		mStaleRejects.Inc()
		return ErrStaleLease
	}
	c.clearWorkerJob(j.leaseWorker, now)
	c.retryOrFailLocked(st, j, msg)
	return nil
}

// Workers reports the fleet as seen by the coordinator, sorted by ID.
// A worker silent for three lease TTLs is reported lost.
func (c *Coordinator) Workers() []WorkerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	c.expireLocked(now)

	out := make([]WorkerStatus, 0, len(c.workers))
	for _, w := range c.workers {
		ws := WorkerStatus{
			ID:             w.id,
			State:          "idle",
			Sweep:          w.sweep,
			Job:            w.job,
			StepsDone:      w.stepsDone,
			StepsTotal:     w.stepsTotal,
			LastSeenMillis: now.Sub(w.lastSeen).Milliseconds(),
		}
		if w.job != "" {
			ws.State = "running"
		}
		if now.Sub(w.lastSeen) > 3*c.cfg.LeaseTTL {
			ws.State = "lost"
		}
		out = append(out, ws)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// --- internals (all require c.mu) ---

// expireLocked sweeps every leased job whose heartbeat lapsed: the lease
// is revoked and the job retries or fails permanently. Deterministic
// iteration order (sweep arrival, then job order) keeps event sequences
// reproducible under a fake clock.
func (c *Coordinator) expireLocked(now time.Time) {
	for _, id := range c.order {
		st := c.sweeps[id]
		if st.finished {
			continue
		}
		for _, j := range st.jobs {
			if j.phase == jobLeased && now.After(j.expires) {
				mLeaseExpiries.Inc()
				c.clearWorkerJob(j.leaseWorker, now)
				c.retryOrFailLocked(st, j, fmt.Sprintf("lease expired (worker %s lost)", j.leaseWorker))
			}
		}
	}
}

// retryOrFailLocked revokes a job's lease after a loss or worker error:
// requeue while attempts remain, else fail permanently and propagate.
func (c *Coordinator) retryOrFailLocked(st *sweepState, j *job, msg string) {
	j.lease = ""
	j.leaseWorker = ""
	if j.attempts < c.cfg.MaxAttempts {
		mRetries.Inc()
		j.phase = jobPending
		c.emitLocked(st.id, dsmc.SweepEvent{
			Type: "job-lost", Job: j.id, StepsDone: j.stepsDone, StepsTotal: j.stepsTotal,
			Err: fmt.Sprintf("%s; attempt %d/%d, will redispatch", msg, j.attempts, c.cfg.MaxAttempts),
		})
		return
	}
	j.phase = jobFailed
	mJobFailures.Inc()
	err := fmt.Sprintf("%s; retry budget exhausted (%d attempts)", msg, j.attempts)
	c.emitLocked(st.id, dsmc.SweepEvent{Type: "job-failed", Job: j.id, Err: err})
	if !st.failed {
		st.failed = true
		st.firstErr = fmt.Sprintf("job %s: %s", j.id, err)
	}
	// Skip propagation, mirroring the in-process DAG executor: every
	// job not yet terminal is skipped (in-flight leases are revoked —
	// their workers learn via heartbeat/upload rejection), and so is
	// every point aggregation that never got to run.
	for _, o := range st.jobs {
		if o.phase == jobPending || o.phase == jobLeased {
			if o.phase == jobLeased {
				c.clearWorkerJob(o.leaseWorker, c.cfg.now())
			}
			o.phase = jobSkipped
			o.lease = ""
			o.leaseWorker = ""
			c.emitLocked(st.id, dsmc.SweepEvent{Type: "job-skipped", Job: o.id})
		}
	}
	for pt, done := range st.aggDone {
		if !done {
			st.aggDone[pt] = true
			c.emitLocked(st.id, dsmc.SweepEvent{Type: "job-skipped", Job: dsmc.AggregateJobID(st.names[pt])})
		}
	}
	c.maybeFinishLocked(st)
}

// memoLocked tries to satisfy one pending job from the result store.
// On a verified hit the job completes without dispatch — its events are
// emitted so the stream matches a computed run's shape — but no
// completion counter fires: memoized work was not done here. A
// checksum-valid artifact that fails frame decode is quarantined via
// Reject so a recompute can replace it.
func (c *Coordinator) memoLocked(st *sweepState, j *job) bool {
	if c.cfg.Store == nil || j.storeKey == "" || j.phase != jobPending {
		return false
	}
	data, _, ok := c.cfg.Store.Get(j.storeKey)
	if !ok {
		return false
	}
	out, err := DecodeOutput(data)
	if err != nil {
		c.cfg.Store.Reject(j.storeKey)
		return false
	}
	j.phase = jobDone
	j.stepsDone = j.stepsTotal
	j.output = out
	j.ckpt = nil
	c.emitLocked(st.id, dsmc.SweepEvent{Type: "job-started", Job: j.id})
	c.emitLocked(st.id, dsmc.SweepEvent{Type: "job-done", Job: j.id})
	return true
}

// satisfyOthersLocked completes every other live sweep's pending jobs
// that share a just-published store key — the cross-sweep half of
// memoization: overlapping sweeps converge on one computation per key.
func (c *Coordinator) satisfyOthersLocked(origin, storeKey string) {
	for _, id := range c.order {
		if id == origin {
			continue
		}
		st := c.sweeps[id]
		if st.finished || st.failed {
			continue
		}
		touched := make([]bool, len(st.points))
		any := false
		for _, j := range st.jobs {
			if j.phase == jobPending && j.storeKey == storeKey && c.memoLocked(st, j) {
				touched[j.point] = true
				any = true
			}
		}
		for pt, t := range touched {
			if t {
				c.maybeAggregateLocked(st, pt)
			}
		}
		if any {
			c.maybeFinishLocked(st)
		}
	}
}

// maybeAggregateLocked emits the aggregate fan-in events once a point's
// replicas are all done, matching the in-process executor's stream.
func (c *Coordinator) maybeAggregateLocked(st *sweepState, pt int) {
	if st.aggDone[pt] {
		return
	}
	for _, j := range st.points[pt] {
		if j.phase != jobDone {
			return
		}
	}
	st.aggDone[pt] = true
	agg := dsmc.AggregateJobID(st.names[pt])
	c.emitLocked(st.id, dsmc.SweepEvent{Type: "job-started", Job: agg})
	c.emitLocked(st.id, dsmc.SweepEvent{Type: "aggregate-done", Job: agg, Scenario: st.names[pt]})
	c.emitLocked(st.id, dsmc.SweepEvent{Type: "job-done", Job: agg})
}

// maybeFinishLocked fires onDone once the sweep reaches a terminal
// state: all jobs done (assemble the result off-lock) or the failure
// fully propagated.
func (c *Coordinator) maybeFinishLocked(st *sweepState) {
	if st.finished {
		return
	}
	if st.failed {
		st.finished = true
		if st.onDone != nil {
			err := fmt.Errorf("coord: sweep %s failed: %s", st.id, st.firstErr)
			go st.onDone(nil, err)
		}
		return
	}
	outputs := make([][]*dsmc.ReplicaOutput, len(st.points))
	for pt, jobs := range st.points {
		outputs[pt] = make([]*dsmc.ReplicaOutput, len(jobs))
		for _, j := range jobs {
			if j.phase != jobDone {
				return
			}
			outputs[pt][j.replica] = j.output
		}
	}
	st.finished = true
	if st.onDone != nil {
		spec := st.spec
		onDone := st.onDone
		go func() {
			res, err := dsmc.AssembleSweepResult(spec, outputs)
			onDone(res, err)
		}()
	}
}

func (c *Coordinator) lookupLocked(sweep, jobID string) (*sweepState, *job, error) {
	st, ok := c.sweeps[sweep]
	if !ok {
		return nil, nil, ErrUnknown
	}
	j, ok := st.byID[jobID]
	if !ok {
		return nil, nil, ErrUnknown
	}
	return st, j, nil
}

func (c *Coordinator) touchWorker(id string, now time.Time) {
	w := c.workers[id]
	if w == nil {
		w = &workerState{id: id}
		c.workers[id] = w
	}
	w.lastSeen = now
}

// clearWorkerJob detaches a worker's status row from a lease that ended
// (completed, released, expired, or revoked).
func (c *Coordinator) clearWorkerJob(workerID string, now time.Time) {
	if w := c.workers[workerID]; w != nil {
		w.sweep, w.job = "", ""
		w.stepsDone, w.stepsTotal = 0, 0
	}
}

func (c *Coordinator) emitLocked(sweepID string, e dsmc.SweepEvent) {
	if c.cfg.OnEvent != nil {
		c.cfg.OnEvent(sweepID, e)
	}
}

func (c *Coordinator) ckptPath(st *sweepState, j *job) string {
	return filepath.Join(c.cfg.DataDir, st.id, "ckpt", fmt.Sprintf("job-s%03d-r%03d.ckpt", j.point, j.replica))
}

func (c *Coordinator) hasCheckpoint(st *sweepState, j *job) bool {
	if c.cfg.DataDir == "" {
		return len(j.ckpt) > 0
	}
	_, err := os.Stat(c.ckptPath(st, j))
	return err == nil
}

// atomicWriteFile writes via a temp file + rename so a crashed
// coordinator never leaves a half-written checkpoint behind; readers see
// either the old bytes or the new bytes.
func atomicWriteFile(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
