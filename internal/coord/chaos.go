package coord

import (
	"errors"
	"os"
)

// errInjectedUpload is the transient failure the chaos harness injects
// below the worker's retry layer, simulating a dropped upload.
var errInjectedUpload = errors.New("coord: chaos: injected upload failure")

// Chaos is the fault-injection harness the e2e and recovery tests drive.
// Faults target a worker's first job (so a chaotic worker misbehaves
// once, then the test observes recovery); the zero value injects
// nothing and costs nothing.
type Chaos struct {
	// KillAfterSteps terminates the worker process (Exit, default
	// os.Exit(2)) once its first job reaches that many steps — a hard
	// crash: no release, no goodbye, lease left to expire.
	KillAfterSteps int
	// DropHeartbeats silences every heartbeat of the first job, so the
	// coordinator sees a lost worker and redispatches while this worker
	// computes on — exercising stale-lease rejection of its uploads.
	DropHeartbeats bool
	// FailUploads makes the first N checkpoint-upload attempts fail with
	// a transient error, exercising the retry/backoff path.
	FailUploads int
	// Exit overrides process termination for in-process tests.
	Exit func(code int)
}

func (c Chaos) exit(code int) {
	if c.Exit != nil {
		c.Exit(code)
		return
	}
	os.Exit(code)
}
