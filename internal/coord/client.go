package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"dsmc"
)

// HTTPQueue speaks the coordinator wire protocol. It is a dumb
// transport: retries and backoff live in the Worker, so transient
// network errors and 5xx responses surface as plain errors, while 410
// and 404 map back to the protocol sentinels ErrStaleLease/ErrUnknown
// (which the worker treats as permanent answers, never retried).
type HTTPQueue struct {
	// Base is the coordinator root, e.g. "http://127.0.0.1:8077".
	Base string
	// Client defaults to http.DefaultClient; per-call deadlines come from
	// the contexts the worker passes in.
	Client *http.Client
}

func (q *HTTPQueue) client() *http.Client {
	if q.Client != nil {
		return q.Client
	}
	return http.DefaultClient
}

// do issues one request and returns the response body for 2xx statuses
// (nil for 204), mapping protocol statuses to sentinel errors.
func (q *HTTPQueue) do(ctx context.Context, method, path string, contentType string, body []byte) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, q.Base+path, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := q.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNoContent:
		return nil, nil
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		return io.ReadAll(resp.Body)
	case resp.StatusCode == http.StatusGone:
		return nil, ErrStaleLease
	case resp.StatusCode == http.StatusNotFound:
		return nil, ErrUnknown
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("coord: %s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(msg))
	}
}

func jobQuery(path string, l *Lease) string {
	v := url.Values{}
	v.Set("sweep", l.Sweep)
	v.Set("job", l.Job)
	v.Set("lease", l.LeaseID)
	return path + "?" + v.Encode()
}

func (q *HTTPQueue) Poll(ctx context.Context, workerID string) (*Lease, error) {
	body, _ := json.Marshal(map[string]string{"worker": workerID})
	data, err := q.do(ctx, http.MethodPost, "/coord/v1/poll", "application/json", body)
	if err != nil || data == nil {
		return nil, err
	}
	var l Lease
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("coord: bad lease: %w", err)
	}
	return &l, nil
}

func (q *HTTPQueue) Heartbeat(ctx context.Context, hb Heartbeat) (string, error) {
	body, _ := json.Marshal(hb)
	data, err := q.do(ctx, http.MethodPost, "/coord/v1/heartbeat", "application/json", body)
	if err != nil {
		return "", err
	}
	var resp struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(data, &resp); err != nil {
		return "", fmt.Errorf("coord: bad heartbeat response: %w", err)
	}
	return resp.Status, nil
}

func (q *HTTPQueue) LoadCheckpoint(ctx context.Context, l *Lease) ([]byte, error) {
	return q.do(ctx, http.MethodGet, jobQuery("/coord/v1/checkpoint", l), "", nil)
}

func (q *HTTPQueue) SaveCheckpoint(ctx context.Context, l *Lease, data []byte) error {
	_, err := q.do(ctx, http.MethodPut, jobQuery("/coord/v1/checkpoint", l), "application/octet-stream", data)
	return err
}

func (q *HTTPQueue) Complete(ctx context.Context, l *Lease, out *dsmc.ReplicaOutput) error {
	_, err := q.do(ctx, http.MethodPost, jobQuery("/coord/v1/complete", l), "application/octet-stream", EncodeOutput(out))
	return err
}

func (q *HTTPQueue) Release(ctx context.Context, l *Lease, stepsDone int) error {
	body, _ := json.Marshal(map[string]int{"steps_done": stepsDone})
	_, err := q.do(ctx, http.MethodPost, jobQuery("/coord/v1/release", l), "application/json", body)
	return err
}

func (q *HTTPQueue) Fail(ctx context.Context, l *Lease, msg string) error {
	body, _ := json.Marshal(map[string]string{"error": msg})
	_, err := q.do(ctx, http.MethodPost, jobQuery("/coord/v1/fail", l), "application/json", body)
	return err
}
