package coord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"dsmc"
	"dsmc/internal/obs"
)

// Queue is the worker's view of a coordinator: the in-process LocalQueue
// binds directly to a *Coordinator (the embedded single-binary mode) and
// HTTPQueue speaks the wire protocol to a remote one. The Worker itself
// supplies retries with jittered exponential backoff on top, so both
// transports behave identically under transient failure.
type Queue interface {
	Poll(ctx context.Context, workerID string) (*Lease, error)
	Heartbeat(ctx context.Context, hb Heartbeat) (string, error)
	LoadCheckpoint(ctx context.Context, l *Lease) ([]byte, error)
	SaveCheckpoint(ctx context.Context, l *Lease, data []byte) error
	Complete(ctx context.Context, l *Lease, out *dsmc.ReplicaOutput) error
	Release(ctx context.Context, l *Lease, stepsDone int) error
	Fail(ctx context.Context, l *Lease, msg string) error
}

// LocalQueue adapts a *Coordinator into a Queue for embedded workers.
type LocalQueue struct{ C *Coordinator }

func (q LocalQueue) Poll(_ context.Context, workerID string) (*Lease, error) {
	return q.C.Poll(workerID)
}
func (q LocalQueue) Heartbeat(_ context.Context, hb Heartbeat) (string, error) {
	return q.C.HandleHeartbeat(hb)
}
func (q LocalQueue) LoadCheckpoint(_ context.Context, l *Lease) ([]byte, error) {
	return q.C.LoadCheckpoint(l.Sweep, l.Job, l.LeaseID)
}
func (q LocalQueue) SaveCheckpoint(_ context.Context, l *Lease, data []byte) error {
	return q.C.SaveCheckpoint(l.Sweep, l.Job, l.LeaseID, data)
}
func (q LocalQueue) Complete(_ context.Context, l *Lease, out *dsmc.ReplicaOutput) error {
	return q.C.Complete(l.Sweep, l.Job, l.LeaseID, out)
}
func (q LocalQueue) Release(_ context.Context, l *Lease, stepsDone int) error {
	return q.C.Release(l.Sweep, l.Job, l.LeaseID, stepsDone)
}
func (q LocalQueue) Fail(_ context.Context, l *Lease, msg string) error {
	return q.C.Fail(l.Sweep, l.Job, l.LeaseID, msg)
}

// WorkerConfig parameterizes a pull-worker.
type WorkerConfig struct {
	ID    string
	Queue Queue
	// HeartbeatEvery is the lease-renewal interval (default 2s); it must
	// be well under the coordinator's lease TTL. Progress changes also
	// heartbeat immediately, so event streams track chunk completions.
	HeartbeatEvery time.Duration
	// PollEvery is the idle re-poll interval (default 250ms), jittered to
	// decorrelate a fleet.
	PollEvery time.Duration
	// IOTimeout bounds each coordinator call made outside the worker's
	// run context — checkpoint uploads, completion, release — so shutdown
	// still flushes state but cannot hang (default 15s).
	IOTimeout time.Duration
	// RetryBase/RetryMax shape the jittered exponential backoff on
	// transient coordinator errors (defaults 100ms / 5s, 6 attempts).
	RetryBase time.Duration
	RetryMax  time.Duration
	// Chaos injects faults for testing; the zero value injects nothing.
	Chaos Chaos
	// Logf, when non-nil, receives worker lifecycle lines.
	Logf func(format string, args ...any)
}

// maxTraceBatch bounds the flight-recorder records a single heartbeat
// carries; older records are dropped, keeping heartbeats small.
const maxTraceBatch = 16

// Worker pulls jobs from a coordinator and runs them with
// dsmc.RunSweepJob, heartbeating and uploading checkpoints as it goes.
type Worker struct {
	cfg      WorkerConfig
	jobsSeen int

	chaosUploadsLeft atomic.Int32

	rngMu sync.Mutex
	rng   uint64
}

// NewWorker builds a worker; defaults are filled in.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 2 * time.Second
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = 250 * time.Millisecond
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = 15 * time.Second
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 100 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 5 * time.Second
	}
	h := fnv.New64a()
	h.Write([]byte(cfg.ID))
	seed := h.Sum64() ^ uint64(time.Now().UnixNano())
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	w := &Worker{cfg: cfg, rng: seed}
	w.chaosUploadsLeft.Store(int32(cfg.Chaos.FailUploads))
	return w
}

// Run pulls and executes jobs until ctx is cancelled. On cancellation
// mid-job the in-flight job checkpoints its exact step position, uploads
// it, and releases its lease, so another worker resumes bit-identically;
// Run returns only after that drain completes.
func (w *Worker) Run(ctx context.Context) error {
	pollFails := 0
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		mWorkerPolls.Inc()
		lease, err := w.cfg.Queue.Poll(ctx, w.cfg.ID)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			mWorkerPollErrors.Inc()
			pollFails++
			w.sleep(ctx, w.backoff(pollFails))
			continue
		}
		pollFails = 0
		if lease == nil {
			w.sleep(ctx, w.cfg.PollEvery+w.jitter(w.cfg.PollEvery/2))
			continue
		}
		w.runJob(ctx, lease)
	}
}

// runJob executes one leased job end to end.
func (w *Worker) runJob(ctx context.Context, l *Lease) {
	w.jobsSeen++
	mWorkerJobs.Inc()
	chaotic := w.jobsSeen == 1 // fault injection targets a worker's first job

	var spec dsmc.SweepSpec
	if err := json.Unmarshal(l.Spec, &spec); err != nil {
		_ = w.retry(ctx, func(c context.Context) error {
			return w.cfg.Queue.Fail(c, l, fmt.Sprintf("bad spec: %v", err))
		})
		return
	}

	jobCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var abandoned atomic.Bool
	var stepsDone atomic.Int64

	// The flight-recorder buffer: the stepping goroutine appends one
	// record per engine step, the next heartbeat drains the batch to the
	// coordinator. Bounded — under slow heartbeats only the most recent
	// maxTraceBatch steps survive, which is the recorder's contract.
	var traceMu sync.Mutex
	var traceBuf []dsmc.StepTrace
	takeTrace := func() []dsmc.StepTrace {
		traceMu.Lock()
		defer traceMu.Unlock()
		out := traceBuf
		traceBuf = nil
		return out
	}

	// sendHB heartbeats the current progress, piggybacking the recent
	// trace batch and a compact engine-instrument snapshot; a stale
	// lease answer cancels the job immediately so no further work is
	// wasted.
	sendHB := func(done int) {
		if chaotic && w.cfg.Chaos.DropHeartbeats {
			return
		}
		hbCtx, cancelHB := context.WithTimeout(context.Background(), w.cfg.IOTimeout)
		status, err := w.cfg.Queue.Heartbeat(hbCtx, Heartbeat{
			Worker: w.cfg.ID, Sweep: l.Sweep, Job: l.Job, Lease: l.LeaseID,
			StepsDone: done, StepsTotal: l.StepsTotal,
			Metrics: obs.Default.Snapshot("dsmc_engine_"),
			Trace:   takeTrace(),
		})
		cancelHB()
		if err == nil && status == HBAbandon {
			abandoned.Store(true)
			cancel()
		}
	}

	// The ticker covers quiet phases between progress callbacks (large
	// chunks, slow steps); progress callbacks heartbeat immediately.
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(w.cfg.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
				sendHB(int(stepsDone.Load()))
			}
		}
	}()

	store := &queueCkpt{w: w, l: l, abandoned: &abandoned, cancel: cancel, chaotic: chaotic}
	out, err := dsmc.RunSweepJob(jobCtx, spec, l.Point, l.Replica, dsmc.SweepJobIO{
		Checkpoint: store,
		OnStepTrace: func(tr dsmc.StepTrace) {
			traceMu.Lock()
			if len(traceBuf) >= maxTraceBatch {
				copy(traceBuf, traceBuf[1:])
				traceBuf = traceBuf[:maxTraceBatch-1]
			}
			traceBuf = append(traceBuf, tr)
			traceMu.Unlock()
		},
		Progress: func(done, total int) {
			stepsDone.Store(int64(done))
			if chaotic && w.cfg.Chaos.KillAfterSteps > 0 && done >= w.cfg.Chaos.KillAfterSteps {
				w.logf("chaos: killing worker at step %d of job %s", done, l.Job)
				w.cfg.Chaos.exit(2)
			}
			sendHB(done)
		},
	})
	close(hbStop)
	hbWG.Wait()

	switch {
	case abandoned.Load():
		// The lease is gone; the job was or will be redispatched. Nothing
		// to report — any message we could send would be rejected as stale.
		w.logf("worker %s: job %s abandoned (lease lost)", w.cfg.ID, l.Job)
	case err == nil:
		// Flush the completion even if shutdown races it — the work is
		// done, and an unflushed result would force a redispatch.
		if cerr := w.retry(context.Background(), func(c context.Context) error {
			return w.cfg.Queue.Complete(c, l, out)
		}); cerr != nil && !errors.Is(cerr, ErrStaleLease) {
			w.logf("worker %s: job %s completion upload failed: %v", w.cfg.ID, l.Job, cerr)
		}
	case jobCtx.Err() != nil:
		// Graceful shutdown: the run loop already checkpointed at the
		// cancellation point and the store uploaded it; hand the lease
		// back so another worker resumes without burning retry budget.
		_ = w.retry(context.Background(), func(c context.Context) error {
			return w.cfg.Queue.Release(c, l, int(stepsDone.Load()))
		})
		w.logf("worker %s: job %s released at step %d (shutdown)", w.cfg.ID, l.Job, stepsDone.Load())
	default:
		_ = w.retry(context.Background(), func(c context.Context) error {
			return w.cfg.Queue.Fail(c, l, err.Error())
		})
		w.logf("worker %s: job %s failed: %v", w.cfg.ID, l.Job, err)
	}
}

// queueCkpt backs dsmc.JobCheckpoint with coordinator round-trips. Saves
// retry transient failures; a stale-lease rejection aborts the job.
type queueCkpt struct {
	w         *Worker
	l         *Lease
	abandoned *atomic.Bool
	cancel    context.CancelFunc
	chaotic   bool
}

func (s *queueCkpt) Load() ([]byte, error) {
	if !s.l.HasCheckpoint {
		return nil, nil
	}
	var data []byte
	err := s.w.retry(context.Background(), func(c context.Context) error {
		var e error
		data, e = s.w.cfg.Queue.LoadCheckpoint(c, s.l)
		return e
	})
	return data, err
}

func (s *queueCkpt) Save(data []byte) error {
	err := s.w.retry(context.Background(), func(c context.Context) error {
		if s.chaotic && s.w.failUpload() {
			return errInjectedUpload
		}
		return s.w.cfg.Queue.SaveCheckpoint(c, s.l, data)
	})
	if errors.Is(err, ErrStaleLease) || errors.Is(err, ErrUnknown) {
		s.abandoned.Store(true)
		s.cancel()
	}
	return err
}

// Discard is a no-op: the coordinator's copy is superseded by the next
// Save and deleted with the job on completion.
func (s *queueCkpt) Discard() error { return nil }

// retry runs op with jittered exponential backoff on transient errors.
// Stale-lease and unknown-job rejections are permanent (they are
// protocol answers, not failures) and context cancellation stops the
// loop immediately.
func (w *Worker) retry(ctx context.Context, op func(context.Context) error) error {
	var err error
	for attempt := 0; attempt < 6; attempt++ {
		ioCtx, cancel := context.WithTimeout(ctx, w.cfg.IOTimeout)
		err = op(ioCtx)
		cancel()
		if err == nil || errors.Is(err, ErrStaleLease) || errors.Is(err, ErrUnknown) {
			return err
		}
		if ctx.Err() != nil {
			return err
		}
		mWorkerIORetries.Inc()
		w.sleep(ctx, w.backoff(attempt+1))
	}
	return err
}

// backoff returns base·2^(n-1) plus up to 100% jitter, capped at
// RetryMax. Jitter decorrelates a worker fleet hammering a coordinator
// that just came back.
func (w *Worker) backoff(n int) time.Duration {
	d := w.cfg.RetryBase
	for i := 1; i < n && d < w.cfg.RetryMax; i++ {
		d *= 2
	}
	if d > w.cfg.RetryMax {
		d = w.cfg.RetryMax
	}
	return d + w.jitter(d)
}

// jitter returns a duration in [0, d) from a per-worker xorshift stream.
// (math/rand would work here — coord is outside the determinism-linted
// engine — but a local generator keeps the package free of global
// seeding questions.)
func (w *Worker) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	w.rngMu.Lock()
	x := w.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rng = x
	w.rngMu.Unlock()
	return time.Duration(x % uint64(d))
}

func (w *Worker) sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// failUpload consumes one chaos-injected upload failure, if any remain.
func (w *Worker) failUpload() bool {
	for {
		n := w.chaosUploadsLeft.Load()
		if n <= 0 {
			return false
		}
		if w.chaosUploadsLeft.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}
