package coord

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"dsmc"
	"dsmc/internal/obs"
)

// Coordinator telemetry. The lifecycle counters are package-level on
// obs.Default — tests build many Coordinators per process and a
// registry child registers once — while the instance-shaped numbers
// (queue depth, per-worker rows) are rendered on demand by
// WriteMetrics, so no per-instance registration or unregistration
// machinery is needed.
var (
	mLeaseGrants = obs.Default.NewCounter("dsmc_coord_lease_grants_total",
		"Job leases handed to polling workers (every dispatch, including redispatches).")
	mLeaseExpiries = obs.Default.NewCounter("dsmc_coord_lease_expiries_total",
		"Leases revoked after missed heartbeats; each expiry triggers a retry or a permanent failure.")
	mStaleRejects = obs.Default.NewCounter("dsmc_coord_stale_lease_rejects_total",
		"Zombie fencings: heartbeats answered abandon plus mutations rejected because their lease was no longer current.")
	mRetries = obs.Default.NewCounter("dsmc_coord_retries_total",
		"Jobs requeued for redispatch after a lost lease or a worker-reported error.")
	mJobFailures = obs.Default.NewCounter("dsmc_coord_job_failures_total",
		"Jobs failed permanently after exhausting their dispatch budget.")
	mCompletions = obs.Default.NewCounter("dsmc_coord_completions_total",
		"Job outputs accepted (duplicate deliveries of a winning completion not counted).")
	mReleases = obs.Default.NewCounter("dsmc_coord_releases_total",
		"Graceful lease hand-backs (worker shutdown); no dispatch attempt consumed.")
	mHeartbeats = obs.Default.NewCounter("dsmc_coord_heartbeats_total",
		"Heartbeats processed, including those answered abandon.")
	mJobSeconds = obs.Default.NewHistogram("dsmc_coord_job_seconds",
		"Dispatch-to-complete latency of finished jobs, per winning lease.", obs.DurationBuckets)
)

// Worker-side instruments (the pull loop's view of the same protocol).
var (
	mWorkerPolls = obs.Default.NewCounter("dsmc_worker_polls_total",
		"Coordinator polls issued, fruitful or not.")
	mWorkerPollErrors = obs.Default.NewCounter("dsmc_worker_poll_errors_total",
		"Polls that failed (coordinator unreachable); each triggers a backoff sleep.")
	mWorkerJobs = obs.Default.NewCounter("dsmc_worker_jobs_total",
		"Jobs leased and executed, including ones later abandoned to a zombie fence.")
	mWorkerIORetries = obs.Default.NewCounter("dsmc_worker_io_retries_total",
		"Coordinator-call retries after transient failures (checkpoint uploads, completions).")
)

// Stats returns a point-in-time snapshot of the coordinator: leased and
// queued job counts across unfinished sweeps, the known worker count,
// and the age of the stalest live worker's last contact. It feeds the
// NDJSON keepalive records dsmcd emits.
func (c *Coordinator) Stats() dsmc.SweepStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	var st dsmc.SweepStatus
	for _, id := range c.order {
		sw := c.sweeps[id]
		if sw.finished || sw.failed {
			continue
		}
		for _, j := range sw.jobs {
			switch j.phase {
			case jobLeased:
				st.ActiveJobs++
			case jobPending:
				st.QueueDepth++
			}
		}
	}
	st.Workers = len(c.workers)
	for _, w := range c.workers {
		if age := now.Sub(w.lastSeen).Seconds(); age > st.MaxHeartbeatAgeSec {
			st.MaxHeartbeatAgeSec = age
		}
	}
	return st
}

// WriteMetrics renders the coordinator's instance-shaped telemetry in
// the Prometheus text exposition format: queue/in-flight gauges, one
// heartbeat-age row per known worker, and the fleet re-emission — each
// worker's last heartbeat-piggybacked engine snapshot, re-namespaced
// dsmc_fleet_* with a worker label so external workers' instruments
// are scrapable at the coordinator without name collisions against
// this process's own dsmc_engine_* families. dsmcd composes it after
// obs.Default.WriteText on GET /metrics.
func (c *Coordinator) WriteMetrics(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()

	var queued, inflight int
	for _, id := range c.order {
		sw := c.sweeps[id]
		if sw.finished || sw.failed {
			continue
		}
		for _, j := range sw.jobs {
			switch j.phase {
			case jobLeased:
				inflight++
			case jobPending:
				queued++
			}
		}
	}

	var b strings.Builder
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	gauge("dsmc_coord_queue_depth", "Jobs waiting for dispatch across unfinished sweeps.", float64(queued))
	gauge("dsmc_coord_inflight_jobs", "Jobs currently leased out.", float64(inflight))
	gauge("dsmc_coord_workers", "Workers that have ever contacted this coordinator.", float64(len(c.workers)))

	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if len(ids) > 0 {
		b.WriteString("# HELP dsmc_coord_worker_heartbeat_age_seconds Seconds since the worker's last contact.\n")
		b.WriteString("# TYPE dsmc_coord_worker_heartbeat_age_seconds gauge\n")
		for _, id := range ids {
			fmt.Fprintf(&b, "dsmc_coord_worker_heartbeat_age_seconds{worker=%q} %g\n",
				id, now.Sub(c.workers[id].lastSeen).Seconds())
		}
	}

	// Fleet re-emission, grouped per family name so TYPE comments are
	// emitted once. Snapshot samples carry no type; untyped is honest.
	fleet := map[string][]string{}
	var fleetNames []string
	for _, id := range ids {
		for _, s := range c.workers[id].metrics {
			name := "dsmc_fleet_" + strings.TrimPrefix(s.Name, "dsmc_")
			labels := fmt.Sprintf("{worker=%q", id)
			if s.Labels != "" {
				labels += "," + strings.TrimPrefix(s.Labels, "{")
			} else {
				labels += "}"
			}
			if _, seen := fleet[name]; !seen {
				fleetNames = append(fleetNames, name)
			}
			fleet[name] = append(fleet[name], fmt.Sprintf("%s%s %g\n", name, labels, s.Value))
		}
	}
	sort.Strings(fleetNames)
	for _, name := range fleetNames {
		fmt.Fprintf(&b, "# HELP %s Re-emitted worker instrument (last heartbeat snapshot).\n# TYPE %s untyped\n", name, name)
		lines := fleet[name]
		sort.Strings(lines)
		for _, l := range lines {
			b.WriteString(l)
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}
