package coord

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
)

// Handler exposes the coordinator protocol over HTTP under /coord/v1/.
// Job IDs contain slashes ("<point>/r000"), so requests address jobs
// with ?sweep=&job=&lease= query parameters rather than path segments.
// Error mapping: stale lease → 410 Gone, unknown sweep/job → 404; the
// client maps them back to the same sentinel errors the in-process
// queue returns.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /coord/v1/poll", c.handlePoll)
	mux.HandleFunc("POST /coord/v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("GET /coord/v1/checkpoint", c.handleGetCheckpoint)
	mux.HandleFunc("PUT /coord/v1/checkpoint", c.handlePutCheckpoint)
	mux.HandleFunc("POST /coord/v1/complete", c.handleComplete)
	mux.HandleFunc("POST /coord/v1/release", c.handleRelease)
	mux.HandleFunc("POST /coord/v1/fail", c.handleFail)
	mux.HandleFunc("GET /coord/v1/workers", c.handleWorkers)
	return mux
}

func (c *Coordinator) handlePoll(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Worker string `json:"worker"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
		http.Error(w, "bad poll request", http.StatusBadRequest)
		return
	}
	lease, err := c.Poll(req.Worker)
	if err != nil {
		coordError(w, err)
		return
	}
	if lease == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, lease)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var hb Heartbeat
	if err := json.NewDecoder(r.Body).Decode(&hb); err != nil {
		http.Error(w, "bad heartbeat", http.StatusBadRequest)
		return
	}
	status, err := c.HandleHeartbeat(hb)
	if err != nil {
		coordError(w, err)
		return
	}
	writeJSON(w, map[string]string{"status": status})
}

func (c *Coordinator) handleGetCheckpoint(w http.ResponseWriter, r *http.Request) {
	sweep, job, lease, ok := jobParams(w, r)
	if !ok {
		return
	}
	data, err := c.LoadCheckpoint(sweep, job, lease)
	if err != nil {
		coordError(w, err)
		return
	}
	if len(data) == 0 {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

func (c *Coordinator) handlePutCheckpoint(w http.ResponseWriter, r *http.Request) {
	sweep, job, lease, ok := jobParams(w, r)
	if !ok {
		return
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "bad body", http.StatusBadRequest)
		return
	}
	if err := c.SaveCheckpoint(sweep, job, lease, data); err != nil {
		coordError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	sweep, job, lease, ok := jobParams(w, r)
	if !ok {
		return
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "bad body", http.StatusBadRequest)
		return
	}
	out, err := DecodeOutput(data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := c.Complete(sweep, job, lease, out); err != nil {
		coordError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleRelease(w http.ResponseWriter, r *http.Request) {
	sweep, job, lease, ok := jobParams(w, r)
	if !ok {
		return
	}
	var req struct {
		StepsDone int `json:"steps_done"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad release", http.StatusBadRequest)
		return
	}
	if err := c.Release(sweep, job, lease, req.StepsDone); err != nil {
		coordError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleFail(w http.ResponseWriter, r *http.Request) {
	sweep, job, lease, ok := jobParams(w, r)
	if !ok {
		return
	}
	var req struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad fail request", http.StatusBadRequest)
		return
	}
	if err := c.Fail(sweep, job, lease, req.Error); err != nil {
		coordError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"workers": c.Workers()})
}

func jobParams(w http.ResponseWriter, r *http.Request) (sweep, job, lease string, ok bool) {
	q := r.URL.Query()
	sweep, job, lease = q.Get("sweep"), q.Get("job"), q.Get("lease")
	if sweep == "" || job == "" || lease == "" {
		http.Error(w, "sweep, job and lease query parameters required", http.StatusBadRequest)
		return "", "", "", false
	}
	return sweep, job, lease, true
}

func coordError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrStaleLease):
		http.Error(w, err.Error(), http.StatusGone)
	case errors.Is(err, ErrUnknown):
		http.Error(w, err.Error(), http.StatusNotFound)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
