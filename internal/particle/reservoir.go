package particle

import (
	"fmt"

	"dsmc/internal/collide"
	"dsmc/internal/rng"
)

// Reservoir holds the particles removed through the downstream boundary.
// Incoming particles are given velocities from a rectangular distribution
// with the freestream variance (in the drift-free thermal frame); the
// reservoir then lets them collide amongst themselves so that after a few
// steps they relax to the correct Gaussian distribution — useful work for
// processors that would otherwise idle, as the paper emphasises. Withdrawn
// particles receive the freestream drift at the injection site.
type Reservoir struct {
	vels  []collide.State5
	sigma float64
	table []rng.Perm5
}

// NewReservoir creates a reservoir for a gas with the given freestream
// velocity-component standard deviation.
func NewReservoir(capacity int, sigma float64) *Reservoir {
	return &Reservoir{
		vels:  make([]collide.State5, 0, capacity),
		sigma: sigma,
		table: rng.Perm5Table(),
	}
}

// Len returns the number of particles banked in the reservoir.
func (rv *Reservoir) Len() int { return len(rv.vels) }

// Deposit banks a particle, replacing its velocity with a rectangular
// (uniform) sample of the freestream variance in the thermal frame.
func (rv *Reservoir) Deposit(r *rng.Stream) {
	rv.vels = append(rv.vels, collide.State5{
		r.Rect(rv.sigma), r.Rect(rv.sigma), r.Rect(rv.sigma),
		r.Rect(rv.sigma), r.Rect(rv.sigma),
	})
}

// DepositN banks n particles.
func (rv *Reservoir) DepositN(n int, r *rng.Stream) {
	for i := 0; i < n; i++ {
		rv.Deposit(r)
	}
}

// Withdraw removes one particle, returning its thermal-frame velocity.
// The caller adds the freestream drift. Returns false when empty.
func (rv *Reservoir) Withdraw() (collide.State5, bool) {
	if len(rv.vels) == 0 {
		return collide.State5{}, false
	}
	v := rv.vels[len(rv.vels)-1]
	rv.vels = rv.vels[:len(rv.vels)-1]
	return v, true
}

// Snapshot returns the banked thermal-frame velocities for a checkpoint.
// The returned slice aliases the reservoir's storage: treat it as
// read-only and do not hold it across Deposit/Withdraw/Relax.
func (rv *Reservoir) Snapshot() []collide.State5 { return rv.vels }

// Restore replaces the reservoir contents with a checkpointed snapshot.
// It fails if the snapshot exceeds the reservoir's capacity (capacity is
// configuration-derived, so a checkpoint taken under the same
// configuration always fits).
func (rv *Reservoir) Restore(vels []collide.State5) error {
	if len(vels) > cap(rv.vels) {
		return fmt.Errorf("particle: reservoir snapshot of %d exceeds capacity %d", len(vels), cap(rv.vels))
	}
	rv.vels = rv.vels[:len(vels)]
	copy(rv.vels, vels)
	return nil
}

// Relax performs one reservoir time step: the banked particles are
// shuffled and collided pairwise with the McDonald–Baganoff algorithm
// (every candidate collides — the reservoir is a dense equilibrium bath).
func (rv *Reservoir) Relax(r *rng.Stream) {
	n := len(rv.vels)
	// Fisher–Yates to randomise the pairing each step.
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		rv.vels[i], rv.vels[j] = rv.vels[j], rv.vels[i]
	}
	for i := 0; i+1 < n; i += 2 {
		perm := rng.RandomPerm5(rv.table, r)
		collide.Collide(&rv.vels[i], &rv.vels[i+1], perm, r.Uint32())
	}
}

// Moments returns the mean and variance of all velocity components pooled,
// plus the pooled kurtosis — the diagnostic for rectangular→Gaussian
// relaxation (kurtosis 1.8 → 3.0).
func (rv *Reservoir) Moments() (mean, variance, kurtosis float64) {
	n := float64(len(rv.vels) * 5)
	if n == 0 {
		return 0, 0, 0
	}
	var s1, s2, s4 float64
	for i := range rv.vels {
		for k := 0; k < 5; k++ {
			x := rv.vels[i][k]
			s1 += x
			s2 += x * x
			s4 += x * x * x * x
		}
	}
	mean = s1 / n
	variance = s2/n - mean*mean
	if variance > 0 {
		kurtosis = (s4 / n) / (variance * variance)
	}
	return mean, variance, kurtosis
}
