// Package particle provides the particle containers of the reference
// simulation: a structure-of-arrays store for the flow particles (the
// layout a vectorized implementation sweeps over), generic over the
// storage precision, and the reservoir that receives particles leaving
// the downstream boundary, re-velocities them with a rectangular
// distribution, lets them relax by colliding amongst themselves, and
// supplies them back to the upstream plunger void.
package particle

import (
	"dsmc/internal/collide"
	"dsmc/internal/kernel"
	"dsmc/internal/rng"
)

// Store holds particles in structure-of-arrays layout, with every column
// in the storage precision F (float64 is the bit-exact reference;
// float32 halves the memory traffic of the cell-major sweeps). The
// physical state per particle is (x, y, u, v, w, r1, r2): 7 values in
// 2D, exactly the paper's count; 3D simulations add the Z column
// (NewStore3). Cell is derived (computational) state.
//
// All randomness is drawn in float64 and rounded once on store, so the
// RNG streams are shared between precisions and the float64
// instantiation reproduces the pre-generic store exactly.
//
// The simulations keep the store cell-major: every step the sort's
// scatter pass physically reorders the payload into a shadow store and
// the buffers are swapped, so cell c's particles occupy the contiguous
// index range cellStart[c]:cellStart[c+1] and Cell is non-decreasing.
type Store[F kernel.Float] struct {
	X, Y []F
	// Z is the third coordinate of 3D stores; nil in 2D.
	Z       []F
	U, V, W []F
	R1, R2  []F
	// Evib is the continuous vibrational energy per particle (the
	// future-work extension); zero unless the simulation enables
	// vibrational relaxation.
	Evib []F
	Cell []int32
	n    int
}

// NewStore returns a 2D store with the given capacity and zero particles.
func NewStore[F kernel.Float](capacity int) *Store[F] {
	return &Store[F]{
		X: make([]F, capacity), Y: make([]F, capacity),
		U: make([]F, capacity), V: make([]F, capacity),
		W:  make([]F, capacity),
		R1: make([]F, capacity), R2: make([]F, capacity),
		Evib: make([]F, capacity),
		Cell: make([]int32, capacity),
	}
}

// NewStore3 returns a 3D store (with the Z column) of the given capacity.
func NewStore3[F kernel.Float](capacity int) *Store[F] {
	s := NewStore[F](capacity)
	s.Z = make([]F, capacity)
	return s
}

// Len returns the number of live particles.
func (s *Store[F]) Len() int { return s.n }

// SetLen declares the first n slots live — the receiving buffer of a
// full-store scatter uses this after its payload is written.
func (s *Store[F]) SetLen(n int) { s.n = n }

// Cap returns the store capacity.
func (s *Store[F]) Cap() int { return len(s.X) }

// Append adds a particle and returns its index, or -1 if full.
func (s *Store[F]) Append(x, y float64, v collide.State5) int {
	if s.n >= len(s.X) {
		return -1
	}
	i := s.n
	s.n++
	s.X[i], s.Y[i] = F(x), F(y)
	s.Evib[i] = 0
	s.SetVel(i, v)
	return i
}

// Vel returns the five velocity components of particle i, widened to the
// float64 collision state.
//
//dsmc:hotpath
func (s *Store[F]) Vel(i int) collide.State5 {
	return collide.State5{
		float64(s.U[i]), float64(s.V[i]), float64(s.W[i]),
		float64(s.R1[i]), float64(s.R2[i]),
	}
}

// SetVel stores the five velocity components of particle i, rounding
// once to the storage precision.
//
//dsmc:hotpath
func (s *Store[F]) SetVel(i int, v collide.State5) {
	s.U[i], s.V[i], s.W[i], s.R1[i], s.R2[i] = F(v[0]), F(v[1]), F(v[2]), F(v[3]), F(v[4])
}

// RemoveSwap deletes particle i by moving the last particle into its slot.
//
//dsmc:hotpath
func (s *Store[F]) RemoveSwap(i int) {
	last := s.n - 1
	if i != last {
		s.X[i], s.Y[i] = s.X[last], s.Y[last]
		if s.Z != nil {
			s.Z[i] = s.Z[last]
		}
		s.U[i], s.V[i], s.W[i] = s.U[last], s.V[last], s.W[last]
		s.R1[i], s.R2[i] = s.R1[last], s.R2[last]
		s.Evib[i] = s.Evib[last]
		s.Cell[i] = s.Cell[last]
	}
	s.n = last
}

// Swap exchanges the physical payload of particles i and j (position,
// velocity components, vibrational energy). Cell is NOT swapped: the
// in-cell shuffle only ever swaps records inside one cell span, where the
// indices are equal by the cell-major invariant.
//
//dsmc:hotpath
func (s *Store[F]) Swap(i, j int) {
	s.X[i], s.X[j] = s.X[j], s.X[i]
	s.Y[i], s.Y[j] = s.Y[j], s.Y[i]
	if s.Z != nil {
		s.Z[i], s.Z[j] = s.Z[j], s.Z[i]
	}
	s.U[i], s.U[j] = s.U[j], s.U[i]
	s.V[i], s.V[j] = s.V[j], s.V[i]
	s.W[i], s.W[j] = s.W[j], s.W[i]
	s.R1[i], s.R1[j] = s.R1[j], s.R1[i]
	s.R2[i], s.R2[j] = s.R2[j], s.R2[i]
	s.Evib[i], s.Evib[j] = s.Evib[j], s.Evib[i]
}

// Reset empties the store without releasing memory.
func (s *Store[F]) Reset() { s.n = 0 }

// TotalEnergy returns Σ(u²+v²+w²+r1²+r2²) over live particles (per unit
// mass, factor ½ omitted) — the conservation diagnostic. Accumulated in
// float64 for either storage precision.
func (s *Store[F]) TotalEnergy() float64 {
	var e float64
	for i := 0; i < s.n; i++ {
		u, v, w := float64(s.U[i]), float64(s.V[i]), float64(s.W[i])
		r1, r2 := float64(s.R1[i]), float64(s.R2[i])
		e += u*u + v*v + w*w + r1*r1 + r2*r2
	}
	return e
}

// TotalMomentum returns the summed translational momentum components.
func (s *Store[F]) TotalMomentum() (px, py, pz float64) {
	for i := 0; i < s.n; i++ {
		px += float64(s.U[i])
		py += float64(s.V[i])
		pz += float64(s.W[i])
	}
	return px, py, pz
}

// InitFreestream fills the store with count particles uniformly
// distributed over the region accepted by inRegion, with drifting
// Maxwellian velocities: mean (uDrift, 0, 0), each component std sigma.
// Rotational components are sampled at the same temperature
// (equipartition). All draws are float64 (shared across precisions);
// values are rounded once on store. Returns the number actually placed.
func (s *Store[F]) InitFreestream(count int, w, h, uDrift, sigma float64,
	inRegion func(x, y float64) bool, r *rng.Stream) int {
	placed := 0
	for placed < count {
		x := r.Float64() * w
		y := r.Float64() * h
		if !inRegion(x, y) {
			continue
		}
		v := collide.State5{
			uDrift + r.Gaussian(0, sigma),
			r.Gaussian(0, sigma),
			r.Gaussian(0, sigma),
			r.Gaussian(0, sigma),
			r.Gaussian(0, sigma),
		}
		if s.Append(x, y, v) < 0 {
			break
		}
		placed++
	}
	return placed
}
