package particle

import (
	"math"
	"testing"

	"dsmc/internal/collide"
	"dsmc/internal/rng"
)

func TestStoreAppendAndAccess(t *testing.T) {
	s := NewStore[float64](4)
	v := collide.State5{1, 2, 3, 4, 5}
	i := s.Append(0.5, 0.25, v)
	if i != 0 || s.Len() != 1 {
		t.Fatalf("Append returned %d, len %d", i, s.Len())
	}
	if s.Vel(0) != v {
		t.Errorf("Vel = %v", s.Vel(0))
	}
	if s.X[0] != 0.5 || s.Y[0] != 0.25 {
		t.Errorf("position not stored")
	}
}

func TestStoreCapacityLimit(t *testing.T) {
	s := NewStore[float64](2)
	s.Append(0, 0, collide.State5{})
	s.Append(0, 0, collide.State5{})
	if s.Append(0, 0, collide.State5{}) != -1 {
		t.Errorf("full store must refuse particles")
	}
	if s.Cap() != 2 {
		t.Errorf("Cap = %d", s.Cap())
	}
}

func TestRemoveSwap(t *testing.T) {
	s := NewStore[float64](3)
	s.Append(1, 1, collide.State5{1, 0, 0, 0, 0})
	s.Append(2, 2, collide.State5{2, 0, 0, 0, 0})
	s.Append(3, 3, collide.State5{3, 0, 0, 0, 0})
	s.RemoveSwap(0)
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.X[0] != 3 || s.U[0] != 3 {
		t.Errorf("last particle must fill the hole: x=%v u=%v", s.X[0], s.U[0])
	}
	// Removing the final particle needs no copy.
	s.RemoveSwap(1)
	if s.Len() != 1 || s.X[0] != 3 {
		t.Errorf("tail removal wrong")
	}
}

func TestSetVel(t *testing.T) {
	s := NewStore[float64](1)
	s.Append(0, 0, collide.State5{})
	want := collide.State5{9, 8, 7, 6, 5}
	s.SetVel(0, want)
	if s.Vel(0) != want {
		t.Errorf("SetVel/Vel round trip")
	}
}

func TestTotalEnergyMomentum(t *testing.T) {
	s := NewStore[float64](2)
	s.Append(0, 0, collide.State5{1, 2, 3, 4, 5})
	s.Append(0, 0, collide.State5{-1, -2, -3, 0, 0})
	wantE := float64(1+4+9+16+25) + float64(1+4+9)
	if got := s.TotalEnergy(); math.Abs(got-wantE) > 1e-12 {
		t.Errorf("TotalEnergy = %v, want %v", got, wantE)
	}
	px, py, pz := s.TotalMomentum()
	if px != 0 || py != 0 || pz != 0 {
		t.Errorf("momentum should cancel: %v %v %v", px, py, pz)
	}
}

func TestInitFreestreamRespectsRegionAndMoments(t *testing.T) {
	s := NewStore[float64](60000)
	r := rng.NewStream(1)
	const sigma = 0.1
	const drift = 0.4
	placed := s.InitFreestream(50000, 10, 10, drift, sigma,
		func(x, y float64) bool { return x > 5 }, &r)
	if placed != 50000 {
		t.Fatalf("placed %d", placed)
	}
	var sumU, sumX float64
	for i := 0; i < s.Len(); i++ {
		if s.X[i] <= 5 {
			t.Fatalf("particle outside region at x=%v", s.X[i])
		}
		sumU += s.U[i]
		sumX += s.X[i]
	}
	if math.Abs(sumU/float64(s.Len())-drift) > 0.005 {
		t.Errorf("mean u = %v, want %v", sumU/float64(s.Len()), drift)
	}
	if math.Abs(sumX/float64(s.Len())-7.5) > 0.05 {
		t.Errorf("mean x = %v, want 7.5", sumX/float64(s.Len()))
	}
}

func TestInitFreestreamStopsAtCapacity(t *testing.T) {
	s := NewStore[float64](10)
	r := rng.NewStream(2)
	placed := s.InitFreestream(100, 1, 1, 0, 0.1, func(x, y float64) bool { return true }, &r)
	if placed != 10 || s.Len() != 10 {
		t.Errorf("placed %d, len %d", placed, s.Len())
	}
}

func TestReservoirDepositWithdraw(t *testing.T) {
	rv := NewReservoir(10, 0.2)
	r := rng.NewStream(3)
	rv.DepositN(3, &r)
	if rv.Len() != 3 {
		t.Fatalf("Len = %d", rv.Len())
	}
	_, ok := rv.Withdraw()
	if !ok || rv.Len() != 2 {
		t.Errorf("Withdraw failed")
	}
	rv.Withdraw()
	rv.Withdraw()
	if _, ok := rv.Withdraw(); ok {
		t.Errorf("empty reservoir must report false")
	}
}

// TestReservoirRelaxesRectangularToGaussian is the paper's reservoir
// mechanism: rectangular velocities (kurtosis 1.8) relax to the correct
// Gaussian distribution (kurtosis 3) after a few steps of collisions with
// other reservoir particles.
func TestReservoirRelaxesRectangularToGaussian(t *testing.T) {
	rv := NewReservoir(20000, 0.3)
	r := rng.NewStream(4)
	rv.DepositN(20000, &r)
	_, v0, k0 := rv.Moments()
	if math.Abs(k0-1.8) > 0.05 {
		t.Fatalf("initial kurtosis %v, want 1.8 (rectangular)", k0)
	}
	for step := 0; step < 12; step++ {
		rv.Relax(&r)
	}
	mean, v1, k1 := rv.Moments()
	if math.Abs(k1-3.0) > 0.1 {
		t.Errorf("relaxed kurtosis %v, want 3 (Gaussian)", k1)
	}
	if math.Abs(mean) > 0.01 {
		t.Errorf("thermal-frame mean %v, want 0", mean)
	}
	// Energy (variance) must be preserved by the relaxation.
	if math.Abs(v1-v0)/v0 > 1e-9 {
		t.Errorf("variance changed: %v -> %v", v0, v1)
	}
}

func TestReservoirRelaxEmptyAndSingle(t *testing.T) {
	rv := NewReservoir(4, 0.1)
	r := rng.NewStream(5)
	rv.Relax(&r) // empty: no-op
	rv.Deposit(&r)
	rv.Relax(&r) // single particle: no pair, no-op
	if rv.Len() != 1 {
		t.Errorf("Len = %d", rv.Len())
	}
}

func TestStoreReset(t *testing.T) {
	s := NewStore[float64](4)
	s.Append(1, 1, collide.State5{})
	s.Reset()
	if s.Len() != 0 {
		t.Errorf("Reset must empty the store")
	}
}
