package dsmc

// One benchmark per table/figure of the paper's evaluation, plus phase
// micro-benchmarks. The custom metrics are the quantities the paper
// reports: µs/particle/step (wall and cost-model) and the phase
// percentages. Run everything with:
//
//	go test -bench=. -benchmem
import (
	"testing"

	"dsmc/internal/baseline"
	"dsmc/internal/cm"
	"dsmc/internal/cmsim"
	"dsmc/internal/collide"
	"dsmc/internal/molec"
	"dsmc/internal/par"
	"dsmc/internal/particle"
	"dsmc/internal/rng"
	"dsmc/internal/sim"
	"dsmc/internal/sim3"
)

// benchConfig is the paper's geometry at reduced particle density.
func benchConfig(lambda float64, perCell float64) Config {
	cfg := PaperConfig()
	cfg.MeanFreePath = lambda
	cfg.ParticlesPerCell = perCell
	cfg.Seed = 1988
	return cfg
}

// stepBench advances a simulation b.N steps and reports per-particle time.
func stepBench(b *testing.B, s *Simulation) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	b.StopTimer()
	perParticleNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(s.NFlow())
	b.ReportMetric(perParticleNs/1000, "us/particle/step")
}

// BenchmarkFig1NearContinuumStep times the near-continuum wedge flow of
// figures 1–3 (zero mean free path: every candidate pair collides) on the
// reference backend.
func BenchmarkFig1NearContinuumStep(b *testing.B) {
	s, err := NewSimulation(benchConfig(0, 8))
	if err != nil {
		b.Fatal(err)
	}
	s.Run(50) // past the initial transient
	stepBench(b, s)
}

// BenchmarkFig4RarefiedStep times the rarefied case of figures 4–6
// (λ∞ = 0.5 cells, Kn = 0.02).
func BenchmarkFig4RarefiedStep(b *testing.B) {
	s, err := NewSimulation(benchConfig(0.5, 8))
	if err != nil {
		b.Fatal(err)
	}
	s.Run(50)
	stepBench(b, s)
}

// BenchmarkFig4RarefiedStepCM is the same flow on the data-parallel
// fixed-point Connection Machine backend — the paper's implementation.
func BenchmarkFig4RarefiedStepCM(b *testing.B) {
	cfg := benchConfig(0.5, 8)
	cfg.Backend = ConnectionMachine
	cfg.PhysProcs = 4096
	s, err := NewSimulation(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s.Run(50)
	stepBench(b, s)
}

// BenchmarkFig7ParticleScaling reproduces Figure 7: fixed machine size,
// growing particle count (hence VP ratio); the reported model metric must
// fall as the sub-benchmark size grows.
func BenchmarkFig7ParticleScaling(b *testing.B) {
	const procs = 4096
	for _, mult := range []int{1, 2, 4, 8, 16} {
		perCell := 0.65 * float64(mult) // ≈ VP ratio 1 at mult=1
		b.Run(benchName("vpr", mult), func(b *testing.B) {
			cfg := sim.DefaultConfig(1)
			cfg.NPerCell = perCell
			s, err := cmsim.New(cmsim.Config{Sim: cfg, PhysProcs: procs})
			if err != nil {
				b.Fatal(err)
			}
			s.Machine().ResetCost()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
			b.StopTimer()
			book := s.Machine().Cost()
			n := float64(s.NFlow())
			modelUs := cm.ModelSeconds(book.TotalCycles()) * 1e6 / n / float64(b.N)
			b.ReportMetric(modelUs, "model-us/particle/step")
			b.ReportMetric(float64(s.Machine().VPR()), "vp-ratio")
		})
	}
}

// BenchmarkTimingBreakdown reproduces the paper's in-text table: the
// distribution of computational time over the four sub-steps (paper:
// move+bc 14%, sort 27%, select 20%, collide 39%). The percentages come
// from the CM cost model and are attached as metrics.
func BenchmarkTimingBreakdown(b *testing.B) {
	cfg := sim.DefaultConfig(1)
	cfg.NPerCell = 8
	s, err := cmsim.New(cmsim.Config{Sim: cfg, PhysProcs: 4096})
	if err != nil {
		b.Fatal(err)
	}
	s.Run(20)
	s.Machine().ResetCost()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	b.StopTimer()
	book := s.Machine().Cost()
	total := float64(book.TotalCycles())
	if total > 0 {
		for _, phase := range []string{"move", "sort", "select", "collide"} {
			pct := 100 * float64(book.Phase(phase).Cycles) / total
			b.ReportMetric(pct, phase+"-pct")
		}
	}
}

// BenchmarkStepWorkerSweep measures the reference backend's multicore
// scaling on the paper-scale configuration (98×64 grid, 75 particles per
// cell ≈ 460k flow particles): one sub-benchmark per worker count, so the
// parallel speedup is measured rather than asserted. The determinism
// tests guarantee every sub-benchmark computes the identical trajectory.
func BenchmarkStepWorkerSweep(b *testing.B) {
	for _, w := range par.SweepWorkers() {
		b.Run(benchName("workers", w), func(b *testing.B) {
			cfg := benchConfig(0.5, 75)
			cfg.Workers = w
			s, err := NewSimulation(cfg)
			if err != nil {
				b.Fatal(err)
			}
			s.Run(5) // past the initial transient
			stepBench(b, s)
		})
	}
}

// BenchmarkStepWorkerSweepReduced is the same sweep at laptop density
// (8 per cell), exposing how sharding overhead amortizes with load.
func BenchmarkStepWorkerSweepReduced(b *testing.B) {
	for _, w := range par.SweepWorkers() {
		b.Run(benchName("workers", w), func(b *testing.B) {
			cfg := benchConfig(0.5, 8)
			cfg.Workers = w
			s, err := NewSimulation(cfg)
			if err != nil {
				b.Fatal(err)
			}
			s.Run(20)
			stepBench(b, s)
		})
	}
}

// BenchmarkShockTube3DWorkerSweep sweeps the worker count of the 3D
// extension's piston-driven shock at a paper-comparable particle count.
func BenchmarkShockTube3DWorkerSweep(b *testing.B) {
	for _, w := range par.SweepWorkers() {
		b.Run(benchName("workers", w), func(b *testing.B) {
			s, err := sim3.New(sim3.Config{
				NX: 160, NY: 16, NZ: 16,
				Cm: 0.125, PistonSpeed: 0.131, NPerCell: 12, Seed: 3,
				Workers: w,
			})
			if err != nil {
				b.Fatal(err)
			}
			s.Run(10)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(s.N()), "ns/particle/step")
		})
	}
}

// BenchmarkCraySurrogate times the float64 implementation pinned to one
// worker (the role of the paper's 0.5 µs/particle/step single-processor
// Cray-2 code; BenchmarkStepWorkerSweep measures the multicore version).
func BenchmarkCraySurrogate(b *testing.B) {
	cfg := benchConfig(0.5, 8)
	cfg.Workers = 1
	s, err := NewSimulation(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s.Run(50)
	stepBench(b, s)
}

// BenchmarkCMBackendModel reports the cost-model per-particle time at the
// paper's machine scale (the 7.2 µs/particle/step comparison).
func BenchmarkCMBackendModel(b *testing.B) {
	cfg := sim.DefaultConfig(1)
	cfg.NPerCell = 8
	s, err := cmsim.New(cmsim.Config{Sim: cfg, PhysProcs: 32768})
	if err != nil {
		b.Fatal(err)
	}
	s.Run(10)
	s.Machine().ResetCost()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	b.StopTimer()
	modelUs := cm.ModelSeconds(s.Machine().Cost().TotalCycles()) * 1e6 /
		float64(s.NFlow()) / float64(b.N)
	b.ReportMetric(modelUs, "model-us/particle/step")
	// The paper's 7.2 µs is quoted at VP ratio 16 (512k particles); at
	// this benchmark's reduced density the ratio is lower, so the issue
	// overhead is amortized less. cmd/experiments -exp compare runs the
	// full-scale comparison.
	b.ReportMetric(float64(s.Machine().VPR()), "vp-ratio")
}

// --- phase micro-benchmarks ---

// BenchmarkSortPerm times the substrate's rank sort, the 27% phase.
func BenchmarkSortPerm(b *testing.B) {
	m := cm.New(1024, 1<<17)
	keys := m.NewField()
	r := rng.NewStream(1)
	for i := range keys {
		keys[i] = int32(r.Intn(6272 * 64))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SortPerm(keys)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(m.VPs()), "ns/key")
}

// BenchmarkSegScan times the segmented scan used for cell populations.
func BenchmarkSegScan(b *testing.B) {
	m := cm.New(1024, 1<<17)
	src, dst := m.NewField(), m.NewField()
	seg := make([]bool, m.VPs())
	r := rng.NewStream(2)
	for i := range src {
		src[i] = 1
		seg[i] = r.Intn(70) == 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SegBroadcastSum(dst, src, seg)
	}
}

// BenchmarkCollidePair times one McDonald–Baganoff collision.
func BenchmarkCollidePair(b *testing.B) {
	r := rng.NewStream(3)
	table := rng.Perm5Table()
	v1 := collide.State5{1, 2, 3, 4, 5}
	v2 := collide.State5{5, 4, 3, 2, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perm := rng.RandomPerm5(table, &r)
		collide.Collide(&v1, &v2, perm, r.Uint32())
	}
}

// BenchmarkSelectionRule times the probability evaluation of eq. 8.
func BenchmarkSelectionRule(b *testing.B) {
	rule := collide.Rule{Model: molec.Maxwell(), PInf: 0.28, NInf: 75, GInf: 0.2}
	var acc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc += rule.Prob(80, 0.73, 0.3)
	}
	_ = acc
}

// BenchmarkReservoirRelax times one reservoir relaxation sweep.
func BenchmarkReservoirRelax(b *testing.B) {
	r := rng.NewStream(4)
	res := particle.NewReservoir(1<<15, 0.0884)
	res.DepositN(1<<15, &r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.Relax(&r)
	}
}

// BenchmarkBaselineSchemes compares the per-cell cost of every selection
// scheme on a freestream cell (Nanbu's O(N²) shows immediately).
func BenchmarkBaselineSchemes(b *testing.B) {
	rule := collide.Rule{Model: molec.Maxwell(), PInf: 0.28, NInf: 75, GInf: 0.2}
	for _, scheme := range []baseline.Scheme{
		baseline.NewBM(), baseline.NewBirdTC(), baseline.Nanbu{}, baseline.Ploss{},
	} {
		b.Run(scheme.Name(), func(b *testing.B) {
			r := rng.NewStream(5)
			parts := baseline.EquilibriumEnsemble(75, 0.0884, &r)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scheme.CollideCell(parts, 1, rule, &r)
			}
		})
	}
}

// BenchmarkShockTube3D times the 3D extension (piston-driven normal
// shock, the paper's future-work geometry).
func BenchmarkShockTube3D(b *testing.B) {
	s, err := sim3.New(sim3.Config{
		NX: 160, NY: 4, NZ: 4,
		Cm: 0.125, PistonSpeed: 0.131, NPerCell: 14, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	s.Run(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(s.N()), "ns/particle/step")
}

// BenchmarkAblationReshuffle compares the paper's per-step re-randomised
// pairing against frozen pairing: the randomisation's cost is the
// per-cell shuffle inside the relaxation driver.
func BenchmarkAblationReshuffle(b *testing.B) {
	rule := collide.Rule{Model: molec.Maxwell(), CollideAll: true}
	for _, mode := range []string{"reshuffled", "frozen"} {
		b.Run(mode, func(b *testing.B) {
			r := rng.NewStream(5)
			parts := baseline.EquilibriumEnsemble(4096, 0.25, &r)
			scheme := baseline.NewBM()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if mode == "reshuffled" {
					baseline.Relax(scheme, parts, 1, rule, 1, &r)
				} else {
					baseline.RelaxFixedPairing(scheme, parts, 1, rule, 1, &r)
				}
			}
		})
	}
}

// BenchmarkReservoirVsDirectGaussian quantifies the paper's argument for
// the reservoir: picking up a banked particle must beat sampling a fresh
// Gaussian velocity (transcendental calls) for each of the five
// components.
func BenchmarkReservoirVsDirectGaussian(b *testing.B) {
	b.Run("reservoir-withdraw", func(b *testing.B) {
		r := rng.NewStream(6)
		res := particle.NewReservoir(1<<20, 0.0884)
		res.DepositN(1<<20, &r)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := res.Withdraw(); !ok {
				b.StopTimer()
				res.DepositN(1<<20, &r)
				b.StartTimer()
			}
		}
	})
	b.Run("direct-gaussian", func(b *testing.B) {
		r := rng.NewStream(7)
		var sink collide.State5
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k < 5; k++ {
				sink[k] = r.Gaussian(0, 0.0884)
			}
		}
		_ = sink
	})
}

func benchName(prefix string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return prefix + "-0"
	}
	var buf [8]byte
	pos := len(buf)
	for v > 0 {
		pos--
		buf[pos] = digits[v%10]
		v /= 10
	}
	return prefix + "-" + string(buf[pos:])
}
