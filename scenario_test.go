package dsmc_test

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"dsmc"
)

// goldenWedgeConfig is the golden 2D wedge configuration (the public
// twin of internal/golden's goldenConfig2D): 48×24 grid, wedge 10/12/30°,
// 6 particles per cell, seed 7.
func goldenWedgeConfig() dsmc.Config {
	return dsmc.Config{
		GridNX: 48, GridNY: 24,
		Wedge:            &dsmc.WedgeSpec{LeadX: 10, Base: 12, AngleDeg: 30},
		Mach:             4,
		ThermalSpeed:     0.125,
		MeanFreePath:     0.5,
		ParticlesPerCell: 6,
		Seed:             7,
	}
}

// fnvField hashes a field's values bit for bit (the internal/golden
// FNV-1a convention).
func fnvField(data []float64) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, v := range data {
		w := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			h ^= (w >> (8 * i)) & 0xff
			h *= prime
		}
	}
	return h
}

// sampleDensityGolden is the FNV-1a hash of SampleDensity(8) after
// Run(12) on the golden wedge config, recorded from the pre-redesign
// code (the flat-Config, density-only API) immediately before the
// scenario/sampling redesign. Both the deprecated shim and the new
// multi-moment path must still produce these exact bits.
const sampleDensityGolden uint64 = 0xaf9acc634207fb14

// TestSampleDensityBackCompatPin: the deprecated SampleDensity shim and
// Sample(...).Field(Density) both reproduce the pre-redesign density
// field bit for bit on the golden 2D wedge config.
func TestSampleDensityBackCompatPin(t *testing.T) {
	legacy, err := dsmc.NewSimulation(goldenWedgeConfig())
	if err != nil {
		t.Fatal(err)
	}
	legacy.Run(12)
	legacyField := legacy.SampleDensity(8)
	if got := fnvField(legacyField.Data); got != sampleDensityGolden {
		t.Errorf("SampleDensity drifted from the pre-redesign path: hash %#016x, golden %#016x",
			got, sampleDensityGolden)
	}

	modern, err := dsmc.NewSimulation(goldenWedgeConfig())
	if err != nil {
		t.Fatal(err)
	}
	modern.Run(12)
	modernField, err := modern.Sample(8).Field(dsmc.Density)
	if err != nil {
		t.Fatal(err)
	}
	if got := fnvField(modernField.Data); got != sampleDensityGolden {
		t.Errorf("Sample(...).Field(Density) drifted from the pre-redesign path: hash %#016x, golden %#016x",
			got, sampleDensityGolden)
	}
	if modernField.NX != 48 || modernField.NY != 24 || modernField.NZ != 1 {
		t.Errorf("field shape header %dx%dx%d, want 48x24x1",
			modernField.NX, modernField.NY, modernField.NZ)
	}
}

// TestScenarioKinds: every scenario kind builds through NewSimulation
// and reports its kind and shape.
func TestScenarioKinds(t *testing.T) {
	cases := []struct {
		sc         dsmc.Scenario
		kind       string
		nx, ny, nz int
	}{
		{dsmc.WedgeTunnel2D{GridNX: 48, GridNY: 24, Wedge: dsmc.WedgeSpec{LeadX: 10, Base: 12, AngleDeg: 30},
			Mach: 4, ThermalSpeed: 0.125, MeanFreePath: 0.5, ParticlesPerCell: 2, Seed: 1},
			dsmc.KindWedgeTunnel2D, 48, 24, 1},
		{dsmc.EmptyTunnel2D{GridNX: 32, GridNY: 16,
			Mach: 4, ThermalSpeed: 0.125, MeanFreePath: 0.5, ParticlesPerCell: 2, Seed: 1},
			dsmc.KindEmptyTunnel2D, 32, 16, 1},
		{dsmc.DoubleWedge2D{GridNX: 96, GridNY: 32,
			Wedge:  dsmc.WedgeSpec{LeadX: 8, Base: 12, AngleDeg: 20},
			Wedge2: dsmc.WedgeSpec{LeadX: 48, Base: 12, AngleDeg: 25},
			Mach:   4, ThermalSpeed: 0.125, MeanFreePath: 0.5, ParticlesPerCell: 2, Seed: 1},
			dsmc.KindDoubleWedge2D, 96, 32, 1},
		{dsmc.ShockTube3D{GridNX: 40, GridNY: 4, GridNZ: 4,
			ThermalSpeed: 0.125, PistonSpeed: 0.131, ParticlesPerCell: 4, Seed: 1},
			dsmc.KindShockTube3D, 40, 4, 4},
	}
	for _, tc := range cases {
		t.Run(tc.kind, func(t *testing.T) {
			if got := tc.sc.Kind(); got != tc.kind {
				t.Fatalf("Kind() = %q, want %q", got, tc.kind)
			}
			s, err := dsmc.NewSimulation(tc.sc)
			if err != nil {
				t.Fatal(err)
			}
			if got := s.Kind(); got != tc.kind {
				t.Errorf("Simulation.Kind() = %q", got)
			}
			nx, ny, nz := s.Shape()
			if nx != tc.nx || ny != tc.ny || nz != tc.nz {
				t.Errorf("Shape() = %dx%dx%d, want %dx%dx%d", nx, ny, nz, tc.nx, tc.ny, tc.nz)
			}
			s.Run(4)
			if s.StepCount() != 4 {
				t.Errorf("StepCount = %d", s.StepCount())
			}
			f, err := s.Sample(2).Field(dsmc.Density)
			if err != nil {
				t.Fatal(err)
			}
			if len(f.Data) != tc.nx*tc.ny*tc.nz {
				t.Errorf("field length %d, want %d", len(f.Data), tc.nx*tc.ny*tc.nz)
			}
		})
	}
}

// TestWedgeFitValidation: a wedge that does not fit the grid is rejected
// at the public layer with a descriptive error naming the offending
// dimension, on both the legacy Config and the first-class scenarios.
func TestWedgeFitValidation(t *testing.T) {
	cases := []struct {
		name    string
		wedge   dsmc.WedgeSpec
		errPart string
	}{
		{"trailing-edge-beyond-grid", dsmc.WedgeSpec{LeadX: 40, Base: 20, AngleDeg: 30}, "trailing edge"},
		{"apex-reaches-upper-wall", dsmc.WedgeSpec{LeadX: 2, Base: 40, AngleDeg: 45}, "apex height"},
		{"negative-leadx", dsmc.WedgeSpec{LeadX: -3, Base: 12, AngleDeg: 30}, "upstream of the inlet"},
		{"zero-base", dsmc.WedgeSpec{LeadX: 10, Base: 0, AngleDeg: 30}, "base must be positive"},
		{"flat-angle", dsmc.WedgeSpec{LeadX: 10, Base: 12, AngleDeg: 0}, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := goldenWedgeConfig()
			w := tc.wedge
			cfg.Wedge = &w
			err := cfg.Validate()
			if err == nil {
				t.Fatal("Config.Validate accepted an ill-fitting wedge")
			}
			if !strings.Contains(err.Error(), tc.errPart) {
				t.Errorf("Config error %q does not mention %q", err, tc.errPart)
			}
			sc := dsmc.WedgeTunnel2D{
				GridNX: cfg.GridNX, GridNY: cfg.GridNY, Wedge: w,
				Mach: 4, ThermalSpeed: 0.125, MeanFreePath: 0.5, ParticlesPerCell: 2,
			}
			err = sc.Validate()
			if err == nil {
				t.Fatal("WedgeTunnel2D.Validate accepted an ill-fitting wedge")
			}
			if !strings.Contains(err.Error(), tc.errPart) {
				t.Errorf("scenario error %q does not mention %q", err, tc.errPart)
			}
			if _, err := dsmc.NewSimulation(sc); err == nil {
				t.Error("NewSimulation accepted an ill-fitting wedge")
			}
		})
	}
}

// TestDoubleWedgeOverlapRejected: overlapping bodies fail validation.
func TestDoubleWedgeOverlapRejected(t *testing.T) {
	sc := dsmc.DoubleWedge2D{
		GridNX: 96, GridNY: 32,
		Wedge:  dsmc.WedgeSpec{LeadX: 8, Base: 20, AngleDeg: 20},
		Wedge2: dsmc.WedgeSpec{LeadX: 20, Base: 20, AngleDeg: 20},
		Mach:   4, ThermalSpeed: 0.125, MeanFreePath: 0.5, ParticlesPerCell: 2,
	}
	err := sc.Validate()
	if err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Errorf("overlapping wedges accepted (err = %v)", err)
	}
}

// TestScenarioSpecRoundTrip: every scenario kind survives the
// ScenarioSpec JSON envelope unchanged, and the legacy Config serialises
// as its first-class equivalent.
func TestScenarioSpecRoundTrip(t *testing.T) {
	scenarios := []dsmc.Scenario{
		dsmc.WedgeTunnel2D{GridNX: 48, GridNY: 24, Wedge: dsmc.WedgeSpec{LeadX: 10, Base: 12, AngleDeg: 30},
			Mach: 4, ThermalSpeed: 0.125, MeanFreePath: 0.5, ParticlesPerCell: 2, Seed: 9},
		dsmc.EmptyTunnel2D{GridNX: 32, GridNY: 16, Mach: 4, ThermalSpeed: 0.125, ParticlesPerCell: 2},
		dsmc.DoubleWedge2D{GridNX: 96, GridNY: 32,
			Wedge:  dsmc.WedgeSpec{LeadX: 8, Base: 12, AngleDeg: 20},
			Wedge2: dsmc.WedgeSpec{LeadX: 48, Base: 12, AngleDeg: 25},
			Mach:   4, ThermalSpeed: 0.125, ParticlesPerCell: 2},
		dsmc.ShockTube3D{GridNX: 40, GridNY: 4, GridNZ: 4,
			ThermalSpeed: 0.125, PistonSpeed: 0.131, ParticlesPerCell: 4, Precision: dsmc.Float32},
	}
	for _, sc := range scenarios {
		t.Run(sc.Kind(), func(t *testing.T) {
			spec, err := dsmc.NewScenarioSpec(sc)
			if err != nil {
				t.Fatal(err)
			}
			raw, err := json.Marshal(spec)
			if err != nil {
				t.Fatal(err)
			}
			var back dsmc.ScenarioSpec
			if err := json.Unmarshal(raw, &back); err != nil {
				t.Fatal(err)
			}
			got, err := back.Scenario()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, sc) {
				t.Errorf("round trip changed the scenario:\n got %+v\nwant %+v", got, sc)
			}
		})
	}

	// Legacy Config → first-class equivalent.
	spec, err := dsmc.NewScenarioSpec(goldenWedgeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kind != dsmc.KindWedgeTunnel2D {
		t.Errorf("Config serialised as %q, want %q", spec.Kind, dsmc.KindWedgeTunnel2D)
	}
	sc, err := spec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sc.(dsmc.WedgeTunnel2D); !ok {
		t.Errorf("Config deserialised as %T", sc)
	}

	// Unknown kinds are rejected.
	if _, err := (dsmc.ScenarioSpec{Kind: "warp-drive"}).Scenario(); err == nil {
		t.Error("unknown scenario kind accepted")
	}
}

// TestShockTube3DCheckpointRoundTrip: run(40) equals run(20) +
// Checkpoint + RestoreSimulation + run(20) for the 3D scenario through
// the public API (at a different worker count), and a 3D checkpoint
// refuses to restore into a 2D simulation — the kind header dispatch.
func TestShockTube3DCheckpointRoundTrip(t *testing.T) {
	sc := dsmc.ShockTube3D{
		GridNX: 40, GridNY: 4, GridNZ: 4,
		ThermalSpeed: 0.125, MeanFreePath: 0.5, PistonSpeed: 0.131,
		ParticlesPerCell: 6, Seed: 11,
	}
	straight, err := dsmc.NewSimulation(sc)
	if err != nil {
		t.Fatal(err)
	}
	straight.Run(40)
	wantField, err := straight.Sample(10).Field(dsmc.Temperature)
	if err != nil {
		t.Fatal(err)
	}

	half, err := dsmc.NewSimulation(sc)
	if err != nil {
		t.Fatal(err)
	}
	half.Run(20)
	var buf bytes.Buffer
	if err := half.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	sc2 := sc
	sc2.Workers = 3
	restored, err := dsmc.RestoreSimulation(sc2, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	restored.Run(20)
	gotField, err := restored.Sample(10).Field(dsmc.Temperature)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Collisions() != straight.Collisions() {
		t.Fatalf("collisions %d != %d", restored.Collisions(), straight.Collisions())
	}
	for c := range wantField.Data {
		if math.Float64bits(gotField.Data[c]) != math.Float64bits(wantField.Data[c]) {
			t.Fatalf("restored temperature field differs at cell %d: %v vs %v",
				c, gotField.Data[c], wantField.Data[c])
		}
	}

	// Kind dispatch: the same stream must not restore into a 2D tunnel.
	if _, err := dsmc.RestoreSimulation(goldenWedgeConfig(), bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("3D checkpoint restored into a 2D simulation")
	}
}
