package dsmc

import (
	"context"
	"fmt"

	"dsmc/internal/run"
	"dsmc/internal/store"
)

// This file is the distributed-execution surface of a sweep: a sweep's
// job list, single-job execution, and result assembly as three separate
// entry points. A coordinator process enumerates the jobs with
// SweepJobs, hands them to pull-workers that execute them with
// RunSweepJob (uploading checkpoints through the JobCheckpoint they are
// given), and assembles the uploaded outputs with AssembleSweepResult.
//
// The three functions deliberately share every line of lowering,
// seeding, stepping and aggregation code with the in-process RunSweep,
// so a sweep computed by any number of workers — including workers that
// crashed and were re-dispatched, resuming from their last uploaded
// checkpoint — produces a result bit-identical to RunSweep's.

// SweepJob identifies one replica job of a sweep: the point (scenario)
// index, the replica index, and the canonical job ID that RunSweep's
// event stream uses for the same job.
type SweepJob struct {
	ID         string `json:"id"`
	Point      int    `json:"point"`
	Replica    int    `json:"replica"`
	StepsTotal int    `json:"steps_total"`
	// StoreKey is the job's content-addressed result-store key ID — a
	// pure function of the spec's determinism contract (spec
	// fingerprint, master seed, point, replica), so every process that
	// holds the spec derives the same key. A coordinator with a store
	// uses it to satisfy jobs from finished artifacts instead of
	// dispatching them.
	StoreKey string `json:"store_key,omitempty"`
}

// SweepJobs enumerates the replica jobs of a validated spec in
// deterministic (point, replica) order. The list is a pure function of
// the spec, so every process that holds the spec agrees on the job set.
func SweepJobs(spec SweepSpec) ([]SweepJob, error) {
	sp, _, err := lowerSpec(spec)
	if err != nil {
		return nil, err
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	total := sp.WarmSteps + sp.SampleSteps
	jobs := make([]SweepJob, 0, len(sp.Scenarios)*sp.Replicas)
	for si := range sp.Scenarios {
		for r := 0; r < sp.Replicas; r++ {
			jobs = append(jobs, SweepJob{
				ID:         run.JobName(sp.Scenarios[si].Name, r),
				Point:      si,
				Replica:    r,
				StepsTotal: total,
				StoreKey:   sp.OutputKey(si, r).ID(),
			})
		}
	}
	return jobs, nil
}

// AggregateJobID is the canonical ID of a point's fan-in node in status
// tables and event streams (it is not a dispatchable job: aggregation
// runs wherever the outputs are assembled).
func AggregateJobID(pointName string) string { return run.AggregateName(pointName) }

// ReplicaOutput is one finished replica job's contribution to the
// aggregation: the requested time-averaged quantity fields keyed by
// quantity slug, the fitted shock angle (NaN for scenarios without a
// wedge), and the integer diagnostics. Transport note: ShockAngleDeg
// may be NaN, which encoding/json rejects — ship outputs with a
// bit-exact binary codec (internal/coord does), not with json.Marshal.
type ReplicaOutput struct {
	Fields        map[string][]float64
	ShockAngleDeg float64
	Collisions    int64
	NFlow         int
}

// JobCheckpoint is where a running sweep job persists its state: Load
// returns the last saved checkpoint (nil when none), Save durably
// replaces it, Discard removes a checkpoint found corrupt or stale.
// The distributed worker backs this with coordinator uploads; RunSweep's
// local jobs back it with an atomically written file.
type JobCheckpoint interface {
	Load() ([]byte, error)
	Save(data []byte) error
	Discard() error
}

// StepTrace is one completed engine step's flight-recorder record:
// the step index, that step's wall time per pipeline phase in
// nanoseconds (indexed like StepPhases), and the flow's particle
// count. The timings come from the engine's existing phase-time
// chokepoint — observing them adds no clock reads and cannot perturb
// results.
type StepTrace struct {
	Step      int      `json:"step"`
	PhaseNs   [4]int64 `json:"phase_ns"`
	Particles int      `json:"particles"`
}

// StepPhases names the four pipeline phases, indexing StepTrace.PhaseNs.
var StepPhases = [4]string{"move+boundary", "sort", "select", "collide"}

// SweepJobIO carries the side channels of a single-job execution.
type SweepJobIO struct {
	// Checkpoint, when non-nil, makes the job resumable: state is saved
	// every CheckpointEvery steps (default: the spec's CheckpointEvery,
	// then 50) and on context cancellation, and a re-run resumes from the
	// last save bit-identically. The spec's CheckpointDir is ignored
	// here — the caller owns placement.
	Checkpoint      JobCheckpoint
	CheckpointEvery int
	// Progress observes (stepsDone, stepsTotal) at start, after every
	// checkpoint interval, and at completion.
	Progress func(done, total int)
	// OnStepTrace, when non-nil, observes every completed step's phase
	// timings — the flight-recorder feed. Called on the stepping
	// goroutine; implementations must be fast and must not block.
	OnStepTrace func(StepTrace)
}

// RunSweepJob executes exactly one replica job of a sweep — the unit a
// distributed worker pulls. The job's seed derivation, stepping loop and
// checkpoint codec are the same code RunSweep runs in-process, so the
// returned output is bit-identical to the contribution the same
// (point, replica) makes inside RunSweep, wherever and however often the
// job is attempted.
func RunSweepJob(ctx context.Context, spec SweepSpec, point, replica int, io SweepJobIO) (*ReplicaOutput, error) {
	sp, _, err := lowerSpec(spec)
	if err != nil {
		return nil, err
	}
	every := io.CheckpointEvery
	if every <= 0 {
		every = spec.CheckpointEvery
	}
	jio := run.JobIO{Every: every, Progress: io.Progress}
	if io.Checkpoint != nil {
		jio.Ckpt = io.Checkpoint
	}
	if spec.ResultStoreDir != "" {
		st, err := store.Open(spec.ResultStoreDir)
		if err != nil {
			return nil, fmt.Errorf("dsmc: opening result store: %w", err)
		}
		jio.Results = st
	}
	if trace := io.OnStepTrace; trace != nil {
		jio.StepTrace = func(step int, phaseNs [4]int64, particles int) {
			trace(StepTrace{Step: step, PhaseNs: phaseNs, Particles: particles})
		}
	}
	res, err := run.RunJob(ctx, sp, point, replica, jio)
	if err != nil {
		return nil, err
	}
	return &ReplicaOutput{
		Fields:        res.Fields,
		ShockAngleDeg: res.ShockAngleDeg,
		Collisions:    res.Collisions,
		NFlow:         res.NFlow,
	}, nil
}

// AssembleSweepResult fans a sweep's collected job outputs into the
// public result: outputs[point][replica] must be fully populated in
// (point, replica) order — SweepJobs order. The aggregation is the
// identical index-order Welford merge RunSweep's fan-in nodes run, so
// the assembled result is bit-identical to the in-process run's
// regardless of which workers computed which jobs in which order.
func AssembleSweepResult(spec SweepSpec, outputs [][]*ReplicaOutput) (*SweepResult, error) {
	sp, plans, err := lowerSpec(spec)
	if err != nil {
		return nil, err
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if len(outputs) != len(sp.Scenarios) {
		return nil, fmt.Errorf("dsmc: %d output groups for %d points", len(outputs), len(sp.Scenarios))
	}
	aggs := make([]*run.Aggregate, len(sp.Scenarios))
	for si := range sp.Scenarios {
		if len(outputs[si]) != sp.Replicas {
			return nil, fmt.Errorf("dsmc: point %d has %d outputs for %d replicas", si, len(outputs[si]), sp.Replicas)
		}
		rs := make([]*run.ReplicaResult, sp.Replicas)
		for r, o := range outputs[si] {
			if o == nil {
				return nil, fmt.Errorf("dsmc: point %d replica %d output missing", si, r)
			}
			rs[r] = &run.ReplicaResult{
				Fields:        o.Fields,
				ShockAngleDeg: o.ShockAngleDeg,
				Collisions:    o.Collisions,
				NFlow:         o.NFlow,
			}
		}
		aggs[si] = sp.AggregateScenario(si, rs)
	}
	return assembleResult(spec.Name, plans, aggs), nil
}
