package dsmc_test

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"dsmc"
)

func smallPublicConfig() dsmc.Config {
	cfg := dsmc.PaperConfig()
	cfg.GridNX, cfg.GridNY = 48, 24
	cfg.Wedge = &dsmc.WedgeSpec{LeadX: 10, Base: 12, AngleDeg: 30}
	cfg.ParticlesPerCell = 4
	cfg.Seed = 7
	return cfg
}

// TestConfigValidate: unknown enum values and out-of-range knobs are
// rejected with errors instead of silently defaulting.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*dsmc.Config)
		errPart string
	}{
		{"unknown-precision", func(c *dsmc.Config) { c.Precision = "float16" }, "precision"},
		{"unknown-model", func(c *dsmc.Config) { c.Model = "lennard-jones" }, "model"},
		{"unknown-backend", func(c *dsmc.Config) { c.Backend = dsmc.Backend(42) }, "backend"},
		{"cm-float32", func(c *dsmc.Config) { c.Backend = dsmc.ConnectionMachine; c.Precision = dsmc.Float32 }, "fixed-point"},
		{"negative-lambda", func(c *dsmc.Config) { c.MeanFreePath = -1 }, "MeanFreePath"},
		{"zero-percell", func(c *dsmc.Config) { c.ParticlesPerCell = 0 }, "ParticlesPerCell"},
		{"negative-workers", func(c *dsmc.Config) { c.Workers = -2 }, "Workers"},
		{"negative-procs", func(c *dsmc.Config) { c.PhysProcs = -1 }, "PhysProcs"},
		{"zero-grid", func(c *dsmc.Config) { c.GridNX = 0 }, "grid"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallPublicConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("Validate accepted the broken configuration")
			}
			if !strings.Contains(err.Error(), tc.errPart) {
				t.Errorf("error %q does not mention %q", err, tc.errPart)
			}
			if _, err := dsmc.NewSimulation(cfg); err == nil {
				t.Error("NewSimulation accepted the broken configuration")
			}
		})
	}
	cfg := smallPublicConfig()
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid configuration rejected: %v", err)
	}
}

// TestPublicCheckpointRoundTrip: run(60) equals run(30)+Checkpoint+
// RestoreSimulation+run(30) through the public API, including the
// sampled field, for both precisions.
func TestPublicCheckpointRoundTrip(t *testing.T) {
	for _, prec := range []dsmc.Precision{dsmc.Float64, dsmc.Float32} {
		t.Run(string(prec), func(t *testing.T) {
			cfg := smallPublicConfig()
			cfg.Precision = prec

			straight, err := dsmc.NewSimulation(cfg)
			if err != nil {
				t.Fatal(err)
			}
			straight.Run(40)
			wantField := straight.SampleDensity(20)

			half, err := dsmc.NewSimulation(cfg)
			if err != nil {
				t.Fatal(err)
			}
			half.Run(30)
			var buf bytes.Buffer
			if err := half.Checkpoint(&buf); err != nil {
				t.Fatal(err)
			}

			cfg2 := cfg
			cfg2.Workers = 3
			restored, err := dsmc.RestoreSimulation(cfg2, bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			restored.Run(10)
			gotField := restored.SampleDensity(20)

			if got, want := restored.StepCount(), straight.StepCount(); got != want {
				t.Fatalf("step count %d != %d", got, want)
			}
			if got, want := restored.Collisions(), straight.Collisions(); got != want {
				t.Fatalf("collisions %d != %d", got, want)
			}
			if got, want := restored.NFlow(), straight.NFlow(); got != want {
				t.Fatalf("flow count %d != %d", got, want)
			}
			for c := range wantField.Data {
				if math.Float64bits(gotField.Data[c]) != math.Float64bits(wantField.Data[c]) {
					t.Fatalf("sampled density cell %d differs: %v vs %v",
						c, gotField.Data[c], wantField.Data[c])
				}
			}
		})
	}
}

// TestCheckpointCMRejected: the fixed-point backend reports checkpointing
// as unsupported rather than silently writing nothing.
func TestCheckpointCMRejected(t *testing.T) {
	cfg := smallPublicConfig()
	cfg.Backend = dsmc.ConnectionMachine
	cfg.PhysProcs = 1024
	s, err := dsmc.NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err == nil {
		t.Error("ConnectionMachine checkpoint succeeded")
	}
}

// TestRunSweepPublic: a two-point sweep aggregates deterministically
// across pool sizes through the public API, and the result surfaces a
// usable mean Field.
func TestRunSweepPublic(t *testing.T) {
	spec := dsmc.SweepSpec{
		Name: "lambda-sweep",
		Base: smallPublicConfig(),
		Points: []dsmc.SweepPoint{
			{Name: "near-continuum", MeanFreePath: f64(0)},
			{Name: "rarefied", MeanFreePath: f64(0.5)},
		},
		Replicas:    2,
		WarmSteps:   8,
		SampleSteps: 8,
	}
	var results [2]*dsmc.SweepResult
	for i, pool := range []int{1, 8} {
		spec.Pool = pool
		res, err := dsmc.RunSweep(context.Background(), spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
	}
	for p := range results[0].Points {
		a, b := results[0].Points[p], results[1].Points[p]
		if a.Name != b.Name || a.Replicas != b.Replicas {
			t.Fatalf("point metadata differs: %+v vs %+v", a, b)
		}
		for c := range a.Density.Mean {
			if math.Float64bits(a.Density.Mean[c]) != math.Float64bits(b.Density.Mean[c]) ||
				math.Float64bits(a.Density.Variance[c]) != math.Float64bits(b.Density.Variance[c]) {
				t.Fatalf("point %q density stats differ between pool sizes at cell %d", a.Name, c)
			}
		}
		if math.Float64bits(a.ShockAngleDeg.Mean) != math.Float64bits(b.ShockAngleDeg.Mean) {
			t.Fatalf("point %q shock angle differs between pool sizes", a.Name)
		}
	}
	f := results[0].Points[1].Field()
	if f.NX != spec.Base.GridNX || f.NY != spec.Base.GridNY {
		t.Errorf("mean field shape %dx%d, want %dx%d", f.NX, f.NY, spec.Base.GridNX, spec.Base.GridNY)
	}
	if fs := f.FreestreamMean(); math.IsNaN(fs) || fs <= 0 {
		t.Errorf("mean field freestream density %v, want positive", fs)
	}
}

// TestRunEnsemblePublic: the single-point convenience reports the
// replica scatter.
func TestRunEnsemblePublic(t *testing.T) {
	res, err := dsmc.RunEnsemble(context.Background(), smallPublicConfig(), 3, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replicas != 3 || res.NFlow.N != 3 {
		t.Errorf("replicas recorded %d/%d, want 3/3", res.Replicas, res.NFlow.N)
	}
	if res.NFlow.Mean <= 0 {
		t.Errorf("mean flow count %v, want positive", res.NFlow.Mean)
	}
}

// TestSweepRejectsBadPoints: point overrides are validated per point.
func TestSweepRejectsBadPoints(t *testing.T) {
	base := smallPublicConfig()
	base.Wedge = nil
	_, err := dsmc.RunSweep(context.Background(), dsmc.SweepSpec{
		Base:        base,
		Points:      []dsmc.SweepPoint{{Name: "angled", WedgeAngleDeg: f64(25)}},
		Replicas:    1,
		WarmSteps:   1,
		SampleSteps: 1,
	}, nil)
	if err == nil {
		t.Error("wedge-angle override without a wedge was accepted")
	}
	_, err = dsmc.RunSweep(context.Background(), dsmc.SweepSpec{
		Base:        smallPublicConfig(),
		Points:      []dsmc.SweepPoint{{Name: "subsonic", Mach: f64(0.5)}},
		Replicas:    1,
		WarmSteps:   1,
		SampleSteps: 1,
	}, nil)
	if err == nil {
		t.Error("subsonic sweep point was accepted")
	}
}

func f64(v float64) *float64 { return &v }
func iptr(v int) *int        { return &v }

// TestSweepGridShapeOverride: sweep points may override the grid shape;
// each point's aggregate carries its own field shape for every sampled
// quantity, and the whole sweep stays bit-identical across pool sizes.
func TestSweepGridShapeOverride(t *testing.T) {
	spec := dsmc.SweepSpec{
		Name:       "grid-sweep",
		Base:       smallPublicConfig(),
		Quantities: []dsmc.Quantity{dsmc.Density, dsmc.Temperature},
		Points: []dsmc.SweepPoint{
			{Name: "base-grid"},
			{Name: "coarse", GridNX: iptr(40), GridNY: iptr(20)},
		},
		Replicas:    2,
		WarmSteps:   6,
		SampleSteps: 6,
	}
	var results [2]*dsmc.SweepResult
	for i, pool := range []int{1, 4} {
		spec.Pool = pool
		res, err := dsmc.RunSweep(context.Background(), spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
	}
	res := results[0]
	wantShapes := [][2]int{{48, 24}, {40, 20}}
	for p, want := range wantShapes {
		for _, q := range []dsmc.Quantity{dsmc.Density, dsmc.Temperature} {
			fs, ok := res.Points[p].Fields[q]
			if !ok {
				t.Fatalf("point %d missing quantity %q", p, q)
			}
			if fs.NX != want[0] || fs.NY != want[1] || len(fs.Mean) != want[0]*want[1] {
				t.Errorf("point %d %s shape %dx%d (%d cells), want %dx%d",
					p, q, fs.NX, fs.NY, len(fs.Mean), want[0], want[1])
			}
		}
		f, err := res.Points[p].FieldFor(dsmc.Temperature)
		if err != nil {
			t.Fatal(err)
		}
		if f.NX != want[0] || f.NY != want[1] {
			t.Errorf("point %d mean field shape %dx%d", p, f.NX, f.NY)
		}
	}
	for p := range res.Points {
		for q, fa := range res.Points[p].Fields {
			fb := results[1].Points[p].Fields[q]
			for c := range fa.Mean {
				if math.Float64bits(fa.Mean[c]) != math.Float64bits(fb.Mean[c]) {
					t.Fatalf("point %d %s differs between pool sizes at cell %d", p, q, c)
				}
			}
		}
	}
}

// TestSweep3DBase: a sweep whose base is the 3D shock tube scenario runs
// end to end, with per-point grid and piston overrides and 3D field
// shapes in the aggregate.
func TestSweep3DBase(t *testing.T) {
	ss, err := dsmc.NewScenarioSpec(dsmc.ShockTube3D{
		GridNX: 32, GridNY: 4, GridNZ: 4,
		ThermalSpeed: 0.125, MeanFreePath: 0.5, PistonSpeed: 0.131,
		ParticlesPerCell: 4, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := dsmc.RunSweep(context.Background(), dsmc.SweepSpec{
		Name:       "tube-sweep",
		Scenario:   ss,
		Quantities: []dsmc.Quantity{dsmc.Density, dsmc.VelocityX, dsmc.Temperature},
		Points: []dsmc.SweepPoint{
			{Name: "short"},
			{Name: "long", GridNX: iptr(48)},
			{Name: "fast", PistonSpeed: f64(0.2)},
		},
		Replicas:    2,
		WarmSteps:   6,
		SampleSteps: 6,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("%d points", len(res.Points))
	}
	wantNX := []int{32, 48, 32}
	for p := range res.Points {
		if res.Points[p].Kind != dsmc.KindShockTube3D {
			t.Errorf("point %d kind %q", p, res.Points[p].Kind)
		}
		fs := res.Points[p].Fields[dsmc.VelocityX]
		if fs.NX != wantNX[p] || fs.NY != 4 || fs.NZ != 4 || len(fs.Mean) != wantNX[p]*16 {
			t.Errorf("point %d velocity-x shape %dx%dx%d (%d cells)",
				p, fs.NX, fs.NY, fs.NZ, len(fs.Mean))
		}
		// No wedge, no shock-angle fit: every replica must be dropped.
		if res.Points[p].ShockAngleDeg.N != 0 || res.Points[p].ShockAngleDeg.Dropped != 2 {
			t.Errorf("point %d shock-angle stats %+v, want all dropped", p, res.Points[p].ShockAngleDeg)
		}
	}
	// A wedge-angle override on a tube is a validation error.
	_, err = dsmc.RunSweep(context.Background(), dsmc.SweepSpec{
		Scenario:    ss,
		Points:      []dsmc.SweepPoint{{Name: "bad", WedgeAngleDeg: f64(25)}},
		Replicas:    1,
		WarmSteps:   1,
		SampleSteps: 1,
	}, nil)
	if err == nil {
		t.Error("wedge-angle override on a shock tube was accepted")
	}
}

// TestRunEnsembleScenario: RunEnsemble accepts first-class scenarios,
// including 3D.
func TestRunEnsembleScenario(t *testing.T) {
	res, err := dsmc.RunEnsemble(context.Background(), dsmc.ShockTube3D{
		GridNX: 24, GridNY: 4, GridNZ: 4,
		ThermalSpeed: 0.125, PistonSpeed: 0.131,
		ParticlesPerCell: 4, Seed: 3,
	}, 2, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replicas != 2 || res.NFlow.Mean <= 0 {
		t.Errorf("ensemble result %+v", res)
	}
	if fs := res.Fields[dsmc.Density]; fs.NZ != 4 || len(fs.Mean) != 24*16 {
		t.Errorf("density aggregate shape %dx%dx%d", fs.NX, fs.NY, fs.NZ)
	}
}
