module dsmc

go 1.24
