package dsmc

import (
	"io"
	"math"

	"dsmc/internal/grid"
	"dsmc/internal/phys"
	"dsmc/internal/sample"
)

// Field is a time-averaged macroscopic field over the cell grid,
// normalised by its freestream value (density and temperature fields
// read 1.0 in undisturbed flow). The shape header carries the grid
// dimensions including depth: NZ = 1 for 2D scenarios, and 3D scenarios
// produce NZ > 1 fields whose Slice, ProjectXY and ProfileX views feed
// the 2D analysis and renderers.
type Field struct {
	NX, NY, NZ int
	// Quantity names what the field measures (Density unless derived
	// otherwise through Sampling.Field).
	Quantity Quantity
	// Data holds NZ planes of NY rows of NX values, row-major from the
	// lower wall (x fastest), matching the engine's cell indexing.
	Data []float64

	grid  grid.Grid // one z-plane
	vols  []float64 // per-cell gas volumes of one plane; nil = unit
	wedge *WedgeSpec
	mach  float64
}

// Dims returns 2 or 3.
func (f *Field) Dims() int {
	if f.NZ > 1 {
		return 3
	}
	return 2
}

// At reads the field at cell (ix, iy) of the first z-plane (the only
// plane for 2D fields); use At3 or Slice for the depth dimension.
func (f *Field) At(ix, iy int) float64 { return f.Data[f.grid.Index(ix, iy)] }

// At3 reads the field at cell (ix, iy, iz).
func (f *Field) At3(ix, iy, iz int) float64 {
	return f.Data[iz*f.NX*f.NY+f.grid.Index(ix, iy)]
}

// Slice extracts the 2D x-y field of plane iz.
func (f *Field) Slice(iz int) *Field {
	n := f.NX * f.NY
	return &Field{
		NX: f.NX, NY: f.NY, NZ: 1,
		Quantity: f.Quantity,
		Data:     append([]float64(nil), f.Data[iz*n:(iz+1)*n]...),
		grid:     f.grid,
		vols:     f.planeVols(),
		wedge:    f.wedge,
		mach:     f.mach,
	}
}

// ProjectXY averages the field over z, returning the 2D x-y view (a
// copy of the field itself for NZ = 1).
func (f *Field) ProjectXY() *Field {
	n := f.NX * f.NY
	data := make([]float64, n)
	for iz := 0; iz < f.NZ; iz++ {
		plane := f.Data[iz*n : (iz+1)*n]
		for c, v := range plane {
			data[c] += v
		}
	}
	for c := range data {
		data[c] /= float64(f.NZ)
	}
	return &Field{
		NX: f.NX, NY: f.NY, NZ: 1,
		Quantity: f.Quantity,
		Data:     data,
		grid:     f.grid,
		vols:     f.planeVols(),
		wedge:    f.wedge,
		mach:     f.mach,
	}
}

// ProfileX returns the field averaged over the cross-section (all y and
// z) for each x — the 1D view of a shock-tube field.
func (f *Field) ProfileX() []float64 {
	out := make([]float64, f.NX)
	slab := float64(f.NY * f.NZ)
	for c, v := range f.Data {
		out[c%f.NX] += v
	}
	for ix := range out {
		out[ix] /= slab
	}
	return out
}

// plane returns the 2D view the analysis and renderers operate on: the
// field itself in 2D, the z-averaged projection in 3D.
func (f *Field) plane() *Field {
	if f.NZ <= 1 {
		return f
	}
	return f.ProjectXY()
}

// planeVols returns one plane's volume table, substituting unit volumes
// when none is attached (3D fields and projections).
func (f *Field) planeVols() []float64 {
	if f.vols != nil {
		return f.vols
	}
	vols := make([]float64, f.NX*f.NY)
	for i := range vols {
		vols[i] = 1
	}
	return vols
}

// Max returns the largest field value.
func (f *Field) Max() float64 {
	m := math.Inf(-1)
	for _, v := range f.Data {
		if v > m {
			m = v
		}
	}
	return m
}

// ASCII renders the field as a text map scaled to [0, max], flow moving
// left to right, the lower wall at the bottom (the z-averaged projection
// for 3D fields).
func (f *Field) ASCII() string {
	p := f.plane()
	return sample.ASCIIMap(p.Data, p.grid, 0, p.Max())
}

// Surface renders the field as banded "density surface" text, the
// figure-2/5 view of the paper.
func (f *Field) Surface(bands int) string {
	p := f.plane()
	return sample.SurfaceASCII(p.Data, p.grid, p.Max(), bands)
}

// WriteCSV writes the field as an NY×NX grid of comma-separated values
// (the z-averaged projection for 3D fields).
func (f *Field) WriteCSV(w io.Writer) error {
	p := f.plane()
	return sample.WriteCSV(w, p.Data, p.grid)
}

// WritePGM writes the field as an 8-bit grayscale PGM image.
func (f *Field) WritePGM(w io.Writer) error {
	p := f.plane()
	return sample.WritePGM(w, p.Data, p.grid, 0, p.Max())
}

// Contours extracts the level-set segments at the given level.
func (f *Field) Contours(level float64) []sample.Segment {
	p := f.plane()
	return sample.Contour(p.Data, p.grid, level)
}

// Window extracts a sub-field — e.g. the stagnation-region zoom of the
// paper's figures 3 and 6 (the z-averaged projection for 3D fields).
func (f *Field) Window(x0, y0, x1, y1 int) *Field {
	p := f.plane()
	data, w, h := sample.Window(p.Data, p.grid, x0, y0, x1, y1)
	sub := grid.New(w, h)
	pvols := p.planeVols()
	vols := make([]float64, w*h)
	for iy := y0; iy < y1; iy++ {
		for ix := x0; ix < x1; ix++ {
			vols[sub.Index(ix-x0, iy-y0)] = pvols[p.grid.Index(ix, iy)]
		}
	}
	return &Field{NX: w, NY: h, NZ: 1, Quantity: f.Quantity, Data: data, grid: sub, vols: vols, mach: f.mach}
}

// RegionMean averages over [x0,x1)×[y0,y1), skipping solid cells (the
// z-averaged projection for 3D fields).
func (f *Field) RegionMean(x0, y0, x1, y1 int) float64 {
	p := f.plane()
	return sample.RegionMean(p.Data, p.grid, p.planeVols(), x0, y0, x1, y1)
}

// ShockAngleDeg locates the oblique shock above the wedge ramp and
// returns its angle in degrees (NaN if no wedge or no front found).
func (f *Field) ShockAngleDeg() float64 {
	if f.wedge == nil {
		return math.NaN()
	}
	return sample.WedgeShockAngle(f.Data, f.grid,
		f.wedge.LeadX, f.wedge.Base, f.wedge.AngleDeg*math.Pi/180, f.mach) * 180 / math.Pi
}

// ShockThickness measures the 10–90% density-rise distance normal to the
// shock at mid-ramp (the paper reads 3 cells near-continuum, 5 rarefied).
func (f *Field) ShockThickness() float64 {
	if f.wedge == nil {
		return math.NaN()
	}
	post := f.theoreticalRatio()
	beta, err := phys.ObliqueShockBeta(f.mach, f.wedge.AngleDeg*math.Pi/180, phys.GammaDiatomic)
	if err != nil {
		return math.NaN()
	}
	mid := int(f.wedge.LeadX + 0.65*f.wedge.Base)
	return sample.ShockThickness(f.Data, f.grid, mid, post, beta)
}

// PostShockMean averages the density in the stagnation region between the
// ramp surface and the shock near the wedge's downstream half.
func (f *Field) PostShockMean() float64 {
	if f.wedge == nil {
		return math.NaN()
	}
	x0 := int(f.wedge.LeadX + 0.6*f.wedge.Base)
	x1 := int(f.wedge.LeadX + f.wedge.Base - 1)
	y0 := int(0.65 * f.wedge.Base * math.Tan(f.wedge.AngleDeg*math.Pi/180))
	y1 := y0 + 6
	return f.RegionMean(x0, y0, x1, y1)
}

// wallProfile returns the mean density of the lowest four cell rows for
// each column downstream of the wedge's back face.
func (f *Field) wallProfile() (x0 int, prof []float64) {
	x0 = int(f.wedge.LeadX+f.wedge.Base) + 1
	for ix := x0; ix < f.NX-1; ix++ {
		v := sample.RegionMean(f.Data, f.grid, f.planeVols(), ix, 0, ix+1, 4)
		if math.IsNaN(v) {
			v = 0
		}
		prof = append(prof, v)
	}
	return x0, prof
}

// WakeContrast quantifies the wake recompression: the density contrast
// (max-min difference) along the lower wall downstream of the wedge. The
// paper's near-continuum solution shows a fully developed wake shock; in
// the rarefied solution it is washed out.
func (f *Field) WakeContrast() float64 {
	if f.wedge == nil {
		return math.NaN()
	}
	_, prof := f.wallProfile()
	if len(prof) == 0 {
		return math.NaN()
	}
	lo, hi := prof[0], prof[0]
	for _, v := range prof {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

// WakeRecoveryX locates the wake recompression front: the x position
// where the wall density first recovers to half its value at the domain
// exit. In the rarefied flow the wake is more evacuated and recompresses
// farther downstream and more gradually — the paper's "wake shock
// completely washed out".
func (f *Field) WakeRecoveryX() float64 {
	if f.wedge == nil {
		return math.NaN()
	}
	x0, prof := f.wallProfile()
	if len(prof) < 4 {
		return math.NaN()
	}
	exit := (prof[len(prof)-1] + prof[len(prof)-2]) / 2
	level := exit / 2
	for i := 1; i < len(prof); i++ {
		if prof[i-1] < level && prof[i] >= level {
			t := (level - prof[i-1]) / (prof[i] - prof[i-1])
			return float64(x0) + float64(i-1) + t + 0.5
		}
	}
	return math.NaN()
}

// WakeSteepness returns the maximum density slope (per cell, over a
// 3-cell window) of the wall recompression — higher when a wake shock is
// present, lower when rarefaction washes it out.
func (f *Field) WakeSteepness() float64 {
	if f.wedge == nil {
		return math.NaN()
	}
	_, prof := f.wallProfile()
	best := math.NaN()
	for i := 0; i+3 < len(prof); i++ {
		s := (prof[i+3] - prof[i]) / 3
		if math.IsNaN(best) || s > best {
			best = s
		}
	}
	return best
}

// WakeBaseDensity averages the density in the first six cells behind the
// wedge's back face at the wall — the "highly rarefied" wake region of
// the paper: it drops sharply when the mean free path grows.
func (f *Field) WakeBaseDensity() float64 {
	if f.wedge == nil {
		return math.NaN()
	}
	x0 := int(f.wedge.LeadX+f.wedge.Base) + 1
	return sample.RegionMean(f.Data, f.grid, f.planeVols(), x0, 0, x0+6, 4)
}

// theoreticalRatio returns the RH post-shock density ratio for the wedge,
// used as the reference level for front detection.
func (f *Field) theoreticalRatio() float64 {
	return sample.WedgePostShockRatio(f.mach, f.wedge.AngleDeg*math.Pi/180)
}

// FreestreamMean averages the density upstream of the wedge (or the whole
// tunnel when no wedge), which must read 1.0 in a healthy simulation.
func (f *Field) FreestreamMean() float64 {
	x1 := f.NX - 2
	if f.wedge != nil {
		x1 = int(f.wedge.LeadX) - 4
	}
	if x1 < 3 {
		x1 = 3
	}
	return f.RegionMean(2, 2, x1, f.NY-2)
}
