package dsmc

import (
	"io"
	"math"

	"dsmc/internal/grid"
	"dsmc/internal/phys"
	"dsmc/internal/sample"
)

// Field is a time-averaged macroscopic field over the cell grid,
// normalised by its freestream value (density fields read 1.0 in
// undisturbed flow).
type Field struct {
	NX, NY int
	// Data holds NY rows of NX values, row-major from the lower wall.
	Data []float64

	grid  grid.Grid
	vols  []float64
	wedge *WedgeSpec
	mach  float64
}

// At reads the field at cell (ix, iy).
func (f *Field) At(ix, iy int) float64 { return f.Data[f.grid.Index(ix, iy)] }

// Max returns the largest field value.
func (f *Field) Max() float64 {
	m := math.Inf(-1)
	for _, v := range f.Data {
		if v > m {
			m = v
		}
	}
	return m
}

// ASCII renders the field as a text map scaled to [0, max], flow moving
// left to right, the lower wall at the bottom.
func (f *Field) ASCII() string {
	return sample.ASCIIMap(f.Data, f.grid, 0, f.Max())
}

// Surface renders the field as banded "density surface" text, the
// figure-2/5 view of the paper.
func (f *Field) Surface(bands int) string {
	return sample.SurfaceASCII(f.Data, f.grid, f.Max(), bands)
}

// WriteCSV writes the field as an NY×NX grid of comma-separated values.
func (f *Field) WriteCSV(w io.Writer) error {
	return sample.WriteCSV(w, f.Data, f.grid)
}

// WritePGM writes the field as an 8-bit grayscale PGM image.
func (f *Field) WritePGM(w io.Writer) error {
	return sample.WritePGM(w, f.Data, f.grid, 0, f.Max())
}

// Contours extracts the level-set segments at the given level.
func (f *Field) Contours(level float64) []sample.Segment {
	return sample.Contour(f.Data, f.grid, level)
}

// Window extracts a sub-field — e.g. the stagnation-region zoom of the
// paper's figures 3 and 6.
func (f *Field) Window(x0, y0, x1, y1 int) *Field {
	data, w, h := sample.Window(f.Data, f.grid, x0, y0, x1, y1)
	sub := grid.New(w, h)
	vols := make([]float64, w*h)
	for iy := y0; iy < y1; iy++ {
		for ix := x0; ix < x1; ix++ {
			vols[sub.Index(ix-x0, iy-y0)] = f.vols[f.grid.Index(ix, iy)]
		}
	}
	return &Field{NX: w, NY: h, Data: data, grid: sub, vols: vols, mach: f.mach}
}

// RegionMean averages over [x0,x1)×[y0,y1), skipping solid cells.
func (f *Field) RegionMean(x0, y0, x1, y1 int) float64 {
	return sample.RegionMean(f.Data, f.grid, f.vols, x0, y0, x1, y1)
}

// ShockAngleDeg locates the oblique shock above the wedge ramp and
// returns its angle in degrees (NaN if no wedge or no front found).
func (f *Field) ShockAngleDeg() float64 {
	if f.wedge == nil {
		return math.NaN()
	}
	return sample.WedgeShockAngle(f.Data, f.grid,
		f.wedge.LeadX, f.wedge.Base, f.wedge.AngleDeg*math.Pi/180, f.mach) * 180 / math.Pi
}

// ShockThickness measures the 10–90% density-rise distance normal to the
// shock at mid-ramp (the paper reads 3 cells near-continuum, 5 rarefied).
func (f *Field) ShockThickness() float64 {
	if f.wedge == nil {
		return math.NaN()
	}
	post := f.theoreticalRatio()
	beta, err := phys.ObliqueShockBeta(f.mach, f.wedge.AngleDeg*math.Pi/180, phys.GammaDiatomic)
	if err != nil {
		return math.NaN()
	}
	mid := int(f.wedge.LeadX + 0.65*f.wedge.Base)
	return sample.ShockThickness(f.Data, f.grid, mid, post, beta)
}

// PostShockMean averages the density in the stagnation region between the
// ramp surface and the shock near the wedge's downstream half.
func (f *Field) PostShockMean() float64 {
	if f.wedge == nil {
		return math.NaN()
	}
	x0 := int(f.wedge.LeadX + 0.6*f.wedge.Base)
	x1 := int(f.wedge.LeadX + f.wedge.Base - 1)
	y0 := int(0.65 * f.wedge.Base * math.Tan(f.wedge.AngleDeg*math.Pi/180))
	y1 := y0 + 6
	return f.RegionMean(x0, y0, x1, y1)
}

// wallProfile returns the mean density of the lowest four cell rows for
// each column downstream of the wedge's back face.
func (f *Field) wallProfile() (x0 int, prof []float64) {
	x0 = int(f.wedge.LeadX+f.wedge.Base) + 1
	for ix := x0; ix < f.NX-1; ix++ {
		v := sample.RegionMean(f.Data, f.grid, f.vols, ix, 0, ix+1, 4)
		if math.IsNaN(v) {
			v = 0
		}
		prof = append(prof, v)
	}
	return x0, prof
}

// WakeContrast quantifies the wake recompression: the density contrast
// (max-min difference) along the lower wall downstream of the wedge. The
// paper's near-continuum solution shows a fully developed wake shock; in
// the rarefied solution it is washed out.
func (f *Field) WakeContrast() float64 {
	if f.wedge == nil {
		return math.NaN()
	}
	_, prof := f.wallProfile()
	if len(prof) == 0 {
		return math.NaN()
	}
	lo, hi := prof[0], prof[0]
	for _, v := range prof {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

// WakeRecoveryX locates the wake recompression front: the x position
// where the wall density first recovers to half its value at the domain
// exit. In the rarefied flow the wake is more evacuated and recompresses
// farther downstream and more gradually — the paper's "wake shock
// completely washed out".
func (f *Field) WakeRecoveryX() float64 {
	if f.wedge == nil {
		return math.NaN()
	}
	x0, prof := f.wallProfile()
	if len(prof) < 4 {
		return math.NaN()
	}
	exit := (prof[len(prof)-1] + prof[len(prof)-2]) / 2
	level := exit / 2
	for i := 1; i < len(prof); i++ {
		if prof[i-1] < level && prof[i] >= level {
			t := (level - prof[i-1]) / (prof[i] - prof[i-1])
			return float64(x0) + float64(i-1) + t + 0.5
		}
	}
	return math.NaN()
}

// WakeSteepness returns the maximum density slope (per cell, over a
// 3-cell window) of the wall recompression — higher when a wake shock is
// present, lower when rarefaction washes it out.
func (f *Field) WakeSteepness() float64 {
	if f.wedge == nil {
		return math.NaN()
	}
	_, prof := f.wallProfile()
	best := math.NaN()
	for i := 0; i+3 < len(prof); i++ {
		s := (prof[i+3] - prof[i]) / 3
		if math.IsNaN(best) || s > best {
			best = s
		}
	}
	return best
}

// WakeBaseDensity averages the density in the first six cells behind the
// wedge's back face at the wall — the "highly rarefied" wake region of
// the paper: it drops sharply when the mean free path grows.
func (f *Field) WakeBaseDensity() float64 {
	if f.wedge == nil {
		return math.NaN()
	}
	x0 := int(f.wedge.LeadX+f.wedge.Base) + 1
	return sample.RegionMean(f.Data, f.grid, f.vols, x0, 0, x0+6, 4)
}

// theoreticalRatio returns the RH post-shock density ratio for the wedge,
// used as the reference level for front detection.
func (f *Field) theoreticalRatio() float64 {
	return sample.WedgePostShockRatio(f.mach, f.wedge.AngleDeg*math.Pi/180)
}

// FreestreamMean averages the density upstream of the wedge (or the whole
// tunnel when no wedge), which must read 1.0 in a healthy simulation.
func (f *Field) FreestreamMean() float64 {
	x1 := f.NX - 2
	if f.wedge != nil {
		x1 = int(f.wedge.LeadX) - 4
	}
	if x1 < 3 {
		x1 = 3
	}
	return f.RegionMean(2, 2, x1, f.NY-2)
}
