package dsmc

import (
	"context"
	"errors"
	"fmt"

	"dsmc/internal/grid"
	"dsmc/internal/run"
	"dsmc/internal/store"
)

// SweepPoint is one point of a parameter sweep: a name plus optional
// overrides applied to the sweep's base scenario. Nil fields keep the
// base value, so a point only states what it varies. Overriding a knob
// the base scenario does not have (e.g. WedgeAngleDeg on a shock tube,
// or GridNZ on a 2D tunnel) is a validation error.
type SweepPoint struct {
	Name             string   `json:"name"`
	Mach             *float64 `json:"mach,omitempty"`
	MeanFreePath     *float64 `json:"mean_free_path,omitempty"`
	ParticlesPerCell *float64 `json:"particles_per_cell,omitempty"`
	ThermalSpeed     *float64 `json:"thermal_speed,omitempty"`
	// WedgeAngleDeg overrides the (first) wedge's ramp angle; the base
	// scenario must have a wedge.
	WedgeAngleDeg *float64 `json:"wedge_angle_deg,omitempty"`
	// GridNX/GridNY/GridNZ override the grid shape — points of one sweep
	// may run different grids, and the aggregate carries per-point field
	// shapes. GridNZ applies to 3D scenarios only.
	GridNX *int `json:"grid_nx,omitempty"`
	GridNY *int `json:"grid_ny,omitempty"`
	GridNZ *int `json:"grid_nz,omitempty"`
	// PistonSpeed overrides the 3D shock tube's piston speed.
	PistonSpeed *float64 `json:"piston_speed,omitempty"`
}

// SweepSpec describes an ensemble or parameter sweep: a base scenario,
// the points that perturb it (none means a single-point ensemble of the
// base), the quantities to sample, and the replication and execution
// knobs.
type SweepSpec struct {
	// Name labels the sweep in events and results.
	Name string `json:"name,omitempty"`
	// Base is the legacy 2D base configuration — the compatibility
	// surface. Ignored when Scenario is set.
	Base Config `json:"base,omitempty"`
	// Scenario is the first-class base scenario (any kind, including the
	// 3D shock tube). Its seed is the sweep's base seed: every job
	// derives an independent seed from it, so a sweep is reproducible
	// from the spec alone. Its Workers is the per-simulation worker
	// count (default 1 under orchestration, so the job pool and the
	// inner sharding multiply rather than oversubscribe).
	Scenario *ScenarioSpec `json:"scenario,omitempty"`
	// Quantities are the fields each replica samples and each point
	// aggregates; empty means Density alone.
	Quantities []Quantity `json:"quantities,omitempty"`
	// Points are the sweep points; empty runs the base alone.
	Points []SweepPoint `json:"points,omitempty"`
	// Replicas is the number of independent replicas per point (>= 1).
	Replicas int `json:"replicas"`
	// WarmSteps run before sampling; SampleSteps are averaged.
	WarmSteps   int `json:"warm_steps"`
	SampleSteps int `json:"sample_steps"`
	// Pool bounds the number of concurrently running simulations;
	// 0 selects runtime.NumCPU().
	Pool int `json:"pool,omitempty"`
	// CheckpointDir, when set, makes jobs resumable: each persists its
	// full state there every CheckpointEvery steps (default 50), and a
	// re-run of the same spec over the same directory continues from the
	// checkpoints — bit-identically to an uninterrupted run.
	CheckpointDir   string `json:"checkpoint_dir,omitempty"`
	CheckpointEvery int    `json:"checkpoint_every,omitempty"`
	// ResultStoreDir, when set, memoizes the sweep against a
	// content-addressed result store rooted there: finished replica
	// outputs and point aggregates are published as checksummed
	// artifacts keyed by (spec fingerprint, master seed, point index,
	// replica), and a later sweep deriving the same keys — a re-run, or
	// a sweep sharing points at the same indices — reuses the verified
	// artifacts instead of recomputing, bit-identically. The dsmcd
	// server manages its own store; specs submitted to it must leave
	// this empty.
	ResultStoreDir string `json:"result_store_dir,omitempty"`
}

// BaseScenario resolves the sweep's base: the first-class Scenario when
// set, the legacy Base config otherwise.
func (spec *SweepSpec) BaseScenario() (Scenario, error) {
	if spec.Scenario != nil {
		return spec.Scenario.Scenario()
	}
	return spec.Base, nil
}

// ScalarStats is a cross-replica mean/variance with its 95% confidence
// half-width (normal approximation). Dropped counts replicas whose
// measurement was undefined (e.g. no shock front found).
type ScalarStats struct {
	Mean     float64 `json:"mean"`
	Variance float64 `json:"variance"`
	CI95     float64 `json:"ci95"`
	N        int     `json:"n"`
	Dropped  int     `json:"dropped,omitempty"`
}

// FieldStats carries per-cell cross-replica statistics of a sampled
// field, row-major over the grid like Field.Data, with the point's own
// field shape (points of one sweep may run different grids; NZ = 1 for
// 2D scenarios).
type FieldStats struct {
	NX       int       `json:"nx"`
	NY       int       `json:"ny"`
	NZ       int       `json:"nz,omitempty"`
	Mean     []float64 `json:"mean"`
	Variance []float64 `json:"variance"`
	CI95     []float64 `json:"ci95"`
}

// PointResult is one sweep point's aggregate over its replicas: per-cell
// statistics for every requested quantity plus the scalar diagnostics.
type PointResult struct {
	Name     string `json:"name"`
	Kind     string `json:"kind,omitempty"` // resolved scenario kind slug
	Replicas int    `json:"replicas"`
	// Density is the density aggregate — always present, whatever the
	// requested quantity list (the legacy surface).
	Density FieldStats `json:"density"`
	// Fields holds one aggregate per requested quantity, keyed by the
	// Quantity slug.
	Fields        map[Quantity]FieldStats `json:"fields,omitempty"`
	ShockAngleDeg ScalarStats             `json:"shock_angle_deg"`
	Collisions    ScalarStats             `json:"collisions"`
	NFlow         ScalarStats             `json:"nflow"`

	plan *plan // the point's resolved plan, for Field()
}

// FieldFor returns the cross-replica mean of one sampled quantity as a
// Field, with the full analysis surface (shock angle fit, wake metrics,
// renderers, 3D views) available on it.
func (p *PointResult) FieldFor(q Quantity) (*Field, error) {
	fs, ok := p.Fields[q]
	if !ok {
		return nil, fmt.Errorf("dsmc: quantity %q was not sampled by this sweep", q)
	}
	f := &Field{
		NX: fs.NX, NY: fs.NY, NZ: fs.NZ,
		Quantity: q,
		Data:     append([]float64(nil), fs.Mean...),
		grid:     grid.New(fs.NX, fs.NY),
	}
	if f.NZ == 0 {
		f.NZ = 1
	}
	if p.plan != nil {
		f.vols = p.plan.vols
		f.wedge = p.plan.wedge
		f.mach = p.plan.mach
	}
	return f, nil
}

// Field returns the mean density as a Field — the legacy single-quantity
// accessor.
func (p *PointResult) Field() *Field {
	f, err := p.FieldFor(Density)
	if err != nil {
		panic(err) // density is always aggregated
	}
	return f
}

// SweepResult is a completed sweep: one aggregate per point, in point
// order.
type SweepResult struct {
	Name   string        `json:"name,omitempty"`
	Points []PointResult `json:"points"`
}

// SweepEvent is one observation of sweep progress, delivered serially
// to the RunSweep observer. The distributed server reuses the type on
// its NDJSON stream for two additional event kinds: "trace" events
// carry a batch of flight-recorder records from a running job, and
// "keepalive" events carry a coordinator status snapshot.
type SweepEvent struct {
	Type       string `json:"type"`
	Job        string `json:"job,omitempty"`
	Scenario   string `json:"scenario,omitempty"`
	Replica    int    `json:"replica,omitempty"`
	StepsDone  int    `json:"steps_done,omitempty"`
	StepsTotal int    `json:"steps_total,omitempty"`
	Err        string `json:"err,omitempty"`
	// Trace carries per-step phase timings on "trace" events (a small
	// recent batch, piggybacked on worker heartbeats).
	Trace []StepTrace `json:"trace,omitempty"`
	// Status is the coordinator snapshot attached to "keepalive" events.
	Status *SweepStatus `json:"status,omitempty"`
}

// SweepStatus is a point-in-time coordinator snapshot: how many jobs
// are leased out, how many are waiting, how many workers have reported
// in, and the staleness of the oldest live heartbeat.
type SweepStatus struct {
	ActiveJobs         int     `json:"active_jobs"`
	QueueDepth         int     `json:"queue_depth"`
	Workers            int     `json:"workers"`
	MaxHeartbeatAgeSec float64 `json:"max_heartbeat_age_sec"`
}

// errOverride formats the standard knob-not-in-scenario error.
func errOverride(point, knob, kind string) error {
	return fmt.Errorf("dsmc: point %q overrides %s but the base scenario (%s) has no such knob", point, knob, kind)
}

// applyPoint returns a copy of the base scenario with the point's
// overrides applied; overrides the scenario cannot express are errors.
func applyPoint(base Scenario, p SweepPoint) (Scenario, error) {
	reject3D := func(kind string) error {
		if p.GridNZ != nil {
			return errOverride(p.Name, "GridNZ", kind)
		}
		if p.PistonSpeed != nil {
			return errOverride(p.Name, "PistonSpeed", kind)
		}
		return nil
	}
	switch sc := base.(type) {
	case *Config:
		return applyPoint(*sc, p)
	case Config:
		if err := reject3D(sc.Kind()); err != nil {
			return nil, err
		}
		p.applyCommon(&sc.Mach, &sc.MeanFreePath, &sc.ParticlesPerCell, &sc.ThermalSpeed, &sc.GridNX, &sc.GridNY)
		if p.WedgeAngleDeg != nil {
			if sc.Wedge == nil {
				return nil, errOverride(p.Name, "the wedge angle", sc.Kind())
			}
			w := *sc.Wedge
			w.AngleDeg = *p.WedgeAngleDeg
			sc.Wedge = &w
		}
		return sc, nil
	case WedgeTunnel2D:
		if err := reject3D(sc.Kind()); err != nil {
			return nil, err
		}
		p.applyCommon(&sc.Mach, &sc.MeanFreePath, &sc.ParticlesPerCell, &sc.ThermalSpeed, &sc.GridNX, &sc.GridNY)
		applyF(&sc.Wedge.AngleDeg, p.WedgeAngleDeg)
		return sc, nil
	case EmptyTunnel2D:
		if err := reject3D(sc.Kind()); err != nil {
			return nil, err
		}
		if p.WedgeAngleDeg != nil {
			return nil, errOverride(p.Name, "the wedge angle", sc.Kind())
		}
		p.applyCommon(&sc.Mach, &sc.MeanFreePath, &sc.ParticlesPerCell, &sc.ThermalSpeed, &sc.GridNX, &sc.GridNY)
		return sc, nil
	case DoubleWedge2D:
		if err := reject3D(sc.Kind()); err != nil {
			return nil, err
		}
		p.applyCommon(&sc.Mach, &sc.MeanFreePath, &sc.ParticlesPerCell, &sc.ThermalSpeed, &sc.GridNX, &sc.GridNY)
		applyF(&sc.Wedge.AngleDeg, p.WedgeAngleDeg)
		return sc, nil
	case ShockTube3D:
		if p.Mach != nil {
			return nil, errOverride(p.Name, "Mach", sc.Kind())
		}
		if p.WedgeAngleDeg != nil {
			return nil, errOverride(p.Name, "the wedge angle", sc.Kind())
		}
		p.applyCommon(nil, &sc.MeanFreePath, &sc.ParticlesPerCell, &sc.ThermalSpeed, &sc.GridNX, &sc.GridNY)
		applyF(&sc.PistonSpeed, p.PistonSpeed)
		applyI(&sc.GridNZ, p.GridNZ)
		return sc, nil
	}
	return nil, fmt.Errorf("dsmc: point %q: base scenario kind %q cannot be swept", p.Name, base.Kind())
}

// applyCommon applies the overrides every scenario shares onto the
// destination fields; a nil destination means the scenario has no such
// knob (the caller rejects the override explicitly before this runs).
func (p SweepPoint) applyCommon(mach, meanFreePath, particlesPerCell, thermalSpeed *float64, gridNX, gridNY *int) {
	applyF(mach, p.Mach)
	applyF(meanFreePath, p.MeanFreePath)
	applyF(particlesPerCell, p.ParticlesPerCell)
	applyF(thermalSpeed, p.ThermalSpeed)
	applyI(gridNX, p.GridNX)
	applyI(gridNY, p.GridNY)
}

func applyF(dst *float64, v *float64) {
	if dst != nil && v != nil {
		*dst = *v
	}
}

func applyI(dst *int, v *int) {
	if dst != nil && v != nil {
		*dst = *v
	}
}

// lowerSpec translates the public spec to the orchestration layer's:
// every point's scenario is resolved, lowered, and handed to
// internal/run with its own grid shape.
func lowerSpec(spec SweepSpec) (run.Spec, []*plan, error) {
	base, err := spec.BaseScenario()
	if err != nil {
		return run.Spec{}, nil, err
	}
	basePlan, err := base.lower()
	if err != nil {
		return run.Spec{}, nil, err
	}
	if basePlan.backend != Reference {
		return run.Spec{}, nil, errors.New("dsmc: sweeps orchestrate the Reference backend only")
	}
	points := spec.Points
	if len(points) == 0 {
		name := spec.Name
		if name == "" {
			name = "ensemble"
		}
		points = []SweepPoint{{Name: name}}
	}
	quantities := spec.Quantities
	if len(quantities) == 0 {
		quantities = []Quantity{Density}
	}
	hasDensity := false
	qslugs := make([]string, 0, len(quantities)+1)
	for _, q := range quantities {
		qslugs = append(qslugs, string(q))
		hasDensity = hasDensity || q == Density
	}
	if !hasDensity {
		// Density is always aggregated: the legacy result surface and the
		// per-replica shock-angle fit both need it.
		qslugs = append(qslugs, string(Density))
	}

	baseSeed := uint64(0)
	if basePlan.sim != nil {
		baseSeed = basePlan.sim.Seed
	} else if basePlan.sim3 != nil {
		baseSeed = basePlan.sim3.Seed
	}
	sp := run.Spec{
		Name:            spec.Name,
		Quantities:      qslugs,
		Replicas:        spec.Replicas,
		WarmSteps:       spec.WarmSteps,
		SampleSteps:     spec.SampleSteps,
		BaseSeed:        baseSeed,
		Pool:            spec.Pool,
		CheckpointDir:   spec.CheckpointDir,
		CheckpointEvery: spec.CheckpointEvery,
	}
	plans := make([]*plan, len(points))
	for i, p := range points {
		name := p.Name
		if name == "" {
			name = fmt.Sprintf("point-%03d", i)
		}
		sc, err := applyPoint(base, p)
		if err != nil {
			return run.Spec{}, nil, err
		}
		pl, err := sc.lower()
		if err != nil {
			return run.Spec{}, nil, fmt.Errorf("dsmc: point %q: %w", name, err)
		}
		// Under orchestration the outer pool supplies the parallelism;
		// defaulting every job to all cores would oversubscribe.
		if pl.sim != nil && pl.sim.Workers == 0 {
			pl.sim.Workers = 1
		}
		if pl.sim3 != nil && pl.sim3.Workers == 0 {
			pl.sim3.Workers = 1
		}
		plans[i] = pl
		sp.Scenarios = append(sp.Scenarios, run.Scenario{
			Name:    name,
			Sim:     pl.sim,
			Sim3:    pl.sim3,
			Float32: pl.precision == Float32,
		})
	}
	return sp, plans, nil
}

// RunSweep executes the sweep's job DAG — replicas fan out over a
// bounded pool of concurrent simulations, per-point aggregations fan in
// — and returns cross-replica mean/variance/CI statistics per point and
// per requested quantity. Points may override the base scenario's
// geometry and grid shape; each point's aggregate carries its own field
// shape. Aggregates are bit-identical for any pool size and any job
// completion order; with a checkpoint directory, a killed and re-run
// sweep resumes from the checkpoints and still produces identical bits.
// onEvent, when non-nil, observes progress (serialized calls).
func RunSweep(ctx context.Context, spec SweepSpec, onEvent func(SweepEvent)) (*SweepResult, error) {
	sp, plans, err := lowerSpec(spec)
	if err != nil {
		return nil, err
	}
	if spec.ResultStoreDir != "" {
		st, err := store.Open(spec.ResultStoreDir)
		if err != nil {
			return nil, fmt.Errorf("dsmc: opening result store: %w", err)
		}
		sp.Results = st
	}
	var observer func(run.Event)
	if onEvent != nil {
		observer = func(e run.Event) {
			onEvent(SweepEvent{
				Type: string(e.Type), Job: e.Job, Scenario: e.Scenario, Replica: e.Replica,
				StepsDone: e.StepsDone, StepsTotal: e.StepsTotal, Err: e.Err,
			})
		}
	}
	res, err := run.Run(ctx, sp, observer)
	if err != nil {
		return nil, err
	}
	return assembleResult(spec.Name, plans, res.Aggregates), nil
}

// assembleResult converts the orchestration layer's per-scenario
// aggregates into the public sweep result, attaching each point's
// resolved plan (kind, field shape, analysis context). Both the
// in-process RunSweep and the distributed AssembleSweepResult end here,
// so the two execution paths can never drift in shape or convention.
func assembleResult(name string, plans []*plan, aggs []*run.Aggregate) *SweepResult {
	out := &SweepResult{Name: name}
	for i, agg := range aggs {
		pl := plans[i]
		pr := PointResult{
			Name:          agg.Scenario,
			Kind:          pl.kind,
			Replicas:      agg.Replicas,
			Fields:        make(map[Quantity]FieldStats, len(agg.Fields)),
			ShockAngleDeg: ScalarStats(agg.ShockAngleDeg),
			Collisions:    ScalarStats(agg.Collisions),
			NFlow:         ScalarStats(agg.NFlow),
			plan:          pl,
		}
		for q, fs := range agg.Fields {
			pr.Fields[Quantity(q)] = FieldStats{
				NX: pl.nx, NY: pl.ny, NZ: pl.nz,
				Mean: fs.Mean, Variance: fs.Variance, CI95: fs.CI95,
			}
		}
		pr.Density = pr.Fields[Density]
		out.Points = append(out.Points, pr)
	}
	return out
}

// RunEnsemble runs replicas of one scenario and aggregates them — the
// single-point sweep. The result's CI quantifies the statistical
// scatter DSMC answers carry. Any scenario works, including the 3D
// shock tube; the legacy Config passes through unchanged.
func RunEnsemble(ctx context.Context, sc Scenario, replicas, warmSteps, sampleSteps int) (*PointResult, error) {
	spec := SweepSpec{
		Replicas:    replicas,
		WarmSteps:   warmSteps,
		SampleSteps: sampleSteps,
	}
	if cfg, ok := sc.(Config); ok {
		spec.Base = cfg
	} else if cfg, ok := sc.(*Config); ok {
		spec.Base = *cfg
	} else {
		ss, err := NewScenarioSpec(sc)
		if err != nil {
			return nil, err
		}
		spec.Scenario = ss
	}
	res, err := RunSweep(ctx, spec, nil)
	if err != nil {
		return nil, err
	}
	return &res.Points[0], nil
}
