package dsmc

import (
	"context"
	"errors"
	"fmt"
	"math"

	"dsmc/internal/geom"
	"dsmc/internal/grid"
	"dsmc/internal/run"
)

// SweepPoint is one point of a parameter sweep: a name plus optional
// overrides applied to the sweep's base configuration. Nil fields keep
// the base value, so a point only states what it varies.
type SweepPoint struct {
	Name             string   `json:"name"`
	Mach             *float64 `json:"mach,omitempty"`
	MeanFreePath     *float64 `json:"mean_free_path,omitempty"`
	ParticlesPerCell *float64 `json:"particles_per_cell,omitempty"`
	ThermalSpeed     *float64 `json:"thermal_speed,omitempty"`
	// WedgeAngleDeg overrides the wedge ramp angle; the base
	// configuration must have a wedge.
	WedgeAngleDeg *float64 `json:"wedge_angle_deg,omitempty"`
}

// SweepSpec describes an ensemble or parameter sweep: a base
// configuration, the points that perturb it (none means a single-point
// ensemble of the base), and the replication and execution knobs.
type SweepSpec struct {
	// Name labels the sweep in events and results.
	Name string `json:"name,omitempty"`
	// Base is the configuration every point starts from. Its Seed is the
	// sweep's base seed: every job derives an independent seed from it,
	// so a sweep is reproducible from the spec alone. Its Workers is the
	// per-simulation worker count (default 1 under orchestration, so the
	// job pool and the inner sharding multiply rather than oversubscribe).
	Base Config `json:"base"`
	// Points are the sweep points; empty runs the base alone.
	Points []SweepPoint `json:"points,omitempty"`
	// Replicas is the number of independent replicas per point (>= 1).
	Replicas int `json:"replicas"`
	// WarmSteps run before sampling; SampleSteps are averaged.
	WarmSteps   int `json:"warm_steps"`
	SampleSteps int `json:"sample_steps"`
	// Pool bounds the number of concurrently running simulations;
	// 0 selects runtime.NumCPU().
	Pool int `json:"pool,omitempty"`
	// CheckpointDir, when set, makes jobs resumable: each persists its
	// full state there every CheckpointEvery steps (default 50), and a
	// re-run of the same spec over the same directory continues from the
	// checkpoints — bit-identically to an uninterrupted run.
	CheckpointDir   string `json:"checkpoint_dir,omitempty"`
	CheckpointEvery int    `json:"checkpoint_every,omitempty"`
}

// ScalarStats is a cross-replica mean/variance with its 95% confidence
// half-width (normal approximation). Dropped counts replicas whose
// measurement was undefined (e.g. no shock front found).
type ScalarStats struct {
	Mean     float64 `json:"mean"`
	Variance float64 `json:"variance"`
	CI95     float64 `json:"ci95"`
	N        int     `json:"n"`
	Dropped  int     `json:"dropped,omitempty"`
}

// FieldStats carries per-cell cross-replica statistics of a sampled
// field, row-major over the grid like Field.Data.
type FieldStats struct {
	NX       int       `json:"nx"`
	NY       int       `json:"ny"`
	Mean     []float64 `json:"mean"`
	Variance []float64 `json:"variance"`
	CI95     []float64 `json:"ci95"`
}

// PointResult is one sweep point's aggregate over its replicas.
type PointResult struct {
	Name          string      `json:"name"`
	Replicas      int         `json:"replicas"`
	Density       FieldStats  `json:"density"`
	ShockAngleDeg ScalarStats `json:"shock_angle_deg"`
	Collisions    ScalarStats `json:"collisions"`
	NFlow         ScalarStats `json:"nflow"`

	cfg Config // the point's resolved configuration, for Field()
}

// Field returns the mean density as a Field, with the full analysis
// surface (shock angle fit, wake metrics, renderers) available on the
// cross-replica mean.
func (p *PointResult) Field() *Field {
	g := grid.New(p.cfg.GridNX, p.cfg.GridNY)
	var gw *geom.Wedge
	if p.cfg.Wedge != nil {
		gw = &geom.Wedge{
			LeadX: p.cfg.Wedge.LeadX,
			Base:  p.cfg.Wedge.Base,
			Angle: p.cfg.Wedge.AngleDeg * math.Pi / 180,
		}
	}
	return &Field{
		NX: p.cfg.GridNX, NY: p.cfg.GridNY,
		Data:  append([]float64(nil), p.Density.Mean...),
		grid:  g,
		vols:  g.Volumes(gw),
		wedge: p.cfg.Wedge,
		mach:  p.cfg.Mach,
	}
}

// SweepResult is a completed sweep: one aggregate per point, in point
// order.
type SweepResult struct {
	Name   string        `json:"name,omitempty"`
	Points []PointResult `json:"points"`
}

// SweepEvent is one observation of sweep progress, delivered serially
// to the RunSweep observer.
type SweepEvent struct {
	Type       string `json:"type"`
	Job        string `json:"job"`
	Scenario   string `json:"scenario,omitempty"`
	Replica    int    `json:"replica,omitempty"`
	StepsDone  int    `json:"steps_done,omitempty"`
	StepsTotal int    `json:"steps_total,omitempty"`
	Err        string `json:"err,omitempty"`
}

// resolvePoint applies a point's overrides to the base configuration.
func resolvePoint(base Config, p SweepPoint) (Config, error) {
	cfg := base
	if p.Mach != nil {
		cfg.Mach = *p.Mach
	}
	if p.MeanFreePath != nil {
		cfg.MeanFreePath = *p.MeanFreePath
	}
	if p.ParticlesPerCell != nil {
		cfg.ParticlesPerCell = *p.ParticlesPerCell
	}
	if p.ThermalSpeed != nil {
		cfg.ThermalSpeed = *p.ThermalSpeed
	}
	if p.WedgeAngleDeg != nil {
		if base.Wedge == nil {
			return cfg, fmt.Errorf("dsmc: point %q overrides the wedge angle but the base has no wedge", p.Name)
		}
		w := *base.Wedge
		w.AngleDeg = *p.WedgeAngleDeg
		cfg.Wedge = &w
	}
	return cfg, nil
}

// lowerSpec translates the public spec to the orchestration layer's.
func lowerSpec(spec SweepSpec) (run.Spec, []Config, error) {
	if spec.Base.Backend != Reference {
		return run.Spec{}, nil, errors.New("dsmc: sweeps orchestrate the Reference backend only")
	}
	points := spec.Points
	if len(points) == 0 {
		name := spec.Name
		if name == "" {
			name = "ensemble"
		}
		points = []SweepPoint{{Name: name}}
	}
	base := spec.Base
	if base.Workers == 0 {
		// Under orchestration the outer pool supplies the parallelism;
		// defaulting every job to all cores would oversubscribe.
		base.Workers = 1
	}
	sp := run.Spec{
		Name:            spec.Name,
		Replicas:        spec.Replicas,
		WarmSteps:       spec.WarmSteps,
		SampleSteps:     spec.SampleSteps,
		BaseSeed:        spec.Base.Seed,
		Pool:            spec.Pool,
		CheckpointDir:   spec.CheckpointDir,
		CheckpointEvery: spec.CheckpointEvery,
	}
	cfgs := make([]Config, len(points))
	for i, p := range points {
		name := p.Name
		if name == "" {
			name = fmt.Sprintf("point-%03d", i)
		}
		cfg, err := resolvePoint(base, p)
		if err != nil {
			return run.Spec{}, nil, err
		}
		ic, err := cfg.internalConfig()
		if err != nil {
			return run.Spec{}, nil, fmt.Errorf("dsmc: point %q: %w", name, err)
		}
		cfgs[i] = cfg
		sp.Scenarios = append(sp.Scenarios, run.Scenario{
			Name:    name,
			Sim:     ic,
			Float32: cfg.Precision == Float32,
		})
	}
	return sp, cfgs, nil
}

// RunSweep executes the sweep's job DAG — replicas fan out over a
// bounded pool of concurrent simulations, per-point aggregations fan in
// — and returns cross-replica mean/variance/CI statistics per point.
// Aggregates are bit-identical for any pool size and any job completion
// order; with a checkpoint directory, a killed and re-run sweep resumes
// from the checkpoints and still produces identical bits. onEvent, when
// non-nil, observes progress (serialized calls).
func RunSweep(ctx context.Context, spec SweepSpec, onEvent func(SweepEvent)) (*SweepResult, error) {
	sp, cfgs, err := lowerSpec(spec)
	if err != nil {
		return nil, err
	}
	var observer func(run.Event)
	if onEvent != nil {
		observer = func(e run.Event) {
			onEvent(SweepEvent{
				Type: string(e.Type), Job: e.Job, Scenario: e.Scenario, Replica: e.Replica,
				StepsDone: e.StepsDone, StepsTotal: e.StepsTotal, Err: e.Err,
			})
		}
	}
	res, err := run.Run(ctx, sp, observer)
	if err != nil {
		return nil, err
	}
	out := &SweepResult{Name: spec.Name}
	for i, agg := range res.Aggregates {
		out.Points = append(out.Points, PointResult{
			Name:     agg.Scenario,
			Replicas: agg.Replicas,
			Density: FieldStats{
				NX: cfgs[i].GridNX, NY: cfgs[i].GridNY,
				Mean: agg.Density.Mean, Variance: agg.Density.Variance, CI95: agg.Density.CI95,
			},
			ShockAngleDeg: ScalarStats(agg.ShockAngleDeg),
			Collisions:    ScalarStats(agg.Collisions),
			NFlow:         ScalarStats(agg.NFlow),
			cfg:           cfgs[i],
		})
	}
	return out, nil
}

// RunEnsemble runs replicas of one configuration and aggregates them —
// the single-point sweep. The result's CI quantifies the statistical
// scatter DSMC answers carry.
func RunEnsemble(ctx context.Context, cfg Config, replicas, warmSteps, sampleSteps int) (*PointResult, error) {
	res, err := RunSweep(ctx, SweepSpec{
		Base:        cfg,
		Replicas:    replicas,
		WarmSteps:   warmSteps,
		SampleSteps: sampleSteps,
	}, nil)
	if err != nil {
		return nil, err
	}
	return &res.Points[0], nil
}
