package dsmc_test

import (
	"math"
	"testing"

	"dsmc"
)

// fieldsBitEqual compares two fields bit for bit.
func fieldsBitEqual(t *testing.T, label string, a, b *dsmc.Field) {
	t.Helper()
	if len(a.Data) != len(b.Data) {
		t.Fatalf("%s: lengths differ: %d vs %d", label, len(a.Data), len(b.Data))
	}
	for c := range a.Data {
		if math.Float64bits(a.Data[c]) != math.Float64bits(b.Data[c]) {
			t.Fatalf("%s diverged at cell %d: %v vs %v", label, c, a.Data[c], b.Data[c])
		}
	}
}

// TestMultiQuantityWorkerDeterminism2D: one sampling pass derives
// Velocity/Temperature/Mach fields that are bit-identical between
// Workers=1 and Workers=8 on the 2D wedge tunnel.
func TestMultiQuantityWorkerDeterminism2D(t *testing.T) {
	run := func(workers int) *dsmc.Sampling {
		cfg := goldenWedgeConfig()
		cfg.Workers = workers
		s, err := dsmc.NewSimulation(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run(15)
		return s.Sample(5)
	}
	s1, s8 := run(1), run(8)
	for _, q := range []dsmc.Quantity{dsmc.Density, dsmc.VelocityX, dsmc.VelocityY, dsmc.Temperature, dsmc.MachNumber} {
		f1, err := s1.Field(q)
		if err != nil {
			t.Fatal(err)
		}
		f8, err := s8.Field(q)
		if err != nil {
			t.Fatal(err)
		}
		fieldsBitEqual(t, string(q), f1, f8)
	}
}

// TestMultiQuantityWorkerDeterminism3D: likewise for the 3D shock tube,
// including the out-of-plane VelocityZ.
func TestMultiQuantityWorkerDeterminism3D(t *testing.T) {
	run := func(workers int) *dsmc.Sampling {
		s, err := dsmc.NewSimulation(dsmc.ShockTube3D{
			GridNX: 40, GridNY: 4, GridNZ: 4,
			ThermalSpeed: 0.125, MeanFreePath: 0.5, PistonSpeed: 0.131,
			ParticlesPerCell: 6, Seed: 13, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Run(15)
		return s.Sample(5)
	}
	s1, s8 := run(1), run(8)
	for _, q := range []dsmc.Quantity{dsmc.Density, dsmc.VelocityX, dsmc.VelocityY, dsmc.VelocityZ, dsmc.Temperature} {
		f1, err := s1.Field(q)
		if err != nil {
			t.Fatal(err)
		}
		f8, err := s8.Field(q)
		if err != nil {
			t.Fatal(err)
		}
		fieldsBitEqual(t, string(q), f1, f8)
	}
}

// TestSamplingOnePassConsistency: all quantities come from the same
// accumulation — deriving a field twice returns identical bits, and the
// 3D views (Slice, ProjectXY, ProfileX) are consistent with At3.
func TestSamplingOnePassConsistency(t *testing.T) {
	s, err := dsmc.NewSimulation(dsmc.ShockTube3D{
		GridNX: 32, GridNY: 4, GridNZ: 3,
		ThermalSpeed: 0.125, PistonSpeed: 0.131,
		ParticlesPerCell: 6, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(30)
	smp := s.Sample(10)
	f1, _ := smp.Field(dsmc.Density)
	f2, _ := smp.Field(dsmc.Density)
	fieldsBitEqual(t, "re-derived density", f1, f2)
	if smp.Steps() != 10 {
		t.Errorf("Steps() = %d", smp.Steps())
	}

	f := f1
	if f.Dims() != 3 || f.NZ != 3 {
		t.Fatalf("expected a 3D field, got dims %d NZ %d", f.Dims(), f.NZ)
	}
	// Slice matches At3.
	sl := f.Slice(2)
	if sl.NZ != 1 || sl.NX != f.NX || sl.NY != f.NY {
		t.Fatalf("slice shape %dx%dx%d", sl.NX, sl.NY, sl.NZ)
	}
	if sl.At(5, 2) != f.At3(5, 2, 2) {
		t.Errorf("Slice(2).At != At3")
	}
	// ProjectXY is the z-mean.
	proj := f.ProjectXY()
	want := (f.At3(5, 2, 0) + f.At3(5, 2, 1) + f.At3(5, 2, 2)) / 3
	if math.Abs(proj.At(5, 2)-want) > 1e-15 {
		t.Errorf("ProjectXY mean %v, want %v", proj.At(5, 2), want)
	}
	// ProfileX averages the cross-section.
	prof := f.ProfileX()
	if len(prof) != f.NX {
		t.Fatalf("profile length %d", len(prof))
	}
	var sum float64
	for iy := 0; iy < f.NY; iy++ {
		for iz := 0; iz < f.NZ; iz++ {
			sum += f.At3(5, iy, iz)
		}
	}
	if want := sum / float64(f.NY*f.NZ); math.Abs(prof[5]-want) > 1e-12 {
		t.Errorf("ProfileX[5] = %v, want %v", prof[5], want)
	}
	// The gas ahead of the piston is compressed: the profile's peak
	// exceeds the quiescent density at the far end of the tube.
	peak := 0.0
	for _, v := range prof {
		if v > peak {
			peak = v
		}
	}
	if quiescent := prof[len(prof)-3]; peak < 1.2*quiescent {
		t.Errorf("no compression ahead of the piston: peak %v vs quiescent %v", peak, quiescent)
	}
}

// TestCMBackendQuantityRestriction: the fixed-point ConnectionMachine
// backend samples per-cell counts only — Density works, anything else
// reports a descriptive error.
func TestCMBackendQuantityRestriction(t *testing.T) {
	cfg := goldenWedgeConfig()
	cfg.Backend = dsmc.ConnectionMachine
	cfg.PhysProcs = 64
	s, err := dsmc.NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(5)
	smp := s.Sample(3)
	if _, err := smp.Field(dsmc.Density); err != nil {
		t.Errorf("CM density sampling failed: %v", err)
	}
	if _, err := smp.Field(dsmc.Temperature); err == nil {
		t.Error("CM backend served a temperature field it never sampled")
	}
}

// TestRankineHugoniotTemperatureRise: on the paper's wedge, the
// post-shock temperature rise in the stagnation region matches the
// Rankine–Hugoniot prediction (T2/T1 ≈ 2.49 at M=4 through the 45°
// oblique shock) — the multi-moment twin of the density-rise check.
func TestRankineHugoniotTemperatureRise(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := dsmc.PaperConfig()
	cfg.ParticlesPerCell = 8
	cfg.Seed = 5
	s, err := dsmc.NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(600)
	smp := s.Sample(300)
	temp, err := smp.Field(dsmc.Temperature)
	if err != nil {
		t.Fatal(err)
	}
	th := s.Theory()
	if th.TemperatureRatio < 2 || th.TemperatureRatio > 3 {
		t.Fatalf("implausible theory temperature ratio %v", th.TemperatureRatio)
	}
	got := temp.PostShockMean()
	if math.IsNaN(got) || math.Abs(got-th.TemperatureRatio)/th.TemperatureRatio > 0.15 {
		t.Errorf("post-shock temperature %.3f, Rankine–Hugoniot predicts %.3f (±15%%)",
			got, th.TemperatureRatio)
	}
	// The freestream must stay at its reference temperature.
	if fm := temp.FreestreamMean(); math.Abs(fm-1) > 0.1 {
		t.Errorf("freestream temperature %.3f, want 1.0", fm)
	}
}
