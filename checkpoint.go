package dsmc

import (
	"errors"
	"io"
)

// Checkpoint writes a compact binary snapshot of the simulation's full
// mutable state — particle columns at the configured storage precision,
// reservoir contents, RNG state, and the step/collision counters that
// key the per-phase randomness — such that restoring it into a
// simulation of the same configuration and continuing is bit-identical
// to never having stopped, at any worker count. The stream carries a
// checksum; corruption is detected on restore.
//
// Only the Reference backend checkpoints; the ConnectionMachine backend
// returns an error.
func (s *Simulation) Checkpoint(w io.Writer) error {
	if s.ref == nil {
		return errors.New("dsmc: the ConnectionMachine backend does not support checkpointing")
	}
	return s.ref.WriteCheckpoint(w)
}

// Restore replaces the simulation's state with a checkpoint written by
// Checkpoint. The simulation must have been built from the same
// configuration — grid shape and precision are validated against the
// stream header — but the worker count is free to differ: per-phase
// randomness is counter-based, so no worker-local state exists.
func (s *Simulation) Restore(r io.Reader) error {
	if s.ref == nil {
		return errors.New("dsmc: the ConnectionMachine backend does not support checkpointing")
	}
	return s.ref.ReadCheckpoint(r)
}

// RestoreSimulation builds a simulation from the configuration and
// restores a checkpoint into it in one call.
func RestoreSimulation(c Config, r io.Reader) (*Simulation, error) {
	s, err := NewSimulation(c)
	if err != nil {
		return nil, err
	}
	if err := s.Restore(r); err != nil {
		return nil, err
	}
	return s, nil
}
