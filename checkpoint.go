package dsmc

import (
	"errors"
	"io"
)

// Checkpoint writes a compact binary snapshot of the simulation's full
// mutable state — particle columns at the configured storage precision,
// reservoir contents, RNG state, and the step/collision counters that
// key the per-phase randomness — such that restoring it into a
// simulation of the same scenario and continuing is bit-identical to
// never having stopped, at any worker count. The stream carries the
// scenario family in its kind header (2D wind tunnel vs 3D shock tube)
// plus a checksum; corruption is detected on restore.
//
// Only the engine (Reference) backends checkpoint; the ConnectionMachine
// backend returns an error.
func (s *Simulation) Checkpoint(w io.Writer) error {
	if s.ref == nil {
		return errors.New("dsmc: the ConnectionMachine backend does not support checkpointing")
	}
	return s.ref.WriteCheckpoint(w)
}

// Restore replaces the simulation's state with a checkpoint written by
// Checkpoint. The simulation must have been built from the same
// scenario — the stream's kind header (2D vs 3D), grid shape and
// precision are validated, so restoring a shock-tube checkpoint into a
// wind tunnel fails with a shape error instead of corrupting state —
// but the worker count is free to differ: per-phase randomness is
// counter-based, so no worker-local state exists.
func (s *Simulation) Restore(r io.Reader) error {
	if s.ref == nil {
		return errors.New("dsmc: the ConnectionMachine backend does not support checkpointing")
	}
	return s.ref.ReadCheckpoint(r)
}

// RestoreSimulation builds a simulation from any scenario (2D or 3D —
// the restore dispatches on the checkpoint's kind header through the
// scenario's own backend) and restores a checkpoint into it in one
// call.
func RestoreSimulation(sc Scenario, r io.Reader) (*Simulation, error) {
	s, err := NewSimulation(sc)
	if err != nil {
		return nil, err
	}
	if err := s.Restore(r); err != nil {
		return nil, err
	}
	return s, nil
}
