// Command bench runs the key step benchmarks outside `go test` and
// writes a machine-readable record of the performance trajectory
// (BENCH_PR2.json): wall-clock µs/particle/step for the paper's
// near-continuum and rarefied cases plus the worker sweep at paper scale,
// optionally compared against a previously recorded baseline file.
//
//	go run ./cmd/bench -out BENCH_PR2.json -baseline BENCH_PR1.json
//	go run ./cmd/bench -quick   # CI smoke: few steps, still all cases
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"dsmc"
	"dsmc/internal/par"
	"dsmc/internal/sim3"
)

// Record is the schema of a bench output file. Case names are stable
// across PRs so later runs can be diffed against earlier files.
type Record struct {
	Name          string `json:"name"`
	GeneratedUnix int64  `json:"generated_unix"`
	Go            string `json:"go"`
	CPUs          int    `json:"cpus"`
	WarmSteps     int    `json:"warm_steps"`
	MeasuredSteps int    `json:"measured_steps"`
	Cases         []Case `json:"cases"`
}

// Case is one benchmark configuration's measurement.
type Case struct {
	Name              string  `json:"name"`
	Workers           int     `json:"workers"`
	Particles         int     `json:"particles"`
	NsPerStep         float64 `json:"ns_per_step"`
	UsPerParticleStep float64 `json:"us_per_particle_step"`
	// Set when -baseline names a file containing the same case.
	BaselineUsPerParticleStep float64 `json:"baseline_us_per_particle_step,omitempty"`
	SpeedupVsBaseline         float64 `json:"speedup_vs_baseline,omitempty"`
}

type stepper interface {
	Run(n int)
	NFlow() int
}

type sim3Adapter struct{ *sim3.Sim }

func (a sim3Adapter) NFlow() int { return a.N() }

func main() {
	out := flag.String("out", "BENCH_PR2.json", "output JSON path")
	baseline := flag.String("baseline", "", "earlier bench JSON to compute speedups against")
	warm := flag.Int("warm", 30, "warm-up steps per case (past the initial transient)")
	steps := flag.Int("steps", 40, "measured steps per case")
	sweepPerCell := flag.Float64("sweep-percell", 75, "particles/cell of the worker sweep (75 = paper scale)")
	quick := flag.Bool("quick", false, "CI smoke mode: 3 warm-up and 3 measured steps (unless -warm/-steps are given explicitly)")
	flag.Parse()
	if *quick {
		warmSet, stepsSet := false, false
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "warm":
				warmSet = true
			case "steps":
				stepsSet = true
			}
		})
		if !warmSet {
			*warm = 3
		}
		if !stepsSet {
			*steps = 3
		}
	}

	rec := Record{
		Name:          "dsmc step benchmarks",
		GeneratedUnix: time.Now().Unix(),
		Go:            runtime.Version(),
		CPUs:          runtime.NumCPU(),
		WarmSteps:     *warm,
		MeasuredSteps: *steps,
	}

	wedge := func(lambda, perCell float64, workers int) stepper {
		cfg := dsmc.PaperConfig()
		cfg.MeanFreePath = lambda
		cfg.ParticlesPerCell = perCell
		cfg.Workers = workers
		cfg.Seed = 1988
		s, err := dsmc.NewSimulation(cfg)
		if err != nil {
			log.Fatalf("bench: %v", err)
		}
		return s
	}

	rec.add("fig1-near-continuum", 0, *warm, *steps, wedge(0, 8, 0))
	rec.add("fig4-rarefied", 0, *warm, *steps, wedge(0.5, 8, 0))
	rec.add("cray-surrogate-1worker", 1, *warm, *steps, wedge(0.5, 8, 1))
	for _, w := range par.SweepWorkers() {
		rec.add(fmt.Sprintf("step-worker-sweep/workers-%d", w), w,
			*warm, *steps, wedge(0.5, *sweepPerCell, w))
	}
	for _, w := range par.SweepWorkers() {
		s, err := sim3.New(sim3.Config{
			NX: 160, NY: 16, NZ: 16,
			Cm: 0.125, PistonSpeed: 0.131, NPerCell: 12, Seed: 3,
			Workers: w,
		})
		if err != nil {
			log.Fatalf("bench: %v", err)
		}
		rec.add(fmt.Sprintf("shocktube3d/workers-%d", w), w, *warm, *steps, sim3Adapter{s})
	}

	if *baseline != "" {
		if err := rec.compare(*baseline); err != nil {
			log.Fatalf("bench: baseline %s: %v", *baseline, err)
		}
	}

	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d cases)\n", *out, len(rec.Cases))
}

// add warms a simulation up, times `steps` further steps, and appends the
// measurement.
func (rec *Record) add(name string, workers, warm, steps int, s stepper) {
	s.Run(warm)
	t0 := time.Now()
	s.Run(steps)
	elapsed := time.Since(t0)
	nsPerStep := float64(elapsed.Nanoseconds()) / float64(steps)
	c := Case{
		Name:              name,
		Workers:           workers,
		Particles:         s.NFlow(),
		NsPerStep:         nsPerStep,
		UsPerParticleStep: nsPerStep / 1000 / float64(s.NFlow()),
	}
	rec.Cases = append(rec.Cases, c)
	fmt.Printf("%-34s %9d particles  %10.0f ns/step  %.4f us/particle/step\n",
		name, c.Particles, c.NsPerStep, c.UsPerParticleStep)
}

// compare fills the baseline fields of every case whose name appears in
// the baseline record file.
func (rec *Record) compare(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Record
	if err := json.Unmarshal(buf, &base); err != nil {
		return err
	}
	byName := make(map[string]Case, len(base.Cases))
	for _, c := range base.Cases {
		byName[c.Name] = c
	}
	for i := range rec.Cases {
		b, ok := byName[rec.Cases[i].Name]
		if !ok || b.UsPerParticleStep <= 0 {
			continue
		}
		rec.Cases[i].BaselineUsPerParticleStep = b.UsPerParticleStep
		rec.Cases[i].SpeedupVsBaseline = b.UsPerParticleStep / rec.Cases[i].UsPerParticleStep
		fmt.Printf("%-34s speedup vs baseline: %.2fx\n",
			rec.Cases[i].Name, rec.Cases[i].SpeedupVsBaseline)
	}
	return nil
}
