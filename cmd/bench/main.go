// Command bench runs the key step benchmarks outside `go test` and
// writes a machine-readable record of the performance trajectory
// (BENCH_PR10.json): wall-clock µs/particle/step for the paper's
// near-continuum and rarefied cases, a float32-vs-float64 precision
// sweep over the engine backends, the worker sweep at paper scale, a
// metrics-on/off pair quantifying the observability layer's overhead,
// an ensemble-throughput case (replica jobs/minute through the
// run-orchestration subsystem at outer pool sizes 1 and NumCPU), and a
// cold/warm sweep-memoization pair (the same sweep re-run against a
// populated result store, recording the memo speedup), optionally
// compared against a previously recorded baseline file.
// Every step case also records its per-phase wall-time breakdown
// (move+boundary/sort/select/collide), the same numbers the /metrics
// phase histograms and the flight recorder expose at runtime. The
// -cpuprofile/-memprofile flags capture pprof profiles of the run. The
// record also flags whether the host is multi-core, so scaling numbers
// from single-core CI hosts are not mistaken for the real worker-scaling
// trajectory.
//
//	go run ./cmd/bench -out BENCH_PR10.json -baseline BENCH_PR9.json
//	go run ./cmd/bench -quick   # CI smoke: few steps, still all cases
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"dsmc"
	"dsmc/internal/obs"
	"dsmc/internal/par"
)

// Record is the schema of a bench output file. Case names are stable
// across PRs so later runs can be diffed against earlier files.
type Record struct {
	Name          string `json:"name"`
	GeneratedUnix int64  `json:"generated_unix"`
	Go            string `json:"go"`
	CPUs          int    `json:"cpus"`
	// MultiCore records whether worker-sweep cases could actually run
	// concurrently on this host; on a single-core machine the sweep
	// measures dispatch overhead, not scaling.
	MultiCore     bool `json:"multi_core"`
	WarmSteps     int  `json:"warm_steps"`
	MeasuredSteps int  `json:"measured_steps"`
	// Repeat is the measurement-window count per case; the recorded
	// time is the fastest window (robust against host noise).
	Repeat int `json:"repeat"`
	// Tile and Regions are the record-wide stepping mode of the plain
	// step cases (-tile / -regions flags); the scatter-tile and
	// region-sweep case groups carry their own per-case values.
	Tile    int    `json:"tile,omitempty"`
	Regions bool   `json:"regions,omitempty"`
	Cases   []Case `json:"cases"`
}

// Case is one benchmark configuration's measurement.
type Case struct {
	Name string `json:"name"`
	// Precision is the storage precision of the engine backends
	// ("float64" unless the case name carries a /f32 suffix).
	Precision string `json:"precision,omitempty"`
	Workers   int    `json:"workers"`
	Particles int    `json:"particles"`
	// Tile is the cell-block scatter window width the case ran with
	// (0 = engine default); Regions marks the spatially-blocked
	// (owner-computes) stepping mode.
	Tile    int  `json:"tile,omitempty"`
	Regions bool `json:"regions,omitempty"`
	// Step-benchmark cases; zero (omitted) on ensemble-throughput cases.
	NsPerStep         float64 `json:"ns_per_step,omitempty"`
	UsPerParticleStep float64 `json:"us_per_particle_step,omitempty"`
	// Set when -baseline names a file containing the same case.
	BaselineUsPerParticleStep float64 `json:"baseline_us_per_particle_step,omitempty"`
	SpeedupVsBaseline         float64 `json:"speedup_vs_baseline,omitempty"`
	// Set on /f32 cases whose float64 twin is in the same record:
	// float64 µs/particle/step divided by this case's.
	SpeedupVsFloat64 float64 `json:"speedup_vs_float64,omitempty"`
	// Ensemble-throughput cases: completed replica jobs and the rate.
	// On a single-core host (multi_core: false) the pool sizes measure
	// scheduling overhead, not outer-level scaling.
	Jobs          int     `json:"jobs,omitempty"`
	JobsPerMinute float64 `json:"jobs_per_minute,omitempty"`
	// MemoSpeedup is set on the sweep-memo/warm case: the cold run's
	// wall time divided by the warm (store-served) run's.
	MemoSpeedup float64 `json:"memo_speedup,omitempty"`
	// PhaseSeconds is the per-phase wall-time breakdown of the case's
	// measured windows (cumulative over all Repeat windows) — the same
	// move+boundary/sort/select/collide split the /metrics phase
	// histograms record per step.
	PhaseSeconds map[string]float64 `json:"phase_seconds,omitempty"`
	// Metrics marks the metrics-overhead pair: "on" ran with the obs
	// record paths live, "off" with them gated out.
	Metrics string `json:"metrics,omitempty"`
}

type stepper interface {
	Run(n int)
	NFlow() int
	PhaseSeconds() map[string]float64
}

func main() {
	out := flag.String("out", "BENCH_PR10.json", "output JSON path")
	baseline := flag.String("baseline", "", "earlier bench JSON to compute speedups against")
	warm := flag.Int("warm", 30, "warm-up steps per case (past the initial transient)")
	steps := flag.Int("steps", 40, "measured steps per case")
	sweepPerCell := flag.Float64("sweep-percell", 75, "particles/cell of the worker sweep (75 = paper scale)")
	tile := flag.Int("tile", 0, "cell-block scatter tile width for every step case (0 = engine default)")
	regions := flag.Bool("regions", false, "run every step case in spatially-blocked (owner-computes) mode")
	workersList := flag.String("workers", "", "comma-separated worker counts for the sweep cases (default: 1,2,4,NumCPU clipped to the host; explicit lists may oversubscribe — see multi_core)")
	repeat := flag.Int("repeat", 1, "measurement windows per case; the fastest is recorded (use 3+ on noisy hosts)")
	quick := flag.Bool("quick", false, "CI smoke mode: 3 warm-up and 3 measured steps (unless -warm/-steps are given explicitly)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (taken after all cases) to this file")
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("bench: -cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("bench: -cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatalf("bench: -memprofile: %v", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("bench: -memprofile: %v", err)
		}
	}()
	if *quick {
		warmSet, stepsSet := false, false
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "warm":
				warmSet = true
			case "steps":
				stepsSet = true
			}
		})
		if !warmSet {
			*warm = 3
		}
		if !stepsSet {
			*steps = 3
		}
	}

	rec := Record{
		Name:          "dsmc step benchmarks",
		GeneratedUnix: time.Now().Unix(),
		Go:            runtime.Version(),
		CPUs:          runtime.NumCPU(),
		MultiCore:     runtime.NumCPU() > 1,
		WarmSteps:     *warm,
		MeasuredSteps: *steps,
		Repeat:        *repeat,
	}

	// The record-wide tile/regions mode every step case runs with; the
	// scatter-tile and region-sweep case groups override per case.
	rec.Tile, rec.Regions = *tile, *regions

	wedgeTR := func(lambda, perCell float64, workers int, prec dsmc.Precision, tile int, regions bool) stepper {
		cfg := dsmc.PaperConfig()
		cfg.MeanFreePath = lambda
		cfg.ParticlesPerCell = perCell
		cfg.Workers = workers
		cfg.Seed = 1988
		cfg.Precision = prec
		cfg.SortTile = tile
		cfg.SpatialRegions = regions
		s, err := dsmc.NewSimulation(cfg)
		if err != nil {
			log.Fatalf("bench: %v", err)
		}
		return s
	}
	wedge := func(lambda, perCell float64, workers int, prec dsmc.Precision) stepper {
		return wedgeTR(lambda, perCell, workers, prec, *tile, *regions)
	}
	tube3 := func(workers int, prec dsmc.Precision) stepper {
		s, err := dsmc.NewSimulation(dsmc.ShockTube3D{
			GridNX: 160, GridNY: 16, GridNZ: 16,
			ThermalSpeed: 0.125, PistonSpeed: 0.131, ParticlesPerCell: 12,
			Seed: 3, Workers: workers, Precision: prec,
			SortTile: *tile, SpatialRegions: *regions,
		})
		if err != nil {
			log.Fatalf("bench: %v", err)
		}
		return s
	}
	sweep := par.SweepWorkers()
	if *workersList != "" {
		sweep = nil
		for _, f := range strings.Split(*workersList, ",") {
			var w int
			if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &w); err != nil || w < 1 {
				log.Fatalf("bench: -workers: bad worker count %q", f)
			}
			sweep = append(sweep, w)
		}
	}

	// Established cases (names stable since PR 1/2 for baseline diffing;
	// all float64).
	rec.add("fig1-near-continuum", dsmc.Float64, 0, *warm, *steps, wedge(0, 8, 0, dsmc.Float64))
	rec.addPair("fig4-rarefied", 0, *warm, *steps,
		wedge(0.5, 8, 0, dsmc.Float64), wedge(0.5, 8, 0, dsmc.Float32))
	rec.add("cray-surrogate-1worker", dsmc.Float64, 1, *warm, *steps, wedge(0.5, 8, 1, dsmc.Float64))
	for _, w := range sweep {
		rec.add(fmt.Sprintf("step-worker-sweep/workers-%d", w), dsmc.Float64, w,
			*warm, *steps, wedge(0.5, *sweepPerCell, w, dsmc.Float64))
	}
	for _, w := range sweep {
		rec.add(fmt.Sprintf("shocktube3d/workers-%d", w), dsmc.Float64, w, *warm, *steps, tube3(w, dsmc.Float64))
	}

	// Scatter-tile sweep: the paper-scale rarefied wedge at one worker
	// across tile widths, from the degenerate one-cell block through the
	// untiled direct scatter (tile past the 98×64 cell count). The tile
	// only moves cache traffic, so the fastest width here is the right
	// default for this host class.
	for _, tl := range []int{1, 32, 64, 128, 256, 512, 1024} {
		rec.addCase(fmt.Sprintf("scatter-tile/tile-%d", tl), dsmc.Float64, 1, *warm, *steps,
			tl, false, wedgeTR(0.5, *sweepPerCell, 1, dsmc.Float64, tl, false))
	}
	rec.addCase("scatter-tile/untiled", dsmc.Float64, 1, *warm, *steps,
		1<<20, false, wedgeTR(0.5, *sweepPerCell, 1, dsmc.Float64, 1<<20, false))

	// Region mode vs shared store: the worker sweep repeated in
	// spatially-blocked mode, directly comparable to the
	// step-worker-sweep cases above (same flow, same worker counts).
	for _, w := range sweep {
		rec.addCase(fmt.Sprintf("region-sweep/workers-%d", w), dsmc.Float64, w, *warm, *steps,
			*tile, true, wedgeTR(0.5, *sweepPerCell, w, dsmc.Float64, *tile, true))
	}

	// Precision sweep: the same configurations instantiated at both
	// precisions and measured with interleaved windows (addPair), so host
	// drift cannot masquerade as a precision effect. The paper-scale
	// rarefied wedge is the headline case — its cell-major sweeps are
	// memory-bound, exactly where halving the column width should pay.
	rec.addPair("fig4-rarefied-paperscale", 1, *warm, *steps,
		wedge(0.5, *sweepPerCell, 1, dsmc.Float64), wedge(0.5, *sweepPerCell, 1, dsmc.Float32))
	rec.addPair("shocktube3d-1worker", 1, *warm, *steps,
		tube3(1, dsmc.Float64), tube3(1, dsmc.Float32))

	rec.precisionSpeedups()

	// Observability overhead: the paper-scale rarefied wedge with the
	// metrics record paths on vs gated off, interleaved windows.
	rec.addMetricsPair("metrics-overhead", 1, *warm, *steps,
		wedge(0.5, *sweepPerCell, 1, dsmc.Float64))

	// Ensemble throughput: whole-simulation replica jobs scheduled by the
	// run-orchestration subsystem, at outer pool sizes 1 and NumCPU. This
	// is the outer level of parallelism — it scales with cores even where
	// the inner worker sharding is bandwidth-bound (each job runs with
	// Workers=1 under orchestration).
	rec.addEnsemble("ensemble-throughput/pool-1", 1, *warm, *steps)
	if n := runtime.NumCPU(); n > 1 {
		rec.addEnsemble(fmt.Sprintf("ensemble-throughput/pool-%d", n), n, *warm, *steps)
	}

	// Sweep memoization: the ensemble sweep once against an empty result
	// store (cold: computes and publishes) and once more against the
	// populated store (warm: every replica and aggregate served from
	// artifacts). The warm case records the cold/warm wall-time ratio.
	rec.addMemoPair("sweep-memo", *warm, *steps)

	if *baseline != "" {
		if err := rec.compare(*baseline); err != nil {
			log.Fatalf("bench: baseline %s: %v", *baseline, err)
		}
	}

	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d cases)\n", *out, len(rec.Cases))
}

// add warms a simulation up, times Repeat windows of `steps` further
// steps, and appends the fastest window's measurement. prec is the
// precision the case was actually constructed with (recorded verbatim,
// not derived from the name).
func (rec *Record) add(name string, prec dsmc.Precision, workers, warm, steps int, s stepper) {
	rec.addCase(name, prec, workers, warm, steps, rec.Tile, rec.Regions, s)
}

// addCase is add with an explicit per-case tile/regions mode (the
// scatter-tile and region-sweep groups override the record-wide one).
func (rec *Record) addCase(name string, prec dsmc.Precision, workers, warm, steps, tile int, regions bool, s stepper) {
	s.Run(warm)
	reps := rec.Repeat
	if reps < 1 {
		reps = 1
	}
	p0 := s.PhaseSeconds()
	var best time.Duration
	for k := 0; k < reps; k++ {
		best = fasterOf(best, k, timeWindow(s, steps))
	}
	rec.appendMode(name, prec, workers, s.NFlow(), float64(best.Nanoseconds())/float64(steps), tile, regions)
	rec.Cases[len(rec.Cases)-1].PhaseSeconds = phaseDelta(p0, s.PhaseSeconds())
}

// phaseDelta subtracts two cumulative phase-time snapshots, yielding
// the breakdown of just the windows between them.
func phaseDelta(before, after map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(after))
	for k, v := range after {
		if d := v - before[k]; d > 0 {
			out[k] = d
		}
	}
	return out
}

// timeWindow is the one measurement primitive: the wall time of `steps`
// further steps. Both add and addPair build on it so the timing protocol
// cannot drift between plain and paired cases.
func timeWindow(s stepper, steps int) time.Duration {
	t0 := time.Now()
	s.Run(steps)
	return time.Since(t0)
}

// fasterOf keeps the running best window (window index 0 seeds it).
func fasterOf(best time.Duration, k int, d time.Duration) time.Duration {
	if k == 0 || d < best {
		return d
	}
	return best
}

// append records one measured case under the record-wide mode.
func (rec *Record) append(name string, prec dsmc.Precision, workers, particles int, nsPerStep float64) {
	rec.appendMode(name, prec, workers, particles, nsPerStep, rec.Tile, rec.Regions)
}

func (rec *Record) appendMode(name string, prec dsmc.Precision, workers, particles int, nsPerStep float64, tile int, regions bool) {
	c := Case{
		Name:              name,
		Precision:         string(prec),
		Workers:           workers,
		Particles:         particles,
		Tile:              tile,
		Regions:           regions,
		NsPerStep:         nsPerStep,
		UsPerParticleStep: nsPerStep / 1000 / float64(particles),
	}
	rec.Cases = append(rec.Cases, c)
	fmt.Printf("%-34s %9d particles  %10.0f ns/step  %.4f us/particle/step\n",
		name, c.Particles, c.NsPerStep, c.UsPerParticleStep)
}

// addEnsemble measures the run-orchestration subsystem's job throughput:
// six replica jobs of the rarefied wedge (each warm+steps long) through
// dsmc.RunSweep at the given pool size, recorded as jobs/minute. The
// Workers column records the pool size for these cases.
func (rec *Record) addEnsemble(name string, pool, warm, steps int) {
	const replicas = 6
	cfg := dsmc.PaperConfig()
	cfg.MeanFreePath = 0.5
	cfg.ParticlesPerCell = 8
	cfg.Seed = 1988
	t0 := time.Now()
	res, err := dsmc.RunSweep(context.Background(), dsmc.SweepSpec{
		Name:        "bench-ensemble",
		Base:        cfg,
		Replicas:    replicas,
		WarmSteps:   warm,
		SampleSteps: steps,
		Pool:        pool,
	}, nil)
	if err != nil {
		log.Fatalf("bench: %v", err)
	}
	dt := time.Since(t0)
	c := Case{
		Name:          name,
		Precision:     string(dsmc.Float64),
		Workers:       pool,
		Particles:     int(res.Points[0].NFlow.Mean),
		Jobs:          replicas,
		JobsPerMinute: float64(replicas) / dt.Minutes(),
	}
	rec.Cases = append(rec.Cases, c)
	fmt.Printf("%-34s %9d particles  %6d jobs in %8s  %.2f jobs/min\n",
		name, c.Particles, replicas, dt.Round(time.Millisecond), c.JobsPerMinute)
}

// addMemoPair measures sweep memoization: the ensemble sweep runs once
// against an empty result store (cold — every replica computed and
// published) and once more against the populated store (warm — every
// replica and aggregate served from artifacts). The warm case records
// the cold/warm wall-time ratio as MemoSpeedup.
func (rec *Record) addMemoPair(name string, warm, steps int) {
	const replicas = 6
	dir, err := os.MkdirTemp("", "dsmc-bench-store-")
	if err != nil {
		log.Fatalf("bench: %v", err)
	}
	defer os.RemoveAll(dir)
	cfg := dsmc.PaperConfig()
	cfg.MeanFreePath = 0.5
	cfg.ParticlesPerCell = 8
	cfg.Seed = 1988
	spec := dsmc.SweepSpec{
		Name:           "bench-memo",
		Base:           cfg,
		Replicas:       replicas,
		WarmSteps:      warm,
		SampleSteps:    steps,
		Pool:           1,
		ResultStoreDir: dir,
	}
	var dts [2]time.Duration
	for i, phase := range [2]string{"cold", "warm"} {
		t0 := time.Now()
		res, err := dsmc.RunSweep(context.Background(), spec, nil)
		if err != nil {
			log.Fatalf("bench: %v", err)
		}
		dts[i] = time.Since(t0)
		c := Case{
			Name:          name + "/" + phase,
			Precision:     string(dsmc.Float64),
			Workers:       1,
			Particles:     int(res.Points[0].NFlow.Mean),
			Jobs:          replicas,
			JobsPerMinute: float64(replicas) / dts[i].Minutes(),
		}
		if i == 1 && dts[1] > 0 {
			c.MemoSpeedup = float64(dts[0]) / float64(dts[1])
		}
		rec.Cases = append(rec.Cases, c)
		fmt.Printf("%-34s %9d particles  %6d jobs in %8s  %.2f jobs/min\n",
			c.Name, c.Particles, replicas, dts[i].Round(time.Millisecond), c.JobsPerMinute)
	}
	fmt.Printf("%-34s memo speedup warm vs cold: %.2fx\n",
		name, rec.Cases[len(rec.Cases)-1].MemoSpeedup)
}

// precisionSpeedups fills SpeedupVsFloat64 on every /f32 case whose
// float64 twin (same name without the suffix) is in the record.
func (rec *Record) precisionSpeedups() {
	byName := make(map[string]Case, len(rec.Cases))
	for _, c := range rec.Cases {
		byName[c.Name] = c
	}
	for i := range rec.Cases {
		if rec.Cases[i].Precision != string(dsmc.Float32) {
			continue
		}
		base, ok := byName[strings.TrimSuffix(rec.Cases[i].Name, "/f32")]
		if !ok || base.Precision != string(dsmc.Float64) || base.UsPerParticleStep <= 0 {
			continue
		}
		rec.Cases[i].SpeedupVsFloat64 = base.UsPerParticleStep / rec.Cases[i].UsPerParticleStep
		fmt.Printf("%-34s float32 speedup vs float64: %.2fx\n",
			rec.Cases[i].Name, rec.Cases[i].SpeedupVsFloat64)
	}
}

// addPair measures a float64/float32 twin of one configuration with
// interleaved windows — f64, f32, f64, f32, … — so slow host drift hits
// both precisions equally and the recorded ratio reflects the code, not
// the minute the case happened to run. The float64 case keeps the bare
// name (stable for baseline diffing); the float32 case gets the /f32
// suffix.
func (rec *Record) addPair(name string, workers, warm, steps int, s64, s32 stepper) {
	s64.Run(warm)
	s32.Run(warm)
	reps := rec.Repeat
	if reps < 1 {
		reps = 1
	}
	p64, p32 := s64.PhaseSeconds(), s32.PhaseSeconds()
	var best64, best32 time.Duration
	for k := 0; k < reps; k++ {
		best64 = fasterOf(best64, k, timeWindow(s64, steps))
		best32 = fasterOf(best32, k, timeWindow(s32, steps))
	}
	rec.append(name, dsmc.Float64, workers, s64.NFlow(), float64(best64.Nanoseconds())/float64(steps))
	rec.Cases[len(rec.Cases)-1].PhaseSeconds = phaseDelta(p64, s64.PhaseSeconds())
	rec.append(name+"/f32", dsmc.Float32, workers, s32.NFlow(), float64(best32.Nanoseconds())/float64(steps))
	rec.Cases[len(rec.Cases)-1].PhaseSeconds = phaseDelta(p32, s32.PhaseSeconds())
}

// addMetricsPair measures the observability layer's overhead with the
// same interleaved-window protocol as the precision pairs: one
// simulation alternates metrics-on and metrics-off windows — on, off,
// on, off, … — so slow host drift hits both modes equally and the
// recorded difference reflects the record-path atomics, not the minute
// each mode happened to run. The expectation pinned by the design (a
// handful of atomic ops per step against millions of particle updates)
// is that the pair lands within host noise of each other.
func (rec *Record) addMetricsPair(name string, workers, warm, steps int, s stepper) {
	s.Run(warm)
	reps := rec.Repeat
	if reps < 1 {
		reps = 1
	}
	defer obs.SetEnabled(true)
	var bestOn, bestOff time.Duration
	for k := 0; k < reps; k++ {
		obs.SetEnabled(true)
		bestOn = fasterOf(bestOn, k, timeWindow(s, steps))
		obs.SetEnabled(false)
		bestOff = fasterOf(bestOff, k, timeWindow(s, steps))
	}
	rec.append(name+"/on", dsmc.Float64, workers, s.NFlow(), float64(bestOn.Nanoseconds())/float64(steps))
	rec.Cases[len(rec.Cases)-1].Metrics = "on"
	rec.append(name+"/off", dsmc.Float64, workers, s.NFlow(), float64(bestOff.Nanoseconds())/float64(steps))
	rec.Cases[len(rec.Cases)-1].Metrics = "off"
	fmt.Printf("%-34s metrics overhead: %+.2f%%\n", name,
		(float64(bestOn.Nanoseconds())/float64(bestOff.Nanoseconds())-1)*100)
}

// compare fills the baseline fields of every case whose name appears in
// the baseline record file.
func (rec *Record) compare(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Record
	if err := json.Unmarshal(buf, &base); err != nil {
		return err
	}
	byName := make(map[string]Case, len(base.Cases))
	for _, c := range base.Cases {
		byName[c.Name] = c
	}
	for i := range rec.Cases {
		b, ok := byName[rec.Cases[i].Name]
		if !ok || b.UsPerParticleStep <= 0 {
			continue
		}
		rec.Cases[i].BaselineUsPerParticleStep = b.UsPerParticleStep
		rec.Cases[i].SpeedupVsBaseline = b.UsPerParticleStep / rec.Cases[i].UsPerParticleStep
		fmt.Printf("%-34s speedup vs baseline: %.2fx\n",
			rec.Cases[i].Name, rec.Cases[i].SpeedupVsBaseline)
	}
	return nil
}
