// Command experiments regenerates every table and figure of the paper's
// evaluation at a configurable scale and writes the artefacts (density
// fields, series, breakdowns) to an output directory:
//
//	fig1   near-continuum density contours (shock angle 45°, ratio 3.7,
//	       thickness ≈ 3 cells)
//	fig2   near-continuum density surface (wake shock present)
//	fig3   near-continuum stagnation-region surface
//	fig4   rarefied density contours (λ∞ = 0.5, thickness ≈ 5 cells)
//	fig5   rarefied density surface (wake shock washed out)
//	fig6   rarefied stagnation-region surface
//	fig7   per-particle time vs total particles (fixed machine)
//	phases distribution of computational time over the four sub-steps
//	compare  CM backend vs sequential reference per-particle time
//	scaling  reference-backend worker sweep (1/2/4/N cores)
//
// Beyond the paper's evaluation, two orchestration experiments exercise
// the run subsystem (not part of "all"; run them explicitly):
//
//	sweep         ensemble sweep over the rarefaction parameter: -replicas
//	              independent replicas per point, scheduled as a job DAG
//	              over -jobpool concurrent simulations, aggregated into
//	              mean ± CI (writes sweep.json)
//	sweep-resume  self-verifying checkpoint/restore: runs the sweep,
//	              kills it mid-flight, resumes from the checkpoints, and
//	              fails unless the aggregates are bit-identical to the
//	              uninterrupted run
//	coord-chaos   self-verifying distributed fault tolerance: runs the
//	              sweep through the coordinator/pull-worker machinery
//	              (internal/coord), crashes one worker mid-job with the
//	              chaos harness, lets the survivors resume its lease from
//	              the last uploaded checkpoint, and fails unless the
//	              aggregates are bit-identical to the in-process run
//
// Run all paper experiments with defaults (a few minutes):
//
//	experiments -out results
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"dsmc"
	"dsmc/internal/cm"
	"dsmc/internal/cmsim"
	"dsmc/internal/coord"
	"dsmc/internal/par"
	"dsmc/internal/report"
	"dsmc/internal/sim"
)

type harness struct {
	perCell  float64
	steps    int
	avg      int
	procs    int
	workers  int
	seed     uint64
	outDir   string
	replicas int
	jobpool  int
	ckptDir  string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var h harness
	exp := flag.String("exp", "all", "experiment: all|fig1|fig2|fig3|fig4|fig5|fig6|fig7|phases|compare|scaling|sweep|sweep-resume|coord-chaos")
	flag.Float64Var(&h.perCell, "percell", 8, "particles per cell (75 = paper scale)")
	flag.IntVar(&h.steps, "steps", 600, "steps to steady state (paper: 1200)")
	flag.IntVar(&h.avg, "avg", 300, "averaging steps (paper: 2000)")
	flag.IntVar(&h.procs, "procs", 32768, "physical processors for the CM backend (paper: 32k)")
	flag.IntVar(&h.workers, "workers", 0, "reference-backend CPU workers (0 = NumCPU)")
	flag.Uint64Var(&h.seed, "seed", 1988, "random seed")
	flag.StringVar(&h.outDir, "out", "results", "output directory")
	flag.IntVar(&h.replicas, "replicas", 4, "replicas per sweep point (sweep experiments)")
	flag.IntVar(&h.jobpool, "jobpool", 0, "concurrent simulations of the sweep scheduler (0 = NumCPU)")
	flag.StringVar(&h.ckptDir, "ckpt", "", "sweep checkpoint directory: -exp sweep resumes over it when set (empty = no checkpoints); -exp sweep-resume defaults it to <out>/ckpt")
	flag.Parse()

	if err := os.MkdirAll(h.outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	run := map[string]func() error{
		"fig1":         func() error { return h.contourFigs(0) },
		"fig4":         func() error { return h.contourFigs(0.5) },
		"fig7":         h.fig7,
		"phases":       h.phases,
		"compare":      h.compare,
		"scaling":      h.scaling,
		"sweep":        func() error { _, err := h.sweep(h.ckptDir); return err },
		"sweep-resume": h.sweepResume,
		"coord-chaos":  h.coordChaos,
	}
	// figs 2/3 and 5/6 are produced by the same runs as 1 and 4.
	run["fig2"], run["fig3"] = run["fig1"], run["fig1"]
	run["fig5"], run["fig6"] = run["fig4"], run["fig4"]

	if *exp == "all" {
		for _, name := range []string{"fig1", "fig4", "fig7", "phases", "compare", "scaling"} {
			fmt.Printf("=== %s ===\n", name)
			if err := run[name](); err != nil {
				log.Fatal(err)
			}
			fmt.Println()
		}
		return
	}
	f, ok := run[*exp]
	if !ok {
		log.Fatalf("unknown experiment %q", *exp)
	}
	if err := f(); err != nil {
		log.Fatal(err)
	}
}

// contourFigs runs the wedge flow for one rarefaction setting and emits
// the contour figure, the surface figure and the stagnation window
// (figures 1–3 for λ=0, figures 4–6 for λ=0.5).
func (h *harness) contourFigs(lambda float64) error {
	tag := "nearcontinuum"
	if lambda > 0 {
		tag = "rarefied"
	}
	cfg := dsmc.PaperConfig()
	cfg.ParticlesPerCell = h.perCell
	cfg.MeanFreePath = lambda
	cfg.Seed = h.seed
	cfg.Workers = h.workers
	s, err := dsmc.NewSimulation(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d flow particles, %d steps + %d averaging\n",
		tag, s.NFlow(), h.steps, h.avg)
	s.Run(h.steps)
	// One sampling pass; density and temperature are both derived from it.
	smp := s.Sample(h.avg)
	field := smp.MustField(dsmc.Density)
	tempField := smp.MustField(dsmc.Temperature)
	th := s.Theory()

	t := report.NewTable("Mach 4 / 30° wedge, "+tag, "quantity", "measured", "paper/theory")
	t.AddRow("shock angle (deg)", field.ShockAngleDeg(), th.ShockAngleDeg)
	t.AddRow("post-shock density ratio", field.PostShockMean(), th.DensityRatio)
	t.AddRow("post-shock temperature ratio", tempField.PostShockMean(), th.TemperatureRatio)
	paperThick := 3.0
	if lambda > 0 {
		paperThick = 5.0
	}
	t.AddRow("shock thickness (cells)", field.ShockThickness(), paperThick)
	t.AddRow("wake contrast (lower wall)", field.WakeContrast(), "present vs washed out")
	t.AddRow("wake recovery x (cells)", field.WakeRecoveryX(), "moves downstream when rarefied")
	t.AddRow("wake steepness (1/cell)", field.WakeSteepness(), "falls when rarefied")
	t.AddRow("wake base density", field.WakeBaseDensity(), "drops sharply when rarefied")
	t.AddRow("freestream density", field.FreestreamMean(), 1.0)
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	// Contour figure (fig 1 / fig 4): CSV field + contour segment counts.
	if err := h.writeField(tag+"_density", field); err != nil {
		return err
	}
	if err := h.writeField(tag+"_temperature", tempField); err != nil {
		return err
	}
	var levels []float64
	for l := 1.25; l < th.DensityRatio; l += 0.5 {
		levels = append(levels, l)
	}
	var b strings.Builder
	for _, l := range levels {
		fmt.Fprintf(&b, "level %.2f: %d segments\n", l, len(field.Contours(l)))
	}
	if err := os.WriteFile(filepath.Join(h.outDir, tag+"_contours.txt"), []byte(b.String()), 0o644); err != nil {
		return err
	}
	// Surface figure (fig 2 / fig 5).
	if err := os.WriteFile(filepath.Join(h.outDir, tag+"_surface.txt"),
		[]byte(field.Surface(10)), 0o644); err != nil {
		return err
	}
	// Stagnation-region zoom (fig 3 / fig 6).
	zoom := field.Window(30, 0, 50, 20)
	if err := h.writeField(tag+"_stagnation", zoom); err != nil {
		return err
	}
	return nil
}

func (h *harness) writeField(name string, f *dsmc.Field) error {
	csvF, err := os.Create(filepath.Join(h.outDir, name+".csv"))
	if err != nil {
		return err
	}
	defer csvF.Close()
	if err := f.WriteCSV(csvF); err != nil {
		return err
	}
	pgmF, err := os.Create(filepath.Join(h.outDir, name+".pgm"))
	if err != nil {
		return err
	}
	defer pgmF.Close()
	return f.WritePGM(pgmF)
}

// fig7 sweeps the total particle count at fixed machine size.
func (h *harness) fig7() error {
	base := sim.DefaultConfig(1)
	base.Seed = h.seed
	freeVol := float64(base.NX*base.NY) - base.Wedge.Base*base.Wedge.Height()/2
	startPerCell := float64(h.procs) / freeVol / 1.1
	steps := 20
	table := report.NewTable(
		fmt.Sprintf("Figure 7 — fixed machine of %d processors", h.procs),
		"particles", "vp-ratio", "model-us/p/step", "wall-us/p/step")
	var xs, ys []float64
	for k := 0; k < 5; k++ {
		cfg := base
		cfg.NPerCell = startPerCell * float64(int(1)<<uint(k))
		s, err := cmsim.New(cmsim.Config{Sim: cfg, PhysProcs: h.procs})
		if err != nil {
			return err
		}
		s.Run(steps)
		book := s.Machine().Cost()
		n := float64(s.NFlow())
		modelUs := cm.ModelSeconds(book.TotalCycles()) * 1e6 / n / float64(steps)
		wallUs := book.TotalWall().Seconds() * 1e6 / n / float64(steps)
		table.AddRow(s.Machine().VPs(), s.Machine().VPR(), modelUs, wallUs)
		xs = append(xs, float64(s.Machine().VPs()))
		ys = append(ys, modelUs)
	}
	if err := table.Render(os.Stdout); err != nil {
		return err
	}
	out, err := os.Create(filepath.Join(h.outDir, "fig7.txt"))
	if err != nil {
		return err
	}
	defer out.Close()
	return report.Series(out, "Figure 7", "particles", "model-us/p/step", xs, ys)
}

// phases reports the distribution of computational time over the four
// sub-steps on the CM backend (paper: move 14%, sort 27%, select 20%,
// collide 39%).
func (h *harness) phases() error {
	cfg := sim.DefaultConfig(1)
	// The paper's breakdown is measured at full scale (VP ratio 16).
	cfg.NPerCell = 75
	cfg.Seed = h.seed
	s, err := cmsim.New(cmsim.Config{Sim: cfg, PhysProcs: h.procs})
	if err != nil {
		return err
	}
	s.Run(5)
	s.Machine().ResetCost()
	s.Run(30)
	book := s.Machine().Cost()
	parts := map[string]float64{}
	for _, name := range book.Phases() {
		if c := book.Phase(name).Cycles; c > 0 {
			parts[name] = float64(c)
		}
	}
	if err := report.Percentages(os.Stdout,
		"Distribution of computational time (CM cost model)", parts); err != nil {
		return err
	}
	fmt.Println("paper: collide 39%, sort 27%, select 20%, move+bc 14%")
	out, err := os.Create(filepath.Join(h.outDir, "phases.txt"))
	if err != nil {
		return err
	}
	defer out.Close()
	return report.Percentages(out, "phase cycle distribution", parts)
}

// compare measures per-particle wall time of the sequential reference
// (the Cray surrogate) against the CM backend's modelled and wall time.
func (h *harness) compare() error {
	steps := 60
	cfg := dsmc.PaperConfig()
	// The headline comparison is quoted at full paper scale: 512k
	// particles on the 32k-processor machine (VP ratio 16).
	cfg.ParticlesPerCell = 75
	cfg.Seed = h.seed
	// The reference plays the paper's single-processor Cray-2 role here,
	// so it is pinned to one worker regardless of -workers (the multicore
	// reference is the scaling experiment's subject).
	cfg.Workers = 1

	ref, err := dsmc.NewSimulation(cfg)
	if err != nil {
		return err
	}
	ref.Run(steps)
	refUs := ref.MicrosecondsPerParticleStep()

	cfg.Backend = dsmc.ConnectionMachine
	cfg.PhysProcs = h.procs
	cmS, err := dsmc.NewSimulation(cfg)
	if err != nil {
		return err
	}
	cmS.Run(steps)
	cmWallUs := cmS.MicrosecondsPerParticleStep()
	var cmModelUs float64
	var totalCycles int64
	for _, c := range cmS.ModelPhaseCycles() {
		totalCycles += c
	}
	cmModelUs = cm.ModelSeconds(totalCycles) * 1e6 / float64(cmS.NFlow()) / float64(steps)

	t := report.NewTable("Per-particle time comparison (µs/particle/step)",
		"implementation", "measured", "paper")
	t.AddRow("sequential reference (Cray-2 role)", refUs, 0.5)
	t.AddRow("CM backend, wall clock", cmWallUs, "-")
	t.AddRow(fmt.Sprintf("CM cost model (%d procs; paper 32k)", h.procs), cmModelUs, 7.2)
	t.AddRow("model/reference ratio", cmModelUs/math.Max(refUs, 1e-9), 7.2/0.5)
	return t.Render(os.Stdout)
}

// scaling sweeps the reference backend's worker count (1, 2, 4, all
// cores) on the wedge flow and reports wall-clock per-particle time and
// the speedup over one worker. Every run computes the identical
// trajectory (counter-based per-cell streams), so the sweep isolates the
// sharding from any statistical variation.
func (h *harness) scaling() error {
	steps := 40
	ws := par.SweepWorkers()
	table := report.NewTable(
		fmt.Sprintf("Reference backend multicore scaling (%g particles/cell, %d steps)", h.perCell, steps),
		"workers", "us/particle/step", "speedup")
	var base float64
	var xs, ys []float64
	for _, w := range ws {
		cfg := dsmc.PaperConfig()
		cfg.ParticlesPerCell = h.perCell
		cfg.Seed = h.seed
		cfg.Workers = w
		s, err := dsmc.NewSimulation(cfg)
		if err != nil {
			return err
		}
		s.Run(5) // warm-up past the initial transient
		t0 := time.Now()
		s.Run(steps)
		us := time.Since(t0).Seconds() * 1e6 / float64(s.NFlow()) / float64(steps)
		if w == 1 {
			base = us
		}
		table.AddRow(w, us, base/us)
		xs = append(xs, float64(w))
		ys = append(ys, us)
	}
	if err := table.Render(os.Stdout); err != nil {
		return err
	}
	out, err := os.Create(filepath.Join(h.outDir, "scaling.txt"))
	if err != nil {
		return err
	}
	defer out.Close()
	return report.Series(out, "Reference backend scaling", "workers", "us/particle/step", xs, ys)
}

// sweepSpec builds the rarefaction sweep: the paper's two flow regimes
// as sweep points, -replicas independent replicas each.
func (h *harness) sweepSpec(ckptDir string) dsmc.SweepSpec {
	base := dsmc.PaperConfig()
	base.ParticlesPerCell = h.perCell
	base.Seed = h.seed
	lam0, lam05 := 0.0, 0.5
	return dsmc.SweepSpec{
		Name:       "rarefaction-sweep",
		Base:       base,
		Quantities: []dsmc.Quantity{dsmc.Density, dsmc.Temperature, dsmc.MachNumber},
		Points: []dsmc.SweepPoint{
			{Name: "near-continuum", MeanFreePath: &lam0},
			{Name: "rarefied", MeanFreePath: &lam05},
		},
		Replicas:      h.replicas,
		WarmSteps:     h.steps,
		SampleSteps:   h.avg,
		Pool:          h.jobpool,
		CheckpointDir: ckptDir,
	}
}

// sweep runs the rarefaction ensemble sweep and reports per-point
// cross-replica statistics; checkpoints land in ckptDir when set.
func (h *harness) sweep(ckptDir string) (*dsmc.SweepResult, error) {
	spec := h.sweepSpec(ckptDir)
	fmt.Printf("sweep: %d points x %d replicas, %d+%d steps each, pool %d\n",
		len(spec.Points), spec.Replicas, spec.WarmSteps, spec.SampleSteps, h.jobpool)
	var jobsDone int
	res, err := dsmc.RunSweep(context.Background(), spec, func(e dsmc.SweepEvent) {
		// Count replica jobs only; the per-point aggregate fan-in nodes
		// also emit job-done but are not simulations.
		if e.Type == "job-done" && !strings.HasSuffix(e.Job, "/aggregate") {
			jobsDone++
			fmt.Printf("  %-32s done (%d of %d jobs finished)\n",
				e.Job, jobsDone, len(spec.Points)*spec.Replicas)
		}
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Rarefaction sweep, cross-replica aggregates",
		"point", "shock angle (deg)", "ci95", "replicas used", "freestream mean")
	for i := range res.Points {
		p := &res.Points[i]
		t.AddRow(p.Name,
			p.ShockAngleDeg.Mean, p.ShockAngleDeg.CI95, p.ShockAngleDeg.N,
			p.Field().FreestreamMean())
	}
	if err := t.Render(os.Stdout); err != nil {
		return nil, err
	}
	buf, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(h.outDir, "sweep.json"), append(buf, '\n'), 0o644); err != nil {
		return nil, err
	}
	return res, nil
}

// sweepResume is the self-verifying kill/resume check: the sweep is run
// uninterrupted, then run again with checkpoints enabled but cancelled
// as soon as every job has committed at least one checkpoint, then
// resumed from those checkpoints. The resumed aggregates must match the
// uninterrupted run bit for bit.
func (h *harness) sweepResume() error {
	straight, err := h.sweep("")
	if err != nil {
		return err
	}

	ckptDir := h.ckptDir
	if ckptDir == "" {
		ckptDir = filepath.Join(h.outDir, "ckpt")
	}
	if err := os.RemoveAll(ckptDir); err != nil {
		return err
	}
	spec := h.sweepSpec(ckptDir)
	// Checkpoint at half a job's steps so cancellation always lands
	// mid-flight with state on disk.
	spec.CheckpointEvery = (spec.WarmSteps + spec.SampleSteps) / 2
	if spec.CheckpointEvery < 1 {
		spec.CheckpointEvery = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	checkpointed := make(map[string]bool)
	totalJobs := len(spec.Points) * spec.Replicas
	_, err = dsmc.RunSweep(ctx, spec, func(e dsmc.SweepEvent) {
		if e.Type == "job-progress" && e.StepsDone >= spec.CheckpointEvery {
			checkpointed[e.Job] = true
			if len(checkpointed) == totalJobs {
				cancel()
			}
		}
	})
	cancel()
	if err == nil {
		// The whole sweep finished before every job checkpointed (tiny
		// configurations); the resume below then just re-verifies the
		// completed checkpoints, which is still a valid check.
		fmt.Println("sweep-resume: sweep finished before cancellation; resuming over final checkpoints")
	} else {
		fmt.Printf("sweep-resume: killed mid-flight (%v); resuming from %s\n", err, ckptDir)
	}

	resumed, err := h.sweep(ckptDir)
	if err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	if err := compareSweeps(straight, resumed); err != nil {
		return fmt.Errorf("sweep-resume FAILED: %w", err)
	}
	fmt.Println("sweep-resume: PASS — resumed aggregates are bit-identical to the uninterrupted run")
	return nil
}

// errChaosCrash is the sentinel thrown by the in-process chaos "crash":
// panicking through the worker's exit hook kills its goroutine the way
// os.Exit kills a worker process, without taking the experiment down.
var errChaosCrash = errors.New("chaos: injected worker crash")

// coordChaos is the self-verifying distributed fault-tolerance check:
// the sweep runs once in process (the reference), then again through the
// coordinator with pull-workers, where the first worker crashes hard mid
// job — after it has uploaded a checkpoint, with its heartbeats silenced
// so nothing keeps the lease alive. The coordinator expires the lease,
// redispatches, and a surviving worker resumes from the uploaded
// checkpoint. The final aggregates must match the reference bit for bit.
func (h *harness) coordChaos() error {
	straight, err := h.sweep("")
	if err != nil {
		return err
	}

	spec := h.sweepSpec("")
	spec.CheckpointEvery = (spec.WarmSteps + spec.SampleSteps) / 8
	if spec.CheckpointEvery < 1 {
		spec.CheckpointEvery = 1
	}

	dataDir := filepath.Join(h.outDir, "coord-data")
	if err := os.RemoveAll(dataDir); err != nil {
		return err
	}
	var lost atomic.Int32
	c := coord.New(coord.Config{
		DataDir:     dataDir,
		LeaseTTL:    5 * time.Second,
		MaxAttempts: 3,
		OnEvent: func(_ string, e dsmc.SweepEvent) {
			switch e.Type {
			case "job-lost":
				lost.Add(1)
				fmt.Printf("  coordinator: %s lost (%s)\n", e.Job, e.Err)
			case "job-failed", "job-skipped":
				fmt.Printf("  coordinator: %s %s (%s)\n", e.Job, e.Type, e.Err)
			}
		},
	})
	done := make(chan struct{})
	var chaosRes *dsmc.SweepResult
	var chaosErr error
	if err := c.AddSweep("coord-chaos", spec, func(r *dsmc.SweepResult, err error) {
		chaosRes, chaosErr = r, err
		close(done)
	}); err != nil {
		return err
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The crash worker runs alone first so it deterministically leases a
	// job; it dies one chunk after its first checkpoint upload.
	crashed := make(chan struct{})
	crash := coord.NewWorker(coord.WorkerConfig{
		ID:        "crash-worker",
		Queue:     coord.LocalQueue{C: c},
		PollEvery: 10 * time.Millisecond,
		Chaos: coord.Chaos{
			KillAfterSteps: spec.CheckpointEvery + 1,
			DropHeartbeats: true,
			Exit:           func(int) { panic(errChaosCrash) },
		},
	})
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if r != errChaosCrash {
					panic(r)
				}
				close(crashed)
			}
		}()
		crash.Run(ctx)
	}()
	select {
	case <-crashed:
		fmt.Println("coord-chaos: crash worker died mid-job; survivors take over")
	case <-time.After(10 * time.Minute):
		return fmt.Errorf("coord-chaos: crash worker never crashed")
	}

	for i := 0; i < 2; i++ {
		w := coord.NewWorker(coord.WorkerConfig{
			ID:        fmt.Sprintf("survivor-%d", i),
			Queue:     coord.LocalQueue{C: c},
			PollEvery: 10 * time.Millisecond,
		})
		go w.Run(ctx)
	}

	<-done
	if chaosErr != nil {
		return fmt.Errorf("coord-chaos sweep failed: %w", chaosErr)
	}
	if lost.Load() == 0 {
		return fmt.Errorf("coord-chaos FAILED: the crash was never detected as a lost lease")
	}
	if err := compareSweeps(straight, chaosRes); err != nil {
		return fmt.Errorf("coord-chaos FAILED: %w", err)
	}
	fmt.Println("coord-chaos: PASS — aggregates after a worker crash and lease-expiry resume are bit-identical to the in-process run")
	return nil
}

// compareSweeps demands bit-identical aggregates (NaN-safe): every
// scalar statistic including its sample counts, and the full per-cell
// stats of every sampled quantity.
func compareSweeps(a, b *dsmc.SweepResult) error {
	if len(a.Points) != len(b.Points) {
		return fmt.Errorf("point counts differ: %d vs %d", len(a.Points), len(b.Points))
	}
	bits := math.Float64bits
	scalarsDiffer := func(x, y dsmc.ScalarStats) bool {
		return bits(x.Mean) != bits(y.Mean) || bits(x.Variance) != bits(y.Variance) ||
			bits(x.CI95) != bits(y.CI95) || x.N != y.N || x.Dropped != y.Dropped
	}
	for i := range a.Points {
		pa, pb := &a.Points[i], &b.Points[i]
		if pa.Name != pb.Name || pa.Replicas != pb.Replicas {
			return fmt.Errorf("point %d metadata differs", i)
		}
		if scalarsDiffer(pa.ShockAngleDeg, pb.ShockAngleDeg) {
			return fmt.Errorf("point %q shock-angle stats differ", pa.Name)
		}
		if scalarsDiffer(pa.Collisions, pb.Collisions) {
			return fmt.Errorf("point %q collision stats differ", pa.Name)
		}
		if scalarsDiffer(pa.NFlow, pb.NFlow) {
			return fmt.Errorf("point %q flow-count stats differ", pa.Name)
		}
		if len(pa.Fields) != len(pb.Fields) {
			return fmt.Errorf("point %q quantity sets differ", pa.Name)
		}
		for q, fa := range pa.Fields {
			fb, ok := pb.Fields[q]
			if !ok {
				return fmt.Errorf("point %q missing quantity %q in resumed run", pa.Name, q)
			}
			for c := range fa.Mean {
				if bits(fa.Mean[c]) != bits(fb.Mean[c]) ||
					bits(fa.Variance[c]) != bits(fb.Variance[c]) ||
					bits(fa.CI95[c]) != bits(fb.CI95[c]) {
					return fmt.Errorf("point %q %s stats differ at cell %d", pa.Name, q, c)
				}
			}
		}
	}
	return nil
}
