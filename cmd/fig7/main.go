// Command fig7 reproduces Figure 7 of the paper: computational time per
// particle per time step as a function of the total number of particles,
// with the machine size held fixed so the virtual processor ratio tracks
// the particle count. Both the Connection Machine cost model's cycle time
// and the host wall-clock time are reported; the paper's curve falls from
// ~10.5 to ~7.2 µs between 32k and 512k particles, with the largest step
// between VP ratio 1 and 2 (collision pairs become on-processor).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dsmc/internal/cm"
	"dsmc/internal/cmsim"
	"dsmc/internal/report"
	"dsmc/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fig7: ")
	var (
		procs  = flag.Int("procs", 4096, "physical processors (paper: 32k)")
		steps  = flag.Int("steps", 20, "time steps per measurement")
		points = flag.Int("points", 5, "number of doubling points (paper: 32k..512k = 5)")
		seed   = flag.Uint64("seed", 1988, "random seed")
	)
	flag.Parse()

	base := sim.DefaultConfig(1)
	base.Seed = *seed

	// The paper varies total particles with the machine fixed; particle
	// count scales with NPerCell. Start near VP ratio 1.
	freeVol := freeVolume(base)
	startPerCell := float64(*procs) / freeVol / 1.1 // ≈ VPR 1 including reservoir

	table := report.NewTable(
		fmt.Sprintf("Figure 7 — per-particle time vs total particles (machine fixed at %d processors)", *procs),
		"particles", "vp-ratio", "model-us/p/step", "wall-us/p/step", "router-msgs/p/step")
	for k := 0; k < *points; k++ {
		perCell := startPerCell * float64(int(1)<<uint(k))
		cfg := base
		cfg.NPerCell = perCell
		s, err := cmsim.New(cmsim.Config{Sim: cfg, PhysProcs: *procs})
		if err != nil {
			log.Fatal(err)
		}
		s.Run(*steps)
		book := s.Machine().Cost()
		n := float64(s.NFlow())
		modelUs := cm.ModelSeconds(book.TotalCycles()) * 1e6 / n / float64(*steps)
		wallUs := book.TotalWall().Seconds() * 1e6 / n / float64(*steps)
		var router int64
		for _, ph := range book.Phases() {
			router += book.Phase(ph).RouterMsgs
		}
		table.AddRow(s.Machine().VPs(), s.Machine().VPR(), modelUs, wallUs,
			float64(router)/n/float64(*steps))
	}
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npaper's curve: 10.5 -> 7.2 us/particle/step from 32k to 512k particles;")
	fmt.Println("largest improvement from VP ratio 1 to 2 (collision pairs become on-processor).")
}

func freeVolume(cfg sim.Config) float64 {
	// wedge area = base*height/2 removed from NX*NY
	total := float64(cfg.NX * cfg.NY)
	if cfg.Wedge != nil {
		total -= cfg.Wedge.Base * cfg.Wedge.Height() / 2
	}
	return total
}
