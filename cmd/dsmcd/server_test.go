package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dsmc"
)

func tinySpec() dsmc.SweepSpec {
	cfg := dsmc.PaperConfig()
	cfg.GridNX, cfg.GridNY = 48, 24
	cfg.Wedge = &dsmc.WedgeSpec{LeadX: 10, Base: 12, AngleDeg: 30}
	cfg.ParticlesPerCell = 3
	cfg.Seed = 7
	return dsmc.SweepSpec{
		Name: "smoke",
		Base: cfg,
		Points: []dsmc.SweepPoint{
			{Name: "rarefied"},
		},
		Replicas:    2,
		WarmSteps:   4,
		SampleSteps: 4,
	}
}

func submit(t *testing.T, ts *httptest.Server, spec dsmc.SweepSpec) string {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("submit: status %d: %v", resp.StatusCode, e)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["id"] == "" {
		t.Fatal("submit returned no id")
	}
	return out["id"]
}

func waitDone(t *testing.T, ts *httptest.Server, id string) statusView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st statusView
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == stateDone || st.State == stateFailed {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("sweep did not finish in time")
	return statusView{}
}

// TestServerLifecycle: submit → status → events → result, end to end.
func TestServerLifecycle(t *testing.T) {
	s, err := newServer(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	id := submit(t, ts, tinySpec())
	st := waitDone(t, ts, id)
	if st.State != stateDone {
		t.Fatalf("sweep state %s (%s)", st.State, st.Error)
	}
	if len(st.Jobs) != 3 { // 2 replicas + 1 aggregate
		t.Errorf("status lists %d jobs, want 3", len(st.Jobs))
	}

	// Events: finished sweep streams its full history and closes.
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content type %q", ct)
	}
	var lines, progress int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e dsmc.SweepEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines++
		if e.Type == "job-progress" {
			progress++
		}
	}
	if lines == 0 || progress == 0 {
		t.Errorf("event stream had %d lines, %d progress events", lines, progress)
	}

	// Result: aggregated stats for the one point.
	resp, err = http.Get(ts.URL + "/v1/sweeps/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res dsmc.SweepResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 || res.Points[0].Replicas != 2 {
		t.Fatalf("result %+v, want 1 point of 2 replicas", res)
	}
	if res.Points[0].NFlow.Mean <= 0 {
		t.Error("aggregated flow count not positive")
	}
}

// TestServerValidation: malformed and invalid submissions 400 with a
// diagnostic; unknown sweeps 404; premature result fetch 409.
func TestServerValidation(t *testing.T) {
	s, err := newServer(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{not json"); code != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", code)
	}
	if code := post(`{"unknown_field": 1}`); code != http.StatusBadRequest {
		t.Errorf("unknown field: status %d", code)
	}
	bad := tinySpec()
	bad.Base.Precision = "float16"
	raw, _ := json.Marshal(bad)
	if code := post(string(raw)); code != http.StatusBadRequest {
		t.Errorf("invalid precision: status %d", code)
	}
	noReplicas := tinySpec()
	noReplicas.Replicas = 0
	raw, _ = json.Marshal(noReplicas)
	if code := post(string(raw)); code != http.StatusBadRequest {
		t.Errorf("zero replicas: status %d", code)
	}
	withDir := tinySpec()
	withDir.CheckpointDir = "/tmp/evil"
	raw, _ = json.Marshal(withDir)
	if code := post(string(raw)); code != http.StatusBadRequest {
		t.Errorf("client checkpoint dir: status %d", code)
	}
	withStore := tinySpec()
	withStore.ResultStoreDir = "/tmp/evil-store"
	raw, _ = json.Marshal(withStore)
	if code := post(string(raw)); code != http.StatusBadRequest {
		t.Errorf("client result store dir: status %d", code)
	}

	resp, err := http.Get(ts.URL + "/v1/sweeps/sw-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown sweep: status %d", resp.StatusCode)
	}
}

// TestServerScenarioSweep: a spec with a first-class 3D scenario base,
// multi-quantity sampling and per-point grid-shape overrides runs end to
// end; the result carries per-point field shapes, and the quantity
// endpoint serves any sampled quantity (404 for unsampled ones).
func TestServerScenarioSweep(t *testing.T) {
	s, err := newServer(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	ss, err := dsmc.NewScenarioSpec(dsmc.ShockTube3D{
		GridNX: 24, GridNY: 4, GridNZ: 4,
		ThermalSpeed: 0.125, PistonSpeed: 0.131,
		ParticlesPerCell: 3, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	id := submit(t, ts, dsmc.SweepSpec{
		Name:       "tube",
		Scenario:   ss,
		Quantities: []dsmc.Quantity{dsmc.Density, dsmc.Temperature},
		Points: []dsmc.SweepPoint{
			{Name: "short"},
			{Name: "long", GridNX: iptr(32)},
		},
		Replicas:    1,
		WarmSteps:   3,
		SampleSteps: 3,
	})
	if st := waitDone(t, ts, id); st.State != stateDone {
		t.Fatalf("sweep state %s (%s)", st.State, st.Error)
	}

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res dsmc.SweepResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d points", len(res.Points))
	}
	wantNX := []int{24, 32}
	for p := range res.Points {
		fs, ok := res.Points[p].Fields[dsmc.Temperature]
		if !ok {
			t.Fatalf("point %d missing temperature aggregate", p)
		}
		if fs.NX != wantNX[p] || fs.NZ != 4 || len(fs.Mean) != wantNX[p]*16 {
			t.Errorf("point %d temperature shape %dx%dx%d (%d cells), want NX %d",
				p, fs.NX, fs.NY, fs.NZ, len(fs.Mean), wantNX[p])
		}
	}

	// The quantity endpoint serves any sampled quantity per point...
	resp, err = http.Get(ts.URL + "/v1/sweeps/" + id + "/result?quantity=temperature")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quantity endpoint status %d", resp.StatusCode)
	}
	var qv quantityView
	if err := json.NewDecoder(resp.Body).Decode(&qv); err != nil {
		t.Fatal(err)
	}
	if qv.Quantity != "temperature" || len(qv.Points) != 2 {
		t.Fatalf("quantity view %+v", qv)
	}
	if qv.Points[1].Field.NX != 32 || len(qv.Points[1].Field.Mean) != 32*16 {
		t.Errorf("quantity view shape %d (%d cells)", qv.Points[1].Field.NX, len(qv.Points[1].Field.Mean))
	}

	// ...and 404s for quantities the sweep never sampled.
	resp, err = http.Get(ts.URL + "/v1/sweeps/" + id + "/result?quantity=mach")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unsampled quantity: status %d, want 404", resp.StatusCode)
	}
}

func iptr(v int) *int { return &v }

// TestServerRecovery: a new server over an existing data directory
// serves finished sweeps and their results without re-running them.
func TestServerRecovery(t *testing.T) {
	dir := t.TempDir()
	s1, err := newServer(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.handler())
	id := submit(t, ts1, tinySpec())
	st := waitDone(t, ts1, id)
	ts1.Close()
	if st.State != stateDone {
		t.Fatalf("first run state %s", st.State)
	}

	s2, err := newServer(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.handler())
	defer ts2.Close()
	st2 := waitDone(t, ts2, id)
	if st2.State != stateDone || !st2.Resumed {
		t.Fatalf("recovered sweep state %s resumed=%v", st2.State, st2.Resumed)
	}
	resp, err := http.Get(ts2.URL + "/v1/sweeps/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res dsmc.SweepResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("recovered result has %d points", len(res.Points))
	}
}
