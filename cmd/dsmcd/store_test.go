package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dsmc"
)

func f64p(v float64) *float64 { return &v }

// TestStoreMemoE2E: the headline memoization property, end to end.
// Sweep A finishes and populates the result store; sweep B shares half
// its points with A (same indices, same physics) and must complete with
// zero recomputed replicas — the store hit counter accounts for every
// shared job and the lease counter shows only the fresh half was ever
// dispatched — while its aggregate is bit-identical to a cold pool-1
// in-process run. The finished result is then revalidated via its ETag.
func TestStoreMemoE2E(t *testing.T) {
	s, err := newServer(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.close)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	shared := []dsmc.SweepPoint{
		{Name: "shared-0"},
		{Name: "shared-1", MeanFreePath: f64p(0.5)},
	}
	specA := tinySpec()
	specA.Name = "memo-a"
	specA.Points = shared
	idA := submit(t, ts, specA)
	if st := waitDone(t, ts, idA); st.State != stateDone {
		t.Fatalf("sweep A state %s (%s)", st.State, st.Error)
	}

	before := scrapeMetrics(t, ts.URL)

	specB := tinySpec()
	specB.Name = "memo-b"
	specB.Points = append(append([]dsmc.SweepPoint{}, shared...),
		dsmc.SweepPoint{Name: "fresh-0", MeanFreePath: f64p(0.75)},
		dsmc.SweepPoint{Name: "fresh-1", WedgeAngleDeg: f64p(25)},
	)
	idB := submit(t, ts, specB)
	if st := waitDone(t, ts, idB); st.State != stateDone {
		t.Fatalf("sweep B state %s (%s)", st.State, st.Error)
	}

	after := scrapeMetrics(t, ts.URL)
	sharedJobs := float64(len(shared) * specB.Replicas)
	if hits := after["dsmc_store_hits_total"] - before["dsmc_store_hits_total"]; hits != sharedJobs {
		t.Errorf("store hits during sweep B: %v, want %v (every shared replica memoized)", hits, sharedJobs)
	}
	freshJobs := float64(2 * specB.Replicas)
	if grants := after["dsmc_coord_lease_grants_total"] - before["dsmc_coord_lease_grants_total"]; grants != freshJobs {
		t.Errorf("leases granted during sweep B: %v, want %v (only fresh jobs dispatched)", grants, freshJobs)
	}

	// B's served aggregate is bit-identical to a cold pool-1 run.
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + idB + "/result")
	if err != nil {
		t.Fatal(err)
	}
	etag := resp.Header.Get("ETag")
	cache := resp.Header.Get("Cache-Control")
	var resB dsmc.SweepResult
	err = json.NewDecoder(resp.Body).Decode(&resB)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	cold := specB
	cold.Pool = 1
	coldRes, err := dsmc.RunSweep(context.Background(), cold, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := resultHash(t, &resB), resultHash(t, coldRes); g != w {
		t.Fatalf("memoized sweep hash %016x != cold pool-1 hash %016x", g, w)
	}

	// The result is an immutable resource: strong ETag, immutable cache
	// policy, and conditional revalidation short-circuits to 304.
	if !strings.HasPrefix(etag, `"`) || !strings.HasSuffix(etag, `"`) {
		t.Fatalf("result ETag %q is not a quoted strong validator", etag)
	}
	if !strings.Contains(cache, "immutable") {
		t.Errorf("result Cache-Control %q is not immutable", cache)
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/sweeps/"+idB+"/result", nil)
	req.Header.Set("If-None-Match", etag)
	cond, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(cond.Body)
	cond.Body.Close()
	if cond.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET with matching ETag: status %d, want 304", cond.StatusCode)
	}
	if len(body) != 0 {
		t.Errorf("304 carried a %d-byte body", len(body))
	}

	// The store listing covers both sweeps' artifacts, and each object
	// is fetchable by content hash with the same immutable semantics.
	resp, err = http.Get(ts.URL + "/v1/store")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Artifacts int `json:"artifacts"`
		Bytes     int `json:"bytes"`
		Entries   []struct {
			Key    string `json:"key"`
			SHA256 string `json:"sha256"`
			Size   int    `json:"size"`
			Href   string `json:"href"`
		} `json:"entries"`
	}
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	wantArtifacts := (len(shared) + 2) * specB.Replicas // A's 4 jobs + B's 4 fresh jobs
	if listing.Artifacts != wantArtifacts || len(listing.Entries) != wantArtifacts || listing.Bytes <= 0 {
		t.Fatalf("store listing: %d artifacts, %d entries, %d bytes; want %d artifacts",
			listing.Artifacts, len(listing.Entries), listing.Bytes, wantArtifacts)
	}
	e := listing.Entries[0]
	if e.Key == "" || len(e.SHA256) != 64 || e.Size <= 0 {
		t.Fatalf("malformed listing entry %+v", e)
	}
	resp, err = http.Get(ts.URL + e.Href)
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(blob) != e.Size {
		t.Fatalf("GET %s: status %d, %d bytes (want %d)", e.Href, resp.StatusCode, len(blob), e.Size)
	}
	if got, want := resp.Header.Get("ETag"), `"`+e.SHA256+`"`; got != want {
		t.Errorf("artifact ETag %q, want %q", got, want)
	}
	req, _ = http.NewRequest(http.MethodGet, ts.URL+e.Href, nil)
	req.Header.Set("If-None-Match", `W/"`+e.SHA256+`"`)
	cond, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	cond.Body.Close()
	if cond.StatusCode != http.StatusNotModified {
		t.Errorf("conditional artifact GET: status %d, want 304", cond.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/store/" + strings.Repeat("0", 64))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown object: status %d, want 404", resp.StatusCode)
	}
}

// TestStoreQuarantineOnRestart: a restarted server quarantines torn
// store artifacts instead of serving them, keeps sweeping orphaned tmp
// files outside the store, and a resubmitted sweep falls back to
// recomputing the one artifact whose bytes rotted — reproducing the
// original result exactly.
func TestStoreQuarantineOnRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := newServer(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.handler())
	spec := tinySpec()
	id1 := submit(t, ts1, spec)
	if st := waitDone(t, ts1, id1); st.State != stateDone {
		t.Fatalf("first sweep state %s (%s)", st.State, st.Error)
	}
	resp, err := http.Get(ts1.URL + "/v1/sweeps/" + id1 + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var res1 dsmc.SweepResult
	err = json.NewDecoder(resp.Body).Decode(&res1)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	s1.close()

	// Crash aftermath: a torn artifact write inside the store, a stray
	// atomic-write orphan outside it, and one finished artifact whose
	// bytes rotted on disk.
	storeDir := filepath.Join(dir, "store")
	torn := filepath.Join(storeDir, "objects", "half-written.tmp")
	if err := os.WriteFile(torn, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(dir, "stray.tmp")
	if err := os.WriteFile(stray, []byte("stray"), 0o644); err != nil {
		t.Fatal(err)
	}
	objs, err := filepath.Glob(filepath.Join(storeDir, "objects", "*"))
	if err != nil {
		t.Fatal(err)
	}
	var victim string
	for _, p := range objs {
		if !strings.HasSuffix(p, ".tmp") {
			victim = p
			break
		}
	}
	if victim == "" {
		t.Fatal("no store objects after the first sweep")
	}
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := newServer(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.close)
	ts2 := httptest.NewServer(s2.handler())
	defer ts2.Close()

	// The torn artifact was quarantined — moved aside, not deleted, and
	// never served — while the stray orphan outside the store was removed.
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Errorf("torn artifact still in objects/: %v", err)
	}
	if _, err := os.Stat(filepath.Join(storeDir, "quarantine", "half-written.tmp")); err != nil {
		t.Errorf("torn artifact not in quarantine/: %v", err)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Errorf("stray tmp outside the store survived recovery: %v", err)
	}

	// Resubmitting the equivalent sweep: the rotted artifact fails
	// integrity verification and is recomputed; the intact one memoizes;
	// the result is bit-identical to the original.
	before := scrapeMetrics(t, ts2.URL)
	id2 := submit(t, ts2, spec)
	if st := waitDone(t, ts2, id2); st.State != stateDone {
		t.Fatalf("resubmitted sweep state %s (%s)", st.State, st.Error)
	}
	after := scrapeMetrics(t, ts2.URL)
	if d := after["dsmc_store_verify_failures_total"] - before["dsmc_store_verify_failures_total"]; d < 1 {
		t.Errorf("verify failures during resubmit: %v, want >= 1", d)
	}
	if d := after["dsmc_store_hits_total"] - before["dsmc_store_hits_total"]; d != 1 {
		t.Errorf("store hits during resubmit: %v, want 1 (the intact artifact)", d)
	}
	if d := after["dsmc_coord_lease_grants_total"] - before["dsmc_coord_lease_grants_total"]; d != 1 {
		t.Errorf("leases during resubmit: %v, want 1 (only the rotted job recomputes)", d)
	}
	resp, err = http.Get(ts2.URL + "/v1/sweeps/" + id2 + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var res2 dsmc.SweepResult
	err = json.NewDecoder(resp.Body).Decode(&res2)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if g, w := resultHash(t, &res2), resultHash(t, &res1); g != w {
		t.Fatalf("post-corruption result hash %016x != original %016x", g, w)
	}
	if q, _ := filepath.Glob(filepath.Join(storeDir, "quarantine", "*")); len(q) < 2 {
		t.Errorf("quarantine holds %d files, want >= 2 (torn tmp + rotted object)", len(q))
	}
}

// TestResultETagConditional pins the cache semantics of the existing
// result endpoints on their own: strong ETag + immutable Cache-Control
// on 200, If-None-Match revalidation to 304, and stable ETags across
// repeated GETs (the JSON encoding is deterministic).
func TestResultETagConditional(t *testing.T) {
	s, err := newServer(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.close)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	id := submit(t, ts, tinySpec())
	if st := waitDone(t, ts, id); st.State != stateDone {
		t.Fatalf("sweep state %s (%s)", st.State, st.Error)
	}

	for _, path := range []string{
		"/v1/sweeps/" + id + "/result",
		"/v1/sweeps/" + id + "/result?quantity=density",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body1, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		etag := resp.Header.Get("ETag")
		if resp.StatusCode != http.StatusOK || etag == "" {
			t.Fatalf("GET %s: status %d, ETag %q", path, resp.StatusCode, etag)
		}
		if cc := resp.Header.Get("Cache-Control"); !strings.Contains(cc, "immutable") || !strings.Contains(cc, "public") {
			t.Errorf("GET %s: Cache-Control %q, want public+immutable", path, cc)
		}

		again, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body2, _ := io.ReadAll(again.Body)
		again.Body.Close()
		if again.Header.Get("ETag") != etag || string(body1) != string(body2) {
			t.Errorf("GET %s: repeated fetch changed ETag or body", path)
		}

		req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		req.Header.Set("If-None-Match", etag)
		cond, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		condBody, _ := io.ReadAll(cond.Body)
		cond.Body.Close()
		if cond.StatusCode != http.StatusNotModified || len(condBody) != 0 {
			t.Errorf("conditional GET %s: status %d, %d-byte body; want bare 304",
				path, cond.StatusCode, len(condBody))
		}
		if cond.Header.Get("ETag") != etag {
			t.Errorf("conditional GET %s: 304 ETag %q != %q", path, cond.Header.Get("ETag"), etag)
		}

		req, _ = http.NewRequest(http.MethodGet, ts.URL+path, nil)
		req.Header.Set("If-None-Match", `"different"`)
		miss, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		missBody, _ := io.ReadAll(miss.Body)
		miss.Body.Close()
		if miss.StatusCode != http.StatusOK || len(missBody) == 0 {
			t.Errorf("non-matching If-None-Match on %s: status %d, %d bytes; want full 200",
				path, miss.StatusCode, len(missBody))
		}
	}
}
